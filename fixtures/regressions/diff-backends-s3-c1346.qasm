// fuzz-prop: diff/backends
// fuzz-seed: 3
// fuzz-case: 1346
OPENQASM 2.0;
include "qelib1.inc";
qreg q[7];
swap q[3],q[6];
swap q[4],q[0];
swap q[5],q[1];
swap q[5],q[0];
cp(0.39269908169872414) q[6],q[2];
cz q[0],q[6];
cx q[3],q[5];
cz q[5],q[0];
swap q[2],q[1];
