// Long-range-CX stress fixture: four rotated mirror matchings on 8
// qubits. Every CX pairs opposite ends of the register, so every layer
// is a fully parallel long-range communication front — the workload
// where lattice surgery's split pipelining beats braiding.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[8];
creg c[8];
h q[0];
h q[1];
h q[2];
h q[3];
h q[4];
h q[5];
h q[6];
h q[7];
// layer 0: (i, 7-i)
cx q[0],q[7];
cx q[1],q[6];
cx q[2],q[5];
cx q[3],q[4];
// layer 1: rotated by 1
cx q[1],q[0];
cx q[2],q[7];
cx q[3],q[6];
cx q[4],q[5];
// layer 2: rotated by 2
cx q[2],q[1];
cx q[3],q[0];
cx q[4],q[7];
cx q[5],q[6];
// layer 3: rotated by 3
cx q[3],q[2];
cx q[4],q[1];
cx q[5],q[0];
cx q[6],q[7];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
measure q[4] -> c[4];
measure q[5] -> c[5];
measure q[6] -> c[6];
measure q[7] -> c[7];
