(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§4) on this reproduction.

   Usage:
     dune exec bench/main.exe                      # everything, medium sizes
     dune exec bench/main.exe -- table2            # one section
     dune exec bench/main.exe -- fig16 --full      # paper-scale sizes (slow)
     dune exec bench/main.exe -- micro             # bechamel micro-benchmarks
     dune exec bench/main.exe -- backends --json BENCH_backends.json
     dune exec bench/main.exe -- engine --json BENCH_engine.json
     dune exec bench/main.exe -- scale --json BENCH_scale.json
     dune exec bench/main.exe -- --check BENCH_backends.json --check \
       BENCH_scale.json --tolerance 0.02    # drift gate vs committed JSON

   Sections: table1 table2 fig16 fig17 fig18 compile-time ablation planar
   magic backends scale scale-smoke engine prop micro all.

   `scale` is the paper-size Table-2 sweep (QFT-100..400, adder, RevLib)
   of braid vs the greedy baseline — minutes of wall time, gated by
   `make bench-scale`. `scale-smoke` re-runs only the QFT-100 point and
   exact-checks it against the committed BENCH_scale.json inside a wall
   budget (AUTOBRAID_SCALE_BUDGET_S, default 120 s) — that is the CI
   (`make check`) entry point.

   `--check FILE` (repeatable) re-measures the section named inside FILE
   and exits 1 if any gated metric regresses past `--tolerance` (cycle
   counts, default 2%) or `--wall-tolerance` (host timings, default
   200%) — see Qec_obs.Drift for the gating policy.

   Absolute numbers differ from the paper (different host, regenerated
   benchmark netlists, re-implemented baseline); the claims under test are
   the orderings and rough factors — see EXPERIMENTS.md. *)

module S = Autobraid.Scheduler
module IL = Autobraid.Initial_layout
module GP = Gp_baseline
module C = Qec_circuit.Circuit
module B = Qec_benchmarks
module TP = Qec_util.Tableprint
module T = Qec_surface.Timing

let timing33 = T.make ~d:T.default_d ()

let sp_options = { S.default_options with variant = S.Sp }

(* autobraid-full with the paper's p sweep, trimmed for compile time. *)
let run_full ?(grid_points = [ 0.0; 0.2; 0.4 ]) timing c =
  fst
    (S.run_best_p ~grid_points
       ~jobs:(Qec_util.Parallel.default_jobs ())
       timing c)

let header title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* Every section runs under an in-memory collector and closes with a
   per-phase self-time profile, so BENCH_*.json trajectories can attribute
   a compile-time regression to initial layout vs routing vs layout
   optimization. *)
let profiled name f =
  let c = Qec_telemetry.Collector.create () in
  let result =
    Qec_telemetry.Telemetry.with_sink (Qec_telemetry.Collector.sink c) f
  in
  Printf.printf "\n[%s: per-phase self-time]\n" name;
  Qec_telemetry.Collector.print_phases c;
  result

let us r = S.time_us timing33 r
let cp_us r = S.critical_path_us timing33 r

let write_json path json =
  let oc = open_out path in
  output_string oc (Qec_report.Json.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\n[wrote %s]\n" path

(* ------------------------------------------------------------------ *)
(* Table 1: impact of LLG-driven initial-layout optimization            *)

let table1_benchmarks ~full =
  [
    ("qft16", B.Qft.circuit 16);
    ("qft50", B.Qft.circuit 50);
    ("urf2", B.Building_blocks.by_name "urf2_277");
    ("IM16", B.Ising.circuit ~steps:8 16);
    ("IM10", B.Ising.circuit ~steps:13 10);
    ( "Shors",
      if full then B.Shor.circuit ~multipliers:149 ~bits:234 ()
      else B.Shor.circuit ~multipliers:40 ~bits:48 () );
    ("BTW", B.Bwt.circuit ~height:6 ());
    ("Sqrt8", B.Building_blocks.by_name "sqrt8_260");
  ]

let table1 ~full () =
  header "Table 1: Impact of LLGs' sizes (initial-layout optimization)";
  let t =
    TP.create
      ~headers:
        [
          ("Benchmark", TP.Left);
          ("#LLG>3 after", TP.Right);
          ("time after (us)", TP.Right);
          ("#LLG>3 before", TP.Right);
          ("time before (us)", TP.Right);
          ("Speedup", TP.Right);
        ]
  in
  List.iter
    (fun (name, circuit) ->
      let lowered = Qec_circuit.Decompose.to_scheduler_gates circuit in
      let n = C.num_qubits lowered in
      let grid =
        Qec_lattice.Grid.create
          (max 1 (Qec_surface.Resources.lattice_side ~num_logical:n))
      in
      let census method_ =
        IL.oversize_census lowered (IL.place ~method_ lowered grid)
      in
      let run_with initial =
        S.run ~options:{ sp_options with initial } timing33 lowered
      in
      let before = run_with IL.Bisected in
      let after = run_with IL.Annealed in
      TP.add_row t
        [
          name;
          string_of_int (census IL.Annealed);
          TP.si_cell (us after);
          string_of_int (census IL.Bisected);
          TP.si_cell (us before);
          Printf.sprintf "%.2f"
            (float_of_int before.S.total_cycles
            /. float_of_int after.S.total_cycles);
        ])
    (table1_benchmarks ~full);
  TP.print t;
  print_endline
    "(before = plain bisection; after = + degree-2 snake + LLG annealing)"

(* ------------------------------------------------------------------ *)
(* Table 2: overview — CP vs baseline vs autobraid-full                 *)

type t2_row = { category : string; label : string; circuit : C.t }

let table2_rows ~full =
  let bb name label = { category = "BuildingBlocks"; label; circuit = B.Building_blocks.by_name name } in
  let app label circuit = { category = "RealWorld"; label; circuit } in
  List.concat
    [
      [
        bb "4gt11_8" "4gt11_8";
        bb "4gt5_75" "4gt5_75";
        bb "alu-v0_26" "alu-v0_26";
        bb "rd32-v0" "rd32-v0";
        bb "sqrt8_260" "sqrt8_260";
        bb "squar5_261" "squar5_261";
        bb "squar7" "squar7";
        bb "urf2_277" "urf2_277";
        bb "urf5_280" "urf5_280";
      ];
      (if full then [ bb "urf1_278" "urf1_278"; bb "urf5_158" "urf5_158" ]
       else []);
      [
        app "QFT-50" (B.Qft.circuit 50);
        app "QFT-100" (B.Qft.circuit 100);
        app "QFT-200" (B.Qft.circuit 200);
      ];
      (if full then
         [ app "QFT-400" (B.Qft.circuit 400); app "QFT-500" (B.Qft.circuit 500) ]
       else []);
      [
        app "BV-100" (B.Bv.circuit 100);
        app "BV-150" (B.Bv.circuit 150);
        app "BV-200" (B.Bv.circuit 200);
        app "CC-100" (B.Cc.circuit 100);
        app "CC-200" (B.Cc.circuit 200);
        app "CC-300" (B.Cc.circuit 300);
        app "IM-10" (B.Ising.circuit ~steps:13 10);
        app "IM-500" (B.Ising.circuit ~steps:3 500);
      ];
      (if full then [ app "IM-1000" (B.Ising.circuit ~steps:3 1000) ] else []);
      [
        app "BWT-127" (B.Bwt.circuit ~height:6 ());
        app "BWT-255" (B.Bwt.circuit ~height:7 ());
        app "QAOA-100" (B.Qaoa.circuit 100);
        app "QAOA-200" (B.Qaoa.circuit 200);
      ];
      (if full then
         [
           app "QAOA-300" (B.Qaoa.circuit 300);
           app "Shor-471" (B.Shor.circuit ~multipliers:149 ~bits:234 ());
         ]
       else [ app "Shor-99" (B.Shor.circuit ~multipliers:40 ~bits:48 ()) ]);
    ]

let table2 ~full () =
  header "Table 2: Overview of experiment results (d = 33)";
  let t =
    TP.create
      ~headers:
        [
          ("Type", TP.Left);
          ("Name", TP.Left);
          ("#qubit", TP.Right);
          ("#gate", TP.Right);
          ("CP (us)", TP.Right);
          ("GP w initM (us)", TP.Right);
          ("AutoBraid (us)", TP.Right);
          ("Speedup", TP.Right);
          ("vs CP", TP.Right);
        ]
  in
  let last_category = ref "" in
  List.iter
    (fun { category; label; circuit } ->
      if category <> !last_category && !last_category <> "" then
        TP.add_separator t;
      last_category := category;
      let base = GP.run timing33 circuit in
      let auto = run_full timing33 circuit in
      TP.add_row t
        [
          category;
          label;
          string_of_int auto.S.num_qubits;
          TP.si_cell (float_of_int auto.S.num_gates);
          TP.si_cell (cp_us auto);
          TP.si_cell (us base);
          TP.si_cell (us auto);
          Printf.sprintf "%.2f"
            (float_of_int base.S.total_cycles
            /. float_of_int auto.S.total_cycles);
          Printf.sprintf "%.2f"
            (float_of_int auto.S.total_cycles
            /. float_of_int (max 1 auto.S.critical_path_cycles));
        ])
    (table2_rows ~full);
  TP.print t

(* ------------------------------------------------------------------ *)
(* Figs. 16 & 17: scalability sweep over computation size 1/P_L         *)

type sweep_point = {
  family : string;
  n : int;
  inv_pl : float;
  d : int;
  base_r : S.result;
  sp_r : S.result;
  full_r : S.result;
}

let sweep_families ~full =
  [
    ( "QFT",
      (fun n -> B.Qft.circuit n),
      if full then [ 50; 100; 200; 300; 400 ] else [ 50; 100; 150; 200 ] );
    ( "IM",
      (fun n -> B.Ising.circuit ~steps:3 n),
      if full then [ 100; 250; 500; 1000 ] else [ 100; 200; 400 ] );
    ( "QAOA",
      (fun n -> B.Qaoa.circuit n),
      if full then [ 60; 100; 200; 300 ] else [ 60; 100; 160; 200 ] );
  ]

let run_sweep ~full () =
  List.concat_map
    (fun (family, gen, sizes) ->
      List.map
        (fun n ->
          let circuit = gen n in
          let lowered = Qec_circuit.Decompose.to_scheduler_gates circuit in
          (* "circuit size is inversely proportional to P_L": target one
             logical fault over the circuit's logical volume. *)
          let volume =
            float_of_int (C.length lowered) *. float_of_int (C.num_qubits lowered)
          in
          let d = Qec_surface.Error_model.distance_for_volume ~volume () in
          let timing = T.make ~d () in
          let base_r = GP.run timing circuit in
          let sp_r = S.run ~options:sp_options timing circuit in
          let full_r = run_full ~grid_points:[ 0.0; 0.3 ] timing circuit in
          { family; n; inv_pl = volume; d; base_r; sp_r; full_r })
        sizes)
    (sweep_families ~full)

let fig16 points =
  header "Fig. 16: execution time (s) vs computation size 1/P_L";
  let t =
    TP.create
      ~headers:
        [
          ("family", TP.Left);
          ("n", TP.Right);
          ("1/P_L", TP.Right);
          ("d", TP.Right);
          ("baseline (s)", TP.Right);
          ("autobraid-sp (s)", TP.Right);
          ("autobraid-full (s)", TP.Right);
          ("CP (s)", TP.Right);
        ]
  in
  let last = ref "" in
  List.iter
    (fun p ->
      if p.family <> !last && !last <> "" then TP.add_separator t;
      last := p.family;
      let timing = T.make ~d:p.d () in
      let sec r = T.seconds_of_cycles timing r.S.total_cycles in
      let cp_sec r = T.seconds_of_cycles timing r.S.critical_path_cycles in
      TP.add_row t
        [
          p.family;
          string_of_int p.n;
          Printf.sprintf "%.2e" p.inv_pl;
          string_of_int p.d;
          Printf.sprintf "%.4f" (sec p.base_r);
          Printf.sprintf "%.4f" (sec p.sp_r);
          Printf.sprintf "%.4f" (sec p.full_r);
          Printf.sprintf "%.4f" (cp_sec p.full_r);
        ])
    points;
  TP.print t

let fig17 points =
  header "Fig. 17: routing-resource utilization (%) vs computation size";
  let t =
    TP.create
      ~headers:
        [
          ("family", TP.Left);
          ("n", TP.Right);
          ("1/P_L", TP.Right);
          ("baseline avg%", TP.Right);
          ("autobraid avg%", TP.Right);
          ("baseline peak%", TP.Right);
          ("autobraid peak%", TP.Right);
        ]
  in
  let last = ref "" in
  List.iter
    (fun p ->
      if p.family <> !last && !last <> "" then TP.add_separator t;
      last := p.family;
      let pct v = Printf.sprintf "%.1f" (100. *. v) in
      TP.add_row t
        [
          p.family;
          string_of_int p.n;
          Printf.sprintf "%.2e" p.inv_pl;
          pct p.base_r.S.avg_utilization;
          pct p.full_r.S.avg_utilization;
          pct p.base_r.S.peak_utilization;
          pct p.full_r.S.peak_utilization;
        ])
    points;
  TP.print t

(* ------------------------------------------------------------------ *)
(* Fig. 18: p-sensitivity                                               *)

let fig18 ~full () =
  header "Fig. 18: p-sensitivity (time normalized to p = 0)";
  let cases =
    if full then
      [ ("QFT-1000", B.Qft.circuit 1000); ("QAOA-1000", B.Qaoa.circuit 1000) ]
    else [ ("QFT-100", B.Qft.circuit 100); ("QAOA-100", B.Qaoa.circuit 100) ]
  in
  let t =
    TP.create
      ~headers:
        ([ ("p", TP.Right) ]
        @ List.map (fun (name, _) -> (name, TP.Right)) cases)
  in
  let curves =
    List.map
      (fun (_, c) ->
        snd
          (S.run_best_p
             ~jobs:(Qec_util.Parallel.default_jobs ())
             timing33 c))
      cases
  in
  let ps = List.map fst (List.hd curves) in
  List.iteri
    (fun i p ->
      let cells =
        List.map
          (fun curve ->
            let _, first = List.hd curve in
            let _, r = List.nth curve i in
            Printf.sprintf "%.3f"
              (float_of_int r.S.total_cycles
              /. float_of_int first.S.total_cycles))
          curves
      in
      TP.add_row t (Printf.sprintf "%.1f" p :: cells))
    ps;
  TP.print t

(* ------------------------------------------------------------------ *)
(* Compilation-time analysis (§4.2)                                     *)

let compile_time () =
  header "Compilation time vs physical execution time";
  let t =
    TP.create
      ~headers:
        [
          ("benchmark", TP.Left);
          ("compile (s)", TP.Right);
          ("execution (s)", TP.Right);
          ("ratio", TP.Right);
        ]
  in
  List.iter
    (fun (name, c) ->
      let lowered = Qec_circuit.Decompose.to_scheduler_gates c in
      let volume =
        float_of_int (C.length lowered) *. float_of_int (C.num_qubits lowered)
      in
      let d = Qec_surface.Error_model.distance_for_volume ~volume () in
      let timing = T.make ~d () in
      let r = S.run timing c in
      let exec_s = T.seconds_of_cycles timing r.S.total_cycles in
      TP.add_row t
        [
          name;
          Printf.sprintf "%.3f" r.S.compile_time_s;
          Printf.sprintf "%.3f" exec_s;
          Printf.sprintf "%.1f%%" (100. *. r.S.compile_time_s /. exec_s);
        ])
    [
      ("qft100", B.Qft.circuit 100);
      ("bv100", B.Bv.circuit 100);
      ("im200", B.Ising.circuit ~steps:3 200);
      ("qaoa100", B.Qaoa.circuit 100);
      ("urf2_277", B.Building_blocks.by_name "urf2_277");
    ];
  TP.print t;
  print_endline
    "(the paper reports ~1-2%; ratios depend on the host CPU and d)"

(* ------------------------------------------------------------------ *)
(* Ablations (design choices called out in DESIGN.md)                   *)

let ablation () =
  header "Ablations";
  let t =
    TP.create
      ~headers:
        [
          ("study", TP.Left);
          ("configuration", TP.Left);
          ("time (us)", TP.Right);
          ("vs best", TP.Right);
        ]
  in
  let block study rows =
    let best =
      List.fold_left (fun acc (_, r) -> min acc r.S.total_cycles) max_int rows
    in
    List.iteri
      (fun i (cfg, r) ->
        TP.add_row t
          [
            (if i = 0 then study else "");
            cfg;
            TP.si_cell (us r);
            Printf.sprintf "%.2fx"
              (float_of_int r.S.total_cycles /. float_of_int best);
          ])
      rows;
    TP.add_separator t
  in
  (* 1. Baseline router: dimension-ordered (braidflash) vs A* *)
  let qft = B.Qft.circuit 100 in
  block "baseline router (qft100)"
    [
      ("dimension-ordered (paper)", GP.run timing33 qft);
      ( "A* (detouring)",
        GP.run ~options:{ GP.default_options with router = GP.Astar } timing33
          qft );
    ];
  (* 2. Initial placement on autobraid-sp *)
  let qaoa = B.Qaoa.circuit 100 in
  block "initial placement (qaoa100, sp)"
    (List.map
       (fun (name, m) ->
         (name, S.run ~options:{ sp_options with initial = m } timing33 qaoa))
       [
         ("identity", IL.Identity);
         ("metis (bisection)", IL.Partitioned);
         ("metis + LLG anneal", IL.Annealed);
       ]);
  (* 3. Failed-first retry pass *)
  block "retry pass (qft100, sp)"
    [
      ("retry on (default)", S.run ~options:sp_options timing33 qft);
      ( "retry off (bare Fig. 13)",
        S.run ~options:{ sp_options with retry = false } timing33 qft );
    ];
  (* 4. LLG confinement (Theorems 1-2) *)
  block "LLG confinement (qft100, sp)"
    [
      ("confined (default)", S.run ~options:sp_options timing33 qft);
      ( "unconfined",
        S.run ~options:{ sp_options with confine_llg = false } timing33 qft );
    ];
  (* 5. Topological path compaction *)
  block "path compaction (qft100, sp)"
    [
      ("off (default)", S.run ~options:sp_options timing33 qft);
      ( "on (rip-up & reroute)",
        S.run ~options:{ sp_options with compaction = true } timing33 qft );
    ];
  (* 6. Critical-path lookahead *)
  block "CP lookahead (qaoa100, sp)"
    [
      ("off (default)", S.run ~options:sp_options timing33 qaoa);
      ( "on (tallest chain first)",
        S.run ~options:{ sp_options with lookahead = true } timing33 qaoa );
    ];
  (* 7. Swap strategy under heavy threshold *)
  let opts strat =
    {
      S.default_options with
      threshold_p = 0.6;
      swap_strategy = Some strat;
    }
  in
  block "swap strategy (qft100, p=0.6)"
    [
      ("odd-even (Maslov)", S.run ~options:(opts Autobraid.Layout_opt.Odd_even) timing33 qft);
      ("greedy pairs", S.run ~options:(opts Autobraid.Layout_opt.Greedy) timing33 qft);
    ];
  TP.print t

(* ------------------------------------------------------------------ *)
(* Planar vs double-defect (the paper's closing discussion, vs MICRO'17) *)

let planar () =
  header "Planar (teleportation) vs double-defect (braiding) - section 5 discussion";
  let t =
    TP.create
      ~headers:
        [
          ("benchmark", TP.Left);
          ("scheme", TP.Left);
          ("time (us)", TP.Right);
          ("vs planar-stack", TP.Right);
          ("physical qubits", TP.Right);
        ]
  in
  List.iter
    (fun (name, c) ->
      let base = GP.run timing33 c in
      let auto = run_full ~grid_points:[ 0.0; 0.3 ] timing33 c in
      let tele_greedy =
        Qec_planar.Teleport.run
          ~options:
            { Qec_planar.Teleport.default_options with
              ordering = Qec_planar.Teleport.Greedy_shortest }
          timing33 c
      in
      let tele_stack = Qec_planar.Teleport.run timing33 c in
      let n = auto.S.num_qubits in
      let braid_qubits =
        Qec_surface.Resources.total_physical_qubits ~num_logical:n
          ~d:T.default_d
      in
      let planar_qubits =
        Qec_planar.Teleport.physical_qubits ~num_logical:n ~d:T.default_d ()
      in
      let anchor = float_of_int tele_stack.S.total_cycles in
      let row scheme (r : S.result) qubits =
        TP.add_row t
          [
            name;
            scheme;
            TP.si_cell (us r);
            Printf.sprintf "%.2fx" (float_of_int r.S.total_cycles /. anchor);
            TP.si_cell (float_of_int qubits);
          ]
      in
      row "braiding, GP baseline" base braid_qubits;
      row "braiding, autobraid" auto braid_qubits;
      row "planar, greedy order" tele_greedy planar_qubits;
      row "planar, stack order" tele_stack planar_qubits;
      TP.add_separator t)
    [
      ("qft100", B.Qft.circuit 100);
      ("im200", B.Ising.circuit ~steps:3 200);
      ("qaoa100", B.Qaoa.circuit 100);
    ];
  TP.print t;
  (* Equal-physical-budget comparison: what distance can each code afford
     for 200 logical qubits within the braiding layout's budget? *)
  let n = 200 in
  let budget =
    Qec_surface.Resources.total_physical_qubits ~num_logical:n ~d:T.default_d
  in
  (match
     Qec_planar.Teleport.distance_for_budget ~num_logical:n ~budget ()
   with
  | Some d_planar ->
    Printf.printf
      "\nequal budget (%d physical qubits, %d logical): double-defect d = %d \
       (P_L = %.2e) vs planar d = %d (P_L = %.2e)\n"
      budget n T.default_d
      (Qec_surface.Error_model.logical_error_rate ~d:T.default_d ())
      d_planar
      (Qec_surface.Error_model.logical_error_rate ~d:d_planar ())
  | None -> print_endline "planar does not fit the budget at any distance");
  print_endline
    "(braiding holds channels 2x longer per CX, but affords a higher code \
     distance at equal budget; with autobraid closing the congestion gap, \
     double-defect wins reliability per qubit - the paper's section 5 claim)"

(* ------------------------------------------------------------------ *)
(* Magic-state supply: cost of the paper's steady-supply assumption     *)

let magic () =
  header "Magic-state supply: relaxing the steady-supply assumption (4.1)";
  let t =
    TP.create
      ~headers:
        [
          ("benchmark", TP.Left);
          ("supply", TP.Left);
          ("time (us)", TP.Right);
          ("vs ideal", TP.Right);
          ("deliveries", TP.Right);
          ("stalled rounds", TP.Right);
        ]
  in
  List.iter
    (fun (name, c) ->
      let ideal = S.run ~options:sp_options timing33 c in
      let row label (r : Qec_magic.Factory_model.result) =
        TP.add_row t
          [
            name;
            label;
            TP.si_cell (us r.Qec_magic.Factory_model.scheduler);
            Printf.sprintf "%.2fx"
              (float_of_int
                 r.Qec_magic.Factory_model.scheduler.S.total_cycles
              /. float_of_int ideal.S.total_cycles);
            string_of_int r.Qec_magic.Factory_model.deliveries;
            string_of_int r.Qec_magic.Factory_model.stalled_rounds;
          ]
      in
      TP.add_row t
        [ name; "ideal (paper's assumption)"; TP.si_cell (us ideal); "1.00x";
          "-"; "-" ];
      List.iter
        (fun k ->
          let options =
            { (Qec_magic.Factory_model.default_options ()) with
              Qec_magic.Factory_model.num_factories = k }
          in
          row
            (Printf.sprintf "%d boundary factories" k)
            (Qec_magic.Factory_model.run ~options timing33 c))
        [ 1; 2; 4; 8 ];
      TP.add_separator t)
    [
      ("urf2_277", B.Building_blocks.by_name "urf2_277");
      ("grover6", B.Grover.circuit ~iterations:2 6);
      ("sqrt8_260", B.Building_blocks.by_name "sqrt8_260");
    ];
  TP.print t;
  print_endline
    "(T gates fetch magic states over real braiding paths from boundary \
     distillation factories producing one state per 10d cycles)"

(* ------------------------------------------------------------------ *)
(* Backends: braiding vs lattice surgery over the Comm_backend API      *)

let backend_circuits =
  [
    ("qft9", B.Qft.circuit 9);
    ("bv12", B.Bv.circuit 12);
    ("qaoa12", B.Qaoa.circuit 12);
    ("lr16", B.Misc_circuits.longrange 16);
    ("lr24", B.Misc_circuits.longrange 24);
  ]

(* Deterministic per-circuit record: everything here is a pure function
   of the circuit and seed (wall-clock compile_time_s is deliberately
   excluded), so BENCH_backends.json is diffable across runs. *)
let backend_outcome_json (o : Autobraid.Comm_backend.outcome) =
  let open Qec_report.Json in
  let r = o.Autobraid.Comm_backend.result in
  Obj
    [
      ("total_cycles", Int r.S.total_cycles);
      ("rounds", Int r.S.rounds);
      ("comm_rounds", Int r.S.braid_rounds);
      ("swap_layers", Int r.S.swap_layers);
      ("swaps_inserted", Int r.S.swaps_inserted);
      ("critical_path_cycles", Int r.S.critical_path_cycles);
      ("avg_utilization", Float r.S.avg_utilization);
      ("peak_utilization", Float r.S.peak_utilization);
      ( "backend_stats",
        Obj (List.map (fun (k, v) -> (k, Float v)) o.Autobraid.Comm_backend.stats)
      );
    ]

(* One backends-style comparison section: run every circuit through braid
   and surgery, print the side-by-side table, and return (optionally
   writing) the machine-readable snapshot keyed by [section] — the same
   shape `--check` gates against. *)
let backends_section ~section ~circuits ~json_out () =
  header
    (Printf.sprintf "%s: braiding vs lattice surgery vs lookahead (d = 33)"
       (String.capitalize_ascii section));
  let module CB = Autobraid.Comm_backend in
  let braid = CB.braid () in
  let surgery = Qec_surgery.Backend.make () in
  let lookahead = Qec_lookahead.Backend.make () in
  let t =
    TP.create
      ~headers:
        [
          ("circuit", TP.Left);
          ("#qubit", TP.Right);
          ("#gate", TP.Right);
          ("braid (us)", TP.Right);
          ("surgery (us)", TP.Right);
          ("lookahead (us)", TP.Right);
          ("braid rounds", TP.Right);
          ("surgery rounds", TP.Right);
          ("speedup", TP.Right);
          ("la speedup", TP.Right);
        ]
  in
  let rows =
    List.map
      (fun (name, circuit) ->
        let ob = braid.CB.run timing33 circuit in
        let os = surgery.CB.run timing33 circuit in
        let ol = lookahead.CB.run timing33 circuit in
        let rb = ob.CB.result and rs = os.CB.result and rl = ol.CB.result in
        TP.add_row t
          [
            name;
            string_of_int rb.S.num_qubits;
            TP.si_cell (float_of_int rb.S.num_gates);
            TP.si_cell (us rb);
            TP.si_cell (us rs);
            TP.si_cell (us rl);
            string_of_int rb.S.rounds;
            string_of_int rs.S.rounds;
            Printf.sprintf "%.2fx"
              (float_of_int rb.S.total_cycles /. float_of_int rs.S.total_cycles);
            Printf.sprintf "%.2fx"
              (float_of_int rb.S.total_cycles /. float_of_int rl.S.total_cycles);
          ];
        (name, ob, os, ol))
      circuits
  in
  TP.print t;
  print_endline
    "(same gate set each way; surgery holds corridors for d cycles and \
     pipelines splits; lookahead races a candidate-ordering portfolio \
     against the greedy round and is never worse than braid)";
  let json =
    let open Qec_report.Json in
    Obj
      [
        ("section", String section);
        ("d", Int T.default_d);
        ( "circuits",
          List
            (List.map
               (fun (name, ob, os, ol) ->
                 let rb = ob.CB.result in
                 Obj
                   [
                     ("name", String name);
                     ("num_qubits", Int rb.S.num_qubits);
                     ("num_gates", Int rb.S.num_gates);
                     ("braid", backend_outcome_json ob);
                     ("surgery", backend_outcome_json os);
                     ("lookahead", backend_outcome_json ol);
                     ( "speedup",
                       Float
                         (float_of_int ob.CB.result.S.total_cycles
                         /. float_of_int os.CB.result.S.total_cycles) );
                     ( "lookahead_speedup",
                       Float
                         (float_of_int ob.CB.result.S.total_cycles
                         /. float_of_int ol.CB.result.S.total_cycles) );
                   ])
               rows) );
      ]
  in
  Option.iter (fun path -> write_json path json) json_out;
  json

let backends ~json_out () =
  ignore
    (backends_section ~section:"backends" ~circuits:backend_circuits ~json_out
       ())

(* The paper-scale sweep (Table 2 headline): autobraid's braiding
   scheduler against the greedy MICRO'17 baseline over QFT-100..400, a
   Shor-style ripple-carry adder, and a large RevLib netlist. Cycle
   counts and the braid_vs_greedy_speedup ratios are deterministic and
   gate at cycle tolerance; the per-circuit *_wall_s keys gate loose.
   Committed as BENCH_scale.json; regenerated/gated by `make bench-scale`
   (too slow for `make check`, which runs the scale-smoke point below). *)
let scale_circuits () =
  [
    ("qft100", B.Qft.circuit 100);
    ("qft200", B.Qft.circuit 200);
    ("qft300", B.Qft.circuit 300);
    ("qft400", B.Qft.circuit 400);
    ("adder64", B.Arith.cuccaro_adder 64);
    ("urf2_277", B.Building_blocks.by_name "urf2_277");
  ]

(* Deterministic result record for the scale sweep (wall time is reported
   separately under explicitly-named *_wall_s keys). *)
let scale_result_json (r : S.result) =
  let open Qec_report.Json in
  Obj
    [
      ("total_cycles", Int r.S.total_cycles);
      ("rounds", Int r.S.rounds);
      ("comm_rounds", Int r.S.braid_rounds);
      ("swap_layers", Int r.S.swap_layers);
      ("swaps_inserted", Int r.S.swaps_inserted);
      ("critical_path_cycles", Int r.S.critical_path_cycles);
    ]

let scale_section ~section ~json_out () =
  header "Scale: braiding vs the greedy baseline at paper size (d = 33)";
  let t =
    TP.create
      ~headers:
        [
          ("circuit", TP.Left);
          ("#qubit", TP.Right);
          ("#gate", TP.Right);
          ("braid cycles", TP.Right);
          ("greedy cycles", TP.Right);
          ("braid rounds", TP.Right);
          ("greedy rounds", TP.Right);
          ("braid wall (s)", TP.Right);
          ("greedy wall (s)", TP.Right);
          ("speedup", TP.Right);
        ]
  in
  let rows =
    List.map
      (fun (name, circuit) ->
        let t0 = Unix.gettimeofday () in
        let rb = S.run timing33 circuit in
        let braid_wall = Unix.gettimeofday () -. t0 in
        let t1 = Unix.gettimeofday () in
        let rg = GP.run timing33 circuit in
        let greedy_wall = Unix.gettimeofday () -. t1 in
        let speedup =
          float_of_int rg.S.total_cycles /. float_of_int rb.S.total_cycles
        in
        TP.add_row t
          [
            name;
            string_of_int rb.S.num_qubits;
            TP.si_cell (float_of_int rb.S.num_gates);
            TP.si_cell (float_of_int rb.S.total_cycles);
            TP.si_cell (float_of_int rg.S.total_cycles);
            string_of_int rb.S.rounds;
            string_of_int rg.S.rounds;
            Printf.sprintf "%.1f" braid_wall;
            Printf.sprintf "%.1f" greedy_wall;
            Printf.sprintf "%.2fx" speedup;
          ];
        (name, rb, rg, braid_wall, greedy_wall, speedup))
      (scale_circuits ())
  in
  TP.print t;
  print_endline
    "(braid_vs_greedy_speedup = greedy cycles / braid cycles; the greedy \
     baseline is the MICRO'17 braidflash model — dimension-ordered routes, \
     no interference stack, no layout optimizer)";
  let json =
    let open Qec_report.Json in
    Obj
      [
        ("section", String section);
        ("d", Int T.default_d);
        ( "circuits",
          List
            (List.map
               (fun (name, rb, rg, bw, gw, speedup) ->
                 Obj
                   [
                     ("name", String name);
                     ("num_qubits", Int rb.S.num_qubits);
                     ("num_gates", Int rb.S.num_gates);
                     ("braid", scale_result_json rb);
                     ("greedy", scale_result_json rg);
                     ("braid_vs_greedy_speedup", Float speedup);
                     ("braid_wall_s", Float bw);
                     ("greedy_wall_s", Float gw);
                   ])
               rows) );
        ( "wall",
          Obj
            (List.map
               (fun (name, _, _, bw, gw, _) ->
                 (name ^ "_wall_s", Float (bw +. gw)))
               rows) );
      ]
  in
  Option.iter (fun path -> write_json path json) json_out;
  json

let scale ~json_out () = ignore (scale_section ~section:"scale" ~json_out ())

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* CI smoke for the paper sweep: the QFT-100 point only, braid + greedy,
   checked exactly against the committed BENCH_scale.json entry (cycle
   counts are deterministic) and against a wall budget. `make scale-smoke`
   wires this into `make check`; the full sweep stays behind
   `make bench-scale`. The budget is overridable for slow hosts via
   AUTOBRAID_SCALE_BUDGET_S. *)
let scale_smoke () =
  header "Scale smoke: qft100, braid vs greedy (d = 33)";
  let budget =
    match
      Option.bind
        (Sys.getenv_opt "AUTOBRAID_SCALE_BUDGET_S")
        float_of_string_opt
    with
    | Some b -> b
    | None -> 120.
  in
  let t0 = Unix.gettimeofday () in
  let circuit = B.Qft.circuit 100 in
  let rb = S.run timing33 circuit in
  let rg = GP.run timing33 circuit in
  let wall = Unix.gettimeofday () -. t0 in
  let speedup =
    float_of_int rg.S.total_cycles /. float_of_int rb.S.total_cycles
  in
  Printf.printf
    "qft100: braid %d cycles (%d rounds), greedy %d cycles (%d rounds), \
     speedup %.2fx, wall %.1f s (budget %.0f s)\n"
    rb.S.total_cycles rb.S.rounds rg.S.total_cycles rg.S.rounds speedup wall
    budget;
  let failures = ref [] in
  let failf fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if wall > budget then
    failf "wall %.1f s blew the %.0f s budget" wall budget;
  (let module J = Qec_report.Json in
   match J.of_string (read_file "BENCH_scale.json") with
   | exception Sys_error msg -> failf "BENCH_scale.json unreadable: %s" msg
   | Error msg -> failf "BENCH_scale.json unparsable: %s" msg
   | Ok baseline -> (
     let entry =
       match J.member "circuits" baseline with
       | Some (J.List entries) ->
         List.find_opt
           (fun e -> J.member "name" e = Some (J.String "qft100"))
           entries
       | _ -> None
     in
     match entry with
     | None -> failf "BENCH_scale.json has no qft100 entry"
     | Some e ->
       let committed side =
         match
           Option.bind (J.member side e) (J.member "total_cycles")
         with
         | Some (J.Int n) -> Some n
         | _ -> None
       in
       let expect side current =
         match committed side with
         | None -> failf "BENCH_scale.json qft100 lacks %s.total_cycles" side
         | Some n ->
           if n <> current then
             failf "%s cycles diverged from BENCH_scale.json: %d <> %d" side
               current n
       in
       expect "braid" rb.S.total_cycles;
       expect "greedy" rg.S.total_cycles));
  match !failures with
  | [] -> print_endline "scale-smoke: OK"
  | fs ->
    List.iter (fun m -> Printf.printf "scale-smoke FAIL: %s\n" m) fs;
    exit 1

(* ------------------------------------------------------------------ *)
(* Engine: batch throughput and the placement cache's payoff            *)

(* An annealing-heavy manifest: every spec repeats one of a few (circuit,
   seed) pairs, the shape batch sweeps actually have, so a warmed
   placement cache should convert most jobs' annealing into hits. *)
let engine_specs =
  let spec ?(backend = "braid") ?(seed = 11) circuit =
    { Qec_engine.Spec.default with circuit; backend; seed }
  in
  [
    spec "qft20";
    spec "qft20" ~backend:"surgery";
    spec "qft20" ~seed:12;
    spec "lr24";
    spec "lr24" ~backend:"surgery";
    spec "qaoa12";
    spec "qaoa12";
    spec "qft16";
    spec "qft16" ~backend:"surgery";
    spec "qft20";
  ]

let engine_section ~json_out () =
  header "Engine: cached multicore batch compilation";
  let jobs = Qec_util.Parallel.default_jobs () in
  let dir = Filename.temp_file "autobraid_bench_cache" "" in
  Sys.remove dir;
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let module PC = Qec_engine.Placement_cache in
  let module E = Qec_engine.Engine in
  let cold_cache = PC.create ~dir () in
  let cold_jobs, cold_s =
    time (fun () -> E.run_batch ~jobs ~cache:cold_cache engine_specs)
  in
  let warm_jobs, warm_memory_s =
    time (fun () -> E.run_batch ~jobs ~cache:cold_cache engine_specs)
  in
  let disk_jobs, warm_disk_s =
    time (fun () -> E.run_batch ~jobs ~cache:(PC.create ~dir ()) engine_specs)
  in
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Unix.rmdir dir;
  let identical =
    E.jobs_to_jsonl cold_jobs = E.jobs_to_jsonl warm_jobs
    && E.jobs_to_jsonl cold_jobs = E.jobs_to_jsonl disk_jobs
  in
  if not identical then failwith "engine bench: cached results diverged";
  let k = PC.counters cold_cache in
  let t =
    TP.create
      ~headers:
        [
          ("pass", TP.Left);
          ("wall (s)", TP.Right);
          ("speedup", TP.Right);
        ]
  in
  TP.add_row t [ "cold (anneal all)"; Printf.sprintf "%.3f" cold_s; "1.00x" ];
  TP.add_row t
    [
      "warm (memory)";
      Printf.sprintf "%.3f" warm_memory_s;
      Printf.sprintf "%.2fx" (cold_s /. warm_memory_s);
    ];
  TP.add_row t
    [
      "warm (disk)";
      Printf.sprintf "%.3f" warm_disk_s;
      Printf.sprintf "%.2fx" (cold_s /. warm_disk_s);
    ];
  TP.print t;
  Printf.printf
    "(%d specs on %d workers; cold pass: %d annealed placements, warm \
     passes replay them; all three passes byte-identical)\n"
    (List.length engine_specs) jobs k.PC.misses;
  let json =
    let open Qec_report.Json in
    Obj
      [
        ("section", String "engine");
        ("jobs", Int jobs);
        ("specs", Int (List.length engine_specs));
        ("cold_s", Float cold_s);
        ("warm_memory_s", Float warm_memory_s);
        ("warm_disk_s", Float warm_disk_s);
        ("speedup_memory", Float (cold_s /. warm_memory_s));
        ("speedup_disk", Float (cold_s /. warm_disk_s));
        ("placements_computed", Int k.PC.misses);
        ("results_identical", Bool identical);
      ]
  in
  Option.iter (fun path -> write_json path json) json_out;
  json

let engine ~json_out () = ignore (engine_section ~json_out ())

(* ------------------------------------------------------------------ *)
(* Property-fuzzer throughput: how much generative coverage one CI
   minute buys. Fixed seed, so the numbers are comparable run to run. *)

let prop_section ~json_out () =
  header "Property-fuzzer throughput (fixed seed, full registry)";
  let module R = Qec_prop.Runner in
  let count = 100 in
  let t0 = Unix.gettimeofday () in
  let report = R.run ~seed:42 ~count () in
  let wall = Unix.gettimeofday () -. t0 in
  if report.R.failures <> [] then
    failwith "prop bench: fixed-seed corpus has failures";
  let t =
    TP.create
      ~headers:
        [ ("metric", TP.Left); ("value", TP.Right) ]
  in
  TP.add_row t [ "cases"; string_of_int report.R.cases ];
  TP.add_row t [ "properties"; string_of_int (List.length report.R.properties) ];
  TP.add_row t [ "checks"; string_of_int report.R.checks ];
  TP.add_row t [ "wall (s)"; Printf.sprintf "%.2f" wall ];
  TP.add_row t
    [ "checks/s"; Printf.sprintf "%.0f" (float_of_int report.R.checks /. wall) ];
  TP.print t;
  Printf.printf
    "(every check schedules at least one backend end to end; the CI smoke \
     run covers %d cases per property)\n"
    count;
  let json =
    let open Qec_report.Json in
    Obj
      [
        ("section", String "prop");
        ("seed", Int report.R.seed);
        ("cases", Int report.R.cases);
        ("properties", Int (List.length report.R.properties));
        ("checks", Int report.R.checks);
        ("wall_s", Float wall);
        ("checks_per_s", Float (float_of_int report.R.checks /. wall));
      ]
  in
  Option.iter (fun path -> write_json path json) json_out;
  json

let prop ~json_out () = ignore (prop_section ~json_out ())

(* ------------------------------------------------------------------ *)
(* Verify: certifier throughput and the mutation corpus's kill rate.
   Every schedule below must certify clean and every applicable mutation
   must be caught — both are hard failures, so the drift-gated counts
   (certificates, invariants_checked, mutations_killed) are exact
   functions of the circuit set and Qec_verify's registries. *)

let verify_circuits =
  [
    ("qft16", B.Qft.circuit 16);
    ("qaoa12", B.Qaoa.circuit 12);
    ("lr16", B.Misc_circuits.longrange 16);
  ]

let verify_section ~json_out () =
  header "Verify: independent schedule certification (d = 33)";
  let module CB = Autobraid.Comm_backend in
  let module V = Qec_verify.Certifier in
  let module M = Qec_verify.Mutate in
  let braid = CB.braid () in
  let surgery = Qec_surgery.Backend.make () in
  let outcomes =
    List.concat_map
      (fun (name, circuit) ->
        List.map
          (fun (backend : CB.t) -> (name, backend.CB.run timing33 circuit))
          [ braid; surgery ])
      verify_circuits
  in
  let t0 = Unix.gettimeofday () in
  let certs =
    List.map
      (fun (name, o) ->
        let cert =
          V.certify ~backend:o.CB.backend ~result:o.CB.result timing33
            o.CB.trace
        in
        if not (V.ok cert) then
          failwith
            (Printf.sprintf "verify bench: %s (%s): %s" name o.CB.backend
               (V.to_summary cert));
        cert)
      outcomes
  in
  let certify_s = Unix.gettimeofday () -. t0 in
  let applied = ref 0 and killed = ref 0 in
  List.iter
    (fun (name, o) ->
      List.iter
        (fun kind ->
          match M.apply kind timing33 o.CB.result o.CB.trace with
          | None -> ()
          | Some (result, trace) ->
            incr applied;
            let cert = V.certify ~result timing33 trace in
            if V.ok cert then
              failwith
                (Printf.sprintf
                   "verify bench: mutation %s survived certification on %s \
                    (%s)"
                   (M.name kind) name o.CB.backend)
            else incr killed)
        M.all)
    outcomes;
  let schedules = List.length certs in
  let invariants_checked =
    schedules * List.length Qec_verify.Invariant.all
  in
  let t =
    TP.create ~headers:[ ("metric", TP.Left); ("value", TP.Right) ] in
  TP.add_row t [ "schedules certified"; string_of_int schedules ];
  TP.add_row t [ "invariants checked"; string_of_int invariants_checked ];
  TP.add_row t
    [
      "mutations killed";
      Printf.sprintf "%d/%d" !killed !applied;
    ];
  TP.add_row t [ "certify wall (s)"; Printf.sprintf "%.3f" certify_s ];
  TP.add_row t
    [
      "certificates/s";
      Printf.sprintf "%.0f" (float_of_int schedules /. certify_s);
    ];
  TP.print t;
  print_endline
    "(certification re-derives every invariant from the trace alone; a \
     surviving mutation or a failed certificate aborts the bench)";
  let json =
    let open Qec_report.Json in
    Obj
      [
        ("section", String "verify");
        ("d", Int T.default_d);
        ("certificates", Int schedules);
        ("invariants_checked", Int invariants_checked);
        ("mutations_applied", Int !applied);
        ("mutations_killed", Int !killed);
        ("certify_s", Float certify_s);
        ( "certificates_per_s",
          Float (float_of_int schedules /. certify_s) );
      ]
  in
  Option.iter (fun path -> write_json path json) json_out;
  json

let verify ~json_out () = ignore (verify_section ~json_out ())

(* ------------------------------------------------------------------ *)
(* Serve: daemon round-trip latency/throughput against an in-process
   server, cold placement cache vs warm. Every request crosses the real
   socket + protocol + admission path, so requests/s is an end-to-end
   number, not an engine microbenchmark. *)

let serve_section ~json_out () =
  header "Serve: daemon round-trips, cold vs warm placement cache";
  let module Server = Qec_serve.Server in
  let module C = Qec_serve.Client in
  let module P = Qec_serve.Protocol in
  let die fmt = Printf.ksprintf failwith fmt in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "absrvb%d.sock" (Unix.getpid ()))
  in
  let jobs = min 2 (Qec_util.Parallel.default_jobs ()) in
  let config = { (Server.default_config ~socket ()) with jobs } in
  let daemon = Domain.spawn (fun () -> Server.run config) in
  let client =
    match C.connect_retry socket with
    | Ok c -> c
    | Error msg -> die "serve bench: %s" msg
  in
  (* distinct (circuit, seed) pairs: every request of the cold pass
     anneals its own placement; the warm pass replays all of them from
     the daemon's shared in-memory cache *)
  let specs =
    List.concat_map
      (fun circuit ->
        List.map
          (fun seed -> { Qec_engine.Spec.default with circuit; seed })
          [ 1; 2; 3; 4 ])
      [ "qft9"; "bv12" ]
  in
  let request spec =
    let t0 = Unix.gettimeofday () in
    match C.compile client spec with
    | Ok (P.Result _) -> Unix.gettimeofday () -. t0
    | Ok _ -> die "serve bench: unexpected response"
    | Error msg -> die "serve bench: %s" msg
  in
  let pass () =
    let t0 = Unix.gettimeofday () in
    let latencies = List.map request specs in
    (Unix.gettimeofday () -. t0, latencies)
  in
  let cold_wall, cold_lat = pass () in
  let warm_wall, warm_lat = pass () in
  (match C.shutdown client with
  | Ok _ -> ()
  | Error msg -> die "serve bench: shutdown: %s" msg);
  C.close client;
  Domain.join daemon;
  let p95 latencies =
    let a = Array.of_list latencies in
    Array.sort compare a;
    a.(min (Array.length a - 1)
         (int_of_float (float_of_int (Array.length a - 1) *. 0.95 +. 0.5)))
  in
  let n = List.length specs in
  let requests_per_s = float_of_int n /. warm_wall in
  let warm_speedup = cold_wall /. warm_wall in
  let t =
    TP.create
      ~headers:
        [ ("pass", TP.Left); ("wall (s)", TP.Right); ("p95 (ms)", TP.Right) ]
  in
  TP.add_row t
    [
      "cold (anneal per request)";
      Printf.sprintf "%.3f" cold_wall;
      Printf.sprintf "%.2f" (1e3 *. p95 cold_lat);
    ];
  TP.add_row t
    [
      "warm (shared cache)";
      Printf.sprintf "%.3f" warm_wall;
      Printf.sprintf "%.2f" (1e3 *. p95 warm_lat);
    ];
  TP.print t;
  Printf.printf
    "(%d requests per pass over one connection, %d workers; warm pass: \
     %.0f requests/s, %.2fx over cold)\n"
    n jobs requests_per_s warm_speedup;
  let json =
    let open Qec_report.Json in
    Obj
      [
        ("section", String "serve");
        ("jobs", Int jobs);
        ("requests", Int (2 * n));
        ("cold_wall_s", Float cold_wall);
        ("warm_wall_s", Float warm_wall);
        ("p95_cold_s", Float (p95 cold_lat));
        ("p95_warm_s", Float (p95 warm_lat));
        ("requests_per_s", Float requests_per_s);
        ("warm_speedup", Float warm_speedup);
      ]
  in
  Option.iter (fun path -> write_json path json) json_out;
  json

let serve ~json_out () = ignore (serve_section ~json_out ())

(* ------------------------------------------------------------------ *)
(* Drift gating: `--check BENCH_*.json` re-measures the file's section
   and fails on cycle-count (or wall-time) regressions past tolerance.   *)

(* Re-measure the section a committed snapshot claims to be. Only the
   json-producing sections can be gated. *)
let current_for_section = function
  | "backends" ->
    Some (backends_section ~section:"backends" ~circuits:backend_circuits
            ~json_out:None ())
  | "scale" -> Some (scale_section ~section:"scale" ~json_out:None ())
  | "engine" -> Some (engine_section ~json_out:None ())
  | "prop" -> Some (prop_section ~json_out:None ())
  | "verify" -> Some (verify_section ~json_out:None ())
  | "serve" -> Some (serve_section ~json_out:None ())
  | _ -> None

(* Returns true when [path] passes. Prints a verdict either way. *)
let drift_check ~tolerance ~wall_tolerance path =
  let module D = Qec_obs.Drift in
  let module J = Qec_report.Json in
  let fail msg =
    Printf.printf "DRIFT FAIL %s: %s\n" path msg;
    false
  in
  match J.of_string (read_file path) with
  | Error msg -> fail ("unparsable baseline: " ^ msg)
  | Ok baseline -> (
    match J.member "section" baseline with
    | Some (J.String section) -> (
      match current_for_section section with
      | None -> fail (Printf.sprintf "section %S is not drift-gated" section)
      | Some current ->
        let o = D.check ~tolerance ~wall_tolerance ~baseline ~current in
        header (Printf.sprintf "Drift check: %s (section %s)" path section);
        Printf.printf
          "%d gated metrics, tolerance %.0f%% (cycle) / %.0f%% (wall)\n"
          o.D.checked (100. *. tolerance) (100. *. wall_tolerance);
        List.iter
          (fun f -> Printf.printf "  REGRESSION %s\n" (D.pp_finding f))
          o.D.regressions;
        List.iter
          (fun p -> Printf.printf "  MISSING %s (baseline metric absent)\n" p)
          o.D.missing;
        List.iter
          (fun f -> Printf.printf "  improved %s\n" (D.pp_finding f))
          o.D.improvements;
        if D.passed o then (
          Printf.printf "DRIFT OK %s\n" path;
          true)
        else
          fail
            (Printf.sprintf "%d regression(s), %d missing metric(s)"
               (List.length o.D.regressions)
               (List.length o.D.missing)))
    | _ -> fail "baseline has no \"section\" key")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure driver     *)

let micro () =
  header "Bechamel micro-benchmarks (one per table/figure, reduced size)";
  let open Bechamel in
  let open Toolkit in
  let qft16 = B.Qft.circuit 16 in
  let im16 = B.Ising.circuit ~steps:4 16 in
  let qaoa16 = B.Qaoa.circuit 16 in
  let grid4 = Qec_lattice.Grid.create 4 in
  let tests =
    [
      Test.make ~name:"table1:llg-census"
        (Staged.stage (fun () ->
             IL.oversize_census qft16
               (IL.place ~method_:IL.Partitioned qft16 grid4)));
      Test.make ~name:"table2:autobraid-full"
        (Staged.stage (fun () -> Autobraid.Scheduler.run timing33 qft16));
      Test.make ~name:"table2:gp-baseline"
        (Staged.stage (fun () -> GP.run timing33 qft16));
      Test.make ~name:"fig16:scalability-point"
        (Staged.stage (fun () -> Autobraid.Scheduler.run ~options:sp_options timing33 im16));
      Test.make ~name:"fig17:utilization-point"
        (Staged.stage (fun () ->
             (Autobraid.Scheduler.run ~options:sp_options timing33 qaoa16).Autobraid.Scheduler.avg_utilization));
      Test.make ~name:"fig18:p-sweep-point"
        (Staged.stage (fun () ->
             Autobraid.Scheduler.run
               ~options:{ Autobraid.Scheduler.default_options with threshold_p = 0.5 }
               timing33 qaoa16));
    ]
  in
  let test = Test.make_grouped ~name:"autobraid" ~fmt:"%s %s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let results = Analyze.merge ols Instance.[ monotonic_clock ] [ results ] in
  let () =
    Bechamel_notty.Unit.add Instance.monotonic_clock
      (Measure.unit Instance.monotonic_clock)
  in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.output_image (Notty_unix.eol img)

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let rec find_json = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> find_json rest
    | [] -> None
  in
  let json_out = find_json args in
  let rec find_all flag = function
    | f :: v :: rest when f = flag -> v :: find_all flag rest
    | _ :: rest -> find_all flag rest
    | [] -> []
  in
  let find_float flag default =
    match find_all flag args with
    | v :: _ -> (
      match float_of_string_opt v with
      | Some f -> f
      | None ->
        Printf.eprintf "%s expects a number, got %S\n" flag v;
        exit 2)
    | [] -> default
  in
  let checks = find_all "--check" args in
  (* Cycle metrics are deterministic — 2% headroom only guards against
     benign nondeterminism (e.g. hash order). Wall times vary wildly
     across hosts and CI neighbours, so they get 3x by default. *)
  let tolerance = find_float "--tolerance" 0.02 in
  let wall_tolerance = find_float "--wall-tolerance" 2.0 in
  if checks <> [] then begin
    let t0 = Unix.gettimeofday () in
    let ok =
      List.fold_left
        (fun acc path -> drift_check ~tolerance ~wall_tolerance path && acc)
        true checks
    in
    Printf.printf "\n[drift check completed in %.1f s]\n"
      (Unix.gettimeofday () -. t0);
    exit (if ok then 0 else 1)
  end;
  let sections =
    let rec strip = function
      | ("--json" | "--check" | "--tolerance" | "--wall-tolerance")
        :: _ :: rest ->
        strip rest
      | a :: rest when String.length a > 2 && String.sub a 0 2 = "--" ->
        strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  let section = match sections with s :: _ -> s | [] -> "all" in
  let t0 = Unix.gettimeofday () in
  (match section with
  | "table1" -> profiled "table1" (table1 ~full)
  | "table2" -> profiled "table2" (table2 ~full)
  | "fig16" -> profiled "fig16" (fun () -> fig16 (run_sweep ~full ()))
  | "fig17" -> profiled "fig17" (fun () -> fig17 (run_sweep ~full ()))
  | "fig18" -> profiled "fig18" (fig18 ~full)
  | "compile-time" -> profiled "compile-time" compile_time
  | "ablation" -> profiled "ablation" ablation
  | "planar" -> profiled "planar" planar
  | "magic" -> profiled "magic" magic
  | "backends" -> profiled "backends" (backends ~json_out)
  | "scale" -> profiled "scale" (scale ~json_out)
  | "scale-smoke" -> profiled "scale-smoke" scale_smoke
  | "engine" -> profiled "engine" (engine ~json_out)
  | "prop" -> profiled "prop" (prop ~json_out)
  | "verify" -> profiled "verify" (verify ~json_out)
  | "serve" -> profiled "serve" (serve ~json_out)
  | "micro" -> profiled "micro" micro
  | "all" ->
    profiled "table1" (table1 ~full);
    profiled "table2" (table2 ~full);
    let points = profiled "sweep" (run_sweep ~full) in
    profiled "fig16" (fun () -> fig16 points);
    profiled "fig17" (fun () -> fig17 points);
    profiled "fig18" (fig18 ~full);
    profiled "compile-time" compile_time;
    profiled "ablation" ablation;
    profiled "planar" planar;
    profiled "magic" magic;
    profiled "backends" (backends ~json_out);
    (* --json names one file; in `all` mode it belongs to `backends` *)
    profiled "engine" (engine ~json_out:None);
    profiled "prop" (prop ~json_out:None);
    profiled "verify" (verify ~json_out:None);
    profiled "serve" (serve ~json_out:None);
    profiled "micro" micro
  | other ->
    Printf.eprintf
      "unknown section %S (expected table1|table2|fig16|fig17|fig18|compile-time|ablation|planar|magic|backends|scale|scale-smoke|engine|prop|verify|serve|micro|all)\n"
      other;
    exit 2);
  Printf.printf "\n[bench completed in %.1f s]\n" (Unix.gettimeofday () -. t0)
