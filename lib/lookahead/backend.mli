(** The windowed-lookahead {!Autobraid.Comm_backend}.

    Plug-compatible with the braid and surgery backends: same outcome
    shape, same trace contract, lookahead-specific numbers surfaced
    through the generic [stats] list
    ({!Lookahead_scheduler.stats_to_assoc}'s keys). *)

val make :
  ?options:Lookahead_scheduler.options -> unit -> Autobraid.Comm_backend.t
(** Backend named ["lookahead"]. *)

val options_spec : Autobraid.Comm_backend.Options.spec list
(** Declared options: [window] (int, >= 0) and [slack_weight]
    (float, >= 0). *)

val register : unit -> unit
(** Enter ["lookahead"] into {!Autobraid.Comm_backend}'s registry.
    Idempotent. Runs automatically when this module is linked and
    referenced; call it explicitly from code that only resolves backends
    by name, so linking is guaranteed. *)
