module Comm_backend = Autobraid.Comm_backend

let make ?(options = Lookahead_scheduler.default_options) () =
  {
    Comm_backend.name = "lookahead";
    description =
      "windowed critical-path lookahead over braiding (never worse than \
       greedy)";
    run =
      (fun timing circuit ->
        let result, trace, stats =
          Lookahead_scheduler.run_traced ~options timing circuit
        in
        {
          Comm_backend.backend = "lookahead";
          result;
          trace;
          stats = Lookahead_scheduler.stats_to_assoc stats;
        });
  }

let options_spec =
  let open Comm_backend.Options in
  [
    {
      key = "window";
      kind = TInt;
      default = Int Lookahead_scheduler.default_options.Lookahead_scheduler.window;
      doc =
        "successor levels the round priority looks past the DAG front; 0 = \
         pure greedy";
    };
    {
      key = "slack_weight";
      kind = TFloat;
      default =
        Float
          Lookahead_scheduler.default_options.Lookahead_scheduler.slack_weight;
      doc = "weight of the critical-path term in the round score";
    };
  ]

let register () =
  Comm_backend.register ~name:"lookahead"
    ~description:
      "windowed critical-path lookahead over braiding (never worse than \
       greedy)"
    ~options:options_spec
    ~validate:(fun opts ->
      let open Comm_backend.Options in
      let window = get_int opts "window" in
      let slack_weight = get_float opts "slack_weight" in
      if window < 0 then
        Error (Printf.sprintf "window %d must be >= 0" window)
      else if slack_weight < 0. then
        Error
          (Printf.sprintf "slack_weight %s must be >= 0"
             (Qec_util.Floatfmt.repr slack_weight))
      else Ok ())
    (fun cfg opts ->
      let open Comm_backend.Options in
      make
        ~options:
          {
            Lookahead_scheduler.window = get_int opts "window";
            slack_weight = get_float opts "slack_weight";
            initial = cfg.Comm_backend.initial;
            seed = cfg.Comm_backend.seed;
            placement_override = cfg.Comm_backend.placement;
          }
        ())

(* Self-register when linked and referenced; name-only resolvers call
   [register] explicitly — see Qec_engine.Engine. *)
let () = register ()
