(** Windowed critical-path lookahead over the braiding round driver.

    The greedy schedulers (braid, surgery) commit each round looking only
    at the current DAG front; whenever two front gates contend for lattice
    paths, the routing race — not the dependency structure — decides which
    one waits. This scheduler re-runs the braiding driver through the
    {!Autobraid.Scheduler.run_traced_with} seam and, each round, routes a
    {e portfolio} of candidate orderings through the same stack finder:

    + the greedy stack order, exactly as the braid backend would route
      the round;
    + the windowed critical-path order: gates sorted by their
      {!windowed_tail} (the longest dependent chain visible within
      [window] levels of successors);
    + the hardest-first order: largest bounding box first, committing
      the lattice-splitting paths before short local paths fragment the
      fabric;
    + two deterministic diversification shuffles — the multi-start that
      rescues rounds where every informed order walks into the same
      packing dead end.

    Every candidate is compacted ({!Autobraid.Compaction}) and its
    failed gates rescued over the freed vertices; candidates are then
    ranked by gates routed, then by the slack-weighted criticality of
    the routed set — each routed gate contributes
    [slack_weight * criticality], where criticality comes from
    {!Qec_verify.Dataflow.slack_analysis} (1 for zero-slack
    critical-path gates, → 0 for maximally slack ones) — then by lower
    lattice utilization (congestion pressure). The losers are ripped up
    (the occupancy is cleared and the winner deterministically
    re-routed), so the driver always commits a single coherent round.

    Per-round heuristics cannot promise global improvement, so the
    never-worse guarantee is enforced by construction: the whole
    lookahead run is compared against a plain greedy run with identical
    options, and the cheaper schedule (total cycles) is returned — the
    same keep-the-cheaper discipline surgery's [pipeline_splits] uses.
    With [window = 0] the route hook is not installed at all and the run
    {e is} the greedy braid schedule. *)

type options = {
  window : int;
      (** how many successor levels the priority looks past the front;
          0 = pure greedy (identical to the braid backend) *)
  slack_weight : float;
      (** weight of the criticality term in the round score; 0 values
          every routed gate equally *)
  initial : Autobraid.Initial_layout.method_;
  seed : int;
  placement_override : Qec_lattice.Placement.t option;
}

val default_options : options
(** [window = 4], [slack_weight = 1.0], braid's initial/seed defaults. *)

type stats = {
  window : int;
  chose_lookahead : bool;
      (** the lookahead schedule was at least as cheap as greedy and was
          returned (always true when they tie) *)
  lookahead_cycles : int;
  greedy_cycles : int;
  priority_rounds : int;
      (** rounds of the lookahead run where a non-greedy portfolio
          candidate won the ranking and was committed *)
  rescued_gates : int;
      (** gates routed by the post-compaction rescue pass in committed
          rounds *)
}

val stats_to_assoc : stats -> (string * float) list
(** Stable order, booleans as 0/1 — the {!Autobraid.Comm_backend}
    [stats] payload. *)

val windowed_tail : window:int -> Qec_circuit.Circuit.t -> int array
(** [.(g)] is the longest-cost chain starting at gate [g] that stays
    within [window] dependency levels, under
    {!Qec_verify.Dataflow.default_cost}: [wt_0 g = cost g] and
    [wt_(k+1) g = cost g + max over successors of wt_k]. For
    [window >= depth] this is exactly the Dataflow [tail]. Computed on
    the circuit as given (no lowering) — callers wanting scheduler-gate
    ids must lower first. *)

val run_traced :
  ?options:options ->
  Qec_surface.Timing.t ->
  Qec_circuit.Circuit.t ->
  Autobraid.Scheduler.result * Autobraid.Trace.t * stats
(** Deterministic for fixed options; never more total cycles than
    {!Autobraid.Scheduler.run_traced} with the same initial / seed /
    placement (enforced by keeping the cheaper of the two runs). *)
