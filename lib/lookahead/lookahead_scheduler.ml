module Circuit = Qec_circuit.Circuit
module Dag = Qec_circuit.Dag
module Decompose = Qec_circuit.Decompose
module Occupancy = Qec_lattice.Occupancy
module Scheduler = Autobraid.Scheduler
module Stack_finder = Autobraid.Stack_finder
module Compaction = Autobraid.Compaction
module Task = Autobraid.Task
module Dataflow = Qec_verify.Dataflow
module Tel = Qec_telemetry.Telemetry

type options = {
  window : int;
  slack_weight : float;
  initial : Autobraid.Initial_layout.method_;
  seed : int;
  placement_override : Qec_lattice.Placement.t option;
}

let default_options =
  {
    window = 4;
    slack_weight = 1.0;
    initial = Scheduler.default_options.Scheduler.initial;
    seed = Scheduler.default_options.Scheduler.seed;
    placement_override = None;
  }

type stats = {
  window : int;
  chose_lookahead : bool;
  lookahead_cycles : int;
  greedy_cycles : int;
  priority_rounds : int;
  rescued_gates : int;
}

let stats_to_assoc s =
  [
    ("window", float_of_int s.window);
    ("chose_lookahead", if s.chose_lookahead then 1. else 0.);
    ("lookahead_cycles", float_of_int s.lookahead_cycles);
    ("greedy_cycles", float_of_int s.greedy_cycles);
    ("priority_rounds", float_of_int s.priority_rounds);
    ("rescued_gates", float_of_int s.rescued_gates);
  ]

let windowed_tail ~window circuit =
  if window < 0 then invalid_arg "Lookahead_scheduler.windowed_tail: window < 0";
  let n = Circuit.length circuit in
  let dag = Dag.of_circuit circuit in
  let cost = Array.init n (fun i -> Dataflow.default_cost (Circuit.gate circuit i)) in
  let cur = Array.copy cost in
  (* The recurrence is monotone and fixes once [window] reaches the DAG
     depth, so iterating past [n] levels cannot change anything. *)
  let next = Array.make n 0 in
  for _ = 1 to min window n do
    for i = n - 1 downto 0 do
      next.(i) <-
        cost.(i)
        + List.fold_left (fun acc s -> max acc cur.(s)) 0 (Dag.succs dag i)
    done;
    Array.blit next 0 cur 0 n
  done;
  cur

(* Scheduler-equivalent braid options: what the braid backend runs with
   when handed the same config — the greedy baseline and the driver
   options of the lookahead run must agree on everything but routing. *)
let scheduler_options (o : options) =
  {
    Scheduler.default_options with
    Scheduler.initial = o.initial;
    seed = o.seed;
    placement_override = o.placement_override;
  }

let run_traced ?(options = default_options) timing circuit =
  if options.window < 0 then
    invalid_arg "Lookahead_scheduler.run: window < 0";
  if options.slack_weight < 0. then
    invalid_arg "Lookahead_scheduler.run: slack_weight < 0";
  Tel.with_span "lookahead.run" @@ fun () ->
  let sched_options = scheduler_options options in
  let greedy_result, greedy_trace =
    Scheduler.run_traced ~options:sched_options timing circuit
  in
  if options.window = 0 then
    (* Pure greedy by definition: the route hook would reproduce the
       stack-finder round verbatim, so skip the second run entirely. *)
    ( greedy_result,
      greedy_trace,
      {
        window = 0;
        chose_lookahead = false;
        lookahead_cycles = greedy_result.Scheduler.total_cycles;
        greedy_cycles = greedy_result.Scheduler.total_cycles;
        priority_rounds = 0;
        rescued_gates = 0;
      } )
  else begin
    (* Priorities are computed on the same lowering [run_impl] performs,
       so the task ids seen by the route hook index these arrays. *)
    let lowered = Decompose.to_scheduler_gates circuit in
    let wtail = windowed_tail ~window:options.window lowered in
    let sa = Dataflow.slack_analysis lowered in
    let crit = Dataflow.critical_length sa in
    let criticality id =
      if crit = 0 then 0.
      else
        float_of_int (crit - sa.(id).Dataflow.slack) /. float_of_int crit
    in
    let crit_sum (routed : (Task.t * Qec_lattice.Path.t) list) =
      List.fold_left
        (fun acc ((t : Task.t), _) ->
          acc +. (options.slack_weight *. criticality t.Task.id))
        0. routed
    in
    let priority_rounds = ref 0 in
    let rescued_gates = ref 0 in
    let route ~round:_ ~router ~occ ~placement tasks =
      (* The candidate portfolio: the greedy stack order, the windowed
         critical-path order (tallest dependent chain first), the
         hardest-first order (largest bounding box first — commit the
         lattice-splitting paths before the easy locals fragment the
         fabric), and two deterministic diversification shuffles (the
         multi-start that rescues rounds where every informed order
         walks into the same packing dead end). *)
      let area (t : Task.t) = Qec_lattice.Bbox.area (Task.bbox placement t) in
      let candidates : (Task.t -> int) option list =
        [
          None;
          Some (fun t -> wtail.(t.Task.id));
          Some area;
          Some (fun (t : Task.t) -> t.Task.id * 2654435761 land 0xFFFF);
          Some (fun (t : Task.t) -> (t.Task.id + 13) * 97 mod 251);
        ]
      in
      (* Evaluate one candidate ordering: route, topologically compact,
         then try to rescue the failures over the freed vertices. Leaves
         the outcome's reservations in [occ]. *)
      let attempt priority_of =
        Occupancy.clear occ;
        let o =
          Stack_finder.find ~retry:true ~confine_llg:true ?priority_of router
            occ placement tasks
        in
        if o.Stack_finder.routed = [] then (o, 0)
        else begin
          let routed =
            Compaction.compact router occ placement o.Stack_finder.routed
          in
          let rescued, failed =
            Stack_finder.route_in_order router occ placement
              o.Stack_finder.failed
          in
          ( {
              Stack_finder.routed = routed @ rescued;
              failed;
              ratio =
                float_of_int (List.length routed + List.length rescued)
                /. float_of_int (List.length tasks);
            },
            List.length rescued )
        end
      in
      (* Rank: gates routed, then slack-weighted criticality of the
         routed set, then lower lattice utilization (congestion
         pressure). Index breaks exact ties toward the greedy order. *)
      let measure (o, _) =
        ( List.length o.Stack_finder.routed,
          crit_sum o.Stack_finder.routed,
          -.Occupancy.utilization occ )
      in
      let best_i = ref 0 and best_m = ref None in
      List.iteri
        (fun i priority_of ->
          let m = measure (attempt priority_of) in
          match !best_m with
          | Some bm when m <= bm -> ()
          | _ ->
            best_i := i;
            best_m := Some m)
        candidates;
      (* Rip-up: clear the last candidate's reservations and replay the
         winner deterministically so [occ] holds exactly its round. *)
      let outcome, rescued = attempt (List.nth candidates !best_i) in
      if !best_i > 0 then begin
        incr priority_rounds;
        Tel.count "lookahead.priority_rounds"
      end;
      rescued_gates := !rescued_gates + rescued;
      outcome
    in
    let look_result, look_trace =
      Scheduler.run_traced_with ~route ~options:sched_options timing circuit
    in
    let chose_lookahead =
      look_result.Scheduler.total_cycles
      <= greedy_result.Scheduler.total_cycles
    in
    let result, trace =
      if chose_lookahead then (look_result, look_trace)
      else (greedy_result, greedy_trace)
    in
    if not chose_lookahead then Tel.count "lookahead.fell_back_to_greedy";
    ( result,
      trace,
      {
        window = options.window;
        chose_lookahead;
        lookahead_cycles = look_result.Scheduler.total_cycles;
        greedy_cycles = greedy_result.Scheduler.total_cycles;
        priority_rounds = !priority_rounds;
        rescued_gates = !rescued_gates;
      } )
  end
