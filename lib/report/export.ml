module S = Autobraid.Scheduler
module Trace = Autobraid.Trace
module Task = Autobraid.Task

let result_to_json (r : S.result) =
  Json.Obj
    [
      ("name", Json.String r.name);
      ("num_qubits", Json.Int r.num_qubits);
      ("num_gates", Json.Int r.num_gates);
      ("num_two_qubit", Json.Int r.num_two_qubit);
      ("lattice_side", Json.Int r.lattice_side);
      ("total_cycles", Json.Int r.total_cycles);
      ("rounds", Json.Int r.rounds);
      ("braid_rounds", Json.Int r.braid_rounds);
      ("swap_layers", Json.Int r.swap_layers);
      ("swaps_inserted", Json.Int r.swaps_inserted);
      ("critical_path_cycles", Json.Int r.critical_path_cycles);
      ("avg_utilization", Json.Float r.avg_utilization);
      ("peak_utilization", Json.Float r.peak_utilization);
      ("compile_time_s", Json.Float r.compile_time_s);
    ]

let results_to_json labelled =
  Json.Obj (List.map (fun (label, r) -> (label, result_to_json r)) labelled)

let round_to_json (round : Trace.round) =
  match round with
  | Trace.Local { gates } ->
    Json.Obj
      [
        ("kind", Json.String "local");
        ("gates", Json.List (List.map (fun g -> Json.Int g) gates));
      ]
  | Trace.Braid { braids; locals } ->
    Json.Obj
      [
        ("kind", Json.String "braid");
        ( "braids",
          Json.List
            (List.map
               (fun ((t : Task.t), path) ->
                 Json.Obj
                   [
                     ("gate", Json.Int t.id);
                     ("q1", Json.Int t.q1);
                     ("q2", Json.Int t.q2);
                     ("path_vertices", Json.Int (Qec_lattice.Path.length path));
                   ])
               braids) );
        ("locals", Json.List (List.map (fun g -> Json.Int g) locals));
      ]
  | Trace.Swap_layer { swaps } ->
    Json.Obj
      [
        ("kind", Json.String "swap_layer");
        ( "swaps",
          Json.List
            (List.map
               (fun (a, b) -> Json.List [ Json.Int a; Json.Int b ])
               swaps) );
      ]
  | Trace.Merge { merges; locals; split_overlapped } ->
    Json.Obj
      [
        ("kind", Json.String "merge");
        ( "merges",
          Json.List
            (List.map
               (fun ((t : Task.t), path) ->
                 Json.Obj
                   [
                     ("gate", Json.Int t.id);
                     ("q1", Json.Int t.q1);
                     ("q2", Json.Int t.q2);
                     ("path_vertices", Json.Int (Qec_lattice.Path.length path));
                   ])
               merges) );
        ("locals", Json.List (List.map (fun g -> Json.Int g) locals));
        ("split_overlapped", Json.Bool split_overlapped);
      ]

let trace_to_json ?max_rounds (trace : Trace.t) =
  let rounds = trace.Trace.rounds in
  let shown =
    match max_rounds with
    | None -> rounds
    | Some k -> List.filteri (fun i _ -> i < k) rounds
  in
  Json.Obj
    [
      ("circuit", Json.String (Qec_circuit.Circuit.name trace.Trace.circuit));
      ("grid_side", Json.Int (Qec_lattice.Grid.side trace.Trace.grid));
      ("num_rounds", Json.Int (Trace.num_rounds trace));
      ("swap_count", Json.Int (Trace.swap_count trace));
      ( "initial_cells",
        Json.List
          (Array.to_list (Array.map (fun c -> Json.Int c) trace.Trace.initial_cells))
      );
      ("rounds", Json.List (List.map round_to_json shown));
    ]

let exposure_to_json ~d (e : Autobraid.Reliability.exposure) =
  Json.Obj
    [
      ("d", Json.Int d);
      ("data_blocks", Json.Float e.Autobraid.Reliability.data_blocks);
      ("routing_blocks", Json.Float e.Autobraid.Reliability.routing_blocks);
      ( "failure_probability",
        Json.Float (Autobraid.Reliability.failure_probability ~d e) );
    ]

let backend_outcome_to_json ?max_rounds timing
    (o : Autobraid.Comm_backend.outcome) =
  let d = timing.Qec_surface.Timing.d in
  let exposure = Autobraid.Reliability.exposure_of_result timing o.result in
  Json.Obj
    [
      ("backend", Json.String o.Autobraid.Comm_backend.backend);
      ("result", result_to_json o.result);
      ( "backend_stats",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) o.stats) );
      ("trace", trace_to_json ?max_rounds o.trace);
      ("exposure", exposure_to_json ~d exposure);
    ]

let telemetry_to_json collector =
  let module Tel = Qec_telemetry.Telemetry in
  let module Col = Qec_telemetry.Collector in
  let span_obj (s : Tel.span) =
    Json.Obj
      [
        ("name", Json.String s.span_name);
        ("depth", Json.Int s.depth);
        ("domain", Json.Int s.domain);
        ("worker", Json.Int s.worker);
        ("start_s", Json.Float s.start_s);
        ("total_s", Json.Float s.total_s);
        ("self_s", Json.Float s.self_s);
      ]
  in
  let hist_obj (h : Tel.histogram) =
    Json.Obj
      [
        ("name", Json.String h.hist_name);
        ("count", Json.Int h.count);
        ("sum", Json.Float h.sum);
        ("min", Json.Float h.min_v);
        ("max", Json.Float h.max_v);
        ("mean", Json.Float h.mean);
        ("p50", Json.Float h.p50);
        ("p95", Json.Float h.p95);
      ]
  in
  let phase_obj (p : Col.phase) =
    Json.Obj
      [
        ("name", Json.String p.phase_name);
        ("calls", Json.Int p.calls);
        ("total_s", Json.Float p.total_s);
        ("self_s", Json.Float p.self_s);
      ]
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (n, v) -> (n, Json.Int v)) (Col.counters collector))
      );
      ( "gauges",
        Json.Obj
          (List.map (fun (n, v) -> (n, Json.Float v)) (Col.gauges collector))
      );
      ("histograms", Json.List (List.map hist_obj (Col.histograms collector)));
      ("spans", Json.List (List.map span_obj (Col.spans collector)));
      ("phases", Json.List (List.map phase_obj (Col.phases collector)));
    ]

let coupling_to_dot coupling =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "graph coupling {\n  node [shape=circle];\n";
  for q = 0 to Qec_circuit.Coupling.num_qubits coupling - 1 do
    Buffer.add_string buf (Printf.sprintf "  q%d;\n" q)
  done;
  List.iter
    (fun (a, b, w) ->
      Buffer.add_string buf
        (Printf.sprintf "  q%d -- q%d [label=\"%d\"];\n" a b w))
    (Qec_circuit.Coupling.edges coupling);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let interference_to_dot placement tasks =
  let ig = Autobraid.Interference.build placement tasks in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "graph interference {\n  node [shape=box];\n";
  List.iter
    (fun (t : Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  cx%d [label=\"cx%d(q%d,q%d) deg=%d\"];\n" t.id t.id
           t.q1 t.q2
           (Autobraid.Interference.degree ig t.id)))
    (Autobraid.Interference.nodes ig);
  List.iter
    (fun (t : Task.t) ->
      List.iter
        (fun (u : Task.t) ->
          if t.id < u.id then
            Buffer.add_string buf (Printf.sprintf "  cx%d -- cx%d;\n" t.id u.id))
        (Autobraid.Interference.neighbors ig t.id))
    (Autobraid.Interference.nodes ig);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let p_curve_to_csv curve =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "p,cycles,time_us,rounds,swaps\n";
  List.iter
    (fun (p, (r : S.result)) ->
      Buffer.add_string buf
        (Printf.sprintf "%.1f,%d,%.1f,%d,%d\n" p r.total_cycles
           (2.2 *. float_of_int r.total_cycles)
           r.rounds r.swaps_inserted))
    curve;
  Buffer.contents buf

let diagnostic_to_json (d : Qec_lint.Diagnostic.t) =
  let line, col =
    match d.pos with
    | Some { Qec_qasm.Ast.line; col } -> (line, col)
    | None -> (0, 0)
  in
  Json.Obj
    ([
       ("code", Json.String d.code);
       ("severity", Json.String (Qec_lint.Diagnostic.severity_to_string d.severity));
       ("file", Json.String d.file);
       ("line", Json.Int line);
       ("col", Json.Int col);
       ("message", Json.String d.message);
     ]
    @ match d.context with
      | None -> []
      | Some c -> [ ("context", Json.String c) ])

let diagnostics_to_json ds = Json.List (List.map diagnostic_to_json ds)

let certificate_to_json (c : Qec_verify.Certifier.t) =
  let module Cert = Qec_verify.Certifier in
  let module Inv = Qec_verify.Invariant in
  let witness_to_json (w : Cert.witness) =
    Json.Obj
      ([]
      @ (match w.round with
        | Some r -> [ ("round", Json.Int r) ]
        | None -> [])
      @ (match w.gate with Some g -> [ ("gate", Json.Int g) ] | None -> [])
      @ [ ("detail", Json.String w.detail) ])
  in
  let invariant_to_json inv =
    let ws = Cert.witnesses_for c inv in
    Json.Obj
      ([
         ("id", Json.String (Inv.id inv));
         ("title", Json.String (Inv.title inv));
         ("status", Json.String (if ws = [] then "pass" else "fail"));
       ]
      @
      if ws = [] then []
      else [ ("witnesses", Json.List (List.map witness_to_json ws)) ])
  in
  Json.Obj
    [
      ("schema", Json.String "autobraid-cert/v1");
      ("circuit", Json.String c.Cert.circuit_name);
      ( "backend",
        match c.Cert.backend with
        | Some b -> Json.String b
        | None -> Json.Null );
      ("num_gates", Json.Int c.Cert.num_gates);
      ("num_rounds", Json.Int c.Cert.num_rounds);
      ( "cycles",
        Json.Obj
          [
            ("computed", Json.Int c.Cert.cycles_computed);
            ("traced", Json.Int c.Cert.cycles_traced);
            ( "reported",
              match c.Cert.cycles_reported with
              | Some n -> Json.Int n
              | None -> Json.Null );
          ] );
      ("ok", Json.Bool (Cert.ok c));
      ("invariants", Json.List (List.map invariant_to_json Inv.all));
    ]
