(** Minimal JSON document builder and printer (no external dependency).

    Enough for exporting results and traces: construction, escaping, and
    deterministic compact or indented printing. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with two spaces.
    Floats print with enough digits to round-trip; NaN/infinities become
    [null] (JSON has no spelling for them). *)

val member : string -> t -> t option
(** [member key (Obj ...)] — convenience for tests. [None] on missing keys
    or non-objects. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (recursive descent, no external dependency).
    Numbers without fraction/exponent parse as [Int] (falling back to
    [Float] on overflow), everything else as [Float]; [\u] escapes are
    UTF-8-encoded, surrogate pairs combined. Trailing non-whitespace after
    the value is an error. [Error msg] carries a [line, column] position.
    Inverse of {!to_string} for every value it can print (NaN/infinity
    print as [null] and come back as [Null]). *)
