(** Exporters: scheduling results and analyses as JSON, DOT, and CSV.

    JSON for downstream plotting, DOT (Graphviz) for inspecting coupling
    and interference structure, CSV for p-sweep curves. *)

val result_to_json : Autobraid.Scheduler.result -> Json.t
(** All result fields, under stable snake_case keys. *)

val results_to_json :
  (string * Autobraid.Scheduler.result) list -> Json.t
(** Labelled comparison, e.g. [("baseline", r1); ("autobraid", r2)]. *)

val trace_to_json :
  ?max_rounds:int -> Autobraid.Trace.t -> Json.t
(** Trace summary plus the first [max_rounds] (default all) rounds with
    their scheduled gate ids, path lengths and swaps. *)

val exposure_to_json :
  d:int -> Autobraid.Reliability.exposure -> Json.t

val backend_outcome_to_json :
  ?max_rounds:int ->
  Qec_surface.Timing.t ->
  Autobraid.Comm_backend.outcome ->
  Json.t
(** One communication backend's run: [backend] name, the full
    {!result_to_json} record, the backend-specific [backend_stats]
    (generic float-valued keys, e.g. surgery's pipelining counters), the
    trace, and reliability exposure at the timing's distance. *)

val telemetry_to_json : Qec_telemetry.Collector.t -> Json.t
(** Everything a collector gathered: counters and gauges as objects,
    histograms / spans / aggregated phases as lists, all snake_case. *)

val coupling_to_dot : Qec_circuit.Coupling.t -> string
(** Undirected weighted graph; edge labels carry interaction counts. *)

val interference_to_dot :
  Qec_lattice.Placement.t -> Autobraid.Task.t list -> string
(** The CX interference graph of one round's tasks under a placement. *)

val p_curve_to_csv : (float * Autobraid.Scheduler.result) list -> string
(** "p,cycles,time_us,rounds,swaps" rows, one per threshold. *)

val diagnostic_to_json : Qec_lint.Diagnostic.t -> Json.t
(** Fields [code], [severity], [file], [line], [col] (0 when the
    diagnostic has no source position), [message], and [context] when
    present — the same shape as [Qec_lint.Diagnostic.to_jsonl]. *)

val diagnostics_to_json : Qec_lint.Diagnostic.t list -> Json.t
(** A JSON array of {!diagnostic_to_json} objects. *)

val certificate_to_json : Qec_verify.Certifier.t -> Json.t
(** The [autobraid-cert/v1] schema: circuit/backend identity, round and
    cycle accounting, overall [ok], and one entry per
    {!Qec_verify.Invariant.t} with pass/fail status and failure
    witnesses (round, gate, detail). *)
