module Trace = Autobraid.Trace
module Task = Autobraid.Task
module Grid = Qec_lattice.Grid
module Path = Qec_lattice.Path
module Placement = Qec_lattice.Placement

let cell_px = 44
let margin = 24

(* A deterministic, colorblind-friendly cycle for path strokes. *)
let palette =
  [| "#4477aa"; "#ee6677"; "#228833"; "#ccbb44"; "#66ccee"; "#aa3377";
     "#bbbbbb" |]

let vertex_xy grid v =
  let x, y = Grid.vertex_xy grid v in
  (margin + (x * cell_px), margin + (y * cell_px))

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let emit_lattice buf grid placement =
  let l = Grid.side grid in
  (* tiles *)
  for y = 0 to l - 1 do
    for x = 0 to l - 1 do
      let px = margin + (x * cell_px) and py = margin + (y * cell_px) in
      buf_addf buf
        "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#f7f7f7\" \
         stroke=\"#dddddd\"/>\n"
        px py cell_px cell_px;
      match Placement.qubit_of_cell placement (Grid.cell_id grid ~x ~y) with
      | Some q ->
        buf_addf buf
          "<text x=\"%d\" y=\"%d\" font-size=\"11\" font-family=\"monospace\" \
           text-anchor=\"middle\" fill=\"#333333\">q%d</text>\n"
          (px + (cell_px / 2))
          (py + (cell_px / 2) + 4)
          q
      | None -> ()
    done
  done;
  (* channel vertices *)
  for y = 0 to l do
    for x = 0 to l do
      let px = margin + (x * cell_px) and py = margin + (y * cell_px) in
      buf_addf buf "<circle cx=\"%d\" cy=\"%d\" r=\"2\" fill=\"#bbbbbb\"/>\n" px
        py
    done
  done

let emit_path buf grid color path =
  let points =
    Path.vertices path
    |> List.map (fun v ->
           let x, y = vertex_xy grid v in
           Printf.sprintf "%d,%d" x y)
    |> String.concat " "
  in
  if Path.length path = 1 then begin
    let x, y = vertex_xy grid (Path.source path) in
    buf_addf buf
      "<circle cx=\"%d\" cy=\"%d\" r=\"5\" fill=\"%s\" fill-opacity=\"0.9\"/>\n"
      x y color
  end
  else
    buf_addf buf
      "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"4\" \
       stroke-opacity=\"0.85\" stroke-linecap=\"round\" \
       stroke-linejoin=\"round\"/>\n"
      points color

let cell_center grid placement q =
  let x, y = Grid.cell_xy (Placement.grid placement) (Placement.cell_of_qubit placement q) in
  ignore grid;
  (margin + (x * cell_px) + (cell_px / 2), margin + (y * cell_px) + (cell_px / 2))

let round_svg (trace : Trace.t) k =
  if k < 0 || k >= Trace.num_rounds trace then invalid_arg "Svg.round_svg";
  let grid = trace.Trace.grid in
  let placement = Trace.placement_after trace k in
  let l = Grid.side grid in
  let size = (2 * margin) + (l * cell_px) in
  let buf = Buffer.create 4096 in
  buf_addf buf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\">\n"
    size (size + 20) size (size + 20);
  emit_lattice buf grid placement;
  let title =
    match List.nth trace.Trace.rounds k with
    | Trace.Local { gates } ->
      Printf.sprintf "round %d: local (%d gates)" k (List.length gates)
    | Trace.Braid { braids; locals } ->
      List.iteri
        (fun i ((_ : Task.t), path) ->
          emit_path buf grid palette.(i mod Array.length palette) path)
        braids;
      Printf.sprintf "round %d: %d braids, %d locals" k (List.length braids)
        (List.length locals)
    | Trace.Merge { merges; locals; split_overlapped } ->
      List.iteri
        (fun i ((_ : Task.t), path) ->
          emit_path buf grid palette.(i mod Array.length palette) path)
        merges;
      Printf.sprintf "round %d: %d merges, %d locals%s" k (List.length merges)
        (List.length locals)
        (if split_overlapped then " (split pipelined)" else "")
    | Trace.Swap_layer { swaps } ->
      List.iteri
        (fun i (a, b) ->
          let x1, y1 = cell_center grid placement a in
          let x2, y2 = cell_center grid placement b in
          buf_addf buf
            "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" \
             stroke-width=\"3\" stroke-dasharray=\"6 3\"/>\n"
            x1 y1 x2 y2
            palette.(i mod Array.length palette))
        swaps;
      Printf.sprintf "round %d: swap layer (%d swaps)" k (List.length swaps)
  in
  buf_addf buf
    "<text x=\"%d\" y=\"%d\" font-size=\"12\" font-family=\"sans-serif\" \
     fill=\"#000000\">%s</text>\n"
    margin (size + 12) title;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save_round path trace k =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (round_svg trace k))
