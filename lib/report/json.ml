type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The shared shortest-round-trip printer, so telemetry JSONL and report
   JSON agree byte-for-byte on the same values. *)
let float_repr = Qec_util.Floatfmt.repr

let to_string ?(indent = false) t =
  let buf = Buffer.create 256 in
  let pad level = if indent then Buffer.add_string buf (String.make (2 * level) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          go (level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          go (level + 1) v)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

(* ---------------- parsing ---------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let line = ref 1 and bol = ref 0 in
  let fail msg =
    raise
      (Parse_error
         (Printf.sprintf "line %d, column %d: %s" !line (!pos - !bol + 1) msg))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () =
    (if !pos < n && s.[!pos] = '\n' then begin
       incr line;
       bol := !pos + 1
     end);
    incr pos
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      for _ = 1 to l do
        advance ()
      done;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* UTF-8-encode one code point (for \uXXXX escapes; surrogate pairs are
     combined by the caller). *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | Some v ->
      for _ = 1 to 4 do
        advance ()
      done;
      v
    | None -> fail "invalid \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> begin
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'u' ->
          advance ();
          let cp = hex4 () in
          let cp =
            (* high surrogate: a low surrogate must follow *)
            if cp >= 0xd800 && cp <= 0xdbff
               && !pos + 1 < n
               && s.[!pos] = '\\'
               && s.[!pos + 1] = 'u'
            then begin
              advance ();
              advance ();
              let lo = hex4 () in
              if lo >= 0xdc00 && lo <= 0xdfff then
                0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
              else fail "invalid surrogate pair"
            end
            else cp
          in
          add_utf8 buf cp
        | Some c -> fail (Printf.sprintf "invalid escape \\%C" c)
        | None -> fail "unterminated string");
        loop ()
      end
      | Some c when Char.code c < 0x20 -> fail "unescaped control character"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_int = ref true in
    if peek () = Some '-' then advance ();
    let digits () =
      let d = ref 0 in
      let rec go () =
        match peek () with
        | Some ('0' .. '9') ->
          incr d;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if !d = 0 then fail "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin
      is_int := false;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_int := false;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_int then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
    else Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}' in object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' in array"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing content after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
