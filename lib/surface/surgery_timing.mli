(** Lattice-surgery latency model, alongside the braiding {!Timing}.

    In lattice surgery a CX is executed by a ZZ/XX merge-split through an
    ancilla region: the {e merge} needs [d] rounds of joint stabilizer
    measurement and the {e split} another [d] rounds, so a full CX costs
    [2 d] cycles — the same headline number as a braid, but with a very
    different congestion profile:

    - the ancilla tiles along the routing path are occupied {e only for
      the merge duration} ([d] cycles); during the split the fabric is
      already free, so a data-independent next round can overlap the
      split ("split pipelining", cutting a merge round to [d] cycles);
    - occupying a path is not free: every tile held for a cycle is
      exposure (and excluded bandwidth), so the router scores candidate
      schedules by {e tile-time volume} = path length x merge duration
      instead of treating length as irrelevant;
    - long-range CX is native — no SWAP insertion is ever needed.

    Shares {!Timing.t} so a single [d]/[cycle_us] configuration drives
    both backends and speedup ratios stay unit-free. *)

type t = Timing.t

val merge_cycles : t -> int
(** [d] — rounds of joint measurement to fuse the operand patches with
    the ancilla path. *)

val split_cycles : t -> int
(** [d] — rounds to measure the ancilla region back out. *)

val cx_cycles : t -> int
(** [merge + split = 2 d], the latency of one unpipelined surgery CX. *)

val tile_time : t -> path_vertices:int -> int
(** Tile-time volume of one merge: ancilla path length times the merge
    duration — the quantity the surgery router minimizes. Raises
    [Invalid_argument] on an empty path. *)

val gate_cycles : t -> Qec_circuit.Gate.t -> int
(** Latency of one logical gate under lattice surgery: [d] for local
    gates, [2d] for two-qubit gates. Raises [Invalid_argument] on wide
    gates and barriers (lower first). *)
