type t = Timing.t

let merge_cycles (t : Timing.t) = t.Timing.d
let split_cycles (t : Timing.t) = t.Timing.d
let cx_cycles t = merge_cycles t + split_cycles t

let tile_time t ~path_vertices =
  if path_vertices < 1 then
    invalid_arg "Surgery_timing.tile_time: empty ancilla path";
  path_vertices * merge_cycles t

let gate_cycles t g =
  if Qec_circuit.Gate.is_two_qubit g then cx_cycles t
  else if Qec_circuit.Gate.is_single_qubit g then Timing.single_qubit_cycles t
  else
    invalid_arg
      (Printf.sprintf "Surgery_timing.gate_cycles: %s must be lowered first"
         (Qec_circuit.Gate.name g))
