(** The certifiable schedule invariants.

    Each constructor names one property a valid trace must satisfy; the
    certifier ({!Certifier}) re-derives every one from first principles
    and reports them individually, so a certificate names {e which}
    contract a bad schedule broke, not just that one did. Identifiers are
    stable ["family/detail"] slugs used in the [autobraid-cert/v1] JSON
    schema and by the mutation corpus. *)

type t =
  | Gate_exactly_once
      (** every lowered circuit gate executes exactly once, with all
          referenced gate ids in range *)
  | Gate_dependency_order
      (** no gate executes before a program-order predecessor on any of
          its operand qubits *)
  | Round_shape
      (** rounds are non-empty; local slots hold only non-two-qubit
          gates; braid/merge entries are two-qubit gates whose task
          operands match the gate *)
  | Path_channel
      (** each braid/merge path is a valid channel path (distinct,
          consecutively adjacent vertices) whose endpoints are corners of
          the operand tiles under the placement current at that round *)
  | Path_disjoint
      (** paths within one round are pairwise vertex-disjoint *)
  | Swap_legal  (** a swap layer touches each qubit at most once *)
  | Split_pipeline
      (** an overlapped split is followed by a round touching none of the
          merge operand qubits *)
  | Cycle_account
      (** independently recomputed cycle total matches {!Autobraid.Trace.cycles}
          and the scheduler-reported total *)

val all : t list
(** Every invariant, in certificate order. *)

val id : t -> string
(** Stable slug, e.g. ["gate/exactly-once"], ["path/disjoint"]. *)

val title : t -> string
(** One-line human description. *)

val of_id : string -> t option
