module Circuit = Qec_circuit.Circuit
module Gate = Qec_circuit.Gate
module Trace = Autobraid.Trace
module Task = Autobraid.Task
module St = Qec_surface.Surgery_timing

type kind =
  | Path_overlap
  | Dropped_dependency
  | Double_execute
  | Illegal_overlap
  | Corrupt_cycles

let all =
  [
    Path_overlap;
    Dropped_dependency;
    Double_execute;
    Illegal_overlap;
    Corrupt_cycles;
  ]

let name = function
  | Path_overlap -> "path-overlap"
  | Dropped_dependency -> "dropped-dependency"
  | Double_execute -> "double-execute"
  | Illegal_overlap -> "illegal-overlap"
  | Corrupt_cycles -> "corrupt-cycles"

let of_name s = List.find_opt (fun k -> name k = s) all

let expected = function
  | Path_overlap -> Invariant.Path_disjoint
  | Dropped_dependency -> Invariant.Gate_dependency_order
  | Double_execute -> Invariant.Gate_exactly_once
  | Illegal_overlap -> Invariant.Split_pipeline
  | Corrupt_cycles -> Invariant.Cycle_account

let description = function
  | Path_overlap -> "copy one round's first path onto its second operation"
  | Dropped_dependency ->
    "hoist a local gate into a round before its predecessor"
  | Double_execute -> "append an already-executed gate to a later round"
  | Illegal_overlap ->
    "claim split pipelining where the next round conflicts"
  | Corrupt_cycles -> "report a cycle total off by one"

(* ---------------- helpers over the round list ---------------- *)

let set_round rounds i r = List.mapi (fun j r0 -> if j = i then r else r0) rounds

(* Round index in which each in-range gate id executes. *)
let execution_rounds (trace : Trace.t) =
  let n = Circuit.length trace.Trace.circuit in
  let er = Array.make n (-1) in
  let mark g round = if g >= 0 && g < n && er.(g) < 0 then er.(g) <- round in
  List.iteri
    (fun round -> function
      | Trace.Local { gates } -> List.iter (fun g -> mark g round) gates
      | Trace.Braid { braids = ops; locals }
      | Trace.Merge { merges = ops; locals; _ } ->
        List.iter (fun ((t : Task.t), _) -> mark t.Task.id round) ops;
        List.iter (fun g -> mark g round) locals
      | Trace.Swap_layer _ -> ())
    trace.Trace.rounds;
  er

(* Immediate program-order predecessors per gate (same derivation the
   certifier uses, duplicated on purpose: the mutator may not share the
   verifier's code any more than the schedulers may). *)
let program_preds circuit =
  let n = Circuit.length circuit in
  let last = Array.make (Circuit.num_qubits circuit) (-1) in
  let preds = Array.make n [] in
  for g = 0 to n - 1 do
    let qs = Gate.qubits (Circuit.gate circuit g) in
    preds.(g) <-
      List.sort_uniq compare
        (List.filter_map
           (fun q -> if last.(q) >= 0 then Some last.(q) else None)
           qs);
    List.iter (fun q -> last.(q) <- g) qs
  done;
  preds

let gate_qubits (trace : Trace.t) g =
  if g >= 0 && g < Circuit.length trace.Trace.circuit then
    Gate.qubits (Circuit.gate trace.Trace.circuit g)
  else []

(* Appending gate [g] to round [i]'s locals must not create collateral
   damage: the round must be able to hold locals, and the previous round
   must not be an overlapped merge whose qubits [g] would newly touch
   (that would trip the split-pipeline invariant instead of the one the
   mutation targets). *)
let can_host_local rounds_arr i g_qubits =
  let holds_locals =
    match rounds_arr.(i) with
    | Trace.Local _ | Trace.Braid _ | Trace.Merge _ -> true
    | Trace.Swap_layer _ -> false
  in
  holds_locals
  && (i = 0
     ||
     match rounds_arr.(i - 1) with
     | Trace.Merge { merges; split_overlapped = true; _ } ->
       not
         (List.exists
            (fun ((t : Task.t), _) ->
              List.mem t.q1 g_qubits || List.mem t.q2 g_qubits)
            merges)
     | _ -> true)

let add_local round g =
  match round with
  | Trace.Local { gates } -> Trace.Local { gates = gates @ [ g ] }
  | Trace.Braid { braids; locals } ->
    Trace.Braid { braids; locals = locals @ [ g ] }
  | Trace.Merge { merges; locals; split_overlapped } ->
    Trace.Merge { merges; locals = locals @ [ g ]; split_overlapped }
  | Trace.Swap_layer _ -> invalid_arg "Mutate.add_local"

(* ---------------- the five mutations ---------------- *)

let path_overlap (trace : Trace.t) =
  let mutate_ops ops =
    match ops with
    | ((_, p1) as op1) :: ((t2 : Task.t), _) :: rest ->
      Some (op1 :: (t2, p1) :: rest)
    | _ -> None
  in
  let rec scan i = function
    | [] -> None
    | Trace.Braid { braids; locals } :: _ when List.length braids >= 2 ->
      Option.map
        (fun braids' ->
          set_round trace.Trace.rounds i (Trace.Braid { braids = braids'; locals }))
        (mutate_ops braids)
    | Trace.Merge { merges; locals; split_overlapped } :: _
      when List.length merges >= 2 ->
      Option.map
        (fun merges' ->
          set_round trace.Trace.rounds i
            (Trace.Merge { merges = merges'; locals; split_overlapped }))
        (mutate_ops merges)
    | _ :: rest -> scan (i + 1) rest
  in
  Option.map
    (fun rounds -> { trace with Trace.rounds })
    (scan 0 trace.Trace.rounds)

let dropped_dependency (trace : Trace.t) =
  let rounds_arr = Array.of_list trace.Trace.rounds in
  let er = execution_rounds trace in
  let preds = program_preds trace.Trace.circuit in
  let locals_of = function
    | Trace.Local { gates } -> gates
    | Trace.Braid { locals; _ } | Trace.Merge { locals; _ } -> locals
    | Trace.Swap_layer _ -> []
  in
  let remove_local round g =
    let drop = List.filter (fun x -> x <> g) in
    match round with
    | Trace.Local { gates } -> Trace.Local { gates = drop gates }
    | Trace.Braid { braids; locals } ->
      Trace.Braid { braids; locals = drop locals }
    | Trace.Merge { merges; locals; split_overlapped } ->
      Trace.Merge { merges; locals = drop locals; split_overlapped }
    | Trace.Swap_layer _ as r -> r
  in
  (* A candidate: local gate [g] in round [r] whose latest predecessor
     runs in round [rp >= 1]; hoist [g] into some round [r' < rp]. The
     source round must stay non-empty. *)
  let candidate =
    let found = ref None in
    Array.iteri
      (fun r round ->
        if !found = None then
          List.iter
            (fun g ->
              if !found = None && g >= 0 && preds.(g) <> [] then begin
                let rp =
                  List.fold_left (fun acc p -> max acc er.(p)) (-1) preds.(g)
                in
                let source_stays_nonempty =
                  match round with
                  | Trace.Local { gates } -> List.length gates >= 2
                  | Trace.Braid _ | Trace.Merge _ -> true
                  | Trace.Swap_layer _ -> false
                in
                if rp >= 1 && source_stays_nonempty then begin
                  let qs = gate_qubits trace g in
                  let r' = ref 0 in
                  while
                    !r' < rp && not (can_host_local rounds_arr !r' qs)
                  do
                    incr r'
                  done;
                  if !r' < rp then found := Some (r, g, !r')
                end
              end)
            (locals_of round))
      rounds_arr;
    !found
  in
  Option.map
    (fun (r, g, r') ->
      let rounds =
        List.mapi
          (fun i round ->
            if i = r then remove_local round g
            else if i = r' then add_local round g
            else round)
          trace.Trace.rounds
      in
      { trace with Trace.rounds })
    candidate

let double_execute (trace : Trace.t) =
  let rounds_arr = Array.of_list trace.Trace.rounds in
  let er = execution_rounds trace in
  let circuit = trace.Trace.circuit in
  (* Re-append a single-qubit gate to the latest hospitable round at or
     after its execution round — list order makes the copy the second
     occurrence even within the same round. *)
  let candidate = ref None in
  for g = Circuit.length circuit - 1 downto 0 do
    if
      !candidate = None && er.(g) >= 0
      && not (Gate.is_two_qubit (Circuit.gate circuit g))
    then begin
      let qs = gate_qubits trace g in
      for i = Array.length rounds_arr - 1 downto er.(g) do
        if !candidate = None && can_host_local rounds_arr i qs then
          candidate := Some (g, i)
      done
    end
  done;
  Option.map
    (fun (g, i) ->
      let rounds =
        List.mapi
          (fun j round -> if j = i then add_local round g else round)
          trace.Trace.rounds
      in
      { trace with Trace.rounds })
    !candidate

let illegal_overlap timing (result : Autobraid.Scheduler.result)
    (trace : Trace.t) =
  let rounds_arr = Array.of_list trace.Trace.rounds in
  let touched i =
    match rounds_arr.(i) with
    | Trace.Local { gates } -> List.concat_map (gate_qubits trace) gates
    | Trace.Braid { braids = ops; locals }
    | Trace.Merge { merges = ops; locals; _ } ->
      List.concat_map (fun ((t : Task.t), _) -> [ t.q1; t.q2 ]) ops
      @ List.concat_map (gate_qubits trace) locals
    | Trace.Swap_layer { swaps } ->
      List.concat_map (fun (a, b) -> [ a; b ]) swaps
  in
  let illegal_to_overlap i merges =
    i + 1 >= Array.length rounds_arr
    || List.exists
         (fun ((t : Task.t), _) ->
           let next = touched (i + 1) in
           List.mem t.q1 next || List.mem t.q2 next)
         merges
  in
  let site = ref None in
  Array.iteri
    (fun i -> function
      | Trace.Merge { merges; split_overlapped = false; _ }
        when !site = None && illegal_to_overlap i merges ->
        site := Some i
      | _ -> ())
    rounds_arr;
  Option.map
    (fun i ->
      let rounds =
        List.mapi
          (fun j round ->
            match round with
            | Trace.Merge { merges; locals; _ } when j = i ->
              Trace.Merge { merges; locals; split_overlapped = true }
            | r -> r)
          trace.Trace.rounds
      in
      (* Claiming the overlap un-charges the split; keep every cycle
         total consistent with the mutated trace so only the pipelining
         contract is broken. *)
      ( {
          result with
          Autobraid.Scheduler.total_cycles =
            result.Autobraid.Scheduler.total_cycles - St.split_cycles timing;
        },
        { trace with Trace.rounds } ))
    !site

let apply kind timing (result : Autobraid.Scheduler.result) (trace : Trace.t) =
  match kind with
  | Path_overlap -> Option.map (fun t -> (result, t)) (path_overlap trace)
  | Dropped_dependency ->
    Option.map (fun t -> (result, t)) (dropped_dependency trace)
  | Double_execute -> Option.map (fun t -> (result, t)) (double_execute trace)
  | Illegal_overlap -> illegal_overlap timing result trace
  | Corrupt_cycles ->
    Some
      ( {
          result with
          Autobraid.Scheduler.total_cycles =
            result.Autobraid.Scheduler.total_cycles + 1;
        },
        trace )
