type t =
  | Gate_exactly_once
  | Gate_dependency_order
  | Round_shape
  | Path_channel
  | Path_disjoint
  | Swap_legal
  | Split_pipeline
  | Cycle_account

let all =
  [
    Gate_exactly_once;
    Gate_dependency_order;
    Round_shape;
    Path_channel;
    Path_disjoint;
    Swap_legal;
    Split_pipeline;
    Cycle_account;
  ]

let id = function
  | Gate_exactly_once -> "gate/exactly-once"
  | Gate_dependency_order -> "gate/dependency-order"
  | Round_shape -> "round/shape"
  | Path_channel -> "path/channel"
  | Path_disjoint -> "path/disjoint"
  | Swap_legal -> "swap/legal"
  | Split_pipeline -> "surgery/split-pipeline"
  | Cycle_account -> "cycles/account"

let title = function
  | Gate_exactly_once -> "every circuit gate executes exactly once"
  | Gate_dependency_order -> "no gate runs before a program-order predecessor"
  | Round_shape -> "rounds are non-empty and slot gates by arity"
  | Path_channel -> "paths are valid channel routes between operand tiles"
  | Path_disjoint -> "simultaneous paths are pairwise vertex-disjoint"
  | Swap_legal -> "swap layers touch each qubit at most once"
  | Split_pipeline -> "overlapped splits never collide with the next round"
  | Cycle_account -> "cycle totals match an independent recomputation"

let of_id s = List.find_opt (fun i -> id i = s) all
