module Circuit = Qec_circuit.Circuit
module Gate = Qec_circuit.Gate
module Grid = Qec_lattice.Grid
module Path = Qec_lattice.Path
module Timing = Qec_surface.Timing
module St = Qec_surface.Surgery_timing
module Trace = Autobraid.Trace
module Task = Autobraid.Task
module Bitset = Qec_util.Bitset
module I = Invariant

type witness = {
  invariant : Invariant.t;
  round : int option;
  gate : int option;
  detail : string;
}

type t = {
  circuit_name : string;
  backend : string option;
  num_gates : int;
  num_rounds : int;
  cycles_computed : int;
  cycles_traced : int;
  cycles_reported : int option;
  witnesses : witness list;
}

(* The whole point of this module is to NOT trust the machinery under
   test, so everything below rebuilds its verdicts from the raw trace
   data: dependency order from per-qubit program order (not Dag),
   placement from a replayed qubit->cell array (not Placement), path
   validity from Grid adjacency (not Path's constructor invariant). *)

(* Program-order predecessors: for each gate, the immediately preceding
   gate on each of its operand qubits. Transitive order follows by
   induction, so checking immediate predecessors certifies the full
   dependency relation. *)
let program_preds circuit =
  let n = Circuit.length circuit in
  let last = Array.make (Circuit.num_qubits circuit) (-1) in
  let preds = Array.make n [] in
  for g = 0 to n - 1 do
    let qs = Gate.qubits (Circuit.gate circuit g) in
    preds.(g) <-
      List.sort_uniq compare
        (List.filter_map
           (fun q -> if last.(q) >= 0 then Some last.(q) else None)
           qs);
    List.iter (fun q -> last.(q) <- g) qs
  done;
  preds

let certify ?backend ?result timing (trace : Trace.t) =
  let ws = ref [] in
  let add invariant ?round ?gate fmt =
    Printf.ksprintf
      (fun detail -> ws := { invariant; round; gate; detail } :: !ws)
      fmt
  in
  let circuit = trace.Trace.circuit in
  let grid = trace.Trace.grid in
  let n_gates = Circuit.length circuit in
  let n_qubits = Circuit.num_qubits circuit in
  let preds = program_preds circuit in
  let executed = Array.make n_gates 0 in
  (* Replayed placement: qubit -> cell, advanced only by swap layers. *)
  let cells = Array.copy trace.Trace.initial_cells in
  let placement_ok =
    Array.length cells = n_qubits
    && Array.for_all (fun c -> c >= 0 && c < Grid.num_cells grid) cells
    &&
    let seen = Bitset.create (Grid.num_cells grid) in
    Array.for_all
      (fun c ->
        if Bitset.mem seen c then false
        else begin
          Bitset.add seen c;
          true
        end)
      cells
  in
  if not placement_ok then
    add I.Round_shape "initial placement is not an injective qubit->cell map";
  let qubit_in_range q = q >= 0 && q < n_qubits in
  let gate_in_range g = g >= 0 && g < n_gates in
  (* Exactly-once and dependency order, per gate occurrence. Execution
     order inside a round follows the trace's list order (braids/merges
     first, then locals), matching the replay semantics of rounds. *)
  let execute ~round g =
    if not (gate_in_range g) then
      add I.Gate_exactly_once ~round ~gate:g "gate id %d out of range" g
    else begin
      if executed.(g) > 0 then
        add I.Gate_exactly_once ~round ~gate:g "gate %d executed %d times" g
          (executed.(g) + 1)
      else
        List.iter
          (fun p ->
            if executed.(p) = 0 then
              add I.Gate_dependency_order ~round ~gate:g
                "gate %d runs before its program-order predecessor %d" g p)
          preds.(g);
      executed.(g) <- executed.(g) + 1
    end
  in
  let check_local ~round g =
    execute ~round g;
    if gate_in_range g && Gate.is_two_qubit (Circuit.gate circuit g) then
      add I.Round_shape ~round ~gate:g
        "two-qubit gate %d occupies a local slot" g
  in
  (* One braid/merge entry: arity, operand agreement, channel-path
     validity under the current placement. Returns the path's vertices
     for the disjointness sweep. *)
  let check_op ~round ~kind ((task : Task.t), path) =
    execute ~round task.Task.id;
    let vs = Path.vertices path in
    let operands_ok =
      if not (gate_in_range task.id) then false
      else begin
        let g = Circuit.gate circuit task.id in
        match Gate.two_qubit_operands g with
        | Some (a, b) when (a, b) = (task.q1, task.q2) -> true
        | Some _ ->
          add I.Round_shape ~round ~gate:task.id
            "%s task operands (q%d, q%d) mismatch the gate" kind task.q1
            task.q2;
          false
        | None ->
          add I.Round_shape ~round ~gate:task.id
            "gate %d scheduled as a %s is not a two-qubit gate" task.id kind;
          false
      end
    in
    (* Channel validity: distinct, consecutively adjacent vertices. The
       Path module enforces this at construction; re-deriving it here
       keeps the certificate independent of that invariant. *)
    let seen = Bitset.create (Grid.num_vertices grid) in
    let rec walk = function
      | [] -> add I.Path_channel ~round ~gate:task.id "empty %s path" kind
      | [ v ] -> if Bitset.mem seen v then dup v else Bitset.add seen v
      | v :: (w :: _ as rest) ->
        if Bitset.mem seen v then dup v
        else begin
          Bitset.add seen v;
          if not (List.mem w (Grid.vertex_neighbors grid v)) then
            add I.Path_channel ~round ~gate:task.id
              "path vertices %d and %d are not channel-adjacent" v w;
          walk rest
        end
    and dup v =
      add I.Path_channel ~round ~gate:task.id "path revisits vertex %d" v
    in
    walk vs;
    if
      operands_ok && placement_ok && qubit_in_range task.q1
      && qubit_in_range task.q2 && vs <> []
    then begin
      let corners q = Array.to_list (Grid.cell_corners grid cells.(q)) in
      let src = List.hd vs and tgt = List.nth vs (List.length vs - 1) in
      let ends a b = List.mem src (corners a) && List.mem tgt (corners b) in
      if not (ends task.q1 task.q2 || ends task.q2 task.q1) then
        add I.Path_channel ~round ~gate:task.id
          "path endpoints are not corners of the operand tiles of gate %d"
          task.id
    end;
    vs
  in
  let check_disjoint ~round ops_vertices =
    let used = Bitset.create (Grid.num_vertices grid) in
    List.iter
      (fun ((task : Task.t), vs) ->
        List.iter
          (fun v ->
            if Bitset.mem used v then
              add I.Path_disjoint ~round ~gate:task.Task.id
                "gate %d's path shares vertex %d with an earlier path in the \
                 round"
                task.Task.id v)
          (List.sort_uniq compare vs);
        List.iter (fun v -> Bitset.add used v) vs)
      ops_vertices
  in
  let check_swaps ~round swaps =
    let touched = Array.make (max n_qubits 1) false in
    List.iter
      (fun (a, b) ->
        List.iter
          (fun q ->
            if not (qubit_in_range q) then
              add I.Swap_legal ~round "swap qubit %d out of range" q
            else if touched.(q) then
              add I.Swap_legal ~round "swap layer touches qubit %d twice" q
            else touched.(q) <- true)
          [ a; b ];
        if a <> b && qubit_in_range a && qubit_in_range b then begin
          let ca = cells.(a) in
          cells.(a) <- cells.(b);
          cells.(b) <- ca
        end)
      swaps
  in
  let rounds = Array.of_list trace.Trace.rounds in
  let gate_qubits g =
    if gate_in_range g then Gate.qubits (Circuit.gate circuit g) else []
  in
  let touched_qubits = function
    | Trace.Local { gates } -> List.concat_map gate_qubits gates
    | Trace.Braid { braids = ops; locals }
    | Trace.Merge { merges = ops; locals; _ } ->
      List.concat_map (fun ((tk : Task.t), _) -> [ tk.q1; tk.q2 ]) ops
      @ List.concat_map gate_qubits locals
    | Trace.Swap_layer { swaps } -> List.concat_map (fun (a, b) -> [ a; b ]) swaps
  in
  Array.iteri
    (fun round r ->
      match r with
      | Trace.Local { gates } ->
        if gates = [] then add I.Round_shape ~round "empty local round"
        else List.iter (check_local ~round) gates
      | Trace.Braid { braids; locals } ->
        if braids = [] then add I.Round_shape ~round "braid round without braids"
        else
          check_disjoint ~round
            (List.map
               (fun op -> (fst op, check_op ~round ~kind:"braid" op))
               braids);
        List.iter (check_local ~round) locals
      | Trace.Merge { merges; locals; split_overlapped } ->
        if merges = [] then add I.Round_shape ~round "merge round without merges"
        else
          check_disjoint ~round
            (List.map
               (fun op -> (fst op, check_op ~round ~kind:"merge" op))
               merges);
        List.iter (check_local ~round) locals;
        if split_overlapped then begin
          let mq =
            List.concat_map (fun ((tk : Task.t), _) -> [ tk.q1; tk.q2 ]) merges
          in
          if round + 1 >= Array.length rounds then
            add I.Split_pipeline ~round
              "split overlap claimed on the final round"
          else
            List.iter
              (fun q ->
                if List.mem q mq then
                  add I.Split_pipeline ~round
                    "overlapped split and the next round both touch qubit %d"
                    q)
              (List.sort_uniq compare (touched_qubits rounds.(round + 1)))
        end
      | Trace.Swap_layer { swaps } ->
        if swaps = [] then add I.Round_shape ~round "empty swap layer"
        else check_swaps ~round swaps)
    rounds;
  Array.iteri
    (fun g n ->
      if n = 0 then add I.Gate_exactly_once ~gate:g "gate %d never executed" g)
    executed;
  (* Independent cycle accounting from round shapes and the shared cost
     model, cross-checked against Trace.cycles and the reported total. *)
  let cycles_computed =
    Array.fold_left
      (fun acc -> function
        | Trace.Local _ -> acc + Timing.single_qubit_cycles timing
        | Trace.Braid _ -> acc + Timing.braid_cycles timing
        | Trace.Swap_layer _ -> acc + Timing.swap_layer_cycles timing
        | Trace.Merge { split_overlapped; _ } ->
          acc + St.merge_cycles timing
          + if split_overlapped then 0 else St.split_cycles timing)
      0 rounds
  in
  let cycles_traced = Trace.cycles timing trace in
  if cycles_traced <> cycles_computed then
    add I.Cycle_account "Trace.cycles says %d, independent recomputation says %d"
      cycles_traced cycles_computed;
  let cycles_reported =
    Option.map (fun (r : Autobraid.Scheduler.result) -> r.total_cycles) result
  in
  (match cycles_reported with
  | Some reported when reported <> cycles_computed ->
    add I.Cycle_account
      "scheduler reports %d total cycles, independent recomputation says %d"
      reported cycles_computed
  | Some _ | None -> ());
  {
    circuit_name = Circuit.name circuit;
    backend;
    num_gates = n_gates;
    num_rounds = Array.length rounds;
    cycles_computed;
    cycles_traced;
    cycles_reported;
    witnesses = List.rev !ws;
  }

let ok t = t.witnesses = []

let witnesses_for t inv =
  List.filter (fun w -> w.invariant = inv) t.witnesses

let failed t =
  List.filter (fun inv -> witnesses_for t inv <> []) Invariant.all

let witness_to_string w =
  let where =
    match (w.round, w.gate) with
    | Some r, Some g -> Printf.sprintf "round %d, gate %d: " r g
    | Some r, None -> Printf.sprintf "round %d: " r
    | None, Some g -> Printf.sprintf "gate %d: " g
    | None, None -> ""
  in
  Printf.sprintf "%s: %s%s" (Invariant.id w.invariant) where w.detail

let to_summary t =
  let total = List.length Invariant.all in
  match t.witnesses with
  | [] ->
    Printf.sprintf "%s: certified (%d/%d invariants, %d rounds, %d cycles)"
      t.circuit_name total total t.num_rounds t.cycles_computed
  | first :: _ ->
    Printf.sprintf "%s: FAILED %d/%d invariants (%d witnesses; first: %s)"
      t.circuit_name
      (List.length (failed t))
      total
      (List.length t.witnesses)
      (witness_to_string first)
