(** Dataflow analyses over the gate dependency DAG.

    Gate ids are topologically ordered (a predecessor always has a
    smaller id than its successor — program order refines dependency
    order), so forward analyses converge in one ascending pass and
    backward analyses in one descending pass; {!solve} exploits this
    instead of iterating to a fixpoint.

    The concrete analyses below feed the QL3xx lint rules: qubit
    liveness, per-gate critical-path slack, and per-layer congestion
    pressure from the CX interference graph. *)

type direction = Forward | Backward

val solve :
  n:int ->
  direction:direction ->
  edges:(int -> int list) ->
  init:'a ->
  transfer:(int -> 'a -> 'a) ->
  join:('a -> 'a -> 'a) ->
  'a array
(** Generic one-pass solver over [n] topologically-ordered nodes.
    [edges g] must be the predecessors of [g] (all with smaller ids) for
    [Forward], the successors (all with larger ids) for [Backward]. The
    fact at [g] is [transfer g (fold join init (facts of edges g))] —
    nodes with no edges start from [init]. Raises [Invalid_argument] if
    an edge violates the ordering contract. *)

(** {2 Liveness} *)

val live_after : Qec_circuit.Circuit.t -> Qec_util.Bitset.t array
(** [live_after c].(g) is the set of qubits used by any gate after [g]
    in program order — a backward analysis along the program-order
    chain. A qubit of gate [g] absent from [live_after c].(g) is dead:
    nothing ever reads or measures it again. Callers must not mutate
    the returned sets. *)

(** {2 Critical-path slack} *)

type slack = {
  earliest_finish : int;  (** longest-path completion time of the gate *)
  tail : int;  (** longest path from the gate to any sink, inclusive *)
  slack : int;  (** schedule freedom; 0 = on a critical path *)
}

val default_cost : Qec_circuit.Gate.t -> int
(** Latency in units of [d]: 0 for barriers, 2 for two-qubit and wide
    gates, 1 for local gates — mirroring {!Qec_surface.Timing} without
    fixing a distance. *)

val slack_analysis :
  ?cost:(Qec_circuit.Gate.t -> int) -> Qec_circuit.Circuit.t -> slack array
(** Forward earliest-finish plus backward tail longest-paths over the
    DAG; [slack = critical_length - (earliest_finish + tail - cost)].
    [cost] defaults to {!default_cost}. *)

val critical_length : slack array -> int
(** The longest-path length (0 for an empty circuit). *)

(** {2 Congestion pressure} *)

type congestion = {
  layer : int;  (** ASAP layer index *)
  task : Autobraid.Task.t;
  degree : int;
      (** interference-graph degree: how many other two-qubit gates of
          the same layer have an overlapping bounding box *)
}

val congestion_pressure : Qec_circuit.Circuit.t -> congestion list
(** For every two-qubit gate, its contention within its own ASAP layer
    under the deterministic identity placement on the smallest square
    lattice — the placement-independent congestion signal available
    before any scheduling. Ascending by (layer, gate id). *)
