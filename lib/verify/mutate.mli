(** Adversarial trace mutations — the certifier's own test suite.

    Each {!kind} corrupts a valid schedule in a way that breaks exactly
    one contract; {!expected} names the {!Invariant.t} a sound certifier
    must then report. Running every kind against every backend's traces
    gives a mutation-kill score for the verifier itself: a mutation that
    certifies clean means a blind spot. *)

type kind =
  | Path_overlap  (** two paths in one round share a vertex *)
  | Dropped_dependency
      (** a local gate is hoisted above a program-order predecessor *)
  | Double_execute  (** a gate is appended to a later round again *)
  | Illegal_overlap
      (** a split is marked overlapped although the next round conflicts
          (or does not exist); the cycle totals are adjusted consistently
          so only the pipelining contract breaks *)
  | Corrupt_cycles  (** the reported total is off by one *)

val all : kind list

val name : kind -> string
(** Stable slug, e.g. ["path-overlap"]. *)

val of_name : string -> kind option

val expected : kind -> Invariant.t
(** The invariant this mutation must trip. *)

val description : kind -> string

val apply :
  kind ->
  Qec_surface.Timing.t ->
  Autobraid.Scheduler.result ->
  Autobraid.Trace.t ->
  (Autobraid.Scheduler.result * Autobraid.Trace.t) option
(** Mutate a (result, trace) pair. [None] when the trace offers no site
    for this mutation (e.g. [Illegal_overlap] on a braiding trace, which
    has no merge rounds). Inputs are never modified. *)
