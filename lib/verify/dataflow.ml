module Circuit = Qec_circuit.Circuit
module Gate = Qec_circuit.Gate
module Dag = Qec_circuit.Dag
module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement
module Bitset = Qec_util.Bitset
module Task = Autobraid.Task
module Interference = Autobraid.Interference

type direction = Forward | Backward

let solve ~n ~direction ~edges ~init ~transfer ~join =
  let facts = Array.make n init in
  let visit g =
    let check e =
      let ordered =
        match direction with Forward -> e < g | Backward -> e > g
      in
      if not ordered then
        invalid_arg
          (Printf.sprintf "Dataflow.solve: edge %d -> %d breaks topological \
                           order"
             g e)
    in
    let input =
      List.fold_left
        (fun acc e ->
          check e;
          join acc facts.(e))
        init (edges g)
    in
    facts.(g) <- transfer g input
  in
  (match direction with
  | Forward ->
    for g = 0 to n - 1 do
      visit g
    done
  | Backward ->
    for g = n - 1 downto 0 do
      visit g
    done);
  facts

(* ---------------- liveness ---------------- *)

let live_after circuit =
  let n = Circuit.length circuit in
  let nq = Circuit.num_qubits circuit in
  let empty = Bitset.create nq in
  (* Backward along the program-order chain: the fact at [g] is the set
     of qubits some gate after [g] touches. [transfer s] folds gate [s]'s
     own operands into what is live after [s]. *)
  solve ~n ~direction:Backward
    ~edges:(fun g -> if g + 1 < n then [ g + 1 ] else [])
    ~init:empty
    ~transfer:(fun s after ->
      if s + 1 >= n then empty
      else begin
        let live = Bitset.copy after in
        List.iter
          (fun q -> Bitset.add live q)
          (Gate.qubits (Circuit.gate circuit (s + 1)));
        live
      end)
    ~join:(fun a b ->
      if Bitset.cardinal a = 0 then b
      else begin
        let u = Bitset.copy a in
        Bitset.union_into ~dst:u b;
        u
      end)

(* ---------------- critical-path slack ---------------- *)

type slack = { earliest_finish : int; tail : int; slack : int }

let default_cost g =
  match g with
  | Gate.Barrier _ -> 0
  | _ when Gate.is_two_qubit g || Gate.is_wide g -> 2
  | _ -> 1

let slack_analysis ?(cost = default_cost) circuit =
  let n = Circuit.length circuit in
  let dag = Dag.of_circuit circuit in
  let gate_cost = Array.init n (fun g -> cost (Circuit.gate circuit g)) in
  let finish =
    solve ~n ~direction:Forward ~edges:(Dag.preds dag) ~init:0
      ~transfer:(fun g ready -> ready + gate_cost.(g))
      ~join:max
  in
  let tail =
    solve ~n ~direction:Backward ~edges:(Dag.succs dag) ~init:0
      ~transfer:(fun g below -> below + gate_cost.(g))
      ~join:max
  in
  let critical = Array.fold_left max 0 finish in
  Array.init n (fun g ->
      {
        earliest_finish = finish.(g);
        tail = tail.(g);
        slack = critical - (finish.(g) + tail.(g) - gate_cost.(g));
      })

let critical_length slacks =
  Array.fold_left (fun acc s -> max acc s.earliest_finish) 0 slacks

(* ---------------- congestion pressure ---------------- *)

type congestion = { layer : int; task : Task.t; degree : int }

let smallest_side num_qubits =
  let rec grow l = if l * l >= num_qubits then l else grow (l + 1) in
  grow 1

let congestion_pressure circuit =
  let nq = Circuit.num_qubits circuit in
  if nq = 0 then []
  else begin
    let grid = Grid.create (smallest_side nq) in
    let placement = Placement.identity grid ~num_qubits:nq in
    let dag = Dag.of_circuit circuit in
    let per_layer layer ids =
      let tasks =
        List.filter_map (fun g -> Task.of_gate g (Circuit.gate circuit g)) ids
      in
      if tasks = [] then []
      else begin
        let graph = Interference.build placement tasks in
        List.map
          (fun (t : Task.t) ->
            { layer; task = t; degree = Interference.degree graph t.Task.id })
          tasks
      end
    in
    List.concat (Array.to_list (Array.mapi per_layer (Dag.layers dag)))
  end
