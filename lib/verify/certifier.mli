(** Independent schedule certification.

    [certify] replays a {!Autobraid.Trace.t} and re-derives every
    {!Invariant.t} from first principles — its own per-qubit program-order
    dependency lists (not {!Qec_circuit.Dag}), its own placement replay,
    its own channel-graph adjacency and disjointness checks, and its own
    cycle accounting — so it shares no verdict-bearing logic with
    {!Autobraid.Trace.check} or any scheduler. Optimizing a schedule is
    hard; checking one is cheap (arXiv 2302.00273) — this module is the
    cheap side, used as the oracle the schedulers must satisfy.

    A certificate reports every invariant individually with failure
    witnesses (round / gate / detail), and serializes to the
    [autobraid-cert/v1] JSON schema via [Qec_report.Export]. *)

type witness = {
  invariant : Invariant.t;
  round : int option;  (** 0-based round index, when tied to one round *)
  gate : int option;  (** gate id, when tied to one gate *)
  detail : string;  (** human-readable explanation *)
}

type t = {
  circuit_name : string;
  backend : string option;  (** producing backend, when known *)
  num_gates : int;
  num_rounds : int;
  cycles_computed : int;  (** independent recomputation from round shapes *)
  cycles_traced : int;  (** {!Autobraid.Trace.cycles} *)
  cycles_reported : int option;  (** [result.total_cycles], when given *)
  witnesses : witness list;  (** all failures, replay order; [] = clean *)
}

val certify :
  ?backend:string ->
  ?result:Autobraid.Scheduler.result ->
  Qec_surface.Timing.t ->
  Autobraid.Trace.t ->
  t
(** Replay and certify. With [~result], the scheduler-reported
    [total_cycles] joins the cycle-accounting cross-check. Never raises on
    malformed traces — corruption becomes witnesses. *)

val ok : t -> bool
(** No invariant failed. *)

val failed : t -> Invariant.t list
(** Invariants with at least one witness, in {!Invariant.all} order. *)

val witnesses_for : t -> Invariant.t -> witness list
(** Witnesses of one invariant, replay order. *)

val witness_to_string : witness -> string
(** E.g. ["path/disjoint: round 3, gate 5: ..."]. *)

val to_summary : t -> string
(** One line: certified / failed counts plus the first witness. *)
