(** The lattice-surgery {!Autobraid.Comm_backend}.

    Plug-compatible with [Comm_backend.braid]: same outcome shape, same
    trace contract ([Trace.check]-clean schedules), surgery-specific
    numbers surfaced through the generic [stats] association list (keys
    are {!Surgery_scheduler.stats_to_assoc}'s). *)

val make : ?options:Surgery_scheduler.options -> unit -> Autobraid.Comm_backend.t
(** Backend named ["surgery"]. *)

val options_spec : Autobraid.Comm_backend.Options.spec list
(** The surgery backend's declared options: [retry], [ripup] and
    [pipeline_splits], all booleans defaulting to
    {!Surgery_scheduler.default_options}'. *)

val register : unit -> unit
(** Enter ["surgery"] into {!Autobraid.Comm_backend}'s name registry
    (mapping a {!Autobraid.Comm_backend.config} onto surgery options).
    Idempotent. Runs automatically when this module is linked and
    referenced; call it explicitly from code that only resolves backends
    by name, so linking is guaranteed. *)
