module Circuit = Qec_circuit.Circuit
module Gate = Qec_circuit.Gate
module Dag = Qec_circuit.Dag
module Decompose = Qec_circuit.Decompose
module Grid = Qec_lattice.Grid
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Path = Qec_lattice.Path
module Timing = Qec_surface.Timing
module St = Qec_surface.Surgery_timing
module Task = Autobraid.Task
module Trace = Autobraid.Trace
module Scheduler = Autobraid.Scheduler
module Initial_layout = Autobraid.Initial_layout
module Tel = Qec_telemetry.Telemetry

type options = {
  initial : Initial_layout.method_;
  retry : bool;
  ripup : bool;
  pipeline_splits : bool;
  seed : int;
  placement_override : Qec_lattice.Placement.t option;
}

let default_options =
  {
    initial = Initial_layout.Annealed;
    retry = true;
    ripup = true;
    pipeline_splits = true;
    seed = 11;
    placement_override = None;
  }

type stats = {
  merge_rounds : int;
  local_rounds : int;
  pipelined_splits : int;
  tile_time_cycles : int;
  ripup_attempts : int;
  ripup_rescues : int;
  longest_merge_path : int;
  mean_merge_path : float;
}

let stats_to_assoc s =
  [
    ("merge_rounds", float_of_int s.merge_rounds);
    ("local_rounds", float_of_int s.local_rounds);
    ("pipelined_splits", float_of_int s.pipelined_splits);
    ("tile_time_cycles", float_of_int s.tile_time_cycles);
    ("ripup_attempts", float_of_int s.ripup_attempts);
    ("ripup_rescues", float_of_int s.ripup_rescues);
    ("longest_merge_path", float_of_int s.longest_merge_path);
    ("mean_merge_path", s.mean_merge_path);
  ]

(* Decide which splits overlap their successor round: the split of round k
   runs on the merge operands and ancilla patches only (the fabric is free
   after the merge), so it may proceed under round k+1 whenever k+1 touches
   none of round k's merge qubits. *)
let mark_overlaps circuit rounds =
  let n = Array.length rounds in
  let gate_qubits id = Gate.qubits (Circuit.gate circuit id) in
  let touched = function
    | Trace.Local { gates } -> List.concat_map gate_qubits gates
    | Trace.Braid { braids = ops; locals }
    | Trace.Merge { merges = ops; locals; _ } ->
      List.concat_map (fun ((tk : Task.t), _) -> [ tk.q1; tk.q2 ]) ops
      @ List.concat_map gate_qubits locals
    | Trace.Swap_layer { swaps } -> List.concat_map (fun (a, b) -> [ a; b ]) swaps
  in
  let overlaps = ref 0 in
  for k = 0 to n - 2 do
    match rounds.(k) with
    | Trace.Merge ({ merges; _ } as m) ->
      let mq =
        List.concat_map (fun ((tk : Task.t), _) -> [ tk.q1; tk.q2 ]) merges
      in
      if not (List.exists (fun q -> List.mem q mq) (touched rounds.(k + 1)))
      then begin
        rounds.(k) <- Trace.Merge { m with split_overlapped = true };
        incr overlaps
      end
    | Trace.Local _ | Trace.Braid _ | Trace.Swap_layer _ -> ()
  done;
  !overlaps

(* One full scheduling pass. [defer] switches the pipelining-aware round
   formation below; overlap accounting is applied separately so callers
   can compare a deferred and an undeferred schedule under the same cost
   model. *)
type attempt = {
  a_rounds : Trace.round array;
  a_merge_rounds : int;
  a_local_rounds : int;
  a_tile_time : int;
  a_ripup_attempts : int;
  a_ripup_rescues : int;
  a_longest_path : int;
  a_path_len_sum : int;
  a_merge_count : int;
  a_util_sum : float;
  a_util_peak : float;
}

let schedule ~defer options circuit placement timing =
  let router = Router.create (Qec_lattice.Placement.grid placement) in
  let occ = Occupancy.create (Qec_lattice.Placement.grid placement) in
  let dag = Dag.of_circuit circuit in
  let frontier = Dag.Frontier.create dag in
  let merge_rounds = ref 0 in
  let local_rounds = ref 0 in
  let tile_time = ref 0 in
  let ripup_attempts = ref 0 in
  let ripup_rescues = ref 0 in
  let longest_path = ref 0 in
  let path_len_sum = ref 0 in
  let merge_count = ref 0 in
  let util_sum = ref 0. in
  let util_peak = ref 0. in
  let trace_rounds = ref [] in
  (* Qubits of the previous round's merges ([] if it was not a merge
     round). Used for pipelining-aware round formation below. *)
  let prev_merge_qubits = ref [] in
  Tel.span_open "surgery.routing_rounds";
  while not (Dag.Frontier.is_done frontier) do
    let ready = Dag.Frontier.ready frontier in
    let singles, cx_tasks =
      List.fold_left
        (fun (singles, cxs) id ->
          let g = Circuit.gate circuit id in
          match Task.of_gate id g with
          | Some t -> (singles, t :: cxs)
          | None -> (id :: singles, cxs))
        ([], []) ready
    in
    let singles = List.rev singles and cx_tasks = List.rev cx_tasks in
    (* Pipelining-aware round formation: a gate that became ready because
       the previous merge round completed necessarily touches that round's
       merge qubits, so scheduling it kills the split overlap. Merges that
       were ready before and are still pending (a split front's carryover)
       are qubit-disjoint from the previous round by DAG-front
       disjointness. When such disjoint merges exist, schedule only the
       gates avoiding the previous round's merge qubits and defer the rest
       one round — the previous split then overlaps this round, saving
       [split_cycles] (see [mark_overlaps]). *)
    let singles, cx_tasks =
      if (not defer) || !prev_merge_qubits = [] then (singles, cx_tasks)
      else begin
        let touches_prev qs =
          List.exists (fun q -> List.mem q !prev_merge_qubits) qs
        in
        let elig_cx =
          List.filter
            (fun (t : Task.t) -> not (touches_prev [ t.q1; t.q2 ]))
            cx_tasks
        in
        if elig_cx = [] then (singles, cx_tasks)
        else
          ( List.filter
              (fun id ->
                not (touches_prev (Gate.qubits (Circuit.gate circuit id))))
              singles,
            elig_cx )
      end
    in
    if cx_tasks = [] then begin
      List.iter (Dag.Frontier.complete frontier) singles;
      trace_rounds := Trace.Local { gates = singles } :: !trace_rounds;
      Tel.count "surgery.local_rounds";
      incr local_rounds;
      prev_merge_qubits := []
    end
    else begin
      Occupancy.clear occ;
      let rr =
        Surgery_router.route_round ~retry:options.retry ~ripup:options.ripup
          router occ placement cx_tasks
      in
      Tel.sample "surgery.scheduled_ratio" rr.Surgery_router.ratio;
      ripup_attempts := !ripup_attempts + rr.Surgery_router.ripup_attempts;
      ripup_rescues := !ripup_rescues + rr.Surgery_router.ripup_rescues;
      List.iter
        (fun ((t : Task.t), p) ->
          Dag.Frontier.complete frontier t.id;
          let len = Path.length p in
          tile_time := !tile_time + St.tile_time timing ~path_vertices:len;
          path_len_sum := !path_len_sum + len;
          if len > !longest_path then longest_path := len;
          incr merge_count;
          Tel.sample "surgery.merge_path_len" (float_of_int len))
        rr.Surgery_router.routed;
      List.iter (Dag.Frontier.complete frontier) singles;
      trace_rounds :=
        Trace.Merge
          {
            merges = rr.Surgery_router.routed;
            locals = singles;
            split_overlapped = false;
          }
        :: !trace_rounds;
      let u = Occupancy.utilization occ in
      util_sum := !util_sum +. u;
      if u > !util_peak then util_peak := u;
      Tel.count "surgery.merge_rounds";
      incr merge_rounds;
      prev_merge_qubits :=
        List.concat_map
          (fun ((t : Task.t), _) -> [ t.q1; t.q2 ])
          rr.Surgery_router.routed
    end
  done;
  Tel.span_close ();
  {
    a_rounds = Array.of_list (List.rev !trace_rounds);
    a_merge_rounds = !merge_rounds;
    a_local_rounds = !local_rounds;
    a_tile_time = !tile_time;
    a_ripup_attempts = !ripup_attempts;
    a_ripup_rescues = !ripup_rescues;
    a_longest_path = !longest_path;
    a_path_len_sum = !path_len_sum;
    a_merge_count = !merge_count;
    a_util_sum = !util_sum;
    a_util_peak = !util_peak;
  }

let run_traced ?(options = default_options) timing circuit =
  Tel.with_span "surgery.run" @@ fun () ->
  let t0 = Sys.time () in
  let circuit = Decompose.to_scheduler_gates circuit in
  let n = Circuit.num_qubits circuit in
  let side = max 1 (Qec_surface.Resources.lattice_side ~num_logical:n) in
  let grid = Grid.create side in
  let placement =
    match options.placement_override with
    | Some p ->
      if Qec_lattice.Placement.num_qubits p <> n then
        invalid_arg "Surgery_scheduler.run: placement override width mismatch";
      Qec_lattice.Placement.copy p
    | None ->
      Initial_layout.place ~seed:options.seed ~method_:options.initial circuit
        grid
  in
  let grid = Qec_lattice.Placement.grid placement in
  if Grid.side grid <> side then
    invalid_arg "Surgery_scheduler.run: placement override grid size mismatch";
  let dag = Dag.of_circuit circuit in
  let cycles_of rounds =
    Trace.cycles timing
      {
        Trace.circuit;
        grid;
        initial_cells = Qec_lattice.Placement.to_array placement;
        rounds = Array.to_list rounds;
      }
  in
  (* Deferring ready gates off the previous round's merge qubits buys a
     split overlap, but it is a greedy bet: the deferred gates can push
     the whole schedule a round longer than they saved (found by fuzzing
     — see docs/testing.md). Pipelining must never lose, so build both
     the deferred and the undeferred schedule, apply the same overlap
     accounting to each, and keep the cheaper (the deferred one on
     ties, preserving historical schedules). *)
  let attempt, pipelined =
    if not options.pipeline_splits then
      (schedule ~defer:false options circuit placement timing, 0)
    else begin
      let deferred = schedule ~defer:true options circuit placement timing in
      let plain = schedule ~defer:false options circuit placement timing in
      let p_deferred = mark_overlaps circuit deferred.a_rounds in
      let p_plain = mark_overlaps circuit plain.a_rounds in
      if cycles_of plain.a_rounds < cycles_of deferred.a_rounds then
        (plain, p_plain)
      else (deferred, p_deferred)
    end
  in
  Tel.count ~by:pipelined "surgery.pipelined_splits";
  let rounds = attempt.a_rounds in
  let trace =
    {
      Trace.circuit;
      grid;
      initial_cells = Qec_lattice.Placement.to_array placement;
      rounds = Array.to_list rounds;
    }
  in
  let total_cycles = Trace.cycles timing trace in
  let compile_time_s = Sys.time () -. t0 in
  let stats =
    {
      merge_rounds = attempt.a_merge_rounds;
      local_rounds = attempt.a_local_rounds;
      pipelined_splits = pipelined;
      tile_time_cycles = attempt.a_tile_time;
      ripup_attempts = attempt.a_ripup_attempts;
      ripup_rescues = attempt.a_ripup_rescues;
      longest_merge_path = attempt.a_longest_path;
      mean_merge_path =
        (if attempt.a_merge_count = 0 then 0.
         else
           float_of_int attempt.a_path_len_sum
           /. float_of_int attempt.a_merge_count);
    }
  in
  let result =
    {
      Scheduler.name = Circuit.name circuit;
      num_qubits = n;
      num_gates = Circuit.length circuit;
      num_two_qubit = Circuit.two_qubit_count circuit;
      lattice_side = side;
      total_cycles;
      rounds = Array.length rounds;
      braid_rounds = attempt.a_merge_rounds;
      swap_layers = 0;
      swaps_inserted = 0;
      critical_path_cycles = Dag.critical_path ~cost:(St.gate_cycles timing) dag;
      avg_utilization =
        (if attempt.a_merge_rounds = 0 then 0.
         else attempt.a_util_sum /. float_of_int attempt.a_merge_rounds);
      peak_utilization = attempt.a_util_peak;
      compile_time_s;
    }
  in
  (result, trace, stats)

let run ?options timing circuit =
  let result, _, _ = run_traced ?options timing circuit in
  result
