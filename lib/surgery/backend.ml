module Comm_backend = Autobraid.Comm_backend

let make ?(options = Surgery_scheduler.default_options) () =
  {
    Comm_backend.name = "surgery";
    description = "lattice surgery (merge-split CX over ancilla corridors)";
    run =
      (fun timing circuit ->
        let result, trace, stats =
          Surgery_scheduler.run_traced ~options timing circuit
        in
        {
          Comm_backend.backend = "surgery";
          result;
          trace;
          stats = Surgery_scheduler.stats_to_assoc stats;
        });
  }

let options_spec =
  let open Comm_backend.Options in
  [
    {
      key = "retry";
      kind = TBool;
      default = Bool Surgery_scheduler.default_options.Surgery_scheduler.retry;
      doc = "failed-first retry pass when ordering merges within a round";
    };
    {
      key = "ripup";
      kind = TBool;
      default = Bool Surgery_scheduler.default_options.Surgery_scheduler.ripup;
      doc = "rip up committed corridors to rescue blocked merges";
    };
    {
      key = "pipeline_splits";
      kind = TBool;
      default =
        Bool Surgery_scheduler.default_options.Surgery_scheduler.pipeline_splits;
      doc =
        "overlap the split phase with the next round's merges when it is \
         never worse";
    };
  ]

let register () =
  Comm_backend.register ~name:"surgery"
    ~description:"lattice surgery (merge-split CX over ancilla corridors)"
    ~options:options_spec
    (fun cfg opts ->
      let open Comm_backend.Options in
      make
        ~options:
          {
            Surgery_scheduler.initial = cfg.Comm_backend.initial;
            retry = get_bool opts "retry";
            ripup = get_bool opts "ripup";
            pipeline_splits = get_bool opts "pipeline_splits";
            seed = cfg.Comm_backend.seed;
            placement_override = cfg.Comm_backend.placement;
          }
        ())

(* Self-register when this module is linked; callers that resolve
   backends purely by name (and therefore never reference this module)
   must call [register] explicitly — see Qec_engine.Engine. *)
let () = register ()
