module Comm_backend = Autobraid.Comm_backend

let make ?(options = Surgery_scheduler.default_options) () =
  {
    Comm_backend.name = "surgery";
    description = "lattice surgery (merge-split CX over ancilla corridors)";
    run =
      (fun timing circuit ->
        let result, trace, stats =
          Surgery_scheduler.run_traced ~options timing circuit
        in
        {
          Comm_backend.backend = "surgery";
          result;
          trace;
          stats = Surgery_scheduler.stats_to_assoc stats;
        });
  }
