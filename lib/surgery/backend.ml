module Comm_backend = Autobraid.Comm_backend

let make ?(options = Surgery_scheduler.default_options) () =
  {
    Comm_backend.name = "surgery";
    description = "lattice surgery (merge-split CX over ancilla corridors)";
    run =
      (fun timing circuit ->
        let result, trace, stats =
          Surgery_scheduler.run_traced ~options timing circuit
        in
        {
          Comm_backend.backend = "surgery";
          result;
          trace;
          stats = Surgery_scheduler.stats_to_assoc stats;
        });
  }

let register () =
  Comm_backend.register ~name:"surgery"
    ~description:"lattice surgery (merge-split CX over ancilla corridors)"
    (fun cfg ->
      make
        ~options:
          {
            Surgery_scheduler.default_options with
            initial = cfg.Comm_backend.initial;
            seed = cfg.Comm_backend.seed;
            placement_override = cfg.Comm_backend.placement;
          }
        ())

(* Self-register when this module is linked; callers that resolve
   backends purely by name (and therefore never reference this module)
   must call [register] explicitly — see Qec_engine.Engine. *)
let () = register ()
