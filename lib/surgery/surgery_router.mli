(** Tile-time-aware routing of one lattice-surgery round.

    Reuses the braiding fabric — {!Qec_lattice.Router} A* search over
    {!Qec_lattice.Occupancy}-free channel vertices — and the stack-based
    conflict resolution of {!Autobraid.Stack_finder}, but with surgery's
    cost model: an ancilla path of [k] vertices is occupied for the
    [d]-cycle merge, committing [k * d] of tile-time. Path length is
    therefore {e not} free (unlike braiding §2), so:

    - concurrent merges route in ascending operand-distance order
      (cheapest committed volume first), with the interference-graph
      stack still deferring lattice-splitting gates to last;
    - when merges stay blocked, one {e volume-aware rip-up} evicts the
      routed merge holding the most tile-time, re-routes the blocked
      merges through the freed corridor, and re-places the victim —
      kept only when strictly more gates schedule. *)

type round_result = {
  routed : (Autobraid.Task.t * Qec_lattice.Path.t) list;
      (** scheduled merges with their ancilla paths, reserved in the
          occupancy on return *)
  failed : Autobraid.Task.t list;  (** merges deferred to a later round *)
  ratio : float;  (** |routed| / |tasks|; 1.0 for an empty round *)
  ripup_attempts : int;  (** 0 or 1 per round *)
  ripup_rescues : int;  (** blocked merges rescued by the rip-up *)
}

val route_round :
  ?retry:bool ->
  ?ripup:bool ->
  Qec_lattice.Router.t ->
  Qec_lattice.Occupancy.t ->
  Qec_lattice.Placement.t ->
  Autobraid.Task.t list ->
  round_result
(** Route the concurrent merges of one round. [retry] (default true) is
    the stack finder's failed-first re-route; [ripup] (default true) the
    volume-aware eviction pass. The occupancy may already contain foreign
    reservations (treated as obstacles, never released). *)
