(** Round-based lattice-surgery scheduler.

    Drives the same DAG-frontier loop as {!Autobraid.Scheduler} — ready
    front, single/two-qubit split, per-round occupancy reset — but
    executes long-range CX gates as merge–split lattice surgery instead
    of defect braiding:

    - each two-qubit gate becomes a ZZ/XX merge through an ancilla path
      routed by {!Surgery_router} (tile-time-aware, with volume-based
      rip-up), then a split;
    - a merge round costs [merge + split = 2d] cycles, except when the
      split {e pipelines}: if the next round touches none of this round's
      merge qubits, the split overlaps it and the round costs only [d]
      (see {!Qec_surface.Surgery_timing});
    - no SWAP layers are ever inserted — surgery reaches any two patches
      directly, so the placement stays static.

    Totals are derived by replaying the emitted {!Autobraid.Trace}
    ([Trace.cycles]), so every claimed cycle is backed by a round the
    validator can check. *)

type options = {
  initial : Autobraid.Initial_layout.method_;  (** initial placement *)
  retry : bool;  (** failed-first re-route inside the stack finder *)
  ripup : bool;  (** volume-aware eviction of the costliest merge *)
  pipeline_splits : bool;
      (** overlap splits with data-independent successor rounds *)
  seed : int;
  placement_override : Qec_lattice.Placement.t option;
}

val default_options : options
(** [Annealed] placement, retry, rip-up and pipelining on, seed 11 —
    mirrors {!Autobraid.Scheduler.default_options} where applicable. *)

type stats = {
  merge_rounds : int;
  local_rounds : int;
  pipelined_splits : int;  (** rounds whose split overlapped the next *)
  tile_time_cycles : int;
      (** Σ over merges of path-vertices × merge-cycles: the total
          space-time volume committed to ancilla corridors *)
  ripup_attempts : int;
  ripup_rescues : int;
  longest_merge_path : int;  (** vertices of the longest ancilla path *)
  mean_merge_path : float;
}

val stats_to_assoc : stats -> (string * float) list
(** Stable-keyed flat view for {!Autobraid.Comm_backend.outcome} stats
    and JSON export. *)

val run_traced :
  ?options:options ->
  Qec_surface.Timing.t ->
  Qec_circuit.Circuit.t ->
  Autobraid.Scheduler.result * Autobraid.Trace.t * stats
(** Schedule the circuit with lattice surgery. The result reuses the
    braiding result record: [braid_rounds] holds merge rounds and
    [swap_layers]/[swaps_inserted] are 0 by construction.
    [critical_path_cycles] uses the surgery gate costs
    ({!Qec_surface.Surgery_timing.gate_cycles}). Raises
    [Invalid_argument] on a mismatched [placement_override]. *)

val run :
  ?options:options ->
  Qec_surface.Timing.t ->
  Qec_circuit.Circuit.t ->
  Autobraid.Scheduler.result
(** [run_traced] without keeping the trace or stats. *)
