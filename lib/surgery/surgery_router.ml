module Task = Autobraid.Task
module Stack_finder = Autobraid.Stack_finder
module Path = Qec_lattice.Path
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Tel = Qec_telemetry.Telemetry

type round_result = {
  routed : (Task.t * Path.t) list;
  failed : Task.t list;
  ratio : float;
  ripup_attempts : int;
  ripup_rescues : int;
}

(* Tile-time is path length x merge duration; the merge duration is uniform
   within a round, so length alone orders candidates. *)
let tile_time_of_path p = Path.length p

let route_round ?(retry = true) ?(ripup = true) router occ placement tasks =
  match tasks with
  | [] ->
    { routed = []; failed = []; ratio = 1.0; ripup_attempts = 0;
      ripup_rescues = 0 }
  | _ ->
    (* Cheapest-volume-first ordering: a short merge holds few ancilla
       tiles for its d cycles, so greedily routing by ascending operand
       distance minimizes committed tile-time; the stack finder's
       interference peeling still defers the lattice-splitting gates. *)
    let priority_of (t : Task.t) = -Task.distance placement t in
    let outcome =
      Stack_finder.find ~retry ~confine_llg:false ~priority_of router occ
        placement tasks
    in
    let routed = outcome.Stack_finder.routed in
    let failed = outcome.Stack_finder.failed in
    let total = List.length tasks in
    if (not ripup) || failed = [] || routed = [] then
      { routed; failed; ratio = outcome.Stack_finder.ratio;
        ripup_attempts = 0; ripup_rescues = 0 }
    else begin
      (* Volume-aware rip-up: evict the routed merge holding the most
         tile-time (the prime suspect for blocking), re-route the blocked
         merges through the freed corridor, then try to re-place the
         victim. Kept only when strictly more gates schedule. *)
      Tel.count "surgery.ripup_attempts";
      let victim, keepers =
        let sorted =
          List.stable_sort
            (fun (_, p1) (_, p2) ->
              compare (tile_time_of_path p2) (tile_time_of_path p1))
            routed
        in
        (List.hd sorted, List.tl sorted)
      in
      let victim_task, victim_path = victim in
      Occupancy.release_path occ victim_path;
      let try_route (t : Task.t) =
        let src_cell, dst_cell = Task.cells placement t in
        Router.route_and_reserve router occ ~src_cell ~dst_cell
      in
      let rescued, still_failed =
        List.fold_left
          (fun (ok, ko) t ->
            match try_route t with
            | Some p -> ((t, p) :: ok, ko)
            | None -> (ok, t :: ko))
          ([], [])
          (List.sort
             (fun a b ->
               compare (Task.distance placement a, a.Task.id)
                 (Task.distance placement b, b.Task.id))
             failed)
      in
      let rescued = List.rev rescued and still_failed = List.rev still_failed in
      let victim_rerouted = try_route victim_task in
      let new_count =
        List.length keepers + List.length rescued
        + match victim_rerouted with Some _ -> 1 | None -> 0
      in
      if new_count > List.length routed then begin
        Tel.count ~by:(List.length rescued) "surgery.ripup_rescues";
        let routed' =
          keepers @ rescued
          @ match victim_rerouted with
            | Some p -> [ (victim_task, p) ]
            | None -> []
        in
        let failed' =
          still_failed
          @ match victim_rerouted with None -> [ victim_task ] | Some _ -> []
        in
        { routed = routed'; failed = failed';
          ratio = float_of_int new_count /. float_of_int total;
          ripup_attempts = 1; ripup_rescues = List.length rescued }
      end
      else begin
        (* No net gain: roll everything back to the first attempt. *)
        List.iter (fun (_, p) -> Occupancy.release_path occ p) rescued;
        (match victim_rerouted with
        | Some p -> Occupancy.release_path occ p
        | None -> ());
        Occupancy.reserve_path occ victim_path;
        { routed; failed; ratio = outcome.Stack_finder.ratio;
          ripup_attempts = 1; ripup_rescues = 0 }
      end
    end
