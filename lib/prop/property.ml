module Circuit = Qec_circuit.Circuit
module Gate = Qec_circuit.Gate
module S = Autobraid.Scheduler
module Trace = Autobraid.Trace
module CB = Autobraid.Comm_backend
module T = Qec_surface.Timing
module St = Qec_surface.Surgery_timing
module SS = Qec_surgery.Surgery_scheduler
module Spec = Qec_engine.Spec
module Engine = Qec_engine.Engine
module PC = Qec_engine.Placement_cache
module Json = Qec_report.Json
module Export = Qec_report.Export

type outcome = Pass | Fail of string

type check = Circuit of (Circuit.t -> outcome) | Source of (string -> outcome)

type t = { name : string; description : string; check : check }

let () = Engine.ensure_backends ()

let timing = T.make ~d:T.default_d ()

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt

(* A property body must never escape with an exception: an unexpected
   raise from a scheduler or exporter on a generated circuit IS a
   counterexample, and the harness needs it as a value to shrink on. *)
let guard f input =
  match f input with
  | outcome -> outcome
  | exception e -> failf "unexpected exception: %s" (Printexc.to_string e)

let first_violation trace =
  match Trace.check trace with
  | [] -> None
  | v :: rest ->
    Some
      (Printf.sprintf "%s (%d violations total)"
         (Trace.violation_to_string v)
         (1 + List.length rest))

(* ---------------- trace validity ---------------- *)

let check_braid_trace ~options c =
  let result, trace = S.run_traced ~options timing c in
  match first_violation trace with
  | Some msg -> failf "braid trace: %s" msg
  | None ->
    if Trace.cycles timing trace <> result.S.total_cycles then
      failf "braid trace cycles %d disagree with result %d"
        (Trace.cycles timing trace) result.S.total_cycles
    else if Trace.num_rounds trace <> result.S.rounds then
      failf "braid trace rounds %d disagree with result %d"
        (Trace.num_rounds trace) result.S.rounds
    else Pass

let trace_braid =
  {
    name = "trace/braid";
    description =
      "braid schedule replays Trace.check-clean (vertex-disjoint rounds, \
       dependency order, every gate once) and its cycles match the result";
    check = Circuit (guard (check_braid_trace ~options:S.default_options));
  }

let trace_braid_swappy =
  {
    name = "trace/braid-swappy";
    description =
      "same, with threshold_p = 0.9 forcing layout optimization so SWAP \
       layers and placement changes are exercised";
    check =
      Circuit
        (guard
           (check_braid_trace
              ~options:{ S.default_options with threshold_p = 0.9 }));
  }

let trace_surgery =
  {
    name = "trace/surgery";
    description =
      "surgery schedule replays Trace.check-clean, including overlapped \
       split legality, and its cycles match the result";
    check =
      Circuit
        (guard (fun c ->
             let result, trace, _stats = SS.run_traced timing c in
             match first_violation trace with
             | Some msg -> failf "surgery trace: %s" msg
             | None ->
               if Trace.cycles timing trace <> result.S.total_cycles then
                 failf "surgery trace cycles %d disagree with result %d"
                   (Trace.cycles timing trace) result.S.total_cycles
               else Pass));
  }

(* ---------------- surgery latency bounds ---------------- *)

let surgery_pipeline_bounds =
  {
    name = "surgery/pipeline-bounds";
    description =
      "surgery with split pipelining is never slower than its own \
       no-pipelining run, and never faster than the all-splits-overlapped \
       lower bound";
    check =
      Circuit
        (guard (fun c ->
             let result, trace, _ = SS.run_traced timing c in
             let no_pipeline =
               SS.run
                 ~options:{ SS.default_options with pipeline_splits = false }
                 timing c
             in
             (* Replay the pipelined trace pretending every split
                overlapped: no schedule of the same rounds can beat it. *)
             let lower_bound =
               List.fold_left
                 (fun acc round ->
                   acc
                   +
                   match round with
                   | Trace.Local _ -> T.single_qubit_cycles timing
                   | Trace.Merge _ -> St.merge_cycles timing
                   | Trace.Braid _ -> T.braid_cycles timing
                   | Trace.Swap_layer _ -> T.swap_layer_cycles timing)
                 0 trace.Trace.rounds
             in
             if result.S.total_cycles > no_pipeline.S.total_cycles then
               failf "pipelining slowed surgery down: %d > %d cycles"
                 result.S.total_cycles no_pipeline.S.total_cycles
             else if result.S.total_cycles < lower_bound then
               failf "surgery beat its own lower bound: %d < %d cycles"
                 result.S.total_cycles lower_bound
             else Pass));
  }

(* ---------------- incremental frontier ---------------- *)

let sched_incremental_frontier =
  {
    name = "sched/incremental-frontier";
    description =
      "the bitset scheduling frontier agrees with the Int_set reference \
       at every round of a real braid schedule — same ready lists, \
       remaining counts, and done flags under the trace's completion \
       order";
    check =
      Circuit
        (guard (fun c ->
             let module Dag = Qec_circuit.Dag in
             let module Task = Autobraid.Task in
             let lowered = Qec_circuit.Decompose.to_scheduler_gates c in
             let dag = Dag.of_circuit lowered in
             let f = Dag.Frontier.create dag in
             let r = Dag.Frontier.Reference.create dag in
             let compare_states step =
               let rf = Dag.Frontier.ready f
               and rr = Dag.Frontier.Reference.ready r in
               if rf <> rr then
                 Some
                   (failf "%s: ready lists diverge (%d vs %d entries)" step
                      (List.length rf) (List.length rr))
               else if
                 Dag.Frontier.remaining f <> Dag.Frontier.Reference.remaining r
               then
                 Some
                   (failf "%s: remaining diverge: %d vs %d" step
                      (Dag.Frontier.remaining f)
                      (Dag.Frontier.Reference.remaining r))
               else if
                 Dag.Frontier.is_done f <> Dag.Frontier.Reference.is_done r
               then Some (failf "%s: done flags diverge" step)
               else None
             in
             let _, trace = S.run_traced timing lowered in
             let rec replay round_no = function
               | [] ->
                 if not (Dag.Frontier.is_done f) then
                   failf "frontier not drained after replay (%d left)"
                     (Dag.Frontier.remaining f)
                 else Pass
               | round :: rest -> (
                 let completed =
                   match round with
                   | Trace.Local { gates } -> gates
                   | Trace.Braid { braids; locals } ->
                     List.map (fun ((t : Task.t), _) -> t.Task.id) braids
                     @ locals
                   | Trace.Merge { merges; locals; _ } ->
                     List.map (fun ((t : Task.t), _) -> t.Task.id) merges
                     @ locals
                   | Trace.Swap_layer _ -> []
                 in
                 match
                   List.find_map
                     (fun id ->
                       match Dag.Frontier.complete f id with
                       | () ->
                         Dag.Frontier.Reference.complete r id;
                         None
                       | exception Invalid_argument msg ->
                         Some
                           (failf "round %d: bitset frontier rejected %d: %s"
                              round_no id msg))
                     completed
                 with
                 | Some fail -> fail
                 | None -> (
                   match
                     compare_states (Printf.sprintf "round %d" round_no)
                   with
                   | Some fail -> fail
                   | None -> replay (round_no + 1) rest))
             in
             match compare_states "initial" with
             | Some fail -> fail
             | None -> replay 0 trace.Trace.rounds));
  }

(* ---------------- differential oracle ---------------- *)

let diff_backends =
  {
    name = "diff/backends";
    description =
      "braid, surgery, lookahead, and the greedy MICRO'17 baseline \
       schedule the same lowered gate set, with check-clean traces and \
       latencies at or above each one's critical-path lower bound";
    check =
      Circuit
        (guard (fun c ->
             let braid = (CB.braid ()).CB.run timing c in
             let surgery = (Qec_surgery.Backend.make ()).CB.run timing c in
             let lookahead = (Qec_lookahead.Backend.make ()).CB.run timing c in
             let baseline = Gp_baseline.run timing c in
             let check_clean (o : CB.outcome) =
               match first_violation o.CB.trace with
               | Some msg -> Some (Printf.sprintf "%s: %s" o.CB.backend msg)
               | None -> None
             in
             match
               List.find_map check_clean [ braid; surgery; lookahead ]
             with
             | Some msg -> Fail msg
             | None ->
               let ids_b = CB.scheduled_gate_ids braid.CB.trace in
               let ids_s = CB.scheduled_gate_ids surgery.CB.trace in
               let ids_l = CB.scheduled_gate_ids lookahead.CB.trace in
               let rb = braid.CB.result
               and rs = surgery.CB.result
               and rl = lookahead.CB.result
               and rg = baseline in
               if ids_b <> ids_s then
                 failf
                   "braid and surgery scheduled different gate sets (%d vs \
                    %d gates)"
                   (List.length ids_b) (List.length ids_s)
               else if ids_b <> ids_l then
                 failf
                   "braid and lookahead scheduled different gate sets (%d \
                    vs %d gates)"
                   (List.length ids_b) (List.length ids_l)
               else if List.length ids_b <> rb.S.num_gates then
                 failf "braid scheduled %d of %d lowered gates"
                   (List.length ids_b) rb.S.num_gates
               else if
                 rb.S.num_gates <> rs.S.num_gates
                 || rb.S.num_gates <> rl.S.num_gates
                 || rb.S.num_gates <> rg.S.num_gates
               then
                 failf "lowered gate counts diverge: braid %d surgery %d \
                        lookahead %d baseline %d"
                   rb.S.num_gates rs.S.num_gates rl.S.num_gates rg.S.num_gates
               else if
                 rb.S.num_two_qubit <> rs.S.num_two_qubit
                 || rb.S.num_two_qubit <> rl.S.num_two_qubit
                 || rb.S.num_two_qubit <> rg.S.num_two_qubit
               then
                 failf "two-qubit counts diverge: braid %d surgery %d \
                        lookahead %d baseline %d"
                   rb.S.num_two_qubit rs.S.num_two_qubit rl.S.num_two_qubit
                   rg.S.num_two_qubit
               else begin
                 let below_cp name (r : S.result) =
                   if r.S.total_cycles < r.S.critical_path_cycles then
                     Some
                       (Printf.sprintf
                          "%s beat its critical path: %d < %d cycles" name
                          r.S.total_cycles r.S.critical_path_cycles)
                   else None
                 in
                 match
                   List.filter_map Fun.id
                     [
                       below_cp "braid" rb;
                       below_cp "surgery" rs;
                       below_cp "lookahead" rl;
                       below_cp "baseline" rg;
                     ]
                 with
                 | msg :: _ -> Fail msg
                 | [] -> Pass
               end));
  }

(* ---------------- lookahead guarantee ---------------- *)

let lookahead_never_worse =
  {
    name = "lookahead/never-worse";
    description =
      "the lookahead backend's total cycles never exceed the plain braid \
       schedule with identical options, its trace is check-clean, and its \
       reported greedy_cycles stat matches the braid run it raced";
    check =
      Circuit
        (guard (fun c ->
             let module L = Qec_lookahead.Lookahead_scheduler in
             let result, trace, stats = L.run_traced timing c in
             let greedy = S.run timing c in
             match first_violation trace with
             | Some msg -> failf "lookahead trace: %s" msg
             | None ->
               if result.S.total_cycles > greedy.S.total_cycles then
                 failf "lookahead worse than greedy: %d > %d cycles"
                   result.S.total_cycles greedy.S.total_cycles
               else if stats.L.greedy_cycles <> greedy.S.total_cycles then
                 failf
                   "reported greedy_cycles %d disagree with the braid run %d"
                   stats.L.greedy_cycles greedy.S.total_cycles
               else if
                 stats.L.chose_lookahead
                 && stats.L.lookahead_cycles <> result.S.total_cycles
               then
                 failf "chose lookahead but returned %d cycles, not %d"
                   result.S.total_cycles stats.L.lookahead_cycles
               else Pass));
  }

(* ---------------- certification ---------------- *)

let verify_certify =
  {
    name = "verify/certify";
    description =
      "every backend's schedule certifies clean under the independent \
       Qec_verify certifier, and each applicable adversarial trace \
       mutation is rejected with the mutated invariant named";
    check =
      Circuit
        (guard (fun c ->
             let module V = Qec_verify.Certifier in
             let module M = Qec_verify.Mutate in
             let outcomes =
               [
                 (CB.braid ()).CB.run timing c;
                 (Qec_surgery.Backend.make ()).CB.run timing c;
               ]
             in
             let rec check_outcomes = function
               | [] -> Pass
               | (o : CB.outcome) :: rest -> (
                 let cert =
                   V.certify ~backend:o.CB.backend ~result:o.CB.result timing
                     o.CB.trace
                 in
                 if not (V.ok cert) then
                   failf "%s failed certification: %s" o.CB.backend
                     (V.to_summary cert)
                 else
                   let rec check_mutations = function
                     | [] -> check_outcomes rest
                     | kind :: kinds -> (
                       match M.apply kind timing o.CB.result o.CB.trace with
                       | None -> check_mutations kinds
                       | Some (result', trace') ->
                         let cert' =
                           V.certify ~backend:o.CB.backend ~result:result'
                             timing trace'
                         in
                         let expected = M.expected kind in
                         if List.mem expected (V.failed cert') then
                           check_mutations kinds
                         else
                           failf
                             "%s: mutation %s escaped certification \
                              (expected %s; failed: %s)"
                             o.CB.backend (M.name kind)
                             (Qec_verify.Invariant.id expected)
                             (String.concat ","
                                (List.map Qec_verify.Invariant.id
                                   (V.failed cert'))))
                   in
                   check_mutations M.all)
             in
             check_outcomes outcomes));
  }

(* ---------------- engine identities ---------------- *)

let with_temp_qasm c f =
  let path = Filename.temp_file "autobraid_prop" ".qasm" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Qec_qasm.Printer.to_file path c;
      f path)

let with_temp_dir f =
  let dir = Filename.temp_file "autobraid_prop_cache" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun entry -> Sys.remove (Filename.concat dir entry))
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let spec_for path =
  {
    Spec.default with
    circuit = path;
    outputs = { Spec.trace = true; reliability = false; certificate = false };
  }

(* Deterministic rendering of a run's observable output: the result record
   (compile time zeroed, as the batch engine does) plus the full trace. *)
let render_payload (p : Engine.payload) =
  let result = { p.Engine.result with S.compile_time_s = 0. } in
  let fields =
    [ ("backend", Json.String p.Engine.backend);
      ("result", Export.result_to_json result) ]
    @
    match p.Engine.trace with
    | Some trace -> [ ("trace", Export.trace_to_json trace) ]
    | None -> []
  in
  Json.to_string (Json.Obj fields)

let run_spec_exn ?cache spec =
  match Engine.run_spec ?cache spec with
  | Ok payload -> payload
  | Error e ->
    failwith (Printf.sprintf "run_spec failed (%s): %s" e.Engine.kind
                e.Engine.message)

let engine_spec_identity =
  {
    name = "engine/spec-identity";
    description =
      "Engine.run_spec on a spec naming the printed circuit is \
       byte-identical (result + trace JSON) to running the scheduler \
       directly on the same file — the compile == run_spec contract";
    check =
      Circuit
        (guard (fun c ->
             with_temp_qasm c @@ fun path ->
             let payload = run_spec_exn (spec_for path) in
             let direct_c = Qec_qasm.Frontend.of_file path in
             let result, trace = S.run_traced timing direct_c in
             let direct =
               render_payload
                 {
                   payload with
                   Engine.backend = "braid";
                   result;
                   trace = Some trace;
                 }
             in
             let via_spec = render_payload payload in
             if String.equal via_spec direct then Pass
             else
               failf "run_spec and direct scheduling diverged:\n%s\nvs\n%s"
                 via_spec direct));
  }

let engine_cache_identity =
  {
    name = "engine/cache-identity";
    description =
      "a placement-cache disk hit reproduces the cold run byte-for-byte, \
       and both match the uncached run";
    check =
      Circuit
        (guard (fun c ->
             with_temp_qasm c @@ fun path ->
             with_temp_dir @@ fun dir ->
             let spec = spec_for path in
             let cold_cache = PC.create ~dir () in
             let cold = run_spec_exn ~cache:cold_cache spec in
             let warm_cache = PC.create ~dir () in
             let warm = run_spec_exn ~cache:warm_cache spec in
             let uncached = run_spec_exn spec in
             let kc = PC.counters cold_cache
             and kw = PC.counters warm_cache in
             if kc.PC.misses <> 1 then
               failf "cold run made %d placement misses (expected 1)"
                 kc.PC.misses
             else if kw.PC.disk_hits <> 1 then
               failf "warm run made %d disk hits (expected 1; %d misses)"
                 kw.PC.disk_hits kw.PC.misses
             else if render_payload cold <> render_payload warm then
               Fail "warm-cache run diverged from cold run"
             else if render_payload cold <> render_payload uncached then
               Fail "cached run diverged from uncached run"
             else Pass));
  }

let engine_batch_identity =
  {
    name = "engine/batch-identity";
    description =
      "run_batch renders byte-identical JSONL for jobs = 1 and jobs = 3 \
       over braid, surgery, and baseline specs of the same circuit";
    check =
      Circuit
        (guard (fun c ->
             with_temp_qasm c @@ fun path ->
             let base = spec_for path in
             let specs =
               [
                 { base with Spec.id = Some "braid" };
                 { base with Spec.id = Some "braid-seed12"; seed = 12 };
                 { base with Spec.id = Some "surgery"; backend = "surgery" };
                 {
                   base with
                   Spec.id = Some "baseline";
                   scheduler = Spec.Baseline;
                   outputs =
                     {
                       Spec.trace = false;
                       reliability = false;
                       certificate = false;
                     };
                 };
               ]
             in
             let sequential = Engine.run_batch ~jobs:1 specs in
             let parallel = Engine.run_batch ~jobs:3 specs in
             let js = Engine.jobs_to_jsonl sequential
             and jp = Engine.jobs_to_jsonl parallel in
             match Engine.errors sequential with
             | (i, e) :: _ ->
               failf "batch job %d failed (%s): %s" i e.Engine.kind
                 e.Engine.message
             | [] ->
               if String.equal js jp then Pass
               else Fail "batch JSONL differs between jobs=1 and jobs=3"));
  }

(* ---------------- qasm and lint round trips ---------------- *)

let qasm_roundtrip =
  {
    name = "qasm/roundtrip";
    description =
      "Printer.to_string then Frontend.of_string reproduces the circuit \
       gate-for-gate (width included)";
    check =
      Circuit
        (guard (fun c ->
             let printed = Qec_qasm.Printer.to_string c in
             let reparsed = Qec_qasm.Frontend.of_string printed in
             if Circuit.num_qubits reparsed <> Circuit.num_qubits c then
               failf "round-trip changed width: %d -> %d"
                 (Circuit.num_qubits c)
                 (Circuit.num_qubits reparsed)
             else if Circuit.length reparsed <> Circuit.length c then
               failf "round-trip changed gate count: %d -> %d"
                 (Circuit.length c) (Circuit.length reparsed)
             else begin
               let bad = ref None in
               Circuit.iter
                 (fun i g ->
                   if
                     !bad = None
                     && not (Gate.equal g (Circuit.gate reparsed i))
                   then bad := Some (i, g, Circuit.gate reparsed i))
                 c;
               match !bad with
               | Some (i, g, g') ->
                 failf "round-trip changed gate %d: %s -> %s" i
                   (Gate.to_string g) (Gate.to_string g')
               | None -> Pass
             end));
  }

let diag_key (d : Qec_lint.Diagnostic.t) =
  ( d.Qec_lint.Diagnostic.code,
    d.Qec_lint.Diagnostic.severity,
    d.Qec_lint.Diagnostic.pos,
    d.Qec_lint.Diagnostic.message )

let lint_stable_codes =
  {
    name = "lint/stable-codes";
    description =
      "lint diagnostics (code, severity, position, message) are stable \
       under a pretty-print -> parse -> pretty-print round trip";
    check =
      Circuit
        (guard (fun c ->
             let s1 = Qec_qasm.Printer.to_string c in
             let d1 = Qec_lint.Lint.lint_source ~file:"<fuzz>" s1 in
             let s2 =
               Qec_qasm.Printer.to_string (Qec_qasm.Frontend.of_string s1)
             in
             let d2 = Qec_lint.Lint.lint_source ~file:"<fuzz>" s2 in
             if List.map diag_key d1 = List.map diag_key d2 then Pass
             else
               failf
                 "lint diagnostics changed across the round trip: %d vs %d \
                  (%s | %s)"
                 (List.length d1) (List.length d2)
                 (String.concat "," (List.map (fun d -> d.Qec_lint.Diagnostic.code) d1))
                 (String.concat "," (List.map (fun d -> d.Qec_lint.Diagnostic.code) d2))));
  }

(* ---------------- crash fuzzing ---------------- *)

(* The structured errors a frontend is allowed to answer garbage with;
   positions must be real (1-based) so the CLI's file:line:col contract
   holds. Anything else escaping is a crash. *)
let qasm_crash =
  {
    name = "qasm/crash";
    description =
      "mutated QASM bytes get structured positioned errors (or a parse) \
       from the lexer, parser, frontend, lint driver, and JSON parser — \
       never an unhandled exception";
    check =
      Source
        (fun src ->
          let structured = function
            | Qec_qasm.Lexer.Error { line; col; _ }
            | Qec_qasm.Parser.Error { line; col; _ } ->
              if line >= 1 && col >= 1 then None
              else
                Some
                  (Printf.sprintf
                     "error carries non-positive position %d:%d" line col)
            | Qec_qasm.Frontend.Unsupported _ -> None
            | Qec_circuit.Circuit.Invalid _ -> None
            | e ->
              Some ("unhandled exception: " ^ Printexc.to_string e)
          in
          let frontend =
            match Qec_qasm.Frontend.of_string src with
            | (_ : Circuit.t) -> None
            | exception e -> structured e
          in
          match frontend with
          | Some msg -> failf "frontend: %s" msg
          | None -> (
            match Qec_lint.Lint.lint_source ~file:"<fuzz>" src with
            | (_ : Qec_lint.Diagnostic.t list) -> (
              match Qec_report.Json.of_string src with
              | Ok _ | Error _ -> Pass
              | exception e ->
                failf "Json.of_string raised: %s" (Printexc.to_string e))
            | exception e ->
              failf "lint_source raised: %s" (Printexc.to_string e)));
  }

(* ---------------- serve protocol crash safety ---------------- *)

(* The daemon's per-line loop leans entirely on Protocol.decode being
   total: a malformed line must come back as a structured error record,
   never as an exception that kills a reader thread. Feed the mutated
   bytes both raw and spliced into otherwise well-formed request
   envelopes (so the spec/jobs sub-parsers get fuzzed too), and hold the
   response decoder to the same standard. *)
let serve_protocol =
  let module SP = Qec_serve.Protocol in
  {
    name = "serve/protocol";
    description =
      "serve request/response line decoding is total: structured \
       Ok/Error on arbitrary bytes, never an exception";
    check =
      Source
        (fun src ->
          let lines =
            [
              src;
              Printf.sprintf {|{"op": %s}|} src;
              Json.to_string (Json.Obj [ ("op", Json.String src) ]);
              Printf.sprintf {|{"op": "compile", "id": "x", "spec": %s}|} src;
              Printf.sprintf {|{"op": "batch", "jobs": %s}|} src;
            ]
          in
          let check_request line =
            match SP.decode line with
            | Ok _ -> None
            | Error { Qec_engine.Engine_core.kind = "parse" | "bad-request"; _ }
              ->
              None
            | Error e ->
              Some
                (Printf.sprintf "decode produced unexpected kind %S" e.kind)
            | exception e ->
              Some ("Protocol.decode raised: " ^ Printexc.to_string e)
          in
          let check_response line =
            match SP.response_of_line line with
            | Ok _ | Error _ -> None
            | exception e ->
              Some ("Protocol.response_of_line raised: " ^ Printexc.to_string e)
          in
          match
            List.find_map
              (fun line ->
                match check_request line with
                | Some _ as bad -> bad
                | None -> check_response line)
              lines
          with
          | Some msg -> Fail msg
          | None -> Pass);
  }

(* ---------------- registry ---------------- *)

let all () =
  [
    trace_braid;
    trace_braid_swappy;
    trace_surgery;
    surgery_pipeline_bounds;
    sched_incremental_frontier;
    diff_backends;
    lookahead_never_worse;
    verify_certify;
    engine_spec_identity;
    engine_cache_identity;
    engine_batch_identity;
    qasm_roundtrip;
    lint_stable_codes;
    qasm_crash;
    serve_protocol;
  ]

let names () = List.map (fun p -> p.name) (all ())

let find name = List.find_opt (fun p -> p.name = name) (all ())

let check_circuit p c =
  match p.check with Circuit f -> f c | Source _ -> Pass

let check_source p s = match p.check with Source f -> f s | Circuit _ -> Pass
