(** Seeded random-workload generation for the property harness.

    Two generators share one {!Qec_util.Rng.t} discipline (explicit state,
    never the global [Random]):

    - {!circuit} draws a random logical circuit whose shape is controlled
      by {!params} — qubit count, gate count, two-qubit density, and a
      long-range bias that steers two-qubit partners toward distant
      logical indices (the workloads where routing pressure and SWAP
      insertion actually happen);
    - {!mutate} corrupts OpenQASM text byte- and token-wise for the
      crash-fuzzing property: the frontend and lint passes must answer
      any of its outputs with structured [file:line:col] errors, never an
      unhandled exception.

    Both are deterministic functions of the generator state, so a failing
    case replays exactly from [autobraid fuzz --seed S]. *)

type params = {
  min_qubits : int;  (** >= 2 *)
  max_qubits : int;
  max_gates : int;  (** gate count is uniform in [\[1, max_gates\]] *)
  cx_density : float;  (** probability a drawn gate is two-qubit *)
  long_range_bias : float;
      (** probability a two-qubit partner is drawn from the far half of
          the index space instead of uniformly *)
  wide_gate_freq : float;
      (** probability of a [Ccx] (exercises lowering); needs >= 3 qubits *)
  measure_freq : float;  (** probability the circuit ends in measurements *)
}

val default : params
(** 2–16 qubits, up to 56 gates, [cx_density = 0.7],
    [long_range_bias = 0.6], occasional Toffolis and measurement tails —
    small enough that every registered property runs in milliseconds,
    dense enough that routing fronts congest: multi-round schedules,
    SWAP insertion, failed routes and the surgery router's rip-up are
    all exercised under the fixed-seed smoke run. *)

val validate : params -> (unit, string) result
(** Range checks ([2 <= min <= max], frequencies in [\[0, 1\]], ...). *)

val circuit : ?params:params -> Qec_util.Rng.t -> Qec_circuit.Circuit.t
(** Draw one circuit. Always valid ({!Qec_circuit.Circuit.validate}),
    always printable ({!Qec_qasm.Printer.to_string} — no [Mcx]).
    Raises [Invalid_argument] on invalid [params]. *)

val mutate : ?rounds:int -> Qec_util.Rng.t -> string -> string
(** Apply 1–[rounds] (default 8) random text mutations: byte flips,
    deletions, insertions, chunk duplication and removal, truncation, and
    keyword splicing ([qreg], [gate], ...). The result is usually
    malformed — that is the point. *)
