(** Counterexample minimization (QCheck-style shrinking, delta-debugging
    flavored).

    Given an input that makes a property fail, shrinking searches for a
    smaller input that still fails, so the reported counterexample is
    close to minimal — typically a handful of gates on a handful of
    qubits instead of a 40-gate random circuit. The [test] predicate
    returns [true] when the candidate {e still fails}; shrinking is
    greedy and deterministic, and the result always satisfies [test].

    Every candidate evaluation re-runs the property (schedulers included),
    so the work is bounded by [max_tests] — counterexamples are rare, and
    a near-minimal one beats an exactly minimal one that took minutes. *)

val minimize :
  ?max_tests:int ->
  test:(Qec_circuit.Circuit.t -> bool) ->
  Qec_circuit.Circuit.t ->
  Qec_circuit.Circuit.t
(** Shrink a circuit: remove gate chunks (halving window sizes down to
    single gates), drop idle qubits ({!Qec_circuit.Circuit.compact}),
    then try removing whole qubits with every gate touching them — the
    width axis congestion failures live on — and iterate until a
    fixpoint or the [max_tests] budget (default 2000 evaluations) runs
    out. [test] must hold on the input; the returned circuit also
    satisfies it. *)

val minimize_text :
  ?max_tests:int -> test:(string -> bool) -> string -> string
(** The same loop over raw text for crash-fuzzer inputs: remove line
    chunks, then character chunks. *)
