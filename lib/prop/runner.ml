module Rng = Qec_util.Rng
module C = Qec_circuit.Circuit

type counterexample = Circuit of C.t | Source of string

type failure = {
  property : string;
  seed : int;
  case : int;
  message : string;
  counterexample : counterexample;
  original_size : int;
  shrunk_size : int;
}

type report = {
  seed : int;
  count : int;
  cases : int;
  checks : int;
  properties : string list;
  failures : failure list;
}

(* Each case owns an RNG derived from (seed, case), so any failing case
   replays alone without re-running the cases before it. *)
let case_rng ~seed i = Rng.create ((seed * 1_000_003) + i)

let fails_circuit p c =
  match Property.check_circuit p c with Property.Fail _ -> true | Pass -> false

let fails_source p s =
  match Property.check_source p s with Property.Fail _ -> true | Pass -> false

let message_of = function Property.Pass -> "passed" | Property.Fail m -> m

let shrink_circuit ~minimize p c =
  let c' = if minimize then Shrink.minimize ~test:(fails_circuit p) c else c in
  (c', message_of (Property.check_circuit p c'))

let shrink_source ~minimize p s =
  let s' =
    if minimize then Shrink.minimize_text ~test:(fails_source p) s else s
  in
  (s', message_of (Property.check_source p s'))

let run ?(params = Gen.default) ?properties ?(minimize = true)
    ?(max_failures = 1) ?on_case ~seed ~count () =
  let properties =
    match properties with Some ps -> ps | None -> Property.all ()
  in
  let circuit_props, source_props =
    List.partition
      (fun p ->
        match p.Property.check with
        | Property.Circuit _ -> true
        | Property.Source _ -> false)
      properties
  in
  let checks = ref 0 in
  let failures = ref [] in
  let cases = ref 0 in
  let i = ref 0 in
  while !i < count && List.length !failures < max_failures do
    let case = !i in
    (match on_case with Some f -> f case | None -> ());
    incr cases;
    let rng = case_rng ~seed case in
    let c = Gen.circuit ~params rng in
    List.iter
      (fun p ->
        if List.length !failures < max_failures then begin
          incr checks;
          match Property.check_circuit p c with
          | Property.Pass -> ()
          | Property.Fail _ ->
            let shrunk, message = shrink_circuit ~minimize p c in
            failures :=
              {
                property = p.Property.name;
                seed;
                case;
                message;
                counterexample = Circuit shrunk;
                original_size = C.length c;
                shrunk_size = C.length shrunk;
              }
              :: !failures
        end)
      circuit_props;
    if source_props <> [] && List.length !failures < max_failures then begin
      let src = Gen.mutate rng (Qec_qasm.Printer.to_string c) in
      List.iter
        (fun p ->
          if List.length !failures < max_failures then begin
            incr checks;
            match Property.check_source p src with
            | Property.Pass -> ()
            | Property.Fail _ ->
              let shrunk, message = shrink_source ~minimize p src in
              failures :=
                {
                  property = p.Property.name;
                  seed;
                  case;
                  message;
                  counterexample = Source shrunk;
                  original_size = String.length src;
                  shrunk_size = String.length shrunk;
                }
                :: !failures
          end)
        source_props
    end;
    incr i
  done;
  {
    seed;
    count;
    cases = !cases;
    checks = !checks;
    properties = List.map (fun p -> p.Property.name) properties;
    failures = List.rev !failures;
  }

let counterexample_to_string = function
  | Circuit c -> Qec_qasm.Printer.to_string c
  | Source s -> s

(* ---------------- regression files ---------------- *)

let header_prefix = "// fuzz-"

let headers_of f =
  Printf.sprintf "// fuzz-prop: %s\n// fuzz-seed: %d\n// fuzz-case: %d\n"
    f.property f.seed f.case

let failure_to_file ~dir f =
  let slug =
    String.map (fun ch -> if ch = '/' then '-' else ch) f.property
  in
  let path =
    Filename.concat dir (Printf.sprintf "%s-s%d-c%d.qasm" slug f.seed f.case)
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (headers_of f);
      output_string oc (counterexample_to_string f.counterexample));
  path

(* Split the leading "// fuzz-*" comment block from the replayable body.
   The body is fed to the property verbatim, so even raw crash-fuzzer
   bytes survive the round trip unchanged. *)
let split_headers s =
  let len = String.length s in
  let rec go pos acc =
    if pos < len && len - pos >= String.length header_prefix
       && String.sub s pos (String.length header_prefix) = header_prefix
    then begin
      let stop =
        match String.index_from_opt s pos '\n' with
        | Some i -> i
        | None -> len - 1
      in
      go (stop + 1) (String.sub s pos (stop - pos + 1) :: acc)
    end
    else (List.rev acc, String.sub s pos (len - pos))
  in
  go 0 []

let header_value headers key =
  let prefix = Printf.sprintf "// fuzz-%s: " key in
  List.find_map
    (fun line ->
      if String.length line >= String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then
        Some
          (String.trim
             (String.sub line (String.length prefix)
                (String.length line - String.length prefix)))
      else None)
    headers

let replay_string s =
  let headers, body = split_headers s in
  match header_value headers "prop" with
  | None -> Error "missing '// fuzz-prop:' header"
  | Some name -> (
    match Property.find name with
    | None -> Error (Printf.sprintf "unknown property %S" name)
    | Some p -> (
      match p.Property.check with
      | Property.Source _ -> Ok (name, Property.check_source p body)
      | Property.Circuit _ -> (
        match Qec_qasm.Frontend.of_string ~name:"<regression>" body with
        | c -> Ok (name, Property.check_circuit p c)
        | exception Qec_qasm.Lexer.Error { line; col; msg }
        | exception Qec_qasm.Parser.Error { line; col; msg } ->
          Error
            (Printf.sprintf "regression body does not parse: %d:%d: %s" line
               col msg))))

let replay_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  replay_string contents
