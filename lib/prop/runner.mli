(** The fuzzing harness: generate, check, shrink, report, replay.

    A run is addressed by [(seed, count)]: case [i] derives its own RNG
    from the seed, generates one circuit and one mutated-QASM source, and
    evaluates every selected property on it. The same [(seed, case)]
    always reproduces the same inputs, so a reported failure is a stable
    address, not a lost event.

    Failing inputs are shrunk ({!Shrink}) before reporting, and can be
    serialized as standalone regression files — valid QASM (or raw
    fuzzer bytes) prefixed with [// fuzz-*] header comments naming the
    property and origin — which {!replay} runs back through the registry.
    Promoted files live in [fixtures/regressions/] and are replayed by
    [dune runtest] forever after. *)

type counterexample =
  | Circuit of Qec_circuit.Circuit.t
  | Source of string

type failure = {
  property : string;
  seed : int;  (** run seed *)
  case : int;  (** failing case index within the run *)
  message : string;  (** the property's message on the shrunk input *)
  counterexample : counterexample;  (** shrunk (when minimization is on) *)
  original_size : int;  (** gates (circuit) or bytes (source) pre-shrink *)
  shrunk_size : int;
}

type report = {
  seed : int;
  count : int;  (** cases requested *)
  cases : int;  (** cases actually run (early stop on failures) *)
  checks : int;  (** property evaluations, shrinking excluded *)
  properties : string list;  (** names, in evaluation order *)
  failures : failure list;
}

val run :
  ?params:Gen.params ->
  ?properties:Property.t list ->
  ?minimize:bool ->
  ?max_failures:int ->
  ?on_case:(int -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  report
(** Run the fuzzer. [properties] defaults to {!Property.all}; [minimize]
    defaults to [true]; the run stops once [max_failures] (default 1)
    failures have been collected and shrunk. [on_case] is called with
    each case index before it is evaluated (progress display). *)

val counterexample_to_string : counterexample -> string
(** The replayable text: {!Qec_qasm.Printer.to_string} for circuits, the
    raw bytes for sources. *)

val failure_to_file : dir:string -> failure -> string
(** Write the failure as a regression file
    [<dir>/<prop>-s<seed>-c<case>.qasm] ([/] in the property name becomes
    [-]) and return its path. The file is the [// fuzz-*] header block
    followed by {!counterexample_to_string}. *)

val replay_string : string -> (string * Property.outcome, string) result
(** Replay regression-file contents: parse the [// fuzz-prop:] header,
    strip the header block, feed the body to the named property (parsing
    it as QASM for circuit-keyed properties). [Ok (prop, outcome)] — a
    fixed regression replays as [Pass]; [Error] only for malformed files
    or unknown properties. *)

val replay_file : string -> (string * Property.outcome, string) result
(** {!replay_string} on a file's contents. *)
