module Rng = Qec_util.Rng
module Gate = Qec_circuit.Gate
module Circuit = Qec_circuit.Circuit

type params = {
  min_qubits : int;
  max_qubits : int;
  max_gates : int;
  cx_density : float;
  long_range_bias : float;
  wide_gate_freq : float;
  measure_freq : float;
}

(* Defaults are tuned for lattice pressure, not realism: widths up to 16
   cover both the fully packed 3x3 and 4x4 grids, and a two-qubit-heavy,
   long-range-biased gate mix is what makes routing fronts dense enough
   to fail routes — the regime where retry, rip-up and SWAP insertion
   actually execute. Under the seed-42/500-case smoke run these settings
   reach the surgery router's rip-up path; light mixes never do. *)
let default =
  {
    min_qubits = 2;
    max_qubits = 16;
    max_gates = 56;
    cx_density = 0.7;
    long_range_bias = 0.6;
    wide_gate_freq = 0.03;
    measure_freq = 0.2;
  }

let validate p =
  let in01 v = v >= 0. && v <= 1. in
  if p.min_qubits < 2 then Error "min_qubits must be >= 2"
  else if p.max_qubits < p.min_qubits then
    Error "max_qubits must be >= min_qubits"
  else if p.max_gates < 1 then Error "max_gates must be >= 1"
  else if not (in01 p.cx_density) then Error "cx_density must be in [0, 1]"
  else if not (in01 p.long_range_bias) then
    Error "long_range_bias must be in [0, 1]"
  else if not (in01 p.wide_gate_freq) then
    Error "wide_gate_freq must be in [0, 1]"
  else if not (in01 p.measure_freq) then Error "measure_freq must be in [0, 1]"
  else Ok ()

(* Angles come from a small set of exact binary fractions of pi plus the
   occasional arbitrary float: both survive the printer's %.17g round-trip
   bit-exactly, which the qasm/roundtrip property relies on. *)
let angle rng =
  let pi = Float.pi in
  match Rng.int rng 6 with
  | 0 -> pi /. 4.
  | 1 -> pi /. 2.
  | 2 -> -.pi /. 4.
  | 3 -> pi /. 8.
  | 4 -> Rng.float rng (2. *. pi)
  | _ -> -.Rng.float rng pi

let coin rng p = p > 0. && Rng.float rng 1.0 < p

let single_gate rng q =
  match Rng.int rng 12 with
  | 0 -> Gate.H q
  | 1 -> Gate.X q
  | 2 -> Gate.Y q
  | 3 -> Gate.Z q
  | 4 -> Gate.S q
  | 5 -> Gate.Sdg q
  | 6 -> Gate.T q
  | 7 -> Gate.Tdg q
  | 8 -> Gate.Rx (q, angle rng)
  | 9 -> Gate.Ry (q, angle rng)
  | 10 -> Gate.Rz (q, angle rng)
  | _ -> Gate.U3 (q, angle rng, angle rng, angle rng)

(* A biased partner: with probability [bias] restrict the draw to qubits
   at index distance >= n/2 from [a] (when any exist) — long-range gates
   are what force multi-round routing, SWAP layers, and surgery's
   corridor contention. *)
let partner rng ~bias ~n a =
  let far =
    List.filter (fun b -> b <> a && abs (b - a) >= (n + 1) / 2)
      (List.init n Fun.id)
  in
  if coin rng bias && far <> [] then
    List.nth far (Rng.int rng (List.length far))
  else begin
    let b = Rng.int rng (n - 1) in
    if b >= a then b + 1 else b
  end

let two_qubit_gate rng ~bias ~n =
  let a = Rng.int rng n in
  let b = partner rng ~bias ~n a in
  match Rng.int rng 4 with
  | 0 -> Gate.Cx (a, b)
  | 1 -> Gate.Cz (a, b)
  | 2 -> Gate.Cphase (a, b, angle rng)
  | _ -> Gate.Swap (a, b)

let ccx_gate rng ~n =
  let a = Rng.int rng n in
  let b = partner rng ~bias:0. ~n a in
  let rec pick () =
    let c = Rng.int rng n in
    if c = a || c = b then pick () else c
  in
  Gate.Ccx (a, b, pick ())

let circuit ?(params = default) rng =
  (match validate params with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Qec_prop.Gen.circuit: " ^ msg));
  let n = Rng.int_in rng params.min_qubits params.max_qubits in
  let gates = Rng.int_in rng 1 params.max_gates in
  let b = Circuit.Builder.create ~name:"fuzz" ~num_qubits:n () in
  for _ = 1 to gates do
    if n >= 3 && coin rng params.wide_gate_freq then
      Circuit.Builder.add b (ccx_gate rng ~n)
    else if coin rng params.cx_density then
      Circuit.Builder.add b
        (two_qubit_gate rng ~bias:params.long_range_bias ~n)
    else Circuit.Builder.add b (single_gate rng (Rng.int rng n))
  done;
  if coin rng params.measure_freq then
    for q = 0 to n - 1 do
      Circuit.Builder.add b (Gate.Measure q)
    done;
  Circuit.Builder.finish b

(* ---------------- QASM text mutation ---------------- *)

let keywords =
  [|
    "qreg"; "creg"; "gate"; "measure"; "barrier"; "include"; "OPENQASM";
    "->"; "q["; "]"; ";"; "("; ")"; "pi"; "0"; "9999999999999999999";
    "1e308"; "-"; "//"; "\""; "\n"; "if"; "opaque"; "u3"; "cx";
  |]

let mutate_once rng s =
  let len = String.length s in
  if len = 0 then Rng.choose rng keywords
  else
    match Rng.int rng 7 with
    | 0 ->
      (* flip one byte *)
      let i = Rng.int rng len in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8) land 0xff));
      Bytes.to_string b
    | 1 ->
      (* delete a chunk *)
      let i = Rng.int rng len in
      let k = min (len - i) (1 + Rng.int rng 16) in
      String.sub s 0 i ^ String.sub s (i + k) (len - i - k)
    | 2 ->
      (* insert a random byte *)
      let i = Rng.int rng (len + 1) in
      let c = String.make 1 (Char.chr (Rng.int rng 256)) in
      String.sub s 0 i ^ c ^ String.sub s i (len - i)
    | 3 ->
      (* splice a keyword *)
      let i = Rng.int rng (len + 1) in
      String.sub s 0 i ^ Rng.choose rng keywords
      ^ String.sub s i (len - i)
    | 4 ->
      (* duplicate a chunk *)
      let i = Rng.int rng len in
      let k = min (len - i) (1 + Rng.int rng 32) in
      let chunk = String.sub s i k in
      String.sub s 0 i ^ chunk ^ chunk ^ String.sub s (i + k) (len - i - k)
    | 5 ->
      (* truncate *)
      String.sub s 0 (Rng.int rng len)
    | _ ->
      (* swap two bytes *)
      let i = Rng.int rng len and j = Rng.int rng len in
      let b = Bytes.of_string s in
      let ci = Bytes.get b i in
      Bytes.set b i (Bytes.get b j);
      Bytes.set b j ci;
      Bytes.to_string b

let mutate ?(rounds = 8) rng s =
  let k = 1 + Rng.int rng (max 1 rounds) in
  let rec go k s = if k = 0 then s else go (k - 1) (mutate_once rng s) in
  go k s
