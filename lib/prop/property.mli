(** The cross-layer property registry.

    Each property asserts one invariant the paper (or a backend contract)
    promises for {e every} circuit, evaluated here on generated inputs:

    - [trace/braid], [trace/surgery] — the scheduled trace replays
      {!Autobraid.Trace.check}-clean: every round vertex-disjoint on the
      lattice, every gate exactly once and dependency-ordered;
    - [diff/backends] — the differential oracle: braid, surgery, and the
      greedy MICRO'17 baseline must schedule the same lowered gate set,
      with check-clean traces and latencies at or above each backend's
      own critical-path lower bound;
    - [surgery/pipeline-bounds] — split pipelining never slows surgery
      down: total cycles sit between the all-splits-overlapped lower
      bound and the no-pipelining run;
    - [engine/spec-identity] — {!Qec_engine.Engine.run_spec} on a spec
      naming a QASM file is byte-identical (rendered result + trace JSON)
      to running the scheduler directly on that file — the [compile] ==
      [run_spec] contract, on generated circuits;
    - [engine/cache-identity] — a placement-cache disk hit reproduces the
      cold run byte-for-byte;
    - [engine/batch-identity] — [run_batch] JSONL is byte-identical for
      [jobs = 1] and [jobs = 3];
    - [qasm/roundtrip] — print → parse reproduces the circuit
      gate-for-gate;
    - [lint/stable-codes] — lint diagnostics are stable under a
      pretty-print → re-lex round trip;
    - [qasm/crash] (source-keyed) — mutated QASM bytes must produce
      structured positioned errors from the frontend and the lint pass,
      never an unhandled exception;
    - [serve/protocol] (source-keyed) — the serve daemon's wire decoding
      ({!Qec_serve.Protocol}) is total: arbitrary bytes, raw or spliced
      into well-formed request envelopes, yield [Ok] or a structured
      [parse]/[bad-request] error, never an exception.

    Checks are deterministic, so a failing (seed, case) replays exactly
    and shrinking can re-evaluate candidates. *)

type outcome = Pass | Fail of string

type check =
  | Circuit of (Qec_circuit.Circuit.t -> outcome)
      (** fed generated circuits; shrunk as circuits *)
  | Source of (string -> outcome)
      (** fed mutated QASM text; shrunk as text *)

type t = { name : string; description : string; check : check }

val all : unit -> t list
(** Every registered property, in stable (registration) order. *)

val names : unit -> string list

val find : string -> t option

val check_circuit : t -> Qec_circuit.Circuit.t -> outcome
(** Apply a circuit-keyed property ([Pass] for source-keyed ones — a
    circuit is never a crash-fuzzer input). *)

val check_source : t -> string -> outcome
(** Apply a source-keyed property ([Pass] for circuit-keyed ones). *)
