module Circuit = Qec_circuit.Circuit
module Gate = Qec_circuit.Gate

(* Generic ddmin-style pass over a list of atoms: repeatedly try removing
   windows of [size] atoms (largest first), keeping any removal that still
   fails, until windows of one atom no longer help. [rebuild] may reject a
   candidate (e.g. an unparseable circuit) by raising — treated as "does
   not fail". *)
let ddmin ~budget ~test ~rebuild atoms =
  let test_atoms xs =
    if !budget <= 0 then false
    else begin
      decr budget;
      match rebuild xs with
      | x -> test x
      | exception _ -> false
    end
  in
  let rec pass size atoms =
    let n = Array.length atoms in
    if size < 1 || n = 0 then atoms
    else begin
      let atoms = ref atoms and i = ref 0 in
      while !i < Array.length !atoms do
        let n = Array.length !atoms in
        let k = min size (n - !i) in
        let candidate =
          Array.append (Array.sub !atoms 0 !i)
            (Array.sub !atoms (!i + k) (n - !i - k))
        in
        if k > 0 && test_atoms candidate then atoms := candidate
          (* retry the same index: the window shifted left *)
        else i := !i + size
      done;
      pass (size / 2) !atoms
    end
  in
  pass (max 1 (Array.length atoms / 2)) atoms

let minimize ?(max_tests = 2000) ~test c =
  if not (test c) then
    invalid_arg "Qec_prop.Shrink.minimize: input does not fail";
  let budget = ref max_tests in
  let rebuild_gates n gates =
    Circuit.create ~name:(Circuit.name c) ~num_qubits:n (Array.to_list gates)
  in
  let try_compact c =
    let compacted = Circuit.compact c in
    if
      Circuit.num_qubits compacted < Circuit.num_qubits c
      && !budget > 0
      && (decr budget;
          test compacted)
    then compacted
    else c
  in
  (* Dropping one qubit (with every gate touching it) shrinks along the
     width axis, which gate-window removal alone rarely reaches: a
     congestion-dependent failure keeps its colliding gates but loses the
     bystanders crowding the lattice. *)
  let drop_qubit c q =
    let gates =
      Array.to_list (Circuit.gates c)
      |> List.filter (fun g -> not (List.mem q (Gate.qubits g)))
    in
    Circuit.compact
      (Circuit.create ~name:(Circuit.name c)
         ~num_qubits:(Circuit.num_qubits c) gates)
  in
  (* Relabeling qubit [q] onto [target] keeps the gate pressure (minus
     gates that would become self-loops) while narrowing the lattice —
     exactly what a congestion failure needs to survive a width shrink. *)
  let merge_qubit c q target =
    let gates =
      Array.to_list (Circuit.gates c)
      |> List.filter_map (fun g ->
             let g = Gate.map_qubits (fun x -> if x = q then target else x) g in
             let qs = Gate.qubits g in
             if List.length (List.sort_uniq compare qs) = List.length qs then
               Some g
             else None)
    in
    Circuit.compact
      (Circuit.create ~name:(Circuit.name c)
         ~num_qubits:(Circuit.num_qubits c) gates)
  in
  let shrink_width c =
    let c = ref c and q = ref (Circuit.num_qubits c - 1) in
    while !q >= 0 && !budget > 0 do
      (if Circuit.num_qubits !c > 1 then
         match drop_qubit !c !q with
         | candidate when (decr budget; test candidate) -> c := candidate
         | _ | (exception _) ->
           (* deletion lost the failure; try folding q onto each lower
              qubit instead *)
           let target = ref 0 and merged = ref false in
           while (not !merged) && !target < !q && !budget > 0 do
             (match merge_qubit !c !q !target with
             | candidate ->
               decr budget;
               if test candidate then begin
                 c := candidate;
                 merged := true
               end
             | exception _ -> ());
             incr target
           done);
      decr q;
      q := min !q (Circuit.num_qubits !c - 1)
    done;
    !c
  in
  let rec fix c =
    let shrunk_gates =
      ddmin ~budget ~test
        ~rebuild:(rebuild_gates (Circuit.num_qubits c))
        (Circuit.gates c)
    in
    let c' = rebuild_gates (Circuit.num_qubits c) shrunk_gates in
    let c' = try_compact c' in
    let c' = shrink_width c' in
    if Circuit.length c' < Circuit.length c
       || Circuit.num_qubits c' < Circuit.num_qubits c
    then if !budget > 0 then fix c' else c'
    else c'
  in
  fix c

let minimize_text ?(max_tests = 2000) ~test s =
  if not (test s) then
    invalid_arg "Qec_prop.Shrink.minimize_text: input does not fail";
  let budget = ref max_tests in
  let split_lines s =
    (* keep terminators so rebuilding is concatenation *)
    let out = ref [] and start = ref 0 in
    String.iteri
      (fun i ch ->
        if ch = '\n' then begin
          out := String.sub s !start (i - !start + 1) :: !out;
          start := i + 1
        end)
      s;
    if !start < String.length s then
      out := String.sub s !start (String.length s - !start) :: !out;
    Array.of_list (List.rev !out)
  in
  let concat parts = String.concat "" (Array.to_list parts) in
  let by_lines =
    concat (ddmin ~budget ~test ~rebuild:concat (split_lines s))
  in
  let chars =
    Array.init (String.length by_lines) (fun i ->
        String.make 1 by_lines.[i])
  in
  concat (ddmin ~budget ~test ~rebuild:concat chars)
