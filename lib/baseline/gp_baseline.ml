module Circuit = Qec_circuit.Circuit
module Dag = Qec_circuit.Dag
module Decompose = Qec_circuit.Decompose
module Grid = Qec_lattice.Grid
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Timing = Qec_surface.Timing
module Task = Autobraid.Task
module Scheduler = Autobraid.Scheduler

type route_kind = Dimension_ordered | Astar

type options = {
  initial : Autobraid.Initial_layout.method_;
  router : route_kind;
  seed : int;
}

let default_options =
  {
    (* Plain bisection: the degree-2 snake embedding is part of AutoBraid's
       initial-placement analysis, not of the MICRO'17 baseline. *)
    initial = Autobraid.Initial_layout.Bisected;
    router = Dimension_ordered;
    seed = 11;
  }

(* The baseline is not in the Comm_backend registry (it produces no
   trace), but it speaks the same per-backend options codec so the engine
   decodes every backend's knobs uniformly. *)
let options_spec =
  let open Autobraid.Comm_backend.Options in
  [
    {
      key = "router";
      kind = TEnum [ "dimension"; "astar" ];
      default = String "dimension";
      doc =
        "dimension = braidflash-style single-bend routes (the faithful \
         baseline), astar = detouring A* ablation";
    };
  ]

let of_backend_options opts base =
  {
    base with
    router =
      (match Autobraid.Comm_backend.Options.get_string opts "router" with
      | "astar" -> Astar
      | _ -> Dimension_ordered);
  }

let run ?(options = default_options) timing circuit : Scheduler.result =
  let t0 = Sys.time () in
  let circuit = Decompose.to_scheduler_gates circuit in
  let n = Circuit.num_qubits circuit in
  let side = max 1 (Qec_surface.Resources.lattice_side ~num_logical:n) in
  let grid = Grid.create side in
  let placement =
    Autobraid.Initial_layout.place ~seed:options.seed ~method_:options.initial
      circuit grid
  in
  let dag = Dag.of_circuit circuit in
  let frontier = Dag.Frontier.create dag in
  let router = Router.create grid in
  let occ = Occupancy.create grid in
  let cycles = ref 0 and rounds = ref 0 and braid_rounds = ref 0 in
  let util_sum = ref 0. and util_peak = ref 0. in
  while not (Dag.Frontier.is_done frontier) do
    let ready = Dag.Frontier.ready frontier in
    let singles, cx_tasks =
      List.fold_left
        (fun (singles, cxs) id ->
          match Task.of_gate id (Circuit.gate circuit id) with
          | Some t -> (singles, t :: cxs)
          | None -> (id :: singles, cxs))
        ([], []) ready
    in
    let singles = List.rev singles and cx_tasks = List.rev cx_tasks in
    if cx_tasks = [] then begin
      List.iter (Dag.Frontier.complete frontier) singles;
      cycles := !cycles + Timing.single_qubit_cycles timing;
      incr rounds
    end
    else begin
      Occupancy.clear occ;
      (* Greedy order: shortest operand distance first; id breaks ties. *)
      let order =
        List.sort
          (fun a b ->
            let da = Task.distance placement a
            and db = Task.distance placement b in
            if da <> db then compare da db
            else compare a.Task.id b.Task.id)
          cx_tasks
      in
      (* Dimension-ordered (braidflash-style) routing by default: no
         detours; a blocked L-route means the braid stalls until a later
         round. The A* variant is an ablation. *)
      let route_one ~src_cell ~dst_cell =
        match options.router with
        | Dimension_ordered ->
          Router.route_dimension_ordered_and_reserve router occ ~src_cell
            ~dst_cell
        | Astar -> Router.route_and_reserve router occ ~src_cell ~dst_cell
      in
      let routed =
        List.filter_map
          (fun (task : Task.t) ->
            let src_cell, dst_cell = Task.cells placement task in
            match route_one ~src_cell ~dst_cell with
            | Some p -> Some (task, p)
            | None -> None)
          order
      in
      List.iter
        (fun ((t : Task.t), _) -> Dag.Frontier.complete frontier t.id)
        routed;
      List.iter (Dag.Frontier.complete frontier) singles;
      let u = Occupancy.utilization occ in
      util_sum := !util_sum +. u;
      if u > !util_peak then util_peak := u;
      cycles := !cycles + Timing.braid_cycles timing;
      incr rounds;
      incr braid_rounds
    end
  done;
  {
    Scheduler.name = Circuit.name circuit;
    num_qubits = n;
    num_gates = Circuit.length circuit;
    num_two_qubit = Circuit.two_qubit_count circuit;
    lattice_side = side;
    total_cycles = !cycles;
    rounds = !rounds;
    braid_rounds = !braid_rounds;
    swap_layers = 0;
    swaps_inserted = 0;
    critical_path_cycles =
      Dag.critical_path ~cost:(Timing.gate_cycles timing) dag;
    avg_utilization =
      (if !braid_rounds = 0 then 0.
       else !util_sum /. float_of_int !braid_rounds);
    peak_utilization = !util_peak;
    compile_time_s = Sys.time () -. t0;
  }
