(** Re-implementation of the baseline braiding scheduler — "GP w. initM"
    (Javadi-Abhari et al., MICRO'17, as characterized in the AutoBraid
    paper §4.1).

    Greedy policy: each round, sort the ready CX gates by operand distance
    (shortest first — shortest paths consume minimal routing resources) and
    A*-route them in that order; gates that fail wait for the next round.
    The qubit placement comes from the graph partitioner ("initM") and is
    {e static} for the whole execution — no LLG analysis, no stack
    ordering, no retry, no SWAP insertion. Latency accounting is identical
    to {!Autobraid.Scheduler} so the comparison isolates the scheduling
    policy. *)

type route_kind =
  | Dimension_ordered
      (** braidflash-style single-bend routes — the faithful baseline *)
  | Astar  (** detouring A* — ablation isolating the ordering policy *)

type options = {
  initial : Autobraid.Initial_layout.method_;
      (** default [Bisected] — plain "metis" seeding without AutoBraid's
          degree-2 snake special case; [Identity] gives the unseeded
          ablation *)
  router : route_kind;  (** default [Dimension_ordered] *)
  seed : int;
}

val default_options : options

val options_spec : Autobraid.Comm_backend.Options.spec list
(** The baseline's knobs in the shared per-backend options codec:
    [router] (["dimension"|"astar"]). The baseline stays out of the
    {!Autobraid.Comm_backend} registry (it produces no trace), but the
    engine decodes its [backend_options] against this spec like any
    registered backend's. *)

val of_backend_options :
  Autobraid.Comm_backend.Options.t -> options -> options
(** Overlay a decoded (complete, type-checked) options record onto
    [base]. *)

val run :
  ?options:options ->
  Qec_surface.Timing.t ->
  Qec_circuit.Circuit.t ->
  Autobraid.Scheduler.result
(** Same result record as the main scheduler ([swap_layers] and
    [swaps_inserted] are always 0). *)
