let default_domains () = max 1 (Domain.recommended_domain_count () - 1)
let default_jobs = default_domains

exception Worker_failure of exn

module Queue = struct
  type 'a t = { items : 'a array; next : int Atomic.t }

  let of_list xs = { items = Array.of_list xs; next = Atomic.make 0 }
  let length q = Array.length q.items

  let pop q =
    let i = Atomic.fetch_and_add q.next 1 in
    if i < Array.length q.items then Some (i, q.items.(i)) else None

  let remaining q =
    max 0 (Array.length q.items - Atomic.get q.next)
end

let run_workers ~jobs worker =
  let jobs = max 1 jobs in
  if jobs = 1 then worker 0
  else begin
    let spawned = List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    (* The caller's domain is worker 0; always join every spawned domain,
       even when a worker raises, so none outlives the call. *)
    let own = try Ok (worker 0) with e -> Error e in
    let joined =
      List.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned
    in
    match own :: joined |> List.find_opt Result.is_error with
    | Some (Error e) -> raise e
    | Some (Ok ()) | None -> ()
  end

let map_jobs ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = List.length xs in
  if n <= 1 || jobs <= 1 then List.map f xs
  else begin
    let queue = Queue.of_list xs in
    let output = Array.make n None in
    let worker _id =
      let rec loop () =
        match Queue.pop queue with
        | None -> ()
        | Some (i, x) ->
          (match f x with
          | y -> output.(i) <- Some (Ok y)
          | exception e -> output.(i) <- Some (Error e));
          loop ()
      in
      loop ()
    in
    run_workers ~jobs:(min jobs n) worker;
    Array.to_list output
    |> List.map (function
         | Some (Ok y) -> y
         | Some (Error e) -> raise (Worker_failure e)
         | None -> assert false)
  end

let map ?domains f xs = map_jobs ?jobs:domains f xs
