let default_domains () = max 1 (Domain.recommended_domain_count () - 1)
let default_jobs = default_domains

exception Worker_failure of exn

(* Telemetry instrumentation is injected (Qec_telemetry registers a probe
   at link time) because qec_telemetry depends on qec_util — the hooks keep
   this module dependency-free while letting worker domains report real
   spans and queue histograms. The null probe makes every hook a no-op. *)
type probe = {
  wrap_worker : worker:int -> (unit -> unit) -> unit;
  enabled : unit -> bool;
  now : unit -> float;
  count : string -> int -> unit;
  sample : string -> float -> unit;
  span_open : string -> unit;
  span_close : unit -> unit;
}

let null_probe =
  {
    wrap_worker = (fun ~worker:_ f -> f ());
    enabled = (fun () -> false);
    now = (fun () -> 0.);
    count = (fun _ _ -> ());
    sample = (fun _ _ -> ());
    span_open = ignore;
    span_close = (fun () -> ());
  }

let probe = ref null_probe
let set_probe p = probe := p

module Queue = struct
  type 'a t = { items : 'a array; next : int Atomic.t }

  let of_list xs = { items = Array.of_list xs; next = Atomic.make 0 }
  let length q = Array.length q.items

  let pop q =
    let i = Atomic.fetch_and_add q.next 1 in
    if i < Array.length q.items then Some (i, q.items.(i)) else None

  let remaining q =
    max 0 (Array.length q.items - Atomic.get q.next)
end

let run_workers ~jobs worker =
  let jobs = max 1 jobs in
  if jobs = 1 then worker 0
  else begin
    let p = !probe in
    let spawned =
      (* Spawned domains run inside the probe's worker scope, so their
         telemetry buffers per domain and merges into the installing
         domain's collector at join. The caller's domain is worker 0 and
         already carries its own telemetry state (if any). *)
      List.init (jobs - 1) (fun k ->
          Domain.spawn (fun () ->
              p.wrap_worker ~worker:(k + 1) (fun () -> worker (k + 1))))
    in
    (* The caller's domain is worker 0; always join every spawned domain,
       even when a worker raises, so none outlives the call. *)
    let own = try Ok (worker 0) with e -> Error e in
    let joined =
      List.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned
    in
    match own :: joined |> List.find_opt Result.is_error with
    | Some (Error e) -> raise e
    | Some (Ok ()) | None -> ()
  end

let map_jobs ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = List.length xs in
  if n <= 1 || jobs <= 1 then List.map f xs
  else begin
    let queue = Queue.of_list xs in
    let output = Array.make n None in
    (* All items are "enqueued" when the queue is built, so an item's
       queue wait is pop time minus this stamp. *)
    let t_queue = (!probe).now () in
    let worker _id =
      let p = !probe in
      let live = p.enabled () in
      let rec loop () =
        match Queue.pop queue with
        | None -> ()
        | Some (i, x) ->
          if live then begin
            let t0 = p.now () in
            p.sample "parallel.queue_wait_s" (t0 -. t_queue);
            p.span_open "parallel.job";
            (match f x with
            | y -> output.(i) <- Some (Ok y)
            | exception e -> output.(i) <- Some (Error e));
            p.span_close ();
            p.sample "parallel.job_s" (p.now () -. t0);
            p.count "parallel.jobs" 1
          end
          else begin
            match f x with
            | y -> output.(i) <- Some (Ok y)
            | exception e -> output.(i) <- Some (Error e)
          end;
          loop ()
      in
      loop ()
    in
    run_workers ~jobs:(min jobs n) worker;
    Array.to_list output
    |> List.map (function
         | Some (Ok y) -> y
         | Some (Error e) -> raise (Worker_failure e)
         | None -> assert false)
  end

let map ?domains f xs = map_jobs ?jobs:domains f xs
