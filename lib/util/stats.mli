(** Small descriptive-statistics helpers for benchmark reporting. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0. on the empty list. Raises
    [Invalid_argument] if any value is non-positive. *)

val stddev : float list -> float
(** Population standard deviation; 0. for fewer than two samples. *)

val min_max : float list -> float * float
(** Smallest and largest value. Raises [Invalid_argument] on empty input. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank method. Raises
    [Invalid_argument] on empty input or out-of-range [p]. *)

val histogram : buckets:int -> float list -> (float * float * int) array
(** Equal-width histogram: [(lo, hi, count)] per bucket over the data range.
    A degenerate range (all samples equal) collapses to the single bucket
    [(v, v, n)] rather than fabricating buckets of arbitrary width. Raises
    [Invalid_argument] if [buckets <= 0] or the input is empty. *)
