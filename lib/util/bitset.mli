(** Fixed-capacity bitset over [0 .. capacity-1].

    Backs the routing-grid occupancy map: one bit per channel vertex.
    Operations are O(1) except [cardinal]/[iter]/[union] which are
    O(capacity/64). *)

type t

val create : int -> t
(** [create n] is the empty set with capacity [n]. *)

val capacity : t -> int

val copy : t -> t

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val clear : t -> unit
(** Empty the set. *)

val cardinal : t -> int
(** Number of members. *)

val iter : (int -> unit) -> t -> unit
(** Visit members in ascending order. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every member of [src] to [dst]. The two sets
    must have equal capacity. *)

val inter_cardinal : t -> t -> int
(** Size of the intersection (capacities must match). *)

val to_list : t -> int list
(** Members in ascending order. *)

val ntz : int -> int
(** Trailing-zero count of a nonzero machine word: the bit index of its
    lowest set bit. Exposed for packed-bit-word iteration elsewhere (the
    interference graph's adjacency rows). Raises [Invalid_argument] on 0. *)
