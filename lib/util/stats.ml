let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0. then invalid_arg "Stats.geomean: non-positive value";
          acc +. log x)
        0. xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
    sqrt var

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  let rank = max 1 (min n rank) in
  List.nth sorted (rank - 1)

let histogram ~buckets xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets <= 0";
  if xs = [] then invalid_arg "Stats.histogram: empty";
  let lo, hi = min_max xs in
  (* Degenerate range: every sample equal. Equal-width bucketing would
     divide by a zero range; collapse to one exact bucket instead. *)
  if lo = hi then [| (lo, hi, List.length xs) |]
  else begin
    let width = (hi -. lo) /. float_of_int buckets in
    let counts = Array.make buckets 0 in
    List.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. width) in
        let b = max 0 (min (buckets - 1) b) in
        counts.(b) <- counts.(b) + 1)
      xs;
    Array.mapi
      (fun i c ->
        let blo = lo +. (float_of_int i *. width) in
        (blo, blo +. width, c))
      counts
  end
