(* Array-backed binary min-heap. Each node stores (priority, seq, value);
   seq is a monotonically increasing stamp that makes equal-priority pops
   FIFO and therefore deterministic. *)

type 'a node = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a node array;
  mutable size : int;
  mutable stamp : int;
}

let create ?(capacity = 16) () =
  { data = [||]; size = 0; stamp = capacity * 0 }

let length t = t.size

let is_empty t = t.size = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t node =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap node in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~priority value =
  let node = { prio = priority; seq = t.stamp; value } in
  t.stamp <- t.stamp + 1;
  grow t node;
  t.data.(t.size) <- node;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top.value
  end

let peek_min t = if t.size = 0 then None else Some t.data.(0).value

let clear t =
  t.size <- 0;
  t.stamp <- 0

(* Min-heap specialized to int values with the (priority, insertion seq)
   pair packed into one key word: no node allocation per push, so the A*
   router's open list stays allocation-free across millions of pushes.
   Ordering is identical to the polymorphic heap above — priority first,
   FIFO on ties — because the packed key compares lexicographically. *)
module Int_pq = struct
  type t = {
    mutable keys : int array; (* (prio lsl seq_bits) lor seq *)
    mutable vals : int array;
    mutable size : int;
    mutable stamp : int;
  }

  let seq_bits = 31
  let max_priority = (1 lsl (62 - seq_bits)) - 1
  let max_stamp = (1 lsl seq_bits) - 1

  let create ?(capacity = 16) () =
    let capacity = max 1 capacity in
    {
      keys = Array.make capacity 0;
      vals = Array.make capacity 0;
      size = 0;
      stamp = 0;
    }

  let length t = t.size
  let is_empty t = t.size = 0

  let grow t =
    if t.size = Array.length t.keys then begin
      let ncap = 2 * Array.length t.keys in
      let nk = Array.make ncap 0 and nv = Array.make ncap 0 in
      Array.blit t.keys 0 nk 0 t.size;
      Array.blit t.vals 0 nv 0 t.size;
      t.keys <- nk;
      t.vals <- nv
    end

  let swap t i j =
    let k = t.keys.(i) and v = t.vals.(i) in
    t.keys.(i) <- t.keys.(j);
    t.vals.(i) <- t.vals.(j);
    t.keys.(j) <- k;
    t.vals.(j) <- v

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if t.keys.(i) < t.keys.(parent) then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && t.keys.(l) < t.keys.(!smallest) then smallest := l;
    if r < t.size && t.keys.(r) < t.keys.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let push t ~priority v =
    if priority < 0 || priority > max_priority then
      invalid_arg "Heap.Int_pq.push: priority out of range";
    if t.stamp > max_stamp then invalid_arg "Heap.Int_pq.push: stamp overflow";
    grow t;
    t.keys.(t.size) <- (priority lsl seq_bits) lor t.stamp;
    t.vals.(t.size) <- v;
    t.stamp <- t.stamp + 1;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let pop_min t =
    if t.size = 0 then -1
    else begin
      let top = t.vals.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.keys.(0) <- t.keys.(t.size);
        t.vals.(0) <- t.vals.(t.size);
        sift_down t 0
      end;
      top
    end

  let clear t =
    t.size <- 0;
    t.stamp <- 0
end
