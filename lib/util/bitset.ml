type t = { words : int array; cap : int }

let words_for n = (n + 62) / 63

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make (words_for n) 0; cap = n }

let capacity t = t.cap

let copy t = { words = Array.copy t.words; cap = t.cap }

let check t i =
  if i < 0 || i >= t.cap then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let add t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) lor (1 lsl (i mod 63))

let remove t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) land lnot (1 lsl (i mod 63))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

(* Number of trailing zero bits of a nonzero word: the bit index of its
   lowest set bit. Branchy binary reduction — no hardware ctz in the
   stdlib, and this is hot enough in packed-adjacency iteration to matter
   more than elegance. *)
let ntz x =
  if x = 0 then invalid_arg "Bitset.ntz: zero word";
  let n = ref 0 in
  let x = ref x in
  if !x land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    x := !x lsr 32
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for wi = 0 to Array.length t.words - 1 do
    let w = ref t.words.(wi) in
    while !w <> 0 do
      let b = !w land - !w in
      f ((wi * 63) + ntz b);
      w := !w land lnot b
    done
  done

let union_into ~dst src =
  if dst.cap <> src.cap then invalid_arg "Bitset.union_into: capacity mismatch";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let inter_cardinal a b =
  if a.cap <> b.cap then invalid_arg "Bitset.inter_cardinal: capacity mismatch";
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc
