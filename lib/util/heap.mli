(** Binary min-heap over integer priorities.

    Used as the open list of the A* router, where priorities are f-scores.
    Ties are broken by insertion order (FIFO), which keeps A* expansions
    deterministic across runs. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap. [capacity] is an initial size hint. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> priority:int -> 'a -> unit
(** Insert an element with the given priority. *)

val pop_min : 'a t -> 'a option
(** Remove and return an element with the smallest priority, or [None] if
    the heap is empty. Among equal priorities, the earliest-pushed element
    is returned first. *)

val peek_min : 'a t -> 'a option
(** Smallest-priority element without removing it. *)

val clear : 'a t -> unit
(** Remove all elements (keeps the backing storage). *)

(** Min-heap specialized to non-negative int values, with priority and
    insertion stamp packed into one key word — no allocation per push.
    Ordering is identical to the polymorphic heap: smallest priority
    first, FIFO among equal priorities. Used as the A* open list. *)
module Int_pq : sig
  type t

  val create : ?capacity:int -> unit -> t

  val length : t -> int

  val is_empty : t -> bool

  val push : t -> priority:int -> int -> unit
  (** Raises [Invalid_argument] if [priority] is negative or exceeds
      [2^31 - 1], or after [2^31] pushes without a {!clear}. *)

  val pop_min : t -> int
  (** Remove and return the minimum, or [-1] when empty (values are node
      ids, never negative). *)

  val clear : t -> unit
end
