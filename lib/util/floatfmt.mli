(** The one JSON float printer, shared by {!Qec_report.Json} and
    {!Qec_telemetry.Jsonl} so report JSON and telemetry JSONL agree
    byte-for-byte on the same values. *)

val repr : float -> string
(** Shortest decimal representation that round-trips through
    [float_of_string]. Integral values render with one decimal ("2.0"),
    non-finite values as ["null"] (the only JSON-valid spelling). *)
