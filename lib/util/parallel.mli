(** Fork-join parallelism over OCaml 5 domains.

    Two layers:

    - {!Queue} + {!run_workers}: a shared concurrent work queue feeding a
      fixed-size worker pool — the primitive behind batch compilation
      ({!Qec_engine}), where callers need per-item bookkeeping (timings,
      error capture) inside the worker loop.
    - {!map_jobs} / {!map}: fork-join map built on that queue. Callers
      pass pure-ish functions (the scheduler mutates only per-run state)
      and results come back in input order regardless of worker count. *)

exception Worker_failure of exn
(** Wraps an exception raised by a worker function in {!map_jobs} /
    {!map}; re-raised in the caller, for the lowest-index failing item. *)

type probe = {
  wrap_worker : worker:int -> (unit -> unit) -> unit;
      (** runs a spawned worker's whole loop; the telemetry probe opens a
          per-domain recording scope here and merges it at join *)
  enabled : unit -> bool;  (** telemetry live on the calling domain? *)
  now : unit -> float;  (** wall clock, only consulted when [enabled] *)
  count : string -> int -> unit;
  sample : string -> float -> unit;
  span_open : string -> unit;
  span_close : unit -> unit;
}
(** Instrumentation hooks. [qec_util] cannot depend on [qec_telemetry]
    (the dependency points the other way), so telemetry injects itself via
    {!set_probe} at link time. With the default {!null_probe} every hook
    is a no-op and workers run exactly as before. *)

val null_probe : probe
(** The do-nothing probe (default). *)

val set_probe : probe -> unit
(** Install the process-wide probe. Called once by [Qec_telemetry] on
    linking; tests may swap in their own. *)

module Queue : sig
  type 'a t
  (** A fixed work list consumed concurrently, lock-free (one atomic
      fetch-and-add per {!pop}). Items are handed out in input order with
      their original index, so consumers can write results positionally. *)

  val of_list : 'a list -> 'a t

  val pop : 'a t -> (int * 'a) option
  (** Next [(index, item)], or [None] once the queue is drained. Safe to
      call from any domain. *)

  val length : 'a t -> int
  (** Total number of items (drained or not). *)

  val remaining : 'a t -> int
  (** Items not yet popped — a racy snapshot, for progress reporting. *)
end

val run_workers : jobs:int -> (int -> unit) -> unit
(** [run_workers ~jobs worker] runs [worker id] on [max 1 jobs] domains
    (ids [0 .. jobs-1]; id 0 is the calling domain) and joins them all
    before returning. An exception from the caller's own worker is
    re-raised after the join; workers are expected to capture their own
    failures (e.g. into a results array) — an escape from a spawned
    domain surfaces via [Domain.join]. Spawned workers run under the
    installed {!probe}'s [wrap_worker], so with telemetry active their
    spans and counters record for real and merge at join. *)

val map_jobs : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_jobs ~jobs f xs] evaluates [f] on every element using a worker
    pool of [jobs] domains (default {!default_jobs}) fed by a shared
    queue. Falls back to plain [List.map] for lists of length <= 1 or
    [jobs <= 1]. Exceptions raised by [f] are re-raised in the caller as
    {!Worker_failure}. Results are in input order. With telemetry active
    each item reports a [parallel.job] span plus [parallel.queue_wait_s]
    / [parallel.job_s] histogram samples and a [parallel.jobs] counter. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?domains f xs] is [map_jobs ?jobs:domains f xs] — the original
    name, kept for callers that predate the worker-pool API. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)

val default_domains : unit -> int
(** Alias of {!default_jobs} (historical name). *)
