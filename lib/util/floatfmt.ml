let repr f =
  if Float.is_nan f || not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* Shortest decimal that round-trips: 0.3 prints as "0.3", not
       "0.29999999999999999". *)
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
