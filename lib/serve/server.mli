(** The compilation-as-a-service daemon.

    [run config] binds a Unix-domain stream socket, speaks
    {!Protocol.version} over it, and blocks until drained. Inside, the
    one-shot engine's pure core ({!Qec_engine.Engine_core}) executes on a
    [Qec_util.Parallel] domain pool sharing a single mutex-guarded
    {!Qec_engine.Placement_cache}, so repeated requests for the same
    placement are memory hits across all clients. Per-connection reader
    threads decode lines, answer [ping]/[stats]/[shutdown] inline, and
    feed compile work through admission control: a bounded queue
    ([max_pending]) that answers overflow with an immediate ["overloaded"]
    error record, and an optional queue-wait deadline ([timeout_s])
    enforced before a job starts (["timeout"] error; clean cancellation —
    a job is never aborted mid-flight).

    Drain — triggered by a [shutdown] request, or by SIGTERM/SIGINT when
    [handle_signals] — stops accepting, rejects new admissions with
    ["shutting-down"], finishes everything already queued, joins the
    pool, writes the optional Perfetto trace ([trace_out]), removes the
    socket file and returns.

    Live metrics ({!Metrics}) back the [stats] response: request-latency
    and queue-wait histograms, a queue-depth gauge, and per-kind
    cache/rejection counters. *)

type config = {
  socket : string;  (** socket path; an existing file is replaced *)
  jobs : int;  (** worker-pool size, clamped to [>= 1] *)
  max_pending : int;  (** admission-control queue bound *)
  timeout_s : float option;  (** per-request queue-wait deadline *)
  cache_dir : string option;  (** placement-cache disk tier *)
  trace_out : string option;  (** Perfetto trace written on drain *)
  handle_signals : bool;  (** drain on SIGTERM/SIGINT (daemon mode) *)
  log : string -> unit;  (** operational log lines (e.g. [prerr_endline]) *)
}

val default_config : socket:string -> unit -> config
(** [jobs = Parallel.default_jobs ()], [max_pending = 128], no timeout,
    no cache dir, no trace, no signal handlers, silent log. *)

val run : config -> unit
(** Serve until drained. Raises [Unix.Unix_error] if the socket cannot
    be bound. Ignores SIGPIPE process-wide (a disconnecting client must
    surface as an IO error, not kill the daemon). *)
