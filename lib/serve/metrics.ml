(* Live server metrics, readable at any moment from any thread.

   Qec_telemetry buffers worker-domain records in DLS and only merges
   them into the root collector at pool join — correct for batch runs,
   useless for a `stats` request that must see the daemon's counters
   while workers are still running. So the server keeps its own
   mutex-guarded aggregates here and exports them in the same JSON shape
   as Qec_report.Export.telemetry_to_json's counters/gauges/histograms
   members (--metrics' machine-readable form). *)

module Json = Qec_report.Json

(* Latency samples are capped: a long-lived daemon must not grow without
   bound. The first [max_samples] observations are kept exactly;
   count/sum/min/max stay exact forever, and percentiles degrade to the
   retained prefix — fine for ops dashboards. *)
let max_samples = 16384

type series = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  samples : float array;
}

type t = {
  lock : Mutex.t;
  counters : (string, int) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  series : (string, series) Hashtbl.t;
  started_at : float;
}

let create () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    series = Hashtbl.create 8;
    started_at = Unix.gettimeofday ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let count ?(by = 1) t name =
  locked t @@ fun () ->
  Hashtbl.replace t.counters name
    (by + Option.value ~default:0 (Hashtbl.find_opt t.counters name))

let gauge t name v = locked t @@ fun () -> Hashtbl.replace t.gauges name v

let sample t name v =
  locked t @@ fun () ->
  let s =
    match Hashtbl.find_opt t.series name with
    | Some s -> s
    | None ->
      let s =
        {
          count = 0;
          sum = 0.;
          min_v = infinity;
          max_v = neg_infinity;
          samples = Array.make max_samples 0.;
        }
      in
      Hashtbl.add t.series name s;
      s
  in
  if s.count < max_samples then s.samples.(s.count) <- v;
  s.count <- s.count + 1;
  s.sum <- s.sum +. v;
  if v < s.min_v then s.min_v <- v;
  if v > s.max_v then s.max_v <- v

let uptime_s t = Unix.gettimeofday () -. t.started_at

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (Float.of_int (n - 1) *. q +. 0.5) in
    sorted.(max 0 (min (n - 1) idx))

let sorted_assoc tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Same member shape as Export.telemetry_to_json minus spans/phases
   (span data belongs to the drain-time Perfetto export, not a live
   counter snapshot). *)
let to_json t =
  locked t @@ fun () ->
  let hist_obj (name, (s : series)) =
    let kept = Array.sub s.samples 0 (min s.count max_samples) in
    Array.sort compare kept;
    Json.Obj
      [
        ("name", Json.String name);
        ("count", Json.Int s.count);
        ("sum", Json.Float s.sum);
        ("min", Json.Float (if s.count = 0 then 0. else s.min_v));
        ("max", Json.Float (if s.count = 0 then 0. else s.max_v));
        ( "mean",
          Json.Float (if s.count = 0 then 0. else s.sum /. float_of_int s.count)
        );
        ("p50", Json.Float (percentile kept 0.5));
        ("p95", Json.Float (percentile kept 0.95));
      ]
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (n, v) -> (n, Json.Int v)) (sorted_assoc t.counters))
      );
      ( "gauges",
        Json.Obj
          (List.map (fun (n, v) -> (n, Json.Float v)) (sorted_assoc t.gauges))
      );
      ("histograms", Json.List (List.map hist_obj (sorted_assoc t.series)));
    ]

let counter t name =
  locked t @@ fun () ->
  Option.value ~default:0 (Hashtbl.find_opt t.counters name)
