(* The autobraid-serve/v1 wire protocol: newline-delimited JSON objects in
   both directions over a Unix-domain stream socket.

   Decoding is total: any byte sequence maps to [Ok request] or to a
   structured [Engine_core.error] (kind "parse" for invalid JSON,
   "bad-request" for a well-formed object of the wrong shape) — the
   daemon's per-line loop must never be killable by input. Encoding is
   deterministic (Qec_report.Json printing), so responses are
   byte-reproducible and the serve/protocol fuzz property can assert
   stability. *)

module Json = Qec_report.Json
module Spec = Qec_engine.Spec
module Core = Qec_engine.Engine_core

let version = "autobraid-serve/v1"

type request =
  | Compile of { id : string option; op : string; spec : Spec.t }
  | Batch of { id : string option; specs : Spec.t list }
  | Ping of { id : string option }
  | Stats of { id : string option }
  | Shutdown of { id : string option }

let request_id = function
  | Compile { id; _ }
  | Batch { id; _ }
  | Ping { id; _ }
  | Stats { id; _ }
  | Shutdown { id; _ } ->
    id

(* ---------------- request decode ---------------- *)

let err kind fmt =
  Printf.ksprintf
    (fun message -> Error { Core.kind; message })
    fmt

let decode line =
  match Json.of_string line with
  | Error msg -> err "parse" "request is not valid JSON: %s" msg
  | Ok (Json.Obj fields as obj) -> (
    let id =
      match Json.member "id" obj with
      | Some (Json.String s) -> Ok (Some s)
      | None | Some Json.Null -> Ok None
      | Some _ -> err "bad-request" "request \"id\" must be a string"
    in
    match id with
    | Error _ as e -> e
    | Ok id -> (
      let known_keys op = [ "op"; "id" ] @ op in
      let reject_unknown allowed =
        match
          List.find_opt (fun (k, _) -> not (List.mem k allowed)) fields
        with
        | Some (k, _) -> err "bad-request" "unknown request field %S" k
        | None -> Ok ()
      in
      match Json.member "op" obj with
      | Some (Json.String (("compile" | "schedule") as op)) -> (
        match reject_unknown (known_keys [ "spec" ]) with
        | Error _ as e -> e
        | Ok () -> (
          match Json.member "spec" obj with
          | None -> err "bad-request" "%s request is missing \"spec\"" op
          | Some spec_json -> (
            match Spec.of_json spec_json with
            | Ok spec -> Ok (Compile { id; op; spec })
            | Error msg -> err "bad-request" "bad spec: %s" msg)))
      | Some (Json.String "batch") -> (
        match reject_unknown (known_keys [ "jobs" ]) with
        | Error _ as e -> e
        | Ok () -> (
          match Json.member "jobs" obj with
          | None -> err "bad-request" "batch request is missing \"jobs\""
          | Some jobs -> (
            match Spec.manifest_of_json jobs with
            | Ok [] -> err "bad-request" "batch request has no jobs"
            | Ok specs -> Ok (Batch { id; specs })
            | Error msg -> err "bad-request" "bad jobs: %s" msg)))
      | Some (Json.String (("ping" | "stats" | "shutdown") as op)) -> (
        match reject_unknown (known_keys []) with
        | Error _ as e -> e
        | Ok () ->
          Ok
            (match op with
            | "ping" -> Ping { id }
            | "stats" -> Stats { id }
            | _ -> Shutdown { id }))
      | Some (Json.String op) ->
        err "bad-request"
          "unknown op %S (expected compile|schedule|batch|ping|stats|shutdown)"
          op
      | Some _ -> err "bad-request" "request \"op\" must be a string"
      | None -> err "bad-request" "request is missing \"op\""))
  | Ok _ -> err "bad-request" "request must be a JSON object"

(* ---------------- request encode (client side) ---------------- *)

let with_id id fields =
  (match id with Some id -> [ ("id", Json.String id) ] | None -> []) @ fields

let compile_request ?id ?(op = "compile") spec =
  Json.Obj
    (("op", Json.String op) :: with_id id [ ("spec", Spec.to_json spec) ])

let batch_request ?id specs =
  Json.Obj
    (("op", Json.String "batch")
    :: with_id id [ ("jobs", Json.List (List.map Spec.to_json specs)) ])

let control_request ?id op = Json.Obj (("op", Json.String op) :: with_id id [])
let ping_request ?id () = control_request ?id "ping"
let stats_request ?id () = control_request ?id "stats"
let shutdown_request ?id () = control_request ?id "shutdown"

let encode json = Json.to_string json

(* ---------------- response encode (server side) ---------------- *)

let request_field = function
  | Some id -> [ ("request", Json.String id) ]
  | None -> []

let hello = Json.Obj [ ("type", Json.String "hello"); ("version", Json.String version) ]

let result_record ~request job =
  Json.Obj
    (("type", Json.String "result")
    :: request_field request
    @ [ ("job", Core.job_to_json job) ])

let error_record ~request (e : Core.error) =
  Json.Obj
    (("type", Json.String "error")
    :: request_field request
    @ [
        ( "error",
          Json.Obj
            [
              ("kind", Json.String e.Core.kind);
              ("message", Json.String e.Core.message);
            ] );
      ])

let pong_record ~request =
  Json.Obj
    (("type", Json.String "pong")
    :: request_field request
    @ [ ("version", Json.String version) ])

let stats_record ~request stats =
  Json.Obj
    (("type", Json.String "stats") :: request_field request @ [ ("stats", stats) ])

let done_record ~request ~ok ~failed =
  Json.Obj
    (("type", Json.String "done")
    :: request_field request
    @ [ ("ok", Json.Int ok); ("failed", Json.Int failed) ])

let shutdown_record ~request =
  Json.Obj (("type", Json.String "shutdown") :: request_field request)

(* ---------------- response decode (client side) ---------------- *)

type response =
  | Hello of string
  | Result of { request : string option; job : Json.t }
  | Error_resp of { request : string option; kind : string; message : string }
  | Pong of { request : string option; version : string }
  | Stats_resp of { request : string option; stats : Json.t }
  | Done of { request : string option; ok : int; failed : int }
  | Shutdown_ack of { request : string option }

let response_of_line line =
  match Json.of_string line with
  | Error msg -> Error ("response is not valid JSON: " ^ msg)
  | Ok (Json.Obj _ as obj) -> (
    let request =
      match Json.member "request" obj with
      | Some (Json.String s) -> Some s
      | _ -> None
    in
    match Json.member "type" obj with
    | Some (Json.String "hello") -> (
      match Json.member "version" obj with
      | Some (Json.String v) -> Ok (Hello v)
      | _ -> Error "hello response has no version")
    | Some (Json.String "result") -> (
      match Json.member "job" obj with
      | Some job -> Ok (Result { request; job })
      | None -> Error "result response has no job")
    | Some (Json.String "error") -> (
      match Json.member "error" obj with
      | Some (Json.Obj _ as e) -> (
        match (Json.member "kind" e, Json.member "message" e) with
        | Some (Json.String kind), Some (Json.String message) ->
          Ok (Error_resp { request; kind; message })
        | _ -> Error "error response has a malformed error object")
      | _ -> Error "error response has no error object")
    | Some (Json.String "pong") -> (
      match Json.member "version" obj with
      | Some (Json.String v) -> Ok (Pong { request; version = v })
      | _ -> Error "pong response has no version")
    | Some (Json.String "stats") -> (
      match Json.member "stats" obj with
      | Some stats -> Ok (Stats_resp { request; stats })
      | None -> Error "stats response has no stats")
    | Some (Json.String "done") -> (
      match (Json.member "ok" obj, Json.member "failed" obj) with
      | Some (Json.Int ok), Some (Json.Int failed) ->
        Ok (Done { request; ok; failed })
      | _ -> Error "done response has malformed counts")
    | Some (Json.String "shutdown") -> Ok (Shutdown_ack { request })
    | Some (Json.String t) -> Error (Printf.sprintf "unknown response type %S" t)
    | _ -> Error "response has no type"
  )
  | Ok _ -> Error "response must be a JSON object"
