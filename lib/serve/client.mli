(** Blocking client for the [autobraid-serve/v1] protocol.

    Synchronous by design — one request, then read until satisfied;
    concurrency tests open several clients. Backs
    [autobraid serve --connect], [test_serve] and the serve bench. *)

module Json := Qec_report.Json

type t

val connect : string -> (t, string) result
(** Connect to a socket path and validate the server's hello banner
    (protocol-version mismatch is an error). *)

val connect_retry : ?attempts:int -> ?delay_s:float -> string -> (t, string) result
(** {!connect}, retried (default 100 × 50 ms) while the daemon is still
    starting up. *)

val close : t -> unit

val send : t -> Json.t -> (unit, string) result
(** Write one raw request line (already-encoded JSON). Use with
    {!read_response} for pipelined / out-of-order traffic. *)

val read_response : t -> (Protocol.response, string) result
(** Read and decode the next response line. *)

val rpc : t -> Json.t -> (Protocol.response, string) result
(** {!send} then one {!read_response}. *)

val ping : ?id:string -> t -> (Protocol.response, string) result
val stats : ?id:string -> t -> (Protocol.response, string) result
val shutdown : ?id:string -> t -> (Protocol.response, string) result

val compile :
  ?id:string -> ?op:string -> t -> Qec_engine.Spec.t ->
  (Protocol.response, string) result

val batch :
  ?id:string -> t -> Qec_engine.Spec.t list ->
  (Protocol.response list * int * int, string) result
(** Streamed per-job records (arrival order) plus the final done
    record's [(ok, failed)] counts. *)

val job_line : Json.t -> string
(** Print a result record's embedded job object exactly as the one-shot
    engine JSONL writer would — byte-identical to [autobraid batch]
    output for the same spec. *)
