(* Minimal blocking client for the autobraid-serve protocol: connect,
   check the hello banner, then line-oriented request/response. Used by
   `autobraid serve --connect`, the serve tests and the serve bench —
   deliberately synchronous (one read at a time); concurrency comes from
   opening several clients. *)

module Json = Qec_report.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let read_response t =
  match input_line t.ic with
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error msg -> Error ("read failed: " ^ msg)
  | line -> Protocol.response_of_line line

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))
  | () -> (
    let t =
      { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    in
    match read_response t with
    | Ok (Protocol.Hello v) when String.equal v Protocol.version -> Ok t
    | Ok (Protocol.Hello v) ->
      close t;
      Error
        (Printf.sprintf "server speaks %s but this client speaks %s" v
           Protocol.version)
    | Ok _ ->
      close t;
      Error "server did not open with a hello line"
    | Error msg ->
      close t;
      Error msg)

(* The daemon may not have bound its socket yet when a test or bench that
   just spawned it connects; retry briefly instead of making every caller
   write its own sleep loop. *)
let rec connect_retry ?(attempts = 100) ?(delay_s = 0.05) path =
  match connect path with
  | Ok _ as ok -> ok
  | Error _ as e when attempts <= 1 -> e
  | Error _ ->
    Unix.sleepf delay_s;
    connect_retry ~attempts:(attempts - 1) ~delay_s path

let send t json =
  try
    output_string t.oc (Protocol.encode json);
    output_char t.oc '\n';
    flush t.oc;
    Ok ()
  with Sys_error msg -> Error ("write failed: " ^ msg)

let rpc t json =
  match send t json with Error _ as e -> e | Ok () -> read_response t

let ping ?id t = rpc t (Protocol.ping_request ?id ())
let stats ?id t = rpc t (Protocol.stats_request ?id ())
let shutdown ?id t = rpc t (Protocol.shutdown_request ?id ())

let compile ?id ?op t spec = rpc t (Protocol.compile_request ?id ?op spec)

(* One batch request; collects the streamed per-job result/error records
   (in arrival order) until the final done record. *)
let batch ?id t specs =
  match send t (Protocol.batch_request ?id specs) with
  | Error _ as e -> e
  | Ok () ->
    let rec collect acc =
      match read_response t with
      | Error _ as e -> e
      | Ok (Protocol.Done { ok; failed; _ }) ->
        Ok (List.rev acc, ok, failed)
      | Ok r -> collect (r :: acc)
    in
    collect []

(* Render a result record's embedded job exactly as the one-shot engine
   JSONL writer would: the record carries the job object verbatim, and
   Json.to_string is the inverse of the parse, so this is byte-identical
   to `autobraid batch` output for the same spec. *)
let job_line json = Json.to_string json
