(** Live, thread-safe server metrics.

    {!Qec_telemetry} merges worker-domain records only when the pool
    joins; a daemon's [stats] endpoint needs numbers {e now}. This module
    keeps mutex-guarded counters, gauges and sample series that any
    domain may update or snapshot at any time, and exports them in the
    same [counters]/[gauges]/[histograms] JSON shape as
    {!Qec_report.Export.telemetry_to_json} (the [--metrics] machine
    shape), minus the span-derived members. *)

type t

val create : unit -> t
val count : ?by:int -> t -> string -> unit
val gauge : t -> string -> float -> unit

val sample : t -> string -> float -> unit
(** Record one observation of a latency-style series. Count/sum/min/max
    are exact forever; percentiles are computed over the first 16384
    retained samples. *)

val counter : t -> string -> int
(** Current value, 0 if never incremented. *)

val uptime_s : t -> float
(** Seconds since {!create}. *)

val to_json : t -> Qec_report.Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": [...]}], all
    name-sorted; histogram objects carry
    [name]/[count]/[sum]/[min]/[max]/[mean]/[p50]/[p95] exactly like the
    telemetry export. *)
