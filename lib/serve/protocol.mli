(** The [autobraid-serve/v1] wire protocol.

    Newline-delimited JSON objects in both directions over a Unix-domain
    stream socket. On connect the server sends one {!hello} line; after
    that the client sends request lines and the server answers with one
    or more response lines per request, correlated by the request's
    optional [id] (echoed back as ["request"]). Responses to different
    in-flight requests may interleave — that is the point of the
    correlation ids.

    Requests: [{"op": "compile"|"schedule", "id"?, "spec": {...}}],
    [{"op": "batch", "id"?, "jobs": [...]}], and the bodyless
    [ping] / [stats] / [shutdown]. [schedule] is accepted as an alias of
    [compile] (the CLI's two one-shot entry points are the same engine
    path); the spec and jobs payloads are exactly
    {!Qec_engine.Spec.of_json} / manifest JSON.

    Responses: [result] (carrying one verbatim {!Qec_engine.Engine_core}
    job record — byte-identical to what [autobraid batch] would emit for
    the same spec), [error] (structured [kind]/[message], reusing the
    engine's stable kinds plus the serve-level ["parse"],
    ["bad-request"], ["overloaded"], ["timeout"] and ["shutting-down"]),
    [pong], [stats], [done] (batch completion marker) and [shutdown]
    (drain acknowledgement).

    {!decode} is total: arbitrary bytes produce [Ok] or a structured
    error, never an exception — the daemon loop's crash-safety rests on
    this, and the [serve/protocol] fuzz property enforces it. *)

module Json := Qec_report.Json

val version : string
(** ["autobraid-serve/v1"]. *)

type request =
  | Compile of { id : string option; op : string; spec : Qec_engine.Spec.t }
      (** [op] is ["compile"] or ["schedule"] as received *)
  | Batch of { id : string option; specs : Qec_engine.Spec.t list }
  | Ping of { id : string option }
  | Stats of { id : string option }
  | Shutdown of { id : string option }

val request_id : request -> string option

val decode : string -> (request, Qec_engine.Engine_core.error) result
(** Decode one request line. Total: invalid JSON is [Error] kind
    ["parse"], a structurally wrong request is kind ["bad-request"];
    no input raises. *)

(** {2 Request encoding (client side)} *)

val compile_request : ?id:string -> ?op:string -> Qec_engine.Spec.t -> Json.t
(** [op] defaults to ["compile"]; pass ["schedule"] for the alias. *)

val batch_request : ?id:string -> Qec_engine.Spec.t list -> Json.t
val ping_request : ?id:string -> unit -> Json.t
val stats_request : ?id:string -> unit -> Json.t
val shutdown_request : ?id:string -> unit -> Json.t

val encode : Json.t -> string
(** One compact line (no trailing newline). *)

(** {2 Response encoding (server side)} *)

val hello : Json.t

val result_record : request:string option -> Qec_engine.Engine_core.job -> Json.t
(** The job record is embedded verbatim ({!Qec_engine.Engine_core.job_to_json}
    without timings), so extracting ["job"] and re-printing it reproduces
    the one-shot engine rendering byte for byte. *)

val error_record :
  request:string option -> Qec_engine.Engine_core.error -> Json.t

val pong_record : request:string option -> Json.t
val stats_record : request:string option -> Json.t -> Json.t
val done_record : request:string option -> ok:int -> failed:int -> Json.t
val shutdown_record : request:string option -> Json.t

(** {2 Response decoding (client side)} *)

type response =
  | Hello of string  (** protocol version *)
  | Result of { request : string option; job : Json.t }
  | Error_resp of { request : string option; kind : string; message : string }
  | Pong of { request : string option; version : string }
  | Stats_resp of { request : string option; stats : Json.t }
  | Done of { request : string option; ok : int; failed : int }
  | Shutdown_ack of { request : string option }

val response_of_line : string -> (response, string) result
(** Total, like {!decode}. *)
