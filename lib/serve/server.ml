(* The autobraid-serve daemon.

   Thread/domain layout:

   - The domain that calls [run] owns the listen socket. An accept loop
     runs on a dedicated thread of that domain; each accepted connection
     gets its own reader thread. Reader threads only block on IO, decode
     request lines, answer control requests (ping/stats/shutdown) inline,
     and push compile work through admission control — they never
     schedule circuits themselves.
   - Compile work executes on a Qec_util.Parallel worker pool sized by
     [config.jobs]; worker 0 is the calling domain itself (its reader
     threads stay responsive because systhreads preempt at safe points).
     Workers call straight into the pure Engine_core, so every domain of
     the pool runs the same re-entrant execution path, sharing one
     mutex-guarded Placement_cache.
   - Admission control is a bounded queue: a request that would push the
     pending count past [max_pending] is answered with an "overloaded"
     error record immediately, on the reader thread — the socket never
     silently buffers unbounded work. A per-request [timeout_s] is
     enforced at dequeue: a request that sat in the queue past its
     deadline is answered with a "timeout" error and never starts
     executing (clean cancellation — no mid-flight abort, so no
     half-mutated state).
   - Graceful drain: SIGTERM/SIGINT (when [handle_signals]) or a
     [shutdown] request stop the accept loop and new admissions
     ("shutting-down" errors), let the queue run dry, join the pool,
     flush telemetry, write the optional Perfetto trace, and remove the
     socket file. *)

module Json = Qec_report.Json
module Spec = Qec_engine.Spec
module Core = Qec_engine.Engine_core
module PC = Qec_engine.Placement_cache
module Tel = Qec_telemetry.Telemetry

type config = {
  socket : string;
  jobs : int;
  max_pending : int;
  timeout_s : float option;
  cache_dir : string option;
  trace_out : string option;
  handle_signals : bool;
  log : string -> unit;
}

let default_config ~socket () =
  {
    socket;
    jobs = Qec_util.Parallel.default_jobs ();
    max_pending = 128;
    timeout_s = None;
    cache_dir = None;
    trace_out = None;
    handle_signals = false;
    log = ignore;
  }

(* ---------------- connections ---------------- *)

type conn = {
  fd : Unix.file_descr;
  out : out_channel;
  write_lock : Mutex.t;
  alive : bool Atomic.t;
}

(* One response line, atomically with respect to other writers on this
   connection (several workers may answer interleaved requests). A dead
   peer (EPIPE with SIGPIPE ignored surfaces as Sys_error) just marks the
   connection dead; the work that produced the response is already done
   and the reader thread will observe EOF. *)
let send conn json =
  if Atomic.get conn.alive then begin
    Mutex.lock conn.write_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock conn.write_lock)
      (fun () ->
        try
          output_string conn.out (Protocol.encode json);
          output_char conn.out '\n';
          flush conn.out
        with Sys_error _ -> Atomic.set conn.alive false)
  end

(* ---------------- work items ---------------- *)

type batch_ctx = {
  b_request : string option;
  b_conn : conn;
  remaining : int Atomic.t;
  b_ok : int Atomic.t;
  b_failed : int Atomic.t;
}

type work = {
  w_conn : conn;
  w_request : string option;
  w_spec : Spec.t;
  w_index : int;
  enqueued_at : float;
  batch : batch_ctx option;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  queue : work Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable pending : int;
  draining : bool Atomic.t;
  metrics : Metrics.t;
  cache : PC.t;
}

(* ---------------- admission control ---------------- *)

let admit t conn ~request specs ~batch =
  let n = List.length specs in
  Mutex.lock t.lock;
  let verdict =
    if Atomic.get t.draining then
      Error { Core.kind = "shutting-down"; message = "server is draining" }
    else if t.pending + n > t.config.max_pending then
      Error
        {
          Core.kind = "overloaded";
          message =
            Printf.sprintf
              "queue full: %d pending + %d submitted exceeds --max-pending %d"
              t.pending n t.config.max_pending;
        }
    else begin
      let now = Unix.gettimeofday () in
      let ctx =
        if batch then
          Some
            {
              b_request = request;
              b_conn = conn;
              remaining = Atomic.make n;
              b_ok = Atomic.make 0;
              b_failed = Atomic.make 0;
            }
        else None
      in
      List.iteri
        (fun i spec ->
          Queue.push
            {
              w_conn = conn;
              w_request = request;
              w_spec = spec;
              w_index = i;
              enqueued_at = now;
              batch = ctx;
            }
            t.queue)
        specs;
      t.pending <- t.pending + n;
      Metrics.gauge t.metrics "serve.queue_depth" (float_of_int t.pending);
      for _ = 1 to n do
        Condition.signal t.nonempty
      done;
      Ok ()
    end
  in
  Mutex.unlock t.lock;
  match verdict with
  | Ok () -> ()
  | Error e ->
    Metrics.count t.metrics ("serve.rejected." ^ e.Core.kind);
    send conn (Protocol.error_record ~request e)

(* ---------------- workers ---------------- *)

let finish_batch t (w : work) ~ok =
  ignore t;
  match w.batch with
  | None -> ()
  | Some b ->
    (if ok then Atomic.incr b.b_ok else Atomic.incr b.b_failed);
    if Atomic.fetch_and_add b.remaining (-1) = 1 then
      send b.b_conn
        (Protocol.done_record ~request:b.b_request ~ok:(Atomic.get b.b_ok)
           ~failed:(Atomic.get b.b_failed))

let handle t (w : work) =
  let t0 = Unix.gettimeofday () in
  let queue_wait = t0 -. w.enqueued_at in
  let timed_out =
    match t.config.timeout_s with Some s -> queue_wait > s | None -> false
  in
  if timed_out then begin
    Metrics.count t.metrics "serve.rejected.timeout";
    send w.w_conn
      (Protocol.error_record ~request:w.w_request
         {
           Core.kind = "timeout";
           message =
             Printf.sprintf
               "request waited %.3f s in queue (timeout %g s); cancelled \
                before execution"
               queue_wait
               (Option.get t.config.timeout_s);
         });
    finish_batch t w ~ok:false
  end
  else begin
    Metrics.sample t.metrics "serve.queue_wait_s" queue_wait;
    let outcome, cache_status =
      Tel.with_span "serve.request" @@ fun () ->
      Core.exec_safe (Some t.cache) w.w_spec
    in
    let elapsed_s = Unix.gettimeofday () -. t0 in
    Metrics.sample t.metrics "serve.request_s" elapsed_s;
    Metrics.count t.metrics
      (match cache_status with
      | Core.Memory_hit -> "serve.cache.memory_hits"
      | Core.Disk_hit -> "serve.cache.disk_hits"
      | Core.Miss -> "serve.cache.misses"
      | Core.Uncached -> "serve.cache.uncached");
    let ok = Result.is_ok outcome in
    Metrics.count t.metrics
      (if ok then "serve.results_ok" else "serve.results_failed");
    let job =
      {
        Core.index = w.w_index;
        spec = w.w_spec;
        elapsed_s;
        cache = cache_status;
        outcome;
      }
    in
    send w.w_conn (Protocol.result_record ~request:w.w_request job);
    finish_batch t w ~ok
  end

let worker t _id =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not (Atomic.get t.draining) do
      Condition.wait t.nonempty t.lock
    done;
    (* Draining still serves everything already admitted: the loop only
       exits on an empty queue. *)
    match Queue.take_opt t.queue with
    | None -> Mutex.unlock t.lock
    | Some w ->
      t.pending <- t.pending - 1;
      Metrics.gauge t.metrics "serve.queue_depth" (float_of_int t.pending);
      Mutex.unlock t.lock;
      handle t w;
      loop ()
  in
  loop ()

(* ---------------- control requests ---------------- *)

let stats_json t =
  let k = PC.counters t.cache in
  let queue_depth =
    Mutex.lock t.lock;
    let d = t.pending in
    Mutex.unlock t.lock;
    d
  in
  Json.Obj
    [
      ("schema", Json.String "autobraid-serve-stats/v1");
      ( "server",
        Json.Obj
          [
            ("version", Json.String Protocol.version);
            ("uptime_s", Json.Float (Metrics.uptime_s t.metrics));
            ("jobs", Json.Int t.config.jobs);
            ("max_pending", Json.Int t.config.max_pending);
            ("queue_depth", Json.Int queue_depth);
            ("draining", Json.Bool (Atomic.get t.draining));
          ] );
      ( "cache",
        Json.Obj
          [
            ("memory_hits", Json.Int k.PC.memory_hits);
            ("disk_hits", Json.Int k.PC.disk_hits);
            ("misses", Json.Int k.PC.misses);
          ] );
      ("telemetry", Metrics.to_json t.metrics);
    ]

let drain t =
  if not (Atomic.exchange t.draining true) then begin
    t.config.log "serve: draining";
    (* Wake every worker blocked on the empty queue so it can observe the
       flag, and break the accept loop out of its blocking accept. *)
    Mutex.lock t.lock;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (* Belt and braces: a no-op connection unblocks accept on platforms
       where shutdown on a listening socket does not. *)
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> Unix.connect fd (Unix.ADDR_UNIX t.config.socket))
    with Unix.Unix_error _ -> ()
  end

let op_name = function
  | Protocol.Compile { op; _ } -> op
  | Protocol.Batch _ -> "batch"
  | Protocol.Ping _ -> "ping"
  | Protocol.Stats _ -> "stats"
  | Protocol.Shutdown _ -> "shutdown"

(* ---------------- per-connection reader ---------------- *)

let reader t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  send conn Protocol.hello;
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
      (if String.trim line <> "" then
         match Protocol.decode line with
         | Error e ->
           (* A malformed line is answered, never disconnected on: a
              client bug must not tear down its other in-flight work. *)
           Metrics.count t.metrics ("serve.rejected." ^ e.Core.kind);
           send conn (Protocol.error_record ~request:None e)
         | Ok req -> (
           Metrics.count t.metrics ("serve.requests." ^ op_name req);
           match req with
           | Protocol.Ping { id } -> send conn (Protocol.pong_record ~request:id)
           | Protocol.Stats { id } ->
             send conn (Protocol.stats_record ~request:id (stats_json t))
           | Protocol.Shutdown { id } ->
             send conn (Protocol.shutdown_record ~request:id);
             drain t
           | Protocol.Compile { id; op = _; spec } ->
             admit t conn ~request:id [ spec ] ~batch:false
           | Protocol.Batch { id; specs } ->
             admit t conn ~request:id specs ~batch:true));
      if Atomic.get conn.alive then loop ()
  in
  loop ();
  Atomic.set conn.alive false;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* ---------------- accept loop ---------------- *)

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.draining) then
      match Unix.accept t.listen_fd with
      | fd, _ ->
        if Atomic.get t.draining then (
          try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Metrics.count t.metrics "serve.connections";
          let conn =
            {
              fd;
              out = Unix.out_channel_of_descr fd;
              write_lock = Mutex.create ();
              alive = Atomic.make true;
            }
          in
          ignore (Thread.create (fun () -> reader t conn) ());
          loop ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ ->
        (* listen socket shut down (drain) or unusable: stop accepting *)
        ()
  in
  loop ()

(* ---------------- lifecycle ---------------- *)

let run config =
  Qec_engine.Engine.ensure_backends ();
  (* A client that disconnects mid-response must cost us an EPIPE error,
     not the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists config.socket then (
    try Unix.unlink config.socket with Unix.Unix_error _ | Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket);
  Unix.listen listen_fd 64;
  let t =
    {
      config;
      listen_fd;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      pending = 0;
      draining = Atomic.make false;
      metrics = Metrics.create ();
      cache = PC.create ?dir:config.cache_dir ();
    }
  in
  if config.handle_signals then begin
    (* A Sys.Signal_handle would never run here: every daemon thread
       parks in a C call (accept, read, pthread_cond_wait) and the
       runtime only executes OCaml signal handlers at OCaml safe points.
       Instead, block the signals everywhere (the mask is inherited by
       the accept/reader threads and the worker domains spawned below)
       and sigwait on a dedicated watcher thread, which can call [drain]
       directly. *)
    let signals = [ Sys.sigterm; Sys.sigint ] in
    ignore (Thread.sigmask Unix.SIG_BLOCK signals);
    ignore
      (Thread.create
         (fun () ->
           let signum = Thread.wait_signal signals in
           config.log
             (Printf.sprintf "serve: received signal %d, draining" signum);
           drain t)
         ())
  end;
  let accept_thread = Thread.create accept_loop t in
  config.log
    (Printf.sprintf
       "serve: listening on %s (%d worker%s, max-pending %d%s)" config.socket
       config.jobs
       (if config.jobs = 1 then "" else "s")
       config.max_pending
       (match config.timeout_s with
       | Some s -> Printf.sprintf ", timeout %g s" s
       | None -> ""));
  let run_pool () =
    Qec_util.Parallel.run_workers ~jobs:(max 1 config.jobs) (worker t)
  in
  (match config.trace_out with
  | None -> run_pool ()
  | Some path -> (
    (* Worker spans buffer per domain and merge at join, so the Perfetto
       trace written on drain carries one lane per pool worker. *)
    let collector = Qec_telemetry.Collector.create () in
    Tel.with_sink (Qec_telemetry.Collector.sink collector) run_pool;
    match Qec_obs.Perfetto.write path collector with
    | () -> config.log (Printf.sprintf "serve: wrote %s" path)
    | exception Sys_error msg -> config.log ("serve: cannot write trace: " ^ msg)));
  Thread.join accept_thread;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket with Unix.Unix_error _ | Sys_error _ -> ());
  config.log
    (Printf.sprintf "serve: drained (%d ok, %d failed, %d connections)"
       (Metrics.counter t.metrics "serve.results_ok")
       (Metrics.counter t.metrics "serve.results_failed")
       (Metrics.counter t.metrics "serve.connections"))
