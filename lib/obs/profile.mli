(** Repeated-run profiler behind `autobraid profile`: run a list of specs
    [repeat] times through {!Qec_engine.Engine.run_batch} under a
    collector, and reduce per-phase wall/self time to min / median / p95
    across runs. *)

type stats = { min_s : float; median_s : float; p95_s : float }

type phase_row = {
  phase : string;
  calls : int;  (** max calls observed in any single run *)
  total : stats;  (** per-run summed wall time of this phase *)
  self : stats;  (** per-run summed self time (child spans excluded) *)
}

type t = {
  runs : int;
  jobs : int;
  specs : int;
  jobs_ok : int;  (** from the last run *)
  jobs_failed : int;  (** from the last run *)
  wall : stats;  (** end-to-end wall time per run *)
  phases : phase_row list;  (** sorted by phase name *)
}

val run :
  ?jobs:int -> repeat:int -> Qec_engine.Spec.t list ->
  t * Qec_telemetry.Collector.t
(** Run the specs [max 1 repeat] times on a [jobs]-domain pool (default
    {!Qec_util.Parallel.default_jobs}). Also returns the last run's
    collector, for {!Perfetto} export of a representative trace. Job
    failures are captured per record by the engine, never raised. *)

val to_json : t -> Qec_report.Json.t
(** Stable-schema report (["schema": "autobraid-profile/v1"]; phases
    sorted by name, fixed key order) — only the measured times vary
    between invocations. *)

val print : t -> unit
(** Summary line + per-phase table sorted by descending median self. *)
