(** Chrome trace-event (Perfetto) export of a telemetry collector.

    Spans become ["ph":"X"] complete duration events with [tid] set to the
    OCaml domain id the span recorded on — each worker domain gets its own
    lane, labelled by a ["thread_name"] metadata event ("main" for the
    installing domain, "worker N" otherwise). Counters and gauges become
    ["ph":"C"] counter tracks, and sample histograms a multi-series
    counter (mean / p50 / p95). Timestamps are microseconds since the sink
    was installed. Load the file at https://ui.perfetto.dev or
    chrome://tracing; see docs/observability.md. *)

val to_json : Qec_telemetry.Collector.t -> Qec_report.Json.t
(** The [{"traceEvents": [...], "displayTimeUnit": "ms"}] wrapper object. *)

val to_string : Qec_telemetry.Collector.t -> string
(** {!to_json} rendered compactly. *)

val write : string -> Qec_telemetry.Collector.t -> unit
(** Write {!to_string} (newline-terminated) to a file. *)
