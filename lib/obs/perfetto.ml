module Tel = Qec_telemetry.Telemetry
module Col = Qec_telemetry.Collector
module Json = Qec_report.Json

let pid = 1
let us s = s *. 1e6

let thread_meta (domain, worker) =
  let name = if worker = 0 then "main" else Printf.sprintf "worker %d" worker in
  Json.Obj
    [
      ("ph", Json.String "M");
      ("name", Json.String "thread_name");
      ("pid", Json.Int pid);
      ("tid", Json.Int domain);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let span_event (s : Tel.span) =
  Json.Obj
    [
      ("ph", Json.String "X");
      ("name", Json.String s.span_name);
      ("cat", Json.String "autobraid");
      ("pid", Json.Int pid);
      ("tid", Json.Int s.domain);
      ("ts", Json.Float (us s.start_s));
      ("dur", Json.Float (us s.total_s));
      ( "args",
        Json.Obj
          [
            ("depth", Json.Int s.depth);
            ("worker", Json.Int s.worker);
            ("self_us", Json.Float (us s.self_s));
          ] );
    ]

let counter_event ~ts name args =
  Json.Obj
    [
      ("ph", Json.String "C");
      ("name", Json.String name);
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("ts", Json.Float ts);
      ("args", Json.Obj args);
    ]

let to_json c =
  let spans = Col.spans c in
  (* Aggregates flush once at the end of the session; stamp their counter
     samples at the latest span end so the tracks extend across the run. *)
  let t_end =
    List.fold_left
      (fun acc (s : Tel.span) -> Float.max acc (us (s.start_s +. s.total_s)))
      0. spans
  in
  let events =
    List.map thread_meta (Col.lanes c)
    @ List.map span_event spans
    @ List.map
        (fun (name, v) ->
          counter_event ~ts:t_end name [ ("value", Json.Int v) ])
        (Col.counters c)
    @ List.map
        (fun (name, v) ->
          counter_event ~ts:t_end name [ ("value", Json.Float v) ])
        (Col.gauges c)
    @ List.map
        (fun (h : Tel.histogram) ->
          counter_event ~ts:t_end h.hist_name
            [
              ("mean", Json.Float h.mean);
              ("p50", Json.Float h.p50);
              ("p95", Json.Float h.p95);
            ])
        (Col.histograms c)
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string c = Json.to_string (to_json c)

let write path c =
  let oc = open_out path in
  output_string oc (to_string c);
  output_char oc '\n';
  close_out oc
