(** Bench drift gating: compare a freshly measured BENCH_*.json tree
    against a committed baseline and fail on regressions.

    The two JSON trees are walked in parallel; numeric leaves are gated by
    key name. {e Cycle} metrics (deterministic compiler outputs:
    [total_cycles], [rounds], [comm_rounds], [braid_rounds],
    [swap_layers], [swaps_inserted], [critical_path_cycles],
    [placements_computed], and the cycle ratios [speedup] /
    [lookahead_speedup]) are checked
    against [tolerance]. {e Wall} metrics (host timings: keys ending in
    [_s], plus the wall-derived [speedup_memory] / [speedup_disk] /
    [checks_per_s]) are checked against the looser [wall_tolerance].
    Other leaves — descriptors, utilization ratios, backend stats — are
    informational and skipped. A gated baseline metric missing from the
    current tree is an error, not a silent pass. *)

type direction = Lower_better | Higher_better
type band = Cycle | Wall

val classify : string -> (direction * band) option
(** How a metric key is gated, or [None] for ungated keys. *)

type finding = {
  path : string;  (** dotted path, e.g. ["circuits[0].braid.total_cycles"] *)
  key : string;
  baseline : float;
  current : float;
  ratio : float;  (** current / baseline; [infinity] when baseline is 0 *)
  band : band;
}

type outcome = {
  checked : int;  (** gated metrics compared *)
  regressions : finding list;
  improvements : finding list;  (** beyond tolerance in the good direction *)
  missing : string list;  (** gated baseline paths absent from current *)
}

val check :
  tolerance:float ->
  wall_tolerance:float ->
  baseline:Qec_report.Json.t ->
  current:Qec_report.Json.t ->
  outcome
(** A metric regresses when it is worse than [baseline * (1 +/- tol)] in
    its gated direction (with a tiny epsilon so exact equality at the
    boundary never trips). *)

val pp_finding : finding -> string
val passed : outcome -> bool
(** No regressions and nothing missing. *)
