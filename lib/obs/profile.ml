module Tel = Qec_telemetry.Telemetry
module Col = Qec_telemetry.Collector
module Stats = Qec_util.Stats
module TP = Qec_util.Tableprint
module Json = Qec_report.Json

type stats = { min_s : float; median_s : float; p95_s : float }

type phase_row = {
  phase : string;
  calls : int;
  total : stats;
  self : stats;
}

type t = {
  runs : int;
  jobs : int;
  specs : int;
  jobs_ok : int;
  jobs_failed : int;
  wall : stats;
  phases : phase_row list;
}

let stats_of = function
  | [] -> { min_s = 0.; median_s = 0.; p95_s = 0. }
  | xs ->
    let min_s, _ = Stats.min_max xs in
    {
      min_s;
      median_s = Stats.percentile 50. xs;
      p95_s = Stats.percentile 95. xs;
    }

let run ?jobs ~repeat specs =
  let repeat = max 1 repeat in
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Qec_util.Parallel.default_jobs ()
  in
  let measured =
    List.init repeat (fun _ ->
        let c = Col.create () in
        let t0 = Unix.gettimeofday () in
        ignore
          (Tel.with_sink (Col.sink c) (fun () ->
               Qec_engine.Engine.run_batch ~jobs specs));
        (Unix.gettimeofday () -. t0, c))
  in
  let walls = List.map fst measured in
  let collectors = List.map snd measured in
  let per_run = List.map Col.phases collectors in
  (* Union of phase names across runs, each with per-run total/self series
     (a phase absent from a run simply contributes no sample). *)
  let names =
    List.concat_map (List.map (fun p -> p.Col.phase_name)) per_run
    |> List.sort_uniq compare
  in
  let phases =
    List.map
      (fun name ->
        let hits =
          List.filter_map
            (fun ps -> List.find_opt (fun p -> p.Col.phase_name = name) ps)
            per_run
        in
        {
          phase = name;
          calls =
            List.fold_left (fun acc p -> max acc p.Col.calls) 0 hits;
          total = stats_of (List.map (fun p -> p.Col.total_s) hits);
          self = stats_of (List.map (fun p -> p.Col.self_s) hits);
        })
      names
  in
  let last = List.nth collectors (repeat - 1) in
  ( {
      runs = repeat;
      jobs;
      specs = List.length specs;
      jobs_ok = Col.counter last "engine.jobs_ok";
      jobs_failed = Col.counter last "engine.jobs_failed";
      wall = stats_of walls;
      phases;
    },
    last )

let stats_json s =
  Json.Obj
    [
      ("min_s", Json.Float s.min_s);
      ("median_s", Json.Float s.median_s);
      ("p95_s", Json.Float s.p95_s);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "autobraid-profile/v1");
      ("runs", Json.Int t.runs);
      ("jobs", Json.Int t.jobs);
      ("specs", Json.Int t.specs);
      ("jobs_ok", Json.Int t.jobs_ok);
      ("jobs_failed", Json.Int t.jobs_failed);
      ("wall_s", stats_json t.wall);
      ( "phases",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("name", Json.String p.phase);
                   ("calls", Json.Int p.calls);
                   ("total_s", stats_json p.total);
                   ("self_s", stats_json p.self);
                 ])
             t.phases) );
    ]

let print t =
  Printf.printf "%d run%s x %d spec%s on %d worker%s: wall %.4f s median \
                 (min %.4f, p95 %.4f); %d ok, %d failed\n\n"
    t.runs
    (if t.runs = 1 then "" else "s")
    t.specs
    (if t.specs = 1 then "" else "s")
    t.jobs
    (if t.jobs = 1 then "" else "s")
    t.wall.median_s t.wall.min_s t.wall.p95_s t.jobs_ok t.jobs_failed;
  let tbl =
    TP.create
      ~headers:
        [
          ("phase", TP.Left);
          ("calls", TP.Right);
          ("total med (s)", TP.Right);
          ("total p95 (s)", TP.Right);
          ("self med (s)", TP.Right);
          ("self p95 (s)", TP.Right);
        ]
  in
  let by_self =
    List.sort (fun a b -> compare b.self.median_s a.self.median_s) t.phases
  in
  List.iter
    (fun p ->
      TP.add_row tbl
        [
          p.phase;
          string_of_int p.calls;
          Printf.sprintf "%.4f" p.total.median_s;
          Printf.sprintf "%.4f" p.total.p95_s;
          Printf.sprintf "%.4f" p.self.median_s;
          Printf.sprintf "%.4f" p.self.p95_s;
        ])
    by_self;
  TP.print tbl
