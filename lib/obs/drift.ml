module Json = Qec_report.Json

type direction = Lower_better | Higher_better
type band = Cycle | Wall

(* Which numeric leaves of a BENCH_*.json tree are gated, how, and against
   which tolerance. Cycle metrics are deterministic outputs of the
   compiler (tight tolerance); wall metrics are host timings (loose
   tolerance). Everything else (descriptors like num_qubits, utilization
   ratios, backend_stats detail) is informational and not gated. *)
let classify key =
  match key with
  | "total_cycles" | "rounds" | "comm_rounds" | "braid_rounds"
  | "swap_layers" | "swaps_inserted" | "critical_path_cycles"
  | "placements_computed" ->
    Some (Lower_better, Cycle)
  | "speedup" | "lookahead_speedup" -> Some (Higher_better, Cycle)
  (* Scale section: the paper's Table-2 headline ratio is a pure cycle
     quotient (greedy / braid), deterministic like its inputs. *)
  | "braid_vs_greedy_speedup" -> Some (Higher_better, Cycle)
  (* Verify section: counts of certified schedules / checked invariants /
     killed mutations are exact functions of the bench circuit set and
     Qec_verify's registries, so they gate at cycle tolerance. *)
  | "certificates" | "invariants_checked" | "mutations_applied"
  | "mutations_killed" ->
    Some (Higher_better, Cycle)
  (* Serve section: throughput and the warm-cache payoff are
     better-when-bigger wall metrics; they must be listed before the
     [_s]-suffix fallback would misread requests_per_s as a latency. *)
  | "speedup_memory" | "speedup_disk" | "checks_per_s"
  | "certificates_per_s" | "requests_per_s" | "warm_speedup" ->
    Some (Higher_better, Wall)
  | _ ->
    (* Explicit *_wall_s spellings (scale section's qftN_wall_s keys) and
       any other _s-suffixed leaf are host timings: lower is better, wall
       tolerance. *)
    let n = String.length key in
    if n > 7 && String.sub key (n - 7) 7 = "_wall_s" then
      Some (Lower_better, Wall)
    else if n > 2 && String.sub key (n - 2) 2 = "_s" then
      Some (Lower_better, Wall)
    else None

type finding = {
  path : string;
  key : string;
  baseline : float;
  current : float;
  ratio : float;  (** current / baseline; [infinity] when baseline is 0 *)
  band : band;
}

type outcome = {
  checked : int;
  regressions : finding list;
  improvements : finding list;
  missing : string list;  (** gated baseline paths absent from current *)
}

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | Json.Null | Json.Bool _ | Json.String _ | Json.List _ | Json.Obj _ -> None

let check ~tolerance ~wall_tolerance ~baseline ~current =
  let checked = ref 0 in
  let regressions = ref [] in
  let improvements = ref [] in
  let missing = ref [] in
  let compare_leaf path key dir band b c =
    incr checked;
    let tol = match band with Cycle -> tolerance | Wall -> wall_tolerance in
    let ratio = if b = 0. then (if c = 0. then 1. else infinity) else c /. b in
    let worse, better =
      match dir with
      | Lower_better -> (c > (b *. (1. +. tol)) +. 1e-12, c < b *. (1. -. tol))
      | Higher_better -> (c < b *. (1. -. tol), c > (b *. (1. +. tol)) +. 1e-12)
    in
    let f = { path; key; baseline = b; current = c; ratio; band } in
    if worse then regressions := f :: !regressions
    else if better then improvements := f :: !improvements
  in
  let rec walk path b c =
    match (b, c) with
    | Json.Obj bs, Json.Obj _ ->
      List.iter
        (fun (key, bv) ->
          let sub = if path = "" then key else path ^ "." ^ key in
          match (Json.member key c, number bv, classify key) with
          | None, Some _, Some _ -> missing := sub :: !missing
          | None, _, _ -> if contains_gated bv then missing := sub :: !missing
          | Some cv, Some bn, Some (dir, band) -> (
            match number cv with
            | Some cn -> compare_leaf sub key dir band bn cn
            | None -> missing := sub :: !missing)
          | Some cv, _, _ -> walk sub bv cv)
        bs
    | Json.List bs, Json.List cs ->
      List.iteri
        (fun i bv ->
          let sub = Printf.sprintf "%s[%d]" path i in
          match List.nth_opt cs i with
          | Some cv -> walk sub bv cv
          | None -> if contains_gated bv then missing := sub :: !missing)
        bs
    (* shape mismatch (e.g. an Obj replaced by a scalar): anything gated
       underneath the baseline side just vanished *)
    | _ -> if contains_gated b then missing := path :: !missing
  and contains_gated = function
    | Json.Obj fields ->
      List.exists
        (fun (k, v) ->
          (classify k <> None && number v <> None) || contains_gated v)
        fields
    | Json.List items -> List.exists contains_gated items
    | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.String _ ->
      false
  in
  walk "" baseline current;
  {
    checked = !checked;
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    missing = List.rev !missing;
  }

let pp_finding f =
  Printf.sprintf "%s: %g -> %g (%.3fx, %s tolerance)" f.path f.baseline
    f.current f.ratio
    (match f.band with Cycle -> "cycle" | Wall -> "wall")

let passed o = o.regressions = [] && o.missing = []
