(** Structured instrumentation for the AutoBraid pipeline.

    Counters, gauges, sample histograms and nested monotonic timing spans,
    delivered to a pluggable {!sink}. With no sink installed every probe is
    a single branch on a [ref] — hot paths (the A* router, the scheduler
    round loop) can stay instrumented unconditionally.

    Spans stream to the sink as they close; counters, gauges and sample
    histograms accumulate in the frontend and are emitted (sorted by name,
    so output is deterministic) on {!flush} / {!uninstall}. *)

type span = {
  span_name : string;
  depth : int;  (** nesting depth at open time; 0 = root *)
  start_s : float;  (** seconds since the sink was installed *)
  total_s : float;  (** wall time between open and close *)
  self_s : float;  (** [total_s] minus the time spent in direct child spans *)
}

type histogram = {
  hist_name : string;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  mean : float;
  p50 : float;
  p95 : float;
}

type record =
  | Span of span
  | Counter of { name : string; value : int }
  | Gauge of { name : string; value : float }
  | Histogram of histogram

type sink = { emit : record -> unit; close : unit -> unit }

val null : sink
(** Discards everything. *)

val tee : sink list -> sink
(** Fan a record out to several sinks; [tee \[\]] is {!null}. *)

val enabled : unit -> bool
(** [true] iff a sink is installed and the caller runs on the domain that
    installed it — telemetry state is single-domain, so probes from
    [Qec_util.Parallel] worker domains are silent no-ops rather than data
    races. Use this to skip building expensive probe arguments. *)

val install : ?clock:(unit -> float) -> sink -> unit
(** Install [sink] as the active sink, replacing any previous one without
    flushing it. [clock] (default [Unix.gettimeofday]) must be monotone
    non-decreasing for span math to make sense; tests inject a fake. *)

val uninstall : unit -> unit
(** {!flush} accumulated aggregates, close the sink, disable telemetry.
    No-op when nothing is installed. *)

val with_sink : ?clock:(unit -> float) -> sink -> (unit -> 'a) -> 'a
(** [with_sink sink f] installs [sink] for the duration of [f ()], then
    flushes, closes and restores whatever was installed before — safe to
    nest, exception-safe. *)

val count : ?by:int -> string -> unit
(** Add [by] (default 1) to the named counter. *)

val gauge : string -> float -> unit
(** Set the named gauge (last write wins). *)

val sample : string -> float -> unit
(** Record one observation of the named sample histogram. *)

val span_open : string -> unit
(** Open a nested timing span. Pair with {!span_close}. *)

val span_close : unit -> unit
(** Close the innermost open span and emit its record. Unbalanced closes
    are ignored. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Scoped {!span_open}/{!span_close}; closes on exceptions too. When
    disabled this is just [f ()]. *)

val flush : unit -> unit
(** Emit accumulated counters, gauges and histograms (each sorted by name)
    and reset them. Spans already streamed on close. *)
