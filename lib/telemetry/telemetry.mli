(** Structured instrumentation for the AutoBraid pipeline.

    Counters, gauges, sample histograms and nested monotonic timing spans,
    delivered to a pluggable {!sink}. With no sink installed every probe is
    a single branch on domain-local state — hot paths (the A* router, the
    scheduler round loop) can stay instrumented unconditionally.

    Telemetry is {b domain-aware}: state lives in [Domain.DLS], so probes
    never race. The domain that calls {!install} is the {e root}; its spans
    stream to the sink as they close. Worker domains spawned by
    [Qec_util.Parallel] attach via {!worker_scope} (registered as the
    Parallel probe at link time): their spans and aggregates buffer
    per-domain, tagged [(domain, worker)], and merge into the root's
    collector when the scope ends at join. Counters, gauges and sample
    histograms are emitted (sorted by name, so output is deterministic) on
    {!flush} / {!uninstall}. *)

type span = {
  span_name : string;
  depth : int;  (** nesting depth at open time; 0 = root *)
  start_s : float;  (** seconds since the sink was installed *)
  total_s : float;  (** wall time between open and close *)
  self_s : float;  (** [total_s] minus the time spent in direct child spans *)
  domain : int;  (** OCaml domain id the span was recorded on *)
  worker : int;  (** pool worker id; 0 = the installing (root) domain *)
}

type histogram = {
  hist_name : string;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  mean : float;
  p50 : float;
  p95 : float;
}

type record =
  | Span of span
  | Counter of { name : string; value : int }
  | Gauge of { name : string; value : float }
  | Histogram of histogram

type sink = { emit : record -> unit; close : unit -> unit }

val null : sink
(** Discards everything. *)

val tee : sink list -> sink
(** Fan a record out to several sinks; [tee \[\]] is {!null}. *)

val enabled : unit -> bool
(** [true] iff the calling domain has telemetry state — either it
    installed the sink, or it is a worker inside a {!worker_scope}. Use
    this to skip building expensive probe arguments. *)

val install : ?clock:(unit -> float) -> sink -> unit
(** Install [sink] as the active sink on the calling domain, replacing any
    previous one without flushing it. [clock] (default [Unix.gettimeofday])
    must be monotone non-decreasing for span math to make sense; tests
    inject a fake. The session is published for {!worker_scope} pickup by
    subsequently spawned domains. *)

val uninstall : unit -> unit
(** {!flush} accumulated aggregates, close the sink, disable telemetry.
    Only the installing domain can uninstall; elsewhere (and with nothing
    installed) this is a no-op. *)

val with_sink : ?clock:(unit -> float) -> sink -> (unit -> 'a) -> 'a
(** [with_sink sink f] installs [sink] for the duration of [f ()], then
    flushes, closes and restores whatever was installed before — safe to
    nest, exception-safe. *)

val worker_scope : worker:int -> (unit -> 'a) -> 'a
(** [worker_scope ~worker f] attaches the calling domain to the currently
    installed session (if any) for the duration of [f ()]: probes record
    into domain-local buffers tagged with this domain's id and [worker],
    and everything merges into the session when [f] returns or raises —
    dangling spans are closed first. On a domain that already has state
    (the root, or a nested call) and when no sink is installed this is
    just [f ()]. [Qec_util.Parallel] runs every spawned worker inside this
    scope via its probe. *)

val count : ?by:int -> string -> unit
(** Add [by] (default 1) to the named counter. Worker counters are summed
    into the root's at merge. *)

val gauge : string -> float -> unit
(** Set the named gauge (last write wins within a domain; across domains
    the root's value wins, then the lowest worker id — deterministic
    regardless of worker scheduling). *)

val sample : string -> float -> unit
(** Record one observation of the named sample histogram. Worker samples
    append to the root's series; histogram statistics are order-
    insensitive, so merged results don't depend on scheduling. *)

val span_open : string -> unit
(** Open a nested timing span. Pair with {!span_close}. *)

val span_close : unit -> unit
(** Close the innermost open span and emit its record (root) or buffer it
    (worker). Unbalanced closes are ignored. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Scoped {!span_open}/{!span_close}. If [f] raises with child spans
    still open, the abandoned children are closed before this span's own
    frame, so outer spans' self-time stays consistent. When disabled this
    is just [f ()]. *)

val flush : unit -> unit
(** Drain merged worker buffers (spans emitted grouped by worker id,
    chronological within each worker), then emit accumulated counters,
    gauges and histograms (each sorted by name) and reset them. Root spans
    already streamed on close. Only meaningful on the installing domain. *)
