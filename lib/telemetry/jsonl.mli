(** JSONL telemetry sink: one JSON object per line, stable snake_case keys
    ([type], [name], then per-record fields) — see docs/observability.md
    for the schema and a [jq] walkthrough. *)

val line : Telemetry.record -> string
(** One record as a single JSON line (no trailing newline). *)

val sink : (string -> unit) -> Telemetry.sink
(** [sink write] calls [write] with one newline-terminated line per
    record; [close] is a no-op. *)

val channel_sink : ?close:bool -> out_channel -> Telemetry.sink
(** Stream lines to [oc]. Closing the sink flushes, and also closes the
    channel when [close] is [true] (default [false]). *)
