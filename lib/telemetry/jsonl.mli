(** JSONL telemetry sink: one JSON object per line, stable snake_case keys
    ([type], [name], then per-record fields; spans carry [domain] and
    [worker] lane tags) — see docs/observability.md for the schema and a
    [jq] walkthrough. Floats use the same shortest-round-trip printer as
    [Qec_report.Json], so the two formats agree byte-for-byte. *)

val line : Telemetry.record -> string
(** One record as a single JSON line (no trailing newline). *)

val sink : (string -> unit) -> Telemetry.sink
(** [sink write] calls [write] with one newline-terminated line per
    record; [close] is a no-op. *)

val channel_sink : ?close:bool -> out_channel -> Telemetry.sink
(** Stream lines to [oc]. Closing the sink flushes, and also closes the
    channel when [close] is [true] (default [false]). *)
