let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The shared shortest-round-trip printer: telemetry JSONL renders floats
   byte-identically to report JSON (Qec_report.Json uses the same one). *)
let num = Qec_util.Floatfmt.repr

let line (r : Telemetry.record) =
  match r with
  | Telemetry.Span s ->
    Printf.sprintf
      {|{"type":"span","name":"%s","depth":%d,"domain":%d,"worker":%d,"start_s":%s,"total_s":%s,"self_s":%s}|}
      (escape s.span_name) s.depth s.domain s.worker (num s.start_s)
      (num s.total_s) (num s.self_s)
  | Telemetry.Counter { name; value } ->
    Printf.sprintf {|{"type":"counter","name":"%s","value":%d}|} (escape name)
      value
  | Telemetry.Gauge { name; value } ->
    Printf.sprintf {|{"type":"gauge","name":"%s","value":%s}|} (escape name)
      (num value)
  | Telemetry.Histogram h ->
    Printf.sprintf
      {|{"type":"histogram","name":"%s","count":%d,"sum":%s,"min":%s,"max":%s,"mean":%s,"p50":%s,"p95":%s}|}
      (escape h.hist_name) h.count (num h.sum) (num h.min_v) (num h.max_v)
      (num h.mean) (num h.p50) (num h.p95)

let sink write =
  { Telemetry.emit = (fun r -> write (line r ^ "\n")); close = ignore }

let channel_sink ?(close = false) oc =
  {
    Telemetry.emit =
      (fun r ->
        output_string oc (line r);
        output_char oc '\n');
    close =
      (fun () ->
        flush oc;
        if close then close_out oc);
  }
