type span = {
  span_name : string;
  depth : int;
  start_s : float;
  total_s : float;
  self_s : float;
}

type histogram = {
  hist_name : string;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  mean : float;
  p50 : float;
  p95 : float;
}

type record =
  | Span of span
  | Counter of { name : string; value : int }
  | Gauge of { name : string; value : float }
  | Histogram of histogram

type sink = { emit : record -> unit; close : unit -> unit }

let null = { emit = ignore; close = ignore }

let tee = function
  | [] -> null
  | [ s ] -> s
  | sinks ->
    {
      emit = (fun r -> List.iter (fun s -> s.emit r) sinks);
      close = (fun () -> List.iter (fun s -> s.close ()) sinks);
    }

type frame = { frame_name : string; start : float; mutable child_total : float }

type state = {
  sink : sink;
  clock : unit -> float;
  epoch : float;
  domain : int;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  samples : (string, float list ref) Hashtbl.t;
  mutable stack : frame list;
}

(* The single global sink: [None] is the fast path, so an uninstrumented
   run pays one pattern match per probe. State is single-domain mutable
   (Hashtbls, span stack), so probes fire only on the installing domain —
   Qec_util.Parallel workers run unrecorded instead of racing. *)
let current : state option ref = ref None

let active () =
  match !current with
  | Some st when st.domain = (Domain.self () :> int) -> Some st
  | _ -> None

let enabled () = Option.is_some (active ())

let install ?(clock = Unix.gettimeofday) sink =
  current :=
    Some
      {
        sink;
        clock;
        epoch = clock ();
        domain = (Domain.self () :> int);
        counters = Hashtbl.create 64;
        gauges = Hashtbl.create 16;
        samples = Hashtbl.create 16;
        stack = [];
      }

let count ?(by = 1) name =
  match active () with
  | None -> ()
  | Some st -> (
    match Hashtbl.find_opt st.counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add st.counters name (ref by))

let gauge name v =
  match active () with
  | None -> ()
  | Some st -> Hashtbl.replace st.gauges name v

let sample name v =
  match active () with
  | None -> ()
  | Some st -> (
    match Hashtbl.find_opt st.samples name with
    | Some r -> r := v :: !r
    | None -> Hashtbl.add st.samples name (ref [ v ]))

let span_open name =
  match active () with
  | None -> ()
  | Some st ->
    st.stack <-
      { frame_name = name; start = st.clock (); child_total = 0. } :: st.stack

let span_close () =
  match active () with
  | None -> ()
  | Some st -> (
    match st.stack with
    | [] -> ()
    | f :: rest ->
      let total = st.clock () -. f.start in
      (match rest with
      | parent :: _ -> parent.child_total <- parent.child_total +. total
      | [] -> ());
      st.stack <- rest;
      st.sink.emit
        (Span
           {
             span_name = f.frame_name;
             depth = List.length rest;
             start_s = f.start -. st.epoch;
             total_s = total;
             self_s = max 0. (total -. f.child_total);
           }))

let with_span name f =
  match active () with
  | None -> f ()
  | Some _ ->
    span_open name;
    Fun.protect ~finally:span_close f

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let flush () =
  match active () with
  | None -> ()
  | Some st ->
    List.iter
      (fun name ->
        st.sink.emit (Counter { name; value = !(Hashtbl.find st.counters name) }))
      (sorted_keys st.counters);
    Hashtbl.reset st.counters;
    List.iter
      (fun name ->
        st.sink.emit (Gauge { name; value = Hashtbl.find st.gauges name }))
      (sorted_keys st.gauges);
    Hashtbl.reset st.gauges;
    List.iter
      (fun name ->
        let xs = !(Hashtbl.find st.samples name) in
        let min_v, max_v = Qec_util.Stats.min_max xs in
        st.sink.emit
          (Histogram
             {
               hist_name = name;
               count = List.length xs;
               sum = List.fold_left ( +. ) 0. xs;
               min_v;
               max_v;
               mean = Qec_util.Stats.mean xs;
               p50 = Qec_util.Stats.percentile 50. xs;
               p95 = Qec_util.Stats.percentile 95. xs;
             }))
      (sorted_keys st.samples);
    Hashtbl.reset st.samples

let uninstall () =
  match !current with
  | None -> ()
  | Some st ->
    flush ();
    st.sink.close ();
    current := None

let with_sink ?clock sink f =
  let previous = !current in
  install ?clock sink;
  Fun.protect
    ~finally:(fun () ->
      uninstall ();
      current := previous)
    f
