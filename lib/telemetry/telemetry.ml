type span = {
  span_name : string;
  depth : int;
  start_s : float;
  total_s : float;
  self_s : float;
  domain : int;
  worker : int;
}

type histogram = {
  hist_name : string;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  mean : float;
  p50 : float;
  p95 : float;
}

type record =
  | Span of span
  | Counter of { name : string; value : int }
  | Gauge of { name : string; value : float }
  | Histogram of histogram

type sink = { emit : record -> unit; close : unit -> unit }

let null = { emit = ignore; close = ignore }

let tee = function
  | [] -> null
  | [ s ] -> s
  | sinks ->
    {
      emit = (fun r -> List.iter (fun s -> s.emit r) sinks);
      close = (fun () -> List.iter (fun s -> s.close ()) sinks);
    }

type frame = { frame_name : string; start : float; mutable child_total : float }

(* The cross-domain half of an installed sink. The installing (root)
   domain owns the sink; worker domains attach with [worker_scope], record
   into domain-local buffers, and merge them here — under [lock] — when
   their scope ends (i.e. at join). The root drains the merged buffers on
   [flush], so the sink itself is only ever driven from one domain. *)
type session = {
  sink : sink;
  clock : unit -> float;
  epoch : float;
  lock : Mutex.t;
  mutable wspans : (int * record list) list;
      (* per-scope span buffers tagged with the worker id, in merge order *)
  wcounters : (string, int) Hashtbl.t;
  wgauges : (string, int * float) Hashtbl.t;  (* worker id, value *)
  wsamples : (string, float list) Hashtbl.t;
}

(* Per-domain probe state. [root] distinguishes the installing domain
   (spans stream straight to the sink) from attached workers (spans buffer
   locally until the scope merges). All tables are domain-local, so probes
   never contend. *)
type state = {
  session : session;
  domain : int;
  worker : int;
  root : bool;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  samples : (string, float list ref) Hashtbl.t;
  mutable stack : frame list;
  mutable buffered : record list;  (* worker spans, newest first *)
}

let dls : state option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* What [worker_scope] attaches to from a freshly spawned domain. *)
let current_session : session option Atomic.t = Atomic.make None

let active () = Domain.DLS.get dls
let enabled () = Option.is_some (active ())

let make_state ~session ~worker ~root =
  {
    session;
    domain = (Domain.self () :> int);
    worker;
    root;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    samples = Hashtbl.create 16;
    stack = [];
    buffered = [];
  }

let install ?(clock = Unix.gettimeofday) sink =
  let session =
    {
      sink;
      clock;
      epoch = clock ();
      lock = Mutex.create ();
      wspans = [];
      wcounters = Hashtbl.create 16;
      wgauges = Hashtbl.create 8;
      wsamples = Hashtbl.create 8;
    }
  in
  Atomic.set current_session (Some session);
  Domain.DLS.set dls (Some (make_state ~session ~worker:0 ~root:true))

let count ?(by = 1) name =
  match active () with
  | None -> ()
  | Some st -> (
    match Hashtbl.find_opt st.counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add st.counters name (ref by))

let gauge name v =
  match active () with
  | None -> ()
  | Some st -> Hashtbl.replace st.gauges name v

let sample name v =
  match active () with
  | None -> ()
  | Some st -> (
    match Hashtbl.find_opt st.samples name with
    | Some r -> r := v :: !r
    | None -> Hashtbl.add st.samples name (ref [ v ]))

let span_open name =
  match active () with
  | None -> ()
  | Some st ->
    st.stack <-
      { frame_name = name; start = st.session.clock (); child_total = 0. }
      :: st.stack

let span_close () =
  match active () with
  | None -> ()
  | Some st -> (
    match st.stack with
    | [] -> ()
    | f :: rest ->
      let total = st.session.clock () -. f.start in
      (match rest with
      | parent :: _ -> parent.child_total <- parent.child_total +. total
      | [] -> ());
      st.stack <- rest;
      let r =
        Span
          {
            span_name = f.frame_name;
            depth = List.length rest;
            start_s = f.start -. st.session.epoch;
            total_s = total;
            self_s = max 0. (total -. f.child_total);
            domain = st.domain;
            worker = st.worker;
          }
      in
      if st.root then st.session.sink.emit r
      else st.buffered <- r :: st.buffered)

let with_span name f =
  match active () with
  | None -> f ()
  | Some st -> (
    span_open name;
    match st.stack with
    | [] -> f () (* unreachable: span_open just pushed *)
    | frame :: _ ->
      Fun.protect
        ~finally:(fun () ->
          (* [f] may have raised with child spans still open: close the
             abandoned children first, then exactly our own frame, so the
             stack below us (and every parent's child_total) survives a
             failing job intact. If [f] over-closed and popped our frame
             itself, leave the rest of the stack alone. *)
          if List.memq frame st.stack then begin
            let rec unwind () =
              match st.stack with
              | [] -> ()
              | g :: _ when g == frame -> span_close ()
              | _ :: _ ->
                span_close ();
                unwind ()
            in
            unwind ()
          end)
        f)

(* ---------------- worker attach / merge ---------------- *)

let merge_into_session st =
  let s = st.session in
  Mutex.protect s.lock @@ fun () ->
  s.wspans <- (st.worker, List.rev st.buffered) :: s.wspans;
  Hashtbl.iter
    (fun name r ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt s.wcounters name) in
      Hashtbl.replace s.wcounters name (cur + !r))
    st.counters;
  Hashtbl.iter
    (fun name v ->
      (* Deterministic cross-worker rule: the lowest worker id wins. *)
      match Hashtbl.find_opt s.wgauges name with
      | Some (w, _) when w <= st.worker -> ()
      | Some _ | None -> Hashtbl.replace s.wgauges name (st.worker, v))
    st.gauges;
  Hashtbl.iter
    (fun name r ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt s.wsamples name) in
      Hashtbl.replace s.wsamples name (cur @ List.rev !r))
    st.samples

let worker_scope ~worker f =
  match active () with
  | Some _ -> f () (* the installing domain, or an already-attached one *)
  | None -> (
    match Atomic.get current_session with
    | None -> f ()
    | Some session ->
      let st = make_state ~session ~worker ~root:false in
      Domain.DLS.set dls (Some st);
      Fun.protect
        ~finally:(fun () ->
          (* close spans the worker left open (e.g. on exception) *)
          while st.stack <> [] do
            span_close ()
          done;
          merge_into_session st;
          Domain.DLS.set dls None)
        f)

(* Drain worker buffers into the root state: spans go to the sink ordered
   by worker id (stable, so repeated merges from one worker keep their
   chronological order), aggregates fold into the root tables so [flush]
   emits one record per name. *)
let drain_workers st =
  let s = st.session in
  let wspans, wcounters, wgauges, wsamples =
    Mutex.protect s.lock @@ fun () ->
    let spans = List.stable_sort (fun (a, _) (b, _) -> compare a b)
        (List.rev s.wspans)
    in
    let counters = Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.wcounters [] in
    let gauges = Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.wgauges [] in
    let samples = Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.wsamples [] in
    s.wspans <- [];
    Hashtbl.reset s.wcounters;
    Hashtbl.reset s.wgauges;
    Hashtbl.reset s.wsamples;
    (spans, counters, gauges, samples)
  in
  List.iter (fun (_, rs) -> List.iter s.sink.emit rs) wspans;
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt st.counters name with
      | Some r -> r := !r + v
      | None -> Hashtbl.add st.counters name (ref v))
    wcounters;
  List.iter
    (fun (name, (_, v)) ->
      (* The root's own value wins over any worker's. *)
      if not (Hashtbl.mem st.gauges name) then Hashtbl.replace st.gauges name v)
    wgauges;
  List.iter
    (fun (name, xs) ->
      match Hashtbl.find_opt st.samples name with
      | Some r -> r := List.rev_append xs !r
      | None -> Hashtbl.add st.samples name (ref (List.rev xs)))
    wsamples

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let flush () =
  match active () with
  | Some st when st.root ->
    drain_workers st;
    List.iter
      (fun name ->
        st.session.sink.emit
          (Counter { name; value = !(Hashtbl.find st.counters name) }))
      (sorted_keys st.counters);
    Hashtbl.reset st.counters;
    List.iter
      (fun name ->
        st.session.sink.emit (Gauge { name; value = Hashtbl.find st.gauges name }))
      (sorted_keys st.gauges);
    Hashtbl.reset st.gauges;
    List.iter
      (fun name ->
        let xs = !(Hashtbl.find st.samples name) in
        let min_v, max_v = Qec_util.Stats.min_max xs in
        st.session.sink.emit
          (Histogram
             {
               hist_name = name;
               count = List.length xs;
               sum = List.fold_left ( +. ) 0. xs;
               min_v;
               max_v;
               mean = Qec_util.Stats.mean xs;
               p50 = Qec_util.Stats.percentile 50. xs;
               p95 = Qec_util.Stats.percentile 95. xs;
             }))
      (sorted_keys st.samples);
    Hashtbl.reset st.samples
  | Some _ | None -> ()

let uninstall () =
  match active () with
  | Some st when st.root ->
    flush ();
    st.session.sink.close ();
    Atomic.set current_session None;
    Domain.DLS.set dls None
  | Some _ | None -> ()

let with_sink ?clock sink f =
  let prev_state = Domain.DLS.get dls in
  let prev_session = Atomic.get current_session in
  install ?clock sink;
  Fun.protect
    ~finally:(fun () ->
      uninstall ();
      Domain.DLS.set dls prev_state;
      Atomic.set current_session prev_session)
    f

(* Register the Parallel instrumentation hooks: spawned worker domains get
   a recording scope, and the work-queue loops report through the normal
   probe API. This module is linked by every entry point that uses the
   engine, so the hooks are installed before any pool spins up. *)
let () =
  Qec_util.Parallel.set_probe
    {
      Qec_util.Parallel.wrap_worker = (fun ~worker f -> worker_scope ~worker f);
      enabled;
      now = Unix.gettimeofday;
      count = (fun name by -> count ~by name);
      sample;
      span_open;
      span_close;
    }
