(** In-memory telemetry sink: keeps every record for tests, summary tables
    and JSON export. *)

type t

type phase = {
  phase_name : string;
  calls : int;
  total_s : float;
  self_s : float;
}
(** Spans aggregated by name, sorted by descending self-time. *)

val create : unit -> t

val sink : t -> Telemetry.sink
(** A sink appending every record to [t]. Closing is a no-op, so the
    collector can be read after [Telemetry.with_sink] returns. *)

val records : t -> Telemetry.record list
(** Everything received, in arrival order. *)

val counters : t -> (string * int) list

val counter : t -> string -> int
(** 0 when the counter was never incremented. *)

val gauges : t -> (string * float) list
val gauge_opt : t -> string -> float option
val histograms : t -> Telemetry.histogram list
val histogram_opt : t -> string -> Telemetry.histogram option
val spans : t -> Telemetry.span list

val lanes : t -> (int * int) list
(** Distinct [(domain, worker)] pairs spans were recorded on, sorted —
    more than one entry means worker domains really reported. *)

val phases : t -> phase list

val phase_table : t -> Qec_util.Tableprint.t
(** Per-phase self-time summary: calls, total, self, self%. *)

val print_phases : t -> unit
(** [phase_table] to stdout (prints nothing when no spans were recorded). *)

val print_summary : t -> unit
(** Phase table plus counters, gauges and sample-histogram tables. *)
