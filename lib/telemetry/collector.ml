module TP = Qec_util.Tableprint

type t = { mutable rev : Telemetry.record list }

type phase = {
  phase_name : string;
  calls : int;
  total_s : float;
  self_s : float;
}

let create () = { rev = [] }

let sink c =
  { Telemetry.emit = (fun r -> c.rev <- r :: c.rev); close = ignore }

let records c = List.rev c.rev

let counters c =
  List.filter_map
    (function
      | Telemetry.Counter { name; value } -> Some (name, value) | _ -> None)
    (records c)

let counter c name = Option.value ~default:0 (List.assoc_opt name (counters c))

let gauges c =
  List.filter_map
    (function
      | Telemetry.Gauge { name; value } -> Some (name, value) | _ -> None)
    (records c)

let gauge_opt c name = List.assoc_opt name (gauges c)

let histograms c =
  List.filter_map
    (function Telemetry.Histogram h -> Some h | _ -> None)
    (records c)

let histogram_opt c name =
  List.find_opt
    (fun (h : Telemetry.histogram) -> h.hist_name = name)
    (histograms c)

let spans c =
  List.filter_map (function Telemetry.Span s -> Some s | _ -> None) (records c)

let lanes c =
  List.map (fun (s : Telemetry.span) -> (s.domain, s.worker)) (spans c)
  |> List.sort_uniq compare

let phases c =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Telemetry.span) ->
      match Hashtbl.find_opt tbl s.span_name with
      | None ->
        order := s.span_name :: !order;
        Hashtbl.add tbl s.span_name (ref (1, s.total_s, s.self_s))
      | Some r ->
        let n, t, sf = !r in
        r := (n + 1, t +. s.total_s, sf +. s.self_s))
    (spans c);
  List.rev !order
  |> List.map (fun name ->
         let calls, total_s, self_s = !(Hashtbl.find tbl name) in
         { phase_name = name; calls; total_s; self_s })
  |> List.sort (fun a b -> compare b.self_s a.self_s)

let phase_table c =
  let t =
    TP.create
      ~headers:
        [
          ("phase", TP.Left);
          ("calls", TP.Right);
          ("total (s)", TP.Right);
          ("self (s)", TP.Right);
          ("self %", TP.Right);
        ]
  in
  let ps = phases c in
  let denom =
    max epsilon_float (List.fold_left (fun acc p -> acc +. p.self_s) 0. ps)
  in
  List.iter
    (fun p ->
      TP.add_row t
        [
          p.phase_name;
          string_of_int p.calls;
          Printf.sprintf "%.4f" p.total_s;
          Printf.sprintf "%.4f" p.self_s;
          Printf.sprintf "%.1f" (100. *. p.self_s /. denom);
        ])
    ps;
  t

let print_phases c = if spans c <> [] then TP.print (phase_table c)

let print_summary c =
  if spans c <> [] then begin
    print_endline "per-phase self-time:";
    TP.print (phase_table c)
  end;
  (match counters c with
  | [] -> ()
  | cs ->
    print_endline "counters:";
    let t = TP.create ~headers:[ ("counter", TP.Left); ("value", TP.Right) ] in
    List.iter (fun (name, v) -> TP.add_row t [ name; string_of_int v ]) cs;
    TP.print t);
  (match gauges c with
  | [] -> ()
  | gs ->
    print_endline "gauges:";
    let t = TP.create ~headers:[ ("gauge", TP.Left); ("value", TP.Right) ] in
    List.iter (fun (name, v) -> TP.add_row t [ name; Printf.sprintf "%g" v ]) gs;
    TP.print t);
  match histograms c with
  | [] -> ()
  | hs ->
    print_endline "samples:";
    let t =
      TP.create
        ~headers:
          [
            ("sample", TP.Left);
            ("count", TP.Right);
            ("mean", TP.Right);
            ("p50", TP.Right);
            ("p95", TP.Right);
            ("max", TP.Right);
          ]
    in
    List.iter
      (fun (h : Telemetry.histogram) ->
        TP.add_row t
          [
            h.hist_name;
            string_of_int h.count;
            Printf.sprintf "%.3f" h.mean;
            Printf.sprintf "%.3f" h.p50;
            Printf.sprintf "%.3f" h.p95;
            Printf.sprintf "%.3f" h.max_v;
          ])
      hs;
    TP.print t
