type entry = {
  name : string;
  description : string;
  sized : int -> Qec_circuit.Circuit.t;
}

let nearest_bwt_height n =
  (* num_qubits(h) = 2*(2^h - 1) + 1; pick the height minimizing the gap *)
  let rec go h best best_gap =
    if h > 16 then best
    else
      let gap = abs (Bwt.num_qubits ~height:h - n) in
      if gap < best_gap then go (h + 1) h gap else go (h + 1) best best_gap
  in
  go 2 2 max_int

let families =
  [
    {
      name = "qft";
      description = "quantum Fourier transform on n qubits";
      sized = (fun n -> Qft.circuit n);
    };
    {
      name = "bv";
      description = "Bernstein-Vazirani, n-1 data qubits + ancilla";
      sized = (fun n -> Bv.circuit n);
    };
    {
      name = "cc";
      description = "counterfeit-coin finding, n-1 coins + balance ancilla";
      sized = (fun n -> Cc.circuit n);
    };
    {
      name = "im";
      description = "transverse-field Ising model, 2 Trotter steps";
      sized = (fun n -> Ising.circuit n);
    };
    {
      name = "qaoa";
      description = "QAOA MaxCut on a random 3-regular graph, 8 rounds";
      sized = (fun n -> Qaoa.circuit n);
    };
    {
      name = "bwt";
      description = "binary welded tree walk (size rounded to tree layout)";
      sized = (fun n -> Bwt.circuit ~height:(nearest_bwt_height n) ());
    };
    {
      name = "adder";
      description = "Cuccaro ripple-carry adder (size rounded to 2*bits+2)";
      sized =
        (fun n ->
          let bits = max 1 ((n - 2) / 2) in
          Arith.cuccaro_adder bits);
    };
    {
      name = "qftadd";
      description = "Draper QFT adder (size rounded to 2*bits)";
      sized = (fun n -> Arith.draper_adder (max 1 (n / 2)));
    };
    {
      name = "grover";
      description = "Grover search with MCZ oracle (3 <= n <= 20)";
      sized = (fun n -> Grover.circuit n);
    };
    {
      name = "ghz";
      description = "GHZ chain: H + CX ladder";
      sized = (fun n -> Misc_circuits.ghz n);
    };
    {
      name = "hshift";
      description = "bent-function hidden shift (even n)";
      sized = (fun n -> Misc_circuits.hidden_shift n);
    };
    {
      name = "lr";
      description = "random perfect matchings: every CX spans the register (even n)";
      sized = (fun n -> Misc_circuits.longrange n);
    };
    {
      name = "qpe";
      description = "quantum phase estimation of a Z-rotation (n-1 bits)";
      sized = (fun n -> Qpe.circuit ~precision:(max 1 (n - 1)) ());
    };
    {
      name = "randct";
      description = "random Clifford+T circuit, 20n gates";
      sized = (fun n -> Misc_circuits.random_clifford_t n);
    };
    {
      name = "shor";
      description = "Shor period finding (size rounded to 2*bits+3)";
      sized =
        (fun n ->
          let bits = max 2 ((n - 3) / 2) in
          Shor.circuit ~bits ());
    };
  ]

let find_family name = List.find_opt (fun e -> e.name = name) families

let fixed =
  List.map
    (fun n -> (n, fun () -> Building_blocks.by_name n))
    Building_blocks.names
  @ [
      (* The paper's 471-qubit Shor instance: 36.5K gates comes from a
         truncated exponentiation of ~149 controlled multiplications. *)
      ("shor471", fun () -> Shor.circuit ~multipliers:149 ~bits:234 ());
    ]

let split_trailing_int s =
  let n = String.length s in
  let rec first_digit i =
    if i = 0 then 0
    else
      let c = s.[i - 1] in
      if c >= '0' && c <= '9' then first_digit (i - 1) else i
  in
  let cut = first_digit n in
  if cut = n then None
  else Some (String.sub s 0 cut, int_of_string (String.sub s cut (n - cut)))

let build name =
  match List.assoc_opt name fixed with
  | Some f -> f ()
  | None -> (
    match split_trailing_int name with
    | Some (fam, n) when fam <> "" -> (
      match find_family fam with
      | Some e -> e.sized n
      | None -> raise Not_found)
    | Some _ | None -> raise Not_found)

let all_names () =
  List.map (fun e -> e.name ^ "<n>") families @ List.map fst fixed
