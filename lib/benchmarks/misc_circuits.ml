module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let ghz n =
  if n < 2 then invalid_arg "Misc_circuits.ghz: n < 2";
  let b = C.Builder.create ~name:(Printf.sprintf "ghz%d" n) ~num_qubits:n () in
  C.Builder.add b (G.H 0);
  for q = 0 to n - 2 do
    C.Builder.add b (G.Cx (q, q + 1))
  done;
  C.Builder.finish b

let ghz_star n =
  if n < 2 then invalid_arg "Misc_circuits.ghz_star: n < 2";
  let b =
    C.Builder.create ~name:(Printf.sprintf "ghzstar%d" n) ~num_qubits:n ()
  in
  C.Builder.add b (G.H 0);
  for q = 1 to n - 1 do
    C.Builder.add b (G.Cx (0, q))
  done;
  C.Builder.finish b

let hidden_shift ?shift n =
  if n < 4 || n mod 2 <> 0 then
    invalid_arg "Misc_circuits.hidden_shift: n must be even and >= 4";
  let shift = Option.value shift ~default:((1 lsl n) - 1) in
  if n < 63 && (shift < 0 || shift >= 1 lsl n) then
    invalid_arg "Misc_circuits.hidden_shift: shift out of range";
  let b =
    C.Builder.create ~name:(Printf.sprintf "hshift%d" n) ~num_qubits:n ()
  in
  let h_layer () =
    for q = 0 to n - 1 do
      C.Builder.add b (G.H q)
    done
  in
  let bent_function () =
    (* Maiorana-McFarland bent function: products of disjoint pairs *)
    let q = ref 0 in
    while !q + 1 < n do
      C.Builder.add b (G.Cz (!q, !q + 1));
      q := !q + 2
    done
  in
  let shift_pattern () =
    for q = 0 to n - 1 do
      if shift land (1 lsl q) <> 0 then C.Builder.add b (G.X q)
    done
  in
  h_layer ();
  shift_pattern ();
  bent_function ();
  shift_pattern ();
  h_layer ();
  bent_function ();
  h_layer ();
  for q = 0 to n - 1 do
    C.Builder.add b (G.Measure q)
  done;
  C.Builder.finish b

let longrange ?(layers = 10) ?(seed = 7) n =
  if n < 4 || n mod 2 <> 0 then
    invalid_arg "Misc_circuits.longrange: n must be even and >= 4";
  if layers < 1 then invalid_arg "Misc_circuits.longrange: layers < 1";
  let rng = Qec_util.Rng.create seed in
  let b = C.Builder.create ~name:(Printf.sprintf "lr%d" n) ~num_qubits:n () in
  for q = 0 to n - 1 do
    C.Builder.add b (G.H q)
  done;
  (* Each layer is a random perfect matching: a fully parallel front of
     n/2 CX gates whose partners change every layer, so the coupling graph
     grows toward degree [layers] and no placement can keep every partner
     pair adjacent — the fronts stay long-range no matter the layout.
     Layers are deterministic in [seed]; a layer repeating a pair of the
     previous layer redraws (QL102-clean and distinct fronts). *)
  let prev = ref [] in
  for _ = 1 to layers do
    let draw () =
      let qs = Qec_util.Rng.sample_without_replacement rng n n in
      let rec pair = function
        | a :: bq :: rest -> (min a bq, max a bq) :: pair rest
        | _ -> []
      in
      List.sort compare (pair qs)
    in
    let rec fresh tries =
      let m = draw () in
      if tries > 0 && List.exists (fun p -> List.mem p !prev) m then
        fresh (tries - 1)
      else m
    in
    let matching = fresh 32 in
    prev := matching;
    List.iter (fun (a, bq) -> C.Builder.add b (G.Cx (a, bq))) matching
  done;
  for q = 0 to n - 1 do
    C.Builder.add b (G.Measure q)
  done;
  C.Builder.finish b

let random_clifford_t ?(seed = 5) ?gates n =
  if n < 2 then invalid_arg "Misc_circuits.random_clifford_t: n < 2";
  let gates = Option.value gates ~default:(20 * n) in
  if gates < 1 then invalid_arg "Misc_circuits.random_clifford_t: gates < 1";
  let rng = Qec_util.Rng.create seed in
  let b =
    C.Builder.create ~name:(Printf.sprintf "randct%d" n) ~num_qubits:n ()
  in
  for _ = 1 to gates do
    match Qec_util.Rng.int rng 6 with
    | 0 -> C.Builder.add b (G.H (Qec_util.Rng.int rng n))
    | 1 -> C.Builder.add b (G.S (Qec_util.Rng.int rng n))
    | 2 -> C.Builder.add b (G.T (Qec_util.Rng.int rng n))
    | _ -> (
      match Qec_util.Rng.sample_without_replacement rng 2 n with
      | [ a; b' ] -> C.Builder.add b (G.Cx (a, b'))
      | _ -> assert false)
  done;
  C.Builder.finish b
