(** Assorted small benchmark families. *)

val ghz : int -> Qec_circuit.Circuit.t
(** [ghz n]: H on qubit 0 then a CX chain — fully serial communication, a
    useful control workload. Raises [Invalid_argument] if [n < 2]. *)

val ghz_star : int -> Qec_circuit.Circuit.t
(** GHZ via a star pattern (all CXs from qubit 0): same state, same serial
    dependence, but every braid shares the hub tile. *)

val hidden_shift : ?shift:int -> int -> Qec_circuit.Circuit.t
(** Bent-function hidden-shift circuit over an even number of qubits:
    H layer, CZ on disjoint pairs (the bent function), X pattern for the
    shift, CZ layer again, H layer. Disjoint CZ pairs give n/2-wide fully
    parallel communication fronts — an Ising-like stress test without the
    chain locality. Raises [Invalid_argument] if [n] is odd or [< 4], or
    the shift is out of range. *)

val longrange : ?layers:int -> ?seed:int -> int -> Qec_circuit.Circuit.t
(** [longrange n]: H layer, then [layers] (default 10) random perfect
    matchings — each a fully parallel front of n/2 CX gates whose partners
    change every layer, so the coupling graph tends to degree [layers] and
    no placement keeps all partners adjacent: the fronts stay long-range
    under any layout. The stress test for the braiding-vs-surgery
    comparison — when congestion splits a front across rounds, the
    remainder is qubit-disjoint and surgery pipelines its splits there.
    Deterministic in [seed]. Raises [Invalid_argument] if [n] is odd or
    [< 4], or [layers < 1]. *)

val random_clifford_t :
  ?seed:int -> ?gates:int -> int -> Qec_circuit.Circuit.t
(** Random Clifford+T circuit: uniform mix of H/S/T and CX on random
    distinct pairs ([gates] defaults to [20 * n]). Deterministic in
    [seed]. Raises [Invalid_argument] if [n < 2] or [gates < 1]. *)
