module Path = Qec_lattice.Path
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Tel = Qec_telemetry.Telemetry

let total_vertices routed =
  List.fold_left (fun acc (_, p) -> acc + Path.length p) 0 routed

let compact ?(max_passes = 3) router occ placement routed =
  Tel.with_span "compaction" @@ fun () ->
  let arr = Array.of_list routed in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    (* Visit paths longest-first: they have the most slack to give back. *)
    let order =
      Array.mapi (fun i (_, p) -> (i, Path.length p)) arr
      |> Array.to_list
      |> List.sort (fun (_, l1) (_, l2) -> compare l2 l1)
      |> List.map fst
    in
    List.iter
      (fun i ->
        let task, path = arr.(i) in
        if Path.length path > 1 then begin
          Occupancy.release_path occ path;
          let src_cell, dst_cell = Task.cells placement task in
          match Router.route router occ ~src_cell ~dst_cell with
          | Some path' when Path.length path' < Path.length path ->
            Tel.count "compaction.reroutes_improved";
            Occupancy.reserve_path occ path';
            arr.(i) <- (task, path');
            improved := true
          | Some _ | None ->
            (* keep the original (re-routing found nothing shorter) *)
            Occupancy.reserve_path occ path
        end)
      order
  done;
  Tel.count ~by:!passes "compaction.passes";
  Array.to_list arr
