module Path = Qec_lattice.Path
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Bbox = Qec_lattice.Bbox
module Tel = Qec_telemetry.Telemetry

type outcome = {
  routed : (Task.t * Path.t) list;
  failed : Task.t list;
  ratio : float;
}

let route_in_order ?bounds_of router occ placement order =
  let routed = ref [] and failed = ref [] in
  List.iter
    (fun (task : Task.t) ->
      let src_cell, dst_cell = Task.cells placement task in
      let bounds = match bounds_of with None -> None | Some f -> f task in
      (* A bounded search that fails falls back to the whole lattice: the
         confinement of Theorems 1-2 is an optimization, not a rule. *)
      let attempt bounds =
        Router.route_and_reserve ?bounds router occ ~src_cell ~dst_cell
      in
      match (match attempt bounds with
             | Some p -> Some p
             | None when bounds <> None ->
               Tel.count "stack_finder.confinement_fallbacks";
               attempt None
             | None -> None)
      with
      | Some p -> routed := (task, p) :: !routed
      | None -> failed := task :: !failed)
    order;
  (List.rev !routed, List.rev !failed)

(* Pre-rewrite ordering kept verbatim as the differential oracle for
   [planned_order] below (see test_stack_finder.ml): it re-derives every
   bounding box inside the peel loop and the sort comparator. Scheduled
   for deletion once the precomputed-area path has survived a release. *)
let planned_order_reference ?priority_of placement tasks =
  let ig = Interference.build placement tasks in
  let stack = ref [] in
  let continue = ref true in
  while !continue do
    match Interference.max_degree_nodes ig with
    | [] -> continue := false
    | (first :: _ as candidates) ->
      if Interference.degree ig first.Task.id <= 2 then continue := false
      else begin
        let best =
          List.fold_left
            (fun acc t ->
              let area b = Bbox.area (Task.bbox placement b) in
              if area t > area acc then t else acc)
            first candidates
        in
        stack := best :: !stack;
        Interference.remove ig best.Task.id
      end
  done;
  let stack = !stack in
  let remaining =
    Interference.nodes ig
    |> List.sort (fun a b ->
           let pa, pb =
             match priority_of with
             | None -> (0, 0)
             | Some f -> (f a, f b)
           in
           if pa <> pb then compare pb pa
           else
             let ka = Bbox.area (Task.bbox placement a)
             and kb = Bbox.area (Task.bbox placement b) in
             if ka <> kb then compare ka kb else compare a.Task.id b.Task.id)
  in
  remaining @ stack

(* Peel max-degree (> 2) nodes onto the stack; ties prefer the largest
   bounding-box area, then the lowest gate id for determinism. [area]
   must agree with [Bbox.area (Task.bbox placement t)]. *)
let peel_stack ~area ig =
  let stack = ref [] in
  let continue = ref true in
  while !continue do
    match Interference.max_degree_nodes ig with
    | [] -> continue := false
    | (first :: _ as candidates) ->
      if Interference.degree ig first.Task.id <= 2 then continue := false
      else begin
        let best =
          List.fold_left
            (fun acc t -> if area t > area acc then t else acc)
            first candidates
        in
        stack := best :: !stack;
        Tel.count "stack_finder.stack_pushes";
        Interference.remove ig best.Task.id
      end
  done;
  !stack (* head = last pushed: already LIFO pop order *)

let planned_order ?priority_of placement tasks =
  (* Boxes are fixed for the round's placement: compute each task's area
     once up front instead of per comparison — the sort re-derived the
     box O(k log k) times per round at paper scale. Output is pinned to
     [planned_order_reference] by differential tests. *)
  let areas = Hashtbl.create 64 in
  List.iter
    (fun (t : Task.t) ->
      Hashtbl.replace areas t.id (Bbox.area (Task.bbox placement t)))
    tasks;
  let area (t : Task.t) = Hashtbl.find areas t.Task.id in
  let ig = Interference.build placement tasks in
  let stack = peel_stack ~area ig in
  let remaining =
    Interference.nodes ig
    |> List.sort (fun a b ->
           (* Optional lookahead priority first (higher = earlier), then
              the paper's smallest-bounding-box-first order. *)
           let pa, pb =
             match priority_of with
             | None -> (0, 0)
             | Some f -> (f a, f b)
           in
           if pa <> pb then compare pb pa
           else
             let ka = area a and kb = area b in
             if ka <> kb then compare ka kb else compare a.Task.id b.Task.id)
  in
  remaining @ stack

let find ?(retry = true) ?(confine_llg = false) ?priority_of router occ
    placement tasks =
  match tasks with
  | [] -> { routed = []; failed = []; ratio = 1.0 }
  | _ ->
    let total = List.length tasks in
    let order = planned_order ?priority_of placement tasks in
    (* Theorem 1/2 confinement: gates in guaranteed LLGs (size <= 3 or
       strictly nested) first search inside their group's bounding box,
       keeping the shared fabric free for everyone else. *)
    let bounds_of =
      if not confine_llg then None
      else begin
        let table = Hashtbl.create 16 in
        List.iter
          (fun (g : Llg.group) ->
            if Llg.is_guaranteed placement g then
              List.iter
                (fun (t : Task.t) -> Hashtbl.replace table t.id g.Llg.bbox)
                g.Llg.members)
          (Llg.decompose placement tasks);
        Some (fun (t : Task.t) -> Hashtbl.find_opt table t.id)
      end
    in
    let routed, failed = route_in_order ?bounds_of router occ placement order in
    let routed, failed =
      if retry && failed <> [] then begin
        (* Failed-first retry: release our paths and try again with the
           blocked gates routed before everything else. *)
        Tel.count "stack_finder.retry_rounds";
        List.iter (fun (_, p) -> Occupancy.release_path occ p) routed;
        let retry_order = failed @ List.map fst routed in
        let routed', failed' = route_in_order router occ placement retry_order in
        if List.length routed' > List.length routed then begin
          Tel.count "stack_finder.retry_wins";
          (routed', failed')
        end
        else begin
          (* Roll back to the first attempt. *)
          List.iter (fun (_, p) -> Occupancy.release_path occ p) routed';
          List.iter (fun (_, p) -> Occupancy.reserve_path occ p) routed;
          (routed, failed)
        end
      end
      else (routed, failed)
    in
    Tel.count ~by:(List.length routed) "stack_finder.gates_routed";
    Tel.count ~by:(List.length failed) "stack_finder.gates_failed";
    {
      routed;
      failed;
      ratio = float_of_int (List.length routed) /. float_of_int total;
    }
