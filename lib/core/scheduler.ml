module Circuit = Qec_circuit.Circuit
module Gate = Qec_circuit.Gate
module Dag = Qec_circuit.Dag
module Coupling = Qec_circuit.Coupling
module Decompose = Qec_circuit.Decompose
module Grid = Qec_lattice.Grid
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Timing = Qec_surface.Timing
module Tel = Qec_telemetry.Telemetry

type variant = Sp | Full

type options = {
  variant : variant;
  threshold_p : float;
  initial : Initial_layout.method_;
  swap_strategy : Layout_opt.strategy option;
  retry : bool;
  confine_llg : bool;
  compaction : bool;
  lookahead : bool;
  seed : int;
  placement_override : Qec_lattice.Placement.t option;
}

let default_options =
  {
    variant = Full;
    threshold_p = 0.3;
    initial = Initial_layout.Annealed;
    swap_strategy = None;
    retry = true;
    confine_llg = true;
    compaction = false;
    lookahead = false;
    seed = 11;
    placement_override = None;
  }

type result = {
  name : string;
  num_qubits : int;
  num_gates : int;
  num_two_qubit : int;
  lattice_side : int;
  total_cycles : int;
  rounds : int;
  braid_rounds : int;
  swap_layers : int;
  swaps_inserted : int;
  critical_path_cycles : int;
  avg_utilization : float;
  peak_utilization : float;
  compile_time_s : float;
}

let time_us timing r = Timing.us_of_cycles timing r.total_cycles

let critical_path_us timing r =
  Timing.us_of_cycles timing r.critical_path_cycles

(* The coupling graph of QFT-like kernels is (near-)complete; odd-even
   transposition layers are the right medicine there (Maslov). Sparse
   graphs respond better to targeted greedy swaps. *)
let auto_strategy coupling =
  if Coupling.density coupling > 0.35 then Layout_opt.Odd_even
  else Layout_opt.Greedy

type round_route =
  round:int ->
  router:Qec_lattice.Router.t ->
  occ:Qec_lattice.Occupancy.t ->
  placement:Qec_lattice.Placement.t ->
  Task.t list ->
  Stack_finder.outcome

let run_impl ?route ~record ~options timing circuit =
  if options.threshold_p < 0. || options.threshold_p >= 1. then
    invalid_arg "Scheduler.run: threshold_p out of [0, 1)";
  Tel.with_span "scheduler.run" @@ fun () ->
  let t0 = Sys.time () in
  let circuit = Decompose.to_scheduler_gates circuit in
  let n = Circuit.num_qubits circuit in
  let side = max 1 (Qec_surface.Resources.lattice_side ~num_logical:n) in
  let grid = Grid.create side in
  let placement =
    match options.placement_override with
    | Some p ->
      if Qec_lattice.Placement.num_qubits p <> n then
        invalid_arg "Scheduler.run: placement override width mismatch";
      Qec_lattice.Placement.copy p
    | None ->
      Initial_layout.place ~seed:options.seed ~method_:options.initial circuit
        grid
  in
  (* An overridden placement carries its own (equal-sided) grid instance;
     use that instance so router/occupancy and placement agree physically. *)
  let grid = Qec_lattice.Placement.grid placement in
  if Grid.side grid <> side then
    invalid_arg "Scheduler.run: placement override grid size mismatch";
  let coupling = Coupling.of_circuit circuit in
  let strategy =
    match options.swap_strategy with
    | Some s -> s
    | None -> auto_strategy coupling
  in
  let dag = Dag.of_circuit circuit in
  (* Downstream height of each gate (longest dependent chain below it):
     the critical-path lookahead routes tall gates first so the schedule's
     tail does not starve. *)
  let priority_of =
    if not options.lookahead then None
    else begin
      let n_gates = Circuit.length circuit in
      let height = Array.make n_gates 0 in
      for i = n_gates - 1 downto 0 do
        height.(i) <-
          List.fold_left (fun acc s -> max acc (height.(s) + 1)) 0
            (Dag.succs dag i)
      done;
      Some (fun (t : Task.t) -> height.(t.id))
    end
  in
  let frontier = Dag.Frontier.create dag in
  (* Tasks are immutable, so derive each gate's once up front. A CX whose
     route keeps failing stays in the frontier for many rounds; rebuilding
     its task every round was a quadratic rescan at paper scale. *)
  let task_of =
    Array.init (Circuit.length circuit) (fun i ->
        Task.of_gate i (Circuit.gate circuit i))
  in
  let router = Router.create grid in
  let occ = Occupancy.create grid in
  let cycles = ref 0 in
  let rounds = ref 0 in
  let braid_rounds = ref 0 in
  let swap_layers = ref 0 in
  let swaps_inserted = ref 0 in
  let util_sum = ref 0. in
  let util_peak = ref 0. in
  let last_was_swap = ref false in
  let swap_phase = ref 0 in
  let initial_cells = Qec_lattice.Placement.to_array placement in
  let trace_rounds = ref [] in
  let emit round = if record then trace_rounds := round :: !trace_rounds in
  Tel.span_open "routing_rounds";
  while not (Dag.Frontier.is_done frontier) do
    let rev_singles = ref [] and rev_cx = ref [] in
    Dag.Frontier.iter_ready
      (fun id ->
        match task_of.(id) with
        | Some t -> rev_cx := t :: !rev_cx
        | None -> rev_singles := id :: !rev_singles)
      frontier;
    let singles = List.rev !rev_singles and cx_tasks = List.rev !rev_cx in
    if cx_tasks = [] then begin
      (* Purely local round. *)
      List.iter (Dag.Frontier.complete frontier) singles;
      emit (Trace.Local { gates = singles });
      Tel.count "scheduler.local_rounds";
      cycles := !cycles + Timing.single_qubit_cycles timing;
      incr rounds;
      last_was_swap := false
    end
    else begin
      Occupancy.clear occ;
      let outcome =
        (* The round-router seam: a custom [route] owns the whole
           routing decision for the round (candidate orderings, rip-up,
           rescue) and must leave [occ] holding exactly the reservations
           of the outcome it returns. The default is the stack finder
           plus optional compaction below. *)
        match route with
        | Some f -> f ~round:!rounds ~router ~occ ~placement cx_tasks
        | None ->
          let outcome =
            Stack_finder.find ~retry:options.retry
              ~confine_llg:options.confine_llg ?priority_of router occ
              placement cx_tasks
          in
          (* Optional topological compaction: shorten the round's paths and
             use the freed vertices to rescue gates that failed to route. *)
          if options.compaction && outcome.Stack_finder.routed <> [] then begin
            let routed =
              Compaction.compact router occ placement
                outcome.Stack_finder.routed
            in
            let rescued, failed =
              Stack_finder.route_in_order router occ placement
                outcome.Stack_finder.failed
            in
            Tel.count ~by:(List.length rescued) "compaction.rescued_gates";
            let routed = routed @ rescued in
            {
              Stack_finder.routed;
              failed;
              ratio =
                float_of_int (List.length routed)
                /. float_of_int (List.length cx_tasks);
            }
          end
          else outcome
      in
      Tel.sample "scheduler.scheduled_ratio" outcome.Stack_finder.ratio;
      let want_swap =
        options.variant = Full
        && outcome.Stack_finder.ratio < options.threshold_p
        && (not !last_was_swap)
        && List.length cx_tasks > 1
      in
      if want_swap then Tel.count "scheduler.optimizer_triggers";
      let swaps =
        if want_swap then
          (* Plan over the whole concurrent front: the bottleneck pattern
             lives in the interference structure of all pending gates, not
             only the ones that happened to lose the routing race. *)
          Layout_opt.plan strategy router placement ~pending:cx_tasks
            ~phase:!swap_phase
        else []
      in
      if swaps <> [] then begin
        (* Roll the tentative round back and spend a SWAP layer instead. *)
        List.iter
          (fun (_, p) -> Occupancy.release_path occ p)
          outcome.Stack_finder.routed;
        Layout_opt.apply placement swaps;
        emit (Trace.Swap_layer { swaps });
        Tel.count "scheduler.swap_layers";
        Tel.count ~by:(List.length swaps) "scheduler.swaps_inserted";
        cycles := !cycles + Timing.swap_layer_cycles timing;
        incr rounds;
        incr swap_layers;
        swaps_inserted := !swaps_inserted + List.length swaps;
        incr swap_phase;
        last_was_swap := true
      end
      else begin
        (* Commit: scheduled braids plus every ready local gate. *)
        List.iter
          (fun ((t : Task.t), _) -> Dag.Frontier.complete frontier t.id)
          outcome.Stack_finder.routed;
        List.iter (Dag.Frontier.complete frontier) singles;
        emit
          (Trace.Braid
             { braids = outcome.Stack_finder.routed; locals = singles });
        let u = Occupancy.utilization occ in
        util_sum := !util_sum +. u;
        if u > !util_peak then util_peak := u;
        Tel.count "scheduler.braid_rounds";
        cycles := !cycles + Timing.braid_cycles timing;
        incr rounds;
        incr braid_rounds;
        last_was_swap := false
      end
    end
  done;
  Tel.span_close ();
  let compile_time_s = Sys.time () -. t0 in
  let trace =
    {
      Trace.circuit;
      grid;
      initial_cells;
      rounds = List.rev !trace_rounds;
    }
  in
  ( trace,
  {
    name = Circuit.name circuit;
    num_qubits = n;
    num_gates = Circuit.length circuit;
    num_two_qubit = Circuit.two_qubit_count circuit;
    lattice_side = side;
    total_cycles = !cycles;
    rounds = !rounds;
    braid_rounds = !braid_rounds;
    swap_layers = !swap_layers;
    swaps_inserted = !swaps_inserted;
    critical_path_cycles = Dag.critical_path ~cost:(Timing.gate_cycles timing) dag;
    avg_utilization =
      (if !braid_rounds = 0 then 0. else !util_sum /. float_of_int !braid_rounds);
    peak_utilization = !util_peak;
    compile_time_s;
  } )

let run ?(options = default_options) timing circuit =
  snd (run_impl ~record:false ~options timing circuit)

let run_traced ?(options = default_options) timing circuit =
  let trace, result = run_impl ~record:true ~options timing circuit in
  (result, trace)

let run_traced_with ?route ?(options = default_options) timing circuit =
  let trace, result = run_impl ?route ~record:true ~options timing circuit in
  (result, trace)

let default_grid_points = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]

let run_best_p ?(options = default_options) ?(grid_points = default_grid_points)
    ?(parallel = false) ?jobs timing circuit =
  (* [?jobs] is the worker-pool API; [?parallel] survives one release as a
     deprecated alias meaning "all available workers". *)
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> if parallel then Qec_util.Parallel.default_jobs () else 1
  in
  (* Initial placement (including the annealing fine-tune) is independent
     of the threshold, so compute it once for the whole sweep. *)
  let options =
    match options.placement_override with
    | Some _ -> options
    | None ->
      let lowered = Decompose.to_scheduler_gates circuit in
      let n = Circuit.num_qubits lowered in
      let side = max 1 (Qec_surface.Resources.lattice_side ~num_logical:n) in
      let grid = Grid.create side in
      let placement =
        Initial_layout.place ~seed:options.seed ~method_:options.initial
          lowered grid
      in
      { options with placement_override = Some placement }
  in
  let eval p = (p, run ~options:{ options with threshold_p = p } timing circuit) in
  let curve =
    (* Threshold runs are independent; spread them over a worker pool on
       request. (Sys.time-based compile_time_s then aggregates CPU across
       domains — fine for latency results, not compile-time ones.) *)
    Qec_util.Parallel.map_jobs ~jobs eval grid_points
  in
  match curve with
  | [] -> invalid_arg "Scheduler.run_best_p: no grid points"
  | (_, first) :: _ ->
    let best =
      List.fold_left
        (fun acc (_, r) -> if r.total_cycles < acc.total_cycles then r else acc)
        first curve
    in
    (best, curve)
