(** Stack-based path finder — the paper's Fig. 13 algorithm.

    Given the concurrent CX gates of one scheduling round:

    + build the CX interference graph;
    + while its maximum degree exceeds 2, remove a maximum-degree node
      (ties broken toward the largest bounding-box area, then lowest id)
      and push it on a stack;
    + A*-route the remaining low-interference gates first (smallest
      bounding box first — local groups are handled locally);
    + pop the stack LIFO and route each gate on what is left.

    The LIFO order defers exactly the long, lattice-splitting paths the
    paper warns about, and handles the nested case of Theorem 2 (the
    enclosing gate has the largest box, so it is routed last).

    On top of Fig. 13 we add one {e failed-first retry}: if some gates
    could not be routed, the whole round is re-routed once with the failed
    gates first (the Fig. 8 situation — search order, not capacity, was the
    obstacle); the better of the two attempts is kept. *)

type outcome = {
  routed : (Task.t * Qec_lattice.Path.t) list;
      (** successfully routed gates, in routing order; their paths are
          reserved in the occupancy on return *)
  failed : Task.t list;  (** gates deferred to a later round *)
  ratio : float;  (** |routed| / |tasks|; 1.0 for an empty round *)
}

val find :
  ?retry:bool ->
  ?confine_llg:bool ->
  ?priority_of:(Task.t -> int) ->
  Qec_lattice.Router.t ->
  Qec_lattice.Occupancy.t ->
  Qec_lattice.Placement.t ->
  Task.t list ->
  outcome
(** [retry] defaults to [true]. With [confine_llg] (default false), gates
    belonging to LLGs guaranteed by Theorems 1-2 first search for a path
    {e inside their group's bounding box} — "each LLG can find their
    braiding paths locally in their bounding boxes" — falling back to the
    whole lattice if the confined search fails. [priority_of] prepends a
    lookahead key to the routing order (higher routes earlier) — used by
    the scheduler's critical-path lookahead. The occupancy may already
    contain foreign reservations (they are treated as obstacles and never
    released). *)

val planned_order :
  ?priority_of:(Task.t -> int) ->
  Qec_lattice.Placement.t ->
  Task.t list ->
  Task.t list
(** The full routing order of one round before any path is searched:
    low-interference gates sorted smallest-box-first, then the peeled
    stack LIFO. Uses a per-round precomputed area table; pinned to
    {!planned_order_reference} by differential tests. Exposed for tests. *)

val planned_order_reference :
  ?priority_of:(Task.t -> int) ->
  Qec_lattice.Placement.t ->
  Task.t list ->
  Task.t list
(** The pre-rewrite ordering that re-derives every bounding box inside the
    peel loop and sort comparator — the differential oracle for
    {!planned_order}. Scheduled for deletion once the precomputed-area
    path has survived a release. *)

val route_in_order :
  ?bounds_of:(Task.t -> Qec_lattice.Bbox.t option) ->
  Qec_lattice.Router.t ->
  Qec_lattice.Occupancy.t ->
  Qec_lattice.Placement.t ->
  Task.t list ->
  (Task.t * Qec_lattice.Path.t) list * Task.t list
(** Route tasks in exactly the given order (no stack, no retry), reserving
    successful paths; per-task [bounds_of] confines the search with
    whole-lattice fallback. Exposed for the greedy baseline and tests. *)
