type outcome = {
  backend : string;
  result : Scheduler.result;
  trace : Trace.t;
  stats : (string * float) list;
}

type t = {
  name : string;
  description : string;
  run : Qec_surface.Timing.t -> Qec_circuit.Circuit.t -> outcome;
}

let braid ?(options = Scheduler.default_options) () =
  {
    name = "braid";
    description = "double-defect braiding (AutoBraid round scheduler)";
    run =
      (fun timing circuit ->
        let result, trace = Scheduler.run_traced ~options timing circuit in
        { backend = "braid"; result; trace; stats = [] });
  }

(* ---------------- registry ---------------- *)

type config = {
  variant : Scheduler.variant;
  threshold_p : float;
  initial : Initial_layout.method_;
  seed : int;
  placement : Qec_lattice.Placement.t option;
}

let default_config =
  {
    variant = Scheduler.default_options.Scheduler.variant;
    threshold_p = Scheduler.default_options.Scheduler.threshold_p;
    initial = Scheduler.default_options.Scheduler.initial;
    seed = Scheduler.default_options.Scheduler.seed;
    placement = None;
  }

type ctor = config -> t

(* Registration happens at module-init time on the main domain;
   [of_name]/[all] afterwards are read-only, so no lock is needed even
   when worker domains resolve backends concurrently. *)
let registry : (string * (string * ctor)) list ref = ref []

let register ~name ~description ctor =
  registry := (name, (description, ctor)) :: List.remove_assoc name !registry

let of_name name = Option.map snd (List.assoc_opt name !registry)

let all () =
  List.map (fun (name, (description, _)) -> (name, description)) !registry
  |> List.sort compare

let () =
  register ~name:"braid"
    ~description:"double-defect braiding (AutoBraid round scheduler)"
    (fun cfg ->
      braid
        ~options:
          {
            Scheduler.variant = cfg.variant;
            threshold_p = cfg.threshold_p;
            initial = cfg.initial;
            swap_strategy = None;
            retry = true;
            confine_llg = true;
            compaction = false;
            lookahead = false;
            seed = cfg.seed;
            placement_override = cfg.placement;
          }
        ())

let scheduled_gate_ids (trace : Trace.t) =
  List.concat_map
    (fun round ->
      match round with
      | Trace.Local { gates } -> gates
      | Trace.Braid { braids = ops; locals }
      | Trace.Merge { merges = ops; locals; _ } ->
        List.map (fun ((tk : Task.t), _) -> tk.Task.id) ops @ locals
      | Trace.Swap_layer _ -> [])
    trace.Trace.rounds
  |> List.sort_uniq compare
