type outcome = {
  backend : string;
  result : Scheduler.result;
  trace : Trace.t;
  stats : (string * float) list;
}

type t = {
  name : string;
  description : string;
  run : Qec_surface.Timing.t -> Qec_circuit.Circuit.t -> outcome;
}

let braid ?(options = Scheduler.default_options) () =
  {
    name = "braid";
    description = "double-defect braiding (AutoBraid round scheduler)";
    run =
      (fun timing circuit ->
        let result, trace = Scheduler.run_traced ~options timing circuit in
        { backend = "braid"; result; trace; stats = [] });
  }

(* ---------------- per-backend options ---------------- *)

module Options = struct
  type value = Bool of bool | Int of int | Float of float | String of string

  type kind = TBool | TInt | TFloat | TEnum of string list

  type spec = { key : string; kind : kind; default : value; doc : string }

  type t = (string * value) list

  let kind_to_string = function
    | TBool -> "bool"
    | TInt -> "int"
    | TFloat -> "float"
    | TEnum cases -> String.concat "|" cases

  let value_to_string = function
    | Bool b -> string_of_bool b
    | Int i -> string_of_int i
    | Float f -> Qec_util.Floatfmt.repr f
    | String s -> s

  let check_value spec v =
    let mismatch () =
      Error
        (Printf.sprintf "option %S must be a %s (got %s)" spec.key
           (kind_to_string spec.kind) (value_to_string v))
    in
    match (spec.kind, v) with
    | TBool, Bool _ | TInt, Int _ | TFloat, Float _ -> Ok v
    | TFloat, Int i -> Ok (Float (float_of_int i))
    | TEnum cases, String s ->
      if List.mem s cases then Ok v
      else
        Error
          (Printf.sprintf "option %S: unknown value %S (expected %s)" spec.key
             s (String.concat "|" cases))
    | (TBool | TInt | TFloat | TEnum _), _ -> mismatch ()

  let defaults specs = List.map (fun s -> (s.key, s.default)) specs

  let apply specs base pairs =
    List.fold_left
      (fun acc (k, v) ->
        Result.bind acc (fun acc ->
            match List.find_opt (fun s -> s.key = k) specs with
            | None ->
              Error
                (Printf.sprintf "unknown option %S (available: %s)" k
                   (match specs with
                   | [] -> "none"
                   | _ -> String.concat ", " (List.map (fun s -> s.key) specs)))
            | Some spec ->
              Result.map
                (fun v ->
                  List.map
                    (fun (k', v') -> if k' = k then (k', v) else (k', v'))
                    acc)
                (check_value spec v)))
      (Ok base) pairs

  let decode specs pairs = apply specs (defaults specs) pairs

  let parse_kv specs arg =
    match String.index_opt arg '=' with
    | None | Some 0 ->
      Error (Printf.sprintf "bad option %S (expected key=value)" arg)
    | Some i -> (
      let key = String.sub arg 0 i in
      let raw = String.sub arg (i + 1) (String.length arg - i - 1) in
      match List.find_opt (fun s -> s.key = key) specs with
      | None ->
        Error
          (Printf.sprintf "unknown option %S (available: %s)" key
             (match specs with
             | [] -> "none"
             | _ -> String.concat ", " (List.map (fun s -> s.key) specs)))
      | Some spec -> (
        let bad () =
          Error
            (Printf.sprintf "option %S: %S is not a %s" key raw
               (kind_to_string spec.kind))
        in
        match spec.kind with
        | TBool -> (
          match bool_of_string_opt raw with
          | Some b -> Ok (key, Bool b)
          | None -> bad ())
        | TInt -> (
          match int_of_string_opt raw with
          | Some i -> Ok (key, Int i)
          | None -> bad ())
        | TFloat -> (
          match float_of_string_opt raw with
          | Some f -> Ok (key, Float f)
          | None -> bad ())
        | TEnum _ ->
          Result.map (fun v -> (key, v)) (check_value spec (String raw))))

  let to_flags specs =
    List.map
      (fun s ->
        ( Printf.sprintf "%s=<%s>" s.key (kind_to_string s.kind),
          Printf.sprintf "%s (default %s)" s.doc (value_to_string s.default)
        ))
      specs

  let get key t name =
    match List.assoc_opt name t with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Comm_backend.Options.get_%s: no option %S" key name)

  let get_bool t name =
    match get "bool" t name with
    | Bool b -> b
    | _ -> invalid_arg ("Comm_backend.Options.get_bool: " ^ name)

  let get_int t name =
    match get "int" t name with
    | Int i -> i
    | _ -> invalid_arg ("Comm_backend.Options.get_int: " ^ name)

  let get_float t name =
    match get "float" t name with
    | Float f -> f
    | Int i -> float_of_int i
    | _ -> invalid_arg ("Comm_backend.Options.get_float: " ^ name)

  let get_string t name =
    match get "string" t name with
    | String s -> s
    | _ -> invalid_arg ("Comm_backend.Options.get_string: " ^ name)
end

(* ---------------- registry ---------------- *)

type config = {
  initial : Initial_layout.method_;
  seed : int;
  placement : Qec_lattice.Placement.t option;
}

let default_config =
  {
    initial = Scheduler.default_options.Scheduler.initial;
    seed = Scheduler.default_options.Scheduler.seed;
    placement = None;
  }

type ctor = config -> Options.t -> t

type entry = {
  name : string;
  description : string;
  options : Options.spec list;
  ctor : ctor;
  validate : Options.t -> (unit, string) result;
}

(* Registration happens at module-init time on the main domain;
   [of_name]/[all] afterwards are read-only, so no lock is needed even
   when worker domains resolve backends concurrently. *)
let registry : entry list ref = ref []

let register ~name ~description ?(options = [])
    ?(validate = fun _ -> Ok ()) ctor =
  registry :=
    { name; description; options; ctor; validate }
    :: List.filter (fun e -> e.name <> name) !registry

let of_name name = List.find_opt (fun e -> e.name = name) !registry

let all () =
  List.sort (fun a b -> compare a.name b.name) !registry

let names () = List.map (fun e -> e.name) (all ())

let braid_options =
  let open Options in
  [
    {
      key = "variant";
      kind = TEnum [ "full"; "sp" ];
      default = String "full";
      doc =
        "scheduler variant: full = path finder + dynamic layout \
         optimization, sp = path finder only";
    };
    {
      key = "threshold_p";
      kind = TFloat;
      default = Float Scheduler.default_options.Scheduler.threshold_p;
      doc = "layout-optimizer trigger: scheduled ratio below which a SWAP \
             layer is spent, in [0, 1)";
    };
  ]

let () =
  register ~name:"braid"
    ~description:"double-defect braiding (AutoBraid round scheduler)"
    ~options:braid_options
    ~validate:(fun opts ->
      let p = Options.get_float opts "threshold_p" in
      if p >= 0. && p < 1. then Ok ()
      else Error (Printf.sprintf "threshold_p %g out of [0, 1)" p))
    (fun cfg opts ->
      let variant =
        match Options.get_string opts "variant" with
        | "sp" -> Scheduler.Sp
        | _ -> Scheduler.Full
      in
      braid
        ~options:
          {
            Scheduler.variant;
            threshold_p = Options.get_float opts "threshold_p";
            initial = cfg.initial;
            swap_strategy = None;
            retry = true;
            confine_llg = true;
            compaction = false;
            lookahead = false;
            seed = cfg.seed;
            placement_override = cfg.placement;
          }
        ())

let scheduled_gate_ids (trace : Trace.t) =
  List.concat_map
    (fun round ->
      match round with
      | Trace.Local { gates } -> gates
      | Trace.Braid { braids = ops; locals }
      | Trace.Merge { merges = ops; locals; _ } ->
        List.map (fun ((tk : Task.t), _) -> tk.Task.id) ops @ locals
      | Trace.Swap_layer _ -> [])
    trace.Trace.rounds
  |> List.sort_uniq compare
