type outcome = {
  backend : string;
  result : Scheduler.result;
  trace : Trace.t;
  stats : (string * float) list;
}

type t = {
  name : string;
  description : string;
  run : Qec_surface.Timing.t -> Qec_circuit.Circuit.t -> outcome;
}

let braid ?(options = Scheduler.default_options) () =
  {
    name = "braid";
    description = "double-defect braiding (AutoBraid round scheduler)";
    run =
      (fun timing circuit ->
        let result, trace = Scheduler.run_traced ~options timing circuit in
        { backend = "braid"; result; trace; stats = [] });
  }

let scheduled_gate_ids (trace : Trace.t) =
  List.concat_map
    (fun round ->
      match round with
      | Trace.Local { gates } -> gates
      | Trace.Braid { braids = ops; locals }
      | Trace.Merge { merges = ops; locals; _ } ->
        List.map (fun ((tk : Task.t), _) -> tk.Task.id) ops @ locals
      | Trace.Swap_layer _ -> [])
    trace.Trace.rounds
  |> List.sort_uniq compare
