module Placement = Qec_lattice.Placement
module Occupancy = Qec_lattice.Occupancy
module Bbox = Qec_lattice.Bbox
module Grid = Qec_lattice.Grid
module Tel = Qec_telemetry.Telemetry

type strategy = Greedy | Odd_even

let total_distance placement tasks =
  List.fold_left (fun acc t -> acc + Task.distance placement t) 0 tasks

let apply placement swaps =
  List.iter (fun (a, b) -> Placement.swap_qubits placement a b) swaps

(* Check that the accumulated swap layer is simultaneously routable by
   treating each swap as a braid task on a scratch occupancy. *)
let layer_routable router placement swaps =
  let occ = Occupancy.create (Placement.grid placement) in
  let tasks =
    List.mapi (fun i (a, b) -> { Task.id = i; q1 = a; q2 = b }) swaps
  in
  let outcome = Stack_finder.find router occ placement tasks in
  outcome.Stack_finder.failed = []

let plan_greedy router placement ~pending =
  let ig = Interference.build placement pending in
  let used = Hashtbl.create 16 in
  let swaps = ref [] in
  let area (t : Task.t) = Bbox.area (Task.bbox placement t) in
  let pick_best = function
    | [] -> None
    | first :: _ as candidates ->
      Some
        (List.fold_left
           (fun acc t -> if area t > area acc then t else acc)
           first candidates)
  in
  (* Trial placement accumulates accepted swaps so later distance
     evaluations see the pending layer's effect. *)
  let trial = Placement.copy placement in
  let continue = ref true in
  while !continue do
    match pick_best (Interference.max_degree_nodes ig) with
    | None -> continue := false
    | Some g1 ->
      if Interference.degree ig g1.Task.id = 0 then continue := false
      else begin
        let nbs = Interference.neighbors ig g1.Task.id in
        let g2 =
          List.fold_left
            (fun acc t ->
              match acc with
              | None -> Some t
              | Some best ->
                let d t' = Interference.degree ig t'.Task.id in
                if
                  d t > d best
                  || (d t = d best && area t > area best)
                then Some t
                else acc)
            None nbs
        in
        match g2 with
        | None -> continue := false
        | Some g2 ->
          let candidates =
            [
              (g1.Task.q1, g2.Task.q1);
              (g1.Task.q1, g2.Task.q2);
              (g1.Task.q2, g2.Task.q1);
              (g1.Task.q2, g2.Task.q2);
            ]
            |> List.filter (fun (a, b) ->
                   (not (Hashtbl.mem used a)) && not (Hashtbl.mem used b))
          in
          Tel.count ~by:(List.length candidates)
            "layout_opt.candidates_considered";
          let objective () =
            Task.distance trial g1 + Task.distance trial g2
          in
          let before = objective () in
          let best =
            List.fold_left
              (fun acc (a, b) ->
                Placement.swap_qubits trial a b;
                let after = objective () in
                Placement.swap_qubits trial a b;
                match acc with
                | Some (_, _, gain) when before - after <= gain -> acc
                | _ when before - after <= 0 -> acc
                | _ -> Some (a, b, before - after))
              None candidates
          in
          (match best with
          | Some (a, b, _gain) ->
            let candidate_layer = List.rev ((a, b) :: List.rev !swaps) in
            if layer_routable router placement candidate_layer then begin
              Tel.count "layout_opt.swaps_chosen";
              swaps := candidate_layer;
              Placement.swap_qubits trial a b;
              Hashtbl.replace used a ();
              Hashtbl.replace used b ();
              (* Also freeze the other operands so one layer does not
                 thrash the same gates twice. *)
              Hashtbl.replace used g1.Task.q1 ();
              Hashtbl.replace used g1.Task.q2 ();
              Hashtbl.replace used g2.Task.q1 ();
              Hashtbl.replace used g2.Task.q2 ()
            end
          | None -> ());
          Interference.remove ig g1.Task.id;
          Interference.remove ig g2.Task.id
      end
  done;
  !swaps

let plan_odd_even router placement ~pending ~phase =
  let grid = Placement.grid placement in
  let l = Grid.side grid in
  (* Snake order of cells; adjacent entries are adjacent cells. *)
  let snake =
    Array.init (Grid.num_cells grid) (fun i ->
        let y = i / l in
        let x = if y mod 2 = 0 then i mod l else l - 1 - (i mod l) in
        Grid.cell_id grid ~x ~y)
  in
  (* Tasks indexed by qubit, to evaluate swap deltas locally. *)
  let by_qubit = Hashtbl.create 64 in
  List.iter
    (fun (t : Task.t) ->
      Hashtbl.add by_qubit t.q1 t;
      Hashtbl.add by_qubit t.q2 t)
    pending;
  let local_distance trial q =
    List.fold_left
      (fun acc t -> acc + Task.distance trial t)
      0
      (Hashtbl.find_all by_qubit q)
  in
  let trial = Placement.copy placement in
  let swaps = ref [] in
  let i = ref (phase mod 2) in
  while !i + 1 < Array.length snake do
    let ca = snake.(!i) and cb = snake.(!i + 1) in
    (match (Placement.qubit_of_cell trial ca, Placement.qubit_of_cell trial cb) with
    | Some qa, Some qb ->
      Tel.count "layout_opt.candidates_considered";
      let before = local_distance trial qa + local_distance trial qb in
      Placement.swap_qubits trial qa qb;
      let after = local_distance trial qa + local_distance trial qb in
      if after < before then begin
        Tel.count "layout_opt.swaps_chosen";
        swaps := (qa, qb) :: !swaps
      end
      else Placement.swap_qubits trial qa qb (* revert *)
    | _ -> ());
    i := !i + 2
  done;
  let swaps = List.rev !swaps in
  if swaps = [] then []
  else if layer_routable router placement swaps then swaps
  else begin
    (* Disjoint neighbor swaps should always route; if not (pathological
       occupancy interplay), fall back to a prefix that does. *)
    Tel.count "layout_opt.prefix_fallbacks";
    let rec prefix k =
      if k = 0 then []
      else
        let candidate = List.filteri (fun i _ -> i < k) swaps in
        if layer_routable router placement candidate then candidate
        else prefix (k - 1)
    in
    prefix (List.length swaps - 1)
  end

let plan strategy router placement ~pending ~phase =
  Tel.with_span "layout_optimization" @@ fun () ->
  match strategy with
  | Greedy -> plan_greedy router placement ~pending
  | Odd_even -> plan_odd_even router placement ~pending ~phase
