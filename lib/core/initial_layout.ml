module Circuit = Qec_circuit.Circuit
module Dag = Qec_circuit.Dag
module Coupling = Qec_circuit.Coupling
module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement
module Tel = Qec_telemetry.Telemetry

type method_ = Identity | Bisected | Partitioned | Annealed

(* Two-qubit tasks of each ASAP layer, with layers optionally subsampled
   (evenly spaced) to bound the census cost on deep circuits. *)
let layer_tasks ?(sample_layers = 48) circuit =
  let dag = Dag.of_circuit circuit in
  let layers = Dag.layers dag in
  let task_layers =
    Array.to_list layers
    |> List.filter_map (fun ids ->
           let tasks =
             List.filter_map
               (fun i -> Task.of_gate i (Circuit.gate circuit i))
               ids
           in
           if List.length tasks >= 2 then Some tasks else None)
  in
  let k = List.length task_layers in
  if k <= sample_layers then Array.of_list task_layers
  else begin
    let arr = Array.of_list task_layers in
    Array.init sample_layers (fun i -> arr.(i * k / sample_layers))
  end

let census_of_layers placement layers =
  Array.fold_left
    (fun acc tasks -> acc + Llg.count_oversize placement tasks)
    0 layers

let oversize_census ?sample_layers circuit placement =
  census_of_layers placement (layer_tasks ?sample_layers circuit)

(* Simulated annealing over qubit swaps. Energy is the oversize-LLG census
   (primary) with total task distance as a small tie-breaker so plateaus
   still drift toward compact layouts. Only layers touching a swapped
   qubit are re-counted. *)
let anneal ~rng ~iters placement layers =
  let n = Placement.num_qubits placement in
  if n >= 2 && Array.length layers > 0 then begin
    let nl = Array.length layers in
    let layer_count = Array.make nl 0 in
    for i = 0 to nl - 1 do
      layer_count.(i) <- Llg.count_oversize placement layers.(i)
    done;
    let layers_of_qubit = Hashtbl.create (n * 2) in
    Array.iteri
      (fun li tasks ->
        List.iter
          (fun (t : Task.t) ->
            Hashtbl.add layers_of_qubit t.q1 li;
            Hashtbl.add layers_of_qubit t.q2 li)
          tasks)
      layers;
    let affected a b =
      List.sort_uniq compare
        (Hashtbl.find_all layers_of_qubit a @ Hashtbl.find_all layers_of_qubit b)
    in
    (* Distance restricted to the swapped qubits' own tasks: a cheap,
       local tie-breaker. *)
    let tasks_of_qubit = Hashtbl.create (n * 2) in
    Array.iter
      (fun tasks ->
        List.iter
          (fun (t : Task.t) ->
            Hashtbl.add tasks_of_qubit t.q1 t;
            Hashtbl.add tasks_of_qubit t.q2 t)
          tasks)
      layers;
    let local_distance a b =
      List.fold_left
        (fun acc t -> acc + Task.distance placement t)
        0
        (Hashtbl.find_all tasks_of_qubit a @ Hashtbl.find_all tasks_of_qubit b)
    in
    (* Strict descent, per the paper: "keep swapping qubits until the
       number of k-LLG (k > 3) cannot be reduced anymore". A move is kept
       only if it reduces the census, or keeps it equal while shortening
       the swapped qubits' own interactions. Stop early once the census
       hits zero or proposals stop landing. *)
    let total_census () = Array.fold_left ( + ) 0 layer_count in
    (* Targeted proposals: the first qubit of a swap is drawn from the
       members of current oversize groups, so most proposals can actually
       change the census. The pool is refreshed after accepted moves. *)
    let oversize_pool () =
      let pool = Hashtbl.create 64 in
      Array.iter
        (fun tasks ->
          List.iter
            (fun g ->
              if Llg.size g > 3 then
                List.iter
                  (fun (t : Task.t) ->
                    Hashtbl.replace pool t.q1 ();
                    Hashtbl.replace pool t.q2 ())
                  g.Llg.members)
            (Llg.decompose placement tasks))
        layers;
      Array.of_seq (Hashtbl.to_seq_keys pool)
    in
    let pool = ref (oversize_pool ()) in
    let stale = ref false in
    let rejections = ref 0 in
    let step = ref 0 in
    while !step < iters && !rejections < 200 && total_census () > 0 do
      incr step;
      Tel.count "anneal.proposals";
      if !stale && !step mod 32 = 0 then begin
        pool := oversize_pool ();
        stale := false
      end;
      let a =
        if Array.length !pool > 0 then
          !pool.(Qec_util.Rng.int rng (Array.length !pool))
        else Qec_util.Rng.int rng n
      in
      let b = Qec_util.Rng.int rng n in
      if a <> b then begin
        let touched = affected a b in
        if touched <> [] then begin
          let before_census =
            List.fold_left (fun acc li -> acc + layer_count.(li)) 0 touched
          in
          let before_dist = local_distance a b in
          Placement.swap_qubits placement a b;
          let after_counts =
            List.map
              (fun li -> (li, Llg.count_oversize placement layers.(li)))
              touched
          in
          let after_census =
            List.fold_left (fun acc (_, c) -> acc + c) 0 after_counts
          in
          let after_dist = local_distance a b in
          let accept =
            after_census < before_census
            || (after_census = before_census && after_dist < before_dist)
          in
          if accept then begin
            Tel.count "anneal.accepted";
            List.iter (fun (li, c) -> layer_count.(li) <- c) after_counts;
            rejections := 0;
            stale := true
          end
          else begin
            Tel.count "anneal.rejected";
            Placement.swap_qubits placement a b;
            incr rejections
          end
        end
        else begin
          Tel.count "anneal.rejected";
          incr rejections
        end
      end
    done;
    Tel.gauge "anneal.final_census" (float_of_int (total_census ()))
  end

let place ?(seed = 23) ?rng ?anneal_iters ?sample_layers ~method_ circuit grid
    =
  Tel.with_span "initial_layout" @@ fun () ->
  let n = Circuit.num_qubits circuit in
  (* One explicit state drives both sampling stages when the caller passes
     [rng]; otherwise each stage derives its historical seed-keyed state,
     keeping seed-addressed callers byte-stable. *)
  let embed_rng = Option.map Qec_util.Rng.split rng in
  match method_ with
  | Identity -> Placement.identity grid ~num_qubits:n
  | Bisected ->
    Qec_partition.Embed.layout ~seed ?rng:embed_rng ~snake:false
      (Coupling.of_circuit circuit) grid
  | Partitioned ->
    Qec_partition.Embed.layout ~seed ?rng:embed_rng
      (Coupling.of_circuit circuit) grid
  | Annealed ->
    let placement =
      Qec_partition.Embed.layout ~seed ?rng:embed_rng
        (Coupling.of_circuit circuit) grid
    in
    (* The anneal samples fewer layers than the reported census: the
       O(front^2) group decomposition runs on every proposal. *)
    let layers =
      layer_tasks ~sample_layers:(Option.value sample_layers ~default:16)
        circuit
    in
    let iters =
      (* The census is O(front^2) per touched layer, so the default budget
         shrinks for wide circuits to keep compile time in line with the
         paper's 1-2% claim. *)
      match anneal_iters with
      | Some i -> i
      | None ->
        if n <= 200 then min 1200 (max 150 (6 * n))
        else max 80 (120_000 / n)
    in
    Tel.gauge "anneal.iters_budget" (float_of_int iters);
    (* The census-driven fine-tune is the static half of layout
       optimization; Layout_opt.plan is the dynamic half. *)
    let anneal_rng =
      match rng with
      | Some r -> r
      | None -> Qec_util.Rng.create (seed + 1)
    in
    Tel.with_span "layout_optimization" (fun () ->
        anneal ~rng:anneal_rng ~iters placement layers);
    placement
