(** CX interference graph — §3.3.2.

    One node per pending CX gate; an edge joins two gates whose bounding
    boxes intersect (§3.3.2), i.e. whose braiding paths are likely to
    contend. The stack-based path finder peels maximum-degree nodes off
    this graph. Mutable: nodes can be removed, updating degrees.

    The graph is rebuilt every routing round, so the representation is
    packed flat: adjacency as bit words over dense node indices with a
    maintained degree array — no per-edge allocation, O(words) neighbor
    iteration. Observable behavior (edge sets, degrees, orderings) is
    pinned byte-identical to {!Legacy} by differential tests. *)

type t

val build : Qec_lattice.Placement.t -> Task.t list -> t

val original_count : t -> int
(** Nodes at build time (the denominator of the scheduling ratio). *)

val node_count : t -> int
(** Nodes still present. *)

val nodes : t -> Task.t list
(** Remaining tasks, ascending by id. *)

val degree : t -> int -> int
(** Degree of a (present) task id. Raises [Not_found] if absent. *)

val max_degree : t -> int
(** 0 when empty. *)

val max_degree_nodes : t -> Task.t list
(** All present nodes of maximal degree, ascending by id; [] when empty. *)

val neighbors : t -> int -> Task.t list
(** Present neighbors of a task id. *)

val remove : t -> int -> unit
(** Remove a node by task id, decrementing its neighbors' degrees.
    Raises [Not_found] if absent. *)

val mem : t -> int -> bool

(** The pre-rewrite hashtable-of-sets implementation, kept as the
    differential-testing oracle for the packed representation (see
    test_interference.ml). Scheduled for deletion once the packed graph
    has survived a release. *)
module Legacy : sig
  type t

  val build : Qec_lattice.Placement.t -> Task.t list -> t
  val original_count : t -> int
  val node_count : t -> int
  val nodes : t -> Task.t list
  val degree : t -> int -> int
  val max_degree : t -> int
  val max_degree_nodes : t -> Task.t list
  val neighbors : t -> int -> Task.t list
  val remove : t -> int -> unit
  val mem : t -> int -> bool
end
