(* The interference graph is rebuilt for every routing round, so its build
   and peel loops sit squarely on the compiler's hot path at paper-size
   circuits. The packed representation below keeps the adjacency matrix as
   flat bit words (one row of [words_per_row] ints per node) with a
   maintained degree array; [Legacy] preserves the original
   hashtable-of-Int_set implementation as the differential-testing oracle
   (see test_interference.ml) until it can be deleted. *)

module Legacy = struct
  module Int_set = Set.Make (Int)

  type node = { task : Task.t; mutable adj : Int_set.t }

  type t = {
    table : (int, node) Hashtbl.t; (* task id -> node *)
    original : int;
  }

  let build placement tasks =
    let table = Hashtbl.create (List.length tasks * 2) in
    List.iter
      (fun (task : Task.t) ->
        Hashtbl.replace table task.id { task; adj = Int_set.empty })
      tasks;
    let arr = Array.of_list tasks in
    let boxes = Array.map (fun t -> Task.bbox placement t) arr in
    let n = Array.length arr in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Qec_lattice.Bbox.intersects boxes.(i) boxes.(j) then begin
          let ni = Hashtbl.find table arr.(i).Task.id
          and nj = Hashtbl.find table arr.(j).Task.id in
          ni.adj <- Int_set.add arr.(j).Task.id ni.adj;
          nj.adj <- Int_set.add arr.(i).Task.id nj.adj
        end
      done
    done;
    { table; original = n }

  let original_count t = t.original
  let node_count t = Hashtbl.length t.table

  let nodes t =
    Hashtbl.fold (fun _ n acc -> n.task :: acc) t.table []
    |> List.sort (fun (a : Task.t) b -> compare a.id b.id)

  let find t id =
    match Hashtbl.find_opt t.table id with
    | Some n -> n
    | None -> raise Not_found

  let degree t id = Int_set.cardinal (find t id).adj

  let max_degree t =
    Hashtbl.fold (fun _ n acc -> max acc (Int_set.cardinal n.adj)) t.table 0

  let max_degree_nodes t =
    let d = max_degree t in
    Hashtbl.fold
      (fun _ n acc -> if Int_set.cardinal n.adj = d then n.task :: acc else acc)
      t.table []
    |> List.sort (fun (a : Task.t) b -> compare a.id b.id)

  let neighbors t id =
    Int_set.elements (find t id).adj |> List.map (fun i -> (find t i).task)

  let remove t id =
    let n = find t id in
    Int_set.iter
      (fun other -> (find t other).adj <- Int_set.remove id (find t other).adj)
      n.adj;
    Hashtbl.remove t.table id

  let mem t id = Hashtbl.mem t.table id
end

type t = {
  tasks : Task.t array; (* dense index -> task, in build order *)
  idx_of : (int, int) Hashtbl.t; (* task id -> dense index *)
  adj : int array; (* n rows x words_per_row adjacency bit words *)
  deg : int array; (* maintained under removal *)
  present : bool array;
  wpr : int; (* words per row *)
  mutable live : int;
  original : int;
}

let bits_per_word = 63

let build placement tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let wpr = max 1 ((n + bits_per_word - 1) / bits_per_word) in
  let idx_of = Hashtbl.create (max 16 (2 * n)) in
  Array.iteri (fun i (t : Task.t) -> Hashtbl.replace idx_of t.id i) arr;
  let adj = Array.make (n * wpr) 0 in
  let deg = Array.make n 0 in
  let boxes = Array.map (fun t -> Task.bbox placement t) arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Qec_lattice.Bbox.intersects boxes.(i) boxes.(j) then begin
        let wi = (i * wpr) + (j / bits_per_word)
        and wj = (j * wpr) + (i / bits_per_word) in
        adj.(wi) <- adj.(wi) lor (1 lsl (j mod bits_per_word));
        adj.(wj) <- adj.(wj) lor (1 lsl (i mod bits_per_word));
        deg.(i) <- deg.(i) + 1;
        deg.(j) <- deg.(j) + 1
      end
    done
  done;
  {
    tasks = arr;
    idx_of;
    adj;
    deg;
    present = Array.make n true;
    wpr;
    live = n;
    original = n;
  }

let original_count t = t.original
let node_count t = t.live

let find_idx t id =
  match Hashtbl.find_opt t.idx_of id with
  | Some i when t.present.(i) -> i
  | Some _ | None -> raise Not_found

let mem t id =
  match Hashtbl.find_opt t.idx_of id with
  | Some i -> t.present.(i)
  | None -> false

let degree t id = t.deg.(find_idx t id)

(* Dense build order is the caller's task-list order, not necessarily
   ascending by id, so anything returning task lists sorts explicitly to
   stay byte-compatible with [Legacy]. *)
let by_id (a : Task.t) (b : Task.t) = compare a.id b.id

let nodes t =
  let acc = ref [] in
  for i = Array.length t.tasks - 1 downto 0 do
    if t.present.(i) then acc := t.tasks.(i) :: !acc
  done;
  List.sort by_id !acc

let max_degree t =
  let best = ref 0 in
  for i = 0 to Array.length t.tasks - 1 do
    if t.present.(i) && t.deg.(i) > !best then best := t.deg.(i)
  done;
  !best

let max_degree_nodes t =
  if t.live = 0 then []
  else begin
    let d = max_degree t in
    let acc = ref [] in
    for i = Array.length t.tasks - 1 downto 0 do
      if t.present.(i) && t.deg.(i) = d then acc := t.tasks.(i) :: !acc
    done;
    List.sort by_id !acc
  end

let iter_adjacent t i f =
  let row = i * t.wpr in
  for w = 0 to t.wpr - 1 do
    let word = ref t.adj.(row + w) in
    while !word <> 0 do
      let b = !word land - !word in
      (* lowest set bit *)
      let j = (w * bits_per_word) + Qec_util.Bitset.ntz b in
      f j;
      word := !word land lnot b
    done
  done

let neighbors t id =
  let i = find_idx t id in
  let acc = ref [] in
  iter_adjacent t i (fun j -> acc := t.tasks.(j) :: !acc);
  List.sort by_id !acc

let remove t id =
  let i = find_idx t id in
  let ibit = 1 lsl (i mod bits_per_word) and iw = i / bits_per_word in
  iter_adjacent t i (fun j ->
      let wj = (j * t.wpr) + iw in
      t.adj.(wj) <- t.adj.(wj) land lnot ibit;
      t.deg.(j) <- t.deg.(j) - 1);
  Array.fill t.adj (i * t.wpr) t.wpr 0;
  t.deg.(i) <- 0;
  t.present.(i) <- false;
  t.live <- t.live - 1
