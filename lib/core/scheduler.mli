(** Round-based braiding scheduler — the AutoBraid driver (Fig. 10).

    Repeats until every gate is scheduled: take the DAG front, route the
    concurrent CX gates with the stack-based path finder, and — in the
    [Full] variant — trigger the layout optimizer when less than
    [threshold_p] of them could be scheduled, spending one parallel SWAP
    layer (cost 3 CX) to change the placement before retrying.

    Latency model (see {!Qec_surface.Timing}): a round containing at least
    one braid costs [2d] cycles, a purely local round [d] cycles, a SWAP
    layer [6d] cycles. Ready single-qubit gates complete in any round.

    Circuits are lowered with
    {!Qec_circuit.Decompose.to_scheduler_gates} on entry, so callers may
    pass Toffoli/MCT/barrier-bearing circuits directly. *)

type variant =
  | Sp  (** stack-based path finder only — "autobraid-sp" *)
  | Full  (** path finder + dynamic layout optimization — "autobraid-full" *)

type options = {
  variant : variant;
  threshold_p : float;
      (** layout optimizer triggers when the scheduled ratio of a round
          falls below this value; in [0, 1), paper sweeps 0–0.9 *)
  initial : Initial_layout.method_;
  swap_strategy : Layout_opt.strategy option;
      (** [None] = auto: odd-even when the coupling graph is dense
          (all-to-all-like), greedy otherwise *)
  retry : bool;
      (** failed-first retry pass in the path finder (default true;
          disable for the ablation study) *)
  confine_llg : bool;
      (** route guaranteed LLGs inside their bounding boxes first, with
          whole-lattice fallback (default true — Theorems 1-2) *)
  compaction : bool;
      (** topological path compaction per round ({!Compaction}), using the
          freed vertices to rescue failed gates (default false) *)
  lookahead : bool;
      (** critical-path lookahead: within a round, route gates with the
          tallest dependent chains first (default false) *)
  seed : int;
  placement_override : Qec_lattice.Placement.t option;
      (** start from this placement instead of running [initial]; copied,
          never mutated. Used to share one (annealed) placement across a
          p-sweep. *)
}

val default_options : options
(** [Full], [threshold_p = 0.3], [Annealed] initial placement, auto swap
    strategy, retry on, seed 11. *)

type result = {
  name : string;
  num_qubits : int;
  num_gates : int;  (** after lowering *)
  num_two_qubit : int;
  lattice_side : int;
  total_cycles : int;
  rounds : int;
  braid_rounds : int;
  swap_layers : int;
  swaps_inserted : int;
  critical_path_cycles : int;  (** routing-free lower bound, same costs *)
  avg_utilization : float;  (** mean occupied-vertex ratio over braid rounds *)
  peak_utilization : float;
  compile_time_s : float;  (** wall time spent scheduling *)
}

val time_us : Qec_surface.Timing.t -> result -> float
(** Execution time in microseconds: [total_cycles] at the timing's cycle
    length. *)

val critical_path_us : Qec_surface.Timing.t -> result -> float

val run :
  ?options:options -> Qec_surface.Timing.t -> Qec_circuit.Circuit.t -> result
(** Schedule the whole circuit. The lattice is the smallest square grid
    fitting the qubit count (§4.1). Deterministic for fixed options. *)

val run_traced :
  ?options:options ->
  Qec_surface.Timing.t ->
  Qec_circuit.Circuit.t ->
  result * Trace.t
(** Like {!run}, additionally recording the full per-round schedule
    ({!Trace}) for validation, rendering, and export. Scheduling decisions
    are identical to {!run}'s. *)

type round_route =
  round:int ->
  router:Qec_lattice.Router.t ->
  occ:Qec_lattice.Occupancy.t ->
  placement:Qec_lattice.Placement.t ->
  Task.t list ->
  Stack_finder.outcome
(** A custom per-round routing policy for {!run_traced_with}. Called once
    per round that has at least one ready two-qubit gate, with the
    occupancy already cleared; it owns the whole routing decision
    (ordering, candidate comparison, rip-up, rescue) and must return with
    [occ] holding exactly the reservations of the outcome — the driver's
    SWAP-layer rollback releases those paths when it overrides the
    round. *)

val run_traced_with :
  ?route:round_route ->
  ?options:options ->
  Qec_surface.Timing.t ->
  Qec_circuit.Circuit.t ->
  result * Trace.t
(** {!run_traced} with the per-round routing block swapped out: frontier
    bookkeeping, trace emission, SWAP-layer logic and cycle accounting
    stay shared, only the path search is replaced. With [route] absent
    this {e is} [run_traced] (same code path). The seam the lookahead
    backend ([Qec_lookahead]) schedules through. *)

val run_best_p :
  ?options:options ->
  ?grid_points:float list ->
  ?parallel:bool ->
  ?jobs:int ->
  Qec_surface.Timing.t ->
  Qec_circuit.Circuit.t ->
  result * (float * result) list
(** The paper's p-sweep: run at each threshold (default 0.0 to 0.9 by 0.1)
    and return the best result plus the whole curve (for Fig. 18). With
    [jobs > 1] the thresholds run on a {!Qec_util.Parallel} worker pool of
    that size — identical results in identical order, shorter wall time,
    but [compile_time_s] then counts CPU across domains. [jobs] defaults
    to 1 (sequential).

    [parallel] is {b deprecated} (one-release alias, see docs/engine.md):
    [~parallel:true] behaves like [~jobs:(Parallel.default_jobs ())] and
    is ignored when [jobs] is given. *)
