(** Full schedule traces.

    While {!Scheduler.result} carries aggregates, a trace records what
    happened in every round: which gates were scheduled on which braiding
    paths, which SWAPs were inserted, and how the placement evolved. Traces
    support {e independent} validation — {!validate} replays the trace
    against the circuit's dependency DAG and the lattice rules without
    trusting the scheduler — plus rendering and export of the transformed
    (swap-inserted) logical circuit. *)

type round =
  | Local of { gates : int list }
      (** a round of purely local gates (gate ids), cost [d] cycles *)
  | Braid of {
      braids : (Task.t * Qec_lattice.Path.t) list;
          (** two-qubit gates with their paths, in routing order *)
      locals : int list;  (** local gates completed in the same round *)
    }  (** cost [2d] cycles *)
  | Swap_layer of { swaps : (int * int) list }
      (** inserted qubit-pair swaps, cost [6d] cycles *)
  | Merge of {
      merges : (Task.t * Qec_lattice.Path.t) list;
          (** lattice-surgery CX merges with their ancilla paths, in
              routing order *)
      locals : int list;  (** local gates completed in the same round *)
      split_overlapped : bool;
          (** the [d]-cycle split phase overlaps the next round (which
              must exist and touch none of this round's merge qubits) *)
    }
      (** a lattice-surgery round ({!Qec_surgery}): merge costs [d]
          cycles, plus [d] more for the split unless it overlaps the next
          round *)

type t = {
  circuit : Qec_circuit.Circuit.t;  (** the lowered circuit *)
  grid : Qec_lattice.Grid.t;
  initial_cells : int array;  (** qubit -> cell before round 0 *)
  rounds : round list;  (** in execution order *)
}

val cycles : Qec_surface.Timing.t -> t -> int
(** Total latency of the trace under the standard cost model. *)

val num_rounds : t -> int

val swap_count : t -> int

val placement_after : t -> int -> Qec_lattice.Placement.t
(** Placement after the first [k] rounds ([0] = initial). Raises
    [Invalid_argument] if [k] exceeds the round count. *)

val final_placement : t -> Qec_lattice.Placement.t

type violation = {
  round : int option;  (** 0-based round index, when tied to one round *)
  gate : int option;  (** gate id, when tied to one gate *)
  code : string;
      (** stable machine-readable class, ["TV001"]..["TV014"]: TV001 gate
          id out of range, TV002 executed twice, TV003 before a
          predecessor, TV004 two-qubit gate in a local slot, TV005
          non-two-qubit braid/merge entry, TV006 path misses operand
          tiles, TV007 task/gate operand mismatch, TV008 no two-qubit
          operands, TV009 path collision, TV010 swap layer touches a
          qubit twice, TV011 empty round, TV012 overlap on final round,
          TV013 overlapped split shares qubits, TV014 never executed *)
  msg : string;
}
(** One structured rule violation found while replaying a trace. Tooling
    should match on [code], never on [msg] (the wording may change). *)

val violation_to_string : violation -> string
(** ["round K: msg"] when a round is known, [msg] otherwise. *)

val check : t -> violation list
(** Replay the trace and check, without consulting the scheduler:

    - every circuit gate is executed exactly once, and only after all of
      its dependency predecessors;
    - braid paths and surgery merge paths are valid channel paths
      connecting the operand tiles {e under the placement current at that
      round};
    - paths within one round are pairwise vertex-disjoint;
    - swap layers touch each qubit at most once;
    - local rounds contain no two-qubit gates and braid/merge entries are
      all two-qubit gates;
    - an overlapped split ([Merge] with [split_overlapped]) is followed by
      a round that touches none of the merge operand qubits.

    Returns every detectable violation in replay order ([] for a valid
    trace). After a gate fails a readiness check the replay continues
    best-effort, so later violations may be knock-on effects of earlier
    ones; the first violation is always trustworthy. *)

val validate : t -> (unit, string) result
(** [Ok ()] when {!check} finds nothing, otherwise [Error msg] naming the
    first violation. *)

val round_to_string : t -> int -> string
(** ASCII rendering ({!Qec_lattice.Render}) of one round's paths over the
    placement current at that round. *)

val transformed_circuit : t -> Qec_circuit.Circuit.t
(** The logical circuit actually executed: the original gates in schedule
    order with the inserted SWAP layers materialized as [Swap] gates.
    Parsing/printing this circuit reproduces the mapped program. *)
