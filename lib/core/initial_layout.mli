(** Initial qubit placement — stage 2 of the framework (Fig. 10).

    Base placement comes from the recursive-bisection partitioner
    ({!Qec_partition.Embed}, the METIS stand-in), with the snake embedding
    special case for degree-≤2 coupling graphs. On top of that, a
    simulated-annealing fine-tune driven by the LLG census: swap qubits to
    reduce the number of oversize (size > 3, non-nested) LLGs across the
    circuit's ASAP layers — the optimization evaluated in Table 1. *)

type method_ =
  | Identity  (** row-major, no analysis (control/ablation) *)
  | Bisected
      (** recursive bisection without the degree-2 snake special case —
          the paper's plain "metis" seed, Table 1's "before" column *)
  | Partitioned  (** bisection + snake special case for degree-2 graphs *)
  | Annealed  (** {!Partitioned} + LLG-driven annealing fine-tune *)

val place :
  ?seed:int ->
  ?rng:Qec_util.Rng.t ->
  ?anneal_iters:int ->
  ?sample_layers:int ->
  method_:method_ ->
  Qec_circuit.Circuit.t ->
  Qec_lattice.Grid.t ->
  Qec_lattice.Placement.t
(** Deterministic in [seed]. [rng] threads one explicit sampling state
    through both the bisection partitioner and the annealer (advancing the
    caller's generator); when absent, fresh states are derived from [seed]
    exactly as before, so seed-addressed callers are byte-stable. The
    global [Random] is never consulted. [anneal_iters] defaults to a
    size-scaled bound; [sample_layers] caps how many ASAP layers the
    census inspects (evenly spaced; default 48). Raises
    [Invalid_argument] if the grid is too small. *)

val oversize_census :
  ?sample_layers:int ->
  Qec_circuit.Circuit.t ->
  Qec_lattice.Placement.t ->
  int
(** Total number of LLGs of size > 3 over the (sampled) ASAP layers — the
    "# of LLG's (size > 3)" column of Table 1. *)
