module Circuit = Qec_circuit.Circuit
module Gate = Qec_circuit.Gate
module Dag = Qec_circuit.Dag
module Grid = Qec_lattice.Grid
module Path = Qec_lattice.Path
module Placement = Qec_lattice.Placement
module Timing = Qec_surface.Timing

type round =
  | Local of { gates : int list }
  | Braid of { braids : (Task.t * Path.t) list; locals : int list }
  | Swap_layer of { swaps : (int * int) list }
  | Merge of {
      merges : (Task.t * Path.t) list;
      locals : int list;
      split_overlapped : bool;
    }

type t = {
  circuit : Circuit.t;
  grid : Grid.t;
  initial_cells : int array;
  rounds : round list;
}

let cycles timing t =
  let module St = Qec_surface.Surgery_timing in
  List.fold_left
    (fun acc -> function
      | Local _ -> acc + Timing.single_qubit_cycles timing
      | Braid _ -> acc + Timing.braid_cycles timing
      | Swap_layer _ -> acc + Timing.swap_layer_cycles timing
      | Merge { split_overlapped; _ } ->
        (* The split (d cycles) overlaps the next round when the scheduler
           proved the rounds data-independent; only the merge is charged. *)
        acc + St.merge_cycles timing
        + (if split_overlapped then 0 else St.split_cycles timing))
    0 t.rounds

let num_rounds t = List.length t.rounds

let swap_count t =
  List.fold_left
    (fun acc -> function
      | Swap_layer { swaps } -> acc + List.length swaps
      | Local _ | Braid _ | Merge _ -> acc)
    0 t.rounds

let initial_placement t =
  Placement.create t.grid
    ~num_qubits:(Array.length t.initial_cells)
    ~cells:t.initial_cells

let placement_after t k =
  if k < 0 || k > num_rounds t then invalid_arg "Trace.placement_after";
  let placement = initial_placement t in
  List.iteri
    (fun i round ->
      if i < k then
        match round with
        | Swap_layer { swaps } ->
          List.iter (fun (a, b) -> Placement.swap_qubits placement a b) swaps
        | Local _ | Braid _ | Merge _ -> ())
    t.rounds;
  placement

let final_placement t = placement_after t (num_rounds t)

type violation = {
  round : int option;
  gate : int option;
  code : string;
  msg : string;
}

let violation_to_string v =
  match v.round with
  | Some k -> Printf.sprintf "round %d: %s" k v.msg
  | None -> v.msg

(* Replay the whole trace, collecting every detectable violation instead of
   stopping at the first. To limit cascades, a gate that fails a readiness
   check (other than being out of range) is still marked executed before the
   replay continues. *)
let check t =
  let violations = ref [] in
  let add ?round ?gate ~code fmt =
    Printf.ksprintf
      (fun msg -> violations := { round; gate; code; msg } :: !violations)
      fmt
  in
  let dag = Dag.of_circuit t.circuit in
  let n_gates = Circuit.length t.circuit in
  let executed = Array.make n_gates false in
  let placement = initial_placement t in
  let check_gate_ready ~round id =
    if id < 0 || id >= n_gates then
      add ~round ~gate:id ~code:"TV001" "gate id %d out of range" id
    else begin
      if executed.(id) then
        add ~round ~gate:id ~code:"TV002" "gate %d executed twice" id
      else if List.exists (fun p -> not executed.(p)) (Dag.preds dag id) then
        add ~round ~gate:id ~code:"TV003" "gate %d executed before a predecessor"
          id;
      executed.(id) <- true
    end
  in
  let check_locals ~round ids =
    List.iter
      (fun id ->
        check_gate_ready ~round id;
        if
          id >= 0 && id < n_gates
          && Gate.is_two_qubit (Circuit.gate t.circuit id)
        then
          add ~round ~gate:id ~code:"TV004"
            "gate %d in a local slot is a two-qubit gate" id)
      ids
  in
  let check_braid_paths ~round ?(kind = "braid") braids =
    let rec disjoint = function
      | [] -> ()
      | ((t1 : Task.t), p1) :: rest ->
        if
          List.exists (fun ((_, p2) : Task.t * Path.t) ->
              not (Path.disjoint p1 p2))
            rest
        then
          add ~round ~gate:t1.Task.id ~code:"TV009"
            "gate %d's path collides with another path" t1.Task.id;
        disjoint rest
    in
    List.iter
      (fun ((task : Task.t), path) ->
        check_gate_ready ~round task.id;
        if task.id >= 0 && task.id < n_gates then begin
          let g = Circuit.gate t.circuit task.id in
          if not (Gate.is_two_qubit g) then
            add ~round ~gate:task.id ~code:"TV005"
              "gate %d scheduled as a %s is not two-qubit" task.id kind
          else begin
            let ca = Placement.cell_of_qubit placement task.q1
            and cb = Placement.cell_of_qubit placement task.q2 in
            match Gate.two_qubit_operands g with
            | Some (a, b) when (a, b) = (task.q1, task.q2) ->
              if not (Path.connects_cells t.grid path ca cb) then
                add ~round ~gate:task.id ~code:"TV006"
                  "gate %d's path does not connect its operand tiles" task.id
            | Some _ ->
              add ~round ~gate:task.id ~code:"TV007"
                "gate %d's task operands mismatch the gate" task.id
            | None ->
              add ~round ~gate:task.id ~code:"TV008"
                "gate %d has no two-qubit operands" task.id
          end
        end)
      braids;
    disjoint braids
  in
  let check_swaps ~round swaps =
    let qubits = List.concat_map (fun (a, b) -> [ a; b ]) swaps in
    if List.length (List.sort_uniq compare qubits) <> List.length qubits then
      add ~round ~code:"TV010" "a swap layer touches a qubit twice";
    List.iter (fun (a, b) -> Placement.swap_qubits placement a b) swaps
  in
  let rounds_arr = Array.of_list t.rounds in
  let gate_qubits id =
    if id >= 0 && id < n_gates then Gate.qubits (Circuit.gate t.circuit id)
    else []
  in
  let touched_qubits = function
    | Local { gates } -> List.concat_map gate_qubits gates
    | Braid { braids = ops; locals } | Merge { merges = ops; locals; _ } ->
      List.concat_map (fun ((tk : Task.t), _) -> [ tk.q1; tk.q2 ]) ops
      @ List.concat_map gate_qubits locals
    | Swap_layer { swaps } -> List.concat_map (fun (a, b) -> [ a; b ]) swaps
  in
  List.iteri
    (fun round r ->
      match r with
      | Local { gates } ->
        if gates = [] then add ~round ~code:"TV011" "empty local round"
        else check_locals ~round gates
      | Braid { braids; locals } ->
        if braids = [] then add ~round ~code:"TV011" "braid round without braids"
        else check_braid_paths ~round braids;
        check_locals ~round locals
      | Merge { merges; locals; split_overlapped } ->
        if merges = [] then
          add ~round ~code:"TV011" "merge round without merges"
        else check_braid_paths ~round ~kind:"merge" merges;
        check_locals ~round locals;
        if split_overlapped then begin
          (* A split may only overlap the next round when that round exists
             and touches none of the still-splitting qubits. *)
          let mq =
            List.concat_map (fun ((tk : Task.t), _) -> [ tk.q1; tk.q2 ]) merges
          in
          if round + 1 >= Array.length rounds_arr then
            add ~round ~code:"TV012" "split overlap claimed on the final round"
          else if
            List.exists
              (fun q -> List.mem q mq)
              (touched_qubits rounds_arr.(round + 1))
          then
            add ~round ~code:"TV013"
              "overlapped split shares qubits with the next round"
        end
      | Swap_layer { swaps } ->
        if swaps = [] then add ~round ~code:"TV011" "empty swap layer"
        else check_swaps ~round swaps)
    t.rounds;
  let missing = ref [] in
  Array.iteri (fun i done_ -> if not done_ then missing := i :: !missing) executed;
  (match List.rev !missing with
  | [] -> ()
  | i :: rest ->
    add ~gate:i ~code:"TV014"
      "gate %d was never executed (%d gates missing in total)" i
      (1 + List.length rest));
  List.rev !violations

let validate t =
  match check t with
  | [] -> Ok ()
  | v :: _ -> Error (violation_to_string v)

let round_to_string t k =
  if k < 0 || k >= num_rounds t then invalid_arg "Trace.round_to_string";
  let placement = placement_after t k in
  match List.nth t.rounds k with
  | Local { gates } ->
    Printf.sprintf "round %d: local (%d gates)\n%s" k (List.length gates)
      (Qec_lattice.Render.grid_to_string ~placement t.grid)
  | Braid { braids; locals } ->
    Printf.sprintf "round %d: %d braids, %d locals\n%s" k
      (List.length braids) (List.length locals)
      (Qec_lattice.Render.grid_to_string
         ~paths:(List.map snd braids)
         ~placement t.grid)
  | Merge { merges; locals; split_overlapped } ->
    Printf.sprintf "round %d: %d merges, %d locals%s\n%s" k
      (List.length merges) (List.length locals)
      (if split_overlapped then " (split overlaps next round)" else "")
      (Qec_lattice.Render.grid_to_string
         ~paths:(List.map snd merges)
         ~placement t.grid)
  | Swap_layer { swaps } ->
    Printf.sprintf "round %d: swap layer (%s)\n%s" k
      (String.concat ", "
         (List.map (fun (a, b) -> Printf.sprintf "q%d<->q%d" a b) swaps))
      (Qec_lattice.Render.grid_to_string ~placement t.grid)

let transformed_circuit t =
  let b =
    Circuit.Builder.create
      ~name:(Circuit.name t.circuit ^ "+swaps")
      ~num_qubits:(Circuit.num_qubits t.circuit)
      ()
  in
  List.iter
    (fun round ->
      match round with
      | Local { gates } ->
        List.iter (fun id -> Circuit.Builder.add b (Circuit.gate t.circuit id)) gates
      | Braid { braids = ops; locals } | Merge { merges = ops; locals; _ } ->
        List.iter
          (fun ((task : Task.t), _) ->
            Circuit.Builder.add b (Circuit.gate t.circuit task.id))
          ops;
        List.iter
          (fun id -> Circuit.Builder.add b (Circuit.gate t.circuit id))
          locals
      | Swap_layer { swaps } ->
        List.iter (fun (a, b') -> Circuit.Builder.add b (Gate.Swap (a, b'))) swaps)
    t.rounds;
  Circuit.Builder.finish b
