(** Pluggable communication backends.

    AutoBraid's round-based driver is agnostic to {e how} a two-qubit gate
    crosses the lattice: double-defect braiding (the paper's model, where a
    path is held for the whole [2d]-cycle braid and its length is latency-
    free), lattice surgery ({!Qec_surgery}, where the ancilla path is
    occupied only for the [d]-cycle merge and tile-time volume is the
    scarce resource) and windowed lookahead scheduling ([Qec_lookahead])
    all consume the same lattice, DAG-front analysis and interference
    structure. A backend packages one such communication discipline behind
    a uniform [run], so the CLI, benchmarks and tests can drive and
    compare them interchangeably.

    A backend must be {e behavior-preserving} with respect to the circuit:
    every lowered gate is scheduled exactly once (checked by
    {!Trace.check}), so two backends differ only in rounds, paths and
    cycle accounting — never in what executes. *)

type outcome = {
  backend : string;  (** backend name, for reports and exported JSON *)
  result : Scheduler.result;
      (** the shared aggregate record; for non-braiding backends
          [braid_rounds] counts the backend's two-qubit rounds and the
          SWAP fields are 0 *)
  trace : Trace.t;  (** full per-round schedule, replay-validatable *)
  stats : (string * float) list;
      (** backend-specific extras (e.g. surgery tile-time volume), in a
          stable order, exported as a JSON object *)
}

type t = {
  name : string;  (** e.g. ["braid"], ["surgery"] *)
  description : string;
  run : Qec_surface.Timing.t -> Qec_circuit.Circuit.t -> outcome;
}

val braid : ?options:Scheduler.options -> unit -> t
(** The existing braiding scheduler as a backend. [run] is exactly
    {!Scheduler.run_traced}: results are identical to calling the
    scheduler directly (the abstraction adds nothing to the hot path). *)

(** {2 Per-backend options}

    Every backend owns its knobs: braiding has a scheduler [variant] and
    a layout-optimizer [threshold_p], surgery has rip-up and split
    pipelining switches, lookahead has a window width and a slack weight.
    The shared {!config} carries only the fields every backend consumes;
    everything else travels as a typed key/value options record declared
    by the backend itself, so adding a backend never widens the common
    record again.

    The codec is JSON-agnostic on purpose — this library sits below the
    report/JSON layer. {!Qec_engine.Spec} maps {!Options.value} onto JSON
    scalars for the manifest [backend_options] field; the CLI parses
    [--backend-opt key=value] pairs through {!Options.parse_kv}. *)

module Options : sig
  type value = Bool of bool | Int of int | Float of float | String of string

  type kind =
    | TBool
    | TInt
    | TFloat  (** integers are accepted and widened *)
    | TEnum of string list  (** a string restricted to the listed cases *)

  type spec = {
    key : string;
    kind : kind;
    default : value;
    doc : string;  (** one line, shown by [autobraid backends] *)
  }

  type t = (string * value) list
  (** A complete options record: every declared key present exactly once,
      in declaration order. Built by {!defaults}/{!decode}/{!apply} —
      never by hand — so lookups by the owning backend cannot miss. *)

  val kind_to_string : kind -> string
  (** ["bool"], ["int"], ["float"], or ["a|b|c"] for enums. *)

  val value_to_string : value -> string
  (** Floats print via {!Qec_util.Floatfmt.repr} (shortest round-trip). *)

  val defaults : spec list -> t

  val check_value : spec -> value -> (value, string) result
  (** Type-check one value against one declaration (widening ints to
      floats for [TFloat], checking enum membership). *)

  val apply : spec list -> t -> (string * value) list -> (t, string) result
  (** Override [base] with the given pairs, strictly: an unknown key or a
      type mismatch is an [Error] naming the key and the expected type.
      Later duplicates win. *)

  val decode : spec list -> (string * value) list -> (t, string) result
  (** [apply specs (defaults specs) pairs] — the strict decoder used for
      manifest [backend_options] objects. *)

  val parse_kv : spec list -> string -> (string * value, string) result
  (** Parse one [key=value] CLI argument, using the declared kind to read
      the scalar ([true]/[false], decimal int, float, enum case). *)

  val to_flags : spec list -> (string * string) list
  (** [(key=<kind>, doc (default v))] rows for each declared option — the
      listing [autobraid backends] prints. *)

  val get_bool : t -> string -> bool
  (** Raises [Invalid_argument] when the key is absent or not a [Bool] —
      a backend bug (the registry decodes before construction), never a
      user error. Same for the other getters. *)

  val get_int : t -> string -> int
  val get_float : t -> string -> float

  val get_string : t -> string -> string
  (** Also reads enum values (they are [String]s). *)
end

(** {2 Registry}

    Backends register by name so callers (the CLI's [--backend], the
    batch engine's [Spec.backend] field) resolve them uniformly instead of
    hand-matching names to constructors. ["braid"] self-registers here;
    other libraries register at module-init time
    ({!Qec_surgery.Backend.register}, [Qec_lookahead.Backend.register]). *)

type config = {
  initial : Initial_layout.method_;
  seed : int;
  placement : Qec_lattice.Placement.t option;
      (** start from this placement instead of computing [initial] — the
          seam the placement cache injects through *)
}
(** The truly backend-independent subset of a declarative request.
    Backend-specific knobs (braiding's [variant]/[threshold_p], surgery's
    pipelining, ...) live in each backend's own {!Options} record. *)

val default_config : config
(** {!Scheduler.default_options}' initial / seed, no placement
    override. *)

type ctor = config -> Options.t -> t
(** The options record is complete and type-checked against the entry's
    declared specs before the ctor runs. *)

type entry = {
  name : string;
  description : string;
  options : Options.spec list;  (** declaration order = display order *)
  ctor : ctor;
  validate : Options.t -> (unit, string) result;
      (** semantic checks beyond types (ranges, cross-field rules) *)
}

val register :
  name:string ->
  description:string ->
  ?options:Options.spec list ->
  ?validate:(Options.t -> (unit, string) result) ->
  ctor ->
  unit
(** Add (or replace) the named backend. Call at module-init time, before
    any domain is spawned — the registry is read-only afterwards.
    [options] defaults to none declared, [validate] to always-[Ok]. *)

val of_name : string -> entry option

val names : unit -> string list
(** Registered backend names, sorted — for error messages. *)

val all : unit -> entry list
(** Registered entries, sorted by name. *)

val scheduled_gate_ids : Trace.t -> int list
(** Sorted ids of every gate the trace schedules (braids, merges and
    locals) — the cross-backend invariant: all backends must schedule the
    same lowered gate set for the same circuit. *)
