(** Pluggable communication backends.

    AutoBraid's round-based driver is agnostic to {e how} a two-qubit gate
    crosses the lattice: double-defect braiding (the paper's model, where a
    path is held for the whole [2d]-cycle braid and its length is latency-
    free) and lattice surgery ({!Qec_surgery}, where the ancilla path is
    occupied only for the [d]-cycle merge and tile-time volume is the
    scarce resource) both consume the same lattice, DAG-front analysis and
    interference structure. A backend packages one such communication
    discipline behind a uniform [run], so the CLI, benchmarks and tests
    can drive and compare them interchangeably.

    A backend must be {e behavior-preserving} with respect to the circuit:
    every lowered gate is scheduled exactly once (checked by
    {!Trace.check}), so two backends differ only in rounds, paths and
    cycle accounting — never in what executes. *)

type outcome = {
  backend : string;  (** backend name, for reports and exported JSON *)
  result : Scheduler.result;
      (** the shared aggregate record; for non-braiding backends
          [braid_rounds] counts the backend's two-qubit rounds and the
          SWAP fields are 0 *)
  trace : Trace.t;  (** full per-round schedule, replay-validatable *)
  stats : (string * float) list;
      (** backend-specific extras (e.g. surgery tile-time volume), in a
          stable order, exported as a JSON object *)
}

type t = {
  name : string;  (** e.g. ["braid"], ["surgery"] *)
  description : string;
  run : Qec_surface.Timing.t -> Qec_circuit.Circuit.t -> outcome;
}

val braid : ?options:Scheduler.options -> unit -> t
(** The existing braiding scheduler as a backend. [run] is exactly
    {!Scheduler.run_traced}: results are identical to calling the
    scheduler directly (the abstraction adds nothing to the hot path). *)

(** {2 Registry}

    Backends register by name so callers (the CLI's [--backend], the
    batch engine's [Spec.backend] field) resolve them uniformly instead of
    hand-matching names to constructors. ["braid"] self-registers here;
    other libraries register at module-init time
    ({!Qec_surgery.Backend.register}). *)

type config = {
  variant : Scheduler.variant;  (** braid-only; others ignore it *)
  threshold_p : float;  (** braid-only layout-optimizer trigger *)
  initial : Initial_layout.method_;
  seed : int;
  placement : Qec_lattice.Placement.t option;
      (** start from this placement instead of computing [initial] — the
          seam the placement cache injects through *)
}
(** The portable subset of scheduling options a declarative request can
    carry. Everything else ([retry], [confine_llg], ...) stays at the
    backend's defaults — exactly what the CLI always passed. *)

val default_config : config
(** {!Scheduler.default_options}' variant / threshold / initial / seed,
    no placement override. *)

type ctor = config -> t

val register : name:string -> description:string -> ctor -> unit
(** Add (or replace) the named backend. Call at module-init time, before
    any domain is spawned — the registry is read-only afterwards. *)

val of_name : string -> ctor option

val all : unit -> (string * string) list
(** Registered [(name, description)] pairs, sorted by name. *)

val scheduled_gate_ids : Trace.t -> int list
(** Sorted ids of every gate the trace schedules (braids, merges and
    locals) — the cross-backend invariant: all backends must schedule the
    same lowered gate set for the same circuit. *)
