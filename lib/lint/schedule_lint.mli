(** Schedule-level lint passes (QL2xx).

    Range checks for scheduler options, and {!Autobraid.Trace.check}
    violations re-expressed as structured diagnostics with round/gate
    locations in [context]. *)

val check_options :
  file:string -> ?threshold_p:float -> ?d:int -> unit -> Diagnostic.t list
(** QL201 (error): [threshold_p] outside [0, 1) — [Scheduler.run] would
    raise. QL202 (warning): surface code distance below 3 or even. *)

val check_trace : file:string -> Autobraid.Trace.t -> Diagnostic.t list
(** One QL210 (error) diagnostic per {!Autobraid.Trace.check} violation,
    with ["round R, gate G"] context. Empty for a valid trace. *)
