type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

type t = {
  code : string;
  severity : severity;
  message : string;
  file : string;
  pos : Qec_qasm.Ast.pos option;
  context : string option;
}

let make ?pos ?context ~code ~severity ~file message =
  { code; severity; message; file; pos; context }

let compare_by_pos a b =
  match (a.pos, b.pos) with
  | Some pa, Some pb ->
    let c = compare (pa.Qec_qasm.Ast.line, pa.col) (pb.Qec_qasm.Ast.line, pb.col) in
    if c <> 0 then c else compare a.code b.code
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> compare a.code b.code

let location_string t =
  match t.pos with
  | Some { Qec_qasm.Ast.line; col } -> Printf.sprintf "%s:%d:%d" t.file line col
  | None -> t.file

let to_string t =
  Printf.sprintf "%s: %s[%s]: %s%s" (location_string t)
    (severity_to_string t.severity)
    t.code t.message
    (match t.context with None -> "" | Some c -> " (" ^ c ^ ")")

(* file:3:7: error[QL002]: index 9 out of range ...
        cx q[9],q[1];
           ^                                           *)
let render ?source t =
  let header = to_string t in
  match (source, t.pos) with
  | Some src, Some { Qec_qasm.Ast.line; col } when line >= 1 -> (
    match List.nth_opt (String.split_on_char '\n' src) (line - 1) with
    | Some text when col >= 1 && col <= String.length text + 1 ->
      Printf.sprintf "%s\n    %s\n    %s^" header text
        (String.map (fun c -> if c = '\t' then '\t' else ' ')
           (String.sub text 0 (col - 1)))
    | _ -> header)
  | _ -> header

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_jsonl t =
  let field k v = Printf.sprintf "\"%s\":%s" k v in
  let str s = "\"" ^ json_escape s ^ "\"" in
  let line, col =
    match t.pos with
    | Some { Qec_qasm.Ast.line; col } -> (line, col)
    | None -> (0, 0)
  in
  let base =
    [
      field "code" (str t.code);
      field "severity" (str (severity_to_string t.severity));
      field "file" (str t.file);
      field "line" (string_of_int line);
      field "col" (string_of_int col);
      field "message" (str t.message);
    ]
  in
  let ctx =
    match t.context with None -> [] | Some c -> [ field "context" (str c) ]
  in
  "{" ^ String.concat "," (base @ ctx) ^ "}"
