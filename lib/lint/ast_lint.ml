module Ast = Qec_qasm.Ast
module Frontend = Qec_qasm.Frontend
module D = Diagnostic

(* One mutable pass over the program, mirroring the frontend's elaboration
   environment closely enough that every Frontend.Unsupported failure mode
   has a pre-flight rule here. *)

type reg = { size : int; rpos : Ast.pos }

type decl_info = { nparams : int; formals : string list }

type st = {
  file : string;
  mutable diags : D.t list;
  qregs : (string, reg) Hashtbl.t;
  cregs : (string, reg) Hashtbl.t;
  decls : (string, decl_info) Hashtbl.t;
  measured : (string * int, unit) Hashtbl.t;
  used_qubits : (string * int, unit) Hashtbl.t;
  used_cregs : (string, unit) Hashtbl.t;
  mutable first_gate : Ast.pos option;  (* first gate/measure/reset seen *)
}

let add st ?pos ?context ~code ~severity fmt =
  Printf.ksprintf
    (fun message ->
      st.diags <- D.make ?pos ?context ~code ~severity ~file:st.file message :: st.diags)
    fmt

let error st ?pos ?context code fmt = add st ?pos ?context ~code ~severity:D.Error fmt

let warning st ?pos ?context code fmt =
  add st ?pos ?context ~code ~severity:D.Warning fmt

let arg_name = function Ast.Whole r | Ast.Indexed (r, _) -> r

let arg_to_string = function
  | Ast.Whole r -> r
  | Ast.Indexed (r, i) -> Printf.sprintf "%s[%d]" r i

(* Quantum-register reference checks (QL001/QL002); returns the qubit
   indices the argument denotes, [] when unresolvable. *)
let resolve_qarg st pos arg =
  let reg = arg_name arg in
  match Hashtbl.find_opt st.qregs reg with
  | None ->
    error st ~pos "QL001" "unknown quantum register %s" reg;
    []
  | Some { size; _ } -> (
    match arg with
    | Ast.Whole _ -> List.init size (fun i -> (reg, i))
    | Ast.Indexed (_, i) ->
      if i < 0 || i >= size then begin
        error st ~pos "QL002" "index %d out of range for qreg %s[%d]" i reg size;
        []
      end
      else [ (reg, i) ])

let resolve_carg st pos arg =
  let reg = arg_name arg in
  match Hashtbl.find_opt st.cregs reg with
  | None ->
    error st ~pos "QL001" "unknown classical register %s" reg;
    None
  | Some { size; _ } ->
    (match arg with
    | Ast.Whole _ -> ()
    | Ast.Indexed (_, i) ->
      if i < 0 || i >= size then
        error st ~pos "QL002" "index %d out of range for creg %s[%d]" i reg size);
    Hashtbl.replace st.used_cregs reg ();
    Some size

let mark_used st qubits =
  List.iter (fun q -> Hashtbl.replace st.used_qubits q ()) qubits

(* QL020: a gate touching a qubit whose latest operation was a measurement
   (and no reset in between) has an unobservable or ill-defined effect. *)
let check_use_after_measure st pos gname qubits =
  List.iter
    (fun (reg, i) ->
      if Hashtbl.mem st.measured (reg, i) then
        warning st ~pos "QL020" "%s uses qubit %s[%d] after it was measured"
          gname reg i)
    qubits

let gate_signature st gname =
  match Frontend.builtin_signature gname with
  | Some (nparams, nargs) -> Some (nparams, nargs)
  | None -> (
    match Hashtbl.find_opt st.decls gname with
    | Some { nparams; formals; _ } -> Some (nparams, List.length formals)
    | None -> None)

(* Application-site checks: QL003-QL007 plus register/measure tracking. *)
let check_app st (app : Ast.gate_app) =
  let pos = app.gpos in
  (match gate_signature st app.gname with
  | None -> error st ~pos "QL004" "unknown gate %s" app.gname
  | Some (nparams, nargs) ->
    let got_params = List.length app.gparams in
    if got_params <> nparams then
      error st ~pos "QL005" "%s expects %d parameter%s, got %d" app.gname nparams
        (if nparams = 1 then "" else "s")
        got_params;
    let got_args = List.length app.gargs in
    if got_args <> nargs then
      error st ~pos "QL006" "%s expects %d operand%s, got %d" app.gname nargs
        (if nargs = 1 then "" else "s")
        got_args);
  let resolved = List.map (fun a -> (a, resolve_qarg st pos a)) app.gargs in
  (* QL007: whole-register operands of unequal sizes cannot broadcast. *)
  let widths =
    List.filter_map
      (fun (_, qs) -> match List.length qs with 0 | 1 -> None | w -> Some w)
      resolved
  in
  (match widths with
  | w :: rest when List.exists (( <> ) w) rest ->
    error st ~pos "QL007" "mismatched register sizes in broadcast application of %s"
      app.gname
  | _ -> ());
  (* QL003: the same qubit twice in one application. Only exact, fully
     resolved single-qubit operands are compared. *)
  let singles =
    List.filter_map (fun (a, qs) -> match qs with [ q ] -> Some (a, q) | _ -> None)
      resolved
  in
  let rec dup_check = function
    | [] -> ()
    | (a, q) :: rest ->
      if List.exists (fun (_, q') -> q' = q) rest then
        error st ~pos "QL003" "duplicate operand %s in application of %s"
          (arg_to_string a) app.gname;
      dup_check rest
  in
  dup_check singles;
  let qubits = List.concat_map snd resolved in
  check_use_after_measure st pos app.gname qubits;
  mark_used st qubits

(* Gate-declaration checks: QL010 body validity, QL023 shadowing. *)
let check_decl st pos name params formals (body : Ast.gate_app list) =
  if Frontend.is_builtin name then
    warning st ~pos "QL023" "gate declaration %s shadows a builtin gate" name
  else if Hashtbl.mem st.decls name then
    warning st ~pos "QL023" "gate declaration %s shadows an earlier declaration"
      name;
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  (match dup formals with
  | Some f -> error st ~pos "QL010" "gate %s repeats formal operand %s" name f
  | None -> ());
  List.iter
    (fun (app : Ast.gate_app) ->
      let bpos = app.gpos in
      (match gate_signature st app.gname with
      | None ->
        (* The frontend rejects recursion and forward references alike. *)
        error st ~pos:bpos "QL010" "gate %s body uses undeclared gate %s" name
          app.gname
      | Some (nparams, nargs) ->
        if List.length app.gparams <> nparams then
          error st ~pos:bpos "QL010" "gate %s body: %s expects %d parameter%s"
            name app.gname nparams
            (if nparams = 1 then "" else "s");
        if List.length app.gargs <> nargs then
          error st ~pos:bpos "QL010" "gate %s body: %s expects %d operand%s" name
            app.gname nargs
            (if nargs = 1 then "" else "s"));
      List.iter
        (function
          | Ast.Indexed (r, i) ->
            error st ~pos:bpos "QL010"
              "gate %s body indexes register %s[%d] (only formal operands are \
               allowed)"
              name r i
          | Ast.Whole f ->
            if not (List.mem f formals) then
              error st ~pos:bpos "QL010" "gate %s body uses unknown operand %s"
                name f)
        app.gargs;
      let rec check_expr = function
        | Ast.Ident id when not (List.mem id params) ->
          error st ~pos:bpos "QL010" "gate %s body uses unknown parameter %s"
            name id
        | Ast.Num _ | Ast.Pi | Ast.Ident _ -> ()
        | Ast.Neg e -> check_expr e
        | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b) | Ast.Div (a, b)
        | Ast.Pow (a, b) ->
          check_expr a;
          check_expr b
      in
      List.iter check_expr app.gparams)
    body;
  Hashtbl.replace st.decls name { nparams = List.length params; formals }

let note_gate_seen st pos =
  if st.first_gate = None then st.first_gate <- Some pos

let check_stmt st ({ stmt; pos } : Ast.node) =
  match stmt with
  | Ast.Version v ->
    if v <> "2.0" then
      error st ~pos "QL012" "unsupported OPENQASM version %s (only 2.0)" v
  | Ast.Include _ -> ()
  | Ast.Qreg (name, size) ->
    if st.first_gate <> None then
      error st ~pos "QL008" "qreg %s declared after the first gate" name;
    if Hashtbl.mem st.qregs name then
      error st ~pos "QL009" "duplicate declaration of qreg %s" name
    else Hashtbl.replace st.qregs name { size; rpos = pos }
  | Ast.Creg (name, size) ->
    if Hashtbl.mem st.cregs name then
      error st ~pos "QL009" "duplicate declaration of creg %s" name
    else Hashtbl.replace st.cregs name { size; rpos = pos }
  | Ast.Gate_decl { name; params; formals; body } ->
    check_decl st pos name params formals body
  | Ast.App app ->
    note_gate_seen st pos;
    check_app st app
  | Ast.Measure (src, dst) ->
    note_gate_seen st pos;
    let qubits = resolve_qarg st pos src in
    let csize = resolve_carg st pos dst in
    (match (csize, (src, dst)) with
    | Some cs, (Ast.Whole qr, Ast.Whole _) -> (
      match Hashtbl.find_opt st.qregs qr with
      | Some { size; _ } when size <> cs ->
        warning st ~pos "QL024"
          "measure broadcasts %s[%d] into a creg of size %d" qr size cs
      | _ -> ())
    | _ -> ());
    mark_used st qubits;
    List.iter (fun q -> Hashtbl.replace st.measured q ()) qubits
  | Ast.Reset a ->
    note_gate_seen st pos;
    let qubits = resolve_qarg st pos a in
    mark_used st qubits;
    List.iter (fun q -> Hashtbl.remove st.measured q) qubits
  | Ast.Barrier args ->
    (* Structural only: validate references, but a barrier neither "uses" a
       qubit for QL021 nor clears/sets measurement state. *)
    List.iter (fun a -> ignore (resolve_qarg st pos a)) args

(* Whole-program rules after the walk: QL011, QL021, QL022. *)
let check_finish st (program : Ast.program) =
  if Hashtbl.length st.qregs = 0 then begin
    let pos = match program with { pos; _ } :: _ -> Some pos | [] -> None in
    error st ?pos "QL011" "program declares no quantum register"
  end;
  Hashtbl.iter
    (fun name { size; rpos } ->
      let unused =
        List.filter (fun i -> not (Hashtbl.mem st.used_qubits (name, i)))
          (List.init size Fun.id)
      in
      match unused with
      | [] -> ()
      | _ when List.length unused = size ->
        warning st ~pos:rpos "QL021" "qreg %s is never used" name
      | _ ->
        warning st ~pos:rpos "QL021" "%d of %d qubits of qreg %s are never used (%s)"
          (List.length unused) size name
          (String.concat ", "
             (List.map (Printf.sprintf "%s[%d]" name) unused)))
    st.qregs;
  Hashtbl.iter
    (fun name { rpos; _ } ->
      if not (Hashtbl.mem st.used_cregs name) then
        warning st ~pos:rpos "QL022" "creg %s is never used" name)
    st.cregs

let check ~file (program : Ast.program) =
  let st =
    {
      file;
      diags = [];
      qregs = Hashtbl.create 4;
      cregs = Hashtbl.create 4;
      decls = Hashtbl.create 16;
      measured = Hashtbl.create 16;
      used_qubits = Hashtbl.create 64;
      used_cregs = Hashtbl.create 4;
      first_gate = None;
    }
  in
  List.iter (check_stmt st) program;
  check_finish st program;
  List.stable_sort D.compare_by_pos (List.rev st.diags)
