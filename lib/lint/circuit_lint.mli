(** Circuit- and DAG-level lint passes (QL1xx).

    These run on the elaborated {!Qec_circuit.Circuit.t}, so they also
    apply to circuits that never had QASM source (benchmark generators,
    RevLib files). Diagnostics carry no source position; offending gates
    are identified through the [context] field as ["gate ID: mnemonic"]. *)

val check : file:string -> Qec_circuit.Circuit.t -> Diagnostic.t list
(** Runs all passes, in rule-code order:

    - QL101 (warning): gate past the final measurement of all its operand
      qubits — its effect is unobservable;
    - QL102 (warning): adjacent self-cancelling CX pair — two braids the
      peephole optimizer would delete;
    - QL103 (info): no two-qubit gates at all, so [Full] scheduling (and
      its layout optimizer) is pointless;
    - QL104 (warning): untouched qubits inflate the lattice side the
      scheduler allocates. *)
