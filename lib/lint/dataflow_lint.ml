module C = Qec_circuit.Circuit
module G = Qec_circuit.Gate
module D = Diagnostic
module Df = Qec_verify.Dataflow
module Bitset = Qec_util.Bitset

let diag ?context ~code ~severity ~file fmt =
  Printf.ksprintf (fun m -> D.make ?context ~code ~severity ~file m) fmt

let gate_context c i =
  Printf.sprintf "gate %d: %s" i (G.to_string (C.gate c i))

let measured_qubits c =
  let m = Array.make (C.num_qubits c) false in
  C.iter (fun _ g -> match g with G.Measure q -> m.(q) <- true | _ -> ()) c;
  m

(* QL301: liveness says nothing ever reads qubit [q] after gate [g], and
   [q] is never measured — the gate's effect on that qubit is
   unobservable. Fires on the last writer, where deleting or retargeting
   the gate would fix it. Measurement-free circuits are states, not
   experiments (same convention as QL101), so they are left alone. *)
let dead_qubit_after_gate ~file c =
  let measured = measured_qubits c in
  if C.length c = 0 || Array.for_all not measured then []
  else begin
    let live = Df.live_after c in
    let out = ref [] in
    C.iter
      (fun i g ->
        match g with
        | G.Measure _ | G.Barrier _ -> ()
        | _ ->
          List.iter
            (fun q ->
              if (not measured.(q)) && not (Bitset.mem live.(i) q) then
                out :=
                  diag ~context:(gate_context c i) ~code:"QL301"
                    ~severity:D.Info ~file
                    "%s leaves qubit %d dead: no later gate or measurement \
                     observes it"
                    (G.name g) q
                  :: !out)
            (G.qubits g))
      c;
    List.rev !out
  end

(* QL302: when most two-qubit gates carry zero critical-path slack the
   schedule is one long dependency chain — extra lattice bandwidth cannot
   help, only a lower-depth circuit can. Thresholds keep the rule quiet
   on small or genuinely parallel circuits. *)
let zero_slack_chain ~file c =
  let n2 = C.two_qubit_count c in
  if n2 < 8 then []
  else begin
    let slacks = Df.slack_analysis c in
    let zero = ref 0 in
    C.iter
      (fun i g ->
        if G.is_two_qubit g && slacks.(i).Df.slack = 0 then incr zero)
      c;
    if !zero * 10 >= n2 * 6 then
      [
        diag ~code:"QL302" ~severity:D.Info ~file
          "%d of %d two-qubit gates sit on a zero-slack critical chain \
           (length %d in units of d); communication bandwidth cannot hide \
           this latency"
          !zero n2
          (Df.critical_length slacks);
      ]
    else []
  end

(* QL303: a gate whose bounding box overlaps four or more concurrent
   two-qubit gates in its own ASAP layer will contend for channel
   vertices no matter how the router orders the round. Only the worst
   offender is reported. *)
let congestion_hotspot ~file c =
  let worst =
    List.fold_left
      (fun acc (p : Df.congestion) ->
        match acc with
        | Some (b : Df.congestion) when b.degree >= p.degree -> acc
        | _ -> Some p)
      None (Df.congestion_pressure c)
  in
  match worst with
  | Some { Df.layer; task; degree } when degree >= 4 ->
    [
      diag
        ~context:(gate_context c task.Autobraid.Task.id)
        ~code:"QL303" ~severity:D.Info ~file
        "gate %d's bounding box overlaps %d concurrent two-qubit gates in \
         ASAP layer %d (congestion hotspot)"
        task.Autobraid.Task.id degree layer;
    ]
  | _ -> []

(* QL304: a qubit that participates in the computation but is never
   measured leaves the experiment as an entangled, unreleased wire — in a
   measured circuit that is usually a forgotten ancilla. *)
let ancilla_never_released ~file c =
  let measured = measured_qubits c in
  if Array.for_all not measured then []
  else begin
    let touched = Array.make (C.num_qubits c) false in
    C.iter
      (fun _ g ->
        match g with
        | G.Barrier _ -> ()
        | _ -> List.iter (fun q -> touched.(q) <- true) (G.qubits g))
      c;
    let out = ref [] in
    Array.iteri
      (fun q t ->
        if t && not measured.(q) then
          out :=
            diag ~code:"QL304" ~severity:D.Info ~file
              "qubit %d is used but never measured or released (ancilla left \
               entangled)"
              q
            :: !out)
      touched;
    List.rev !out
  end

let check ~file c =
  dead_qubit_after_gate ~file c
  @ zero_slack_chain ~file c @ congestion_hotspot ~file c
  @ ancilla_never_released ~file c
