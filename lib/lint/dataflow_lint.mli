(** Dataflow-analysis lint rules (QL3xx).

    Powered by [Qec_verify.Dataflow]'s liveness, critical-path-slack and
    congestion analyses. All QL3xx rules are advisory ([Info] severity):
    they flag structural inefficiencies — dead results, latency-bound
    chains, congestion hotspots, unreleased ancillas — that a scheduler
    must still execute faithfully, so they never gate an exit code. *)

val check : file:string -> Qec_circuit.Circuit.t -> Diagnostic.t list
(** Run every QL3xx rule: QL301 dead qubit after gate, QL302 zero-slack
    hot chain, QL303 congestion hotspot, QL304 ancilla never released.
    Catalog in docs/lint.md. *)
