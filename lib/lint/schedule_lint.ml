module D = Diagnostic

let diag ?context ~code ~severity ~file fmt =
  Printf.ksprintf (fun m -> D.make ?context ~code ~severity ~file m) fmt

let check_options ~file ?threshold_p ?d () =
  let tp =
    match threshold_p with
    | Some p when p < 0. || p >= 1. ->
      [
        diag ~code:"QL201" ~severity:D.Error ~file
          "threshold_p = %g is outside [0, 1); Scheduler.run would reject it" p;
      ]
    | _ -> []
  in
  let dist =
    match d with
    | Some d when d < 3 ->
      [
        diag ~code:"QL202" ~severity:D.Warning ~file
          "surface code distance %d cannot correct any error (d >= 3 needed)" d;
      ]
    | Some d when d mod 2 = 0 ->
      [
        diag ~code:"QL202" ~severity:D.Warning ~file
          "even surface code distance %d corrects no more errors than %d" d
          (d - 1);
      ]
    | _ -> []
  in
  tp @ dist

let check_trace ~file trace =
  List.map
    (fun (v : Autobraid.Trace.violation) ->
      (* The TV code is the stable handle; round/gate locate the witness. *)
      let context =
        match (v.round, v.gate) with
        | Some r, Some g -> Printf.sprintf "%s, round %d, gate %d" v.code r g
        | Some r, None -> Printf.sprintf "%s, round %d" v.code r
        | None, Some g -> Printf.sprintf "%s, gate %d" v.code g
        | None, None -> v.code
      in
      D.make ~context ~code:"QL210" ~severity:D.Error ~file v.msg)
    (Autobraid.Trace.check trace)
