(** Pass driver: run every applicable pass family over a source, program,
    or circuit and fold the results into one diagnostic list.

    Lint is strictly read-only — it never rewrites the program or the
    circuit, so scheduling results are bit-identical with or without it
    (asserted by test/test_lint.ml). *)

val syntax_error_code : string
(** ["QL000"] — a [Parser.Error] converted into a diagnostic. *)

val elaboration_error_code : string
(** ["QL013"] — elaboration failed in a way no AST rule pre-flighted. *)

val lint_program : file:string -> Qec_qasm.Ast.program -> Diagnostic.t list
(** AST passes only ({!Ast_lint.check}). *)

val lint_circuit : file:string -> Qec_circuit.Circuit.t -> Diagnostic.t list
(** Circuit passes: {!Circuit_lint.check} (QL1xx) followed by
    {!Dataflow_lint.check} (QL3xx). *)

val lint_source : file:string -> string -> Diagnostic.t list
(** Parse (syntax errors become QL000 diagnostics), run AST passes; when
    they report no error-severity diagnostic, elaborate (failures become
    QL013) and run circuit passes on the result. *)

val lint_file : string -> Diagnostic.t list * string
(** {!lint_source} on a file's contents; also returns the source text for
    caret rendering. Raises [Sys_error] on I/O failure. *)

val error_count : ?deny_warning:bool -> Diagnostic.t list -> int
(** Diagnostics at error severity; [deny_warning] promotes warnings. *)

val exit_code : ?deny_warning:bool -> Diagnostic.t list -> int
(** The CLI exit-code policy: 1 when {!error_count} is positive, else 0. *)

val summary : ?deny_warning:bool -> Diagnostic.t list -> string
(** ["N error(s), M warning(s), K info"] after promotion. *)
