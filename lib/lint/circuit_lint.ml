module C = Qec_circuit.Circuit
module G = Qec_circuit.Gate
module D = Diagnostic

let diag ?context ~code ~severity ~file fmt =
  Printf.ksprintf (fun m -> D.make ?context ~code ~severity ~file m) fmt

let gate_context c i =
  Printf.sprintf "gate %d: %s" i (G.to_string (C.gate c i))

(* QL101: a gate is dead when every operand qubit has already seen its final
   measurement — nothing downstream can observe its effect. Circuits without
   any measurement are left alone (they are states, not experiments). *)
let dead_gates ~file c =
  let n = C.num_qubits c in
  let last_measure = Array.make n (-1) in
  C.iter
    (fun i g -> match g with G.Measure q -> last_measure.(q) <- i | _ -> ())
    c;
  if Array.for_all (fun m -> m < 0) last_measure then []
  else begin
    let out = ref [] in
    C.iter
      (fun i g ->
        match g with
        | G.Measure _ | G.Barrier _ -> ()
        | _ ->
          let qs = G.qubits g in
          if
            qs <> []
            && List.for_all (fun q -> last_measure.(q) >= 0 && last_measure.(q) < i) qs
          then
            out :=
              diag ~context:(gate_context c i) ~code:"QL101" ~severity:D.Warning
                ~file "%s acts after the final measurement of all its qubits"
                (G.name g)
              :: !out)
      c;
    List.rev !out
  end

(* QL102: two identical CX gates with no intervening operation on either
   qubit cancel to the identity; the scheduler would braid both. *)
let cancelling_cx ~file c =
  let n = C.num_qubits c in
  let last = Array.make n (-1) in
  let paired = Array.make (C.length c) false in
  let out = ref [] in
  C.iter
    (fun i g ->
      (match g with
      | G.Cx (a, b)
        when last.(a) >= 0 && last.(a) = last.(b)
             && (not paired.(last.(a)))
             && G.equal (C.gate c last.(a)) g ->
        paired.(i) <- true;
        out :=
          diag ~context:(gate_context c i) ~code:"QL102" ~severity:D.Warning
            ~file "adjacent self-cancelling cx pair (gates %d and %d)" last.(a)
            i
          :: !out
      | _ -> ());
      List.iter (fun q -> last.(q) <- i) (G.qubits g))
    c;
  List.rev !out

(* QL103: without two-qubit gates there is nothing to braid; the Full
   scheduler's layout optimization can only add overhead. *)
let no_two_qubit ~file c =
  if C.length c > 0 && C.two_qubit_count c = 0 then
    [
      diag ~code:"QL103" ~severity:D.Info ~file
        "circuit has no two-qubit gates; Full scheduling adds nothing over \
         trivial local rounds";
    ]
  else []

(* QL104: untouched qubits still occupy lattice tiles. Warn when dropping
   them would shrink the (square) lattice the scheduler allocates. *)
let lattice_capacity ~file c =
  let n = C.num_qubits c in
  if n = 0 then []
  else begin
    let touched = Array.make n false in
    C.iter
      (fun _ g ->
        match g with
        | G.Barrier _ -> ()
        | _ -> List.iter (fun q -> touched.(q) <- true) (G.qubits g))
      c;
    let used = Array.fold_left (fun acc t -> if t then acc + 1 else acc) 0 touched in
    if used = 0 || used = n then []
    else begin
      let side = Qec_surface.Resources.lattice_side ~num_logical:n in
      let side' = Qec_surface.Resources.lattice_side ~num_logical:used in
      if side' < side then
        [
          diag ~code:"QL104" ~severity:D.Warning ~file
            "%d of %d qubits are untouched; removing them would shrink the \
             lattice from %dx%d to %dx%d tiles"
            (n - used) n side side side' side';
        ]
      else []
    end
  end

let check ~file c =
  dead_gates ~file c @ cancelling_cx ~file c @ no_two_qubit ~file c
  @ lattice_capacity ~file c
