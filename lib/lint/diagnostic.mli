(** Structured lint diagnostics.

    Every diagnostic carries a stable rule code ([QLxxx] — catalog in
    docs/lint.md), a severity, the originating file, and — when the rule
    fired on QASM source — a {!Qec_qasm.Ast.pos}. Circuit- and
    schedule-level rules have no source position; they point at gates or
    rounds via [context] instead. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_rank : severity -> int
(** [Info] = 0, [Warning] = 1, [Error] = 2 — for threshold comparisons. *)

type t = {
  code : string;  (** stable rule code, e.g. ["QL003"] *)
  severity : severity;
  message : string;
  file : string;  (** file path, benchmark name, or circuit name *)
  pos : Qec_qasm.Ast.pos option;  (** source position when known *)
  context : string option;  (** e.g. ["gate 12: cx q3,q7"] or ["round 4"] *)
}

val make :
  ?pos:Qec_qasm.Ast.pos ->
  ?context:string ->
  code:string ->
  severity:severity ->
  file:string ->
  string ->
  t

val compare_by_pos : t -> t -> int
(** Source order (position, then code); positionless diagnostics sort
    last. *)

val location_string : t -> string
(** ["file:line:col"], or just ["file"] without a position. *)

val to_string : t -> string
(** One line: ["file:line:col: severity[QLxxx]: message (context)"]. *)

val render : ?source:string -> t -> string
(** {!to_string} plus, when [source] is given and the diagnostic has a
    position inside it, the offending source line with a caret under the
    column. *)

val to_jsonl : t -> string
(** One compact JSON object (no trailing newline) with fields [code],
    [severity], [file], [line], [col], [message], and [context] when
    present; positionless diagnostics report [line = 0], [col = 0]. *)
