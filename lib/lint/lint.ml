module Ast = Qec_qasm.Ast
module Parser = Qec_qasm.Parser
module Frontend = Qec_qasm.Frontend
module D = Diagnostic

let syntax_error_code = "QL000"

let elaboration_error_code = "QL013"

let lint_program = Ast_lint.check

let lint_circuit ~file c = Circuit_lint.check ~file c @ Dataflow_lint.check ~file c

let lint_source ~file src =
  match Parser.parse_string src with
  | exception Parser.Error { line; col; msg } ->
    [
      D.make ~pos:{ Ast.line; col } ~code:syntax_error_code ~severity:D.Error
        ~file ("syntax error: " ^ msg);
    ]
  | program -> (
    let ast_diags = Ast_lint.check ~file program in
    if List.exists (fun (d : D.t) -> d.severity = D.Error) ast_diags then
      (* Elaboration would throw on (a superset of) these; stop here so every
         problem is reported as a span-carrying diagnostic, not an exception. *)
      ast_diags
    else
      match Frontend.elaborate ~name:file program with
      | circuit -> ast_diags @ lint_circuit ~file circuit
      | exception Frontend.Unsupported { pos; msg } ->
        ast_diags
        @ [ D.make ?pos ~code:elaboration_error_code ~severity:D.Error ~file msg ]
      | exception Qec_circuit.Circuit.Invalid msg ->
        ast_diags
        @ [ D.make ~code:elaboration_error_code ~severity:D.Error ~file msg ])

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path =
  let src = read_file path in
  (lint_source ~file:path src, src)

let effective_severity ~deny_warning (d : D.t) =
  if deny_warning && d.severity = D.Warning then D.Error else d.severity

let error_count ?(deny_warning = false) diags =
  List.length
    (List.filter (fun d -> effective_severity ~deny_warning d = D.Error) diags)

let exit_code ?(deny_warning = false) diags =
  if error_count ~deny_warning diags > 0 then 1 else 0

let summary ?(deny_warning = false) diags =
  let count sev =
    List.length
      (List.filter (fun d -> effective_severity ~deny_warning d = sev) diags)
  in
  Printf.sprintf "%d error(s), %d warning(s), %d info" (count D.Error)
    (count D.Warning) (count D.Info)
