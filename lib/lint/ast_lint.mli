(** AST-level lint passes (QL0xx) over a parsed OpenQASM program.

    A single forward walk mirrors the frontend's elaboration environment,
    so every [Frontend.Unsupported] failure mode has a span-carrying
    pre-flight rule here, plus hygiene rules elaboration never checks
    (unused qubits, shadowed declarations, use-after-measure).

    Rules (catalog with examples in docs/lint.md):

    - QL001 (error): use of an undeclared quantum/classical register
    - QL002 (error): register index out of range
    - QL003 (error): duplicate operand in one gate application
    - QL004 (error): unknown gate
    - QL005 (error): wrong parameter count
    - QL006 (error): wrong operand count
    - QL007 (error): mismatched register sizes in a broadcast application
    - QL008 (error): qreg declared after the first gate
    - QL009 (error): duplicate register declaration
    - QL010 (error): invalid gate declaration body
    - QL011 (error): program declares no quantum register
    - QL012 (error): unsupported OPENQASM version
    - QL020 (warning): qubit used after measurement without reset
    - QL021 (warning): unused qubit(s) in a qreg
    - QL022 (warning): unused creg
    - QL023 (warning): gate declaration shadows a builtin or earlier one
    - QL024 (warning): measure broadcast into a creg of different size *)

val check : file:string -> Qec_qasm.Ast.program -> Diagnostic.t list
(** Diagnostics in source order. An empty list means the program passes
    every AST rule; elaboration may still fail only on conditions these
    rules cannot see statically (none known today). *)
