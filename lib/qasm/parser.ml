exception Error of { line : int; col : int; msg : string }

type state = { mutable toks : Lexer.t list }

let fail (tk : Lexer.t) msg = raise (Error { line = tk.line; col = tk.col; msg })

let peek st =
  match st.toks with [] -> assert false (* Eof sentinel *) | t :: _ -> t

let advance st =
  match st.toks with
  | [] -> assert false
  | _ :: rest -> if rest <> [] then st.toks <- rest

let expect st tok what =
  let t = peek st in
  if t.token = tok then advance st else fail t ("expected " ^ what)

let expect_id st =
  let t = peek st in
  match t.token with
  | Lexer.Id s ->
    advance st;
    s
  | _ -> fail t "expected identifier"

let expect_int st =
  let t = peek st in
  match t.token with
  | Lexer.Integer i ->
    advance st;
    i
  | _ -> fail t "expected integer"

(* Expression grammar: additive > multiplicative > power > unary > atom. *)
let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = parse_multiplicative st in
  let rec go lhs =
    match (peek st).token with
    | Lexer.Plus ->
      advance st;
      go (Ast.Add (lhs, parse_multiplicative st))
    | Lexer.Minus ->
      advance st;
      go (Ast.Sub (lhs, parse_multiplicative st))
    | _ -> lhs
  in
  go lhs

and parse_multiplicative st =
  let lhs = parse_power st in
  let rec go lhs =
    match (peek st).token with
    | Lexer.Star ->
      advance st;
      go (Ast.Mul (lhs, parse_power st))
    | Lexer.Slash ->
      advance st;
      go (Ast.Div (lhs, parse_power st))
    | _ -> lhs
  in
  go lhs

and parse_power st =
  let base = parse_unary st in
  match (peek st).token with
  | Lexer.Caret ->
    advance st;
    (* right associative *)
    Ast.Pow (base, parse_power st)
  | _ -> base

and parse_unary st =
  match (peek st).token with
  | Lexer.Minus ->
    advance st;
    Ast.Neg (parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  let t = peek st in
  match t.token with
  | Lexer.Number f ->
    advance st;
    Ast.Num f
  | Lexer.Integer i ->
    advance st;
    Ast.Num (float_of_int i)
  | Lexer.Id "pi" ->
    advance st;
    Ast.Pi
  | Lexer.Id s ->
    advance st;
    Ast.Ident s
  | Lexer.Lparen ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.Rparen ")";
    e
  | _ -> fail t "expected expression"

let parse_arg st =
  let name = expect_id st in
  match (peek st).token with
  | Lexer.Lbracket ->
    advance st;
    let idx = expect_int st in
    expect st Lexer.Rbracket "]";
    Ast.Indexed (name, idx)
  | _ -> Ast.Whole name

let parse_args st =
  let rec go acc =
    let a = parse_arg st in
    match (peek st).token with
    | Lexer.Comma ->
      advance st;
      go (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  go []

let parse_params st =
  (* Optional parenthesized expression list after a gate name. *)
  match (peek st).token with
  | Lexer.Lparen ->
    advance st;
    if (peek st).token = Lexer.Rparen then begin
      advance st;
      []
    end
    else begin
      let rec go acc =
        let e = parse_expr st in
        match (peek st).token with
        | Lexer.Comma ->
          advance st;
          go (e :: acc)
        | _ ->
          expect st Lexer.Rparen ")";
          List.rev (e :: acc)
      in
      go []
    end
  | _ -> []

let pos_of (tk : Lexer.t) = { Ast.line = tk.line; col = tk.col }

let parse_gate_app st ~pos name =
  let gparams = parse_params st in
  let gargs = parse_args st in
  expect st Lexer.Semicolon ";";
  { Ast.gname = name; gparams; gargs; gpos = pos }

let parse_gate_decl st =
  let name = expect_id st in
  let params =
    match (peek st).token with
    | Lexer.Lparen ->
      advance st;
      if (peek st).token = Lexer.Rparen then begin
        advance st;
        []
      end
      else begin
        let rec go acc =
          let p = expect_id st in
          match (peek st).token with
          | Lexer.Comma ->
            advance st;
            go (p :: acc)
          | _ ->
            expect st Lexer.Rparen ")";
            List.rev (p :: acc)
        in
        go []
      end
    | _ -> []
  in
  let rec formals acc =
    let f = expect_id st in
    match (peek st).token with
    | Lexer.Comma ->
      advance st;
      formals (f :: acc)
    | _ -> List.rev (f :: acc)
  in
  let formals = formals [] in
  expect st Lexer.Lbrace "{";
  let rec body acc =
    let t = peek st in
    match t.token with
    | Lexer.Rbrace ->
      advance st;
      List.rev acc
    | Lexer.Id "barrier" ->
      advance st;
      let _ = parse_args st in
      expect st Lexer.Semicolon ";";
      body acc
    | Lexer.Id g ->
      advance st;
      body (parse_gate_app st ~pos:(pos_of t) g :: acc)
    | _ -> fail t "expected gate application in gate body"
  in
  let body = body [] in
  Ast.Gate_decl { name; params; formals; body }

let parse_stmt st : Ast.node option =
  let t = peek st in
  let at stmt = Some { Ast.stmt; pos = pos_of t } in
  match t.token with
  | Lexer.Eof -> None
  | Lexer.Id "OPENQASM" ->
    advance st;
    let v =
      match (peek st).token with
      | Lexer.Number f ->
        advance st;
        Printf.sprintf "%.1f" f
      | Lexer.Integer i ->
        advance st;
        string_of_int i
      | _ -> fail (peek st) "expected version number"
    in
    expect st Lexer.Semicolon ";";
    at (Ast.Version v)
  | Lexer.Id "include" ->
    advance st;
    let f =
      match (peek st).token with
      | Lexer.Str s ->
        advance st;
        s
      | _ -> fail (peek st) "expected file name string"
    in
    expect st Lexer.Semicolon ";";
    at (Ast.Include f)
  | Lexer.Id "qreg" ->
    advance st;
    let name = expect_id st in
    expect st Lexer.Lbracket "[";
    let size = expect_int st in
    expect st Lexer.Rbracket "]";
    expect st Lexer.Semicolon ";";
    at (Ast.Qreg (name, size))
  | Lexer.Id "creg" ->
    advance st;
    let name = expect_id st in
    expect st Lexer.Lbracket "[";
    let size = expect_int st in
    expect st Lexer.Rbracket "]";
    expect st Lexer.Semicolon ";";
    at (Ast.Creg (name, size))
  | Lexer.Id "gate" ->
    advance st;
    at (parse_gate_decl st)
  | Lexer.Id "measure" ->
    advance st;
    let src = parse_arg st in
    expect st Lexer.Arrow "->";
    let dst = parse_arg st in
    expect st Lexer.Semicolon ";";
    at (Ast.Measure (src, dst))
  | Lexer.Id "reset" ->
    advance st;
    let a = parse_arg st in
    expect st Lexer.Semicolon ";";
    at (Ast.Reset a)
  | Lexer.Id "barrier" ->
    advance st;
    let args = parse_args st in
    expect st Lexer.Semicolon ";";
    at (Ast.Barrier args)
  | Lexer.Id "if" -> fail t "classical control (if) is not supported"
  | Lexer.Id "opaque" -> fail t "opaque gates are not supported"
  | Lexer.Id g ->
    advance st;
    at (Ast.App (parse_gate_app st ~pos:(pos_of t) g))
  | _ -> fail t "expected statement"

let parse_tokens toks =
  let st = { toks } in
  let rec go acc =
    match parse_stmt st with
    | None -> List.rev acc
    | Some s -> go (s :: acc)
  in
  go []

let parse_string src =
  match Lexer.tokenize src with
  | toks -> parse_tokens toks
  | exception Lexer.Error { line; col; msg } -> raise (Error { line; col; msg })
