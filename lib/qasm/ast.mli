(** Abstract syntax for the supported OpenQASM 2.0 subset.

    Every statement — and every gate application, including those inside
    [gate] declaration bodies — carries the 1-based source position of its
    first token, threaded from {!Lexer.t} by the parser. Positions power
    the diagnostics in [Qec_lint] and the [file:line:col] error reporting
    of the CLI. *)

type pos = { line : int; col : int }
(** 1-based source position. *)

val no_pos : pos
(** [{ line = 0; col = 0 }] — for synthesized nodes with no source. *)

val pp_pos : Format.formatter -> pos -> unit
(** Prints [line:col]. *)

type expr =
  | Num of float
  | Pi
  | Ident of string  (** gate formal parameter *)
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Pow of expr * expr

type arg =
  | Whole of string  (** a full register, broadcast over its qubits *)
  | Indexed of string * int

type gate_app = {
  gname : string;
  gparams : expr list;
  gargs : arg list;
  gpos : pos;  (** position of the gate name token *)
}

type stmt =
  | Version of string
  | Include of string
  | Qreg of string * int
  | Creg of string * int
  | Gate_decl of {
      name : string;
      params : string list;
      formals : string list;
      body : gate_app list;
    }
  | App of gate_app
  | Measure of arg * arg
  | Reset of arg
  | Barrier of arg list

type node = { stmt : stmt; pos : pos }
(** A statement with the position of its first token. *)

type program = node list

val strip : program -> stmt list
(** Drop positions — convenience for pattern-matching on structure. *)

val eval_expr : (string -> float) -> expr -> float
(** Evaluate with the given binding for formal parameters. Raises
    [Invalid_argument] via the binding function on unknown identifiers. *)

val pp_expr : Format.formatter -> expr -> unit
