exception Unsupported of { pos : Ast.pos option; msg : string }

module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let unsupported fmt =
  Printf.ksprintf (fun s -> raise (Unsupported { pos = None; msg = s })) fmt

type decl = { params : string list; formals : string list; body : Ast.gate_app list }

type env = {
  qregs : (string, int * int) Hashtbl.t; (* name -> offset, size *)
  cregs : (string, int) Hashtbl.t; (* name -> size; values unused *)
  decls : (string, decl) Hashtbl.t;
  builder : C.Builder.t option ref; (* created lazily after qregs known *)
  mutable total_qubits : int;
}

let builder env =
  match !(env.builder) with
  | Some b -> b
  | None -> unsupported "gate application before any qreg declaration"

(* Resolve an argument to the list of flat qubit indices it denotes:
   one for Indexed, the whole register for Whole. *)
let resolve_arg env = function
  | Ast.Indexed (reg, i) -> (
    match Hashtbl.find_opt env.qregs reg with
    | None -> unsupported "unknown quantum register %s" reg
    | Some (off, size) ->
      if i < 0 || i >= size then
        unsupported "index %d out of range for qreg %s[%d]" i reg size;
      [ off + i ])
  | Ast.Whole reg -> (
    match Hashtbl.find_opt env.qregs reg with
    | None -> unsupported "unknown quantum register %s" reg
    | Some (off, size) -> List.init size (fun i -> off + i))

(* OpenQASM broadcasting: whole-register operands of equal size [s] expand
   an application into [s] copies; single-qubit operands are repeated. *)
let broadcast operand_lists =
  let sizes =
    List.filter_map
      (fun l -> if List.length l > 1 then Some (List.length l) else None)
      operand_lists
  in
  let width =
    match sizes with
    | [] -> 1
    | s :: rest ->
      if List.exists (( <> ) s) rest then
        unsupported "mismatched register sizes in broadcast application";
      s
  in
  List.init width (fun i ->
      List.map
        (fun l -> match l with [ q ] -> q | _ -> List.nth l i)
        operand_lists)

let apply_builtin env gname (ps : float list) (qs : int list) =
  let b = builder env in
  let add = C.Builder.add b in
  let p i = List.nth ps i in
  let bad_arity () = unsupported "%s: wrong operand count" gname in
  let bad_params () = unsupported "%s: wrong parameter count" gname in
  let one f = match qs with [ q ] -> add (f q) | _ -> bad_arity () in
  let two f = match qs with [ a; b' ] -> add (f a b') | _ -> bad_arity () in
  match (gname, List.length ps) with
  | "h", 0 -> one (fun q -> G.H q)
  | "x", 0 -> one (fun q -> G.X q)
  | "y", 0 -> one (fun q -> G.Y q)
  | "z", 0 -> one (fun q -> G.Z q)
  | "s", 0 -> one (fun q -> G.S q)
  | "sdg", 0 -> one (fun q -> G.Sdg q)
  | "t", 0 -> one (fun q -> G.T q)
  | "tdg", 0 -> one (fun q -> G.Tdg q)
  | "id", 0 -> ( match qs with [ _ ] -> () | _ -> bad_arity ())
  | "sx", 0 -> one (fun q -> G.Rx (q, Float.pi /. 2.))
  | "sxdg", 0 -> one (fun q -> G.Rx (q, -.Float.pi /. 2.))
  | "rx", 1 -> one (fun q -> G.Rx (q, p 0))
  | "ry", 1 -> one (fun q -> G.Ry (q, p 0))
  | "rz", 1 -> one (fun q -> G.Rz (q, p 0))
  | ("p" | "u1"), 1 -> one (fun q -> G.Rz (q, p 0))
  | "u2", 2 -> one (fun q -> G.U3 (q, Float.pi /. 2., p 0, p 1))
  | ("u3" | "u" | "U"), 3 -> one (fun q -> G.U3 (q, p 0, p 1, p 2))
  | ("cx" | "CX"), 0 -> two (fun a b' -> G.Cx (a, b'))
  | "cz", 0 -> two (fun a b' -> G.Cz (a, b'))
  | ("cp" | "cu1" | "crz"), 1 -> two (fun a b' -> G.Cphase (a, b', p 0))
  | "swap", 0 -> two (fun a b' -> G.Swap (a, b'))
  | "ccx", 0 -> (
    match qs with [ a; b'; c ] -> add (G.Ccx (a, b', c)) | _ -> bad_arity ())
  | "cswap", 0 -> (
    match qs with
    | [ c; x; y ] ->
      add (G.Ccx (c, x, y));
      add (G.Ccx (c, y, x));
      add (G.Ccx (c, x, y))
    | _ -> bad_arity ())
  | ( ( "h" | "x" | "y" | "z" | "s" | "sdg" | "t" | "tdg" | "id" | "sx"
      | "sxdg" | "rx" | "ry" | "rz" | "p" | "u1" | "u2" | "u3" | "u" | "U"
      | "cx" | "CX" | "cz" | "cp" | "cu1" | "crz" | "swap" | "ccx" | "cswap" ),
      _ ) ->
    bad_params ()
  | _ -> unsupported "unknown gate %s" gname

let builtin_signature = function
  | "h" | "x" | "y" | "z" | "s" | "sdg" | "t" | "tdg" | "id" | "sx" | "sxdg" ->
    Some (0, 1)
  | "rx" | "ry" | "rz" | "p" | "u1" -> Some (1, 1)
  | "u2" -> Some (2, 1)
  | "u3" | "u" | "U" -> Some (3, 1)
  | "cx" | "CX" | "cz" | "swap" -> Some (0, 2)
  | "cp" | "cu1" | "crz" -> Some (1, 2)
  | "ccx" | "cswap" -> Some (0, 3)
  | _ -> None

let is_builtin name = builtin_signature name <> None

(* Apply a (possibly user-declared) gate to concrete qubits with concrete
   parameter values. User gates expand recursively; QASM guarantees bodies
   reference only earlier declarations, so this terminates. *)
let rec apply_gate env gname (ps : float list) (qs : int list) =
  if is_builtin gname then apply_builtin env gname ps qs
  else
    match Hashtbl.find_opt env.decls gname with
    | None -> unsupported "unknown gate %s" gname
    | Some d ->
      if List.length ps <> List.length d.params then
        unsupported "%s: expected %d parameters" gname (List.length d.params);
      if List.length qs <> List.length d.formals then
        unsupported "%s: expected %d operands" gname (List.length d.formals);
      let param_env name =
        match List.combine d.params ps |> List.assoc_opt name with
        | Some v -> v
        | None -> unsupported "%s: unknown parameter %s" gname name
      in
      let qubit_of_formal f =
        match List.combine d.formals qs |> List.assoc_opt f with
        | Some q -> q
        | None -> unsupported "%s: unknown formal operand %s" gname f
      in
      List.iter
        (fun (app : Ast.gate_app) ->
          let ps' = List.map (Ast.eval_expr param_env) app.gparams in
          let qs' =
            List.map
              (function
                | Ast.Whole f -> qubit_of_formal f
                | Ast.Indexed _ ->
                  unsupported "%s: indexing inside gate body" gname)
              app.gargs
          in
          apply_gate env app.gname ps' qs')
        d.body

let no_params name = fun (_ : string) -> unsupported "%s: free parameter" name

let elaborate_app env (app : Ast.gate_app) =
  let ps = List.map (Ast.eval_expr (no_params app.gname)) app.gparams in
  let operand_lists = List.map (resolve_arg env) app.gargs in
  List.iter (fun qs -> apply_gate env app.gname ps qs) (broadcast operand_lists)

let elaborate ?(name = "qasm") program =
  let env =
    {
      qregs = Hashtbl.create 4;
      cregs = Hashtbl.create 4;
      decls = Hashtbl.create 16;
      builder = ref None;
      total_qubits = 0;
    }
  in
  let ensure_builder () =
    if !(env.builder) = None && env.total_qubits > 0 then
      env.builder :=
        Some (C.Builder.create ~name ~num_qubits:env.total_qubits ())
  in
  let elaborate_stmt stmt =
      match (stmt : Ast.stmt) with
      | Ast.Version v ->
        if v <> "2.0" then unsupported "OPENQASM version %s" v
      | Ast.Include _ -> () (* qelib1.inc built-ins are native *)
      | Ast.Qreg (reg, size) ->
        if !(env.builder) <> None then
          unsupported "qreg %s declared after first gate" reg;
        if Hashtbl.mem env.qregs reg then unsupported "duplicate qreg %s" reg;
        Hashtbl.add env.qregs reg (env.total_qubits, size);
        env.total_qubits <- env.total_qubits + size
      | Ast.Creg (reg, size) -> Hashtbl.replace env.cregs reg size
      | Ast.Gate_decl { name = gname; params; formals; body } ->
        Hashtbl.replace env.decls gname { params; formals; body }
      | Ast.App app ->
        ensure_builder ();
        elaborate_app env app
      | Ast.Measure (src, _dst) ->
        ensure_builder ();
        List.iter
          (fun q -> C.Builder.add (builder env) (G.Measure q))
          (resolve_arg env src)
      | Ast.Reset a ->
        ensure_builder ();
        (* Reset is a local (in-tile) operation; model it as a local
           measurement for scheduling purposes. *)
        List.iter
          (fun q -> C.Builder.add (builder env) (G.Measure q))
          (resolve_arg env a)
      | Ast.Barrier args ->
        ensure_builder ();
        let qs = List.concat_map (resolve_arg env) args in
        C.Builder.add (builder env) (G.Barrier (List.sort_uniq compare qs))
  in
  List.iter
    (fun { Ast.stmt; pos } ->
      (* Attach the statement's source position to errors raised anywhere
         below it (including inside expanded user-gate bodies). *)
      try elaborate_stmt stmt with
      | Unsupported { pos = None; msg } ->
        raise (Unsupported { pos = Some pos; msg }))
    program;
  ensure_builder ();
  match !(env.builder) with
  | Some b -> C.Builder.finish b
  | None -> unsupported "program declares no quantum register"

let of_string ?name src = elaborate ?name (Parser.parse_string src)

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  of_string ~name src
