type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

let pp_pos ppf { line; col } = Format.fprintf ppf "%d:%d" line col

type expr =
  | Num of float
  | Pi
  | Ident of string
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Pow of expr * expr

type arg = Whole of string | Indexed of string * int

type gate_app = {
  gname : string;
  gparams : expr list;
  gargs : arg list;
  gpos : pos;
}

type stmt =
  | Version of string
  | Include of string
  | Qreg of string * int
  | Creg of string * int
  | Gate_decl of {
      name : string;
      params : string list;
      formals : string list;
      body : gate_app list;
    }
  | App of gate_app
  | Measure of arg * arg
  | Reset of arg
  | Barrier of arg list

type node = { stmt : stmt; pos : pos }

type program = node list

let strip program = List.map (fun n -> n.stmt) program

let rec eval_expr env = function
  | Num f -> f
  | Pi -> Float.pi
  | Ident s -> env s
  | Neg e -> -.eval_expr env e
  | Add (a, b) -> eval_expr env a +. eval_expr env b
  | Sub (a, b) -> eval_expr env a -. eval_expr env b
  | Mul (a, b) -> eval_expr env a *. eval_expr env b
  | Div (a, b) -> eval_expr env a /. eval_expr env b
  | Pow (a, b) -> eval_expr env a ** eval_expr env b

let rec pp_expr ppf = function
  | Num f -> Format.fprintf ppf "%g" f
  | Pi -> Format.fprintf ppf "pi"
  | Ident s -> Format.fprintf ppf "%s" s
  | Neg e -> Format.fprintf ppf "(-%a)" pp_expr e
  | Add (a, b) -> Format.fprintf ppf "(%a+%a)" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf ppf "(%a-%a)" pp_expr a pp_expr b
  | Mul (a, b) -> Format.fprintf ppf "(%a*%a)" pp_expr a pp_expr b
  | Div (a, b) -> Format.fprintf ppf "(%a/%a)" pp_expr a pp_expr b
  | Pow (a, b) -> Format.fprintf ppf "(%a^%a)" pp_expr a pp_expr b
