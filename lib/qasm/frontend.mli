(** Elaboration of parsed OpenQASM into a flat {!Qec_circuit.Circuit.t}.

    All quantum registers are flattened into one index space in declaration
    order. User-declared gates are macro-expanded at application sites.
    Supported built-ins: h x y z s sdg t tdg id sx sxdg rx ry rz p u1 u2 u3
    U cx CX cz cp cu1 crz swap ccx cswap measure reset barrier.

    Scheduling-preserving approximations (documented in DESIGN.md): [crz]
    is treated as [cp] (same interaction, different relative phase) and
    [reset] as a local measurement. *)

exception Unsupported of { pos : Ast.pos option; msg : string }
(** Raised on gate names or features outside the subset. [pos] is the
    source position of the offending statement when elaboration started
    from a parsed program; [None] for errors with no single source site
    (e.g. a program that declares no quantum register). *)

val is_builtin : string -> bool
(** True for the natively supported gate names listed above. *)

val builtin_signature : string -> (int * int) option
(** [(parameter count, operand count)] for a builtin gate name; [None]
    for unknown names. Used by [Qec_lint] to pre-flight applications
    before elaboration can raise {!Unsupported}. *)

val elaborate : ?name:string -> Ast.program -> Qec_circuit.Circuit.t
(** Raises {!Unsupported}, or {!Qec_circuit.Circuit.Invalid} on
    inconsistent register use (bad index, arity mismatch, duplicate
    operand). *)

val of_string : ?name:string -> string -> Qec_circuit.Circuit.t
(** Parse ({!Parser.parse_string}) then elaborate. *)

val of_file : string -> Qec_circuit.Circuit.t
(** Read, parse, elaborate; circuit named after the file's basename.
    Raises [Sys_error] on I/O failure. *)
