(** Recursive-bisection embedding of the coupling graph onto the lattice.

    Reproduces the role of "metis" in the paper's initial placement:
    frequently-interacting qubits end up in compact grid regions. The grid
    rectangle is split along its longer axis; the qubit set is bisected
    proportionally ({!Bisect}); recursion bottoms out at single cells.

    Coupling graphs of maximal degree 2 skip all that and use the snake
    embedding directly (the paper's "optimizing for special graphs with
    maximal degree of two"). *)

val layout :
  ?seed:int ->
  ?rng:Qec_util.Rng.t ->
  ?snake:bool ->
  Qec_circuit.Coupling.t ->
  Qec_lattice.Grid.t ->
  Qec_lattice.Placement.t
(** Deterministic in [seed]. [rng] supplies the sampling state explicitly
    (advancing the caller's generator); when absent a fresh state is
    derived from [seed] — no code path ever touches the global [Random].
    [snake] (default true) enables the degree-2 special case; disable it
    for the plain-bisection ablation. Raises [Invalid_argument] if the
    grid has fewer cells than qubits. *)
