module Coupling = Qec_circuit.Coupling
module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement

type rect = { x0 : int; y0 : int; x1 : int; y1 : int (* inclusive cells *) }

let rect_area r = (r.x1 - r.x0 + 1) * (r.y1 - r.y0 + 1)

let layout ?(seed = 17) ?rng ?(snake = true) coupling grid =
  let n = Coupling.num_qubits coupling in
  if n > Grid.num_cells grid then invalid_arg "Embed.layout: grid too small";
  match (if snake then Coupling.chain_order coupling else None) with
  | Some order -> Placement.of_order grid order
  | None ->
    let rng =
      match rng with Some r -> r | None -> Qec_util.Rng.create seed
    in
    let weight a b = Coupling.weight coupling a b in
    let neighbors q = List.map fst (Coupling.neighbors coupling q) in
    let cells = Array.make n (-1) in
    let rec place rect qubits =
      match qubits with
      | [] -> ()
      | [ q ] -> cells.(q) <- Grid.cell_id grid ~x:rect.x0 ~y:rect.y0
      | _ ->
        let w = rect.x1 - rect.x0 + 1 and h = rect.y1 - rect.y0 + 1 in
        let ra, rb =
          if w >= h then begin
            let mid = rect.x0 + ((w - 1) / 2) in
            ({ rect with x1 = mid }, { rect with x0 = mid + 1 })
          end
          else begin
            let mid = rect.y0 + ((h - 1) / 2) in
            ({ rect with y1 = mid }, { rect with y0 = mid + 1 })
          end
        in
        let cap_a = rect_area ra and cap_b = rect_area rb in
        let k = List.length qubits in
        (* Fill proportionally to capacity so both halves always fit. *)
        let size_a = min cap_a (max (k - cap_b) (k * cap_a / (cap_a + cap_b))) in
        let qa, qb = Bisect.bisect ~rng ~weight ~neighbors ~size_a qubits in
        place ra qa;
        place rb qb
    in
    let l = Grid.side grid in
    place { x0 = 0; y0 = 0; x1 = l - 1; y1 = l - 1 } (List.init n (fun q -> q));
    Placement.create grid ~num_qubits:n ~cells
