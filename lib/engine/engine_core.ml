(* The pure, re-entrant half of the engine: everything needed to execute
   one compile spec on ANY domain, with no process-global side effects.

   What lives here: spec validation, circuit loading, the single-spec
   execution path (placement-cache replay, backend dispatch, optional
   self-certification), and the deterministic JSONL rendering of job
   records. None of it installs telemetry sinks, spawns domains, touches
   signals, or writes to stdout/stderr — that is Engine's (the IO shell's)
   job. The only shared state a call can touch is the caller-supplied
   [Placement_cache.t], which synchronizes internally; two domains may run
   [exec_safe] concurrently against the same cache.

   Precondition: the communication-backend registry must already be
   populated ([Engine.ensure_backends] — the shell calls it in every
   entry point; long-lived callers like Qec_serve call it once at
   startup). *)

module Json = Qec_report.Json
module Circuit = Qec_circuit.Circuit
module Decompose = Qec_circuit.Decompose
module Scheduler = Autobraid.Scheduler
module CB = Autobraid.Comm_backend
module Timing = Qec_surface.Timing

type error = { kind : string; message : string }

type payload = {
  backend : string;
  result : Scheduler.result;
  stats : (string * float) list;
  trace : Autobraid.Trace.t option;
  curve : (float * Scheduler.result) list option;
  peephole : (Qec_circuit.Optimize.stats * int * int) option;
  certificate : Qec_verify.Certifier.t option;
}

type cache_status = Memory_hit | Disk_hit | Miss | Uncached

let cache_status_to_string = function
  | Memory_hit -> "memory-hit"
  | Disk_hit -> "disk-hit"
  | Miss -> "miss"
  | Uncached -> "uncached"

type job = {
  index : int;
  spec : Spec.t;
  elapsed_s : float;
  cache : cache_status;
  outcome : (payload, error) result;
}

(* ---------------- circuit loading ---------------- *)

(* Mirrors the CLI's loader, but every failure becomes a structured error
   record (message formats match what `guarded` always printed, so single-
   job wrappers keep their diagnostics byte-for-byte). *)
let load_circuit spec =
  let file = spec.Spec.circuit in
  let err kind fmt = Printf.ksprintf (fun message -> Error { kind; message }) fmt in
  if Sys.file_exists file then
    match
      if Filename.check_suffix file ".real" then
        Qec_revlib.Real_parser.of_file file
      else Qec_qasm.Frontend.of_file file
    with
    | c -> Ok c
    | exception Qec_qasm.Lexer.Error { line; col; msg } ->
      err "parse" "%s:%d:%d: %s" file line col msg
    | exception Qec_qasm.Parser.Error { line; col; msg } ->
      err "parse" "%s:%d:%d: %s" file line col msg
    | exception Qec_qasm.Frontend.Unsupported { pos = Some { line; col }; msg }
      ->
      err "unsupported" "%s:%d:%d: %s" file line col msg
    | exception Qec_qasm.Frontend.Unsupported { pos = None; msg } ->
      err "unsupported" "%s: %s" file msg
    | exception Qec_revlib.Real_parser.Error { line; msg } ->
      err "parse" "%s:%d: %s" file line msg
    | exception Circuit.Invalid msg ->
      err "invalid-circuit" "%s: invalid circuit: %s" file msg
    | exception Sys_error msg -> err "io" "%s" msg
  else
    match Qec_benchmarks.Registry.build file with
    | c -> Ok c
    | exception Not_found ->
      err "circuit-not-found"
        "unknown circuit %S (not a file, not a benchmark; try `autobraid \
         list`)"
        file

(* ---------------- single spec ---------------- *)

(* Compat shim: pre-redesign manifests carry braid's knobs in the spec's
   [scheduler]/[threshold_p] fields. Merge them underneath the explicit
   [backend_options] (which therefore win) so old manifests keep their
   exact meaning. Only braid declares these keys; for other backends the
   legacy fields are braid-only noise and must not reach the decoder. *)
let legacy_options (spec : Spec.t) =
  if spec.backend <> "braid" then []
  else
    [
      ( "variant",
        CB.Options.String
          (match spec.scheduler with Spec.Sp -> "sp" | _ -> "full") );
      ("threshold_p", CB.Options.Float spec.threshold_p);
    ]

let exec cache (spec : Spec.t) =
  let ( let* ) = Result.bind in
  let cache_status = ref Uncached in
  let* () =
    Result.map_error
      (fun message -> { kind = "invalid-spec"; message })
      (Spec.validate spec)
  in
  let* circuit = load_circuit spec in
  let peephole = ref None in
  let circuit =
    if spec.optimize then begin
      let before = Circuit.length circuit in
      let c', stats = Qec_circuit.Optimize.peephole circuit in
      peephole := Some (stats, before, Circuit.length c');
      c'
    end
    else circuit
  in
  let timing = Timing.make ~d:spec.d () in
  match spec.scheduler with
  | Spec.Baseline ->
    let* opts =
      Result.map_error
        (fun message ->
          { kind = "invalid-spec"; message = "backend_options: " ^ message })
        (CB.Options.decode Gp_baseline.options_spec spec.backend_options)
    in
    let result =
      Gp_baseline.run
        ~options:
          (Gp_baseline.of_backend_options opts
             { Gp_baseline.default_options with seed = spec.seed })
        timing circuit
    in
    Ok
      ( {
          backend = "gp-baseline";
          result;
          stats = [];
          trace = None;
          curve = None;
          peephole = !peephole;
          certificate = None;
        },
        !cache_status )
  | Spec.Full | Spec.Sp -> (
    (* The placement the scheduler would compute internally, replayed
       through the cache when one is installed. The lowering mirrors the
       schedulers' own entry so key and placement agree with them. *)
    let placement =
      match cache with
      | None -> None
      | Some cache ->
        let lowered = Decompose.to_scheduler_gates circuit in
        let n = Circuit.num_qubits lowered in
        let side =
          max 1 (Qec_surface.Resources.lattice_side ~num_logical:n)
        in
        let before = Placement_cache.counters cache in
        let p =
          Placement_cache.find_or_place cache ~circuit:lowered ~side
            ~method_:spec.initial ~seed:spec.seed
        in
        let after = Placement_cache.counters cache in
        cache_status :=
          if after.misses > before.misses then Miss
          else if after.disk_hits > before.disk_hits then Disk_hit
          else Memory_hit;
        Some p
    in
    let config = { CB.initial = spec.initial; seed = spec.seed; placement } in
    if spec.best_p then begin
      let options =
        {
          Scheduler.default_options with
          threshold_p = spec.threshold_p;
          initial = spec.initial;
          seed = spec.seed;
          placement_override = placement;
        }
      in
      let best, curve = Scheduler.run_best_p ~options timing circuit in
      Ok
        ( {
            backend = spec.backend;
            result = best;
            stats = [];
            trace = None;
            curve = Some curve;
            peephole = !peephole;
            certificate = None;
          },
          !cache_status )
    end
    else
      match CB.of_name spec.backend with
      | None ->
        Error
          {
            kind = "unknown-backend";
            message =
              Printf.sprintf "unknown backend %S (registered: %s)"
                spec.backend
                (String.concat ", " (CB.names ()));
          }
      | Some entry ->
        let* opts =
          Result.map_error
            (fun message ->
              {
                kind = "invalid-spec";
                message = "backend_options: " ^ message;
              })
            (CB.Options.decode entry.CB.options
               (legacy_options spec @ spec.backend_options))
        in
        let outcome = (entry.CB.ctor config opts).CB.run timing circuit in
        (* Self-certification happens here, on the caller's own domain,
           so batch workers and serve workers certify in parallel with no
           extra plumbing. *)
        let certificate =
          if spec.outputs.Spec.certificate then
            Some
              (Qec_verify.Certifier.certify ~backend:outcome.CB.backend
                 ~result:outcome.CB.result timing outcome.CB.trace)
          else None
        in
        Ok
          ( {
              backend = outcome.CB.backend;
              result = outcome.CB.result;
              stats = outcome.CB.stats;
              trace = Some outcome.CB.trace;
              curve = None;
              peephole = !peephole;
              certificate;
            },
            !cache_status ))

let exec_safe cache spec =
  match exec cache spec with
  | Ok (payload, status) -> (Ok payload, status)
  | Error e -> (Error e, Uncached)
  | exception e ->
    (Error { kind = "internal"; message = Printexc.to_string e }, Uncached)

(* ---------------- JSONL rendering ---------------- *)

let result_json (r : Scheduler.result) =
  (* compile_time_s is wall-clock noise: zero it so records are byte-
     stable across runs and worker counts (timings travel via telemetry
     and the ?timings flag instead). *)
  Qec_report.Export.result_to_json { r with Scheduler.compile_time_s = 0. }

let job_to_json ?(timings = false) job =
  let base =
    [ ("index", Json.Int job.index) ]
    @ (match job.spec.Spec.id with
      | Some id -> [ ("id", Json.String id) ]
      | None -> [])
    @ [ ("spec", Spec.to_json job.spec) ]
  in
  let extras =
    if timings then
      [
        ("elapsed_s", Json.Float job.elapsed_s);
        ("cache", Json.String (cache_status_to_string job.cache));
      ]
    else []
  in
  match job.outcome with
  | Error e ->
    Json.Obj
      (base
      @ [
          ("status", Json.String "error");
          ( "error",
            Json.Obj
              [
                ("kind", Json.String e.kind);
                ("message", Json.String e.message);
              ] );
        ]
      @ extras)
  | Ok p ->
    let timing = Timing.make ~d:job.spec.Spec.d () in
    Json.Obj
      (base
      @ [
          ("status", Json.String "ok");
          ("backend", Json.String p.backend);
          ("result", result_json p.result);
        ]
      @ (match p.stats with
        | [] -> []
        | stats ->
          [
            ( "backend_stats",
              Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) stats) );
          ])
      @ (match p.peephole with
        | None -> []
        | Some (stats, before, after) ->
          [
            ( "peephole",
              Json.Obj
                [
                  ( "cancelled_pairs",
                    Json.Int stats.Qec_circuit.Optimize.cancelled_pairs );
                  ( "merged_rotations",
                    Json.Int stats.Qec_circuit.Optimize.merged_rotations );
                  ("gates_before", Json.Int before);
                  ("gates_after", Json.Int after);
                ] );
          ])
      @ (if job.spec.Spec.outputs.Spec.reliability then
           [
             ( "reliability",
               Qec_report.Export.exposure_to_json ~d:job.spec.Spec.d
                 (Autobraid.Reliability.exposure_of_result timing p.result) );
           ]
         else [])
      @ (match (job.spec.Spec.outputs.Spec.trace, p.trace) with
        | true, Some trace ->
          [ ("trace", Qec_report.Export.trace_to_json ~max_rounds:50 trace) ]
        | _ -> [])
      @ (match p.certificate with
        | Some cert ->
          [ ("certificate", Qec_report.Export.certificate_to_json cert) ]
        | None -> [])
      @ (match p.curve with
        | None -> []
        | Some curve ->
          [
            ( "curve",
              Json.List
                (List.map
                   (fun (pt, r) ->
                     Json.Obj
                       [ ("p", Json.Float pt); ("result", result_json r) ])
                   curve) );
          ])
      @ extras)

let jobs_to_jsonl ?timings jobs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun j ->
      Buffer.add_string buf (Json.to_string (job_to_json ?timings j));
      Buffer.add_char buf '\n')
    jobs;
  Buffer.contents buf

let errors jobs =
  List.filter_map
    (fun j ->
      match j.outcome with Ok _ -> None | Error e -> Some (j.index, e))
    jobs
