module Json = Qec_report.Json
module IL = Autobraid.Initial_layout
module CB = Autobraid.Comm_backend

type scheduler_kind = Full | Sp | Baseline

type outputs = { trace : bool; reliability : bool; certificate : bool }

type t = {
  id : string option;
  circuit : string;
  backend : string;
  scheduler : scheduler_kind;
  d : int;
  seed : int;
  threshold_p : float;
  initial : IL.method_;
  backend_options : (string * CB.Options.value) list;
  optimize : bool;
  best_p : bool;
  outputs : outputs;
}

let default =
  {
    id = None;
    circuit = "";
    backend = "braid";
    scheduler = Full;
    d = Qec_surface.Timing.default_d;
    seed = 11;
    threshold_p = 0.3;
    initial = IL.Annealed;
    backend_options = [];
    optimize = false;
    best_p = false;
    outputs = { trace = false; reliability = false; certificate = false };
  }

let initial_to_string = function
  | IL.Identity -> "identity"
  | IL.Bisected -> "bisect"
  | IL.Partitioned -> "metis"
  | IL.Annealed -> "anneal"

let initial_of_string = function
  | "identity" -> Ok IL.Identity
  | "bisect" -> Ok IL.Bisected
  | "metis" -> Ok IL.Partitioned
  | "anneal" -> Ok IL.Annealed
  | s ->
    Error
      (Printf.sprintf
         "unknown initial placement %S (expected identity|bisect|metis|anneal)"
         s)

let scheduler_to_string = function
  | Full -> "full"
  | Sp -> "sp"
  | Baseline -> "baseline"

let scheduler_of_string = function
  | "full" -> Ok Full
  | "sp" -> Ok Sp
  | "baseline" -> Ok Baseline
  | s ->
    Error
      (Printf.sprintf "unknown scheduler %S (expected full|sp|baseline)" s)

let validate t =
  let ( let* ) = Result.bind in
  let check cond msg = if cond then Ok () else Error msg in
  let* () = check (t.circuit <> "") "spec has no circuit" in
  let* () = check (t.d >= 1) (Printf.sprintf "distance %d out of range" t.d) in
  let* () =
    check
      (t.threshold_p >= 0. && t.threshold_p < 1.)
      (Printf.sprintf "threshold_p %g out of [0, 1)" t.threshold_p)
  in
  let* () =
    check
      (t.scheduler = Baseline || CB.of_name t.backend <> None)
      (Printf.sprintf "unknown backend %S (registered: %s)" t.backend
         (String.concat ", " (CB.names ())))
  in
  let* () =
    check
      ((not (t.scheduler = Sp || t.scheduler = Baseline))
      || t.backend = "braid")
      (Printf.sprintf "scheduler %S only applies to the braid backend"
         (scheduler_to_string t.scheduler))
  in
  let* () =
    check
      ((not t.best_p) || (t.backend = "braid" && t.scheduler = Full))
      "best_p requires the braid backend with the full scheduler"
  in
  let* () =
    check
      ((not t.best_p) || t.backend_options = [])
      "best_p sweeps threshold_p itself; backend_options do not apply"
  in
  let* () =
    (* Strictly decode the explicit options against the owning backend's
       declared spec, then run its semantic validator. (The legacy
       scheduler/threshold_p fields are merged underneath at execution
       time; their ranges are checked above.) *)
    let codec =
      if t.scheduler = Baseline then
        Some (Gp_baseline.options_spec, fun _ -> Ok ())
      else
        Option.map
          (fun (e : CB.entry) -> (e.CB.options, e.CB.validate))
          (CB.of_name t.backend)
    in
    match codec with
    | None -> Ok () (* unreachable: the backend check above failed first *)
    | Some (specs, validate_opts) ->
      let* decoded =
        Result.map_error
          (fun e -> "backend_options: " ^ e)
          (CB.Options.decode specs t.backend_options)
      in
      Result.map_error (fun e -> "backend_options: " ^ e)
        (validate_opts decoded)
  in
  (* Certification replays a trace; the baseline scheduler and the best_p
     sweep produce none. *)
  check
    ((not t.outputs.certificate) || (t.scheduler <> Baseline && not t.best_p))
    "certificate output requires a traced run (not baseline, not best_p)"

let outputs_to_json o =
  Json.List
    ((if o.trace then [ Json.String "trace" ] else [])
    @ (if o.reliability then [ Json.String "reliability" ] else [])
    @ if o.certificate then [ Json.String "certificate" ] else [])

let json_of_value = function
  | CB.Options.Bool b -> Json.Bool b
  | CB.Options.Int i -> Json.Int i
  | CB.Options.Float f -> Json.Float f
  | CB.Options.String s -> Json.String s

let value_of_json = function
  | Json.Bool b -> Ok (CB.Options.Bool b)
  | Json.Int i -> Ok (CB.Options.Int i)
  | Json.Float f -> Ok (CB.Options.Float f)
  | Json.String s -> Ok (CB.Options.String s)
  | _ -> Error "must be a JSON scalar"

let to_json t =
  Json.Obj
    ((match t.id with Some id -> [ ("id", Json.String id) ] | None -> [])
    @ [
        ("circuit", Json.String t.circuit);
        ("backend", Json.String t.backend);
        ("scheduler", Json.String (scheduler_to_string t.scheduler));
        ("d", Json.Int t.d);
        ("seed", Json.Int t.seed);
        ("threshold_p", Json.Float t.threshold_p);
        ("initial", Json.String (initial_to_string t.initial));
      ]
    (* Omitted when empty, so pre-redesign specs re-encode byte-
       identically. *)
    @ (match t.backend_options with
      | [] -> []
      | opts ->
        [
          ( "backend_options",
            Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) opts) );
        ])
    @ [
        ("optimize", Json.Bool t.optimize);
        ("best_p", Json.Bool t.best_p);
        ("outputs", outputs_to_json t.outputs);
      ])

let of_json json =
  let ( let* ) = Result.bind in
  match json with
  | Json.Obj fields ->
    let known =
      [
        "id"; "circuit"; "backend"; "scheduler"; "d"; "seed"; "threshold_p";
        "initial"; "backend_options"; "optimize"; "best_p"; "outputs";
      ]
    in
    let* () =
      match List.find_opt (fun (k, _) -> not (List.mem k known)) fields with
      | Some (k, _) -> Error (Printf.sprintf "unknown spec field %S" k)
      | None -> Ok ()
    in
    let field name = List.assoc_opt name fields in
    let str name dflt =
      match field name with
      | None -> Ok dflt
      | Some (Json.String s) -> Ok s
      | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
    in
    let int name dflt =
      match field name with
      | None -> Ok dflt
      | Some (Json.Int i) -> Ok i
      | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
    in
    let bool name dflt =
      match field name with
      | None -> Ok dflt
      | Some (Json.Bool b) -> Ok b
      | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)
    in
    let* id =
      match field "id" with
      | None | Some Json.Null -> Ok None
      | Some (Json.String s) -> Ok (Some s)
      | Some _ -> Error "field \"id\" must be a string"
    in
    let* circuit =
      match field "circuit" with
      | Some (Json.String s) when s <> "" -> Ok s
      | Some _ -> Error "field \"circuit\" must be a non-empty string"
      | None -> Error "spec is missing the required \"circuit\" field"
    in
    let* backend = str "backend" default.backend in
    let* scheduler =
      let* s = str "scheduler" (scheduler_to_string default.scheduler) in
      scheduler_of_string s
    in
    let* d = int "d" default.d in
    let* seed = int "seed" default.seed in
    let* threshold_p =
      match field "threshold_p" with
      | None -> Ok default.threshold_p
      | Some (Json.Float f) -> Ok f
      | Some (Json.Int i) -> Ok (float_of_int i)
      | Some _ -> Error "field \"threshold_p\" must be a number"
    in
    let* initial =
      let* s = str "initial" (initial_to_string default.initial) in
      initial_of_string s
    in
    let* backend_options =
      match field "backend_options" with
      | None -> Ok []
      | Some (Json.Obj pairs) ->
        Result.map List.rev
          (List.fold_left
             (fun acc (k, v) ->
               let* acc = acc in
               match value_of_json v with
               | Ok v -> Ok ((k, v) :: acc)
               | Error e ->
                 Error (Printf.sprintf "backend_options %S: %s" k e))
             (Ok []) pairs)
      | Some _ -> Error "field \"backend_options\" must be an object"
    in
    let* optimize = bool "optimize" default.optimize in
    let* best_p = bool "best_p" default.best_p in
    let* outputs =
      match field "outputs" with
      | None -> Ok default.outputs
      | Some (Json.List items) ->
        List.fold_left
          (fun acc item ->
            let* o = acc in
            match item with
            | Json.String "trace" -> Ok { o with trace = true }
            | Json.String "reliability" -> Ok { o with reliability = true }
            | Json.String "certificate" -> Ok { o with certificate = true }
            | Json.String s -> Error (Printf.sprintf "unknown output %S" s)
            | _ -> Error "field \"outputs\" must be a list of strings")
          (Ok { trace = false; reliability = false; certificate = false })
          items
      | Some _ -> Error "field \"outputs\" must be a list of strings"
    in
    Ok
      {
        id;
        circuit;
        backend;
        scheduler;
        d;
        seed;
        threshold_p;
        initial;
        backend_options;
        optimize;
        best_p;
        outputs;
      }
  | _ -> Error "spec must be a JSON object"

let manifest_of_json json =
  let decode_jobs items =
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest -> (
        match of_json item with
        | Ok spec -> go (i + 1) (spec :: acc) rest
        | Error msg -> Error (Printf.sprintf "job %d: %s" i msg))
    in
    go 0 [] items
  in
  match json with
  | Json.List items -> decode_jobs items
  | Json.Obj _ as obj -> (
    (match Json.member "version" obj with
    | None | Some (Json.Int 1) -> Ok ()
    | Some (Json.Int v) ->
      Error (Printf.sprintf "unsupported manifest version %d (expected 1)" v)
    | Some _ -> Error "manifest \"version\" must be an integer")
    |> fun version_ok ->
    Result.bind version_ok (fun () ->
        match Json.member "jobs" obj with
        | Some (Json.List items) -> decode_jobs items
        | Some _ -> Error "manifest \"jobs\" must be a list"
        | None -> Error "manifest object is missing the \"jobs\" list"))
  | _ -> Error "manifest must be a JSON array or object"

let manifest_of_string s =
  match Json.of_string s with
  | Error msg -> Error ("manifest is not valid JSON: " ^ msg)
  | Ok json -> manifest_of_json json

let equal (a : t) (b : t) = a = b
