(** Declarative compile requests — the one record every entry point speaks.

    A [Spec.t] says {e what} to compile (a benchmark name or circuit file),
    {e how} (backend, scheduler variant, code distance, seed, threshold,
    initial placement, peephole/best-p switches) and {e which outputs} to
    keep. The CLI's [compile] and [schedule] build one and hand it to
    {!Engine.run_spec}; [autobraid batch] decodes a manifest of them and
    hands the list to {!Engine.run_batch}. JSON encode/decode round-trips
    ([of_json (to_json s) = Ok s]), so manifests, logs and replay files
    all share one schema (docs/engine.md). *)

type scheduler_kind =
  | Full  (** path finder + dynamic layout optimization (braid only) *)
  | Sp  (** stack-based path finder only (braid only) *)
  | Baseline  (** the greedy MICRO'17 baseline ({!Gp_baseline}) *)

type outputs = {
  trace : bool;  (** include the per-round trace in the job payload *)
  reliability : bool;  (** include the exposure/failure-probability block *)
  certificate : bool;
      (** certify the schedule with [Qec_verify.Certifier] and include
          the [autobraid-cert/v1] block (traced runs only) *)
}

type t = {
  id : string option;  (** caller's label, echoed in result records *)
  circuit : string;  (** benchmark name (e.g. ["qft50"]) or file path *)
  backend : string;  (** {!Autobraid.Comm_backend} registry name *)
  scheduler : scheduler_kind;
  d : int;  (** surface code distance *)
  seed : int;
  threshold_p : float;
      (** layout-optimizer trigger, in [0, 1). {b Deprecated} spelling of
          the braid backend's [threshold_p] option — kept so pre-redesign
          manifests decode unchanged; an explicit entry in
          [backend_options] wins over it. *)
  initial : Autobraid.Initial_layout.method_;
  backend_options : (string * Autobraid.Comm_backend.Options.value) list;
      (** backend-specific knobs, decoded strictly against the backend's
          declared {!Autobraid.Comm_backend.Options} spec (JSON object
          [backend_options] in manifests; omitted from {!to_json} when
          empty). The legacy [scheduler]/[threshold_p] fields are merged
          underneath as braid's [variant]/[threshold_p] defaults, so old
          manifests keep their meaning while explicit options override
          them. *)
  optimize : bool;  (** peephole-optimize before scheduling *)
  best_p : bool;  (** sweep thresholds and keep the best (braid+Full) *)
  outputs : outputs;
}

val default : t
(** [circuit = ""], braid backend, [Full] scheduler,
    {!Qec_surface.Timing.default_d}, seed 11, threshold 0.3, [Annealed]
    initial placement, no extras — the same defaults the CLI always had. *)

val validate : t -> (unit, string) result
(** Static checks that need no circuit: non-empty [circuit], registered
    [backend] ({!Autobraid.Comm_backend.of_name} — the error lists the
    registered names), [d >= 1], [threshold_p] in [0, 1),
    [scheduler]/[backend]/[best_p] compatibility, [outputs.certificate]
    only on traced runs (neither [Baseline] nor [best_p]), and a strict
    [backend_options] decode against the owning backend's declared spec
    ({!Gp_baseline.options_spec} for the baseline scheduler) followed by
    its semantic validator. *)

val initial_to_string : Autobraid.Initial_layout.method_ -> string
(** ["identity" | "bisect" | "metis" | "anneal"] — the CLI's names. *)

val initial_of_string :
  string -> (Autobraid.Initial_layout.method_, string) result

val scheduler_to_string : scheduler_kind -> string
(** ["full" | "sp" | "baseline"]. *)

val scheduler_of_string : string -> (scheduler_kind, string) result

val to_json : t -> Qec_report.Json.t
(** Stable key order; [id] omitted when [None], [outputs] encoded as a
    string list. *)

val of_json : Qec_report.Json.t -> (t, string) result
(** Missing fields take {!default}'s values; [circuit] is required.
    Unknown keys and malformed values are errors (catching manifest
    typos beats silently ignoring them). *)

val manifest_of_json : Qec_report.Json.t -> (t list, string) result
(** A manifest is either a bare JSON array of specs or
    [{"version": 1, "jobs": [...]}]. Errors carry the failing job's
    index. *)

val manifest_of_string : string -> (t list, string) result
(** {!Qec_report.Json.of_string} composed with {!manifest_of_json}. *)

val equal : t -> t -> bool
