(** The pure, re-entrant core of the engine: execute one compile spec on
    any domain.

    This module is the thread- and domain-safe half of the pure-core /
    IO-shell split ({!Engine} is the shell). A call here

    - installs no telemetry sinks and spawns no domains,
    - handles no signals and prints nothing,
    - mutates no global state — the only shared structure it can touch is
      the caller-supplied {!Placement_cache.t}, which synchronizes
      internally.

    So [exec_safe] may run concurrently on every domain of a pool:
    {!Engine.run_batch}'s workers and {!Qec_serve.Server}'s long-lived
    request executors both call straight into this module.

    Precondition: the {!Autobraid.Comm_backend} registry must be populated
    ({!Engine.ensure_backends}) before specs naming registry backends are
    executed. *)

type error = {
  kind : string;
      (** stable machine-readable tag: ["circuit-not-found"], ["parse"],
          ["unsupported"], ["invalid-circuit"], ["io"], ["invalid-spec"],
          ["unknown-backend"], or ["internal"] *)
  message : string;  (** human-readable; parse errors are [file:line:col]-prefixed *)
}

type payload = {
  backend : string;
      (** what actually ran: the registry backend's name, or
          ["gp-baseline"] for [Spec.scheduler = Baseline] *)
  result : Autobraid.Scheduler.result;
  stats : (string * float) list;  (** backend extras, e.g. surgery volume *)
  trace : Autobraid.Trace.t option;
      (** when [Spec.outputs.trace] and the path records one (the best-p
          sweep and the baseline do not) *)
  curve : (float * Autobraid.Scheduler.result) list option;
      (** the full threshold sweep, when [Spec.best_p] *)
  peephole : (Qec_circuit.Optimize.stats * int * int) option;
      (** when [Spec.optimize]: stats plus (gates before, gates after) *)
  certificate : Qec_verify.Certifier.t option;
      (** when [Spec.outputs.certificate]: the independent
          {!Qec_verify.Certifier} verdict for the run's trace, computed
          on the calling domain *)
}

type cache_status = Memory_hit | Disk_hit | Miss | Uncached

val cache_status_to_string : cache_status -> string
(** ["memory-hit" | "disk-hit" | "miss" | "uncached"]. *)

type job = {
  index : int;  (** position in the submitted batch *)
  spec : Spec.t;
  elapsed_s : float;  (** wall time for this job (informational only) *)
  cache : cache_status;  (** placement-cache outcome for this job *)
  outcome : (payload, error) result;
}

val load_circuit : Spec.t -> (Qec_circuit.Circuit.t, error) result
(** Resolve [spec.circuit] — a [.qasm] / [.real] path or a benchmark
    name — with every parser failure mapped to a structured {!error}. *)

val exec :
  Placement_cache.t option ->
  Spec.t ->
  (payload * cache_status, error) result
(** Execute one validated spec end to end. Raises only if a lower layer
    raises something unexpected; use {!exec_safe} to capture that too. *)

val exec_safe :
  Placement_cache.t option -> Spec.t -> (payload, error) result * cache_status
(** {!exec} with every escape hatch closed: an unexpected exception
    becomes an [Error {kind = "internal"; _}]. Deterministic for a fixed
    spec, with or without a (correct) cache; safe to call concurrently
    from any number of domains sharing one cache. *)

val result_json : Autobraid.Scheduler.result -> Qec_report.Json.t
(** {!Qec_report.Export.result_to_json} with [compile_time_s] zeroed, so
    rendered records are byte-stable across runs and worker counts. *)

val job_to_json : ?timings:bool -> job -> Qec_report.Json.t
(** One deterministic result record: [index], [id], [status], [spec], and
    on success [backend] / [result] / [backend_stats] plus the requested
    [reliability] / [trace] / [certificate] / [curve] blocks; on failure
    [error].
    [result.compile_time_s] is zeroed so records are byte-stable across
    runs and worker counts. [~timings:true] adds the measured [elapsed_s]
    and the [cache] status — useful interactively, off by default because
    both vary run to run. *)

val jobs_to_jsonl : ?timings:bool -> job list -> string
(** One compact {!job_to_json} line per job, newline-terminated, in input
    order. *)

val errors : job list -> (int * error) list
(** The failed jobs' [(index, error)]s, in input order. *)
