(** The batch compilation engine — every entry point's one execution path.

    The engine is split into a pure re-entrant core and this IO shell:

    - {!Engine_core} holds the single-spec execution path (validation,
      circuit loading, cache replay, backend dispatch, certification) and
      the deterministic JSONL rendering. It is safe to call concurrently
      from any domain and has no process-global effects.
    - This module is the shell: it registers backends, wraps the core in
      telemetry spans, and orchestrates the multicore batch pool. Its
      types are equal (not just isomorphic) to the core's, so callers can
      mix both freely.

    {!run_spec} executes a single declarative {!Spec.t}: load the circuit,
    optionally peephole-optimize, resolve the communication backend from
    the {!Autobraid.Comm_backend} registry, obtain the initial placement
    (through the {!Placement_cache} when one is supplied), schedule, and
    package the requested outputs. The CLI's [compile] and
    [schedule --backend ...] are thin wrappers over this function, so
    their byte-identity is structural rather than promised; the
    [autobraid serve] daemon ({!Qec_serve}) calls the core directly from
    its long-lived worker pool.

    {!run_batch} runs a list of specs on an OCaml 5 domain worker pool fed
    by a shared {!Qec_util.Parallel.Queue}. Results come back in input
    order regardless of worker count, each job's failure is captured as a
    structured {!error} record (one bad circuit never aborts the batch),
    and scheduling is deterministic: the rendered JSONL is byte-identical
    for any [~jobs] value. *)

type error = Engine_core.error = {
  kind : string;
      (** stable machine-readable tag: ["circuit-not-found"], ["parse"],
          ["unsupported"], ["invalid-circuit"], ["io"], ["invalid-spec"],
          ["unknown-backend"], or ["internal"] *)
  message : string;  (** human-readable; parse errors are [file:line:col]-prefixed *)
}

type payload = Engine_core.payload = {
  backend : string;
      (** what actually ran: the registry backend's name, or
          ["gp-baseline"] for [Spec.scheduler = Baseline] *)
  result : Autobraid.Scheduler.result;
  stats : (string * float) list;  (** backend extras, e.g. surgery volume *)
  trace : Autobraid.Trace.t option;
      (** when [Spec.outputs.trace] and the path records one (the best-p
          sweep and the baseline do not) *)
  curve : (float * Autobraid.Scheduler.result) list option;
      (** the full threshold sweep, when [Spec.best_p] *)
  peephole : (Qec_circuit.Optimize.stats * int * int) option;
      (** when [Spec.optimize]: stats plus (gates before, gates after) *)
  certificate : Qec_verify.Certifier.t option;
      (** when [Spec.outputs.certificate]: the independent
          {!Qec_verify.Certifier} verdict for the run's trace, computed
          on the worker's own domain *)
}

type cache_status = Engine_core.cache_status =
  | Memory_hit
  | Disk_hit
  | Miss
  | Uncached

val cache_status_to_string : cache_status -> string
(** ["memory-hit" | "disk-hit" | "miss" | "uncached"]. *)

type job = Engine_core.job = {
  index : int;  (** position in the submitted batch *)
  spec : Spec.t;
  elapsed_s : float;  (** wall time for this job (informational only) *)
  cache : cache_status;  (** placement-cache outcome for this job *)
  outcome : (payload, error) result;
}

val ensure_backends : unit -> unit
(** Register the built-in backends (braid registers with
    {!Autobraid.Comm_backend} on linking; surgery via
    {!Qec_surgery.Backend.register}). Idempotent; call before resolving
    backend names. *)

val load_circuit : Spec.t -> (Qec_circuit.Circuit.t, error) result
(** Re-exported {!Engine_core.load_circuit}. *)

val exec :
  Placement_cache.t option ->
  Spec.t ->
  (payload * cache_status, error) result
(** Re-exported {!Engine_core.exec}. *)

val exec_safe :
  Placement_cache.t option -> Spec.t -> (payload, error) result * cache_status
(** Re-exported {!Engine_core.exec_safe}. *)

val run_spec : ?cache:Placement_cache.t -> Spec.t -> (payload, error) result
(** Execute one spec. Never raises: spec validation failures, unreadable
    or malformed circuits and scheduler errors all come back as [Error].
    Deterministic for a fixed spec, with or without a (correct) cache. *)

val run_batch :
  ?jobs:int -> ?cache:Placement_cache.t -> Spec.t list -> job list
(** Execute the specs on a worker pool of [jobs] domains (default
    {!Qec_util.Parallel.default_jobs}), sharing [cache] across workers.
    Results are in input order. Telemetry is per worker: each domain
    records an [engine.job] span plus [engine.queue_wait_s] /
    [engine.job_s] samples and [engine.jobs_ok] / [engine.jobs_failed]
    counters for the jobs it ran, merged into the installing domain's
    collector at join (spans land on distinct [(domain, worker)] lanes).
    The caller's domain adds the [engine.run_batch] span and — when a
    cache is given — [engine.placement_cache.{memory_hits,disk_hits,
    misses}] counters for this batch. *)

val result_json : Autobraid.Scheduler.result -> Qec_report.Json.t
(** Re-exported {!Engine_core.result_json}. *)

val job_to_json : ?timings:bool -> job -> Qec_report.Json.t
(** One deterministic result record: [index], [id], [status], [spec], and
    on success [backend] / [result] / [backend_stats] plus the requested
    [reliability] / [trace] / [certificate] / [curve] blocks; on failure
    [error].
    [result.compile_time_s] is zeroed so records are byte-stable across
    runs and worker counts. [~timings:true] adds the measured [elapsed_s]
    and the [cache] status — useful interactively, off by default because
    both vary run to run. *)

val jobs_to_jsonl : ?timings:bool -> job list -> string
(** One compact {!job_to_json} line per job, newline-terminated, in input
    order. *)

val errors : job list -> (int * error) list
(** The failed jobs' [(index, error)]s, in input order. *)
