(* The IO shell over Engine_core: backend registration, telemetry spans,
   and the domain-pool batch orchestration. The single-spec execution path
   and all JSONL rendering live in Engine_core, which is pure and
   re-entrant — this module re-exports it so existing callers keep their
   [Engine.*] names. *)

include Engine_core
module Tel = Qec_telemetry.Telemetry

let ensure_backends () =
  Qec_surgery.Backend.register ();
  Qec_lookahead.Backend.register ()

let run_spec ?cache spec =
  ensure_backends ();
  fst (Engine_core.exec_safe cache spec)

(* ---------------- batch ---------------- *)

let run_batch ?jobs ?cache specs =
  ensure_backends ();
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Qec_util.Parallel.default_jobs ()
  in
  Tel.with_span "engine.run_batch" @@ fun () ->
  let n = List.length specs in
  let queue = Qec_util.Parallel.Queue.of_list specs in
  let slots = Array.make n None in
  let t_queue = Unix.gettimeofday () in
  let worker _id =
    (* Workers run under Telemetry.worker_scope (via the Parallel probe),
       so these probes record for real on every domain and merge into the
       root collector at join. *)
    let rec loop () =
      match Qec_util.Parallel.Queue.pop queue with
      | None -> ()
      | Some (index, spec) ->
        let t0 = Unix.gettimeofday () in
        Tel.sample "engine.queue_wait_s" (t0 -. t_queue);
        let outcome, cache_status =
          Tel.with_span "engine.job" @@ fun () ->
          Engine_core.exec_safe cache spec
        in
        let elapsed_s = Unix.gettimeofday () -. t0 in
        Tel.sample "engine.job_s" elapsed_s;
        Tel.count
          (match outcome with
          | Ok _ -> "engine.jobs_ok"
          | Error _ -> "engine.jobs_failed");
        slots.(index) <-
          Some { index; spec; elapsed_s; cache = cache_status; outcome };
        loop ()
    in
    loop ()
  in
  Qec_util.Parallel.run_workers ~jobs:(max 1 (min jobs (max 1 n))) worker;
  let results =
    Array.to_list slots
    |> List.map (function Some j -> j | None -> assert false)
  in
  (* The cache's counters are process-wide totals, so they are read once
     on the caller's domain rather than per worker. *)
  Option.iter
    (fun c ->
      let k = Placement_cache.counters c in
      Tel.count ~by:k.memory_hits "engine.placement_cache.memory_hits";
      Tel.count ~by:k.disk_hits "engine.placement_cache.disk_hits";
      Tel.count ~by:k.misses "engine.placement_cache.misses")
    cache;
  results
