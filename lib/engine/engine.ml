module Json = Qec_report.Json
module Circuit = Qec_circuit.Circuit
module Decompose = Qec_circuit.Decompose
module Scheduler = Autobraid.Scheduler
module CB = Autobraid.Comm_backend
module Timing = Qec_surface.Timing
module Tel = Qec_telemetry.Telemetry

type error = { kind : string; message : string }

type payload = {
  backend : string;
  result : Scheduler.result;
  stats : (string * float) list;
  trace : Autobraid.Trace.t option;
  curve : (float * Scheduler.result) list option;
  peephole : (Qec_circuit.Optimize.stats * int * int) option;
  certificate : Qec_verify.Certifier.t option;
}

type cache_status = Memory_hit | Disk_hit | Miss | Uncached

let cache_status_to_string = function
  | Memory_hit -> "memory-hit"
  | Disk_hit -> "disk-hit"
  | Miss -> "miss"
  | Uncached -> "uncached"

type job = {
  index : int;
  spec : Spec.t;
  elapsed_s : float;
  cache : cache_status;
  outcome : (payload, error) result;
}

let ensure_backends () = Qec_surgery.Backend.register ()

(* ---------------- circuit loading ---------------- *)

(* Mirrors the CLI's loader, but every failure becomes a structured error
   record (message formats match what `guarded` always printed, so single-
   job wrappers keep their diagnostics byte-for-byte). *)
let load_circuit spec =
  let file = spec.Spec.circuit in
  let err kind fmt = Printf.ksprintf (fun message -> Error { kind; message }) fmt in
  if Sys.file_exists file then
    match
      if Filename.check_suffix file ".real" then
        Qec_revlib.Real_parser.of_file file
      else Qec_qasm.Frontend.of_file file
    with
    | c -> Ok c
    | exception Qec_qasm.Lexer.Error { line; col; msg } ->
      err "parse" "%s:%d:%d: %s" file line col msg
    | exception Qec_qasm.Parser.Error { line; col; msg } ->
      err "parse" "%s:%d:%d: %s" file line col msg
    | exception Qec_qasm.Frontend.Unsupported { pos = Some { line; col }; msg }
      ->
      err "unsupported" "%s:%d:%d: %s" file line col msg
    | exception Qec_qasm.Frontend.Unsupported { pos = None; msg } ->
      err "unsupported" "%s: %s" file msg
    | exception Qec_revlib.Real_parser.Error { line; msg } ->
      err "parse" "%s:%d: %s" file line msg
    | exception Circuit.Invalid msg ->
      err "invalid-circuit" "%s: invalid circuit: %s" file msg
    | exception Sys_error msg -> err "io" "%s" msg
  else
    match Qec_benchmarks.Registry.build file with
    | c -> Ok c
    | exception Not_found ->
      err "circuit-not-found"
        "unknown circuit %S (not a file, not a benchmark; try `autobraid \
         list`)"
        file

(* ---------------- single spec ---------------- *)

let scheduler_variant = function
  | Spec.Full -> Scheduler.Full
  | Spec.Sp -> Scheduler.Sp
  | Spec.Baseline -> Scheduler.Full (* unused; baseline bypasses the registry *)

let exec cache (spec : Spec.t) =
  let ( let* ) = Result.bind in
  let cache_status = ref Uncached in
  let* () =
    Result.map_error
      (fun message -> { kind = "invalid-spec"; message })
      (Spec.validate spec)
  in
  let* circuit = load_circuit spec in
  let peephole = ref None in
  let circuit =
    if spec.optimize then begin
      let before = Circuit.length circuit in
      let c', stats = Qec_circuit.Optimize.peephole circuit in
      peephole := Some (stats, before, Circuit.length c');
      c'
    end
    else circuit
  in
  let timing = Timing.make ~d:spec.d () in
  match spec.scheduler with
  | Spec.Baseline ->
    let result =
      Gp_baseline.run
        ~options:{ Gp_baseline.default_options with seed = spec.seed }
        timing circuit
    in
    Ok
      ( {
          backend = "gp-baseline";
          result;
          stats = [];
          trace = None;
          curve = None;
          peephole = !peephole;
          certificate = None;
        },
        !cache_status )
  | Spec.Full | Spec.Sp -> (
    (* The placement the scheduler would compute internally, replayed
       through the cache when one is installed. The lowering mirrors the
       schedulers' own entry so key and placement agree with them. *)
    let placement =
      match cache with
      | None -> None
      | Some cache ->
        let lowered = Decompose.to_scheduler_gates circuit in
        let n = Circuit.num_qubits lowered in
        let side =
          max 1 (Qec_surface.Resources.lattice_side ~num_logical:n)
        in
        let before = Placement_cache.counters cache in
        let p =
          Placement_cache.find_or_place cache ~circuit:lowered ~side
            ~method_:spec.initial ~seed:spec.seed
        in
        let after = Placement_cache.counters cache in
        cache_status :=
          if after.misses > before.misses then Miss
          else if after.disk_hits > before.disk_hits then Disk_hit
          else Memory_hit;
        Some p
    in
    let config =
      {
        CB.variant = scheduler_variant spec.scheduler;
        threshold_p = spec.threshold_p;
        initial = spec.initial;
        seed = spec.seed;
        placement;
      }
    in
    if spec.best_p then begin
      let options =
        {
          Scheduler.default_options with
          threshold_p = spec.threshold_p;
          initial = spec.initial;
          seed = spec.seed;
          placement_override = placement;
        }
      in
      let best, curve = Scheduler.run_best_p ~options timing circuit in
      Ok
        ( {
            backend = spec.backend;
            result = best;
            stats = [];
            trace = None;
            curve = Some curve;
            peephole = !peephole;
            certificate = None;
          },
          !cache_status )
    end
    else
      match CB.of_name spec.backend with
      | None ->
        Error
          {
            kind = "unknown-backend";
            message = Printf.sprintf "unknown backend %S" spec.backend;
          }
      | Some ctor ->
        let outcome = (ctor config).CB.run timing circuit in
        (* Self-certification happens here, on the worker's own domain,
           so batch runs certify in parallel with no extra plumbing. *)
        let certificate =
          if spec.outputs.Spec.certificate then
            Some
              (Qec_verify.Certifier.certify ~backend:outcome.CB.backend
                 ~result:outcome.CB.result timing outcome.CB.trace)
          else None
        in
        Ok
          ( {
              backend = outcome.CB.backend;
              result = outcome.CB.result;
              stats = outcome.CB.stats;
              trace = Some outcome.CB.trace;
              curve = None;
              peephole = !peephole;
              certificate;
            },
            !cache_status ))

let exec_safe cache spec =
  match exec cache spec with
  | Ok (payload, status) -> (Ok payload, status)
  | Error e -> (Error e, Uncached)
  | exception e ->
    (Error { kind = "internal"; message = Printexc.to_string e }, Uncached)

let run_spec ?cache spec =
  ensure_backends ();
  fst (exec_safe cache spec)

(* ---------------- batch ---------------- *)

let run_batch ?jobs ?cache specs =
  ensure_backends ();
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Qec_util.Parallel.default_jobs ()
  in
  Tel.with_span "engine.run_batch" @@ fun () ->
  let n = List.length specs in
  let queue = Qec_util.Parallel.Queue.of_list specs in
  let slots = Array.make n None in
  let t_queue = Unix.gettimeofday () in
  let worker _id =
    (* Workers run under Telemetry.worker_scope (via the Parallel probe),
       so these probes record for real on every domain and merge into the
       root collector at join. *)
    let rec loop () =
      match Qec_util.Parallel.Queue.pop queue with
      | None -> ()
      | Some (index, spec) ->
        let t0 = Unix.gettimeofday () in
        Tel.sample "engine.queue_wait_s" (t0 -. t_queue);
        let outcome, cache_status =
          Tel.with_span "engine.job" @@ fun () -> exec_safe cache spec
        in
        let elapsed_s = Unix.gettimeofday () -. t0 in
        Tel.sample "engine.job_s" elapsed_s;
        Tel.count
          (match outcome with
          | Ok _ -> "engine.jobs_ok"
          | Error _ -> "engine.jobs_failed");
        slots.(index) <-
          Some { index; spec; elapsed_s; cache = cache_status; outcome };
        loop ()
    in
    loop ()
  in
  Qec_util.Parallel.run_workers ~jobs:(max 1 (min jobs (max 1 n))) worker;
  let results =
    Array.to_list slots
    |> List.map (function Some j -> j | None -> assert false)
  in
  (* The cache's counters are process-wide totals, so they are read once
     on the caller's domain rather than per worker. *)
  Option.iter
    (fun c ->
      let k = Placement_cache.counters c in
      Tel.count ~by:k.memory_hits "engine.placement_cache.memory_hits";
      Tel.count ~by:k.disk_hits "engine.placement_cache.disk_hits";
      Tel.count ~by:k.misses "engine.placement_cache.misses")
    cache;
  results

(* ---------------- JSONL rendering ---------------- *)

let result_json (r : Scheduler.result) =
  (* compile_time_s is wall-clock noise: zero it so records are byte-
     stable across runs and worker counts (timings travel via telemetry
     and the ?timings flag instead). *)
  Qec_report.Export.result_to_json { r with Scheduler.compile_time_s = 0. }

let job_to_json ?(timings = false) job =
  let base =
    [ ("index", Json.Int job.index) ]
    @ (match job.spec.Spec.id with
      | Some id -> [ ("id", Json.String id) ]
      | None -> [])
    @ [ ("spec", Spec.to_json job.spec) ]
  in
  let extras =
    if timings then
      [
        ("elapsed_s", Json.Float job.elapsed_s);
        ("cache", Json.String (cache_status_to_string job.cache));
      ]
    else []
  in
  match job.outcome with
  | Error e ->
    Json.Obj
      (base
      @ [
          ("status", Json.String "error");
          ( "error",
            Json.Obj
              [
                ("kind", Json.String e.kind);
                ("message", Json.String e.message);
              ] );
        ]
      @ extras)
  | Ok p ->
    let timing = Timing.make ~d:job.spec.Spec.d () in
    Json.Obj
      (base
      @ [
          ("status", Json.String "ok");
          ("backend", Json.String p.backend);
          ("result", result_json p.result);
        ]
      @ (match p.stats with
        | [] -> []
        | stats ->
          [
            ( "backend_stats",
              Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) stats) );
          ])
      @ (match p.peephole with
        | None -> []
        | Some (stats, before, after) ->
          [
            ( "peephole",
              Json.Obj
                [
                  ( "cancelled_pairs",
                    Json.Int stats.Qec_circuit.Optimize.cancelled_pairs );
                  ( "merged_rotations",
                    Json.Int stats.Qec_circuit.Optimize.merged_rotations );
                  ("gates_before", Json.Int before);
                  ("gates_after", Json.Int after);
                ] );
          ])
      @ (if job.spec.Spec.outputs.Spec.reliability then
           [
             ( "reliability",
               Qec_report.Export.exposure_to_json ~d:job.spec.Spec.d
                 (Autobraid.Reliability.exposure_of_result timing p.result) );
           ]
         else [])
      @ (match (job.spec.Spec.outputs.Spec.trace, p.trace) with
        | true, Some trace ->
          [ ("trace", Qec_report.Export.trace_to_json ~max_rounds:50 trace) ]
        | _ -> [])
      @ (match p.certificate with
        | Some cert ->
          [ ("certificate", Qec_report.Export.certificate_to_json cert) ]
        | None -> [])
      @ (match p.curve with
        | None -> []
        | Some curve ->
          [
            ( "curve",
              Json.List
                (List.map
                   (fun (pt, r) ->
                     Json.Obj
                       [ ("p", Json.Float pt); ("result", result_json r) ])
                   curve) );
          ])
      @ extras)

let jobs_to_jsonl ?timings jobs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun j ->
      Buffer.add_string buf (Json.to_string (job_to_json ?timings j));
      Buffer.add_char buf '\n')
    jobs;
  Buffer.contents buf

let errors jobs =
  List.filter_map
    (fun j ->
      match j.outcome with Ok _ -> None | Error e -> Some (j.index, e))
    jobs
