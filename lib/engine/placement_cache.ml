module Circuit = Qec_circuit.Circuit
module Gate = Qec_circuit.Gate
module IL = Autobraid.Initial_layout
module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement

(* Bump on any change to Initial_layout's algorithm, defaults, or this
   key's encoding: old disk entries must never replay as stale hits.
   v2: disk entries carry an md5 trailer so corruption is a miss. *)
let format_version = "autobraid-placement-cache v2"

type entry = { side : int; num_qubits : int; cells : int array }

type t = {
  dir : string option;
  table : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  disk_lock : Mutex.t;
      (* serializes this process's disk writes so at most one domain at a
         time holds the cross-process lockf lock — POSIX drops a process's
         fcntl locks when ANY fd on the file closes, so two domains
         locking/unlocking concurrently would silently release each
         other's locks *)
  memory_hits : int Atomic.t;
  disk_hits : int Atomic.t;
  misses : int Atomic.t;
}

type counters = { memory_hits : int; disk_hits : int; misses : int }

let create ?dir () : t =
  Option.iter
    (fun d -> if not (Sys.file_exists d) then Unix.mkdir d 0o755)
    dir;
  {
    dir;
    table = Hashtbl.create 64;
    lock = Mutex.create ();
    disk_lock = Mutex.create ();
    memory_hits = Atomic.make 0;
    disk_hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let dir t = t.dir

let counters (t : t) : counters =
  {
    memory_hits = Atomic.get t.memory_hits;
    disk_hits = Atomic.get t.disk_hits;
    misses = Atomic.get t.misses;
  }

let key ~circuit ~side ~method_ ~seed =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf format_version;
  Buffer.add_char buf '\n';
  Printf.bprintf buf "method=%s seed=%d side=%d qubits=%d\n"
    (match method_ with
    | IL.Identity -> "identity"
    | IL.Bisected -> "bisect"
    | IL.Partitioned -> "metis"
    | IL.Annealed -> "anneal")
    seed side (Circuit.num_qubits circuit);
  (* The gate stream without angles: placement (partitioning, snake
     embedding, LLG-census annealing) sees interaction structure and
     layering only. *)
  Circuit.iter
    (fun _ g ->
      Buffer.add_string buf (Gate.name g);
      List.iter (fun q -> Printf.bprintf buf " %d" q) (Gate.qubits g);
      Buffer.add_char buf '\n')
    circuit;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---------------- disk format ---------------- *)

let path_of t key =
  Option.map (fun d -> Filename.concat d (key ^ ".placement")) t.dir

(* The payload lines are digested together so any corruption of a persisted
   entry — a flipped bit inside a still-parseable digit included — fails the
   trailer check and counts as a miss instead of replaying a wrong
   placement. *)
let entry_payload (e : entry) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "side %d\nqubits %d\ncells" e.side e.num_qubits;
  Array.iter (fun c -> Printf.bprintf buf " %d" c) e.cells;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let entry_digest e = Digest.to_hex (Digest.string (entry_payload e))

(* Cross-process advisory write lock on <dir>/.lock. Two daemons or
   batches sharing one --cache-dir serialize entry writes here, so their
   tmp files and renames never interleave on the same key. Reads stay
   lock-free by design: the per-entry tmp+rename protocol means a reader
   only ever opens a fully renamed file, and the md5 trailer demotes any
   torn or interleaved bytes that slip through (crash mid-write, NFS) to
   a miss instead of a wrong placement. The lock is best-effort — if the
   lock file cannot be created or locked, writes fall back to bare
   tmp+rename, which is already atomic per entry on POSIX. *)
let with_file_lock dir f =
  let lock_path = Filename.concat dir ".lock" in
  match Unix.openfile lock_path [ Unix.O_CREAT; Unix.O_WRONLY ] 0o644 with
  | exception Unix.Unix_error _ -> f ()
  | fd ->
    let locked =
      match Unix.lockf fd Unix.F_LOCK 0 with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    Fun.protect
      ~finally:(fun () ->
        (if locked then
           try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
      f

let write_disk t key (e : entry) =
  match path_of t key with
  | None -> ()
  | Some path -> (
    try
      (* disk_lock first: only one domain of this process may hold the
         lockf lock at a time (see the field's comment), then the
         cross-process lock, then the atomic tmp+rename publish. *)
      Mutex.lock t.disk_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.disk_lock)
        (fun () ->
          with_file_lock (Option.get t.dir) @@ fun () ->
          let tmp, oc =
            Filename.open_temp_file
              ~temp_dir:(Option.get t.dir)
              ("." ^ key) ".tmp"
          in
          Printf.fprintf oc "%s\n%smd5 %s\n" format_version (entry_payload e)
            (entry_digest e);
          close_out oc;
          Sys.rename tmp path)
    with Sys_error _ | Unix.Unix_error _ ->
      (* A cache write failure must never fail the compilation. *)
      ())

let read_disk t key =
  match path_of t key with
  | None -> None
  | Some path -> (
    match open_in path with
    | exception Sys_error _ -> None
    | ic -> (
      let parse () =
        let line () = input_line ic in
        if line () <> format_version then None
        else
          match
            ( String.split_on_char ' ' (line ()),
              String.split_on_char ' ' (line ()),
              String.split_on_char ' ' (line ()),
              String.split_on_char ' ' (line ()) )
          with
          | ( [ "side"; side ],
              [ "qubits"; num_qubits ],
              "cells" :: cells,
              [ "md5"; digest ] ) -> (
            try
              let e =
                {
                  side = int_of_string side;
                  num_qubits = int_of_string num_qubits;
                  cells = Array.of_list (List.map int_of_string cells);
                }
              in
              if String.equal (entry_digest e) digest then Some e else None
            with Failure _ -> None)
          | _ -> None
      in
      match parse () with
      | entry -> close_in ic; entry
      | exception (End_of_file | Sys_error _) -> close_in ic; None))

(* ---------------- lookup ---------------- *)

let placement_of_entry (e : entry) =
  Placement.create (Grid.create e.side) ~num_qubits:e.num_qubits ~cells:e.cells

let find_or_place t ~circuit ~side ~method_ ~seed =
  let k = key ~circuit ~side ~method_ ~seed in
  let cached =
    Mutex.lock t.lock;
    let found = Hashtbl.find_opt t.table k in
    Mutex.unlock t.lock;
    found
  in
  match cached with
  | Some e ->
    Atomic.incr t.memory_hits;
    placement_of_entry e
  | None -> (
    let remember e =
      Mutex.lock t.lock;
      (* Last writer wins: the value is deterministic, so racing workers
         insert identical entries. *)
      Hashtbl.replace t.table k e;
      Mutex.unlock t.lock
    in
    let valid e = e.side = side && e.num_qubits = Circuit.num_qubits circuit in
    (* [placement_of_entry] re-validates the cells (range, distinctness);
       an entry that defeats the digest but not Placement's invariants is
       still a miss, never a crash. *)
    let replayed =
      match read_disk t k with
      | Some e when valid e -> (
        match placement_of_entry e with
        | p -> Some (e, p)
        | exception Invalid_argument _ -> None)
      | Some _ | None -> None
    in
    match replayed with
    | Some (e, p) ->
      Atomic.incr t.disk_hits;
      remember e;
      p
    | None ->
      Atomic.incr t.misses;
      let placement =
        IL.place ~seed ~method_ circuit (Grid.create side)
      in
      let e =
        {
          side;
          num_qubits = Placement.num_qubits placement;
          cells = Placement.to_array placement;
        }
      in
      remember e;
      write_disk t k e;
      placement)
