(** Content-addressed cache of annealed initial placements.

    Simulated-annealing placement dominates compile time for repeated and
    swept workloads, yet its output depends only on the lowered circuit's
    gate structure, the lattice side, the placement method and the seed —
    so identical requests are pure recomputation. This cache memoizes
    placements under a versioned content key in memory (shared across the
    worker pool, mutex-protected) and optionally on disk ([?dir]), so a
    second batch over the same manifest skips the annealing entirely.

    Cache key ([key]): hex MD5 over a canonical description —
    format-version tag, method name, seed, lattice side, qubit count, and
    the lowered gate stream (mnemonic + operand qubits per gate, in
    order). Rotation angles are deliberately excluded: placement depends
    on interaction structure and layering, never on angles. Any change to
    {!Autobraid.Initial_layout}'s algorithm or defaults must bump the
    version tag, invalidating old disk entries.

    Disk entries are one text file per key, written atomically
    (temp file + rename), so concurrent batches sharing a [--cache-dir]
    never observe torn files. Writers additionally serialize on a
    cross-process advisory lock ([<dir>/.lock], best-effort [lockf]) so
    two daemons or batches sharing the directory cannot interleave entry
    writes; within one process a mutex keeps at most one domain in the
    locked section (POSIX drops all of a process's [fcntl] locks when any
    descriptor on the file closes). Reads take no lock at all: every
    entry ends with an md5 trailer over its payload, so unreadable,
    truncated, torn, or bit-flipped entries — even ones that still
    parse — fail the digest check, count as misses, and are recomputed
    and rewritten, never replayed or crashed on. *)

type t

type counters = {
  memory_hits : int;
  disk_hits : int;
  misses : int;  (** placements actually computed *)
}

val create : ?dir:string -> unit -> t
(** In-memory cache; with [dir] also persist placements there (the
    directory is created if missing). *)

val dir : t -> string option

val counters : t -> counters
(** Monotone totals since [create]; safe to read concurrently. *)

val key :
  circuit:Qec_circuit.Circuit.t ->
  side:int ->
  method_:Autobraid.Initial_layout.method_ ->
  seed:int ->
  string
(** The content key described above. [circuit] must already be lowered
    ({!Qec_circuit.Decompose.to_scheduler_gates}) — the schedulers place
    lowered circuits, so hashing anything else would alias distinct
    placements. *)

val find_or_place :
  t ->
  circuit:Qec_circuit.Circuit.t ->
  side:int ->
  method_:Autobraid.Initial_layout.method_ ->
  seed:int ->
  Qec_lattice.Placement.t
(** The placement {!Autobraid.Initial_layout.place} would produce for the
    (lowered) circuit on a fresh [side]×[side] grid — computed on miss,
    replayed from memory or disk on hit. Every call returns a fresh
    [Placement.t] on its own grid, so callers may mutate freely. *)
