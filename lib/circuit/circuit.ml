exception Invalid of string

type t = { name : string; num_qubits : int; gates : Gate.t array }

let invalidf fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let check_gate ~num_qubits i g =
  let qs = Gate.qubits g in
  List.iter
    (fun q ->
      if q < 0 || q >= num_qubits then
        invalidf "gate %d (%s): qubit q%d out of range [0,%d)" i (Gate.name g)
          q num_qubits)
    qs;
  let sorted = List.sort compare qs in
  let rec has_dup = function
    | a :: (b :: _ as rest) -> a = b || has_dup rest
    | [ _ ] | [] -> false
  in
  if has_dup sorted then
    invalidf "gate %d (%s): duplicate operand qubit" i (Gate.name g)

let validate t =
  if t.num_qubits <= 0 then invalidf "circuit %s: no qubits" t.name;
  Array.iteri (check_gate ~num_qubits:t.num_qubits) t.gates

let create ?(name = "circuit") ~num_qubits gates =
  let t = { name; num_qubits; gates = Array.of_list gates } in
  validate t;
  t

let name t = t.name
let num_qubits t = t.num_qubits
let gates t = t.gates
let gate t i = t.gates.(i)
let length t = Array.length t.gates

let count_if p t =
  Array.fold_left (fun acc g -> if p g then acc + 1 else acc) 0 t.gates

let two_qubit_count t = count_if Gate.is_two_qubit t
let single_qubit_count t = count_if Gate.is_single_qubit t

let iter f t = Array.iteri f t.gates

let append a b =
  if a.num_qubits <> b.num_qubits then
    invalidf "append: width mismatch (%d vs %d)" a.num_qubits b.num_qubits;
  { a with gates = Array.append a.gates b.gates }

let map_gates f t =
  let out = ref [] in
  Array.iter (fun g -> List.iter (fun g' -> out := g' :: !out) (f g)) t.gates;
  let t' = { t with gates = Array.of_list (List.rev !out) } in
  validate t';
  t'

let with_name name t = { t with name }

let used_qubits t =
  let used = Array.make t.num_qubits false in
  Array.iter (fun g -> List.iter (fun q -> used.(q) <- true) (Gate.qubits g))
    t.gates;
  let out = ref [] in
  for q = t.num_qubits - 1 downto 0 do
    if used.(q) then out := q :: !out
  done;
  !out

let compact t =
  match used_qubits t with
  | [] -> { t with num_qubits = 1; gates = [||] }
  | used ->
    let map = Array.make t.num_qubits (-1) in
    List.iteri (fun i q -> map.(q) <- i) used;
    {
      t with
      num_qubits = List.length used;
      gates = Array.map (Gate.map_qubits (fun q -> map.(q))) t.gates;
    }

let pp ppf t =
  Format.fprintf ppf "@[<v># %s: %d qubits, %d gates@," t.name t.num_qubits
    (Array.length t.gates);
  Array.iter (fun g -> Format.fprintf ppf "%a@," Gate.pp g) t.gates;
  Format.fprintf ppf "@]"

module Builder = struct
  type circuit = t

  type t = {
    b_name : string;
    b_num_qubits : int;
    mutable rev_gates : Gate.t list;
    mutable count : int;
  }

  let create ?(name = "circuit") ~num_qubits () =
    if num_qubits <= 0 then invalidf "Builder.create: no qubits";
    { b_name = name; b_num_qubits = num_qubits; rev_gates = []; count = 0 }

  let add b g =
    check_gate ~num_qubits:b.b_num_qubits b.count g;
    b.rev_gates <- g :: b.rev_gates;
    b.count <- b.count + 1

  let add_list b gs = List.iter (add b) gs

  let length b = b.count

  let finish b : circuit =
    {
      name = b.b_name;
      num_qubits = b.b_num_qubits;
      gates = Array.of_list (List.rev b.rev_gates);
    }
end
