(** Logical quantum circuits.

    A circuit is an ordered sequence of {!Gate.t} over qubits
    [0 .. num_qubits - 1]. Program order on each qubit defines the
    dependency structure used by {!Dag}. *)

type t

exception Invalid of string
(** Raised by {!validate} and the builder on malformed circuits (operand out
    of range, duplicate operands in one gate, ...). *)

val create : ?name:string -> num_qubits:int -> Gate.t list -> t
(** Build and validate a circuit. Raises {!Invalid}. *)

val name : t -> string

val num_qubits : t -> int

val gates : t -> Gate.t array
(** The gate sequence. Callers must not mutate the returned array. *)

val gate : t -> int -> Gate.t
(** [gate c i] is the [i]-th gate. *)

val length : t -> int
(** Number of gates. *)

val validate : t -> unit
(** Re-check all invariants; raises {!Invalid} with a descriptive message. *)

val count_if : (Gate.t -> bool) -> t -> int

val two_qubit_count : t -> int

val single_qubit_count : t -> int

val iter : (int -> Gate.t -> unit) -> t -> unit
(** Iterate gates with their indices, in program order. *)

val append : t -> t -> t
(** Concatenate two circuits on the same qubit count. The result takes the
    first circuit's name. Raises {!Invalid} on width mismatch. *)

val map_gates : (Gate.t -> Gate.t list) -> t -> t
(** Rewrite every gate to a (possibly empty) replacement sequence, keeping
    name and width; the result is re-validated. *)

val with_name : string -> t -> t

val used_qubits : t -> int list
(** Qubits touched by at least one gate, ascending. *)

val compact : t -> t
(** Renumber qubits so only used ones remain, preserving gate order and
    relative qubit order — the shrinking step that deletes idle wires. A
    gate-free circuit compacts to one (idle) qubit, the narrowest valid
    width. *)

val pp : Format.formatter -> t -> unit
(** Multi-line listing: header plus one gate per line. *)

(** {2 Builder}

    Imperative accumulation for generators and parsers. *)

module Builder : sig
  type circuit := t

  type t

  val create : ?name:string -> num_qubits:int -> unit -> t

  val add : t -> Gate.t -> unit
  (** Append one gate; validated eagerly. Raises {!Invalid}. *)

  val add_list : t -> Gate.t list -> unit

  val length : t -> int

  val finish : t -> circuit
  (** Freeze into a circuit. The builder may continue accumulating (the
      frozen circuit is unaffected). *)
end
