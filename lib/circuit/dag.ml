module Int_set = Set.Make (Int)

type t = {
  circuit : Circuit.t;
  preds : int list array; (* ascending *)
  succs : int list array; (* ascending *)
}

let of_circuit circuit =
  let n = Circuit.length circuit in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  (* last.(q) = most recent gate touching qubit q, if any *)
  let last = Array.make (Circuit.num_qubits circuit) (-1) in
  Circuit.iter
    (fun i g ->
      let ps = ref Int_set.empty in
      List.iter
        (fun q ->
          if last.(q) >= 0 then ps := Int_set.add last.(q) !ps;
          last.(q) <- i)
        (Gate.qubits g);
      let ps = Int_set.elements !ps in
      preds.(i) <- ps;
      List.iter (fun p -> succs.(p) <- i :: succs.(p)) ps)
    circuit;
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  (* succs accumulated in program order which is ascending already after
     reversal; dedupe is unnecessary because preds were deduped. *)
  { circuit; preds; succs }

let circuit t = t.circuit
let num_gates t = Array.length t.preds
let preds t i = t.preds.(i)
let succs t i = t.succs.(i)

let asap_levels t =
  let n = num_gates t in
  let level = Array.make n 0 in
  for i = 0 to n - 1 do
    level.(i) <-
      List.fold_left (fun acc p -> max acc (level.(p) + 1)) 0 t.preds.(i)
  done;
  level

let depth t =
  let levels = asap_levels t in
  Array.fold_left (fun acc l -> max acc (l + 1)) 0 levels

let layers t =
  let levels = asap_levels t in
  let d = Array.fold_left (fun acc l -> max acc (l + 1)) 0 levels in
  let out = Array.make d [] in
  for i = num_gates t - 1 downto 0 do
    out.(levels.(i)) <- i :: out.(levels.(i))
  done;
  out

let critical_path ~cost t =
  let n = num_gates t in
  let finish = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let start =
      List.fold_left (fun acc p -> max acc finish.(p)) 0 t.preds.(i)
    in
    finish.(i) <- start + cost (Circuit.gate t.circuit i);
    if finish.(i) > !total then total := finish.(i)
  done;
  !total

let two_qubit_layer_histogram t =
  let per_layer =
    Array.map
      (fun ids ->
        List.length
          (List.filter
             (fun i -> Gate.is_two_qubit (Circuit.gate t.circuit i))
             ids))
      (layers t)
  in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun k ->
      let cur = try Hashtbl.find tbl k with Not_found -> 0 in
      Hashtbl.replace tbl k (cur + 1))
    per_layer;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

module Frontier = struct
  type dag = t

  (* Pre-rewrite Int_set implementation, kept verbatim as the differential
     oracle for the bitset frontier below (see test_dag.ml and the
     sched/incremental-frontier property). Scheduled for deletion once the
     bitset frontier has survived a release. *)
  module Reference = struct
    type nonrec t = {
      dag : dag;
      indegree : int array;
      mutable ready_set : Int_set.t;
      mutable left : int;
    }

    let create dag =
      let n = num_gates dag in
      let indegree = Array.init n (fun i -> List.length dag.preds.(i)) in
      let ready_set = ref Int_set.empty in
      for i = 0 to n - 1 do
        if indegree.(i) = 0 then ready_set := Int_set.add i !ready_set
      done;
      { dag; indegree; ready_set = !ready_set; left = n }

    let ready t = Int_set.elements t.ready_set

    let complete t i =
      if not (Int_set.mem i t.ready_set) then
        invalid_arg (Printf.sprintf "Frontier.complete: gate %d not ready" i);
      t.ready_set <- Int_set.remove i t.ready_set;
      t.left <- t.left - 1;
      List.iter
        (fun s ->
          t.indegree.(s) <- t.indegree.(s) - 1;
          if t.indegree.(s) = 0 then t.ready_set <- Int_set.add s t.ready_set)
        t.dag.succs.(i)

    let is_done t = t.left = 0
    let remaining t = t.left
  end

  (* Bitset-backed frontier: the ready set is one bit per gate, updated in
     place as gates complete. [ready]/[iter_ready] visit members in
     ascending id order — exactly [Int_set.elements] of the reference —
     without the per-round tree rebalancing or list churn. *)
  type nonrec t = {
    dag : dag;
    indegree : int array;
    ready_bits : Qec_util.Bitset.t;
    mutable left : int;
  }

  let create dag =
    let n = num_gates dag in
    let indegree = Array.init n (fun i -> List.length dag.preds.(i)) in
    let ready_bits = Qec_util.Bitset.create n in
    for i = 0 to n - 1 do
      if indegree.(i) = 0 then Qec_util.Bitset.add ready_bits i
    done;
    { dag; indegree; ready_bits; left = n }

  let ready t = Qec_util.Bitset.to_list t.ready_bits

  let iter_ready f t = Qec_util.Bitset.iter f t.ready_bits

  let complete t i =
    if not (Qec_util.Bitset.mem t.ready_bits i) then
      invalid_arg (Printf.sprintf "Frontier.complete: gate %d not ready" i);
    Qec_util.Bitset.remove t.ready_bits i;
    t.left <- t.left - 1;
    List.iter
      (fun s ->
        t.indegree.(s) <- t.indegree.(s) - 1;
        if t.indegree.(s) = 0 then Qec_util.Bitset.add t.ready_bits s)
      t.dag.succs.(i)

  let is_done t = t.left = 0
  let remaining t = t.left
end
