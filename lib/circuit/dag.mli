(** Gate dependency DAG and scheduling frontier.

    Two gates depend on each other iff they share an operand qubit; the
    earlier one in program order is the predecessor. This is the standard
    as-soon-as-possible model: gates on disjoint qubits may run
    concurrently ("theoretically concurrent CX gates" in the paper). *)

type t

val of_circuit : Circuit.t -> t

val circuit : t -> Circuit.t

val num_gates : t -> int

val preds : t -> int -> int list
(** Immediate predecessors of a gate id (ascending). *)

val succs : t -> int -> int list
(** Immediate successors of a gate id (ascending). *)

val asap_levels : t -> int array
(** Unit-cost ASAP level of each gate (sources at level 0). *)

val depth : t -> int
(** Number of unit-cost levels; 0 for an empty circuit. *)

val layers : t -> int list array
(** Gate ids grouped by ASAP level, ids ascending within a layer. *)

val critical_path : cost:(Gate.t -> int) -> t -> int
(** Longest path where each gate contributes [cost gate]. This is the
    paper's "critical path (CP)" ideal latency once [cost] is the
    surface-code gate latency (see {!Qec_surface.Timing}). *)

val two_qubit_layer_histogram : t -> (int * int) list
(** For each count [k] of theoretically-concurrent two-qubit gates, how
    many ASAP layers have exactly [k] of them. Sorted by [k]. Used for the
    communication-parallelism analysis stage of the framework. *)

(** {2 Frontier}

    Mutable ready-set tracking for round-based schedulers. The ready set
    is a bitset over gate ids, updated in place as gates complete; its
    observable behavior is pinned to {!Frontier.Reference} by differential
    tests and the [sched/incremental-frontier] fuzz property. *)

module Frontier : sig
  type dag := t

  type t

  val create : dag -> t

  val ready : t -> int list
  (** Ids of gates whose predecessors have all completed, ascending. *)

  val iter_ready : (int -> unit) -> t -> unit
  (** Visit ready gate ids in ascending order without building a list. *)

  val complete : t -> int -> unit
  (** Mark a ready gate as executed, unlocking successors. Raises
      [Invalid_argument] if the gate is not currently ready. *)

  val is_done : t -> bool

  val remaining : t -> int
  (** Gates not yet completed. *)

  (** The pre-rewrite [Set.Make (Int)] frontier, kept as the differential
      oracle for the bitset implementation (see test_dag.ml). Scheduled
      for deletion once the bitset frontier has survived a release. *)
  module Reference : sig
    type t

    val create : dag -> t
    val ready : t -> int list
    val complete : t -> int -> unit
    val is_done : t -> bool
    val remaining : t -> int
  end
end
