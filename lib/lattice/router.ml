module Tel = Qec_telemetry.Telemetry

type t = {
  grid : Grid.t;
  vside : int; (* Grid.side + 1, for inline vertex coordinate math *)
  gen : int array; (* generation stamp per vertex *)
  gscore : int array;
  came_from : int array;
  closed : bool array;
  mutable generation : int;
  open_list : int Qec_util.Heap.t; (* reference implementation's open list *)
  pq : Qec_util.Heap.Int_pq.t; (* arena implementation's open list *)
  goal_ids : int array; (* up to 4 usable target corners *)
  goal_x : int array;
  goal_y : int array;
  mutable n_goals : int;
}

let create grid =
  let n = Grid.num_vertices grid in
  {
    grid;
    vside = Grid.side grid + 1;
    gen = Array.make n 0;
    gscore = Array.make n 0;
    came_from = Array.make n (-1);
    closed = Array.make n false;
    generation = 0;
    open_list = Qec_util.Heap.create ();
    pq = Qec_util.Heap.Int_pq.create ~capacity:64 ();
    goal_ids = Array.make 4 (-1);
    goal_x = Array.make 4 0;
    goal_y = Array.make 4 0;
    n_goals = 0;
  }

let grid t = t.grid

let fresh t v =
  if t.gen.(v) <> t.generation then begin
    t.gen.(v) <- t.generation;
    t.gscore.(v) <- max_int;
    t.came_from.(v) <- -1;
    t.closed.(v) <- false
  end

let in_bounds grid bounds v =
  match bounds with
  | None -> true
  | Some (b : Bbox.t) ->
    let x, y = Grid.vertex_xy grid v in
    b.x0 <= x && x <= b.x1 + 1 && b.y0 <= y && y <= b.y1 + 1

(* Pre-rewrite closure-and-list A* kept verbatim as the differential
   oracle for the arena implementation below (see test_router.ml); it
   shares the generation-stamped scratch arrays, so interleaving the two
   is safe. Scheduled for deletion once the arena path has survived a
   release. *)
let route_reference ?bounds t occ ~src_cell ~dst_cell =
  if src_cell = dst_cell then invalid_arg "Router.route: same cell";
  if Occupancy.grid occ != t.grid then
    invalid_arg "Router.route: occupancy grid mismatch";
  t.generation <- t.generation + 1;
  Qec_util.Heap.clear t.open_list;
  let expansions = ref 0 in
  let usable v = Occupancy.is_free occ v && in_bounds t.grid bounds v in
  let goals =
    Array.to_list (Grid.cell_corners t.grid dst_cell) |> List.filter usable
  in
  let result =
  if goals = [] then None
  else begin
    let is_goal = Array.make 4 (-1) in
    List.iteri (fun i v -> is_goal.(i) <- v) goals;
    let goal v = Array.exists (( = ) v) is_goal in
    let heuristic v =
      List.fold_left
        (fun acc g -> min acc (Grid.vertex_distance t.grid v g))
        max_int goals
    in
    let push v g =
      fresh t v;
      if g < t.gscore.(v) then begin
        t.gscore.(v) <- g;
        Qec_util.Heap.push t.open_list ~priority:(g + heuristic v) v
      end
    in
    Array.iter
      (fun v -> if usable v then push v 0)
      (Grid.cell_corners t.grid src_cell);
    let rec search () =
      match Qec_util.Heap.pop_min t.open_list with
      | None -> None
      | Some v ->
        fresh t v;
        if t.closed.(v) then search ()
        else if goal v then Some v
        else begin
          t.closed.(v) <- true;
          incr expansions;
          let g' = t.gscore.(v) + 1 in
          List.iter
            (fun nb ->
              if usable nb then begin
                fresh t nb;
                if (not t.closed.(nb)) && g' < t.gscore.(nb) then begin
                  t.gscore.(nb) <- g';
                  t.came_from.(nb) <- v;
                  Qec_util.Heap.push t.open_list ~priority:(g' + heuristic nb)
                    nb
                end
              end)
            (Grid.vertex_neighbors t.grid v);
          search ()
        end
    in
    match search () with
    | None -> None
    | Some reached ->
      let rec walk v acc =
        if t.came_from.(v) = -1 then v :: acc else walk t.came_from.(v) (v :: acc)
      in
      Some (Path.of_vertices t.grid (walk reached []))
  end
  in
  if Tel.enabled () then begin
    Tel.count "router.routes";
    Tel.count ~by:!expansions "router.expansions";
    match result with
    | Some p -> Tel.sample "router.path_length" (float_of_int (Path.length p))
    | None -> Tel.count "router.route_failures"
  end;
  result

(* Arena A*: same search as [route_reference] — multi-source multi-target,
   FIFO tie-breaks, identical expansion order — but the inner loop touches
   only preallocated flat arrays: goals live in fixed 4-slot arrays,
   neighbors are enumerated by index arithmetic (no list), the open list
   is the packed-key Int_pq (no node allocation), and heuristic /
   bounds checks use inline coordinate math (no tuples). The only
   allocation on a successful route is the returned path. *)
let route ?bounds t occ ~src_cell ~dst_cell =
  if src_cell = dst_cell then invalid_arg "Router.route: same cell";
  if Occupancy.grid occ != t.grid then
    invalid_arg "Router.route: occupancy grid mismatch";
  t.generation <- t.generation + 1;
  Qec_util.Heap.Int_pq.clear t.pq;
  let vside = t.vside in
  (* Bounds as inclusive vertex-coordinate ranges (whole grid if none). *)
  let bx0, bx1, by0, by1 =
    match bounds with
    | None -> (0, vside - 1, 0, vside - 1)
    | Some (b : Bbox.t) -> (b.x0, b.x1 + 1, b.y0, b.y1 + 1)
  in
  let usable v =
    Occupancy.is_free occ v
    &&
    let x = v mod vside and y = v / vside in
    bx0 <= x && x <= bx1 && by0 <= y && y <= by1
  in
  let expansions = ref 0 in
  t.n_goals <- 0;
  Array.iter
    (fun v ->
      if usable v then begin
        t.goal_ids.(t.n_goals) <- v;
        t.goal_x.(t.n_goals) <- v mod vside;
        t.goal_y.(t.n_goals) <- v / vside;
        t.n_goals <- t.n_goals + 1
      end)
    (Grid.cell_corners t.grid dst_cell);
  let result =
    if t.n_goals = 0 then None
    else begin
      let heuristic v =
        let x = v mod vside and y = v / vside in
        let best = ref max_int in
        for i = 0 to t.n_goals - 1 do
          let d = abs (x - t.goal_x.(i)) + abs (y - t.goal_y.(i)) in
          if d < !best then best := d
        done;
        !best
      in
      let is_goal v =
        let rec go i =
          i < t.n_goals && (t.goal_ids.(i) = v || go (i + 1))
        in
        go 0
      in
      Array.iter
        (fun v ->
          if usable v then begin
            fresh t v;
            if t.gscore.(v) > 0 then begin
              t.gscore.(v) <- 0;
              Qec_util.Heap.Int_pq.push t.pq ~priority:(heuristic v) v
            end
          end)
        (Grid.cell_corners t.grid src_cell);
      let reached = ref (-1) in
      let continue = ref true in
      while !continue do
        let v = Qec_util.Heap.Int_pq.pop_min t.pq in
        if v < 0 then continue := false
        else begin
          fresh t v;
          if not t.closed.(v) then begin
            if is_goal v then begin
              reached := v;
              continue := false
            end
            else begin
              t.closed.(v) <- true;
              incr expansions;
              let g' = t.gscore.(v) + 1 in
              let x = v mod vside and y = v / vside in
              (* Ascending vertex-id order, exactly the reference's
                 neighbor list: y-1, x-1, x+1, y+1. *)
              let expand nb =
                if usable nb then begin
                  fresh t nb;
                  if (not t.closed.(nb)) && g' < t.gscore.(nb) then begin
                    t.gscore.(nb) <- g';
                    t.came_from.(nb) <- v;
                    Qec_util.Heap.Int_pq.push t.pq
                      ~priority:(g' + heuristic nb)
                      nb
                  end
                end
              in
              if y > 0 then expand (v - vside);
              if x > 0 then expand (v - 1);
              if x + 1 < vside then expand (v + 1);
              if y + 1 < vside then expand (v + vside)
            end
          end
        end
      done;
      if !reached < 0 then None
      else begin
        let rec walk v acc =
          if t.came_from.(v) = -1 then v :: acc
          else walk t.came_from.(v) (v :: acc)
        in
        Some (Path.of_vertices t.grid (walk !reached []))
      end
    end
  in
  if Tel.enabled () then begin
    Tel.count "router.routes";
    Tel.count ~by:!expansions "router.expansions";
    match result with
    | Some p -> Tel.sample "router.path_length" (float_of_int (Path.length p))
    | None -> Tel.count "router.route_failures"
  end;
  result

let route_and_reserve ?bounds t occ ~src_cell ~dst_cell =
  match route ?bounds t occ ~src_cell ~dst_cell with
  | None -> None
  | Some p ->
    Occupancy.reserve_path occ p;
    Some p

(* Vertex ids along a straight channel segment from (x1,y1) to (x2,y2),
   endpoints included; the coordinates must share an axis. *)
let segment t (x1, y1) (x2, y2) =
  if x1 = x2 then
    let step = if y2 >= y1 then 1 else -1 in
    List.init
      (abs (y2 - y1) + 1)
      (fun i -> Grid.vertex_id t.grid ~x:x1 ~y:(y1 + (i * step)))
  else begin
    assert (y1 = y2);
    let step = if x2 >= x1 then 1 else -1 in
    List.init
      (abs (x2 - x1) + 1)
      (fun i -> Grid.vertex_id t.grid ~x:(x1 + (i * step)) ~y:y1)
  end

let l_candidates t a b =
  let axy = Grid.vertex_xy t.grid a and bxy = Grid.vertex_xy t.grid b in
  let ax, ay = axy and bx, by = bxy in
  if a = b then [ [ a ] ]
  else if ax = bx || ay = by then [ segment t axy bxy ]
  else begin
    let x_first = segment t axy (bx, ay) @ List.tl (segment t (bx, ay) bxy) in
    let y_first = segment t axy (ax, by) @ List.tl (segment t (ax, by) bxy) in
    [ x_first; y_first ]
  end

let route_dimension_ordered t occ ~src_cell ~dst_cell =
  if src_cell = dst_cell then
    invalid_arg "Router.route_dimension_ordered: same cell";
  if Occupancy.grid occ != t.grid then
    invalid_arg "Router.route_dimension_ordered: occupancy grid mismatch";
  let corners_src = Array.to_list (Grid.cell_corners t.grid src_cell)
  and corners_dst = Array.to_list (Grid.cell_corners t.grid dst_cell) in
  let candidates =
    List.concat_map
      (fun a -> List.concat_map (fun b -> l_candidates t a b) corners_dst
                |> List.map (fun p -> (a, p)))
      corners_src
    |> List.map snd
  in
  let candidates =
    List.stable_sort
      (fun p q -> compare (List.length p) (List.length q))
      candidates
  in
  let free p = List.for_all (Occupancy.is_free occ) p in
  let result =
    match List.find_opt free candidates with
    | None -> None
    | Some verts -> Some (Path.of_vertices t.grid verts)
  in
  if Tel.enabled () then begin
    Tel.count "router.dim_ordered_routes";
    match result with
    | Some p -> Tel.sample "router.path_length" (float_of_int (Path.length p))
    | None -> Tel.count "router.dim_ordered_failures"
  end;
  result

let route_dimension_ordered_and_reserve t occ ~src_cell ~dst_cell =
  match route_dimension_ordered t occ ~src_cell ~dst_cell with
  | None -> None
  | Some p ->
    Occupancy.reserve_path occ p;
    Some p
