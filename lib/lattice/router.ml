module Tel = Qec_telemetry.Telemetry

type t = {
  grid : Grid.t;
  gen : int array; (* generation stamp per vertex *)
  gscore : int array;
  came_from : int array;
  closed : bool array;
  mutable generation : int;
  open_list : int Qec_util.Heap.t;
}

let create grid =
  let n = Grid.num_vertices grid in
  {
    grid;
    gen = Array.make n 0;
    gscore = Array.make n 0;
    came_from = Array.make n (-1);
    closed = Array.make n false;
    generation = 0;
    open_list = Qec_util.Heap.create ();
  }

let grid t = t.grid

let fresh t v =
  if t.gen.(v) <> t.generation then begin
    t.gen.(v) <- t.generation;
    t.gscore.(v) <- max_int;
    t.came_from.(v) <- -1;
    t.closed.(v) <- false
  end

let in_bounds grid bounds v =
  match bounds with
  | None -> true
  | Some (b : Bbox.t) ->
    let x, y = Grid.vertex_xy grid v in
    b.x0 <= x && x <= b.x1 + 1 && b.y0 <= y && y <= b.y1 + 1

let route ?bounds t occ ~src_cell ~dst_cell =
  if src_cell = dst_cell then invalid_arg "Router.route: same cell";
  if Occupancy.grid occ != t.grid then
    invalid_arg "Router.route: occupancy grid mismatch";
  t.generation <- t.generation + 1;
  Qec_util.Heap.clear t.open_list;
  let expansions = ref 0 in
  let usable v = Occupancy.is_free occ v && in_bounds t.grid bounds v in
  let goals =
    Array.to_list (Grid.cell_corners t.grid dst_cell) |> List.filter usable
  in
  let result =
  if goals = [] then None
  else begin
    let is_goal = Array.make 4 (-1) in
    List.iteri (fun i v -> is_goal.(i) <- v) goals;
    let goal v = Array.exists (( = ) v) is_goal in
    let heuristic v =
      List.fold_left
        (fun acc g -> min acc (Grid.vertex_distance t.grid v g))
        max_int goals
    in
    let push v g =
      fresh t v;
      if g < t.gscore.(v) then begin
        t.gscore.(v) <- g;
        Qec_util.Heap.push t.open_list ~priority:(g + heuristic v) v
      end
    in
    Array.iter
      (fun v -> if usable v then push v 0)
      (Grid.cell_corners t.grid src_cell);
    let rec search () =
      match Qec_util.Heap.pop_min t.open_list with
      | None -> None
      | Some v ->
        fresh t v;
        if t.closed.(v) then search ()
        else if goal v then Some v
        else begin
          t.closed.(v) <- true;
          incr expansions;
          let g' = t.gscore.(v) + 1 in
          List.iter
            (fun nb ->
              if usable nb then begin
                fresh t nb;
                if (not t.closed.(nb)) && g' < t.gscore.(nb) then begin
                  t.gscore.(nb) <- g';
                  t.came_from.(nb) <- v;
                  Qec_util.Heap.push t.open_list ~priority:(g' + heuristic nb)
                    nb
                end
              end)
            (Grid.vertex_neighbors t.grid v);
          search ()
        end
    in
    match search () with
    | None -> None
    | Some reached ->
      let rec walk v acc =
        if t.came_from.(v) = -1 then v :: acc else walk t.came_from.(v) (v :: acc)
      in
      Some (Path.of_vertices t.grid (walk reached []))
  end
  in
  if Tel.enabled () then begin
    Tel.count "router.routes";
    Tel.count ~by:!expansions "router.expansions";
    match result with
    | Some p -> Tel.sample "router.path_length" (float_of_int (Path.length p))
    | None -> Tel.count "router.route_failures"
  end;
  result

let route_and_reserve ?bounds t occ ~src_cell ~dst_cell =
  match route ?bounds t occ ~src_cell ~dst_cell with
  | None -> None
  | Some p ->
    Occupancy.reserve_path occ p;
    Some p

(* Vertex ids along a straight channel segment from (x1,y1) to (x2,y2),
   endpoints included; the coordinates must share an axis. *)
let segment t (x1, y1) (x2, y2) =
  if x1 = x2 then
    let step = if y2 >= y1 then 1 else -1 in
    List.init
      (abs (y2 - y1) + 1)
      (fun i -> Grid.vertex_id t.grid ~x:x1 ~y:(y1 + (i * step)))
  else begin
    assert (y1 = y2);
    let step = if x2 >= x1 then 1 else -1 in
    List.init
      (abs (x2 - x1) + 1)
      (fun i -> Grid.vertex_id t.grid ~x:(x1 + (i * step)) ~y:y1)
  end

let l_candidates t a b =
  let axy = Grid.vertex_xy t.grid a and bxy = Grid.vertex_xy t.grid b in
  let ax, ay = axy and bx, by = bxy in
  if a = b then [ [ a ] ]
  else if ax = bx || ay = by then [ segment t axy bxy ]
  else begin
    let x_first = segment t axy (bx, ay) @ List.tl (segment t (bx, ay) bxy) in
    let y_first = segment t axy (ax, by) @ List.tl (segment t (ax, by) bxy) in
    [ x_first; y_first ]
  end

let route_dimension_ordered t occ ~src_cell ~dst_cell =
  if src_cell = dst_cell then
    invalid_arg "Router.route_dimension_ordered: same cell";
  if Occupancy.grid occ != t.grid then
    invalid_arg "Router.route_dimension_ordered: occupancy grid mismatch";
  let corners_src = Array.to_list (Grid.cell_corners t.grid src_cell)
  and corners_dst = Array.to_list (Grid.cell_corners t.grid dst_cell) in
  let candidates =
    List.concat_map
      (fun a -> List.concat_map (fun b -> l_candidates t a b) corners_dst
                |> List.map (fun p -> (a, p)))
      corners_src
    |> List.map snd
  in
  let candidates =
    List.stable_sort
      (fun p q -> compare (List.length p) (List.length q))
      candidates
  in
  let free p = List.for_all (Occupancy.is_free occ) p in
  let result =
    match List.find_opt free candidates with
    | None -> None
    | Some verts -> Some (Path.of_vertices t.grid verts)
  in
  if Tel.enabled () then begin
    Tel.count "router.dim_ordered_routes";
    match result with
    | Some p -> Tel.sample "router.path_length" (float_of_int (Path.length p))
    | None -> Tel.count "router.dim_ordered_failures"
  end;
  result

let route_dimension_ordered_and_reserve t occ ~src_cell ~dst_cell =
  match route_dimension_ordered t occ ~src_cell ~dst_cell with
  | None -> None
  | Some p ->
    Occupancy.reserve_path occ p;
    Some p
