(** A* shortest-path search on the channel graph.

    Finds a braiding path between two cells: from any {e free} corner
    vertex of the source cell to any free corner vertex of the target cell,
    through free vertices only. All 16 corner-pair configurations (§3.1)
    are explored at once by a multi-source / multi-target search.

    The router object owns scratch buffers sized to the grid, so repeated
    queries allocate almost nothing; expansions are deterministic (FIFO
    tie-breaking on equal f-scores). *)

type t

val create : Grid.t -> t

val grid : t -> Grid.t

val route :
  ?bounds:Bbox.t ->
  t ->
  Occupancy.t ->
  src_cell:int ->
  dst_cell:int ->
  Path.t option
(** Shortest free path, or [None] when the cells are disconnected under
    the current occupancy. With [bounds], the search is confined to the
    vertex footprint of the box (used to keep LLG-local paths inside their
    bounding box). If the two cells are adjacent and share a free corner,
    the result may be a single-vertex path. Raises [Invalid_argument] if
    [src_cell = dst_cell] or the occupancy's grid differs. *)

val route_reference :
  ?bounds:Bbox.t ->
  t ->
  Occupancy.t ->
  src_cell:int ->
  dst_cell:int ->
  Path.t option
(** The pre-rewrite closure-and-list A*, kept verbatim as the differential
    oracle for {!route} (see test_router.ml): identical arguments,
    identical results, byte-identical expansion order. Scheduled for
    deletion once the arena implementation has survived a release. *)

val route_and_reserve :
  ?bounds:Bbox.t ->
  t ->
  Occupancy.t ->
  src_cell:int ->
  dst_cell:int ->
  Path.t option
(** {!route}, and on success immediately claim the path's vertices. *)

val route_dimension_ordered :
  t -> Occupancy.t -> src_cell:int -> dst_cell:int -> Path.t option
(** Dimension-ordered (single-bend, "L-shaped") routing: for each pair of
    free corners, try the x-then-y and y-then-x staircase with one bend;
    the first fully-free candidate wins (candidates ordered by length,
    then deterministically). No detours — this is how the MICRO'17
    braidflash baseline routes, and why it stalls under congestion while
    an A* searcher finds a way around. Raises like {!route}. *)

val route_dimension_ordered_and_reserve :
  t -> Occupancy.t -> src_cell:int -> dst_cell:int -> Path.t option
