(* Tests for the surface-code error model, timing, and resource counts. *)

module E = Qec_surface.Error_model
module T = Qec_surface.Timing
module R = Qec_surface.Resources
module G = Qec_circuit.Gate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_eq1_paper_point () =
  (* §2: p = 0.1%, p_th = 0.57%, d = 55 gives P_L ~ 9.3e-23. Our Eq. (1)
     evaluation must land in the same decade. *)
  let pl = E.logical_error_rate ~d:55 () in
  check_bool "paper magnitude" true (pl > 1e-24 && pl < 1e-21)

let test_eq1_monotone_in_d () =
  let rates = List.map (fun d -> E.logical_error_rate ~d ()) [ 3; 5; 11; 21; 41 ] in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  check_bool "P_L decreases with d" true (decreasing rates)

let test_eq1_invalid () =
  check_bool "d=0" true
    (match E.logical_error_rate ~d:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "p >= threshold" true
    (match
       E.logical_error_rate ~params:{ E.p = 0.01; p_th = 0.0057 } ~d:3 ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_distance_for_target () =
  let d = E.distance_for_target ~target_pl:1e-12 () in
  check_bool "odd" true (d mod 2 = 1);
  check_bool "achieves target" true (E.logical_error_rate ~d () <= 1e-12);
  check_bool "d-2 does not" true
    (d <= 3 || E.logical_error_rate ~d:(d - 2) () > 1e-12)

let test_distance_monotone () =
  let d1 = E.distance_for_target ~target_pl:1e-6 () in
  let d2 = E.distance_for_target ~target_pl:1e-15 () in
  check_bool "tighter target needs larger d" true (d2 > d1)

let test_distance_for_volume () =
  let d = E.distance_for_volume ~volume:1e9 () in
  check_int "same as 1/volume target" (E.distance_for_target ~target_pl:1e-9 ()) d

let test_timing_costs () =
  let t = T.make ~d:33 () in
  check_int "single" 33 (T.single_qubit_cycles t);
  check_int "braid" 66 (T.braid_cycles t);
  check_int "swap layer" 198 (T.swap_layer_cycles t);
  check_int "gate single" 33 (T.gate_cycles t (G.H 0));
  check_int "gate braid" 66 (T.gate_cycles t (G.Cphase (0, 1, 0.1)));
  check_bool "wide rejected" true
    (match T.gate_cycles t (G.Ccx (0, 1, 2)) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_timing_conversions () =
  let t = T.make ~d:33 () in
  Alcotest.(check (float 1e-9)) "us" 220. (T.us_of_cycles t 100);
  Alcotest.(check (float 1e-12)) "s" 2.2e-4 (T.seconds_of_cycles t 100);
  check_int "default d" 33 T.default_d

let test_timing_invalid () =
  check_bool "d<1" true
    (match T.make ~d:0 () with exception Invalid_argument _ -> true | _ -> false);
  check_bool "cycle<=0" true
    (match T.make ~cycle_us:0. ~d:3 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_surgery_timing_costs () =
  let module St = Qec_surface.Surgery_timing in
  let t = T.make ~d:33 () in
  check_int "merge is d" 33 (St.merge_cycles t);
  check_int "split is d" 33 (St.split_cycles t);
  check_int "cx is merge+split" 66 (St.cx_cycles t);
  check_int "tile time" (5 * 33) (St.tile_time t ~path_vertices:5);
  check_int "gate single" 33 (St.gate_cycles t (G.H 0));
  check_int "gate cx" 66 (St.gate_cycles t (G.Cx (0, 1)))

let test_surgery_timing_d1 () =
  (* d = 1 is the degenerate single-cycle code: every constant collapses
     to the path-length scale. *)
  let module St = Qec_surface.Surgery_timing in
  let t = T.make ~d:1 () in
  check_int "merge" 1 (St.merge_cycles t);
  check_int "split" 1 (St.split_cycles t);
  check_int "cx" 2 (St.cx_cycles t);
  check_int "tile time is path length" 7 (St.tile_time t ~path_vertices:7)

let test_surgery_timing_invalid () =
  let module St = Qec_surface.Surgery_timing in
  let t = T.make ~d:3 () in
  check_bool "barrier rejected" true
    (match St.gate_cycles t (G.Barrier [ 0; 1 ]) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "wide gate rejected" true
    (match St.gate_cycles t (G.Ccx (0, 1, 2)) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "empty ancilla path rejected" true
    (match St.tile_time t ~path_vertices:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_us_of_cycles_roundtrip () =
  (* us_of_cycles is linear, so converting a BV-100 sized cycle count and
     dividing back must recover the count; the magnitude stays in the
     Table 2 regime (Kus, not us or Ms). *)
  let t = T.make ~d:33 () in
  let cycles = 6600 in
  let us = T.us_of_cycles t cycles in
  check_int "round trip" cycles (int_of_float (Float.round (us /. 2.2)));
  check_bool "BV-100 magnitude" true (us > 1.0e3 && us < 1.0e6)

let test_bv100_critical_path_magnitude () =
  (* Table 2: BV-100 critical path 15.2 Kus at d = 33. Our model should be
     within ~20%. *)
  let t = T.make ~d:33 () in
  let dag = Qec_circuit.Dag.of_circuit (Qec_benchmarks.Bv.circuit 100) in
  let cp = Qec_circuit.Dag.critical_path ~cost:(T.gate_cycles t) dag in
  let us = T.us_of_cycles t cp in
  check_bool "within 20% of 15.2Kus" true (us > 12000. && us < 18500.)

let test_lattice_side () =
  check_int "exact square" 10 (R.lattice_side ~num_logical:100);
  check_int "round up" 11 (R.lattice_side ~num_logical:101);
  check_int "single" 1 (R.lattice_side ~num_logical:1)

let test_paper_physical_qubits () =
  (* headline: 5,000 logical qubits ~ 1,620,000 physical qubits *)
  let total = R.total_physical_qubits ~num_logical:5000 ~d:33 in
  check_bool "within 5% of 1.62M" true
    (float_of_int total > 1.54e6 && float_of_int total < 1.70e6)

let test_resources_scale_with_d () =
  check_bool "bigger d costs more" true
    (R.physical_qubits_per_tile ~d:55 > R.physical_qubits_per_tile ~d:33)

let test_summary () =
  let s = R.summary ~num_logical:100 ~d:33 in
  check_bool "has entries" true (List.length s = 5);
  check_bool "lattice string" true (List.mem_assoc "lattice" s)

let () =
  Alcotest.run "surface"
    [
      ( "error model",
        [
          Alcotest.test_case "paper point" `Quick test_eq1_paper_point;
          Alcotest.test_case "monotone in d" `Quick test_eq1_monotone_in_d;
          Alcotest.test_case "invalid" `Quick test_eq1_invalid;
          Alcotest.test_case "distance for target" `Quick test_distance_for_target;
          Alcotest.test_case "distance monotone" `Quick test_distance_monotone;
          Alcotest.test_case "distance for volume" `Quick test_distance_for_volume;
        ] );
      ( "timing",
        [
          Alcotest.test_case "costs" `Quick test_timing_costs;
          Alcotest.test_case "conversions" `Quick test_timing_conversions;
          Alcotest.test_case "invalid" `Quick test_timing_invalid;
          Alcotest.test_case "bv100 magnitude" `Quick test_bv100_critical_path_magnitude;
          Alcotest.test_case "surgery costs" `Quick test_surgery_timing_costs;
          Alcotest.test_case "surgery d=1" `Quick test_surgery_timing_d1;
          Alcotest.test_case "surgery invalid" `Quick test_surgery_timing_invalid;
          Alcotest.test_case "us round trip" `Quick test_us_of_cycles_roundtrip;
        ] );
      ( "resources",
        [
          Alcotest.test_case "lattice side" `Quick test_lattice_side;
          Alcotest.test_case "paper qubit count" `Quick test_paper_physical_qubits;
          Alcotest.test_case "scales with d" `Quick test_resources_scale_with_d;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
    ]
