(* Tests for the batch compilation engine: Spec JSON round-trips, the
   placement cache, backend registry resolution, run_batch determinism
   across worker counts, and structured per-job error records. *)

module Spec = Qec_engine.Spec
module Engine = Qec_engine.Engine
module Cache = Qec_engine.Placement_cache
module Json = Qec_report.Json
module CB = Autobraid.Comm_backend
module IL = Autobraid.Initial_layout
module B = Qec_benchmarks

let () = Engine.ensure_backends ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let with_temp_dir f =
  let dir = Filename.temp_file "autobraid_cache" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Json.of_string                                                       *)

let test_json_parse_scalars () =
  let ok s = Result.get_ok (Json.of_string s) in
  check_bool "null" true (ok "null" = Json.Null);
  check_bool "true" true (ok "true" = Json.Bool true);
  check_bool "int" true (ok "-42" = Json.Int (-42));
  check_bool "float" true (ok "2.5" = Json.Float 2.5);
  check_bool "exponent" true (ok "1e3" = Json.Float 1000.);
  check_bool "string" true (ok {|"hi"|} = Json.String "hi");
  check_bool "escapes" true (ok {|"a\n\"A"|} = Json.String "a\n\"A");
  check_bool "surrogate pair" true
    (ok {|"😀"|} = Json.String "\xf0\x9f\x98\x80")

let test_json_parse_structures () =
  match Json.of_string {| {"a": [1, 2.0, "x"], "b": {"c": null}} |} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
    check_bool "object" true
      (v
      = Json.Obj
          [
            ("a", Json.List [ Json.Int 1; Json.Float 2.; Json.String "x" ]);
            ("b", Json.Obj [ ("c", Json.Null) ]);
          ])

let test_json_parse_errors () =
  let err s =
    match Json.of_string s with Error e -> e | Ok _ -> Alcotest.fail s
  in
  check_bool "position" true (contains (err "{\n  bad") "line 2");
  check_bool "trailing" true (contains (err "1 2") "trailing");
  check_bool "unterminated" true (contains (err {|"abc|}) "unterminated");
  check_bool "bad escape" true (contains (err {|"\q"|}) "escape");
  check_bool "truncated" true (contains (err "[1,") "end of input")

let prop_json_roundtrip =
  let rec gen_json depth =
    let open QCheck.Gen in
    if depth = 0 then
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.Int i) small_signed_int;
          map (fun s -> Json.String s) string_printable;
        ]
    else
      oneof
        [
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.Int i) small_signed_int;
          map
            (fun l -> Json.List l)
            (list_size (int_bound 4) (gen_json (depth - 1)));
          map
            (fun kvs ->
              (* duplicate keys don't round-trip through an assoc list *)
              Json.Obj
                (List.sort_uniq
                   (fun (a, _) (b, _) -> compare a b)
                   kvs))
            (list_size (int_bound 4)
               (pair string_printable (gen_json (depth - 1))));
        ]
  in
  QCheck.Test.make ~name:"Json.of_string inverts to_string" ~count:200
    (QCheck.make (gen_json 3))
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Spec                                                                 *)

let gen_spec : Spec.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* id = opt (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) in
  let* circuit = oneofl [ "qft9"; "bv12"; "fixtures/x.qasm" ] in
  let* backend = oneofl [ "braid"; "surgery" ] in
  let* scheduler = oneofl [ Spec.Full; Spec.Sp; Spec.Baseline ] in
  let* d = int_range 1 63 in
  let* seed = small_nat in
  let* threshold_p = float_bound_exclusive 1.0 in
  let* initial =
    oneofl [ IL.Identity; IL.Bisected; IL.Partitioned; IL.Annealed ]
  in
  let* backend_options =
    oneofl
      [
        [];
        [ ("variant", CB.Options.String "sp") ];
        [
          ("variant", CB.Options.String "full");
          ("threshold_p", CB.Options.Float 0.25);
        ];
        [ ("window", CB.Options.Int 6); ("flag", CB.Options.Bool true) ];
      ]
  in
  let* optimize = bool in
  let* best_p = bool in
  let* trace = bool in
  let* reliability = bool in
  let+ certificate = bool in
  {
    Spec.id;
    circuit;
    backend;
    scheduler;
    d;
    seed;
    threshold_p;
    initial;
    backend_options;
    optimize;
    best_p;
    outputs = { Spec.trace; reliability; certificate };
  }

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"Spec JSON round-trip" ~count:300
    (QCheck.make gen_spec)
    (fun spec ->
      match Spec.of_json (Spec.to_json spec) with
      | Ok spec' -> Spec.equal spec spec'
      | Error _ -> false)

let prop_spec_roundtrip_via_text =
  QCheck.Test.make ~name:"Spec round-trips through rendered text" ~count:300
    (QCheck.make gen_spec)
    (fun spec ->
      match Json.of_string (Json.to_string (Spec.to_json spec)) with
      | Error _ -> false
      | Ok j -> (
        match Spec.of_json j with
        | Ok spec' -> Spec.equal spec spec'
        | Error _ -> false))

let test_spec_defaults_from_empty () =
  match Spec.of_json (Json.Obj [ ("circuit", Json.String "qft9") ]) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok s ->
    check_bool "everything else defaulted" true
      (Spec.equal s { Spec.default with circuit = "qft9" })

let test_spec_decode_errors () =
  let err j =
    match Spec.of_json j with Error e -> e | Ok _ -> Alcotest.fail "accepted"
  in
  check_bool "circuit required" true
    (contains (err (Json.Obj [])) "circuit");
  check_bool "unknown key" true
    (contains
       (err
          (Json.Obj
             [ ("circuit", Json.String "x"); ("frobnicate", Json.Null) ]))
       "frobnicate");
  check_bool "bad scheduler" true
    (contains
       (err
          (Json.Obj
             [
               ("circuit", Json.String "x");
               ("scheduler", Json.String "quantum");
             ]))
       "scheduler")

let test_spec_validate () =
  let ok s = Spec.validate s = Ok () in
  check_bool "default+circuit valid" true
    (ok { Spec.default with circuit = "qft9" });
  check_bool "empty circuit invalid" false (ok Spec.default);
  check_bool "d=0 invalid" false
    (ok { Spec.default with circuit = "x"; d = 0 });
  check_bool "threshold 1.0 invalid" false
    (ok { Spec.default with circuit = "x"; threshold_p = 1.0 });
  check_bool "unknown backend invalid" false
    (ok { Spec.default with circuit = "x"; backend = "nope" });
  check_bool "sp on surgery invalid" false
    (ok
       {
         Spec.default with
         circuit = "x";
         backend = "surgery";
         scheduler = Spec.Sp;
       });
  check_bool "best_p on surgery invalid" false
    (ok
       { Spec.default with circuit = "x"; backend = "surgery"; best_p = true });
  check_bool "valid backend option" true
    (ok
       {
         Spec.default with
         circuit = "x";
         backend_options = [ ("variant", CB.Options.String "sp") ];
       });
  check_bool "unknown option key invalid" false
    (ok
       {
         Spec.default with
         circuit = "x";
         backend_options = [ ("frobnicate", CB.Options.Bool true) ];
       });
  check_bool "option type mismatch invalid" false
    (ok
       {
         Spec.default with
         circuit = "x";
         backend_options = [ ("variant", CB.Options.Int 3) ];
       });
  check_bool "enum case checked" false
    (ok
       {
         Spec.default with
         circuit = "x";
         backend_options = [ ("variant", CB.Options.String "quantum") ];
       });
  check_bool "surgery owns its options" true
    (ok
       {
         Spec.default with
         circuit = "x";
         backend = "surgery";
         backend_options = [ ("ripup", CB.Options.Bool false) ];
       });
  check_bool "braid option rejected on surgery" false
    (ok
       {
         Spec.default with
         circuit = "x";
         backend = "surgery";
         backend_options = [ ("variant", CB.Options.String "sp") ];
       });
  check_bool "semantic validator runs" false
    (ok
       {
         Spec.default with
         circuit = "x";
         backend_options = [ ("threshold_p", CB.Options.Float 1.5) ];
       });
  check_bool "best_p excludes backend_options" false
    (ok
       {
         Spec.default with
         circuit = "x";
         best_p = true;
         backend_options = [ ("variant", CB.Options.String "full") ];
       });
  check_bool "baseline options decode via gp_baseline" true
    (ok
       {
         Spec.default with
         circuit = "x";
         scheduler = Spec.Baseline;
         backend_options = [ ("router", CB.Options.String "astar") ];
       });
  check_bool "baseline rejects braid keys" false
    (ok
       {
         Spec.default with
         circuit = "x";
         scheduler = Spec.Baseline;
         backend_options = [ ("variant", CB.Options.String "sp") ];
       })

let test_manifest_forms () =
  let one = {|{"circuit": "qft9"}|} in
  let bare = Printf.sprintf "[%s, %s]" one one in
  let versioned = Printf.sprintf {|{"version": 1, "jobs": [%s]}|} one in
  check_int "bare array" 2
    (List.length (Result.get_ok (Spec.manifest_of_string bare)));
  check_int "versioned" 1
    (List.length (Result.get_ok (Spec.manifest_of_string versioned)));
  check_bool "bad version" true
    (Result.is_error (Spec.manifest_of_string {|{"version": 9, "jobs": []}|}));
  check_bool "error carries index" true
    (match Spec.manifest_of_string {|[{"circuit": "a"}, {}]|} with
    | Error e -> contains e "1"
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Comm_backend registry                                                *)

let test_registry () =
  check_bool "braid registered" true (CB.of_name "braid" <> None);
  check_bool "surgery registered" true (CB.of_name "surgery" <> None);
  check_bool "lookahead registered" true (CB.of_name "lookahead" <> None);
  check_bool "unknown" true (CB.of_name "warp" = None);
  let names = CB.names () in
  check_bool "all sorted" true (names = List.sort compare names);
  check_bool "names match entries" true
    (names = List.map (fun (e : CB.entry) -> e.CB.name) (CB.all ()));
  List.iter
    (fun b -> check_bool ("names list " ^ b) true (List.mem b names))
    [ "braid"; "surgery"; "lookahead" ]

(* register replaces by name: the latest registration wins, and the
   registry stays sorted and duplicate-free *)
let test_registry_replacement () =
  let dummy desc =
    CB.register ~name:"zz-test-dummy" ~description:desc (fun _ _ ->
        CB.braid ())
  in
  dummy "first";
  dummy "second";
  (match CB.of_name "zz-test-dummy" with
  | None -> Alcotest.fail "dummy not registered"
  | Some e -> check_string "latest registration wins" "second" e.CB.description);
  let names = CB.names () in
  check_int "no duplicate entry" 1
    (List.length (List.filter (( = ) "zz-test-dummy") names));
  check_bool "still sorted" true (names = List.sort compare names)

(* ------------------------------------------------------------------ *)
(* Options codec                                                        *)

let braid_specs =
  match CB.of_name "braid" with
  | Some e -> e.CB.options
  | None -> Alcotest.fail "braid not registered"

let test_options_codec () =
  let open CB.Options in
  (* defaults: every declared key, declaration order *)
  let d = defaults braid_specs in
  check_bool "defaults complete" true
    (List.map fst d = List.map (fun s -> s.key) braid_specs);
  check_string "variant default" "full" (get_string d "variant");
  (* strict decode: overrides land, unknown keys and mismatches error *)
  (match decode braid_specs [ ("variant", String "sp") ] with
  | Ok o ->
    check_string "override lands" "sp" (get_string o "variant");
    check_bool "untouched key keeps default" true
      (get_float o "threshold_p" = get_float d "threshold_p")
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (match decode braid_specs [ ("frobnicate", Bool true) ] with
  | Ok _ -> Alcotest.fail "unknown key accepted"
  | Error e -> check_bool "unknown key named" true (contains e "frobnicate"));
  (match decode braid_specs [ ("variant", Int 3) ] with
  | Ok _ -> Alcotest.fail "type mismatch accepted"
  | Error e -> check_bool "mismatch names key" true (contains e "variant"));
  (* TFloat widens ints *)
  (match decode braid_specs [ ("threshold_p", Int 0) ] with
  | Ok o -> check_bool "int widened to float" true (get_float o "threshold_p" = 0.)
  | Error e -> Alcotest.failf "widening failed: %s" e);
  (* later duplicates win *)
  (match
     decode braid_specs [ ("variant", String "sp"); ("variant", String "full") ]
   with
  | Ok o -> check_string "later duplicate wins" "full" (get_string o "variant")
  | Error e -> Alcotest.failf "duplicate decode failed: %s" e)

let test_options_parse_kv () =
  let open CB.Options in
  (match parse_kv braid_specs "variant=sp" with
  | Ok kv -> check_bool "enum parses" true (kv = ("variant", String "sp"))
  | Error e -> Alcotest.failf "parse_kv failed: %s" e);
  (match parse_kv braid_specs "threshold_p=0.4" with
  | Ok kv -> check_bool "float parses" true (kv = ("threshold_p", Float 0.4))
  | Error e -> Alcotest.failf "parse_kv failed: %s" e);
  check_bool "missing '=' rejected" true
    (Result.is_error (parse_kv braid_specs "variant"));
  check_bool "unknown key rejected" true
    (Result.is_error (parse_kv braid_specs "nope=1"));
  check_bool "bad enum case rejected" true
    (Result.is_error (parse_kv braid_specs "variant=quantum"))

(* The legacy scheduler/threshold_p spec fields are merged beneath
   backend_options: a pre-redesign spec and its options-API spelling
   produce the same schedule, and an explicit option overrides the
   legacy field. *)
let test_legacy_shim_equivalence () =
  let cycles s =
    match Engine.run_spec s with
    | Ok p -> p.Engine.result.Autobraid.Scheduler.total_cycles
    | Error e -> Alcotest.failf "run_spec failed: %s" e.Engine.message
  in
  let base = { Spec.default with circuit = "qaoa12" } in
  let legacy_sp = cycles { base with scheduler = Spec.Sp } in
  let option_sp =
    cycles
      { base with backend_options = [ ("variant", CB.Options.String "sp") ] }
  in
  check_int "legacy sp = option sp" legacy_sp option_sp;
  (* explicit option wins over the legacy field *)
  let full = cycles base in
  let overridden =
    cycles
      {
        base with
        scheduler = Spec.Sp;
        backend_options = [ ("variant", CB.Options.String "full") ];
      }
  in
  check_int "explicit option overrides legacy field" full overridden

(* Pre-redesign manifests decode unchanged: no job in the committed
   fixture acquires backend_options, and re-encoding emits no
   backend_options key. *)
let test_fixture_manifest_compat () =
  let path =
    List.find Sys.file_exists
      [ "../fixtures/batch_manifest.json"; "fixtures/batch_manifest.json" ]
  in
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Spec.manifest_of_string text with
  | Error e -> Alcotest.failf "fixture manifest failed to decode: %s" e
  | Ok specs ->
    check_int "all jobs decode" 6 (List.length specs);
    List.iter
      (fun s ->
        check_bool "no backend_options acquired" true
          (s.Spec.backend_options = []);
        check_bool "re-encoding omits backend_options" false
          (contains (Json.to_string (Spec.to_json s)) "backend_options"))
      specs

(* ------------------------------------------------------------------ *)
(* Placement cache                                                      *)

let lowered name =
  Qec_circuit.Decompose.to_scheduler_gates (B.Registry.build name)

let test_cache_key_sensitivity () =
  let c = lowered "qft9" in
  let k ?(side = 3) ?(method_ = IL.Annealed) ?(seed = 11) circuit =
    Cache.key ~circuit ~side ~method_ ~seed
  in
  check_string "deterministic" (k c) (k c);
  check_bool "seed changes key" true (k c <> k ~seed:12 c);
  check_bool "side changes key" true (k c <> k ~side:4 c);
  check_bool "method changes key" true (k c <> k ~method_:IL.Identity c);
  check_bool "circuit changes key" true (k c <> k (lowered "bv12"));
  (* angles are excluded: rz(θ) streams identically for any θ *)
  let rz theta = Qec_circuit.Circuit.create ~num_qubits:1 [ Qec_circuit.Gate.Rz (0, theta) ] in
  check_string "angle-blind" (k (rz 0.1)) (k (rz 0.9))

let test_cache_find_or_place () =
  let c = lowered "qft9" in
  let side = max 1 (Qec_surface.Resources.lattice_side ~num_logical:(Qec_circuit.Circuit.num_qubits c)) in
  let cache = Cache.create () in
  let p1 = Cache.find_or_place cache ~circuit:c ~side ~method_:IL.Annealed ~seed:11 in
  let p2 = Cache.find_or_place cache ~circuit:c ~side ~method_:IL.Annealed ~seed:11 in
  let k = Cache.counters cache in
  check_int "one miss" 1 k.Cache.misses;
  check_int "one memory hit" 1 k.Cache.memory_hits;
  Alcotest.(check (array int))
    "replayed placement identical"
    (Qec_lattice.Placement.to_array p1)
    (Qec_lattice.Placement.to_array p2);
  check_bool "fresh placement objects" true (p1 != p2);
  (* the cached value matches an uncached computation *)
  let direct =
    IL.place ~seed:11 ~method_:IL.Annealed c (Qec_lattice.Grid.create side)
  in
  Alcotest.(check (array int))
    "matches Initial_layout.place"
    (Qec_lattice.Placement.to_array direct)
    (Qec_lattice.Placement.to_array p1)

let test_cache_disk_roundtrip () =
  with_temp_dir @@ fun dir ->
  let c = lowered "bv12" in
  let side = 4 in
  let place cache =
    Cache.find_or_place cache ~circuit:c ~side ~method_:IL.Annealed ~seed:7
  in
  let cold = Cache.create ~dir () in
  let p_cold = place cold in
  check_int "cold miss" 1 (Cache.counters cold).Cache.misses;
  check_bool "entry on disk" true
    (Array.exists
       (fun f -> Filename.check_suffix f ".placement")
       (Sys.readdir dir));
  (* a fresh cache over the same directory replays from disk *)
  let warm = Cache.create ~dir () in
  let p_warm = place warm in
  let k = Cache.counters warm in
  check_int "warm disk hit" 1 k.Cache.disk_hits;
  check_int "warm no misses" 0 k.Cache.misses;
  Alcotest.(check (array int))
    "disk placement identical"
    (Qec_lattice.Placement.to_array p_cold)
    (Qec_lattice.Placement.to_array p_warm)

let test_cache_corrupt_entry_is_miss () =
  with_temp_dir @@ fun dir ->
  let c = lowered "bv12" in
  let key = Cache.key ~circuit:c ~side:4 ~method_:IL.Annealed ~seed:7 in
  let path = Filename.concat dir (key ^ ".placement") in
  let oc = open_out path in
  output_string oc "not a cache entry\n";
  close_out oc;
  let cache = Cache.create ~dir () in
  let _ =
    Cache.find_or_place cache ~circuit:c ~side:4 ~method_:IL.Annealed ~seed:7
  in
  let k = Cache.counters cache in
  check_int "corrupt = miss" 1 k.Cache.misses;
  check_int "no disk hit" 0 k.Cache.disk_hits

(* Every single-bit corruption of a valid on-disk entry must behave as a
   miss — the md5 trailer rejects it — and the recomputed placement must
   be byte-identical to an uncorrupted run. A flipped digit that still
   parses must never be silently replayed. *)
let test_cache_bit_flip_is_miss () =
  with_temp_dir @@ fun dir ->
  let c = lowered "bv12" in
  let place cache =
    Cache.find_or_place cache ~circuit:c ~side:4 ~method_:IL.Annealed ~seed:7
  in
  let reference = place (Cache.create ~dir ()) in
  let key = Cache.key ~circuit:c ~side:4 ~method_:IL.Annealed ~seed:7 in
  let path = Filename.concat dir (key ^ ".placement") in
  let pristine =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* flip one bit in a spread of byte positions across the entry *)
  let positions =
    List.filter
      (fun i -> i < String.length pristine)
      [ 0; 7; String.length pristine / 2; String.length pristine - 2 ]
  in
  List.iter
    (fun i ->
      let b = Bytes.of_string pristine in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      let cache = Cache.create ~dir () in
      let p = place cache in
      let k = Cache.counters cache in
      check_int (Printf.sprintf "bit flip at %d is a miss" i) 1 k.Cache.misses;
      check_int (Printf.sprintf "bit flip at %d no disk hit" i) 0
        k.Cache.disk_hits;
      Alcotest.(check (array int))
        (Printf.sprintf "bit flip at %d recomputes identically" i)
        (Qec_lattice.Placement.to_array reference)
        (Qec_lattice.Placement.to_array p))
    positions

let test_cache_truncated_entry_is_miss () =
  with_temp_dir @@ fun dir ->
  let c = lowered "bv12" in
  let place cache =
    Cache.find_or_place cache ~circuit:c ~side:4 ~method_:IL.Annealed ~seed:7
  in
  let reference = place (Cache.create ~dir ()) in
  let key = Cache.key ~circuit:c ~side:4 ~method_:IL.Annealed ~seed:7 in
  let path = Filename.concat dir (key ^ ".placement") in
  let pristine =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  List.iter
    (fun keep ->
      let oc = open_out_bin path in
      output_string oc (String.sub pristine 0 keep);
      close_out oc;
      let cache = Cache.create ~dir () in
      let p = place cache in
      let k = Cache.counters cache in
      check_int (Printf.sprintf "truncation to %d is a miss" keep) 1
        k.Cache.misses;
      Alcotest.(check (array int))
        (Printf.sprintf "truncation to %d recomputes identically" keep)
        (Qec_lattice.Placement.to_array reference)
        (Qec_lattice.Placement.to_array p))
    (* len-2 cuts into the md5 hex; bare trailing-newline loss alone
       still verifies, which is fine — the digest is intact *)
    [ 0; 1; String.length pristine / 3; String.length pristine - 2 ]

(* A torn write — two unlocked writers interleaving, leaving one entry's
   prefix spliced onto another's suffix — must read back as a miss, not a
   silently replayed wrong placement. The advisory lock makes this
   unreachable between locked processes; the md5 trailer is the backstop
   for everything else (NFS, kill -9 mid-rename, foreign writers). *)
let test_cache_torn_write_is_miss () =
  with_temp_dir @@ fun dir ->
  let c = lowered "bv12" in
  let place ?(seed = 7) cache =
    Cache.find_or_place cache ~circuit:c ~side:4 ~method_:IL.Annealed ~seed
  in
  let reference = place (Cache.create ~dir ()) in
  let _other = place ~seed:8 (Cache.create ~dir ()) in
  let read key =
    let path = Filename.concat dir (key ^ ".placement") in
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let k7 = Cache.key ~circuit:c ~side:4 ~method_:IL.Annealed ~seed:7 in
  let k8 = Cache.key ~circuit:c ~side:4 ~method_:IL.Annealed ~seed:8 in
  let e7 = read k7 and e8 = read k8 in
  let cut = String.length e7 / 2 in
  let torn =
    String.sub e7 0 cut ^ String.sub e8 cut (String.length e8 - cut)
  in
  check_bool "splice really differs" true (torn <> e7 && torn <> e8);
  let oc = open_out_bin (Filename.concat dir (k7 ^ ".placement")) in
  output_string oc torn;
  close_out oc;
  let cache = Cache.create ~dir () in
  let p = place cache in
  let k = Cache.counters cache in
  check_int "torn write is a miss" 1 k.Cache.misses;
  check_int "torn write no disk hit" 0 k.Cache.disk_hits;
  Alcotest.(check (array int))
    "torn write recomputes identically"
    (Qec_lattice.Placement.to_array reference)
    (Qec_lattice.Placement.to_array p)

(* Several cache instances hammering the same directory concurrently
   (the serve daemon next to a batch run) must leave only valid entries
   behind: a fresh cache replays every key from disk, byte-identical to
   the sequential reference. *)
let test_cache_concurrent_writers () =
  with_temp_dir @@ fun dir ->
  let c = lowered "bv12" in
  let seeds = [ 3; 4; 5 ] in
  let place cache seed =
    Cache.find_or_place cache ~circuit:c ~side:4 ~method_:IL.Annealed ~seed
  in
  let reference =
    let cache = Cache.create () in
    List.map (fun s -> Qec_lattice.Placement.to_array (place cache s)) seeds
  in
  let writers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let cache = Cache.create ~dir () in
            List.iter (fun s -> ignore (place cache s)) seeds))
  in
  List.iter Domain.join writers;
  let warm = Cache.create ~dir () in
  let replayed =
    List.map (fun s -> Qec_lattice.Placement.to_array (place warm s)) seeds
  in
  let k = Cache.counters warm in
  check_int "all keys replay from disk" (List.length seeds) k.Cache.disk_hits;
  check_int "no recomputation" 0 k.Cache.misses;
  List.iteri
    (fun i (r, p) ->
      Alcotest.(check (array int))
        (Printf.sprintf "concurrent entry %d identical" i)
        r p)
    (List.combine reference replayed)

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)

let spec ?(backend = "braid") ?(scheduler = Spec.Full) circuit =
  { Spec.default with circuit; backend; scheduler }

let test_run_spec_ok () =
  match Engine.run_spec (spec "qft9") with
  | Error e -> Alcotest.failf "run_spec failed: %s" e.Engine.message
  | Ok p ->
    check_string "backend" "braid" p.Engine.backend;
    check_bool "cycles > 0" true
      (p.Engine.result.Autobraid.Scheduler.total_cycles > 0);
    check_bool "trace present" true (p.Engine.trace <> None)

let test_run_spec_matches_direct_scheduler () =
  (* the Spec path is a repackaging of Scheduler.run, not a reimplementation *)
  let timing = Qec_surface.Timing.make ~d:Qec_surface.Timing.default_d () in
  let direct = Autobraid.Scheduler.run timing (B.Registry.build "qft9") in
  match Engine.run_spec (spec "qft9") with
  | Error e -> Alcotest.failf "run_spec failed: %s" e.Engine.message
  | Ok p ->
    check_int "same cycles" direct.Autobraid.Scheduler.total_cycles
      p.Engine.result.Autobraid.Scheduler.total_cycles;
    check_int "same rounds" direct.Autobraid.Scheduler.rounds
      p.Engine.result.Autobraid.Scheduler.rounds

let test_run_spec_errors () =
  let kind s =
    match Engine.run_spec s with
    | Error e -> e.Engine.kind
    | Ok _ -> "ok"
  in
  check_string "missing circuit" "circuit-not-found" (kind (spec "no_such"));
  check_string "invalid spec" "invalid-spec"
    (kind { (spec "qft9") with Spec.d = 0 });
  check_string "invalid backend caught in validate" "invalid-spec"
    (kind (spec ~backend:"warp" "qft9"))

let batch_specs =
  [
    spec "qft9";
    spec ~backend:"surgery" "bv12";
    spec "no_such_circuit";
    spec ~scheduler:Spec.Baseline "bv12";
    spec "qft9" (* duplicate: exercises the cache under contention *);
  ]

let test_run_batch_order_and_errors () =
  let jobs = Engine.run_batch ~jobs:3 batch_specs in
  check_int "all jobs" (List.length batch_specs) (List.length jobs);
  List.iteri
    (fun i j -> check_int "input order" i j.Engine.index)
    jobs;
  match Engine.errors jobs with
  | [ (2, e) ] ->
    check_string "kind" "circuit-not-found" e.Engine.kind;
    check_bool "message" true (contains e.Engine.message "no_such_circuit")
  | other -> Alcotest.failf "expected exactly one error, got %d" (List.length other)

let test_run_batch_jsonl_deterministic_across_jobs () =
  let render jobs_n =
    let cache = Cache.create () in
    Engine.jobs_to_jsonl (Engine.run_batch ~jobs:jobs_n ~cache batch_specs)
  in
  let one = render 1 in
  check_string "jobs 1 = jobs 4" one (render 4);
  check_string "repeat run identical" one (render 4);
  check_int "five lines" (List.length batch_specs)
    (List.length
       (List.filter
          (fun l -> l <> "")
          (String.split_on_char '\n' one)))

let test_run_batch_cache_determinism () =
  with_temp_dir @@ fun dir ->
  (* cold (computes + writes disk), warm-memory, warm-disk: all three must
     schedule identically, trace included *)
  let specs = [ spec "qft9"; spec ~backend:"surgery" "qft9" ] in
  let cold_cache = Cache.create ~dir () in
  let cold = Engine.run_batch ~jobs:2 ~cache:cold_cache specs in
  let warm = Engine.run_batch ~jobs:2 ~cache:cold_cache specs in
  let disk = Engine.run_batch ~jobs:2 ~cache:(Cache.create ~dir ()) specs in
  let uncached = Engine.run_batch ~jobs:2 specs in
  check_bool "warm run hit memory" true
    ((Cache.counters cold_cache).Cache.memory_hits > 0);
  check_bool "disk run hit disk" true
    (List.exists (fun j -> j.Engine.cache = Engine.Disk_hit) disk);
  List.iter
    (fun other ->
      check_string "identical records" (Engine.jobs_to_jsonl cold)
        (Engine.jobs_to_jsonl other))
    [ warm; disk; uncached ];
  (* traces too, not just the summary rows *)
  List.iter2
    (fun a b ->
      match (a.Engine.outcome, b.Engine.outcome) with
      | Ok pa, Ok pb ->
        check_bool "same trace" true (pa.Engine.trace = pb.Engine.trace)
      | _ -> Alcotest.fail "job failed")
    cold disk

let test_job_json_shape () =
  let jobs =
    Engine.run_batch ~jobs:1
      [ { (spec "qft9") with Spec.id = Some "job-a" }; spec "no_such" ]
  in
  let lines =
    String.split_on_char '\n' (String.trim (Engine.jobs_to_jsonl jobs))
  in
  check_int "two lines" 2 (List.length lines);
  let ok_line = List.nth lines 0 and err_line = List.nth lines 1 in
  check_bool "id echoed" true (contains ok_line {|"id":"job-a"|});
  check_bool "status ok" true (contains ok_line {|"status":"ok"|});
  check_bool "compile time zeroed" true
    (contains ok_line {|"compile_time_s":0.0|});
  check_bool "no timings by default" false (contains ok_line {|"elapsed_s"|});
  check_bool "status error" true (contains err_line {|"status":"error"|});
  check_bool "error kind" true
    (contains err_line {|"kind":"circuit-not-found"|});
  (* each line parses back *)
  List.iter
    (fun l -> check_bool "line parses" true (Result.is_ok (Json.of_string l)))
    lines;
  (* with timings, the cache status appears *)
  let timed = Engine.jobs_to_jsonl ~timings:true jobs in
  check_bool "timings add elapsed" true (contains timed {|"elapsed_s"|});
  check_bool "timings add cache" true (contains timed {|"cache":"uncached"|})

let () =
  Alcotest.run "qec_engine"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_parse_scalars;
          Alcotest.test_case "structures" `Quick test_json_parse_structures;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "spec",
        [
          QCheck_alcotest.to_alcotest prop_spec_roundtrip;
          QCheck_alcotest.to_alcotest prop_spec_roundtrip_via_text;
          Alcotest.test_case "defaults" `Quick test_spec_defaults_from_empty;
          Alcotest.test_case "decode errors" `Quick test_spec_decode_errors;
          Alcotest.test_case "validate" `Quick test_spec_validate;
          Alcotest.test_case "manifest forms" `Quick test_manifest_forms;
        ] );
      ( "registry",
        [
          Alcotest.test_case "of_name/all" `Quick test_registry;
          Alcotest.test_case "replacement" `Quick test_registry_replacement;
          Alcotest.test_case "options codec" `Quick test_options_codec;
          Alcotest.test_case "options parse_kv" `Quick test_options_parse_kv;
          Alcotest.test_case "legacy shim" `Quick test_legacy_shim_equivalence;
          Alcotest.test_case "fixture manifest compat" `Quick
            test_fixture_manifest_compat;
        ] );
      ( "placement_cache",
        [
          Alcotest.test_case "key sensitivity" `Quick test_cache_key_sensitivity;
          Alcotest.test_case "find_or_place" `Quick test_cache_find_or_place;
          Alcotest.test_case "disk round-trip" `Quick test_cache_disk_roundtrip;
          Alcotest.test_case "corrupt entry" `Quick test_cache_corrupt_entry_is_miss;
          Alcotest.test_case "bit-flipped entry" `Quick
            test_cache_bit_flip_is_miss;
          Alcotest.test_case "truncated entry" `Quick
            test_cache_truncated_entry_is_miss;
          Alcotest.test_case "torn write" `Quick test_cache_torn_write_is_miss;
          Alcotest.test_case "concurrent writers" `Quick
            test_cache_concurrent_writers;
        ] );
      ( "engine",
        [
          Alcotest.test_case "run_spec ok" `Quick test_run_spec_ok;
          Alcotest.test_case "matches scheduler" `Quick
            test_run_spec_matches_direct_scheduler;
          Alcotest.test_case "error kinds" `Quick test_run_spec_errors;
          Alcotest.test_case "batch order + errors" `Quick
            test_run_batch_order_and_errors;
          Alcotest.test_case "jobs 1 = jobs 4" `Quick
            test_run_batch_jsonl_deterministic_across_jobs;
          Alcotest.test_case "cache determinism" `Quick
            test_run_batch_cache_determinism;
          Alcotest.test_case "record shape" `Quick test_job_json_shape;
        ] );
    ]
