(* Tests for the stack-based path finder, including the paper's Fig. 8
   scenario and the Theorem 1/2 guarantees. *)

module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Path = Qec_lattice.Path
module Task = Autobraid.Task
module SF = Autobraid.Stack_finder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let placement_at l coords =
  let grid = Grid.create l in
  let cells =
    Array.of_list (List.map (fun (x, y) -> Grid.cell_id grid ~x ~y) coords)
  in
  Placement.create grid ~num_qubits:(Array.length cells) ~cells

let tasks n = List.init n (fun i -> { Task.id = i; q1 = 2 * i; q2 = (2 * i) + 1 })

let run_finder placement ts =
  let grid = Placement.grid placement in
  let router = Router.create grid in
  let occ = Occupancy.create grid in
  (SF.find router occ placement ts, occ)

let all_disjoint paths =
  let rec go = function
    | [] -> true
    | p :: rest -> List.for_all (Path.disjoint p) rest && go rest
  in
  go (List.map snd paths)

let paths_connect placement routed =
  List.for_all
    (fun ((t : Task.t), p) ->
      let ca, cb = Task.cells placement t in
      Path.connects_cells (Placement.grid placement) p ca cb)
    routed

let test_single_gate () =
  let p = placement_at 6 [ (0, 0); (5, 5) ] in
  let outcome, _ = run_finder p (tasks 1) in
  check_int "routed" 1 (List.length outcome.SF.routed);
  Alcotest.(check (float 1e-9)) "ratio" 1.0 outcome.SF.ratio

let test_empty_round () =
  let p = placement_at 4 [ (0, 0) ] in
  let outcome, _ = run_finder p [] in
  check_int "nothing" 0 (List.length outcome.SF.routed);
  Alcotest.(check (float 1e-9)) "ratio 1 by convention" 1.0 outcome.SF.ratio

(* Fig. 8: five CX gates A..E on one row of a wide lattice. In the bad
   greedy order (A, B, E first) the lattice splits and C, D starve; the
   stack-based finder must schedule all five simultaneously. Layout (on a
   9x3 grid): A spans columns 0-8 on row 1 (the long gate), B..E are short
   gates nested under it. *)
let test_fig8_all_five () =
  let p =
    placement_at 9
      [
        (0, 1); (8, 1) (* A: widest, degree-4 *);
        (1, 0); (2, 2) (* B *);
        (3, 0); (4, 2) (* C *);
        (5, 0); (6, 2) (* D *);
        (7, 0); (8, 2) (* E *);
      ]
  in
  let outcome, _ = run_finder p (tasks 5) in
  check_int "all five scheduled" 5 (List.length outcome.SF.routed);
  check_bool "disjoint" true (all_disjoint outcome.SF.routed);
  check_bool "endpoints" true (paths_connect p outcome.SF.routed)

(* The stack must defer the most-interfering gate: A (above) interferes
   with all of B..E, so it is pushed and routed last. *)
let test_stack_defers_max_degree () =
  let p =
    placement_at 9
      [
        (0, 1); (8, 1);
        (1, 0); (2, 2);
        (3, 0); (4, 2);
        (5, 0); (6, 2);
        (7, 0); (8, 2);
      ]
  in
  let outcome, _ = run_finder p (tasks 5) in
  match List.rev outcome.SF.routed with
  | (last, _) :: _ -> check_int "A routed last" 0 last.Task.id
  | [] -> Alcotest.fail "nothing routed"

let test_theorem2_nested () =
  (* strictly nested chain of 4 gates: all must route *)
  let p =
    placement_at 10
      [ (4, 4); (5, 5); (3, 3); (6, 6); (2, 2); (7, 7); (1, 1); (8, 8) ]
  in
  let outcome, _ = run_finder p (tasks 4) in
  check_int "all nested scheduled" 4 (List.length outcome.SF.routed)

let test_reservations_match_occupancy () =
  let p = placement_at 8 [ (0, 0); (3, 3); (1, 1); (4, 4); (6, 6); (7, 7) ] in
  let outcome, occ = run_finder p (tasks 3) in
  let total =
    List.fold_left (fun acc (_, pth) -> acc + Path.length pth) 0 outcome.SF.routed
  in
  check_int "occupancy = sum of path lengths" total (Occupancy.occupied_count occ)

let test_ratio () =
  (* a tiny 2x2 grid with 2 crossing gates: at most one can route; ratio 0.5 *)
  let p = placement_at 2 [ (0, 0); (1, 1); (1, 0); (0, 1) ] in
  let outcome, _ = run_finder p (tasks 2) in
  check_bool "at least one" true (List.length outcome.SF.routed >= 1);
  check_bool "ratio consistent" true
    (outcome.SF.ratio
    = float_of_int (List.length outcome.SF.routed) /. 2.);
  check_int "failed + routed = total" 2
    (List.length outcome.SF.routed + List.length outcome.SF.failed)

let test_route_in_order_respects_order () =
  let p = placement_at 8 [ (0, 0); (1, 1); (6, 6); (7, 7) ] in
  let grid = Placement.grid p in
  let router = Router.create grid in
  let occ = Occupancy.create grid in
  let ts = tasks 2 in
  let routed, failed = SF.route_in_order router occ p (List.rev ts) in
  check_int "both" 2 (List.length routed);
  check_int "no failures" 0 (List.length failed);
  (* first routed is the first in the given order (task 1) *)
  check_int "order respected" 1 (fst (List.hd routed)).Task.id

(* Theorem 1 (qcheck): any LLG of <= 3 gates schedules fully on an
   otherwise empty lattice, for arbitrary placements. *)
let theorem1_gen =
  QCheck.Gen.(
    let* k = int_range 1 3 in
    let* coords = list_repeat (2 * k) (pair (int_range 0 7) (int_range 0 7)) in
    return (k, coords))

let prop_theorem1 =
  QCheck.Test.make ~name:"theorem 1: <=3 concurrent gates always schedule"
    ~count:500 (QCheck.make theorem1_gen) (fun (k, coords) ->
      let distinct = List.sort_uniq compare coords in
      QCheck.assume (List.length distinct = 2 * k);
      let p = placement_at 8 coords in
      let outcome, _ = run_finder p (tasks k) in
      List.length outcome.SF.routed = k)

(* Theorem 2 (qcheck): strictly nested chains always schedule fully. *)
let nested_gen =
  QCheck.Gen.(
    let* k = int_range 1 4 in
    (* gate i spans (i,i)-(2k+1-i, 2k+1-i): strictly nested rings *)
    return
      (List.init k (fun i -> ((i, i), ((2 * k) + 1 - i, (2 * k) + 1 - i)))))

let prop_theorem2 =
  QCheck.Test.make ~name:"theorem 2: strictly nested chains schedule fully"
    ~count:100 (QCheck.make nested_gen) (fun spans ->
      let coords = List.concat_map (fun (a, b) -> [ a; b ]) spans in
      let p = placement_at 10 coords in
      let k = List.length spans in
      let outcome, _ = run_finder p (tasks k) in
      List.length outcome.SF.routed = k)

(* Safety: whatever is routed is pairwise disjoint and connects the right
   cells, for arbitrary task sets. *)
let any_gen =
  QCheck.Gen.(
    let* k = int_range 1 14 in
    let* coords = list_repeat (2 * k) (pair (int_range 0 7) (int_range 0 7)) in
    return (k, coords))

let prop_routed_paths_safe =
  QCheck.Test.make ~name:"routed paths are disjoint and well-connected"
    ~count:300 (QCheck.make any_gen) (fun (k, coords) ->
      let distinct = List.sort_uniq compare coords in
      QCheck.assume (List.length distinct = 2 * k);
      let p = placement_at 8 coords in
      let outcome, _ = run_finder p (tasks k) in
      all_disjoint outcome.SF.routed
      && paths_connect p outcome.SF.routed
      && List.length outcome.SF.routed >= 1)

(* The retry pass never schedules fewer gates than the first attempt. *)
let prop_retry_no_worse =
  QCheck.Test.make ~name:"failed-first retry is never worse" ~count:200
    (QCheck.make any_gen) (fun (k, coords) ->
      let distinct = List.sort_uniq compare coords in
      QCheck.assume (List.length distinct = 2 * k);
      let p = placement_at 8 coords in
      let grid = Placement.grid p in
      let router = Router.create grid in
      let occ1 = Occupancy.create grid in
      let with_retry = SF.find ~retry:true router occ1 p (tasks k) in
      let occ2 = Occupancy.create grid in
      let without = SF.find ~retry:false router occ2 p (tasks k) in
      List.length with_retry.SF.routed >= List.length without.SF.routed)

(* Differential: the precomputed-area planned_order must emit exactly the
   ordering of the pre-rewrite reference (which re-derives every box
   inside the comparators), with and without a lookahead priority. *)

let test_planned_order_matches_reference () =
  let p =
    placement_at 9
      [
        (0, 1); (8, 1);
        (1, 0); (2, 2);
        (3, 0); (4, 2);
        (5, 0); (6, 2);
        (7, 0); (8, 2);
      ]
  in
  let ts = tasks 5 in
  let ids o = List.map (fun t -> t.Task.id) o in
  Alcotest.(check (list int))
    "fig8 order" (ids (SF.planned_order_reference p ts))
    (ids (SF.planned_order p ts));
  let priority_of (t : Task.t) = t.Task.id mod 3 in
  Alcotest.(check (list int))
    "fig8 order with lookahead"
    (ids (SF.planned_order_reference ~priority_of p ts))
    (ids (SF.planned_order ~priority_of p ts))

let prop_planned_order_matches_reference =
  QCheck.Test.make ~name:"planned_order = reference (random rounds)"
    ~count:300 (QCheck.make any_gen) (fun (k, coords) ->
      let distinct = List.sort_uniq compare coords in
      QCheck.assume (List.length distinct = 2 * k);
      let p = placement_at 8 coords in
      let ts = tasks k in
      let ids o = List.map (fun t -> t.Task.id) o in
      let priority_of (t : Task.t) = t.Task.id mod 3 in
      ids (SF.planned_order p ts) = ids (SF.planned_order_reference p ts)
      && ids (SF.planned_order ~priority_of p ts)
         = ids (SF.planned_order_reference ~priority_of p ts))

let () =
  Alcotest.run "stack_finder"
    [
      ( "examples",
        [
          Alcotest.test_case "single gate" `Quick test_single_gate;
          Alcotest.test_case "empty round" `Quick test_empty_round;
          Alcotest.test_case "fig 8: all five" `Quick test_fig8_all_five;
          Alcotest.test_case "stack defers max degree" `Quick test_stack_defers_max_degree;
          Alcotest.test_case "theorem 2 nested" `Quick test_theorem2_nested;
          Alcotest.test_case "occupancy accounting" `Quick test_reservations_match_occupancy;
          Alcotest.test_case "ratio" `Quick test_ratio;
          Alcotest.test_case "route_in_order" `Quick test_route_in_order_respects_order;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_theorem1;
          QCheck_alcotest.to_alcotest prop_theorem2;
          QCheck_alcotest.to_alcotest prop_routed_paths_safe;
          QCheck_alcotest.to_alcotest prop_retry_no_worse;
        ] );
      ( "differential",
        [
          Alcotest.test_case "planned_order = reference" `Quick
            test_planned_order_matches_reference;
          QCheck_alcotest.to_alcotest prop_planned_order_matches_reference;
        ] );
    ]
