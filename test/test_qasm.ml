(* Lexer, parser, elaborator and printer tests for the OpenQASM frontend. *)

module Lexer = Qec_qasm.Lexer
module Parser = Qec_qasm.Parser
module Ast = Qec_qasm.Ast
module Frontend = Qec_qasm.Frontend
module Printer = Qec_qasm.Printer
module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)

let tokens_of s = List.map (fun (t : Lexer.t) -> t.token) (Lexer.tokenize s)

let test_lex_kinds () =
  match tokens_of "cx q[0],q[1];" with
  | [ Lexer.Id "cx"; Id "q"; Lbracket; Integer 0; Rbracket; Comma; Id "q";
      Lbracket; Integer 1; Rbracket; Semicolon; Eof ] ->
    ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lex_numbers () =
  (match tokens_of "rz(0.5) q;" with
  | Lexer.Id "rz" :: Lparen :: Number f :: _ ->
    Alcotest.(check (float 1e-12)) "float" 0.5 f
  | _ -> Alcotest.fail "float token");
  match tokens_of "1e3" with
  | [ Lexer.Number f; Eof ] -> Alcotest.(check (float 1e-9)) "exp" 1000. f
  | _ -> Alcotest.fail "exponent literal"

let test_lex_arrow_minus () =
  (match tokens_of "a -> b" with
  | [ Lexer.Id "a"; Arrow; Id "b"; Eof ] -> ()
  | _ -> Alcotest.fail "arrow");
  match tokens_of "a - b" with
  | [ Lexer.Id "a"; Minus; Id "b"; Eof ] -> ()
  | _ -> Alcotest.fail "minus"

let test_lex_comments () =
  match tokens_of "h q; // a comment\nx q;" with
  | [ Lexer.Id "h"; Id "q"; Semicolon; Id "x"; Id "q"; Semicolon; Eof ] -> ()
  | _ -> Alcotest.fail "comment not skipped"

let test_lex_string () =
  match tokens_of "include \"qelib1.inc\";" with
  | [ Lexer.Id "include"; Str "qelib1.inc"; Semicolon; Eof ] -> ()
  | _ -> Alcotest.fail "string literal"

let test_lex_positions () =
  let toks = Lexer.tokenize "h q;\nx r;" in
  let x_tok = List.find (fun (t : Lexer.t) -> t.token = Lexer.Id "x") toks in
  check_int "line" 2 x_tok.line;
  check_int "col" 1 x_tok.col

let test_lex_error () =
  check_bool "bad char raises" true
    (match Lexer.tokenize "h @;" with
    | exception Lexer.Error { line = 1; _ } -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)

(* Most structural tests match on [Ast.strip]ped statements; span threading
   itself is covered by the dedicated position tests below. *)
let parse_stmts src = Ast.strip (Parser.parse_string src)

let test_parse_headers () =
  match parse_stmts "OPENQASM 2.0;\ninclude \"qelib1.inc\";" with
  | [ Ast.Version "2.0"; Ast.Include "qelib1.inc" ] -> ()
  | _ -> Alcotest.fail "headers"

let test_parse_regs () =
  match parse_stmts "qreg q[3]; creg c[3];" with
  | [ Ast.Qreg ("q", 3); Ast.Creg ("c", 3) ] -> ()
  | _ -> Alcotest.fail "regs"

let test_parse_expr_precedence () =
  match parse_stmts "rz(1+2*3) q[0];" with
  | [ Ast.App { gparams = [ e ]; _ } ] ->
    Alcotest.(check (float 1e-9)) "1+2*3" 7. (Ast.eval_expr (fun _ -> 0.) e)
  | _ -> Alcotest.fail "expr stmt"

let eval_param src =
  match parse_stmts (Printf.sprintf "rz(%s) q[0];" src) with
  | [ Ast.App { gparams = [ e ]; _ } ] -> Ast.eval_expr (fun _ -> nan) e
  | _ -> Alcotest.fail "param"

let test_parse_expr_forms () =
  Alcotest.(check (float 1e-9)) "pi" Float.pi (eval_param "pi");
  Alcotest.(check (float 1e-9)) "pi/2" (Float.pi /. 2.) (eval_param "pi/2");
  Alcotest.(check (float 1e-9)) "-pi/4" (-.Float.pi /. 4.) (eval_param "-pi/4");
  Alcotest.(check (float 1e-9)) "paren" 9. (eval_param "(1+2)*3");
  Alcotest.(check (float 1e-9)) "pow right assoc" 512. (eval_param "2^3^2");
  Alcotest.(check (float 1e-9)) "sub chain" (-4.) (eval_param "1-2-3")

let test_parse_gate_decl () =
  let src = "gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }" in
  match parse_stmts src with
  | [ Ast.Gate_decl { name = "majority"; params = []; formals; body } ] ->
    Alcotest.(check (list string)) "formals" [ "a"; "b"; "c" ] formals;
    check_int "body" 3 (List.length body)
  | _ -> Alcotest.fail "gate decl"

let test_parse_measure_barrier () =
  match parse_stmts "measure q[0] -> c[0]; barrier q; reset q[1];" with
  | [ Ast.Measure (Ast.Indexed ("q", 0), Ast.Indexed ("c", 0));
      Ast.Barrier [ Ast.Whole "q" ];
      Ast.Reset (Ast.Indexed ("q", 1)) ] ->
    ()
  | _ -> Alcotest.fail "measure/barrier/reset"

let test_parse_unsupported () =
  check_bool "if rejected" true
    (match Parser.parse_string "if (c==0) x q[0];" with
    | exception Parser.Error _ -> true
    | _ -> false);
  check_bool "opaque rejected" true
    (match Parser.parse_string "opaque magic q;" with
    | exception Parser.Error _ -> true
    | _ -> false)

let test_parse_error_position () =
  match Parser.parse_string "qreg q[;" with
  | exception Parser.Error { line = 1; col; _ } -> check_bool "col" true (col > 1)
  | _ -> Alcotest.fail "expected error"

(* ------------------------------------------------------------------ *)
(* Span threading: every node records the 1-based line/col of its first
   token, including applications inside gate-declaration bodies.        *)

let test_stmt_spans () =
  let src =
    String.concat ""
      [
        "OPENQASM 2.0;\n";
        "qreg q[2];\n";
        "creg c[2];\n";
        "h q[0];\n";
        "  cx q[0], q[1];\n";
        "measure q -> c;\n";
      ]
  in
  let spans =
    List.map
      (fun { Ast.pos; _ } -> (pos.Ast.line, pos.Ast.col))
      (Parser.parse_string src)
  in
  Alcotest.(check (list (pair int int)))
    "statement positions"
    [ (1, 1); (2, 1); (3, 1); (4, 1); (5, 3); (6, 1) ]
    spans

let test_gate_app_spans () =
  let src = "gate g a,b {\n  cx a,b;\n  h a;\n}\nqreg q[2];\ng q[0],q[1];" in
  match Parser.parse_string src with
  | [ { Ast.stmt = Ast.Gate_decl { body = [ app1; app2 ]; _ }; pos };
      { Ast.stmt = Ast.Qreg _; _ }; { Ast.stmt = Ast.App app; pos = apos } ] ->
    check_int "decl line" 1 pos.Ast.line;
    check_int "body app 1 line" 2 app1.Ast.gpos.Ast.line;
    check_int "body app 1 col" 3 app1.Ast.gpos.Ast.col;
    check_int "body app 2 line" 3 app2.Ast.gpos.Ast.line;
    check_bool "top-level gpos = node pos" true (app.Ast.gpos = apos)
  | _ -> Alcotest.fail "gate decl spans"

(* ------------------------------------------------------------------ *)
(* Frontend                                                             *)

let elab src = Frontend.of_string ~name:"test" src

let hdr = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"

let test_frontend_error_spans () =
  (match elab (hdr ^ "qreg q[1];\nfrobnicate q[0];") with
  | exception Frontend.Unsupported { pos = Some { line; col }; _ } ->
    check_int "line" 4 line;
    check_int "col" 1 col
  | _ -> Alcotest.fail "expected positioned Unsupported");
  (* errors raised while expanding a user-gate body point at the
     application statement, not the declaration *)
  match elab (hdr ^ "qreg q[1];\ngate g a { rx(0.1) a; }\ng q[0], q[0];") with
  | exception Frontend.Unsupported { pos = Some { line; _ }; _ } ->
    check_int "line" 5 line
  | _ -> Alcotest.fail "expected positioned Unsupported"

let test_elab_basic () =
  let c = elab (hdr ^ "qreg q[2];\nh q[0];\ncx q[0],q[1];") in
  check_int "qubits" 2 (C.num_qubits c);
  check_int "gates" 2 (C.length c);
  check_bool "h then cx" true
    (G.equal (C.gate c 0) (G.H 0) && G.equal (C.gate c 1) (G.Cx (0, 1)))

let test_elab_broadcast () =
  let c = elab (hdr ^ "qreg q[3];\nh q;") in
  check_int "3 h gates" 3 (C.length c);
  let c = elab (hdr ^ "qreg a[3]; qreg b[3];\ncx a,b;") in
  check_int "3 cx" 3 (C.length c);
  check_bool "pairwise" true (G.equal (C.gate c 1) (G.Cx (1, 4)))

let test_elab_multi_registers () =
  let c = elab (hdr ^ "qreg a[2]; qreg b[2];\ncx a[1],b[0];") in
  check_bool "flattened indices" true (G.equal (C.gate c 0) (G.Cx (1, 2)))

let test_elab_builtins () =
  let c =
    elab
      (hdr
     ^ "qreg q[3];\n\
        t q[0]; tdg q[0]; s q[1]; sdg q[1]; x q[2]; y q[2]; z q[2];\n\
        rx(0.1) q[0]; ry(0.2) q[0]; rz(0.3) q[0]; p(0.4) q[1]; u1(0.5) q[1];\n\
        u2(0.1,0.2) q[2]; u3(0.1,0.2,0.3) q[2];\n\
        cz q[0],q[1]; cp(0.7) q[0],q[2]; crz(0.8) q[1],q[2]; swap q[0],q[1];\n\
        ccx q[0],q[1],q[2];\n\
        id q[0]; sx q[1]; sxdg q[2];")
  in
  check_bool "id emits nothing" true (C.count_if (fun _ -> true) c = 21);
  check_int "swaps" 1 (C.count_if (function G.Swap _ -> true | _ -> false) c);
  check_int "cphases (cp+crz)" 2
    (C.count_if (function G.Cphase _ -> true | _ -> false) c)

let test_elab_user_gate () =
  let src =
    hdr
    ^ "qreg q[3];\n\
       gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }\n\
       majority q[0],q[1],q[2];"
  in
  let c = elab src in
  check_int "expanded" 3 (C.length c);
  check_bool "ccx last" true (G.equal (C.gate c 2) (G.Ccx (0, 1, 2)))

let test_elab_user_gate_params () =
  let src =
    hdr
    ^ "qreg q[2];\n\
       gate rot(theta) a { rz(theta/2) a; rz(theta/2) a; }\n\
       rot(pi) q[0];"
  in
  let c = elab src in
  check_int "two rz" 2 (C.length c);
  match C.gate c 0 with
  | G.Rz (0, a) -> Alcotest.(check (float 1e-9)) "half pi" (Float.pi /. 2.) a
  | _ -> Alcotest.fail "expected rz"

let test_elab_nested_user_gates () =
  let src =
    hdr
    ^ "qreg q[2];\n\
       gate inner a { h a; }\n\
       gate outer a,b { inner a; cx a,b; inner b; }\n\
       outer q[0],q[1];"
  in
  check_int "nested expansion" 3 (C.length (elab src))

let test_elab_measure_reset () =
  let c = elab (hdr ^ "qreg q[2]; creg c[2];\nmeasure q -> c;\nreset q[0];") in
  check_int "3 measures (2 + reset)" 3
    (C.count_if (function G.Measure _ -> true | _ -> false) c)

let test_elab_errors () =
  check_bool "unknown gate" true
    (match elab (hdr ^ "qreg q[1];\nfrobnicate q[0];") with
    | exception Frontend.Unsupported _ -> true
    | _ -> false);
  check_bool "unknown register" true
    (match elab (hdr ^ "qreg q[1];\nh r[0];") with
    | exception Frontend.Unsupported _ -> true
    | _ -> false);
  check_bool "index out of range" true
    (match elab (hdr ^ "qreg q[2];\nh q[5];") with
    | exception Frontend.Unsupported _ -> true
    | _ -> false);
  check_bool "no qreg" true
    (match elab hdr with
    | exception Frontend.Unsupported _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Printer round-trip                                                   *)

let test_print_parse_roundtrip () =
  let c =
    C.create ~name:"rt" ~num_qubits:3
      G.[
          H 0; X 1; Y 2; Z 0; S 1; Sdg 2; T 0; Tdg 1;
          Rx (0, 0.25); Ry (1, -1.5); Rz (2, 3.75);
          U3 (0, 0.1, 0.2, 0.3); Cx (0, 1); Cz (1, 2);
          Cphase (0, 2, 0.5); Swap (1, 2); Ccx (0, 1, 2);
          Barrier [ 0; 1; 2 ]; Measure 0;
        ]
  in
  let printed = Printer.to_string c in
  let c' = Frontend.of_string ~name:"rt" printed in
  check_int "same length" (C.length c) (C.length c');
  check_bool "same gates" true (C.gates c = C.gates c')

let gate_gen =
  QCheck.Gen.(
    let q = int_range 0 4 in
    let angle = map (fun i -> float_of_int i /. 7.) (int_range (-21) 21) in
    frequency
      [
        (3, map (fun a -> G.H a) q);
        (2, map (fun a -> G.T a) q);
        (2, map2 (fun a x -> G.Rz (a, x)) q angle);
        (4, map2 (fun a b -> G.Cx (a, b)) q q);
        (2, map3 (fun a b x -> G.Cphase (a, b, x)) q q angle);
        (1, map2 (fun a b -> G.Swap (a, b)) q q);
      ])

let circuit_gen =
  QCheck.Gen.(
    let* gs = list_size (int_range 0 40) gate_gen in
    let gs =
      List.filter
        (fun g ->
          let qs = G.qubits g in
          List.length (List.sort_uniq compare qs) = List.length qs)
        gs
    in
    return (C.create ~num_qubits:5 gs))

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (print c) = c" ~count:200
    (QCheck.make circuit_gen) (fun c ->
      let c' = Frontend.of_string (Printer.to_string c) in
      C.gates c = C.gates c')


(* Robustness: arbitrary input must either parse or raise Parser.Error —
   never escape with an unexpected exception. *)
let printable_gen =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 80))

let qasm_ish_gen =
  QCheck.Gen.(
    let token =
      oneofl
        [ "OPENQASM"; "2.0"; ";"; "qreg"; "creg"; "q"; "["; "]"; "3"; "h";
          "cx"; ","; "("; ")"; "pi"; "/"; "gate"; "{"; "}"; "measure"; "->";
          "barrier"; "0"; "1"; "x"; "rz"; "\n"; "\"s\"" ]
    in
    map (String.concat " ") (list_size (int_range 0 40) token))

let no_crash src =
  match Parser.parse_string src with
  | _ -> true
  | exception Parser.Error _ -> true
  | exception _ -> false

let no_crash_elab src =
  match Frontend.of_string src with
  | _ -> true
  | exception Parser.Error _ -> true
  | exception Frontend.Unsupported _ -> true
  | exception Qec_circuit.Circuit.Invalid _ -> true
  | exception _ -> false

let prop_fuzz_random =
  QCheck.Test.make ~name:"parser never crashes on random text" ~count:500
    (QCheck.make printable_gen) no_crash

let prop_fuzz_tokens =
  QCheck.Test.make ~name:"parser never crashes on token soup" ~count:500
    (QCheck.make qasm_ish_gen) no_crash

let prop_fuzz_elaborate =
  QCheck.Test.make ~name:"elaborator fails only with typed errors" ~count:500
    (QCheck.make qasm_ish_gen) no_crash_elab

let () =
  Alcotest.run "qasm"
    [
      ( "lexer",
        [
          Alcotest.test_case "kinds" `Quick test_lex_kinds;
          Alcotest.test_case "numbers" `Quick test_lex_numbers;
          Alcotest.test_case "arrow/minus" `Quick test_lex_arrow_minus;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "strings" `Quick test_lex_string;
          Alcotest.test_case "positions" `Quick test_lex_positions;
          Alcotest.test_case "errors" `Quick test_lex_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "headers" `Quick test_parse_headers;
          Alcotest.test_case "registers" `Quick test_parse_regs;
          Alcotest.test_case "precedence" `Quick test_parse_expr_precedence;
          Alcotest.test_case "expression forms" `Quick test_parse_expr_forms;
          Alcotest.test_case "gate decl" `Quick test_parse_gate_decl;
          Alcotest.test_case "measure/barrier" `Quick test_parse_measure_barrier;
          Alcotest.test_case "unsupported" `Quick test_parse_unsupported;
          Alcotest.test_case "error position" `Quick test_parse_error_position;
        ] );
      ( "spans",
        [
          Alcotest.test_case "statement spans" `Quick test_stmt_spans;
          Alcotest.test_case "gate body spans" `Quick test_gate_app_spans;
          Alcotest.test_case "frontend error spans" `Quick test_frontend_error_spans;
        ] );
      ( "frontend",
        [
          Alcotest.test_case "basic" `Quick test_elab_basic;
          Alcotest.test_case "broadcast" `Quick test_elab_broadcast;
          Alcotest.test_case "multi register" `Quick test_elab_multi_registers;
          Alcotest.test_case "builtins" `Quick test_elab_builtins;
          Alcotest.test_case "user gate" `Quick test_elab_user_gate;
          Alcotest.test_case "user gate params" `Quick test_elab_user_gate_params;
          Alcotest.test_case "nested user gates" `Quick test_elab_nested_user_gates;
          Alcotest.test_case "measure/reset" `Quick test_elab_measure_reset;
          Alcotest.test_case "errors" `Quick test_elab_errors;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_fuzz_random;
          QCheck_alcotest.to_alcotest prop_fuzz_tokens;
          QCheck_alcotest.to_alcotest prop_fuzz_elaborate;
        ] );
      ( "printer",
        [
          Alcotest.test_case "round trip" `Quick test_print_parse_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
    ]
