(* Tests for Qec_verify: the dataflow engine's known-answer cases, the
   certifier against real schedules and hand-built corrupted traces (one
   per invariant), the adversarial mutation corpus (fixtures/
   mutations.json) as a kill-test, and the certificate JSON schema. *)

module C = Qec_circuit.Circuit
module G = Qec_circuit.Gate
module S = Autobraid.Scheduler
module Trace = Autobraid.Trace
module T = Qec_surface.Timing
module SS = Qec_surgery.Surgery_scheduler
module B = Qec_benchmarks
module Bitset = Qec_util.Bitset
module Json = Qec_report.Json
module I = Qec_verify.Invariant
module V = Qec_verify.Certifier
module M = Qec_verify.Mutate
module Df = Qec_verify.Dataflow

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let timing = T.make ~d:33 ()

let invariant_ids certs = List.map I.id certs

let expect_ok what cert =
  check_bool
    (Printf.sprintf "%s certifies clean (got: %s)" what (V.to_summary cert))
    true (V.ok cert)

let expect_failed what expected cert =
  Alcotest.(check (list string))
    (what ^ " failed invariants")
    (invariant_ids expected)
    (invariant_ids (V.failed cert))

(* ---------------- dataflow: known answers ---------------- *)

let test_live_after () =
  let c = C.create ~num_qubits:2 [ G.H 0; G.Cx (0, 1); G.H 1 ] in
  let live = Df.live_after c in
  Alcotest.(check (list (list int)))
    "liveness per gate"
    [ [ 0; 1 ]; [ 1 ]; [] ]
    (Array.to_list (Array.map Bitset.to_list live))

let test_default_cost () =
  check_int "local" 1 (Df.default_cost (G.H 0));
  check_int "two-qubit" 2 (Df.default_cost (G.Cx (0, 1)));
  check_int "barrier" 0 (Df.default_cost (G.Barrier [ 0; 1 ]))

let test_slack () =
  (* H0 -> CX(0,1) is the critical chain (1 + 2 = 3 units of d); the
     independent H2 finishes at 1 with tail 1, so its slack is 2. *)
  let c = C.create ~num_qubits:3 [ G.H 0; G.Cx (0, 1); G.H 2 ] in
  let slacks = Df.slack_analysis c in
  check_int "critical length" 3 (Df.critical_length slacks);
  Alcotest.(check (list (list int)))
    "per-gate (finish, tail, slack)"
    [ [ 1; 3; 0 ]; [ 3; 2; 0 ]; [ 1; 1; 2 ] ]
    (Array.to_list
       (Array.map
          (fun (s : Df.slack) -> [ s.earliest_finish; s.tail; s.slack ])
          slacks))

(* Five layer-0 CXs criss-crossing the 5x5 identity placement; the
   full-grid cx q0,q24 overlaps all four other bounding boxes. *)
let crossing =
  C.create ~num_qubits:25
    [ G.Cx (0, 24); G.Cx (4, 20); G.Cx (2, 22); G.Cx (10, 14); G.Cx (7, 17) ]

let test_congestion () =
  let pressure = Df.congestion_pressure crossing in
  check_int "one entry per two-qubit gate" 5 (List.length pressure);
  List.iter
    (fun (p : Df.congestion) -> check_int "all in ASAP layer 0" 0 p.layer)
    pressure;
  let degree_of id =
    (List.find (fun (p : Df.congestion) -> p.task.Autobraid.Task.id = id)
       pressure)
      .degree
  in
  check_int "full-grid gate contends with all others" 4 (degree_of 0)

let test_solve_rejects_bad_ordering () =
  (* a Forward edge to a larger id breaks the topological contract *)
  check_bool "Invalid_argument raised" true
    (match
       Df.solve ~n:2 ~direction:Df.Forward
         ~edges:(fun _ -> [ 1 ])
         ~init:0
         ~transfer:(fun _ acc -> acc)
         ~join:max
     with
    | (_ : int array) -> false
    | exception Invalid_argument _ -> true)

(* ---------------- certifier: real schedules ---------------- *)

let test_certify_braid () =
  let c = B.Qft.circuit 16 in
  let result, trace = S.run_traced timing c in
  let cert = V.certify ~backend:"braid" ~result timing trace in
  expect_ok "braid qft16" cert;
  check_int "independent cycles match the result" result.S.total_cycles
    cert.V.cycles_computed;
  check_int "traced cycles agree" cert.V.cycles_traced cert.V.cycles_computed;
  check_int "rounds" result.S.rounds cert.V.num_rounds;
  check_bool "backend recorded" true (cert.V.backend = Some "braid")

let test_certify_braid_with_swaps () =
  let options = { S.default_options with threshold_p = 0.9 } in
  let result, trace = S.run_traced ~options timing (B.Qft.circuit 25) in
  check_bool "swaps actually forced" true (result.S.swap_layers > 0);
  expect_ok "swappy qft25" (V.certify ~result timing trace)

let test_certify_surgery () =
  let result, trace, _stats = SS.run_traced timing (B.Qft.circuit 16) in
  let cert = V.certify ~backend:"surgery" ~result timing trace in
  expect_ok "surgery qft16" cert;
  check_int "independent cycles match the result" result.S.total_cycles
    cert.V.cycles_computed

(* ---------------- certifier: hand-built corruptions -------------------
   One trace per invariant, on a 2x2 grid with qubit i on cell i (vertex
   grid 3x3, row-major 0-8; cell 0 corners {0,1,3,4}, cell 1 {1,2,4,5},
   cell 2 {3,4,6,7}, cell 3 {4,5,7,8}). *)

let grid2 = Qec_lattice.Grid.create 2

let path vs = Qec_lattice.Path.of_vertices grid2 vs

let mk_trace circuit rounds =
  { Trace.circuit; grid = grid2; initial_cells = [| 0; 1; 2; 3 |]; rounds }

let c4 gates = C.create ~num_qubits:4 gates

let task id q1 q2 = { Autobraid.Task.id; q1; q2 }

let certified trace = V.certify timing trace

let test_hand_built_clean () =
  let t =
    mk_trace
      (c4 [ G.Cx (0, 1); G.Cx (2, 3) ])
      [
        Trace.Braid
          {
            braids = [ (task 0 0 1, path [ 0; 1 ]); (task 1 2 3, path [ 6; 7 ]) ];
            locals = [];
          };
      ]
  in
  let cert = certified t in
  expect_ok "hand-built braid" cert;
  check_int "2d cycles" (T.braid_cycles timing) cert.V.cycles_computed

let test_gate_out_of_range () =
  expect_failed "out-of-range id" [ I.Gate_exactly_once ]
    (certified (mk_trace (c4 [ G.H 0 ]) [ Trace.Local { gates = [ 5; 0 ] } ]))

let test_executed_twice () =
  expect_failed "double execution" [ I.Gate_exactly_once ]
    (certified
       (mk_trace (c4 [ G.H 0 ])
          [ Trace.Local { gates = [ 0 ] }; Trace.Local { gates = [ 0 ] } ]))

let test_never_executed () =
  expect_failed "dropped gate" [ I.Gate_exactly_once ]
    (certified
       (mk_trace (c4 [ G.H 0; G.H 1 ]) [ Trace.Local { gates = [ 0 ] } ]))

let test_dependency_order () =
  expect_failed "reordered chain" [ I.Gate_dependency_order ]
    (certified
       (mk_trace
          (c4 [ G.H 0; G.X 0 ])
          [ Trace.Local { gates = [ 1 ] }; Trace.Local { gates = [ 0 ] } ]))

let test_two_qubit_in_local () =
  expect_failed "cx in a local slot" [ I.Round_shape ]
    (certified (mk_trace (c4 [ G.Cx (0, 1) ]) [ Trace.Local { gates = [ 0 ] } ]))

let test_path_misses_tiles () =
  (* a perfectly valid channel path that never reaches q3's tile *)
  expect_failed "disconnected path" [ I.Path_channel ]
    (certified
       (mk_trace
          (c4 [ G.Cx (0, 3) ])
          [
            Trace.Braid { braids = [ (task 0 0 3, path [ 0; 1 ]) ]; locals = [] };
          ]))

let test_path_collision () =
  (* both paths connect their operand tiles but share vertex 4 *)
  expect_failed "colliding paths" [ I.Path_disjoint ]
    (certified
       (mk_trace
          (c4 [ G.Cx (0, 1); G.Cx (2, 3) ])
          [
            Trace.Braid
              {
                braids =
                  [ (task 0 0 1, path [ 1; 4 ]); (task 1 2 3, path [ 4; 7 ]) ];
                locals = [];
              };
          ]))

let test_swap_touches_twice () =
  expect_failed "overlapping swaps" [ I.Swap_legal ]
    (certified
       (mk_trace (c4 [ G.H 0 ])
          [
            Trace.Swap_layer { swaps = [ (0, 1); (1, 2) ] };
            Trace.Local { gates = [ 0 ] };
          ]))

let merge_round ?(split_overlapped = false) ops =
  Trace.Merge { merges = ops; locals = []; split_overlapped }

let test_split_pipeline_conflict () =
  (* the overlapped split's next round touches merge qubit 0 *)
  expect_failed "conflicting overlap" [ I.Split_pipeline ]
    (certified
       (mk_trace
          (c4 [ G.Cx (0, 1); G.H 0 ])
          [
            merge_round ~split_overlapped:true [ (task 0 0 1, path [ 1; 4 ]) ];
            Trace.Local { gates = [ 1 ] };
          ]))

let test_split_pipeline_final_round () =
  expect_failed "overlap on final round" [ I.Split_pipeline ]
    (certified
       (mk_trace
          (c4 [ G.Cx (0, 1) ])
          [ merge_round ~split_overlapped:true [ (task 0 0 1, path [ 1; 4 ]) ] ]))

let test_split_pipeline_legal () =
  (* same shape, but the next round touches disjoint qubits: clean, and
     the split cost is folded into the next round *)
  let t =
    mk_trace
      (c4 [ G.Cx (0, 1); G.H 2 ])
      [
        merge_round ~split_overlapped:true [ (task 0 0 1, path [ 1; 4 ]) ];
        Trace.Local { gates = [ 1 ] };
      ]
  in
  let cert = certified t in
  expect_ok "legal overlap" cert;
  check_int "split cycles elided"
    (Qec_surface.Surgery_timing.merge_cycles timing
    + T.single_qubit_cycles timing)
    cert.V.cycles_computed

let test_cycle_account () =
  let result, trace = S.run_traced timing (B.Qft.circuit 9) in
  let lying = { result with S.total_cycles = result.S.total_cycles + 1 } in
  expect_failed "inflated total" [ I.Cycle_account ]
    (V.certify ~result:lying timing trace)

(* ---------------- mutation corpus ---------------- *)

(* dune runtest runs in _build/default/test; fixtures are copied next to
   the project root in the build tree *)
let fixture name =
  List.find Sys.file_exists
    [ Filename.concat "../fixtures" name; Filename.concat "fixtures" name ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus () =
  match Json.of_string (read_file (fixture "mutations.json")) with
  | Error msg -> Alcotest.failf "mutations.json unparsable: %s" msg
  | Ok json -> json

let json_string = function Json.String s -> Some s | _ -> None

let corpus_entries json =
  match Json.member "mutations" json with
  | Some (Json.List entries) ->
    List.map
      (fun e ->
        match
          ( Option.bind (Json.member "kind" e) json_string,
            Option.bind (Json.member "expected" e) json_string,
            Option.bind (Json.member "description" e) json_string )
        with
        | Some kind, Some expected, Some description ->
          (kind, expected, description)
        | _ -> Alcotest.fail "corpus entry missing kind/expected/description")
      entries
  | _ -> Alcotest.fail "corpus has no mutations list"

let test_corpus_matches_module () =
  let entries = corpus_entries (corpus ()) in
  check_int "all kinds covered" (List.length M.all) (List.length entries);
  List.iter
    (fun (kind, expected, description) ->
      match M.of_name kind with
      | None -> Alcotest.failf "corpus names unknown mutation %S" kind
      | Some k ->
        check_str (kind ^ " expected invariant") expected (I.id (M.expected k));
        check_str (kind ^ " description") description (M.description k);
        check_bool (kind ^ " expectation resolves") true
          (I.of_id expected = Some (M.expected k)))
    entries

(* Every corpus circuit, both backends, every mutation kind: wherever the
   mutation applies, the certificate must fail and name the expected
   invariant; and each kind must apply somewhere (no vacuous kill). *)
let test_mutations_killed () =
  let schedules =
    List.concat_map
      (fun name ->
        let c = Qec_qasm.Frontend.of_file (fixture name) in
        let rb, tb = S.run_traced timing c in
        let rs, ts, _ = SS.run_traced timing c in
        [ (name ^ "/braid", rb, tb); (name ^ "/surgery", rs, ts) ])
      [ "qft5.qasm"; "adder4.qasm"; "longrange8.qasm" ]
  in
  List.iter
    (fun kind ->
      let applied = ref 0 in
      List.iter
        (fun (what, result, trace) ->
          match M.apply kind timing result trace with
          | None -> ()
          | Some (result', trace') ->
            incr applied;
            let cert = V.certify ~result:result' timing trace' in
            check_bool
              (Printf.sprintf "%s under %s rejected (%s)" what (M.name kind)
                 (V.to_summary cert))
              false (V.ok cert);
            check_bool
              (Printf.sprintf "%s under %s names %s (got: %s)" what
                 (M.name kind)
                 (I.id (M.expected kind))
                 (String.concat ", " (invariant_ids (V.failed cert))))
              true
              (List.mem (M.expected kind) (V.failed cert)))
        schedules;
      check_bool
        (Printf.sprintf "%s applies to at least one schedule" (M.name kind))
        true (!applied > 0))
    M.all

(* ---------------- certificate JSON ---------------- *)

let test_certificate_json () =
  let result, trace = S.run_traced timing (B.Qft.circuit 9) in
  let json cert = Qec_report.Export.certificate_to_json cert in
  let clean = json (V.certify ~backend:"braid" ~result timing trace) in
  check_bool "schema tag" true
    (Json.member "schema" clean = Some (Json.String "autobraid-cert/v1"));
  check_bool "ok" true (Json.member "ok" clean = Some (Json.Bool true));
  (match Json.member "invariants" clean with
  | Some (Json.List invs) ->
    check_int "one entry per invariant" (List.length I.all) (List.length invs);
    List.iter
      (fun inv ->
        check_bool "each passes" true
          (Json.member "status" inv = Some (Json.String "pass")))
      invs
  | _ -> Alcotest.fail "invariants list missing");
  let lying = { result with S.total_cycles = result.S.total_cycles + 1 } in
  let broken = json (V.certify ~result:lying timing trace) in
  check_bool "ok false" true
    (Json.member "ok" broken = Some (Json.Bool false));
  match Json.member "invariants" broken with
  | Some (Json.List invs) ->
    let failed =
      List.filter
        (fun inv -> Json.member "status" inv = Some (Json.String "fail"))
        invs
    in
    check_int "exactly one failing entry" 1 (List.length failed);
    let entry = List.hd failed in
    check_bool "names cycles/account" true
      (Json.member "id" entry = Some (Json.String "cycles/account"));
    check_bool "carries witnesses" true
      (match Json.member "witnesses" entry with
      | Some (Json.List (_ :: _)) -> true
      | _ -> false)
  | _ -> Alcotest.fail "invariants list missing"

let () =
  Alcotest.run "verify"
    [
      ( "dataflow",
        [
          Alcotest.test_case "live_after" `Quick test_live_after;
          Alcotest.test_case "default_cost" `Quick test_default_cost;
          Alcotest.test_case "slack" `Quick test_slack;
          Alcotest.test_case "congestion" `Quick test_congestion;
          Alcotest.test_case "solver ordering contract" `Quick
            test_solve_rejects_bad_ordering;
        ] );
      ( "certify",
        [
          Alcotest.test_case "braid clean" `Quick test_certify_braid;
          Alcotest.test_case "braid with swaps" `Quick
            test_certify_braid_with_swaps;
          Alcotest.test_case "surgery clean" `Quick test_certify_surgery;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "hand-built clean" `Quick test_hand_built_clean;
          Alcotest.test_case "gate out of range" `Quick test_gate_out_of_range;
          Alcotest.test_case "executed twice" `Quick test_executed_twice;
          Alcotest.test_case "never executed" `Quick test_never_executed;
          Alcotest.test_case "dependency order" `Quick test_dependency_order;
          Alcotest.test_case "two-qubit in local slot" `Quick
            test_two_qubit_in_local;
          Alcotest.test_case "path misses tiles" `Quick test_path_misses_tiles;
          Alcotest.test_case "path collision" `Quick test_path_collision;
          Alcotest.test_case "swap touches twice" `Quick
            test_swap_touches_twice;
          Alcotest.test_case "split overlap conflict" `Quick
            test_split_pipeline_conflict;
          Alcotest.test_case "split overlap on final round" `Quick
            test_split_pipeline_final_round;
          Alcotest.test_case "legal split overlap" `Quick
            test_split_pipeline_legal;
          Alcotest.test_case "cycle account" `Quick test_cycle_account;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "corpus matches module" `Quick
            test_corpus_matches_module;
          Alcotest.test_case "all mutations killed" `Quick
            test_mutations_killed;
        ] );
      ( "export",
        [ Alcotest.test_case "cert JSON schema" `Quick test_certificate_json ];
      );
    ]
