(* Tests for schedule traces: recording, independent validation,
   placement replay, rendering, transformed-circuit export. *)

module S = Autobraid.Scheduler
module Trace = Autobraid.Trace
module T = Qec_surface.Timing
module C = Qec_circuit.Circuit
module G = Qec_circuit.Gate
module B = Qec_benchmarks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let timing = T.make ~d:33 ()

let traced ?options c = S.run_traced ?options timing c

let expect_valid trace =
  match Trace.validate trace with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("trace invalid: " ^ msg)

let test_trace_matches_result () =
  let result, trace = traced (B.Qft.circuit 16) in
  check_int "cycles agree" result.S.total_cycles (Trace.cycles timing trace);
  check_int "rounds agree" result.S.rounds (Trace.num_rounds trace);
  check_int "swaps agree" result.S.swaps_inserted (Trace.swap_count trace)

let test_trace_validates () =
  List.iter
    (fun c ->
      let _, trace = traced c in
      expect_valid trace)
    [
      B.Qft.circuit 16;
      B.Bv.circuit 12;
      B.Ising.circuit ~steps:3 12;
      B.Qaoa.circuit 12;
      B.Building_blocks.by_name "4gt11_8";
    ]

let test_trace_with_swaps_validates () =
  (* force swap layers with an aggressive threshold *)
  let options = { S.default_options with threshold_p = 0.9 } in
  let result, trace = traced ~options (B.Qft.circuit 36) in
  expect_valid trace;
  check_int "swap layers recorded" result.S.swap_layers
    (List.length
       (List.filter
          (function Trace.Swap_layer _ -> true | _ -> false)
          trace.Trace.rounds))

let test_run_and_run_traced_agree () =
  let c = B.Qaoa.circuit 16 in
  let plain = S.run timing c in
  let result, _ = traced c in
  check_int "identical schedules" plain.S.total_cycles result.S.total_cycles

let test_placement_replay () =
  let options = { S.default_options with threshold_p = 0.9 } in
  let _, trace = traced ~options (B.Qft.circuit 25) in
  let initial = Trace.placement_after trace 0 in
  let final = Trace.final_placement trace in
  check_int "same width"
    (Qec_lattice.Placement.num_qubits initial)
    (Qec_lattice.Placement.num_qubits final);
  if Trace.swap_count trace > 0 then
    check_bool "placement changed" false
      (Qec_lattice.Placement.equal initial final)

let test_validate_catches_reorder () =
  (* swapping two dependent rounds must be caught *)
  let _, trace = traced (B.Bv.circuit 8) in
  let broken = { trace with Trace.rounds = List.rev trace.Trace.rounds } in
  check_bool "reversed trace rejected" true
    (match Trace.validate broken with Error _ -> true | Ok () -> false)

let test_validate_catches_duplicates () =
  let _, trace = traced (B.Bv.circuit 8) in
  let broken =
    { trace with Trace.rounds = trace.Trace.rounds @ trace.Trace.rounds }
  in
  check_bool "duplicated trace rejected" true
    (match Trace.validate broken with Error _ -> true | Ok () -> false)

let test_validate_catches_missing () =
  let _, trace = traced (B.Bv.circuit 8) in
  let broken =
    match trace.Trace.rounds with
    | _ :: rest -> { trace with Trace.rounds = rest }
    | [] -> trace
  in
  check_bool "truncated trace rejected" true
    (match Trace.validate broken with Error _ -> true | Ok () -> false)

let test_round_rendering () =
  let _, trace = traced (B.Qft.circuit 9) in
  let k =
    (* find a braid round *)
    let rec go i = function
      | Trace.Braid _ :: _ -> i
      | _ :: rest -> go (i + 1) rest
      | [] -> 0
    in
    go 0 trace.Trace.rounds
  in
  let s = Trace.round_to_string trace k in
  check_bool "mentions braids" true (String.length s > 50);
  check_bool "has lattice art" true (String.contains s '+')

let test_transformed_circuit () =
  let options = { S.default_options with threshold_p = 0.9 } in
  let result, trace = traced ~options (B.Qft.circuit 25) in
  let out = Trace.transformed_circuit trace in
  (* every original gate appears, plus 1 swap gate per inserted swap *)
  check_int "gate count"
    (result.S.num_gates + result.S.swaps_inserted)
    (C.length out);
  check_int "swap gates"
    result.S.swaps_inserted
    (C.count_if (function G.Swap _ -> true | _ -> false) out);
  (* the transformed circuit round-trips through the QASM printer *)
  let reparsed = Qec_qasm.Frontend.of_string (Qec_qasm.Printer.to_string out) in
  check_int "round trip survives" (C.length out) (C.length reparsed)

let test_render_grid_basics () =
  let grid = Qec_lattice.Grid.create 3 in
  let placement = Qec_lattice.Placement.identity grid ~num_qubits:4 in
  let path =
    Qec_lattice.Path.of_vertices grid
      [ Qec_lattice.Grid.vertex_id grid ~x:1 ~y:1;
        Qec_lattice.Grid.vertex_id grid ~x:2 ~y:1 ]
  in
  let s = Qec_lattice.Render.grid_to_string ~paths:[ path ] ~placement grid in
  check_bool "marks path vertices" true (String.contains s '#');
  check_bool "marks path edges" true (String.contains s '=');
  check_bool "labels qubits" true (String.contains s 'q');
  check_bool "shows empty cells" true (String.contains s '.');
  (* 4 vertex rows + 3 cell rows *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  check_int "row count" 7 (List.length lines)

(* Property: every recorded trace validates, across random circuits. *)
let random_circuit =
  QCheck.Gen.(
    let* n = int_range 2 10 in
    let* gs =
      list_size (int_range 1 50)
        (let* a = int_range 0 (n - 1) in
         let* b = int_range 0 (n - 1) in
         let* kind = int_range 0 2 in
         return (a, b, kind))
    in
    let gates =
      List.map
        (fun (a, b, kind) -> if kind = 0 || a = b then G.H a else G.Cx (a, b))
        gs
    in
    return (C.create ~num_qubits:n gates))

let prop_traces_validate =
  QCheck.Test.make ~name:"recorded traces always validate" ~count:60
    (QCheck.make random_circuit) (fun c ->
      let _, trace = traced c in
      match Trace.validate trace with Ok () -> true | Error _ -> false)

let prop_traces_validate_with_swaps =
  QCheck.Test.make ~name:"traces with aggressive swapping validate" ~count:30
    (QCheck.make random_circuit) (fun c ->
      let options = { S.default_options with threshold_p = 0.9 } in
      let _, trace = traced ~options c in
      match Trace.validate trace with Ok () -> true | Error _ -> false)

(* ---- Trace.check violation enumeration ----------------------------------
   One hand-built trace per violation constructor, on a 2x2 grid with 4
   qubits placed identically (qubit i on cell i). Vertex ids on the 3x3
   vertex grid are row-major 0-8; cell corners: cell 0 = {0,1,3,4},
   cell 1 = {1,2,4,5}, cell 2 = {3,4,6,7}, cell 3 = {4,5,7,8}. *)

let grid2 = Qec_lattice.Grid.create 2

let path vs = Qec_lattice.Path.of_vertices grid2 vs

let mk_trace circuit rounds =
  { Trace.circuit; grid = grid2; initial_cells = [| 0; 1; 2; 3 |]; rounds }

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_violation needle trace =
  let vs = Trace.check trace in
  let rendered = List.map Trace.violation_to_string vs in
  check_bool
    (Printf.sprintf "reports %S (got: %s)" needle (String.concat " | " rendered))
    true
    (List.exists (fun s -> contains_sub s needle) rendered)

let c4 gates = C.create ~num_qubits:4 gates

let task id q1 q2 = { Autobraid.Task.id; q1; q2 }

let test_check_clean_hand_built () =
  let c = c4 [ G.Cx (0, 1); G.Cx (2, 3) ] in
  let t =
    mk_trace c
      [
        Trace.Braid
          {
            braids = [ (task 0 0 1, path [ 0; 1 ]); (task 1 2 3, path [ 6; 7 ]) ];
            locals = [];
          };
      ]
  in
  check_int "hand-built valid trace is check-clean" 0
    (List.length (Trace.check t))

let test_check_gate_out_of_range () =
  expect_violation "gate id 5 out of range"
    (mk_trace (c4 [ G.H 0 ]) [ Trace.Local { gates = [ 5 ] } ])

let test_check_executed_twice () =
  expect_violation "gate 0 executed twice"
    (mk_trace (c4 [ G.H 0 ])
       [ Trace.Local { gates = [ 0 ] }; Trace.Local { gates = [ 0 ] } ])

let test_check_dependency_order () =
  expect_violation "gate 1 executed before a predecessor"
    (mk_trace
       (c4 [ G.H 0; G.X 0 ])
       [ Trace.Local { gates = [ 1 ] }; Trace.Local { gates = [ 0 ] } ])

let test_check_two_qubit_in_local_slot () =
  expect_violation "gate 0 in a local slot is a two-qubit gate"
    (mk_trace (c4 [ G.Cx (0, 1) ]) [ Trace.Local { gates = [ 0 ] } ])

let test_check_path_collision () =
  (* both paths connect their operand tiles but share vertex 4 *)
  let c = c4 [ G.Cx (0, 1); G.Cx (2, 3) ] in
  expect_violation "path collides with another path"
    (mk_trace c
       [
         Trace.Braid
           {
             braids =
               [ (task 0 0 1, path [ 1; 4 ]); (task 1 2 3, path [ 4; 7 ]) ];
             locals = [];
           };
       ])

let test_check_braid_not_two_qubit () =
  expect_violation "gate 0 scheduled as a braid is not two-qubit"
    (mk_trace (c4 [ G.H 0 ])
       [ Trace.Braid { braids = [ (task 0 0 1, path [ 0; 1 ]) ]; locals = [] } ])

let test_check_path_disconnected () =
  (* q0 sits on cell 0, q3 on cell 3; [0;1] never touches cell 3 *)
  expect_violation "path does not connect its operand tiles"
    (mk_trace
       (c4 [ G.Cx (0, 3) ])
       [ Trace.Braid { braids = [ (task 0 0 3, path [ 0; 1 ]) ]; locals = [] } ])

let test_check_task_operand_mismatch () =
  (* the task claims operands 2,3 (and its path connects them) but gate 0
     acts on 0,1 *)
  expect_violation "task operands mismatch the gate"
    (mk_trace
       (c4 [ G.Cx (0, 1) ])
       [ Trace.Braid { braids = [ (task 0 2 3, path [ 6; 7 ]) ]; locals = [] } ])

let test_check_swap_touches_twice () =
  expect_violation "a swap layer touches a qubit twice"
    (mk_trace (c4 [ G.H 0 ])
       [
         Trace.Swap_layer { swaps = [ (0, 1); (1, 2) ] };
         Trace.Local { gates = [ 0 ] };
       ])

let test_check_empty_local_round () =
  expect_violation "empty local round"
    (mk_trace (c4 [ G.H 0 ])
       [ Trace.Local { gates = [] }; Trace.Local { gates = [ 0 ] } ])

let test_check_braid_without_braids () =
  expect_violation "braid round without braids"
    (mk_trace (c4 [ G.H 0 ]) [ Trace.Braid { braids = []; locals = [ 0 ] } ])

let test_check_merge_without_merges () =
  expect_violation "merge round without merges"
    (mk_trace (c4 [ G.H 0 ])
       [ Trace.Merge { merges = []; locals = [ 0 ]; split_overlapped = false } ])

let test_check_overlap_on_final_round () =
  expect_violation "split overlap claimed on the final round"
    (mk_trace
       (c4 [ G.Cx (0, 1) ])
       [
         Trace.Merge
           {
             merges = [ (task 0 0 1, path [ 0; 1 ]) ];
             locals = [];
             split_overlapped = true;
           };
       ])

let test_check_overlap_shares_qubits () =
  (* the round after the overlapped split touches merge qubit 0 *)
  expect_violation "overlapped split shares qubits with the next round"
    (mk_trace
       (c4 [ G.Cx (0, 1); G.H 0 ])
       [
         Trace.Merge
           {
             merges = [ (task 0 0 1, path [ 0; 1 ]) ];
             locals = [];
             split_overlapped = true;
           };
         Trace.Local { gates = [ 1 ] };
       ])

let test_check_empty_swap_layer () =
  expect_violation "empty swap layer"
    (mk_trace (c4 [ G.H 0 ])
       [ Trace.Swap_layer { swaps = [] }; Trace.Local { gates = [ 0 ] } ])

let test_check_never_executed () =
  expect_violation "gate 1 was never executed"
    (mk_trace (c4 [ G.H 0; G.H 1 ]) [ Trace.Local { gates = [ 0 ] } ])

let () =
  Alcotest.run "trace"
    [
      ( "check violations",
        [
          Alcotest.test_case "clean hand-built trace" `Quick
            test_check_clean_hand_built;
          Alcotest.test_case "gate id out of range" `Quick
            test_check_gate_out_of_range;
          Alcotest.test_case "executed twice" `Quick test_check_executed_twice;
          Alcotest.test_case "dependency order" `Quick
            test_check_dependency_order;
          Alcotest.test_case "two-qubit in local slot" `Quick
            test_check_two_qubit_in_local_slot;
          Alcotest.test_case "path collision" `Quick test_check_path_collision;
          Alcotest.test_case "braid not two-qubit" `Quick
            test_check_braid_not_two_qubit;
          Alcotest.test_case "path disconnected" `Quick
            test_check_path_disconnected;
          Alcotest.test_case "task operand mismatch" `Quick
            test_check_task_operand_mismatch;
          Alcotest.test_case "swap touches twice" `Quick
            test_check_swap_touches_twice;
          Alcotest.test_case "empty local round" `Quick
            test_check_empty_local_round;
          Alcotest.test_case "braid without braids" `Quick
            test_check_braid_without_braids;
          Alcotest.test_case "merge without merges" `Quick
            test_check_merge_without_merges;
          Alcotest.test_case "overlap on final round" `Quick
            test_check_overlap_on_final_round;
          Alcotest.test_case "overlap shares qubits" `Quick
            test_check_overlap_shares_qubits;
          Alcotest.test_case "empty swap layer" `Quick
            test_check_empty_swap_layer;
          Alcotest.test_case "never executed" `Quick test_check_never_executed;
        ] );
      ( "trace",
        [
          Alcotest.test_case "matches result" `Quick test_trace_matches_result;
          Alcotest.test_case "validates" `Quick test_trace_validates;
          Alcotest.test_case "validates with swaps" `Quick test_trace_with_swaps_validates;
          Alcotest.test_case "run agrees with run_traced" `Quick test_run_and_run_traced_agree;
          Alcotest.test_case "placement replay" `Quick test_placement_replay;
          Alcotest.test_case "catches reorder" `Quick test_validate_catches_reorder;
          Alcotest.test_case "catches duplicates" `Quick test_validate_catches_duplicates;
          Alcotest.test_case "catches missing" `Quick test_validate_catches_missing;
          Alcotest.test_case "round rendering" `Quick test_round_rendering;
          Alcotest.test_case "transformed circuit" `Quick test_transformed_circuit;
          QCheck_alcotest.to_alcotest prop_traces_validate;
          QCheck_alcotest.to_alcotest prop_traces_validate_with_swaps;
        ] );
      ( "render",
        [ Alcotest.test_case "grid basics" `Quick test_render_grid_basics ] );
    ]
