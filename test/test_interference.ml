(* Tests for the CX interference graph. *)

module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement
module Task = Autobraid.Task
module I = Autobraid.Interference

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let placement_at l coords =
  let grid = Grid.create l in
  let cells =
    Array.of_list (List.map (fun (x, y) -> Grid.cell_id grid ~x ~y) coords)
  in
  Placement.create grid ~num_qubits:(Array.length cells) ~cells

let tasks n = List.init n (fun i -> { Task.id = i; q1 = 2 * i; q2 = (2 * i) + 1 })

(* three gates: 0 and 1 overlap, 2 is far away *)
let sample () =
  let p = placement_at 10 [ (0, 0); (2, 2); (1, 1); (3, 3); (8, 8); (9, 9) ] in
  (p, I.build p (tasks 3))

let test_build () =
  let _, ig = sample () in
  check_int "nodes" 3 (I.node_count ig);
  check_int "original" 3 (I.original_count ig);
  check_int "deg 0" 1 (I.degree ig 0);
  check_int "deg 1" 1 (I.degree ig 1);
  check_int "deg 2" 0 (I.degree ig 2);
  check_int "max degree" 1 (I.max_degree ig)

let test_neighbors () =
  let _, ig = sample () in
  Alcotest.(check (list int))
    "nbrs of 0" [ 1 ]
    (List.map (fun t -> t.Task.id) (I.neighbors ig 0));
  Alcotest.(check (list int))
    "nbrs of 2" []
    (List.map (fun t -> t.Task.id) (I.neighbors ig 2))

let test_max_degree_nodes () =
  let _, ig = sample () in
  Alcotest.(check (list int))
    "max nodes" [ 0; 1 ]
    (List.map (fun t -> t.Task.id) (I.max_degree_nodes ig))

let test_remove () =
  let _, ig = sample () in
  I.remove ig 0;
  check_int "nodes after" 2 (I.node_count ig);
  check_int "original unchanged" 3 (I.original_count ig);
  check_int "degree updated" 0 (I.degree ig 1);
  check_bool "mem removed" false (I.mem ig 0);
  check_bool "raises on absent" true
    (match I.degree ig 0 with exception Not_found -> true | _ -> false)

let test_empty () =
  let p = placement_at 4 [ (0, 0) ] in
  let ig = I.build p [] in
  check_int "empty nodes" 0 (I.node_count ig);
  check_int "max degree" 0 (I.max_degree ig);
  Alcotest.(check (list int)) "no max nodes" []
    (List.map (fun t -> t.Task.id) (I.max_degree_nodes ig))

let test_clique () =
  (* four mutually overlapping gates -> K4 *)
  let p =
    placement_at 10
      [ (0, 0); (3, 3); (1, 1); (4, 4); (2, 2); (5, 5); (0, 3); (3, 0) ]
  in
  let ig = I.build p (tasks 4) in
  check_int "max degree" 3 (I.max_degree ig);
  List.iter (fun i -> check_int "deg" 3 (I.degree ig i)) [ 0; 1; 2; 3 ];
  I.remove ig 3;
  List.iter (fun i -> check_int "deg after" 2 (I.degree ig i)) [ 0; 1; 2 ]

let prop_degrees_symmetric =
  QCheck.Test.make ~name:"edge degrees consistent" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 10)
              (pair (pair (int_bound 7) (int_bound 7))
                 (pair (int_bound 7) (int_bound 7))))
    (fun coords ->
      let flat = List.concat_map (fun ((a, b), (c, d)) -> [ (a, b); (c, d) ]) coords in
      let distinct = List.sort_uniq compare flat in
      QCheck.assume (List.length distinct = List.length flat);
      let p = placement_at 8 flat in
      let k = List.length coords in
      let ig = I.build p (tasks k) in
      (* sum of degrees is even, and each neighbor listing is mutual *)
      let sum =
        List.fold_left (fun acc i -> acc + I.degree ig i) 0
          (List.init k (fun i -> i))
      in
      sum mod 2 = 0
      && List.for_all
           (fun i ->
             List.for_all
               (fun t ->
                 List.exists (fun u -> u.Task.id = i) (I.neighbors ig t.Task.id))
               (I.neighbors ig i))
           (List.init k (fun i -> i)))

(* Differential: the packed bit-word graph must expose byte-identical
   observable state to the Legacy hashtable-of-sets oracle — after build
   and after every removal, in every query. *)

let ids ts = List.map (fun t -> t.Task.id) ts

let check_same_state msg ig lg =
  let present = ids (I.Legacy.nodes lg) in
  Alcotest.(check int) (msg ^ ": node_count") (I.Legacy.node_count lg)
    (I.node_count ig);
  Alcotest.(check int) (msg ^ ": original") (I.Legacy.original_count lg)
    (I.original_count ig);
  Alcotest.(check (list int)) (msg ^ ": nodes") present (ids (I.nodes ig));
  Alcotest.(check int) (msg ^ ": max_degree") (I.Legacy.max_degree lg)
    (I.max_degree ig);
  Alcotest.(check (list int))
    (msg ^ ": max_degree_nodes")
    (ids (I.Legacy.max_degree_nodes lg))
    (ids (I.max_degree_nodes ig));
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "%s: degree %d" msg i)
        (I.Legacy.degree lg i) (I.degree ig i);
      Alcotest.(check (list int))
        (Printf.sprintf "%s: neighbors %d" msg i)
        (ids (I.Legacy.neighbors lg i))
        (ids (I.neighbors ig i)))
    present

let test_differential_removals () =
  let p =
    placement_at 10
      [ (0, 0); (3, 3); (1, 1); (4, 4); (2, 2); (5, 5); (0, 3); (3, 0);
        (8, 8); (9, 9) ]
  in
  let ts = tasks 5 in
  let ig = I.build p ts and lg = I.Legacy.build p ts in
  check_same_state "after build" ig lg;
  (* peel in max-degree order, exactly like the stack finder *)
  let rec peel () =
    match I.Legacy.max_degree_nodes lg with
    | [] -> ()
    | t :: _ ->
      I.remove ig t.Task.id;
      I.Legacy.remove lg t.Task.id;
      check_same_state (Printf.sprintf "after remove %d" t.Task.id) ig lg;
      peel ()
  in
  peel ()

let prop_matches_legacy =
  QCheck.Test.make ~name:"packed graph = legacy graph under removals"
    ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 10)
           (pair (pair (int_bound 7) (int_bound 7))
              (pair (int_bound 7) (int_bound 7))))
        (list_of_size (Gen.int_range 0 10) (int_bound 9)))
    (fun (coords, removals) ->
      let flat =
        List.concat_map (fun ((a, b), (c, d)) -> [ (a, b); (c, d) ]) coords
      in
      let distinct = List.sort_uniq compare flat in
      QCheck.assume (List.length distinct = List.length flat);
      let p = placement_at 8 flat in
      let k = List.length coords in
      let ts = tasks k in
      let ig = I.build p ts and lg = I.Legacy.build p ts in
      let same () =
        ids (I.nodes ig) = ids (I.Legacy.nodes lg)
        && I.max_degree ig = I.Legacy.max_degree lg
        && ids (I.max_degree_nodes ig) = ids (I.Legacy.max_degree_nodes lg)
        && List.for_all
             (fun t ->
               I.degree ig t.Task.id = I.Legacy.degree lg t.Task.id
               && ids (I.neighbors ig t.Task.id)
                  = ids (I.Legacy.neighbors lg t.Task.id))
             (I.Legacy.nodes lg)
      in
      same ()
      && List.for_all
           (fun i ->
             if i < k && I.mem ig i then begin
               I.remove ig i;
               I.Legacy.remove lg i
             end;
             same ())
           removals)

let () =
  Alcotest.run "interference"
    [
      ( "interference",
        [
          Alcotest.test_case "build" `Quick test_build;
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "max degree nodes" `Quick test_max_degree_nodes;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "clique" `Quick test_clique;
          QCheck_alcotest.to_alcotest prop_degrees_symmetric;
        ] );
      ( "differential",
        [
          Alcotest.test_case "peel sequence: packed = legacy" `Quick
            test_differential_removals;
          QCheck_alcotest.to_alcotest prop_matches_legacy;
        ] );
    ]
