(* Tests for the lattice-surgery backend: trace validity, cross-backend
   equivalence, the pipelining win on long-range workloads, rip-up and
   stats accounting, Merge-round trace violations, and JSON export. *)

module S = Autobraid.Scheduler
module Trace = Autobraid.Trace
module CB = Autobraid.Comm_backend
module Surgery = Qec_surgery.Surgery_scheduler
module T = Qec_surface.Timing
module St = Qec_surface.Surgery_timing
module C = Qec_circuit.Circuit
module G = Qec_circuit.Gate
module B = Qec_benchmarks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let timing = T.make ~d:33 ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expect_valid trace =
  match Trace.validate trace with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("surgery trace invalid: " ^ msg)

let expect_violation needle trace =
  match Trace.validate trace with
  | Ok () -> Alcotest.fail "broken trace accepted"
  | Error msg ->
    check_bool (Printf.sprintf "violation mentions %S (got %S)" needle msg)
      true (contains msg needle)

let acceptance_circuits =
  [ B.Qft.circuit 9; B.Bv.circuit 12; B.Qaoa.circuit 12 ]

let test_traces_validate () =
  List.iter
    (fun c ->
      let _, trace, _ = Surgery.run_traced timing c in
      expect_valid trace)
    (acceptance_circuits
    @ [ B.Misc_circuits.longrange 12; B.Building_blocks.by_name "4gt11_8" ])

let test_result_consistency () =
  let result, trace, stats = Surgery.run_traced timing (B.Qft.circuit 9) in
  check_int "cycles from trace replay" (Trace.cycles timing trace)
    result.S.total_cycles;
  check_int "rounds agree" (Trace.num_rounds trace) result.S.rounds;
  check_int "no swap layers" 0 result.S.swap_layers;
  check_int "no swaps" 0 result.S.swaps_inserted;
  check_int "merge rounds in result" stats.Surgery.merge_rounds
    result.S.braid_rounds;
  check_int "rounds split into merge+local"
    (stats.Surgery.merge_rounds + stats.Surgery.local_rounds)
    result.S.rounds

let test_stats_accounting () =
  let _, trace, stats = Surgery.run_traced timing (B.Qft.circuit 9) in
  let overlapped =
    List.length
      (List.filter
         (function
           | Trace.Merge { split_overlapped; _ } -> split_overlapped
           | _ -> false)
         trace.Trace.rounds)
  in
  check_int "pipelined_splits counts overlapped rounds" overlapped
    stats.Surgery.pipelined_splits;
  check_bool "tile time positive" true (stats.Surgery.tile_time_cycles > 0);
  check_bool "mean path at least one vertex" true
    (stats.Surgery.mean_merge_path >= 1.);
  check_bool "longest path bounds mean" true
    (float_of_int stats.Surgery.longest_merge_path
    >= stats.Surgery.mean_merge_path);
  (* tile-time is Σ path_len * d, so mean * merges * d must reproduce it *)
  let merges =
    List.fold_left
      (fun acc -> function
        | Trace.Merge { merges; _ } -> acc + List.length merges
        | _ -> acc)
      0 trace.Trace.rounds
  in
  check_int "tile time = mean * merges * d"
    (int_of_float
       (Float.round (stats.Surgery.mean_merge_path *. float_of_int merges))
    * St.merge_cycles timing)
    stats.Surgery.tile_time_cycles

let test_cross_backend_same_gates () =
  List.iter
    (fun c ->
      let braid = (CB.braid ()).CB.run timing c in
      let surgery = (Qec_surgery.Backend.make ()).CB.run timing c in
      let gb = CB.scheduled_gate_ids braid.CB.trace
      and gs = CB.scheduled_gate_ids surgery.CB.trace in
      check_int "same lowered gate count"
        braid.CB.result.S.num_gates surgery.CB.result.S.num_gates;
      check_bool "both backends schedule the same gate set" true (gb = gs);
      check_int "every gate scheduled exactly once"
        braid.CB.result.S.num_gates (List.length gs))
    acceptance_circuits

let test_surgery_beats_braid_on_longrange () =
  (* The acceptance benchmark: long-range CX fronts split under
     congestion, and surgery pipelines the splits while braiding pays
     full 2d rounds. *)
  let wins = ref 0 in
  List.iter
    (fun n ->
      let c = B.Misc_circuits.longrange n in
      let braid = (CB.braid ()).CB.run timing c in
      let surgery = (Qec_surgery.Backend.make ()).CB.run timing c in
      let cb = braid.CB.result.S.total_cycles
      and cs = surgery.CB.result.S.total_cycles in
      check_bool
        (Printf.sprintf "surgery no worse on lr%d (%d vs %d)" n cb cs)
        true (cs <= cb);
      if cs < cb then incr wins)
    [ 16; 20; 24 ];
  check_bool "surgery strictly faster on at least one lr size" true (!wins >= 1)

let test_pipelining_toggle () =
  let c = B.Misc_circuits.longrange 16 in
  let on = Surgery.run_traced timing c in
  let off =
    Surgery.run_traced
      ~options:{ Surgery.default_options with pipeline_splits = false } timing c
  in
  let _, trace_off, stats_off = off in
  check_int "no overlapped rounds when disabled" 0
    stats_off.Surgery.pipelined_splits;
  check_bool "disabled trace still valid" true
    (match Trace.validate trace_off with Ok () -> true | Error _ -> false);
  let r_on, _, stats_on = on in
  check_bool "pipelining fires on the long-range benchmark" true
    (stats_on.Surgery.pipelined_splits > 0);
  check_bool "pipelining never slows the schedule" true
    (r_on.S.total_cycles <= (let r, _, _ = off in r).S.total_cycles)

let test_determinism () =
  let c = B.Misc_circuits.longrange 16 in
  let r1, t1, _ = Surgery.run_traced timing c in
  let r2, t2, _ = Surgery.run_traced timing c in
  check_int "same cycles" r1.S.total_cycles r2.S.total_cycles;
  check_int "same rounds" (Trace.num_rounds t1) (Trace.num_rounds t2)

let test_run_matches_run_traced () =
  let c = B.Qft.circuit 9 in
  let plain = Surgery.run timing c in
  let traced, _, _ = Surgery.run_traced timing c in
  check_int "identical schedules" plain.S.total_cycles traced.S.total_cycles

let test_braid_backend_matches_scheduler () =
  let c = B.Qft.circuit 9 in
  let o = (CB.braid ()).CB.run timing c in
  let direct = S.run timing c in
  check_int "backend wraps the scheduler unchanged" direct.S.total_cycles
    o.CB.result.S.total_cycles;
  check_bool "braid stats empty" true (o.CB.stats = [])

(* ---------------- Merge-round violations ---------------- *)

let surgery_trace c =
  let _, trace, _ = Surgery.run_traced timing c in
  trace

let overlap_last_merge rounds =
  let last =
    List.fold_left
      (fun (i, acc) r ->
        (i + 1, match r with Trace.Merge _ -> i | _ -> acc))
      (0, -1) rounds
    |> snd
  in
  List.mapi
    (fun i r ->
      match r with
      | Trace.Merge { merges; locals; _ } when i = last ->
        Trace.Merge { merges; locals; split_overlapped = true }
      | _ -> r)
    rounds

let test_overlap_on_final_round_rejected () =
  (* A lone CX schedules as a single merge round — the last one — so
     claiming its split overlaps a successor must be rejected. *)
  let trace = surgery_trace (C.create ~num_qubits:2 [ G.Cx (0, 1) ]) in
  let is_last_merge =
    match List.rev trace.Trace.rounds with
    | Trace.Merge _ :: _ -> true
    | _ -> false
  in
  check_bool "fixture ends in a merge round" true is_last_merge;
  let broken =
    {
      trace with
      Trace.rounds = overlap_last_merge trace.Trace.rounds;
    }
  in
  expect_violation "final round" broken

let test_overlap_sharing_qubits_rejected () =
  (* CX(0,1) then H 0: the local round touches q0, so the merge's split
     cannot overlap it. *)
  let c = C.create ~num_qubits:2 [ G.Cx (0, 1); G.H 0 ] in
  let trace = surgery_trace c in
  let broken =
    {
      trace with
      Trace.rounds =
        List.map
          (function
            | Trace.Merge m -> Trace.Merge { m with split_overlapped = true }
            | r -> r)
          trace.Trace.rounds;
    }
  in
  expect_violation "shares qubits" broken

let test_empty_merge_round_rejected () =
  let c = C.create ~num_qubits:2 [ G.Cx (0, 1) ] in
  let trace = surgery_trace c in
  let broken =
    {
      trace with
      Trace.rounds =
        Trace.Merge { merges = []; locals = []; split_overlapped = false }
        :: trace.Trace.rounds;
    }
  in
  expect_violation "without merges" broken

let test_single_qubit_merge_rejected () =
  let c = C.create ~num_qubits:2 [ G.H 0; G.Cx (0, 1) ] in
  let trace = surgery_trace c in
  (* reschedule the H gate as a merge *)
  let broken =
    {
      trace with
      Trace.rounds =
        List.map
          (function
            | Trace.Local { gates = [ id ] } ->
              let path =
                match trace.Trace.rounds with
                | _ ->
                  (* reuse any recorded merge path *)
                  List.find_map
                    (function
                      | Trace.Merge { merges = (_, p) :: _; _ } -> Some p
                      | _ -> None)
                    trace.Trace.rounds
                  |> Option.get
              in
              Trace.Merge
                {
                  merges = [ ({ Autobraid.Task.id; q1 = 0; q2 = 1 }, path) ];
                  locals = [];
                  split_overlapped = false;
                }
            | r -> r)
          trace.Trace.rounds;
    }
  in
  expect_violation "not two-qubit" broken

(* ---------------- export ---------------- *)

let test_backend_outcome_json () =
  let c = B.Bv.circuit 12 in
  let o = (Qec_surgery.Backend.make ()).CB.run timing c in
  let json =
    Qec_report.Json.to_string
      (Qec_report.Export.backend_outcome_to_json ~max_rounds:5 timing o)
  in
  check_bool "has backend field" true (contains json "\"backend\":\"surgery\"");
  check_bool "has surgery stats" true (contains json "pipelined_splits");
  check_bool "has merge rounds" true (contains json "\"kind\":\"merge\"");
  check_bool "has exposure" true (contains json "failure_probability")

(* Property: surgery traces validate on random circuits, with and without
   pipelining. *)
let random_circuit =
  QCheck.Gen.(
    let* n = int_range 2 10 in
    let* gs =
      list_size (int_range 1 50)
        (let* a = int_range 0 (n - 1) in
         let* b = int_range 0 (n - 1) in
         let* kind = int_range 0 2 in
         return (a, b, kind))
    in
    let gates =
      List.map
        (fun (a, b, kind) -> if kind = 0 || a = b then G.H a else G.Cx (a, b))
        gs
    in
    return (C.create ~num_qubits:n gates))

let prop_surgery_traces_validate =
  QCheck.Test.make ~name:"surgery traces always validate" ~count:60
    (QCheck.make random_circuit) (fun c ->
      let _, trace, _ = Surgery.run_traced timing c in
      match Trace.validate trace with Ok () -> true | Error _ -> false)

let prop_backends_agree_on_gates =
  QCheck.Test.make ~name:"backends schedule identical gate sets" ~count:40
    (QCheck.make random_circuit) (fun c ->
      let braid = (CB.braid ()).CB.run timing c in
      let surgery = (Qec_surgery.Backend.make ()).CB.run timing c in
      CB.scheduled_gate_ids braid.CB.trace
      = CB.scheduled_gate_ids surgery.CB.trace)

let () =
  Alcotest.run "surgery"
    [
      ( "scheduler",
        [
          Alcotest.test_case "traces validate" `Quick test_traces_validate;
          Alcotest.test_case "result consistency" `Quick test_result_consistency;
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "run agrees with run_traced" `Quick
            test_run_matches_run_traced;
          QCheck_alcotest.to_alcotest prop_surgery_traces_validate;
        ] );
      ( "backend",
        [
          Alcotest.test_case "same gate sets" `Quick
            test_cross_backend_same_gates;
          Alcotest.test_case "beats braid on long-range" `Quick
            test_surgery_beats_braid_on_longrange;
          Alcotest.test_case "pipelining toggle" `Quick test_pipelining_toggle;
          Alcotest.test_case "braid backend wraps scheduler" `Quick
            test_braid_backend_matches_scheduler;
          QCheck_alcotest.to_alcotest prop_backends_agree_on_gates;
        ] );
      ( "violations",
        [
          Alcotest.test_case "overlap on final round" `Quick
            test_overlap_on_final_round_rejected;
          Alcotest.test_case "overlap sharing qubits" `Quick
            test_overlap_sharing_qubits_rejected;
          Alcotest.test_case "empty merge round" `Quick
            test_empty_merge_round_rejected;
          Alcotest.test_case "single-qubit merge" `Quick
            test_single_qubit_merge_rejected;
        ] );
      ( "export",
        [ Alcotest.test_case "backend outcome json" `Quick
            test_backend_outcome_json ] );
    ]
