(* Tests for A* and dimension-ordered routing. *)

module Grid = Qec_lattice.Grid
module Path = Qec_lattice.Path
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Bbox = Qec_lattice.Bbox

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let grid = Grid.create 6
let router = Router.create grid
let cell x y = Grid.cell_id grid ~x ~y
let vid x y = Grid.vertex_id grid ~x ~y

let fresh_occ () = Occupancy.create grid

let test_route_exists_empty () =
  let occ = fresh_occ () in
  match Router.route router occ ~src_cell:(cell 0 0) ~dst_cell:(cell 5 5) with
  | None -> Alcotest.fail "no path on empty grid"
  | Some p ->
    check_bool "connects" true
      (Path.connects_cells grid p (cell 0 0) (cell 5 5));
    (* shortest: best corners are (1,1) and (5,5): distance 8, 9 vertices *)
    check_int "shortest" 9 (Path.length p)

let test_route_adjacent_cells () =
  let occ = fresh_occ () in
  match Router.route router occ ~src_cell:(cell 0 0) ~dst_cell:(cell 1 0) with
  | None -> Alcotest.fail "no path between neighbors"
  | Some p -> check_int "single shared corner" 1 (Path.length p)

let test_route_same_cell_invalid () =
  let occ = fresh_occ () in
  check_bool "same cell" true
    (match Router.route router occ ~src_cell:3 ~dst_cell:3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let wall occ x_at =
  (* occupy the whole vertical channel column x = x_at *)
  for y = 0 to Grid.side grid do
    let p = Path.of_vertices grid [ vid x_at y ] in
    Occupancy.reserve_path occ p
  done

let test_route_detours () =
  let occ = fresh_occ () in
  (* wall column 3, leaving a hole at the bottom (y = 6) *)
  for y = 0 to 5 do
    Occupancy.reserve_path occ (Path.of_vertices grid [ vid 3 y ])
  done;
  match Router.route router occ ~src_cell:(cell 0 0) ~dst_cell:(cell 5 0) with
  | None -> Alcotest.fail "should detour through the hole"
  | Some p ->
    check_bool "uses the hole" true (Path.mem p (vid 3 6));
    check_bool "valid path" true
      (Path.connects_cells grid p (cell 0 0) (cell 5 0))

let test_route_blocked () =
  let occ = fresh_occ () in
  wall occ 3;
  check_bool "disconnected" true
    (Router.route router occ ~src_cell:(cell 0 0) ~dst_cell:(cell 5 0) = None)

let test_route_blocked_corners () =
  let occ = fresh_occ () in
  (* occupy all four corners of the target cell *)
  Array.iter
    (fun v -> Occupancy.reserve_path occ (Path.of_vertices grid [ v ]))
    (Grid.cell_corners grid (cell 4 4));
  check_bool "no free corner" true
    (Router.route router occ ~src_cell:(cell 0 0) ~dst_cell:(cell 4 4) = None)

let test_route_and_reserve () =
  let occ = fresh_occ () in
  (match Router.route_and_reserve router occ ~src_cell:(cell 0 0) ~dst_cell:(cell 2 0) with
  | None -> Alcotest.fail "route failed"
  | Some p ->
    List.iter
      (fun v -> check_bool "reserved" false (Occupancy.is_free occ v))
      (Path.vertices p));
  (* a second identical route must pick different vertices or fail *)
  match Router.route_and_reserve router occ ~src_cell:(cell 0 0) ~dst_cell:(cell 2 0) with
  | None -> ()
  | Some p2 ->
    check_int "occupancy consistent"
      (Occupancy.occupied_count occ)
      (Occupancy.occupied_count occ);
    check_bool "valid" true (Path.connects_cells grid p2 (cell 0 0) (cell 2 0))

let test_route_bounds () =
  let occ = fresh_occ () in
  let bounds = Bbox.of_cells (0, 0) (2, 0) in
  (match Router.route ~bounds router occ ~src_cell:(cell 0 0) ~dst_cell:(cell 2 0) with
  | None -> Alcotest.fail "in-bounds route failed"
  | Some p -> check_bool "stays inside" true (Path.within_bbox grid bounds p));
  (* Block the in-bounds corridor with two plugs: (2,0) stops the y=0 row,
     (1,1) stops the y=1 row. Bounded search must fail; the unbounded one
     detours below through y=2. *)
  Occupancy.reserve_path occ (Path.of_vertices grid [ vid 2 0 ]);
  Occupancy.reserve_path occ (Path.of_vertices grid [ vid 1 1 ]);
  check_bool "bounded fails" true
    (Router.route ~bounds router occ ~src_cell:(cell 0 0) ~dst_cell:(cell 2 0)
    = None);
  check_bool "unbounded detours" true
    (Router.route router occ ~src_cell:(cell 0 0) ~dst_cell:(cell 2 0) <> None)

let test_dimension_ordered_straight () =
  let occ = fresh_occ () in
  match
    Router.route_dimension_ordered router occ ~src_cell:(cell 0 0)
      ~dst_cell:(cell 3 0)
  with
  | None -> Alcotest.fail "no L route"
  | Some p ->
    check_bool "connects" true (Path.connects_cells grid p (cell 0 0) (cell 3 0));
    (* straight line: min corners (1,y) to (3,y): 3 vertices *)
    check_int "straight" 3 (Path.length p)

let test_dimension_ordered_bend () =
  let occ = fresh_occ () in
  match
    Router.route_dimension_ordered router occ ~src_cell:(cell 0 0)
      ~dst_cell:(cell 3 3)
  with
  | None -> Alcotest.fail "no L route"
  | Some p ->
    (* one bend: length = manhattan + 1 = (3-1)+(3-1)+1 = 5 *)
    check_int "L length" 5 (Path.length p)

let test_dimension_ordered_stalls () =
  let occ = fresh_occ () in
  (* Block both bend corridors between (0,0) and (2,2) but leave a detour:
     dimension-ordered must fail where A* succeeds. *)
  for i = 0 to 6 do
    if i <> 6 then Occupancy.reserve_path occ (Path.of_vertices grid [ vid 2 i ]);
    if i <> 0 && i <> 2 && i <> 6 then
      Occupancy.reserve_path occ (Path.of_vertices grid [ vid i 2 ])
  done;
  (* ensure target corners reachable: cells (0,0) and (4,4) *)
  let l = Router.route_dimension_ordered router occ ~src_cell:(cell 0 0)
            ~dst_cell:(cell 4 4) in
  let a = Router.route router occ ~src_cell:(cell 0 0) ~dst_cell:(cell 4 4) in
  check_bool "L stalls" true (l = None);
  check_bool "A* detours" true (a <> None)

let prop_route_valid =
  QCheck.Test.make ~name:"A* paths are valid corner-to-corner paths" ~count:200
    QCheck.(quad (int_bound 5) (int_bound 5) (int_bound 5) (int_bound 5))
    (fun (x1, y1, x2, y2) ->
      QCheck.assume ((x1, y1) <> (x2, y2));
      let occ = fresh_occ () in
      match
        Router.route router occ ~src_cell:(cell x1 y1) ~dst_cell:(cell x2 y2)
      with
      | None -> false (* empty grid must always route *)
      | Some p ->
        Path.connects_cells grid p (cell x1 y1) (cell x2 y2)
        && Path.length p
           >= Grid.cell_to_cell_vertex_distance grid (cell x1 y1) (cell x2 y2)
              + 1
           - 1)

let prop_route_shortest_on_empty =
  QCheck.Test.make ~name:"A* is shortest on the empty grid" ~count:200
    QCheck.(quad (int_bound 5) (int_bound 5) (int_bound 5) (int_bound 5))
    (fun (x1, y1, x2, y2) ->
      QCheck.assume ((x1, y1) <> (x2, y2));
      let occ = fresh_occ () in
      match
        Router.route router occ ~src_cell:(cell x1 y1) ~dst_cell:(cell x2 y2)
      with
      | None -> false
      | Some p ->
        Path.length p
        = Grid.cell_to_cell_vertex_distance grid (cell x1 y1) (cell x2 y2) + 1)

let prop_reserved_paths_disjoint =
  QCheck.Test.make ~name:"successively reserved paths are vertex-disjoint"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 2 8)
              (pair (pair (int_bound 5) (int_bound 5))
                 (pair (int_bound 5) (int_bound 5))))
    (fun pairs ->
      let occ = fresh_occ () in
      let paths =
        List.filter_map
          (fun ((x1, y1), (x2, y2)) ->
            if (x1, y1) = (x2, y2) then None
            else
              Router.route_and_reserve router occ ~src_cell:(cell x1 y1)
                ~dst_cell:(cell x2 y2))
          pairs
      in
      let rec all_disjoint = function
        | [] -> true
        | p :: rest ->
          List.for_all (fun q -> Path.disjoint p q) rest && all_disjoint rest
      in
      all_disjoint paths)

(* Differential: the arena A* must be byte-identical to the pre-rewrite
   reference — same Some/None outcome and the same vertex sequence, since
   both must expand in the same order under FIFO tie-breaking. *)

let verts = function None -> None | Some p -> Some (Path.vertices p)

let test_differential_fixtures () =
  let queries occ =
    List.iter
      (fun (src, dst, bounds) ->
        Alcotest.(check (option (list int)))
          "arena = reference"
          (verts (Router.route_reference ?bounds router occ ~src_cell:src ~dst_cell:dst))
          (verts (Router.route ?bounds router occ ~src_cell:src ~dst_cell:dst)))
      [
        (cell 0 0, cell 5 5, None);
        (cell 0 0, cell 1 0, None);
        (cell 2 3, cell 3 2, None);
        (cell 0 0, cell 2 0, Some (Bbox.of_cells (0, 0) (2, 0)));
        (cell 0 0, cell 4 4, Some (Bbox.of_cells (0, 0) (3, 3)));
      ]
  in
  queries (fresh_occ ());
  (* congested fixture: the detour wall from test_route_detours *)
  let occ = fresh_occ () in
  for y = 0 to 5 do
    Occupancy.reserve_path occ (Path.of_vertices grid [ vid 3 y ])
  done;
  queries occ;
  (* fully blocked *)
  let occ = fresh_occ () in
  wall occ 3;
  queries occ

let prop_route_matches_reference =
  QCheck.Test.make
    ~name:"arena A* = reference A* (random occupancy, random bounds)"
    ~count:500
    QCheck.(
      triple
        (quad (int_bound 5) (int_bound 5) (int_bound 5) (int_bound 5))
        (list_of_size (Gen.int_range 0 20) (int_bound 48))
        (option
           (quad (int_bound 5) (int_bound 5) (int_bound 5) (int_bound 5))))
    (fun ((x1, y1, x2, y2), blocked, bounds) ->
      QCheck.assume ((x1, y1) <> (x2, y2));
      let occ = fresh_occ () in
      List.iter
        (fun v -> if Occupancy.is_free occ v then
            Occupancy.reserve_path occ (Path.of_vertices grid [ v ]))
        blocked;
      let bounds =
        Option.map
          (fun (bx1, by1, bx2, by2) ->
            Bbox.of_cells (min bx1 bx2, min by1 by2) (max bx1 bx2, max by1 by2))
          bounds
      in
      let src_cell = cell x1 y1 and dst_cell = cell x2 y2 in
      verts (Router.route ?bounds router occ ~src_cell ~dst_cell)
      = verts (Router.route_reference ?bounds router occ ~src_cell ~dst_cell))

let () =
  Alcotest.run "router"
    [
      ( "astar",
        [
          Alcotest.test_case "empty grid" `Quick test_route_exists_empty;
          Alcotest.test_case "adjacent cells" `Quick test_route_adjacent_cells;
          Alcotest.test_case "same cell" `Quick test_route_same_cell_invalid;
          Alcotest.test_case "detours" `Quick test_route_detours;
          Alcotest.test_case "blocked" `Quick test_route_blocked;
          Alcotest.test_case "blocked corners" `Quick test_route_blocked_corners;
          Alcotest.test_case "reserve" `Quick test_route_and_reserve;
          Alcotest.test_case "bounds" `Quick test_route_bounds;
          QCheck_alcotest.to_alcotest prop_route_valid;
          QCheck_alcotest.to_alcotest prop_route_shortest_on_empty;
          QCheck_alcotest.to_alcotest prop_reserved_paths_disjoint;
        ] );
      ( "differential",
        [
          Alcotest.test_case "fixtures: arena = reference" `Quick
            test_differential_fixtures;
          QCheck_alcotest.to_alcotest prop_route_matches_reference;
        ] );
      ( "dimension ordered",
        [
          Alcotest.test_case "straight" `Quick test_dimension_ordered_straight;
          Alcotest.test_case "bend" `Quick test_dimension_ordered_bend;
          Alcotest.test_case "stalls where A* detours" `Quick test_dimension_ordered_stalls;
        ] );
    ]
