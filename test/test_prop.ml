(* Tests for Qec_prop: generator determinism and bounds, shrinking,
   the fixed-seed fuzz corpus, and replay of promoted regression files
   from fixtures/regressions/. *)

module Rng = Qec_util.Rng
module C = Qec_circuit.Circuit
module Gate = Qec_circuit.Gate
module Printer = Qec_qasm.Printer
module Gen = Qec_prop.Gen
module Shrink = Qec_prop.Shrink
module Property = Qec_prop.Property
module Runner = Qec_prop.Runner

(* ---------------------------------------------------------------- *)
(* Generator                                                        *)
(* ---------------------------------------------------------------- *)

let test_gen_deterministic () =
  for seed = 1 to 10 do
    let c1 = Gen.circuit (Rng.create seed) in
    let c2 = Gen.circuit (Rng.create seed) in
    Alcotest.(check string)
      (Printf.sprintf "seed %d reproduces" seed)
      (Printer.to_string c1) (Printer.to_string c2)
  done

let test_gen_bounds () =
  let p = Gen.default in
  for seed = 1 to 50 do
    let c = Gen.circuit (Rng.create seed) in
    C.validate c;
    let n = C.num_qubits c in
    if n < p.Gen.min_qubits || n > p.Gen.max_qubits then
      Alcotest.failf "seed %d: %d qubits outside [%d, %d]" seed n
        p.Gen.min_qubits p.Gen.max_qubits;
    if Array.length (C.gates c) = 0 then
      Alcotest.failf "seed %d: empty circuit" seed
  done

let test_gen_params_validated () =
  (match Gen.validate { Gen.default with Gen.cx_density = 1.5 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cx_density 1.5 accepted");
  (match Gen.validate { Gen.default with Gen.min_qubits = 1 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "min_qubits 1 accepted");
  match Gen.validate Gen.default with
  | Ok () -> ()
  | Error e -> Alcotest.failf "default params rejected: %s" e

let test_mutate_deterministic () =
  let base = Printer.to_string (Gen.circuit (Rng.create 7)) in
  let m1 = Gen.mutate (Rng.create 99) base in
  let m2 = Gen.mutate (Rng.create 99) base in
  Alcotest.(check string) "same seed, same mutation" m1 m2

(* ---------------------------------------------------------------- *)
(* Shrinking                                                        *)
(* ---------------------------------------------------------------- *)

let has_cx c =
  Array.exists (function Gate.Cx _ -> true | _ -> false) (C.gates c)

let test_shrink_reaches_minimum () =
  (* A 20-gate, 8-qubit circuit failing "contains a CX" must shrink to
     the single CX on as few qubits as the shrinker can reach. *)
  let gates =
    [ Gate.H 0; Gate.X 1; Gate.Z 2; Gate.H 3; Gate.Cx (5, 7); Gate.S 4;
      Gate.T 6; Gate.H 7; Gate.X 0; Gate.Z 1; Gate.H 2; Gate.S 3;
      Gate.T 4; Gate.X 5; Gate.Z 6; Gate.H 1; Gate.S 0; Gate.T 2;
      Gate.X 3; Gate.H 4 ]
  in
  let c = C.create ~num_qubits:8 gates in
  let shrunk = Shrink.minimize ~test:has_cx c in
  if not (has_cx shrunk) then Alcotest.fail "shrunk circuit lost the CX";
  Alcotest.(check int) "one gate left" 1 (Array.length (C.gates shrunk));
  Alcotest.(check int) "two qubits left" 2 (C.num_qubits shrunk)

let test_shrink_requires_failing_input () =
  let c = C.create ~num_qubits:2 [ Gate.H 0 ] in
  match Shrink.minimize ~test:has_cx c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "minimize accepted a passing input"

let test_shrink_text () =
  let text = "alpha\nbeta\nneedle here\ngamma\ndelta\n" in
  let contains s =
    let n = String.length s and m = 6 in
    let rec go i = i + m <= n && (String.sub s i m = "needle" || go (i + 1)) in
    go 0
  in
  let shrunk = Shrink.minimize_text ~test:contains text in
  if not (contains shrunk) then Alcotest.fail "shrunk text lost the needle";
  if String.length shrunk > String.length "needle" + 2 then
    Alcotest.failf "text barely shrunk: %S" shrunk

(* ---------------------------------------------------------------- *)
(* Registry and fixed-seed corpus                                   *)
(* ---------------------------------------------------------------- *)

let test_registry_complete () =
  let names = Property.names () in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then
        Alcotest.failf "property %s missing from registry" expected)
    [ "trace/braid"; "trace/braid-swappy"; "trace/surgery";
      "surgery/pipeline-bounds"; "sched/incremental-frontier";
      "diff/backends"; "lookahead/never-worse";
      "engine/spec-identity";
      "engine/cache-identity"; "engine/batch-identity"; "qasm/roundtrip";
      "lint/stable-codes"; "qasm/crash" ];
  List.iter
    (fun n ->
      match Property.find n with
      | Some p -> Alcotest.(check string) "find is keyed by name" n p.Property.name
      | None -> Alcotest.failf "find %s failed" n)
    names

let test_corpus_clean () =
  (* The fixed-seed corpus: every registered property over 25 generated
     cases. Failures here mean a cross-layer invariant regressed; run
     [autobraid fuzz --seed 42] for the full smoke sweep. *)
  let r = Runner.run ~seed:42 ~count:25 () in
  Alcotest.(check int) "cases run" 25 r.Runner.cases;
  (match r.Runner.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "property %s failed (seed %d, case %d): %s\n%s"
      f.Runner.property f.Runner.seed f.Runner.case f.Runner.message
      (Runner.counterexample_to_string f.Runner.counterexample));
  if r.Runner.checks < 25 * List.length (Property.all ()) then
    Alcotest.failf "only %d checks ran" r.Runner.checks

let test_failure_report_shape () =
  (* A property that always fails must produce a shrunk counterexample
     and stop at max_failures. *)
  let always_fail =
    { Property.name = "test/always-fail";
      description = "fails on every circuit";
      check = Property.Circuit (fun _ -> Property.Fail "nope") }
  in
  let r =
    Runner.run ~properties:[ always_fail ] ~max_failures:1 ~seed:5 ~count:50 ()
  in
  match r.Runner.failures with
  | [ f ] ->
    Alcotest.(check string) "property name" "test/always-fail" f.Runner.property;
    Alcotest.(check int) "stopped at first case" 1 r.Runner.cases;
    if f.Runner.shrunk_size > f.Runner.original_size then
      Alcotest.fail "shrinking grew the counterexample";
    (match f.Runner.counterexample with
    | Runner.Circuit c ->
      (* Always-failing means the shrinker may strip every gate. *)
      if Array.length (C.gates c) > 1 then
        Alcotest.failf "barely shrunk: %d gates" (Array.length (C.gates c))
    | Runner.Source _ -> Alcotest.fail "expected a circuit counterexample")
  | fs -> Alcotest.failf "expected 1 failure, got %d" (List.length fs)

(* ---------------------------------------------------------------- *)
(* Regression replay                                                *)
(* ---------------------------------------------------------------- *)

let regressions_dir () =
  List.find_opt Sys.file_exists
    [ Filename.concat ".." (Filename.concat "fixtures" "regressions");
      Filename.concat "fixtures" "regressions" ]

let test_regressions_replay_clean () =
  match regressions_dir () with
  | None -> Alcotest.fail "fixtures/regressions not found"
  | Some dir ->
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".qasm")
      |> List.sort compare
    in
    if files = [] then Alcotest.fail "no promoted regressions found";
    List.iter
      (fun f ->
        let path = Filename.concat dir f in
        match Runner.replay_file path with
        | Ok (_, Property.Pass) -> ()
        | Ok (prop, Property.Fail msg) ->
          Alcotest.failf "regression %s (%s) fails again: %s" f prop msg
        | Error e -> Alcotest.failf "regression %s unreadable: %s" f e)
      files

let test_replay_rejects_malformed () =
  (match Runner.replay_string "OPENQASM 2.0;\nqreg q[1];\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing fuzz-prop header accepted");
  match Runner.replay_string "// fuzz-prop: no/such-property\nqreg q[1];\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown property accepted"

let test_roundtrip_through_file () =
  (* failure_to_file -> replay_file closes the promotion loop. *)
  let c = C.create ~num_qubits:2 [ Gate.Cx (0, 1) ] in
  let f =
    { Runner.property = "qasm/roundtrip"; seed = 9; case = 3;
      message = "synthetic"; counterexample = Runner.Circuit c;
      original_size = 1; shrunk_size = 1 }
  in
  let dir = Filename.temp_file "qecprop" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let path = Runner.failure_to_file ~dir f in
      Alcotest.(check string) "file name" "qasm-roundtrip-s9-c3.qasm"
        (Filename.basename path);
      match Runner.replay_file path with
      | Ok ("qasm/roundtrip", Property.Pass) -> ()
      | Ok (p, Property.Pass) -> Alcotest.failf "wrong property: %s" p
      | Ok (_, Property.Fail m) -> Alcotest.failf "replay failed: %s" m
      | Error e -> Alcotest.failf "replay error: %s" e)

let () =
  Alcotest.run "qec_prop"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "bounds" `Quick test_gen_bounds;
          Alcotest.test_case "params validated" `Quick test_gen_params_validated;
          Alcotest.test_case "mutate deterministic" `Quick
            test_mutate_deterministic;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "reaches minimum" `Quick test_shrink_reaches_minimum;
          Alcotest.test_case "requires failing input" `Quick
            test_shrink_requires_failing_input;
          Alcotest.test_case "text" `Quick test_shrink_text;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "fixed-seed corpus clean" `Slow test_corpus_clean;
          Alcotest.test_case "failure report shape" `Quick
            test_failure_report_shape;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "promoted fixtures replay clean" `Quick
            test_regressions_replay_clean;
          Alcotest.test_case "malformed files rejected" `Quick
            test_replay_rejects_malformed;
          Alcotest.test_case "promotion round-trip" `Quick
            test_roundtrip_through_file;
        ] );
    ]
