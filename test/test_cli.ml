(* End-to-end tests of the `autobraid` CLI binary: every subcommand is
   exercised through a real process, checking exit codes and output. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* dune runtest runs in _build/default/test; `dune exec` from the root. *)
let cli =
  let candidates =
    [ "../bin/autobraid_cli.exe"; "_build/default/bin/autobraid_cli.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "CLI binary not found (build bin/ first)"

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Run the CLI with args; return (exit_code, stdout++stderr). *)
let run args =
  let out = Filename.temp_file "autobraid_cli" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote cli) args
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let text = read_file out in
  Sys.remove out;
  (code, text)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_list () =
  let code, out = run "list" in
  check_int "exit 0" 0 code;
  check_bool "families" true (contains out "qft<n>");
  check_bool "fixed" true (contains out "urf2_277")

let test_compile_builtin () =
  let code, out = run "compile bv20" in
  check_int "exit 0" 0 code;
  check_bool "report printed" true (contains out "total cycles");
  check_bool "cp ratio" true (contains out "vs critical path");
  check_bool "reliability" true (contains out "failure prob.")

let test_compile_baseline_and_sp () =
  let code, _ = run "compile qft9 -s baseline" in
  check_int "baseline ok" 0 code;
  let code, _ = run "compile qft9 -s sp --initial metis" in
  check_int "sp ok" 0 code

let test_compile_optimize () =
  let code, out = run "compile 4gt11_8 -O" in
  check_int "exit 0" 0 code;
  check_bool "peephole line" true (contains out "peephole:")

let test_info () =
  let code, out = run "info qft9" in
  check_int "exit 0" 0 code;
  check_bool "qubits" true (contains out "qubits             9");
  check_bool "parallelism" true (contains out "CX parallelism")

let test_emit_roundtrip () =
  let tmp = Filename.temp_file "autobraid_emit" ".qasm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let code, _ = run (Printf.sprintf "emit qft5 -o %s" tmp) in
      check_int "exit 0" 0 code;
      let c = Qec_qasm.Frontend.of_file tmp in
      check_int "5 qubits" 5 (Qec_circuit.Circuit.num_qubits c);
      check_int "qft5 gate count" 15 (Qec_circuit.Circuit.length c))

let test_compile_from_file () =
  let tmp = Filename.temp_file "autobraid_in" ".qasm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n";
      close_out oc;
      let code, out = run (Printf.sprintf "compile %s" (Filename.quote tmp)) in
      check_int "exit 0" 0 code;
      check_bool "3 qubits" true (contains out "logical qubits");
      check_bool "2x2 lattice" true (contains out "2x2 tiles"))

let test_sweep () =
  let code, out = run "sweep bv8" in
  check_int "exit 0" 0 code;
  check_bool "header" true (contains out "# p  cycles");
  check_int "10 points + header" 11
    (List.length (String.split_on_char '\n' (String.trim out)))

let test_trace () =
  let code, out = run "trace bv8 --rounds 2" in
  check_int "exit 0" 0 code;
  check_bool "valid" true (contains out "trace: VALID");
  check_bool "rendered" true (contains out "round 0:")

let test_export_formats () =
  let code, out = run "export bv8 -f json" in
  check_int "json ok" 0 code;
  check_bool "json has result" true (contains out "\"total_cycles\"");
  let code, out = run "export bv8 -f dot" in
  check_int "dot ok" 0 code;
  check_bool "dot graph" true (contains out "graph coupling");
  let code, out = run "export bv8 -f csv" in
  check_int "csv ok" 0 code;
  check_bool "csv header" true (contains out "p,cycles")

let test_resources () =
  let code, out = run "resources 5000 --pl 1e-22" in
  check_int "exit 0" 0 code;
  check_bool "physical count" true (contains out "total physical qubits")

let with_qasm_file contents f =
  let tmp = Filename.temp_file "autobraid_lint" ".qasm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc contents;
      close_out oc;
      f tmp)

let test_lint_clean () =
  with_qasm_file
    "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n"
    (fun tmp ->
      let code, out = run (Printf.sprintf "lint %s" (Filename.quote tmp)) in
      check_int "exit 0" 0 code;
      check_bool "no diagnostics" true (String.trim out = ""))

let test_lint_corrupted () =
  with_qasm_file "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[5];\n" (fun tmp ->
      let code, out = run (Printf.sprintf "lint %s" (Filename.quote tmp)) in
      check_int "exit 1" 1 code;
      check_bool "rule code" true (contains out "QL002");
      check_bool "file:line:col" true (contains out (tmp ^ ":3:1:"));
      check_bool "caret" true (contains out "^");
      check_bool "summary" true (contains out "1 error(s)"))

let test_lint_deny_warning () =
  (* an unused qubit is only a warning: exit 0 normally, 1 under --deny *)
  with_qasm_file
    "OPENQASM 2.0;\nqreg q[4];\ncx q[0],q[1];\nh q[2];\n" (fun tmp ->
      let code, out = run (Printf.sprintf "lint %s" (Filename.quote tmp)) in
      check_int "warnings pass" 0 code;
      check_bool "QL021 reported" true (contains out "QL021");
      let code, _ =
        run (Printf.sprintf "lint %s --deny warning" (Filename.quote tmp))
      in
      check_int "denied warnings fail" 1 code)

let test_lint_jsonl () =
  with_qasm_file "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[5];\n" (fun tmp ->
      let code, out =
        run (Printf.sprintf "lint %s -f jsonl" (Filename.quote tmp))
      in
      check_int "exit 1" 1 code;
      check_bool "json object" true (contains out "{\"code\":\"QL002\"");
      check_bool "position fields" true (contains out "\"line\":3,\"col\":1"))

let test_lint_benchmark () =
  let code, _ = run "lint qft5" in
  check_int "clean benchmark" 0 code;
  let code, out = run "lint qft5 -p 1.5" in
  check_int "bad threshold" 1 code;
  check_bool "QL201" true (contains out "QL201")

let test_malformed_input_handling () =
  (* malformed files must produce file:line:col diagnostics on every
     subcommand, not an uncaught exception *)
  with_qasm_file "OPENQASM 2.0;\nqreg q[1]\nh q[0];\n" (fun tmp ->
      List.iter
        (fun sub ->
          let code, out =
            run (Printf.sprintf "%s %s" sub (Filename.quote tmp))
          in
          check_int (sub ^ " exits 1") 1 code;
          (* the parser reports the unexpected token, i.e. the `h` on line 3 *)
          check_bool (sub ^ " locates error") true (contains out (tmp ^ ":3:1:"));
          check_bool
            (sub ^ " no raw exception") false
            (contains out "exception"))
        [ "compile"; "info"; "lint" ]);
  with_qasm_file "OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n" (fun tmp ->
      let code, out = run (Printf.sprintf "compile %s" (Filename.quote tmp)) in
      check_int "unsupported gate exits 1" 1 code;
      check_bool "positioned" true (contains out (tmp ^ ":3:1:")));
  (* a missing path falls through to the benchmark registry *)
  let code, out = run "compile /nonexistent/x.qasm" in
  check_int "missing file exits 2" 2 code;
  check_bool "unknown circuit text" true (contains out "unknown circuit")

let test_schedule_braid_byte_identical () =
  (* `schedule --backend braid` is the compile path behind the backend
     abstraction: output must match `compile` byte for byte (modulo the
     measured compile-time row, which is wall-clock noise). *)
  List.iter
    (fun spec ->
      let c1, out1 = run (Printf.sprintf "compile %s" spec) in
      let c2, out2 = run (Printf.sprintf "schedule %s --backend braid" spec) in
      check_int "compile exit 0" 0 c1;
      check_int "schedule exit 0" 0 c2;
      let strip s =
        String.split_on_char '\n' s
        |> List.filter (fun l -> not (contains l "compile time"))
        |> String.concat "\n"
      in
      Alcotest.(check string)
        (Printf.sprintf "identical output on %s" spec)
        (strip out1) (strip out2))
    [ "qft9"; "bv12"; "qaoa12" ]

let test_schedule_surgery () =
  let code, out = run "schedule qft9 --backend surgery" in
  check_int "exit 0" 0 code;
  check_bool "result table" true (contains out "total cycles");
  check_bool "surgery stats" true (contains out "pipelined_splits");
  check_bool "no swaps ever" true (contains out "swaps inserted");
  let fixture =
    List.find Sys.file_exists
      [ "../fixtures/longrange8.qasm"; "fixtures/longrange8.qasm" ]
  in
  let code, _ = run (Printf.sprintf "schedule %s --backend surgery" fixture) in
  check_int "qasm file exit 0" 0 code

let test_schedule_compare () =
  let code, out = run "schedule lr16 --backend compare" in
  check_int "exit 0" 0 code;
  check_bool "braid column" true (contains out "braid");
  check_bool "surgery column" true (contains out "surgery");
  check_bool "speedup line" true (contains out "speedup")

let test_export_backend () =
  let code, out = run "export bv12 -f json --backend surgery" in
  check_int "exit 0" 0 code;
  check_bool "backend field" true (contains out "\"backend\": \"surgery\"");
  check_bool "backend stats" true (contains out "merge_rounds");
  check_bool "telemetry" true (contains out "\"counters\"");
  let code, out = run "export bv12 -f json --backend braid" in
  check_int "braid exit 0" 0 code;
  check_bool "braid field" true (contains out "\"backend\": \"braid\"")

(* ------------------------------------------------------------------ *)
(* batch                                                                *)

let with_manifest contents f =
  let tmp = Filename.temp_file "autobraid_manifest" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc contents;
      close_out oc;
      f tmp)

let batch_manifest =
  {|[
  {"id": "a", "circuit": "qft9"},
  {"id": "b", "circuit": "bv12", "backend": "surgery"},
  {"id": "c", "circuit": "/nonexistent/missing.qasm"},
  {"id": "d", "circuit": "bv12", "scheduler": "baseline"}
]|}

let test_batch_jobs_byte_identical () =
  with_manifest batch_manifest (fun manifest ->
      let run_jobs n =
        let out = Filename.temp_file "autobraid_batch" ".jsonl" in
        let code, _ =
          run
            (Printf.sprintf "batch %s --jobs %d -o %s" (Filename.quote manifest)
               n (Filename.quote out))
        in
        let text = read_file out in
        Sys.remove out;
        (code, text)
      in
      let c1, out1 = run_jobs 1 in
      let c4, out4 = run_jobs 4 in
      (* the manifest contains one failing job, so both exit 1 *)
      check_int "jobs 1 exit" 1 c1;
      check_int "jobs 4 exit" 1 c4;
      Alcotest.(check string) "jobs 1 = jobs 4" out1 out4;
      check_int "four records" 4
        (List.length (String.split_on_char '\n' (String.trim out1)));
      check_bool "error record inline" true
        (contains out1 "\"status\":\"error\"");
      check_bool "error kind" true
        (contains out1 "\"kind\":\"circuit-not-found\"");
      check_bool "ok records present" true (contains out1 "\"status\":\"ok\"");
      check_bool "ids echoed" true (contains out1 "\"id\":\"a\""))

let test_batch_cache_warm_identical () =
  with_manifest {|[{"circuit": "qft9"}, {"circuit": "qft9", "seed": 12}]|}
    (fun manifest ->
      let dir = Filename.temp_file "autobraid_cachedir" "" in
      Sys.remove dir;
      Fun.protect
        ~finally:(fun () ->
          if Sys.file_exists dir then begin
            Array.iter
              (fun f -> Sys.remove (Filename.concat dir f))
              (Sys.readdir dir);
            Unix.rmdir dir
          end)
        (fun () ->
          let pass () =
            let out = Filename.temp_file "autobraid_batch" ".jsonl" in
            let code, log =
              run
                (Printf.sprintf "batch %s --jobs 2 --cache-dir %s -o %s"
                   (Filename.quote manifest) (Filename.quote dir)
                   (Filename.quote out))
            in
            let text = read_file out in
            Sys.remove out;
            (code, log, text)
          in
          let c1, _, cold = pass () in
          let c2, log2, warm = pass () in
          check_int "cold exit 0" 0 c1;
          check_int "warm exit 0" 0 c2;
          Alcotest.(check string) "cold = warm" cold warm;
          check_bool "placements persisted" true
            (Array.exists
               (fun f -> Filename.check_suffix f ".placement")
               (Sys.readdir dir));
          check_bool "warm pass reports hits" true
            (contains log2 "placement cache 2"
            || contains log2 "2+0 hits" || contains log2 "0+2 hits")))

let test_batch_bad_manifest () =
  let code, out = run "batch /nonexistent/manifest.json" in
  check_int "missing manifest exit 2" 2 code;
  check_bool "message" true (contains out "manifest");
  with_manifest {|{"version": 1}|} (fun manifest ->
      let code, _ = run (Printf.sprintf "batch %s" (Filename.quote manifest)) in
      check_int "malformed manifest exit 2" 2 code);
  with_manifest {|[{"circuit": "qft9", "frobnicate": 1}]|} (fun manifest ->
      let code, out =
        run (Printf.sprintf "batch %s" (Filename.quote manifest))
      in
      check_int "unknown key exit 2" 2 code;
      check_bool "names the key" true (contains out "frobnicate"))

let test_schedule_unknown_backend () =
  let code, out = run "schedule qft9 --backend warp" in
  check_bool "rejected" true (code <> 0);
  (* the registry drives the error message: known names are listed *)
  check_bool "lists braid" true (contains out "braid");
  check_bool "lists surgery" true (contains out "surgery")

let test_schedule_missing_file_jsonl () =
  let code, out = run "schedule /nonexistent/x.qasm --backend surgery" in
  check_int "exit 2" 2 code;
  check_bool "structured record" true (contains out "\"status\":\"error\"");
  check_bool "kind" true (contains out "\"kind\":\"circuit-not-found\"")

let test_error_handling () =
  let code, out = run "compile definitely_not_a_circuit" in
  check_int "exit 2" 2 code;
  check_bool "message" true (contains out "unknown circuit");
  let code, _ = run "frobnicate" in
  check_bool "unknown subcommand fails" true (code <> 0);
  let code, _ = run "compile qft9 -p 1.5" in
  check_bool "invalid threshold fails" true (code <> 0)

let () =
  Alcotest.run "cli"
    [
      ( "cli",
        [
          Alcotest.test_case "list" `Quick test_list;
          Alcotest.test_case "compile builtin" `Quick test_compile_builtin;
          Alcotest.test_case "compile schedulers" `Quick test_compile_baseline_and_sp;
          Alcotest.test_case "compile -O" `Quick test_compile_optimize;
          Alcotest.test_case "info" `Quick test_info;
          Alcotest.test_case "emit round trip" `Quick test_emit_roundtrip;
          Alcotest.test_case "compile from file" `Quick test_compile_from_file;
          Alcotest.test_case "sweep" `Quick test_sweep;
          Alcotest.test_case "trace" `Quick test_trace;
          Alcotest.test_case "export formats" `Quick test_export_formats;
          Alcotest.test_case "schedule braid identical" `Quick
            test_schedule_braid_byte_identical;
          Alcotest.test_case "schedule surgery" `Quick test_schedule_surgery;
          Alcotest.test_case "schedule compare" `Quick test_schedule_compare;
          Alcotest.test_case "export backend" `Quick test_export_backend;
          Alcotest.test_case "resources" `Quick test_resources;
          Alcotest.test_case "errors" `Quick test_error_handling;
          Alcotest.test_case "unknown backend" `Quick test_schedule_unknown_backend;
          Alcotest.test_case "schedule missing file jsonl" `Quick
            test_schedule_missing_file_jsonl;
        ] );
      ( "batch",
        [
          Alcotest.test_case "jobs byte-identical" `Quick
            test_batch_jobs_byte_identical;
          Alcotest.test_case "warm cache identical" `Quick
            test_batch_cache_warm_identical;
          Alcotest.test_case "bad manifest" `Quick test_batch_bad_manifest;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean file" `Quick test_lint_clean;
          Alcotest.test_case "corrupted file" `Quick test_lint_corrupted;
          Alcotest.test_case "deny warning" `Quick test_lint_deny_warning;
          Alcotest.test_case "jsonl output" `Quick test_lint_jsonl;
          Alcotest.test_case "benchmark circuit" `Quick test_lint_benchmark;
          Alcotest.test_case "malformed input" `Quick test_malformed_input_handling;
        ] );
    ]
