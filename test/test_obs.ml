(* Observability layer: Perfetto export shape, drift gating policy, and
   the repeated-run profiler's report schema. *)

module J = Qec_report.Json
module Tel = Qec_telemetry.Telemetry
module Col = Qec_telemetry.Collector
module D = Qec_obs.Drift

let events j =
  match J.member "traceEvents" j with
  | Some (J.List l) -> l
  | _ -> Alcotest.fail "trace has no traceEvents list"

let str key o =
  match J.member key o with Some (J.String s) -> s | _ -> ""

let ph = str "ph"
let name = str "name"

(* ------------------------------------------------------------------ *)
(* Perfetto                                                            *)

let trace_collector () =
  let c = Col.create () in
  let t = ref 0.0 in
  let clock () =
    let v = !t in
    t := v +. 1.0;
    v
  in
  Tel.with_sink ~clock (Col.sink c) (fun () ->
      Tel.with_span "outer" (fun () ->
          Tel.with_span "inner" (fun () -> ());
          Tel.count ~by:3 "gates";
          Tel.sample "queue_s" 0.5));
  c

let test_perfetto_events () =
  let c = trace_collector () in
  let j = Qec_obs.Perfetto.to_json c in
  (match J.member "displayTimeUnit" j with
  | Some (J.String "ms") -> ()
  | _ -> Alcotest.fail "missing displayTimeUnit");
  let evs = events j in
  List.iter
    (fun e ->
      match J.member "pid" e with
      | Some (J.Int 1) -> ()
      | _ -> Alcotest.fail "event not on pid 1")
    evs;
  let xs = List.filter (fun e -> ph e = "X") evs in
  Alcotest.(check (list string))
    "span events" [ "inner"; "outer" ]
    (List.sort compare (List.map name xs));
  List.iter
    (fun e ->
      if J.member "ts" e = None || J.member "dur" e = None then
        Alcotest.fail "X event missing ts/dur")
    xs;
  let main_lane =
    List.exists
      (fun e ->
        ph e = "M"
        && name e = "thread_name"
        &&
        match J.member "args" e with
        | Some args -> str "name" args = "main"
        | None -> false)
      evs
  in
  Alcotest.(check bool) "main lane labelled" true main_lane;
  let counters = List.filter (fun e -> ph e = "C") evs in
  Alcotest.(check bool) "counter track for gates" true
    (List.exists (fun e -> name e = "gates") counters);
  Alcotest.(check bool) "histogram track for queue_s" true
    (List.exists (fun e -> name e = "queue_s") counters)

let test_perfetto_round_trips () =
  let c = trace_collector () in
  match J.of_string (Qec_obs.Perfetto.to_string c) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("trace JSON does not parse: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Drift                                                               *)

let test_classify () =
  let check_some key dir band =
    match D.classify key with
    | Some (d, b) ->
      Alcotest.(check bool) (key ^ " direction") true (d = dir);
      Alcotest.(check bool) (key ^ " band") true (b = band)
    | None -> Alcotest.fail (key ^ " should be gated")
  in
  check_some "total_cycles" D.Lower_better D.Cycle;
  check_some "swaps_inserted" D.Lower_better D.Cycle;
  check_some "speedup" D.Higher_better D.Cycle;
  check_some "cold_s" D.Lower_better D.Wall;
  check_some "checks_per_s" D.Higher_better D.Wall;
  check_some "speedup_memory" D.Higher_better D.Wall;
  check_some "invariants_checked" D.Higher_better D.Cycle;
  check_some "mutations_killed" D.Higher_better D.Cycle;
  check_some "certificates_per_s" D.Higher_better D.Wall;
  check_some "certify_s" D.Lower_better D.Wall;
  Alcotest.(check bool) "utilization ungated" true
    (D.classify "avg_utilization" = None);
  Alcotest.(check bool) "descriptors ungated" true (D.classify "name" = None)

(* A miniature BENCH-shaped tree exercising both bands and nesting. *)
let tree ~cycles ~speedup ~wall =
  J.Obj
    [
      ("section", J.String "mini");
      ( "circuits",
        J.List
          [
            J.Obj
              [
                ("name", J.String "c1");
                ("braid", J.Obj [ ("total_cycles", J.Int cycles) ]);
                ("speedup", J.Float speedup);
              ];
          ] );
      ("wall_s", J.Float wall);
    ]

let run_check ?(tolerance = 0.02) ?(wall_tolerance = 2.0) baseline current =
  D.check ~tolerance ~wall_tolerance ~baseline ~current

let base = tree ~cycles:100 ~speedup:2.0 ~wall:1.0

let test_drift_identical_passes () =
  let o = run_check base base in
  Alcotest.(check int) "gated metrics" 3 o.D.checked;
  Alcotest.(check bool) "passes" true (D.passed o);
  Alcotest.(check int) "no regressions" 0 (List.length o.D.regressions);
  Alcotest.(check int) "nothing missing" 0 (List.length o.D.missing)

let test_drift_cycle_regression_fails () =
  let o = run_check base (tree ~cycles:103 ~speedup:2.0 ~wall:1.0) in
  Alcotest.(check bool) "fails" false (D.passed o);
  match o.D.regressions with
  | [ f ] ->
    Alcotest.(check string) "path" "circuits[0].braid.total_cycles" f.D.path;
    Alcotest.(check bool) "cycle band" true (f.D.band = D.Cycle);
    Alcotest.(check (float 1e-9)) "ratio" 1.03 f.D.ratio
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l)

let test_drift_improvement_passes () =
  let o = run_check base (tree ~cycles:90 ~speedup:2.0 ~wall:1.0) in
  Alcotest.(check bool) "passes" true (D.passed o);
  Alcotest.(check int) "one improvement" 1 (List.length o.D.improvements)

let test_drift_higher_better () =
  (* speedup dropping below baseline * (1 - tol) is a regression even
     though the number got smaller. *)
  let o = run_check base (tree ~cycles:100 ~speedup:1.9 ~wall:1.0) in
  Alcotest.(check int) "speedup drop caught" 1 (List.length o.D.regressions)

let test_drift_wall_band_loose () =
  (* wall_tolerance 2.0 allows up to 3x the baseline wall time... *)
  let o = run_check base (tree ~cycles:100 ~speedup:2.0 ~wall:2.9) in
  Alcotest.(check bool) "2.9x tolerated" true (D.passed o);
  (* ...but not past it, and the finding lands in the Wall band. *)
  let o = run_check base (tree ~cycles:100 ~speedup:2.0 ~wall:3.5) in
  match o.D.regressions with
  | [ f ] -> Alcotest.(check bool) "wall band" true (f.D.band = D.Wall)
  | l -> Alcotest.failf "expected 1 wall regression, got %d" (List.length l)

let test_drift_missing_metric_fails () =
  let gutted =
    J.Obj [ ("section", J.String "mini"); ("wall_s", J.Float 1.0) ]
  in
  let o = run_check base gutted in
  Alcotest.(check bool) "fails" false (D.passed o);
  Alcotest.(check bool) "missing paths recorded" true (o.D.missing <> [])

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)

let test_profile_report () =
  let open Qec_obs.Profile in
  let spec = { Qec_engine.Spec.default with circuit = "qft9" } in
  let p, _trace = run ~jobs:1 ~repeat:2 [ spec ] in
  Alcotest.(check int) "runs" 2 p.runs;
  Alcotest.(check int) "jobs_ok" 1 p.jobs_ok;
  Alcotest.(check int) "jobs_failed" 0 p.jobs_failed;
  Alcotest.(check bool) "has phases" true (p.phases <> []);
  let names = List.map (fun r -> r.phase) p.phases in
  Alcotest.(check (list string)) "phases sorted" (List.sort compare names)
    names;
  let ordered s = s.min_s <= s.median_s && s.median_s <= s.p95_s in
  Alcotest.(check bool) "wall stats ordered" true (ordered p.wall);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.phase ^ " stats ordered")
        true
        (ordered r.total && ordered r.self))
    p.phases;
  let j = to_json p in
  (match J.member "schema" j with
  | Some (J.String "autobraid-profile/v1") -> ()
  | _ -> Alcotest.fail "bad schema tag");
  match J.member "phases" j with
  | Some (J.List l) ->
    Alcotest.(check int) "json phases" (List.length p.phases) (List.length l)
  | _ -> Alcotest.fail "report has no phases list"

let () =
  Alcotest.run "obs"
    [
      ( "perfetto",
        [
          Alcotest.test_case "events" `Quick test_perfetto_events;
          Alcotest.test_case "round-trips" `Quick test_perfetto_round_trips;
        ] );
      ( "drift",
        [
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "identical passes" `Quick
            test_drift_identical_passes;
          Alcotest.test_case "cycle regression fails" `Quick
            test_drift_cycle_regression_fails;
          Alcotest.test_case "improvement passes" `Quick
            test_drift_improvement_passes;
          Alcotest.test_case "higher-better direction" `Quick
            test_drift_higher_better;
          Alcotest.test_case "wall band loose" `Quick
            test_drift_wall_band_loose;
          Alcotest.test_case "missing metric fails" `Quick
            test_drift_missing_metric_fails;
        ] );
      ( "profile",
        [ Alcotest.test_case "report schema" `Quick test_profile_report ] );
    ]
