(* Qec_telemetry: counter/gauge/sample accumulation, span nesting and
   self-time accounting (under an injected fake clock), JSONL golden
   output, and the guarantee that instrumentation never changes scheduler
   results. *)

module Tel = Qec_telemetry.Telemetry
module Collector = Qec_telemetry.Collector
module Jsonl = Qec_telemetry.Jsonl

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* A manual clock: tests advance [now] explicitly, so span timings are
   exact and JSONL output is byte-stable. *)
let manual_clock () =
  let now = ref 0. in
  ((fun () -> !now), fun t -> now := t)

let with_collector ?clock f =
  let c = Collector.create () in
  Tel.with_sink ?clock (Collector.sink c) f;
  c

let test_disabled_noops () =
  Alcotest.(check bool) "disabled" false (Tel.enabled ());
  (* All probes must be silent no-ops without a sink. *)
  Tel.count "x";
  Tel.gauge "x" 1.;
  Tel.sample "x" 1.;
  Tel.span_open "x";
  Tel.span_close ();
  check_int "with_span passthrough" 7 (Tel.with_span "x" (fun () -> 7));
  Tel.flush ();
  Tel.uninstall ()

let test_counters () =
  let c =
    with_collector (fun () ->
        Alcotest.(check bool) "enabled" true (Tel.enabled ());
        Tel.count "a";
        Tel.count ~by:4 "a";
        Tel.count "b";
        Tel.count ~by:0 "zero")
  in
  check_int "a" 5 (Collector.counter c "a");
  check_int "b" 1 (Collector.counter c "b");
  check_int "zero" 0 (Collector.counter c "zero");
  check_int "absent" 0 (Collector.counter c "never")

let test_gauges_and_samples () =
  let c =
    with_collector (fun () ->
        Tel.gauge "g" 1.5;
        Tel.gauge "g" 2.5;
        List.iter (Tel.sample "s") [ 1.; 2.; 3.; 4. ])
  in
  check_float "gauge last-write-wins" 2.5
    (Option.get (Collector.gauge_opt c "g"));
  let h = Option.get (Collector.histogram_opt c "s") in
  check_int "count" 4 h.Tel.count;
  check_float "sum" 10. h.Tel.sum;
  check_float "mean" 2.5 h.Tel.mean;
  check_float "min" 1. h.Tel.min_v;
  check_float "max" 4. h.Tel.max_v;
  check_float "p50" 2. h.Tel.p50;
  check_float "p95" 4. h.Tel.p95

let test_span_nesting () =
  let clock, set = manual_clock () in
  let c =
    with_collector ~clock (fun () ->
        Tel.span_open "outer";
        set 1.;
        Tel.span_open "inner";
        set 3.;
        Tel.span_close ();
        (* 2s of dead time attributed to outer's self, not inner. *)
        set 6.;
        Tel.span_close ())
  in
  match Collector.spans c with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner name" "inner" inner.Tel.span_name;
    check_int "inner depth" 1 inner.Tel.depth;
    check_float "inner start" 1. inner.Tel.start_s;
    check_float "inner total" 2. inner.Tel.total_s;
    check_float "inner self" 2. inner.Tel.self_s;
    Alcotest.(check string) "outer name" "outer" outer.Tel.span_name;
    check_int "outer depth" 0 outer.Tel.depth;
    check_float "outer total" 6. outer.Tel.total_s;
    check_float "outer self" 4. outer.Tel.self_s
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_phase_aggregation () =
  let clock, set = manual_clock () in
  let c =
    with_collector ~clock (fun () ->
        Tel.span_open "route";
        set 2.;
        Tel.span_close ();
        Tel.span_open "route";
        set 5.;
        Tel.span_close ())
  in
  match Collector.phases c with
  | [ p ] ->
    Alcotest.(check string) "phase" "route" p.Collector.phase_name;
    check_int "calls" 2 p.Collector.calls;
    check_float "total" 5. p.Collector.total_s;
    check_float "self" 5. p.Collector.self_s
  | ps -> Alcotest.failf "expected 1 phase, got %d" (List.length ps)

let test_unbalanced_close_ignored () =
  let c =
    with_collector (fun () ->
        Tel.span_close ();
        (* no open span: ignored *)
        Tel.count "after")
  in
  check_int "still records" 1 (Collector.counter c "after");
  check_int "no spans" 0 (List.length (Collector.spans c))

let test_with_span_exception () =
  let clock, set = manual_clock () in
  let c = Collector.create () in
  (try
     Tel.with_sink ~clock (Collector.sink c) (fun () ->
         Tel.with_span "raises" (fun () ->
             set 4.;
             failwith "boom"))
   with Failure _ -> ());
  match Collector.spans c with
  | [ s ] ->
    Alcotest.(check string) "span closed on raise" "raises" s.Tel.span_name;
    check_float "total" 4. s.Tel.total_s
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_jsonl_golden () =
  let clock, set = manual_clock () in
  let buf = Buffer.create 256 in
  Tel.with_sink ~clock
    (Jsonl.sink (Buffer.add_string buf))
    (fun () ->
      Tel.count "alpha";
      Tel.count ~by:2 "alpha";
      Tel.gauge "beta" 0.5;
      Tel.sample "gamma" 1.;
      Tel.sample "gamma" 3.;
      Tel.span_open "outer";
      set 1.;
      Tel.span_open "inner";
      set 3.;
      Tel.span_close ();
      set 6.;
      Tel.span_close ());
  let expected =
    String.concat "\n"
      [
        {|{"type":"span","name":"inner","depth":1,"start_s":1,"total_s":2,"self_s":2}|};
        {|{"type":"span","name":"outer","depth":0,"start_s":0,"total_s":6,"self_s":4}|};
        {|{"type":"counter","name":"alpha","value":3}|};
        {|{"type":"gauge","name":"beta","value":0.5}|};
        {|{"type":"histogram","name":"gamma","count":2,"sum":4,"min":1,"max":3,"mean":2,"p50":1,"p95":3}|};
        "";
      ]
  in
  Alcotest.(check string) "golden JSONL" expected (Buffer.contents buf)

let test_jsonl_escaping () =
  let line =
    Jsonl.line (Tel.Counter { name = "we\"ird\\name\n"; value = 1 })
  in
  Alcotest.(check string) "escaped"
    {|{"type":"counter","name":"we\"ird\\name\n","value":1}|} line

let test_tee_and_null () =
  let c1 = Collector.create () and c2 = Collector.create () in
  Tel.with_sink
    (Tel.tee [ Collector.sink c1; Tel.null; Collector.sink c2 ])
    (fun () -> Tel.count "x");
  check_int "first sink" 1 (Collector.counter c1 "x");
  check_int "second sink" 1 (Collector.counter c2 "x")

let test_nested_with_sink () =
  let outer = Collector.create () in
  let inner = Collector.create () in
  Tel.with_sink (Collector.sink outer) (fun () ->
      Tel.count "before";
      Tel.with_sink (Collector.sink inner) (fun () -> Tel.count "during");
      Tel.count "after");
  check_int "inner got during" 1 (Collector.counter inner "during");
  check_int "inner only during" 0 (Collector.counter inner "before");
  check_int "outer before" 1 (Collector.counter outer "before");
  check_int "outer after" 1 (Collector.counter outer "after")

(* Enabling telemetry must not perturb scheduling: same circuit, same
   seed, bit-identical result with and without a sink. *)
let test_scheduler_determinism () =
  let timing = Qec_surface.Timing.make ~d:Qec_surface.Timing.default_d () in
  let circuit = Qec_benchmarks.Qft.circuit 50 in
  let bare = Autobraid.Scheduler.run timing circuit in
  let c = Collector.create () in
  let instrumented =
    Tel.with_sink (Collector.sink c) (fun () ->
        Autobraid.Scheduler.run timing circuit)
  in
  check_int "total_cycles" bare.Autobraid.Scheduler.total_cycles
    instrumented.Autobraid.Scheduler.total_cycles;
  check_int "swaps_inserted" bare.Autobraid.Scheduler.swaps_inserted
    instrumented.Autobraid.Scheduler.swaps_inserted;
  check_int "rounds" bare.Autobraid.Scheduler.rounds
    instrumented.Autobraid.Scheduler.rounds;
  check_int "braid_rounds" bare.Autobraid.Scheduler.braid_rounds
    instrumented.Autobraid.Scheduler.braid_rounds;
  (* And the pipeline actually reported: one span per phase, counters. *)
  let phase_names =
    List.map (fun p -> p.Collector.phase_name) (Collector.phases c)
  in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "phase %s present" name)
        true
        (List.mem name phase_names))
    [ "scheduler.run"; "initial_layout"; "layout_optimization";
      "routing_rounds" ];
  check_int "braid rounds counter" bare.Autobraid.Scheduler.braid_rounds
    (Collector.counter c "scheduler.braid_rounds");
  Alcotest.(check bool)
    "router instrumented" true
    (Collector.counter c "router.expansions" > 0)

let test_export_json () =
  let clock, set = manual_clock () in
  let c =
    with_collector ~clock (fun () ->
        Tel.count "hits";
        Tel.sample "len" 2.;
        Tel.span_open "phase";
        set 1.;
        Tel.span_close ())
  in
  let json = Qec_report.Json.to_string (Qec_report.Export.telemetry_to_json c) in
  let has needle =
    let nh = String.length json and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub json i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" needle) true
        (has needle))
    [ {|"counters"|}; {|"hits":1|}; {|"histograms"|}; {|"spans"|};
      {|"phases"|}; {|"phase"|} ]

let () =
  Alcotest.run "telemetry"
    [
      ( "frontend",
        [
          Alcotest.test_case "disabled no-ops" `Quick test_disabled_noops;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges and samples" `Quick
            test_gauges_and_samples;
          Alcotest.test_case "span nesting self/total" `Quick
            test_span_nesting;
          Alcotest.test_case "phase aggregation" `Quick test_phase_aggregation;
          Alcotest.test_case "unbalanced close" `Quick
            test_unbalanced_close_ignored;
          Alcotest.test_case "with_span on exception" `Quick
            test_with_span_exception;
          Alcotest.test_case "nested with_sink" `Quick test_nested_with_sink;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
          Alcotest.test_case "jsonl escaping" `Quick test_jsonl_escaping;
          Alcotest.test_case "tee and null" `Quick test_tee_and_null;
          Alcotest.test_case "export json" `Quick test_export_json;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "scheduler determinism (qft50)" `Quick
            test_scheduler_determinism;
        ] );
    ]
