(* Qec_telemetry: counter/gauge/sample accumulation, span nesting and
   self-time accounting (under an injected fake clock), JSONL golden
   output, and the guarantee that instrumentation never changes scheduler
   results. *)

module Tel = Qec_telemetry.Telemetry
module Collector = Qec_telemetry.Collector
module Jsonl = Qec_telemetry.Jsonl

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* A manual clock: tests advance [now] explicitly, so span timings are
   exact and JSONL output is byte-stable. *)
let manual_clock () =
  let now = ref 0. in
  ((fun () -> !now), fun t -> now := t)

let with_collector ?clock f =
  let c = Collector.create () in
  Tel.with_sink ?clock (Collector.sink c) f;
  c

let test_disabled_noops () =
  Alcotest.(check bool) "disabled" false (Tel.enabled ());
  (* All probes must be silent no-ops without a sink. *)
  Tel.count "x";
  Tel.gauge "x" 1.;
  Tel.sample "x" 1.;
  Tel.span_open "x";
  Tel.span_close ();
  check_int "with_span passthrough" 7 (Tel.with_span "x" (fun () -> 7));
  Tel.flush ();
  Tel.uninstall ()

let test_counters () =
  let c =
    with_collector (fun () ->
        Alcotest.(check bool) "enabled" true (Tel.enabled ());
        Tel.count "a";
        Tel.count ~by:4 "a";
        Tel.count "b";
        Tel.count ~by:0 "zero")
  in
  check_int "a" 5 (Collector.counter c "a");
  check_int "b" 1 (Collector.counter c "b");
  check_int "zero" 0 (Collector.counter c "zero");
  check_int "absent" 0 (Collector.counter c "never")

let test_gauges_and_samples () =
  let c =
    with_collector (fun () ->
        Tel.gauge "g" 1.5;
        Tel.gauge "g" 2.5;
        List.iter (Tel.sample "s") [ 1.; 2.; 3.; 4. ])
  in
  check_float "gauge last-write-wins" 2.5
    (Option.get (Collector.gauge_opt c "g"));
  let h = Option.get (Collector.histogram_opt c "s") in
  check_int "count" 4 h.Tel.count;
  check_float "sum" 10. h.Tel.sum;
  check_float "mean" 2.5 h.Tel.mean;
  check_float "min" 1. h.Tel.min_v;
  check_float "max" 4. h.Tel.max_v;
  check_float "p50" 2. h.Tel.p50;
  check_float "p95" 4. h.Tel.p95

let test_span_nesting () =
  let clock, set = manual_clock () in
  let c =
    with_collector ~clock (fun () ->
        Tel.span_open "outer";
        set 1.;
        Tel.span_open "inner";
        set 3.;
        Tel.span_close ();
        (* 2s of dead time attributed to outer's self, not inner. *)
        set 6.;
        Tel.span_close ())
  in
  match Collector.spans c with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner name" "inner" inner.Tel.span_name;
    check_int "inner depth" 1 inner.Tel.depth;
    check_float "inner start" 1. inner.Tel.start_s;
    check_float "inner total" 2. inner.Tel.total_s;
    check_float "inner self" 2. inner.Tel.self_s;
    Alcotest.(check string) "outer name" "outer" outer.Tel.span_name;
    check_int "outer depth" 0 outer.Tel.depth;
    check_float "outer total" 6. outer.Tel.total_s;
    check_float "outer self" 4. outer.Tel.self_s
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_phase_aggregation () =
  let clock, set = manual_clock () in
  let c =
    with_collector ~clock (fun () ->
        Tel.span_open "route";
        set 2.;
        Tel.span_close ();
        Tel.span_open "route";
        set 5.;
        Tel.span_close ())
  in
  match Collector.phases c with
  | [ p ] ->
    Alcotest.(check string) "phase" "route" p.Collector.phase_name;
    check_int "calls" 2 p.Collector.calls;
    check_float "total" 5. p.Collector.total_s;
    check_float "self" 5. p.Collector.self_s
  | ps -> Alcotest.failf "expected 1 phase, got %d" (List.length ps)

let test_unbalanced_close_ignored () =
  let c =
    with_collector (fun () ->
        Tel.span_close ();
        (* no open span: ignored *)
        Tel.count "after")
  in
  check_int "still records" 1 (Collector.counter c "after");
  check_int "no spans" 0 (List.length (Collector.spans c))

let test_with_span_exception () =
  let clock, set = manual_clock () in
  let c = Collector.create () in
  (try
     Tel.with_sink ~clock (Collector.sink c) (fun () ->
         Tel.with_span "raises" (fun () ->
             set 4.;
             failwith "boom"))
   with Failure _ -> ());
  match Collector.spans c with
  | [ s ] ->
    Alcotest.(check string) "span closed on raise" "raises" s.Tel.span_name;
    check_float "total" 4. s.Tel.total_s
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

(* [f] raises with a child span still open: the abandoned child must be
   closed first, then exactly the with_span frame — outer spans keep
   consistent self-time and the stack is not over-popped. *)
let test_with_span_abandoned_children () =
  let clock, set = manual_clock () in
  let c = Collector.create () in
  (try
     Tel.with_sink ~clock (Collector.sink c) (fun () ->
         Tel.with_span "outer" (fun () ->
             Tel.with_span "mid" (fun () ->
                 set 1.;
                 Tel.span_open "dangling";
                 set 3.;
                 failwith "boom")))
   with Failure _ -> ());
  match Collector.spans c with
  | [ dangling; mid; outer ] ->
    Alcotest.(check string) "dangling closed" "dangling" dangling.Tel.span_name;
    check_int "dangling depth" 2 dangling.Tel.depth;
    check_float "dangling total" 2. dangling.Tel.total_s;
    Alcotest.(check string) "mid closed" "mid" mid.Tel.span_name;
    check_float "mid total" 3. mid.Tel.total_s;
    check_float "mid self" 1. mid.Tel.self_s;
    Alcotest.(check string) "outer closed" "outer" outer.Tel.span_name;
    check_float "outer total" 3. outer.Tel.total_s;
    check_float "outer self" 0. outer.Tel.self_s
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

(* Nested and repeated spans: phase aggregation sums calls/total/self per
   name and orders by descending self-time. *)
let test_phase_self_time_math () =
  let clock, set = manual_clock () in
  let c =
    with_collector ~clock (fun () ->
        Tel.with_span "a" (fun () ->
            set 1.;
            Tel.with_span "b" (fun () -> set 3.);
            set 4.);
        Tel.with_span "b" (fun () -> set 6.))
  in
  match Collector.phases c with
  | [ b; a ] ->
    Alcotest.(check string) "b first (more self)" "b" b.Collector.phase_name;
    check_int "b calls" 2 b.Collector.calls;
    check_float "b total" 4. b.Collector.total_s;
    check_float "b self" 4. b.Collector.self_s;
    Alcotest.(check string) "a second" "a" a.Collector.phase_name;
    check_int "a calls" 1 a.Collector.calls;
    check_float "a total" 4. a.Collector.total_s;
    check_float "a self" 2. a.Collector.self_s
  | ps -> Alcotest.failf "expected 2 phases, got %d" (List.length ps)

(* ---------------- multi-domain merge ---------------- *)

(* Every spawned worker in run_workers reports under its own
   (domain, worker) lane; spans merge at join grouped by worker id, and
   counters sum across domains. *)
let test_worker_lanes_and_merge () =
  let c =
    with_collector ~clock:(fun () -> 0.) (fun () ->
        Qec_util.Parallel.run_workers ~jobs:3 (fun id ->
            Tel.with_span "work" (fun () -> Tel.count ~by:(id + 1) "units")))
  in
  check_int "counters sum across domains" 6 (Collector.counter c "units");
  let spans = Collector.spans c in
  check_int "one span per worker" 3 (List.length spans);
  let lanes = Collector.lanes c in
  check_int "three distinct lanes" 3 (List.length lanes);
  let workers = List.map snd lanes |> List.sort_uniq compare in
  Alcotest.(check (list int)) "worker ids" [ 0; 1; 2 ] workers;
  (* Root spans stream before the workers' buffers drain at flush, and
     worker buffers drain ordered by worker id. *)
  let span_workers = List.map (fun (s : Tel.span) -> s.Tel.worker) spans in
  Alcotest.(check (list int)) "merge order by worker id" [ 0; 1; 2 ]
    span_workers

(* Cross-domain gauge rule: the root's value wins, else the lowest worker
   id — deterministic regardless of which domain merged last. *)
let test_gauge_merge_deterministic () =
  let c =
    with_collector ~clock:(fun () -> 0.) (fun () ->
        Qec_util.Parallel.run_workers ~jobs:4 (fun id ->
            if id > 0 then Tel.gauge "wg" (float_of_int id);
            if id = 0 then Tel.gauge "rg" 99.))
  in
  check_float "lowest worker wins" 1. (Option.get (Collector.gauge_opt c "wg"));
  check_float "root gauge untouched" 99.
    (Option.get (Collector.gauge_opt c "rg"));
  (* Same gauge set by root AND workers: root wins. *)
  let c2 =
    with_collector ~clock:(fun () -> 0.) (fun () ->
        Qec_util.Parallel.run_workers ~jobs:3 (fun id ->
            Tel.gauge "g" (float_of_int (10 + id))))
  in
  check_float "root beats workers" 10. (Option.get (Collector.gauge_opt c2 "g"))

(* Aggregate telemetry of a map_jobs run is identical for any worker
   count >= 2 under a constant clock (jobs=1 short-circuits to List.map
   with no pool, hence no pool telemetry). *)
let test_merge_determinism_across_jobs () =
  let xs = List.init 12 Fun.id in
  let run jobs =
    let c = Collector.create () in
    Tel.with_sink
      ~clock:(fun () -> 0.)
      (Collector.sink c)
      (fun () ->
        let ys = Qec_util.Parallel.map_jobs ~jobs (fun x -> x * x) xs in
        Alcotest.(check (list int))
          "results in order"
          (List.map (fun x -> x * x) xs)
          ys);
    c
  in
  let view c =
    ( ( Collector.counters c,
        List.map
          (fun p ->
            (p.Collector.phase_name, p.Collector.calls, p.Collector.total_s))
          (Collector.phases c) ),
      ( List.length (Collector.spans c),
        (Option.get (Collector.histogram_opt c "parallel.job_s")).Tel.count ) )
  in
  let v2 = view (run 2) and v4 = view (run 4) in
  let pp =
    Alcotest.(
      pair
        (pair (list (pair string int))
           (list (triple string int (float 1e-9))))
        (pair int int))
  in
  Alcotest.check pp "jobs=2 and jobs=4 aggregates agree" v2 v4;
  let (counters, _), (span_count, job_samples) = v2 in
  check_int "every item sampled" 12 job_samples;
  check_int "every item spanned" 12 span_count;
  check_int "parallel.jobs counter" 12
    (Option.value ~default:0 (List.assoc_opt "parallel.jobs" counters))

let test_jsonl_golden () =
  let clock, set = manual_clock () in
  let buf = Buffer.create 256 in
  Tel.with_sink ~clock
    (Jsonl.sink (Buffer.add_string buf))
    (fun () ->
      Tel.count "alpha";
      Tel.count ~by:2 "alpha";
      Tel.gauge "beta" 0.5;
      Tel.sample "gamma" 1.;
      Tel.sample "gamma" 3.;
      Tel.span_open "outer";
      set 1.;
      Tel.span_open "inner";
      set 3.;
      Tel.span_close ();
      set 6.;
      Tel.span_close ());
  (* The test runs on the process's main domain (id 0), worker 0; floats
     use the shared shortest-round-trip printer ("2.0", not "2"). *)
  let expected =
    String.concat "\n"
      [
        {|{"type":"span","name":"inner","depth":1,"domain":0,"worker":0,"start_s":1.0,"total_s":2.0,"self_s":2.0}|};
        {|{"type":"span","name":"outer","depth":0,"domain":0,"worker":0,"start_s":0.0,"total_s":6.0,"self_s":4.0}|};
        {|{"type":"counter","name":"alpha","value":3}|};
        {|{"type":"gauge","name":"beta","value":0.5}|};
        {|{"type":"histogram","name":"gamma","count":2,"sum":4.0,"min":1.0,"max":3.0,"mean":2.0,"p50":1.0,"p95":3.0}|};
        "";
      ]
  in
  Alcotest.(check string) "golden JSONL" expected (Buffer.contents buf)

let test_jsonl_escaping () =
  let line =
    Jsonl.line (Tel.Counter { name = "we\"ird\\name\n"; value = 1 })
  in
  Alcotest.(check string) "escaped"
    {|{"type":"counter","name":"we\"ird\\name\n","value":1}|} line

let test_tee_and_null () =
  let c1 = Collector.create () and c2 = Collector.create () in
  Tel.with_sink
    (Tel.tee [ Collector.sink c1; Tel.null; Collector.sink c2 ])
    (fun () -> Tel.count "x");
  check_int "first sink" 1 (Collector.counter c1 "x");
  check_int "second sink" 1 (Collector.counter c2 "x")

let test_nested_with_sink () =
  let outer = Collector.create () in
  let inner = Collector.create () in
  Tel.with_sink (Collector.sink outer) (fun () ->
      Tel.count "before";
      Tel.with_sink (Collector.sink inner) (fun () -> Tel.count "during");
      Tel.count "after");
  check_int "inner got during" 1 (Collector.counter inner "during");
  check_int "inner only during" 0 (Collector.counter inner "before");
  check_int "outer before" 1 (Collector.counter outer "before");
  check_int "outer after" 1 (Collector.counter outer "after")

(* Enabling telemetry must not perturb scheduling: same circuit, same
   seed, bit-identical result with and without a sink. *)
let test_scheduler_determinism () =
  let timing = Qec_surface.Timing.make ~d:Qec_surface.Timing.default_d () in
  let circuit = Qec_benchmarks.Qft.circuit 50 in
  let bare = Autobraid.Scheduler.run timing circuit in
  let c = Collector.create () in
  let instrumented =
    Tel.with_sink (Collector.sink c) (fun () ->
        Autobraid.Scheduler.run timing circuit)
  in
  check_int "total_cycles" bare.Autobraid.Scheduler.total_cycles
    instrumented.Autobraid.Scheduler.total_cycles;
  check_int "swaps_inserted" bare.Autobraid.Scheduler.swaps_inserted
    instrumented.Autobraid.Scheduler.swaps_inserted;
  check_int "rounds" bare.Autobraid.Scheduler.rounds
    instrumented.Autobraid.Scheduler.rounds;
  check_int "braid_rounds" bare.Autobraid.Scheduler.braid_rounds
    instrumented.Autobraid.Scheduler.braid_rounds;
  (* And the pipeline actually reported: one span per phase, counters. *)
  let phase_names =
    List.map (fun p -> p.Collector.phase_name) (Collector.phases c)
  in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "phase %s present" name)
        true
        (List.mem name phase_names))
    [ "scheduler.run"; "initial_layout"; "layout_optimization";
      "routing_rounds" ];
  check_int "braid rounds counter" bare.Autobraid.Scheduler.braid_rounds
    (Collector.counter c "scheduler.braid_rounds");
  Alcotest.(check bool)
    "router instrumented" true
    (Collector.counter c "router.expansions" > 0)

let test_export_json () =
  let clock, set = manual_clock () in
  let c =
    with_collector ~clock (fun () ->
        Tel.count "hits";
        Tel.sample "len" 2.;
        Tel.span_open "phase";
        set 1.;
        Tel.span_close ())
  in
  let json = Qec_report.Json.to_string (Qec_report.Export.telemetry_to_json c) in
  let has needle =
    let nh = String.length json and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub json i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" needle) true
        (has needle))
    [ {|"counters"|}; {|"hits":1|}; {|"histograms"|}; {|"spans"|};
      {|"phases"|}; {|"phase"|} ]

let () =
  Alcotest.run "telemetry"
    [
      ( "frontend",
        [
          Alcotest.test_case "disabled no-ops" `Quick test_disabled_noops;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges and samples" `Quick
            test_gauges_and_samples;
          Alcotest.test_case "span nesting self/total" `Quick
            test_span_nesting;
          Alcotest.test_case "phase aggregation" `Quick test_phase_aggregation;
          Alcotest.test_case "unbalanced close" `Quick
            test_unbalanced_close_ignored;
          Alcotest.test_case "with_span on exception" `Quick
            test_with_span_exception;
          Alcotest.test_case "with_span abandoned children" `Quick
            test_with_span_abandoned_children;
          Alcotest.test_case "phase self-time math" `Quick
            test_phase_self_time_math;
          Alcotest.test_case "nested with_sink" `Quick test_nested_with_sink;
        ] );
      ( "domains",
        [
          Alcotest.test_case "worker lanes and merge" `Quick
            test_worker_lanes_and_merge;
          Alcotest.test_case "gauge merge deterministic" `Quick
            test_gauge_merge_deterministic;
          Alcotest.test_case "merge determinism across jobs" `Quick
            test_merge_determinism_across_jobs;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
          Alcotest.test_case "jsonl escaping" `Quick test_jsonl_escaping;
          Alcotest.test_case "tee and null" `Quick test_tee_and_null;
          Alcotest.test_case "export json" `Quick test_export_json;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "scheduler determinism (qft50)" `Quick
            test_scheduler_determinism;
        ] );
    ]
