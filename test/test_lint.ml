(* Mutation self-tests for Qec_lint: for every rule, one corrupted input
   that fires exactly that code and one clean input that stays silent;
   plus JSONL golden output, exit-code policy, and a lint-is-read-only
   check against the scheduler. *)

module D = Qec_lint.Diagnostic
module Lint = Qec_lint.Lint
module Circuit_lint = Qec_lint.Circuit_lint
module Schedule_lint = Qec_lint.Schedule_lint
module C = Qec_circuit.Circuit
module G = Qec_circuit.Gate
module S = Autobraid.Scheduler
module B = Qec_benchmarks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_codes = Alcotest.(check (list string))

let codes diags = List.map (fun (d : D.t) -> d.code) diags

let source_codes src = codes (Lint.lint_source ~file:"test.qasm" src)

(* [fires code src] asserts the source-level pipeline reports exactly
   [code] — the mutation fires its rule and nothing else. *)
let fires code src = check_codes ("fires " ^ code) [ code ] (source_codes src)

let silent src = check_codes "silent" [] (source_codes src)

(* ---------------- AST rules: mutation fires exactly one code ----------- *)

let clean_program =
  "OPENQASM 2.0;\n\
   qreg q[2];\n\
   creg c[2];\n\
   h q[0];\n\
   cx q[0], q[1];\n\
   measure q -> c;\n"

let test_clean_silent () = silent clean_program

let test_ql000 () =
  fires "QL000" "OPENQASM 2.0;\nqreg q[1]\nh q[0];\n"

let test_ql001 () =
  fires "QL001" "OPENQASM 2.0;\nqreg q[2];\nh r[0];\ncx q[0], q[1];\n"

let test_ql002 () =
  fires "QL002" "OPENQASM 2.0;\nqreg q[2];\nh q[5];\ncx q[0], q[1];\n"

let test_ql003 () =
  fires "QL003" "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[0];\ncx q[0], q[1];\n"

let test_ql004 () =
  fires "QL004" "OPENQASM 2.0;\nqreg q[2];\nfoo q[0];\ncx q[0], q[1];\n"

let test_ql005 () =
  fires "QL005" "OPENQASM 2.0;\nqreg q[2];\nrx q[0];\ncx q[0], q[1];\n"

let test_ql006 () =
  fires "QL006" "OPENQASM 2.0;\nqreg q[2];\ncx q[0];\ncx q[0], q[1];\n"

let test_ql007 () =
  fires "QL007" "OPENQASM 2.0;\nqreg q[2];\nqreg r[3];\ncx q, r;\n"

let test_ql008 () =
  fires "QL008" "OPENQASM 2.0;\nqreg q[1];\nh q[0];\nqreg r[1];\nh r[0];\n"

let test_ql009 () =
  fires "QL009" "OPENQASM 2.0;\nqreg q[2];\nqreg q[2];\ncx q[0], q[1];\n"

let test_ql010 () =
  fires "QL010"
    "OPENQASM 2.0;\nqreg q[1];\ngate g a { cx a, b; }\nh q[0];\n"

let test_ql011 () = fires "QL011" "OPENQASM 2.0;\n"

let test_ql012 () =
  fires "QL012" "OPENQASM 3.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n"

let test_ql013 () =
  (* An unresolvable parameter expression passes every AST pre-flight but
     fails elaboration — the catch-all must carry the statement's span. *)
  let src = "OPENQASM 2.0;\nqreg q[2];\nrx(foo) q[0];\ncx q[0], q[1];\n" in
  let diags = Lint.lint_source ~file:"test.qasm" src in
  check_codes "fires QL013" [ "QL013" ] (codes diags);
  match diags with
  | [ { D.pos = Some { line; col }; severity; _ } ] ->
    check_int "line" 3 line;
    check_int "col" 1 col;
    check_bool "error severity" true (severity = D.Error)
  | _ -> Alcotest.fail "expected one positioned diagnostic"

let test_ql020 () =
  fires "QL020"
    "OPENQASM 2.0;\n\
     qreg q[2];\n\
     creg c[2];\n\
     cx q[0], q[1];\n\
     measure q[0] -> c[0];\n\
     h q[0];\n\
     measure q[0] -> c[0];\n\
     measure q[1] -> c[1];\n"

let test_ql020_reset_clears () =
  silent
    "OPENQASM 2.0;\n\
     qreg q[2];\n\
     creg c[2];\n\
     cx q[0], q[1];\n\
     measure q[0] -> c[0];\n\
     reset q[0];\n\
     h q[0];\n\
     measure q[0] -> c[0];\n\
     measure q[1] -> c[1];\n"

let test_ql021 () =
  (* q[3] is dead weight, but dropping it would not shrink the lattice
     (ceil(sqrt 3) = ceil(sqrt 4) = 2), so QL104 must stay quiet. *)
  fires "QL021"
    "OPENQASM 2.0;\n\
     qreg q[4];\n\
     creg c[4];\n\
     cx q[0], q[1];\n\
     h q[2];\n\
     measure q[0] -> c[0];\n\
     measure q[1] -> c[1];\n\
     measure q[2] -> c[2];\n"

let test_ql022 () =
  fires "QL022"
    "OPENQASM 2.0;\nqreg q[2];\ncreg c[1];\nh q[0];\ncx q[0], q[1];\n"

let test_ql023_builtin () =
  fires "QL023"
    "OPENQASM 2.0;\n\
     qreg q[2];\n\
     gate x a { h a; }\n\
     h q[0];\n\
     cx q[0], q[1];\n"

let test_ql023_earlier () =
  fires "QL023"
    "OPENQASM 2.0;\n\
     qreg q[2];\n\
     gate g a { x a; }\n\
     gate g a { h a; }\n\
     g q[0];\n\
     cx q[0], q[1];\n"

let test_ql024 () =
  fires "QL024"
    "OPENQASM 2.0;\n\
     qreg q[2];\n\
     creg c[3];\n\
     h q[0];\n\
     cx q[0], q[1];\n\
     measure q -> c;\n"

(* Positions on fired rules point at the offending statement. *)
let test_positions () =
  match Lint.lint_source ~file:"test.qasm"
          "OPENQASM 2.0;\nqreg q[2];\n  cx q[0], q[0];\ncx q[0], q[1];\n"
  with
  | [ { D.code = "QL003"; pos = Some { line; col }; _ } ] ->
    check_int "line" 3 line;
    check_int "col" 3 col
  | _ -> Alcotest.fail "expected exactly QL003 with a position"

(* User-declared gates participate in signature checks. *)
let test_user_gate_signature () =
  fires "QL006"
    "OPENQASM 2.0;\n\
     qreg q[2];\n\
     gate g a, b { cx a, b; }\n\
     g q[0];\n\
     cx q[0], q[1];\n"

(* ---------------- circuit rules (QL1xx) ---------------- *)

let circuit_codes gates ~n =
  codes (Circuit_lint.check ~file:"circ" (C.create ~num_qubits:n gates))

let test_ql101 () =
  check_codes "fires QL101" [ "QL101" ]
    (circuit_codes ~n:2 [ G.Cx (0, 1); G.Measure 0; G.Measure 1; G.H 0 ]);
  check_codes "silent" []
    (circuit_codes ~n:2 [ G.H 0; G.Cx (0, 1); G.Measure 0; G.Measure 1 ]);
  (* measurement-free circuits are states, not experiments: no deadness *)
  check_codes "no measurements" []
    (circuit_codes ~n:2 [ G.H 0; G.Cx (0, 1) ])

let test_ql102 () =
  check_codes "fires QL102" [ "QL102" ]
    (circuit_codes ~n:2 [ G.Cx (0, 1); G.Cx (0, 1) ]);
  check_codes "intervening gate" []
    (circuit_codes ~n:2 [ G.Cx (0, 1); G.H 0; G.Cx (0, 1) ]);
  check_codes "different pair" []
    (circuit_codes ~n:3 [ G.Cx (0, 1); G.Cx (1, 2) ])

let test_ql102_chain () =
  (* four identical cx in a row pair up as (0,1) and (2,3), not (1,2) *)
  check_codes "two pairs" [ "QL102"; "QL102" ]
    (circuit_codes ~n:2 [ G.Cx (0, 1); G.Cx (0, 1); G.Cx (0, 1); G.Cx (0, 1) ])

let test_ql103 () =
  check_codes "fires QL103" [ "QL103" ] (circuit_codes ~n:2 [ G.H 0; G.H 1 ]);
  check_codes "silent" [] (circuit_codes ~n:2 [ G.Cx (0, 1) ])

let test_ql104 () =
  (* 5 qubits, 4 touched: lattice shrinks 3x3 -> 2x2 *)
  check_codes "fires QL104" [ "QL104" ]
    (circuit_codes ~n:5 [ G.Cx (0, 1); G.Cx (2, 3) ]);
  check_codes "silent when square" []
    (circuit_codes ~n:4 [ G.Cx (0, 1); G.Cx (2, 3) ])

(* ---------------- dataflow rules (QL3xx) ---------------- *)

let dataflow_codes gates ~n =
  codes (Qec_lint.Dataflow_lint.check ~file:"circ" (C.create ~num_qubits:n gates))

let test_ql301_ql304 () =
  (* q1's H is unobservable and q1 is never released: the liveness rule
     fires at the last writer and the ancilla rule at the qubit — they
     diagnose the same forgotten wire from both ends. *)
  check_codes "fires QL301+QL304" [ "QL301"; "QL304" ]
    (dataflow_codes ~n:2 [ G.H 1; G.H 0; G.Measure 0 ]);
  check_codes "all measured silent" []
    (dataflow_codes ~n:2 [ G.H 0; G.Measure 0 ]);
  (* measurement-free circuits are states, not experiments (QL101's
     convention) *)
  check_codes "no measurements silent" []
    (dataflow_codes ~n:2 [ G.H 0; G.H 1 ])

let test_ql302 () =
  (* a pure 8-gate CX chain: every gate zero-slack *)
  check_codes "fires QL302" [ "QL302" ]
    (dataflow_codes ~n:9
       [ G.Cx (0, 1); G.Cx (1, 2); G.Cx (2, 3); G.Cx (3, 4); G.Cx (4, 5);
         G.Cx (5, 6); G.Cx (6, 7); G.Cx (7, 8) ]);
  (* a 6-gate chain plus 6 parallel CXs: only half are zero-slack, below
     the 60% threshold (the parallel pairs sit on adjacent cells of the
     4x4 identity placement so no congestion hotspot appears either) *)
  check_codes "parallel slack silent" []
    (dataflow_codes ~n:16
       [ G.Cx (0, 1); G.Cx (1, 2); G.Cx (2, 0); G.Cx (0, 1); G.Cx (1, 2);
         G.Cx (2, 0); G.Cx (4, 5); G.Cx (6, 7); G.Cx (8, 9); G.Cx (10, 11);
         G.Cx (12, 13); G.Cx (14, 15) ]);
  (* under 8 two-qubit gates the rule stays quiet however tight the chain *)
  check_codes "small circuit silent" []
    (dataflow_codes ~n:4 [ G.Cx (0, 1); G.Cx (1, 2); G.Cx (2, 3) ])

(* Five layer-0 CXs criss-crossing a 5x5 identity placement: the
   full-grid cx q0,q24 overlaps the other four bounding boxes. *)
let crossing =
  [ G.Cx (0, 24); G.Cx (4, 20); G.Cx (2, 22); G.Cx (10, 14); G.Cx (7, 17) ]

let test_ql303 () =
  check_codes "fires QL303" [ "QL303" ] (dataflow_codes ~n:25 crossing);
  (* dropping the full-grid gate caps every degree at 3 *)
  check_codes "degree 3 silent" []
    (dataflow_codes ~n:25 (List.tl crossing))

(* QL3xx diagnostics are informational: they never move the exit code,
   even under --deny warning. *)
let test_ql3xx_severity () =
  let diags =
    Qec_lint.Dataflow_lint.check ~file:"circ"
      (C.create ~num_qubits:2 [ G.H 1; G.H 0; G.Measure 0 ])
  in
  check_bool "fired" true (diags <> []);
  List.iter
    (fun (d : D.t) -> check_bool "info severity" true (d.severity = D.Info))
    diags;
  check_int "exit stays 0" 0 (Lint.exit_code ~deny_warning:true diags)

(* ---------------- schedule rules (QL2xx) ---------------- *)

let test_ql201 () =
  check_codes "fires QL201" [ "QL201" ]
    (codes (Schedule_lint.check_options ~file:"f" ~threshold_p:1.5 ()));
  check_codes "negative" [ "QL201" ]
    (codes (Schedule_lint.check_options ~file:"f" ~threshold_p:(-0.1) ()));
  check_codes "silent" []
    (codes (Schedule_lint.check_options ~file:"f" ~threshold_p:0.0 ()))

let test_ql202 () =
  check_codes "d too small" [ "QL202" ]
    (codes (Schedule_lint.check_options ~file:"f" ~d:2 ()));
  check_codes "even d" [ "QL202" ]
    (codes (Schedule_lint.check_options ~file:"f" ~d:4 ()));
  check_codes "silent" [] (codes (Schedule_lint.check_options ~file:"f" ~d:33 ()))

let timing = Qec_surface.Timing.make ~d:33 ()

let test_ql210 () =
  let _, trace = S.run_traced timing (B.Bv.circuit 8) in
  check_codes "valid trace silent" []
    (codes (Schedule_lint.check_trace ~file:"bv8" trace));
  let broken =
    { trace with Autobraid.Trace.rounds = List.rev trace.Autobraid.Trace.rounds }
  in
  let diags = Schedule_lint.check_trace ~file:"bv8" broken in
  check_bool "reversed trace fires" true (diags <> []);
  List.iter
    (fun (d : D.t) ->
      check_str "code" "QL210" d.code;
      check_bool "error severity" true (d.severity = D.Error))
    diags;
  check_bool "locates the violation" true
    (List.exists (fun (d : D.t) -> d.context <> None) diags)

(* ---------------- diagnostics: rendering and JSONL golden ------------- *)

let test_to_string () =
  let d =
    D.make ~pos:{ Qec_qasm.Ast.line = 3; col = 7 } ~context:"gate 2: cx q0, q1"
      ~code:"QL102" ~severity:D.Warning ~file:"foo.qasm" "self-cancelling pair"
  in
  check_str "one line"
    "foo.qasm:3:7: warning[QL102]: self-cancelling pair (gate 2: cx q0, q1)"
    (D.to_string d)

let test_render_caret () =
  let src = "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[5];\n" in
  let d =
    D.make ~pos:{ Qec_qasm.Ast.line = 3; col = 1 } ~code:"QL002"
      ~severity:D.Error ~file:"t.qasm" "index 5 out of range for qreg q[2]"
  in
  check_str "caret under column"
    "t.qasm:3:1: error[QL002]: index 5 out of range for qreg q[2]\n\
    \    cx q[0], q[5];\n\
    \    ^"
    (D.render ~source:src d)

let test_jsonl_golden () =
  let d =
    D.make ~pos:{ Qec_qasm.Ast.line = 3; col = 7 } ~context:"gate 2"
      ~code:"QL102" ~severity:D.Warning ~file:"foo.qasm" "a \"quoted\" msg"
  in
  check_str "with position and context"
    "{\"code\":\"QL102\",\"severity\":\"warning\",\"file\":\"foo.qasm\",\
     \"line\":3,\"col\":7,\"message\":\"a \\\"quoted\\\" msg\",\
     \"context\":\"gate 2\"}"
    (D.to_jsonl d);
  let d' = D.make ~code:"QL103" ~severity:D.Info ~file:"bv8" "no braids" in
  check_str "positionless"
    "{\"code\":\"QL103\",\"severity\":\"info\",\"file\":\"bv8\",\
     \"line\":0,\"col\":0,\"message\":\"no braids\"}"
    (D.to_jsonl d')

let test_export_json_matches_jsonl () =
  let d =
    D.make ~pos:{ Qec_qasm.Ast.line = 2; col = 1 } ~code:"QL021"
      ~severity:D.Warning ~file:"t.qasm" "qreg q is never used"
  in
  check_str "report export agrees with to_jsonl"
    (D.to_jsonl d)
    (Qec_report.Json.to_string (Qec_report.Export.diagnostic_to_json d))

(* ---------------- exit-code policy ---------------- *)

let test_exit_code_policy () =
  let err = D.make ~code:"QL001" ~severity:D.Error ~file:"f" "e" in
  let warn = D.make ~code:"QL021" ~severity:D.Warning ~file:"f" "w" in
  let info = D.make ~code:"QL103" ~severity:D.Info ~file:"f" "i" in
  check_int "clean" 0 (Lint.exit_code []);
  check_int "info only" 0 (Lint.exit_code [ info ]);
  check_int "warning passes" 0 (Lint.exit_code [ warn; info ]);
  check_int "error fails" 1 (Lint.exit_code [ warn; err ]);
  check_int "deny promotes warnings" 1
    (Lint.exit_code ~deny_warning:true [ warn ]);
  check_int "deny leaves info" 0 (Lint.exit_code ~deny_warning:true [ info ]);
  check_str "summary" "1 error(s), 1 warning(s), 1 info"
    (Lint.summary [ err; warn; info ]);
  check_str "summary after promotion" "2 error(s), 0 warning(s), 1 info"
    (Lint.summary ~deny_warning:true [ err; warn; info ])

(* ---------------- fixtures stay clean; lint is read-only -------------- *)

(* dune runtest runs in _build/default/test; fixtures are copied next to
   the project root in the build tree *)
let fixture name =
  List.find Sys.file_exists
    [ Filename.concat "../fixtures" name; Filename.concat "fixtures" name ]

(* The fixtures carry no error or warning diagnostics; the QL3xx dataflow
   rules are informational by design, so their firings are pinned exactly
   instead of forbidden. adder4 drops its carry chain without measuring it
   (QL301 at each last writer, QL304 per unmeasured qubit) and both
   circuits are dense two-qubit chains with no slack (QL302). *)
let test_fixtures_clean () =
  List.iter
    (fun (f, expected) ->
      let diags, _src = Lint.lint_file (fixture f) in
      check_codes (f ^ " diagnostics") expected (codes diags);
      check_int (f ^ " has no errors/warnings") 0
        (Lint.error_count ~deny_warning:true diags))
    [
      ( "adder4.qasm",
        [ "QL301"; "QL301"; "QL301"; "QL301"; "QL301"; "QL302";
          "QL304"; "QL304"; "QL304"; "QL304"; "QL304" ] );
      ("qft5.qasm", [ "QL302" ]);
    ]

let test_lint_is_read_only () =
  let c = B.Qft.circuit 9 in
  let before = S.run timing c in
  let _ = Circuit_lint.check ~file:"qft9" c in
  let _ = Schedule_lint.check_options ~file:"qft9" ~threshold_p:0.1 ~d:33 () in
  let after = S.run timing c in
  check_int "total_cycles" before.S.total_cycles after.S.total_cycles;
  check_int "rounds" before.S.rounds after.S.rounds;
  check_int "swaps" before.S.swaps_inserted after.S.swaps_inserted;
  check_int "gates" before.S.num_gates after.S.num_gates

let () =
  Alcotest.run "lint"
    [
      ( "ast",
        [
          Alcotest.test_case "clean program silent" `Quick test_clean_silent;
          Alcotest.test_case "QL000 syntax" `Quick test_ql000;
          Alcotest.test_case "QL001 unknown register" `Quick test_ql001;
          Alcotest.test_case "QL002 index range" `Quick test_ql002;
          Alcotest.test_case "QL003 duplicate operand" `Quick test_ql003;
          Alcotest.test_case "QL004 unknown gate" `Quick test_ql004;
          Alcotest.test_case "QL005 param count" `Quick test_ql005;
          Alcotest.test_case "QL006 operand count" `Quick test_ql006;
          Alcotest.test_case "QL007 broadcast mismatch" `Quick test_ql007;
          Alcotest.test_case "QL008 late qreg" `Quick test_ql008;
          Alcotest.test_case "QL009 duplicate decl" `Quick test_ql009;
          Alcotest.test_case "QL010 bad gate body" `Quick test_ql010;
          Alcotest.test_case "QL011 no qreg" `Quick test_ql011;
          Alcotest.test_case "QL012 bad version" `Quick test_ql012;
          Alcotest.test_case "QL013 elaboration" `Quick test_ql013;
          Alcotest.test_case "QL020 use after measure" `Quick test_ql020;
          Alcotest.test_case "QL020 reset clears" `Quick test_ql020_reset_clears;
          Alcotest.test_case "QL021 unused qubits" `Quick test_ql021;
          Alcotest.test_case "QL022 unused creg" `Quick test_ql022;
          Alcotest.test_case "QL023 shadow builtin" `Quick test_ql023_builtin;
          Alcotest.test_case "QL023 shadow earlier" `Quick test_ql023_earlier;
          Alcotest.test_case "QL024 measure mismatch" `Quick test_ql024;
          Alcotest.test_case "positions recorded" `Quick test_positions;
          Alcotest.test_case "user gate signature" `Quick test_user_gate_signature;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "QL101 dead gates" `Quick test_ql101;
          Alcotest.test_case "QL102 cancelling cx" `Quick test_ql102;
          Alcotest.test_case "QL102 pairs chain" `Quick test_ql102_chain;
          Alcotest.test_case "QL103 no braids" `Quick test_ql103;
          Alcotest.test_case "QL104 lattice capacity" `Quick test_ql104;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "QL301/QL304 dead wires" `Quick test_ql301_ql304;
          Alcotest.test_case "QL302 zero-slack chain" `Quick test_ql302;
          Alcotest.test_case "QL303 congestion hotspot" `Quick test_ql303;
          Alcotest.test_case "QL3xx stay informational" `Quick
            test_ql3xx_severity;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "QL201 threshold range" `Quick test_ql201;
          Alcotest.test_case "QL202 distance" `Quick test_ql202;
          Alcotest.test_case "QL210 trace violations" `Quick test_ql210;
        ] );
      ( "output",
        [
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "caret rendering" `Quick test_render_caret;
          Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
          Alcotest.test_case "export json" `Quick test_export_json_matches_jsonl;
        ] );
      ( "policy",
        [
          Alcotest.test_case "exit codes" `Quick test_exit_code_policy;
          Alcotest.test_case "fixtures clean" `Quick test_fixtures_clean;
          Alcotest.test_case "lint is read-only" `Quick test_lint_is_read_only;
        ] );
    ]
