(* Tests for the windowed-lookahead backend: the windowed_tail recurrence
   against hand-computed DAGs and its convergence to the Dataflow tail,
   the window = 0 == greedy identity, the never-worse guarantee over the
   benchmark families and the promoted fuzz regressions, and the
   known-answer win on the long-range family the benchmarks gate on. *)

module Circuit = Qec_circuit.Circuit
module Gate = Qec_circuit.Gate
module Decompose = Qec_circuit.Decompose
module S = Autobraid.Scheduler
module Trace = Autobraid.Trace
module CB = Autobraid.Comm_backend
module L = Qec_lookahead.Lookahead_scheduler
module Dataflow = Qec_verify.Dataflow
module B = Qec_benchmarks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let timing = Qec_surface.Timing.make ~d:Qec_surface.Timing.default_d ()

(* ------------------------------------------------------------------ *)
(* windowed_tail                                                        *)

let test_windowed_tail_known_answer () =
  (* g0 = CX(0,1) -> g1 = CX(1,2) -> g2 = CX(0,1): succs(g0) = {g1, g2}
     (via q1 and q0), succs(g1) = {g2}. Two-qubit cost is 2. *)
  let c =
    Circuit.create ~num_qubits:3 [ Gate.Cx (0, 1); Gate.Cx (1, 2); Gate.Cx (0, 1) ]
  in
  let check w expected =
    Alcotest.(check (array int))
      (Printf.sprintf "window %d" w)
      expected
      (L.windowed_tail ~window:w c)
  in
  check 0 [| 2; 2; 2 |];
  check 1 [| 4; 4; 2 |];
  check 2 [| 6; 4; 2 |];
  (* fixed point: deeper windows change nothing *)
  check 3 [| 6; 4; 2 |];
  check 100 [| 6; 4; 2 |]

let test_windowed_tail_mixed_costs () =
  (* single-qubit gates cost 1: H(0) -> CX(0,1) gives H a tail of 3 *)
  let c = Circuit.create ~num_qubits:2 [ Gate.H 0; Gate.Cx (0, 1) ] in
  Alcotest.(check (array int)) "window 0" [| 1; 2 |] (L.windowed_tail ~window:0 c);
  Alcotest.(check (array int)) "window 1" [| 3; 2 |] (L.windowed_tail ~window:1 c)

let test_windowed_tail_converges_to_dataflow () =
  List.iter
    (fun name ->
      let lowered = Decompose.to_scheduler_gates (B.Registry.build name) in
      let n = Circuit.length lowered in
      let wt = L.windowed_tail ~window:n lowered in
      let sa = Dataflow.slack_analysis lowered in
      for i = 0 to n - 1 do
        check_int
          (Printf.sprintf "%s gate %d tail" name i)
          sa.(i).Dataflow.tail wt.(i)
      done)
    [ "qft9"; "bv12"; "lr16" ]

let test_windowed_tail_rejects_negative () =
  let c = Circuit.create ~num_qubits:1 [ Gate.H 0 ] in
  Alcotest.check_raises "negative window"
    (Invalid_argument "Lookahead_scheduler.windowed_tail: window < 0")
    (fun () -> ignore (L.windowed_tail ~window:(-1) c))

(* ------------------------------------------------------------------ *)
(* window = 0 is the greedy braid schedule                              *)

let test_window_zero_is_greedy () =
  List.iter
    (fun name ->
      let c = B.Registry.build name in
      let opts = { L.default_options with L.window = 0 } in
      let result, trace, stats = L.run_traced ~options:opts timing c in
      let g_result, g_trace = S.run_traced timing c in
      check_int (name ^ " cycles") g_result.S.total_cycles
        result.S.total_cycles;
      check_int (name ^ " rounds") g_result.S.rounds result.S.rounds;
      check_bool (name ^ " identical trace") true (trace = g_trace);
      check_int (name ^ " no priority rounds") 0 stats.L.priority_rounds;
      check_bool (name ^ " reported as greedy") false stats.L.chose_lookahead)
    [ "qft9"; "lr16" ]

(* ------------------------------------------------------------------ *)
(* never worse than greedy                                              *)

let assert_never_worse name c =
  let result, trace, stats = L.run_traced timing c in
  let greedy = S.run timing c in
  check_bool
    (Printf.sprintf "%s: %d <= %d cycles" name result.S.total_cycles
       greedy.S.total_cycles)
    true
    (result.S.total_cycles <= greedy.S.total_cycles);
  check_int (name ^ " greedy_cycles stat") greedy.S.total_cycles
    stats.L.greedy_cycles;
  check_int (name ^ " trace clean") 0 (List.length (Trace.check trace));
  (* the returned schedule executes every lowered gate once *)
  check_int (name ^ " schedules every gate")
    result.S.num_gates
    (List.length (CB.scheduled_gate_ids trace))

let test_never_worse_benchmarks () =
  List.iter
    (fun name -> assert_never_worse name (B.Registry.build name))
    [ "qft9"; "bv12"; "qaoa12"; "lr16"; "lr24"; "bv32" ]

(* dune runtest runs in _build/default/test; fixtures are copied next to
   the executable, the source tree keeps them one level up. *)
let regressions_dir () =
  List.find_opt Sys.file_exists
    [
      Filename.concat ".." (Filename.concat "fixtures" "regressions");
      Filename.concat "fixtures" "regressions";
    ]

let test_never_worse_regressions () =
  match regressions_dir () with
  | None -> Alcotest.fail "fixtures/regressions not found"
  | Some dir ->
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".qasm")
      |> List.sort compare
    in
    if files = [] then Alcotest.fail "no promoted regressions found";
    List.iter
      (fun f ->
        assert_never_worse f (Qec_qasm.Frontend.of_file (Filename.concat dir f)))
      files

(* ------------------------------------------------------------------ *)
(* the long-range win the benchmarks gate on                            *)

let test_lr24_strictly_better () =
  let c = B.Registry.build "lr24" in
  let result, _, stats = L.run_traced timing c in
  let greedy = S.run timing c in
  check_bool
    (Printf.sprintf "lr24: %d < %d cycles" result.S.total_cycles
       greedy.S.total_cycles)
    true
    (result.S.total_cycles < greedy.S.total_cycles);
  check_bool "portfolio rounds committed" true (stats.L.priority_rounds > 0);
  check_bool "lookahead chosen" true stats.L.chose_lookahead

(* ------------------------------------------------------------------ *)
(* backend packaging                                                    *)

let test_backend_outcome () =
  let outcome =
    (Qec_lookahead.Backend.make ()).CB.run timing (B.Registry.build "qft9")
  in
  Alcotest.(check string) "name" "lookahead" outcome.CB.backend;
  check_int "trace clean" 0 (List.length (Trace.check outcome.CB.trace));
  List.iter
    (fun key ->
      check_bool ("stats carry " ^ key) true
        (List.mem_assoc key outcome.CB.stats))
    [
      "window";
      "chose_lookahead";
      "lookahead_cycles";
      "greedy_cycles";
      "priority_rounds";
      "rescued_gates";
    ]

let () =
  Alcotest.run "qec_lookahead"
    [
      ( "windowed_tail",
        [
          Alcotest.test_case "known answer" `Quick
            test_windowed_tail_known_answer;
          Alcotest.test_case "mixed costs" `Quick
            test_windowed_tail_mixed_costs;
          Alcotest.test_case "converges to Dataflow tail" `Quick
            test_windowed_tail_converges_to_dataflow;
          Alcotest.test_case "rejects negative window" `Quick
            test_windowed_tail_rejects_negative;
        ] );
      ( "greedy identity",
        [ Alcotest.test_case "window 0" `Quick test_window_zero_is_greedy ] );
      ( "never worse",
        [
          Alcotest.test_case "benchmarks" `Quick test_never_worse_benchmarks;
          Alcotest.test_case "promoted regressions" `Quick
            test_never_worse_regressions;
        ] );
      ( "long-range win",
        [ Alcotest.test_case "lr24" `Quick test_lr24_strictly_better ] );
      ( "backend",
        [ Alcotest.test_case "outcome shape" `Quick test_backend_outcome ] );
    ]
