(* Tests for the dependency DAG, critical path, and the frontier. *)

module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit
module Dag = Qec_circuit.Dag

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

(* 0: H q0 | 1: CX q0,q1 | 2: H q2 | 3: CX q1,q2 | 4: H q0 *)
let sample () =
  Dag.of_circuit
    (C.create ~num_qubits:3 G.[ H 0; Cx (0, 1); H 2; Cx (1, 2); H 0 ])

let test_preds_succs () =
  let d = sample () in
  check_ilist "preds of 0" [] (Dag.preds d 0);
  check_ilist "preds of 1" [ 0 ] (Dag.preds d 1);
  check_ilist "preds of 3" [ 1; 2 ] (Dag.preds d 3);
  check_ilist "succs of 1" [ 3; 4 ] (Dag.succs d 1);
  check_ilist "succs of 4" [] (Dag.succs d 4)

let test_levels_and_depth () =
  let d = sample () in
  Alcotest.(check (array int)) "levels" [| 0; 1; 0; 2; 2 |] (Dag.asap_levels d);
  check_int "depth" 3 (Dag.depth d)

let test_layers () =
  let d = sample () in
  let layers = Dag.layers d in
  check_int "layer count" 3 (Array.length layers);
  check_ilist "layer 0" [ 0; 2 ] layers.(0);
  check_ilist "layer 1" [ 1 ] layers.(1);
  check_ilist "layer 2" [ 3; 4 ] layers.(2)

let test_shared_qubit_dedup () =
  (* Two gates sharing both qubits should create one dependency edge. *)
  let d =
    Dag.of_circuit (C.create ~num_qubits:2 G.[ Cx (0, 1); Cx (1, 0) ])
  in
  check_ilist "single pred" [ 0 ] (Dag.preds d 1);
  check_ilist "single succ" [ 1 ] (Dag.succs d 0)

let cost g = if G.is_two_qubit g then 2 else 1

let test_critical_path () =
  let d = sample () in
  (* longest chain: H0(1) -> CX01(2) -> CX12(2) = 5 *)
  check_int "weighted CP" 5 (Dag.critical_path ~cost d);
  check_int "unit CP = depth" 3 (Dag.critical_path ~cost:(fun _ -> 1) d)

let test_critical_path_empty () =
  let d = Dag.of_circuit (C.create ~num_qubits:1 []) in
  check_int "empty" 0 (Dag.critical_path ~cost d);
  check_int "depth" 0 (Dag.depth d)

let test_two_qubit_histogram () =
  let d =
    Dag.of_circuit
      (C.create ~num_qubits:4 G.[ Cx (0, 1); Cx (2, 3); Cx (0, 2) ])
  in
  (* layer 0 has 2 concurrent CX, layer 1 has 1 *)
  Alcotest.(check (list (pair int int)))
    "hist" [ (1, 1); (2, 1) ]
    (Dag.two_qubit_layer_histogram d)

let test_frontier_lifecycle () =
  let d = sample () in
  let f = Dag.Frontier.create d in
  check_bool "not done" false (Dag.Frontier.is_done f);
  check_int "remaining" 5 (Dag.Frontier.remaining f);
  check_ilist "initial ready" [ 0; 2 ] (Dag.Frontier.ready f);
  Dag.Frontier.complete f 0;
  check_ilist "after 0" [ 1; 2 ] (Dag.Frontier.ready f);
  Dag.Frontier.complete f 2;
  Dag.Frontier.complete f 1;
  check_ilist "after 1" [ 3; 4 ] (Dag.Frontier.ready f);
  Dag.Frontier.complete f 3;
  Dag.Frontier.complete f 4;
  check_bool "done" true (Dag.Frontier.is_done f);
  check_int "none left" 0 (Dag.Frontier.remaining f)

let test_frontier_not_ready () =
  let d = sample () in
  let f = Dag.Frontier.create d in
  Alcotest.check_raises "complete unready"
    (Invalid_argument "Frontier.complete: gate 3 not ready") (fun () ->
      Dag.Frontier.complete f 3)

(* Random circuit generator for properties. *)
let random_circuit_gen =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let* gates =
      list_size (int_range 0 40)
        (let* a = int_range 0 (n - 1) in
         let* b = int_range 0 (n - 1) in
         let* k = int_range 0 2 in
         return (a, b, k))
    in
    let gs =
      List.filter_map
        (fun (a, b, k) ->
          match k with
          | 0 -> Some (G.H a)
          | 1 -> if a <> b then Some (G.Cx (a, b)) else Some (G.T a)
          | _ -> Some (G.T a))
        gates
    in
    return (C.create ~num_qubits:n gs))

let arbitrary_circuit = QCheck.make random_circuit_gen

let prop_frontier_schedules_all =
  QCheck.Test.make ~name:"frontier drains every gate exactly once" ~count:200
    arbitrary_circuit (fun c ->
      let d = Dag.of_circuit c in
      let f = Dag.Frontier.create d in
      let done_count = ref 0 in
      while not (Dag.Frontier.is_done f) do
        match Dag.Frontier.ready f with
        | [] -> failwith "stuck frontier"
        | g :: _ ->
          Dag.Frontier.complete f g;
          incr done_count
      done;
      !done_count = C.length c)

let prop_frontier_respects_program_order =
  QCheck.Test.make ~name:"per-qubit program order is preserved" ~count:200
    arbitrary_circuit (fun c ->
      let d = Dag.of_circuit c in
      let f = Dag.Frontier.create d in
      let finish_order = ref [] in
      while not (Dag.Frontier.is_done f) do
        (* complete the whole ready set, highest id first, to stress order *)
        List.iter (Dag.Frontier.complete f) (List.rev (Dag.Frontier.ready f))
      done;
      ignore !finish_order;
      (* check levels are monotone along each qubit's gate sequence *)
      let levels = Dag.asap_levels d in
      let ok = ref true in
      let last_level = Array.make (C.num_qubits c) (-1) in
      C.iter
        (fun i g ->
          List.iter
            (fun q ->
              if levels.(i) <= last_level.(q) then ok := false;
              last_level.(q) <- levels.(i))
            (G.qubits g))
        c;
      !ok)

(* Differential: the bitset frontier must expose byte-identical ready
   lists to the Int_set reference at every step, whichever completion
   order the scheduler picks. *)
let prop_frontier_matches_reference =
  QCheck.Test.make ~name:"bitset frontier = reference frontier" ~count:200
    QCheck.(pair arbitrary_circuit (list small_nat))
    (fun (c, picks) ->
      let d = Dag.of_circuit c in
      let f = Dag.Frontier.create d in
      let r = Dag.Frontier.Reference.create d in
      let same () =
        Dag.Frontier.ready f = Dag.Frontier.Reference.ready r
        && Dag.Frontier.remaining f = Dag.Frontier.Reference.remaining r
        && Dag.Frontier.is_done f = Dag.Frontier.Reference.is_done r
      in
      let iter_ready_agrees () =
        let acc = ref [] in
        Dag.Frontier.iter_ready (fun i -> acc := i :: !acc) f;
        List.rev !acc = Dag.Frontier.ready f
      in
      let picks = ref picks in
      let next_pick n =
        match !picks with
        | p :: rest ->
          picks := rest;
          p mod n
        | [] -> 0
      in
      let ok = ref (same () && iter_ready_agrees ()) in
      while !ok && not (Dag.Frontier.is_done f) do
        let ready = Dag.Frontier.ready f in
        let g = List.nth ready (next_pick (List.length ready)) in
        Dag.Frontier.complete f g;
        Dag.Frontier.Reference.complete r g;
        ok := same () && iter_ready_agrees ()
      done;
      !ok)

let prop_critical_path_bounds =
  QCheck.Test.make ~name:"depth <= CP <= sum of costs" ~count:200
    arbitrary_circuit (fun c ->
      let d = Dag.of_circuit c in
      let cp = Dag.critical_path ~cost d in
      let total =
        Array.fold_left (fun acc g -> acc + cost g) 0 (C.gates c)
      in
      Dag.depth d <= cp && cp <= total)

let () =
  Alcotest.run "dag"
    [
      ( "structure",
        [
          Alcotest.test_case "preds/succs" `Quick test_preds_succs;
          Alcotest.test_case "levels/depth" `Quick test_levels_and_depth;
          Alcotest.test_case "layers" `Quick test_layers;
          Alcotest.test_case "dedup shared qubits" `Quick test_shared_qubit_dedup;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "empty" `Quick test_critical_path_empty;
          Alcotest.test_case "2q histogram" `Quick test_two_qubit_histogram;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "lifecycle" `Quick test_frontier_lifecycle;
          Alcotest.test_case "not ready" `Quick test_frontier_not_ready;
          QCheck_alcotest.to_alcotest prop_frontier_schedules_all;
          QCheck_alcotest.to_alcotest prop_frontier_respects_program_order;
          QCheck_alcotest.to_alcotest prop_frontier_matches_reference;
          QCheck_alcotest.to_alcotest prop_critical_path_bounds;
        ] );
    ]
