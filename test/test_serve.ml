(* Tests for Qec_serve: wire-protocol totality and round-trips, the live
   Metrics module, and an in-process daemon exercised end-to-end over
   real Unix-domain sockets — correlation of out-of-order responses,
   byte-identity with the one-shot engine, admission control, malformed
   input resilience, queue-wait timeouts and graceful drain. *)

module P = Qec_serve.Protocol
module C = Qec_serve.Client
module Server = Qec_serve.Server
module Metrics = Qec_serve.Metrics
module Spec = Qec_engine.Spec
module Engine = Qec_engine.Engine
module Json = Qec_report.Json

let () = Engine.ensure_backends ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let spec ?(seed = 11) circuit = { Spec.default with Spec.circuit; seed }

let get_ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

(* ------------------------------------------------------------------ *)
(* Protocol                                                             *)

let test_request_roundtrip () =
  let s = spec "qft9" in
  (match P.decode (P.encode (P.compile_request ~id:"r1" s)) with
  | Ok (P.Compile { id = Some "r1"; op = "compile"; spec }) ->
    check_bool "spec survives" true (spec = s)
  | _ -> Alcotest.fail "compile request did not round-trip");
  (match P.decode (P.encode (P.compile_request ~op:"schedule" s)) with
  | Ok (P.Compile { id = None; op = "schedule"; _ }) -> ()
  | _ -> Alcotest.fail "schedule alias did not round-trip");
  (match P.decode (P.encode (P.batch_request ~id:"b" [ s; spec "bv12" ])) with
  | Ok (P.Batch { id = Some "b"; specs }) ->
    check_int "both jobs" 2 (List.length specs)
  | _ -> Alcotest.fail "batch request did not round-trip");
  List.iter
    (fun (line, name) ->
      match P.decode line with
      | Ok req ->
        check_bool (name ^ " id") true (P.request_id req = Some "x")
      | Error e -> Alcotest.failf "%s: %s" name e.Qec_engine.Engine_core.message)
    [
      (P.encode (P.ping_request ~id:"x" ()), "ping");
      (P.encode (P.stats_request ~id:"x" ()), "stats");
      (P.encode (P.shutdown_request ~id:"x" ()), "shutdown");
    ]

let test_decode_errors () =
  let kind line =
    match P.decode line with
    | Error e -> e.Qec_engine.Engine_core.kind
    | Ok _ -> "ok"
  in
  check_string "invalid json" "parse" (kind "{nope");
  check_string "non-object" "bad-request" (kind "[1,2]");
  check_string "missing op" "bad-request" (kind "{}");
  check_string "non-string op" "bad-request" (kind {|{"op": 3}|});
  check_string "unknown op" "bad-request" (kind {|{"op": "explode"}|});
  check_string "missing spec" "bad-request" (kind {|{"op": "compile"}|});
  check_string "bad spec" "bad-request"
    (kind {|{"op": "compile", "spec": {"circuit": 3}}|});
  check_string "unknown field" "bad-request"
    (kind {|{"op": "ping", "bogus": 1}|});
  check_string "non-string id" "bad-request" (kind {|{"op": "ping", "id": 7}|});
  check_string "empty batch" "bad-request" (kind {|{"op": "batch", "jobs": []}|})

let test_response_roundtrip () =
  let job =
    {
      Engine.index = 4;
      spec = spec "qft9";
      elapsed_s = 0.;
      cache = Engine.Uncached;
      outcome = Error { Engine.kind = "internal"; message = "boom" };
    }
  in
  (match P.response_of_line (P.encode (P.result_record ~request:(Some "a") job)) with
  | Ok (P.Result { request = Some "a"; job }) ->
    check_bool "job embedded" true (Json.member "index" job = Some (Json.Int 4))
  | _ -> Alcotest.fail "result record did not round-trip");
  (match
     P.response_of_line
       (P.encode
          (P.error_record ~request:None
             { Qec_engine.Engine_core.kind = "overloaded"; message = "full" }))
   with
  | Ok (P.Error_resp { request = None; kind = "overloaded"; message = "full" })
    ->
    ()
  | _ -> Alcotest.fail "error record did not round-trip");
  (match P.response_of_line (P.encode (P.pong_record ~request:(Some "p"))) with
  | Ok (P.Pong { request = Some "p"; version }) ->
    check_string "pong version" P.version version
  | _ -> Alcotest.fail "pong did not round-trip");
  (match
     P.response_of_line
       (P.encode (P.done_record ~request:(Some "b") ~ok:2 ~failed:1))
   with
  | Ok (P.Done { ok = 2; failed = 1; _ }) -> ()
  | _ -> Alcotest.fail "done did not round-trip");
  match P.response_of_line (P.encode (P.shutdown_record ~request:None)) with
  | Ok (P.Shutdown_ack _) -> ()
  | _ -> Alcotest.fail "shutdown ack did not round-trip"

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.count m "a";
  Metrics.count ~by:4 m "a";
  Metrics.gauge m "g" 2.5;
  List.iter (Metrics.sample m "s") [ 0.1; 0.2; 0.3; 0.4 ];
  check_int "counter" 5 (Metrics.counter m "a");
  check_int "unknown counter" 0 (Metrics.counter m "nope");
  check_bool "uptime moves" true (Metrics.uptime_s m >= 0.);
  let j = Metrics.to_json m in
  check_bool "counter exported" true
    (Option.bind (Json.member "counters" j) (Json.member "a")
    = Some (Json.Int 5));
  check_bool "gauge exported" true
    (Option.bind (Json.member "gauges" j) (Json.member "g")
    = Some (Json.Float 2.5));
  match Json.member "histograms" j with
  | Some (Json.List [ h ]) ->
    check_bool "hist name" true (Json.member "name" h = Some (Json.String "s"));
    check_bool "hist count" true (Json.member "count" h = Some (Json.Int 4));
    check_bool "hist min" true (Json.member "min" h = Some (Json.Float 0.1));
    check_bool "hist max" true (Json.member "max" h = Some (Json.Float 0.4))
  | _ -> Alcotest.fail "expected exactly one histogram"

(* ------------------------------------------------------------------ *)
(* In-process daemon harness                                            *)

let next_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "absrv%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?(jobs = 2) ?(max_pending = 64) ?timeout_s f =
  let socket = next_sock () in
  let config =
    {
      (Server.default_config ~socket ()) with
      jobs;
      max_pending;
      timeout_s;
    }
  in
  let daemon = Domain.spawn (fun () -> Server.run config) in
  Fun.protect
    ~finally:(fun () ->
      (match C.connect socket with
      | Ok c ->
        ignore (C.shutdown c);
        C.close c
      | Error _ -> () (* the test already drained it *));
      Domain.join daemon)
    (fun () ->
      match C.connect_retry socket with
      | Error msg -> Alcotest.failf "daemon did not come up: %s" msg
      | Ok probe ->
        C.close probe;
        f socket)

let connect socket = get_ok "connect" (C.connect socket)

(* Render a job exactly as the one-shot engine would for this spec —
   the byte-identity oracle for serve responses. *)
let one_shot_line s =
  Json.to_string
    (Engine.job_to_json
       {
         Engine.index = 0;
         spec = s;
         elapsed_s = 0.;
         cache = Engine.Uncached;
         outcome = Engine.run_spec s;
       })

let test_ping () =
  with_server @@ fun socket ->
  let c = connect socket in
  (match get_ok "ping" (C.ping ~id:"p" c) with
  | P.Pong { request = Some "p"; version } ->
    check_string "version" P.version version
  | _ -> Alcotest.fail "expected pong");
  C.close c

let test_compile_byte_identity () =
  with_server @@ fun socket ->
  let c = connect socket in
  let s = spec "qft9" in
  (match get_ok "compile" (C.compile ~id:"c1" c s) with
  | P.Result { request = Some "c1"; job } ->
    check_string "byte-identical to one-shot engine" (one_shot_line s)
      (C.job_line job)
  | _ -> Alcotest.fail "expected a result record");
  C.close c

let test_out_of_order_correlation () =
  with_server ~jobs:2 @@ fun socket ->
  let c = connect socket in
  (* pipeline two requests of very different cost on one connection; the
     responses may arrive in either order and must correlate by id *)
  get_ok "send slow" (C.send c (P.compile_request ~id:"slow" (spec "qft16")));
  get_ok "send fast" (C.send c (P.compile_request ~id:"fast" (spec "ghz3")));
  let read () =
    match get_ok "read" (C.read_response c) with
    | P.Result { request = Some id; job } -> (id, job)
    | _ -> Alcotest.fail "expected a result record"
  in
  let r1 = read () and r2 = read () in
  let circuit_of (_, job) =
    match Option.bind (Json.member "spec" job) (Json.member "circuit") with
    | Some (Json.String name) -> name
    | _ -> Alcotest.fail "job record without a circuit"
  in
  let find id =
    match List.find_opt (fun (i, _) -> i = id) [ r1; r2 ] with
    | Some r -> circuit_of r
    | None -> Alcotest.failf "no response correlated to %S" id
  in
  check_string "slow id -> slow circuit" "qft16" (find "slow");
  check_string "fast id -> fast circuit" "ghz3" (find "fast");
  C.close c

let test_concurrent_clients () =
  with_server ~jobs:2 @@ fun socket ->
  let serve_one circuit =
    let c = connect socket in
    let r =
      match get_ok "compile" (C.compile c (spec circuit)) with
      | P.Result { job; _ } -> C.job_line job
      | _ -> Alcotest.fail "expected a result record"
    in
    C.close c;
    (circuit, r)
  in
  let results = Qec_util.Parallel.map ~domains:2 serve_one [ "qft9"; "bv12" ] in
  List.iter
    (fun (circuit, line) ->
      check_string
        (circuit ^ " served correctly over a concurrent connection")
        (one_shot_line (spec circuit))
        line)
    results

let test_batch_streaming () =
  with_server ~jobs:2 @@ fun socket ->
  let c = connect socket in
  let specs = [ spec "qft9"; spec "no_such_circuit"; spec "ghz3" ] in
  let records, ok_n, failed_n = get_ok "batch" (C.batch ~id:"b" c specs) in
  check_int "three streamed records" 3 (List.length records);
  check_int "two ok" 2 ok_n;
  check_int "one failed" 1 failed_n;
  let jobs =
    List.filter_map
      (function
        | P.Result { request = Some "b"; job } -> Some job
        | P.Result { request = _; _ } ->
          Alcotest.fail "batch record with wrong correlation id"
        | _ -> None)
      records
  in
  let index job =
    match Json.member "index" job with
    | Some (Json.Int i) -> i
    | _ -> Alcotest.fail "job record without an index"
  in
  let sorted = List.sort (fun a b -> compare (index a) (index b)) jobs in
  let serve_jsonl =
    String.concat "" (List.map (fun j -> C.job_line j ^ "\n") sorted)
  in
  check_string "batch stream reassembles to run_batch JSONL"
    (Engine.jobs_to_jsonl ~timings:false (Engine.run_batch ~jobs:1 specs))
    serve_jsonl;
  C.close c

let test_overload () =
  (* max_pending = 0 rejects every compile deterministically while the
     control plane stays alive *)
  with_server ~jobs:1 ~max_pending:0 @@ fun socket ->
  let c = connect socket in
  (match get_ok "compile" (C.compile ~id:"x" c (spec "qft9")) with
  | P.Error_resp { request = Some "x"; kind = "overloaded"; _ } -> ()
  | P.Error_resp { kind; _ } -> Alcotest.failf "expected overloaded, got %s" kind
  | _ -> Alcotest.fail "expected an error record");
  (match get_ok "ping after overload" (C.ping c) with
  | P.Pong _ -> ()
  | _ -> Alcotest.fail "daemon died after overload");
  C.close c

let test_malformed_lines () =
  with_server @@ fun socket ->
  (* raw socket: hello, then garbage, then a valid ping on the same
     connection — the error must be a record, not a disconnect *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  (match P.response_of_line (input_line ic) with
  | Ok (P.Hello v) -> check_string "hello version" P.version v
  | _ -> Alcotest.fail "expected hello");
  let send_raw line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  send_raw "{{{ not json";
  (match P.response_of_line (input_line ic) with
  | Ok (P.Error_resp { kind = "parse"; request = None; _ }) -> ()
  | _ -> Alcotest.fail "garbage must yield a parse error record");
  send_raw {|{"op": "explode", "id": "e"}|};
  (match P.response_of_line (input_line ic) with
  | Ok (P.Error_resp { kind = "bad-request"; _ }) -> ()
  | _ -> Alcotest.fail "unknown op must yield a bad-request record");
  send_raw (P.encode (P.ping_request ()));
  (match P.response_of_line (input_line ic) with
  | Ok (P.Pong _) -> ()
  | _ -> Alcotest.fail "connection must survive malformed lines");
  Unix.close fd

let test_timeout () =
  (* an unmeetable deadline: every request times out at dequeue, with a
     structured record, and the daemon survives *)
  with_server ~jobs:1 ~timeout_s:1e-9 @@ fun socket ->
  let c = connect socket in
  (match get_ok "compile" (C.compile ~id:"t" c (spec "qft9")) with
  | P.Error_resp { request = Some "t"; kind = "timeout"; _ } -> ()
  | P.Error_resp { kind; _ } -> Alcotest.failf "expected timeout, got %s" kind
  | _ -> Alcotest.fail "expected an error record");
  (match get_ok "ping after timeout" (C.ping c) with
  | P.Pong _ -> ()
  | _ -> Alcotest.fail "daemon died after timeout");
  C.close c

let test_stats_and_cache_sharing () =
  with_server ~jobs:2 @@ fun socket ->
  let compile_once () =
    let c = connect socket in
    (match get_ok "compile" (C.compile c (spec "qft9")) with
    | P.Result _ -> ()
    | _ -> Alcotest.fail "expected a result");
    C.close c
  in
  (* same spec from two different connections: the second must hit the
     shared in-memory placement cache *)
  compile_once ();
  compile_once ();
  let c = connect socket in
  let stats =
    match get_ok "stats" (C.stats ~id:"s" c) with
    | P.Stats_resp { request = Some "s"; stats } -> stats
    | _ -> Alcotest.fail "expected stats"
  in
  C.close c;
  let int_at path =
    match
      List.fold_left
        (fun acc name -> Option.bind acc (Json.member name))
        (Some stats) path
    with
    | Some (Json.Int i) -> i
    | _ -> Alcotest.failf "stats missing %s" (String.concat "." path)
  in
  check_int "one miss" 1 (int_at [ "cache"; "misses" ]);
  check_int "one shared memory hit" 1 (int_at [ "cache"; "memory_hits" ]);
  check_int "both results ok" 2
    (int_at [ "telemetry"; "counters"; "serve.results_ok" ]);
  check_int "queue drained" 0 (int_at [ "server"; "queue_depth" ]);
  (match Json.member "server" stats with
  | Some server ->
    check_bool "version advertised" true
      (Json.member "version" server = Some (Json.String P.version))
  | None -> Alcotest.fail "stats missing server block");
  match Option.bind (Json.member "telemetry" stats) (Json.member "histograms") with
  | Some (Json.List hists) ->
    check_bool "request latency histogram present" true
      (List.exists
         (fun h -> Json.member "name" h = Some (Json.String "serve.request_s"))
         hists)
  | _ -> Alcotest.fail "stats missing telemetry histograms"

let test_graceful_drain () =
  with_server ~jobs:1 @@ fun socket ->
  let c = connect socket in
  (* work admitted before the shutdown request must still be answered *)
  get_ok "send compile" (C.send c (P.compile_request ~id:"w" (spec "qft9")));
  get_ok "send shutdown" (C.send c (P.shutdown_request ~id:"d" ()));
  let got_result = ref false and got_ack = ref false in
  for _ = 1 to 2 do
    match get_ok "read" (C.read_response c) with
    | P.Result { request = Some "w"; _ } -> got_result := true
    | P.Shutdown_ack { request = Some "d" } -> got_ack := true
    | _ -> Alcotest.fail "unexpected response during drain"
  done;
  check_bool "queued work served" true !got_result;
  check_bool "shutdown acknowledged" true !got_ack;
  C.close c
(* with_server's finally joins the daemon domain, proving the drain
   actually terminates the server *)

let () =
  Alcotest.run "qec_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "response round-trip" `Quick
            test_response_roundtrip;
        ] );
      ("metrics", [ Alcotest.test_case "aggregates" `Quick test_metrics ]);
      ( "daemon",
        [
          Alcotest.test_case "ping" `Quick test_ping;
          Alcotest.test_case "byte-identity" `Quick test_compile_byte_identity;
          Alcotest.test_case "out-of-order correlation" `Quick
            test_out_of_order_correlation;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
          Alcotest.test_case "batch streaming" `Quick test_batch_streaming;
          Alcotest.test_case "overload" `Quick test_overload;
          Alcotest.test_case "malformed lines" `Quick test_malformed_lines;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "stats + cache sharing" `Quick
            test_stats_and_cache_sharing;
          Alcotest.test_case "graceful drain" `Quick test_graceful_drain;
        ] );
    ]
