(* Unit and property tests for the qec_util support library. *)

module Rng = Qec_util.Rng
module Heap = Qec_util.Heap
module Union_find = Qec_util.Union_find
module Bitset = Qec_util.Bitset
module Stats = Qec_util.Stats
module Tableprint = Qec_util.Tableprint

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref true in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then same := false
  done;
  check_bool "streams differ" false !same

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    check_bool "in [0,10)" true (v >= 0 && v < 10)
  done

let test_rng_int_in_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    check_bool "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_copy_independent () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check_bool "copies agree next" true (Rng.bits64 a = Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* advancing a does not advance b *)
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  check_bool "streams out of sync after divergence" false (va = vb)

let test_rng_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.bits64 a) in
  let ys = List.init 20 (fun _ -> Rng.bits64 b) in
  check_bool "split streams differ" false (xs = ys)

let test_rng_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    check_bool "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_shuffle_is_permutation () =
  let rng = Rng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 13 in
  let s = Rng.sample_without_replacement rng 10 20 in
  check_int "size" 10 (List.length s);
  check_int "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter (fun v -> check_bool "range" true (v >= 0 && v < 20)) s

let test_sample_full () =
  let rng = Rng.create 13 in
  let s = Rng.sample_without_replacement rng 5 5 in
  Alcotest.(check (list int)) "all elements" [ 0; 1; 2; 3; 4 ]
    (List.sort compare s)

let prop_rng_choose =
  QCheck.Test.make ~name:"Rng.choose returns a member" ~count:200
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 20) int))
    (fun (seed, l) ->
      QCheck.assume (l <> []);
      let rng = Rng.create seed in
      let a = Array.of_list l in
      List.mem (Rng.choose rng a) l)

(* ------------------------------------------------------------------ *)
(* Heap                                                                 *)

let test_heap_basic () =
  let h = Heap.create () in
  check_bool "empty" true (Heap.is_empty h);
  Heap.push h ~priority:3 "c";
  Heap.push h ~priority:1 "a";
  Heap.push h ~priority:2 "b";
  check_int "length" 3 (Heap.length h);
  Alcotest.(check (option string)) "peek" (Some "a") (Heap.peek_min h);
  Alcotest.(check (option string)) "pop a" (Some "a") (Heap.pop_min h);
  Alcotest.(check (option string)) "pop b" (Some "b") (Heap.pop_min h);
  Alcotest.(check (option string)) "pop c" (Some "c") (Heap.pop_min h);
  Alcotest.(check (option string)) "pop empty" None (Heap.pop_min h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h ~priority:1 "first";
  Heap.push h ~priority:1 "second";
  Heap.push h ~priority:1 "third";
  Alcotest.(check (option string)) "fifo 1" (Some "first") (Heap.pop_min h);
  Alcotest.(check (option string)) "fifo 2" (Some "second") (Heap.pop_min h);
  Alcotest.(check (option string)) "fifo 3" (Some "third") (Heap.pop_min h)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h ~priority:1 1;
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"Heap pops in non-decreasing priority" ~count:300
    QCheck.(list (int_bound 1000))
    (fun prios ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~priority:p p) prios;
      let rec drain acc =
        match Heap.pop_min h with
        | None -> List.rev acc
        | Some v -> drain (v :: acc)
      in
      let out = drain [] in
      out = List.sort compare prios)

(* ------------------------------------------------------------------ *)
(* Union_find                                                           *)

let test_uf_basic () =
  let uf = Union_find.create 5 in
  check_int "initial sets" 5 (Union_find.count uf);
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  check_int "after two unions" 3 (Union_find.count uf);
  check_bool "0~1" true (Union_find.same uf 0 1);
  check_bool "0~2" false (Union_find.same uf 0 2);
  Union_find.union uf 1 2;
  check_bool "0~3 transitively" true (Union_find.same uf 0 3);
  check_bool "4 alone" false (Union_find.same uf 0 4)

let test_uf_groups () =
  let uf = Union_find.create 6 in
  Union_find.union uf 0 2;
  Union_find.union uf 2 4;
  Union_find.union uf 1 5;
  let groups = Union_find.groups uf in
  let sorted = Array.to_list groups |> List.map (List.sort compare) in
  Alcotest.(check (list (list int)))
    "groups" [ [ 0; 2; 4 ]; [ 1; 5 ]; [ 3 ] ]
    (List.sort compare sorted)

let test_uf_idempotent_union () =
  let uf = Union_find.create 3 in
  Union_find.union uf 0 1;
  Union_find.union uf 0 1;
  check_int "count" 2 (Union_find.count uf)

(* ------------------------------------------------------------------ *)
(* Bitset                                                               *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  check_int "capacity" 100 (Bitset.capacity b);
  check_bool "63 absent" false (Bitset.mem b 63);
  Bitset.add b 63;
  Bitset.add b 0;
  Bitset.add b 99;
  check_bool "63 present" true (Bitset.mem b 63);
  check_int "cardinal" 3 (Bitset.cardinal b);
  Bitset.remove b 63;
  check_bool "63 removed" false (Bitset.mem b 63);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 99 ] (Bitset.to_list b)

let test_bitset_out_of_range () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add b 10)

let test_bitset_union_inter () =
  let a = Bitset.create 64 and b = Bitset.create 64 in
  List.iter (Bitset.add a) [ 1; 2; 3 ];
  List.iter (Bitset.add b) [ 3; 4 ];
  check_int "inter" 1 (Bitset.inter_cardinal a b);
  Bitset.union_into ~dst:a b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.to_list a)

let test_bitset_clear_copy () =
  let a = Bitset.create 10 in
  Bitset.add a 5;
  let c = Bitset.copy a in
  Bitset.clear a;
  check_int "cleared" 0 (Bitset.cardinal a);
  check_bool "copy unaffected" true (Bitset.mem c 5)

let prop_bitset_model =
  QCheck.Test.make ~name:"Bitset agrees with a set model" ~count:200
    QCheck.(list (pair bool (int_bound 199)))
    (fun ops ->
      let b = Bitset.create 200 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add b i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove b i;
            Hashtbl.remove model i
          end)
        ops;
      let expected = Hashtbl.fold (fun k () acc -> k :: acc) model [] in
      List.sort compare expected = Bitset.to_list b)

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)

let check_float = Alcotest.(check (float 1e-9))

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  check_float "empty" 0. (Stats.mean [])

let test_stats_geomean () =
  check_float "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [ 1.; 0. ]))

let test_stats_stddev () =
  check_float "constant" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  check_float "known" 2. (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_stats_minmax_percentile () =
  let lo, hi = Stats.min_max [ 3.; 1.; 2. ] in
  check_float "min" 1. lo;
  check_float "max" 3. hi;
  check_float "p50" 2. (Stats.percentile 50. [ 1.; 2.; 3. ]);
  check_float "p100" 3. (Stats.percentile 100. [ 1.; 2.; 3. ])

let test_stats_histogram () =
  let h = Stats.histogram ~buckets:2 [ 0.; 1.; 2.; 3. ] in
  check_int "buckets" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  check_int "total" 4 (c0 + c1)

(* Regression: all-equal samples used to spread over [buckets] fabricated
   one-wide buckets; the degenerate range must collapse to one bucket. *)
let test_stats_histogram_degenerate () =
  let h = Stats.histogram ~buckets:4 [ 2.5; 2.5; 2.5 ] in
  check_int "single bucket" 1 (Array.length h);
  let lo, hi, c = h.(0) in
  check_float "lo" 2.5 lo;
  check_float "hi" 2.5 hi;
  check_int "count" 3 c

(* ------------------------------------------------------------------ *)
(* Tableprint                                                           *)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t =
    Tableprint.create
      ~headers:[ ("name", Tableprint.Left); ("value", Tableprint.Right) ]
  in
  Tableprint.add_row t [ "alpha"; "1" ];
  Tableprint.add_separator t;
  Tableprint.add_row t [ "b"; "22" ];
  let s = Tableprint.render t in
  check_bool "has header" true (String.length s > 0 && String.sub s 0 1 = "|");
  check_bool "mentions alpha" true (contains_substring s "alpha")

let test_table_arity () =
  let t = Tableprint.create ~headers:[ ("a", Tableprint.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Tableprint.add_row: arity mismatch")
    (fun () -> Tableprint.add_row t [ "x"; "y" ])

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Tableprint.float_cell 3.14159);
  Alcotest.(check string) "si K" "1.34K" (Tableprint.si_cell 1340.);
  Alcotest.(check string) "si M" "2.10M" (Tableprint.si_cell 2.1e6);
  Alcotest.(check string) "si plain" "512" (Tableprint.si_cell 512.)


(* ------------------------------------------------------------------ *)
(* Parallel                                                             *)

let test_parallel_matches_sequential () =
  let xs = List.init 50 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "same results" (List.map f xs)
    (Qec_util.Parallel.map ~domains:4 f xs)

let test_parallel_preserves_order () =
  let xs = List.init 20 (fun i -> 20 - i) in
  Alcotest.(check (list int)) "order" xs
    (Qec_util.Parallel.map ~domains:3 (fun x -> x) xs)

let test_parallel_small_inputs () =
  Alcotest.(check (list int)) "empty" [] (Qec_util.Parallel.map (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Qec_util.Parallel.map (fun x -> x + 2) [ 5 ])

let test_parallel_exceptions_propagate () =
  check_bool "raises" true
    (match
       Qec_util.Parallel.map ~domains:2
         (fun x -> if x = 3 then failwith "boom" else x)
         [ 1; 2; 3; 4 ]
     with
    | exception _ -> true
    | _ -> false)

let test_parallel_default_domains () =
  check_bool "at least one" true (Qec_util.Parallel.default_domains () >= 1)

let test_queue_drains_each_item_once () =
  let q = Qec_util.Parallel.Queue.of_list [ "a"; "b"; "c" ] in
  check_int "length" 3 (Qec_util.Parallel.Queue.length q);
  Alcotest.(check (option (pair int string)))
    "first" (Some (0, "a"))
    (Qec_util.Parallel.Queue.pop q);
  check_int "remaining" 2 (Qec_util.Parallel.Queue.remaining q);
  Alcotest.(check (option (pair int string)))
    "second" (Some (1, "b"))
    (Qec_util.Parallel.Queue.pop q);
  Alcotest.(check (option (pair int string)))
    "third" (Some (2, "c"))
    (Qec_util.Parallel.Queue.pop q);
  Alcotest.(check (option (pair int string)))
    "drained" None
    (Qec_util.Parallel.Queue.pop q);
  check_int "remaining stays 0" 0 (Qec_util.Parallel.Queue.remaining q)

let test_queue_concurrent_no_duplicates () =
  let n = 1000 in
  let q = Qec_util.Parallel.Queue.of_list (List.init n (fun i -> i)) in
  let seen = Array.make n 0 in
  Qec_util.Parallel.run_workers ~jobs:4 (fun _id ->
      let rec loop () =
        match Qec_util.Parallel.Queue.pop q with
        | None -> ()
        | Some (idx, item) ->
          check_int "index matches item" item idx;
          (* each slot is written exactly once, so plain stores suffice *)
          seen.(idx) <- seen.(idx) + 1;
          loop ()
      in
      loop ());
  Array.iteri (fun i c -> check_int (Printf.sprintf "item %d once" i) 1 c) seen

let test_run_workers_ids_and_exceptions () =
  let ids = Array.make 3 (-1) in
  Qec_util.Parallel.run_workers ~jobs:3 (fun id -> ids.(id) <- id);
  Alcotest.(check (array int)) "each id runs" [| 0; 1; 2 |] ids;
  check_bool "worker exception propagates" true
    (match
       Qec_util.Parallel.run_workers ~jobs:2 (fun id ->
           if id = 1 then failwith "boom")
     with
    | exception Failure _ -> true
    | () -> false)

let test_map_jobs_matches_sequential () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * 3) - 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (List.map f xs)
        (Qec_util.Parallel.map_jobs ~jobs f xs))
    [ 1; 2; 7 ]

let test_parallel_sweep_equals_sequential () =
  let timing = Qec_surface.Timing.make ~d:33 () in
  let c =
    Qec_circuit.Circuit.create ~num_qubits:9
      (List.init 20 (fun i -> Qec_circuit.Gate.Cx (i mod 9, (i + 1) mod 9))
      |> List.filter (fun g ->
             match Qec_circuit.Gate.two_qubit_operands g with
             | Some (a, b) -> a <> b
             | None -> true))
  in
  let pts = [ 0.0; 0.3; 0.6 ] in
  let seq, _ = Autobraid.Scheduler.run_best_p ~grid_points:pts timing c in
  let par, curve =
    Autobraid.Scheduler.run_best_p ~grid_points:pts ~parallel:true timing c
  in
  check_int "same best" seq.Autobraid.Scheduler.total_cycles
    par.Autobraid.Scheduler.total_cycles;
  check_int "full curve" 3 (List.length curve);
  (* ?jobs is the replacement API for the deprecated ?parallel flag *)
  let jobs4, curve4 =
    Autobraid.Scheduler.run_best_p ~grid_points:pts ~jobs:4 timing c
  in
  check_int "jobs same best" seq.Autobraid.Scheduler.total_cycles
    jobs4.Autobraid.Scheduler.total_cycles;
  check_bool "jobs same curve" true
    (List.for_all2
       (fun (p1, r1) (p2, r2) ->
         p1 = p2
         && r1.Autobraid.Scheduler.total_cycles
            = r2.Autobraid.Scheduler.total_cycles)
       curve curve4)

let () =
  Alcotest.run "qec_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_different_seeds;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample distinct" `Quick test_sample_without_replacement;
          Alcotest.test_case "sample full" `Quick test_sample_full;
          QCheck_alcotest.to_alcotest prop_rng_choose;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic order" `Quick test_heap_basic;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "groups" `Quick test_uf_groups;
          Alcotest.test_case "idempotent" `Quick test_uf_idempotent_union;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "out of range" `Quick test_bitset_out_of_range;
          Alcotest.test_case "union/inter" `Quick test_bitset_union_inter;
          Alcotest.test_case "clear/copy" `Quick test_bitset_clear_copy;
          QCheck_alcotest.to_alcotest prop_bitset_model;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "minmax/percentile" `Quick test_stats_minmax_percentile;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "histogram degenerate" `Quick
            test_stats_histogram_degenerate;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "order" `Quick test_parallel_preserves_order;
          Alcotest.test_case "small inputs" `Quick test_parallel_small_inputs;
          Alcotest.test_case "exceptions" `Quick test_parallel_exceptions_propagate;
          Alcotest.test_case "default domains" `Quick test_parallel_default_domains;
          Alcotest.test_case "queue drains" `Quick test_queue_drains_each_item_once;
          Alcotest.test_case "queue concurrent" `Quick test_queue_concurrent_no_duplicates;
          Alcotest.test_case "run_workers" `Quick test_run_workers_ids_and_exceptions;
          Alcotest.test_case "map_jobs" `Quick test_map_jobs_matches_sequential;
          Alcotest.test_case "sweep equivalence" `Quick test_parallel_sweep_equals_sequential;
        ] );
      ( "tableprint",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
    ]
