(* Paper-scale known-answer tests: pin the exact schedule the compiler
   produces for QFT-100, BV-64, and a large RevLib MCT circuit on both
   the braid and lookahead backends, at small code distance (d = 5) so
   the whole file stays inside CI time. Cycle counts are deterministic
   functions of the circuit, the fixed seed, and d -- any drift here is
   a real scheduling change, not noise. A wall-clock budget assertion
   (override with AUTOBRAID_SCALE_BUDGET_S) guards the hot paths these
   circuits exercise: if the bitset frontier, packed interference graph
   or arena router regress, this file times out long before the full
   bench sweep would notice. *)

module S = Autobraid.Scheduler
module L = Qec_lookahead.Lookahead_scheduler
module B = Qec_benchmarks

(* Small d keeps per-round cycle arithmetic cheap without changing the
   round structure: d scales cycles, not the schedule. *)
let timing = Qec_surface.Timing.make ~d:5 ()

let budget_s () =
  match Sys.getenv_opt "AUTOBRAID_SCALE_BUDGET_S" with
  | Some s -> (try float_of_string s with _ -> 240.)
  | None -> 240.

let check_int = Alcotest.(check int)

(* Known answers, computed once at d = 5 with the default seed. The
   lookahead backend is never worse than braid by construction, so its
   pinned cycle count must be <= the braid one. *)
type expect = {
  name : string;
  circuit : unit -> Qec_circuit.Circuit.t;
  braid_cycles : int;
  braid_rounds : int;
  lookahead_cycles : int;
}

let expectations =
  [
    { name = "qft100";
      circuit = (fun () -> B.Qft.circuit 100);
      braid_cycles = 5840; braid_rounds = 585; lookahead_cycles = 5670 };
    { name = "bv64";
      circuit = (fun () -> B.Bv.circuit 64);
      braid_cycles = 640; braid_rounds = 65; lookahead_cycles = 640 };
    { name = "urf2_277";
      circuit = (fun () -> B.Building_blocks.by_name "urf2_277");
      braid_cycles = 92355; braid_rounds = 11270; lookahead_cycles = 92355 };
  ]

let elapsed = ref 0.

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
  r

let test_braid_known_answer e () =
  let c = e.circuit () in
  let r = timed (fun () -> S.run timing c) in
  check_int (e.name ^ " braid cycles") e.braid_cycles r.S.total_cycles;
  check_int (e.name ^ " braid rounds") e.braid_rounds r.S.rounds

let test_lookahead_known_answer e () =
  let c = e.circuit () in
  let r, _trace, _stats = timed (fun () -> L.run_traced timing c) in
  check_int (e.name ^ " lookahead cycles") e.lookahead_cycles
    r.S.total_cycles;
  if r.S.total_cycles > e.braid_cycles then
    Alcotest.failf "%s: lookahead (%d cycles) worse than braid (%d)" e.name
      r.S.total_cycles e.braid_cycles

let test_wall_budget () =
  (* Runs last: the scheduler time accumulated by the known-answer tests
     above must fit the budget. This is the regression tripwire for the
     hot-path rewrites -- the seed compiler fits comfortably, so a
     failure means a superlinear slowdown crept back in. *)
  let budget = budget_s () in
  if !elapsed > budget then
    Alcotest.failf "scale tests took %.1f s, budget %.1f s (override with \
                    AUTOBRAID_SCALE_BUDGET_S)" !elapsed budget

let () =
  Alcotest.run "qec_scale"
    [
      ( "braid known answers",
        List.map
          (fun e ->
            Alcotest.test_case e.name `Slow (test_braid_known_answer e))
          expectations );
      ( "lookahead known answers",
        List.map
          (fun e ->
            Alcotest.test_case e.name `Slow (test_lookahead_known_answer e))
          expectations );
      ( "wall budget",
        [ Alcotest.test_case "within budget" `Slow test_wall_budget ] );
    ]
