(* autobraid — command-line front end.

   Subcommands:
     compile    schedule a circuit and report latency/utilization
     schedule   same, through a selectable communication backend
                (braid / surgery / lookahead / compare; docs/backends.md)
     backends   list registered backends and their --backend-opt schemas
     batch      compile a JSON manifest of specs on a multicore worker
                pool with a shared placement cache (see docs/engine.md)
     info       static analysis: sizes, depth, parallelism, LLG census
     lint       span-aware diagnostics (QLxxx rules, see docs/lint.md)
     verify     independent schedule certification (docs/verify.md)
     resources  surface-code resource estimates for a qubit count / target P_L
     emit       write a built-in benchmark as OpenQASM 2.0
     sweep      p-threshold sensitivity sweep (Fig. 18 style)

   Circuits are named either by a built-in benchmark ("qft50", "urf2_277",
   see `autobraid list`) or by a path to a .qasm / .real file. *)

open Cmdliner

(* Backends resolve by registry name everywhere (--backend, batch specs);
   register the built-ins before any command parses. *)
let () = Qec_engine.Engine.ensure_backends ()

(* Malformed inputs must exit 1 with file:line:col, never an OCaml
   backtrace. Every subcommand body runs under this guard. *)
let guarded spec f =
  let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt in
  try f () with
  | Qec_qasm.Lexer.Error { line; col; msg } -> die "%s:%d:%d: %s" spec line col msg
  | Qec_qasm.Parser.Error { line; col; msg } -> die "%s:%d:%d: %s" spec line col msg
  | Qec_qasm.Frontend.Unsupported { pos = Some { line; col }; msg } ->
    die "%s:%d:%d: %s" spec line col msg
  | Qec_qasm.Frontend.Unsupported { pos = None; msg } -> die "%s: %s" spec msg
  | Qec_revlib.Real_parser.Error { line; msg } -> die "%s:%d: %s" spec line msg
  | Qec_circuit.Circuit.Invalid msg -> die "%s: invalid circuit: %s" spec msg
  | Sys_error msg -> die "%s" msg

let load_circuit spec =
  if Sys.file_exists spec then
    if Filename.check_suffix spec ".real" then
      Qec_revlib.Real_parser.of_file spec
    else Qec_qasm.Frontend.of_file spec
  else
    match Qec_benchmarks.Registry.build spec with
    | c -> c
    | exception Not_found ->
      Printf.eprintf
        "unknown circuit %S (not a file, not a benchmark; try `autobraid \
         list`)\n"
        spec;
      exit 2

(* ---------------- common args ---------------- *)

let circuit_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"CIRCUIT" ~doc:"Benchmark name (e.g. qft50) or file path")

let distance_arg =
  Arg.(
    value
    & opt int Qec_surface.Timing.default_d
    & info [ "d"; "distance" ] ~docv:"D" ~doc:"Surface code distance")

let seed_arg =
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"N" ~doc:"Random seed")

let threshold_arg =
  Arg.(
    value
    & opt float 0.3
    & info [ "p"; "threshold" ] ~docv:"P"
        ~doc:"Layout-optimizer trigger threshold in [0,1)")

let scheduler_kind =
  Arg.enum [ ("full", `Full); ("sp", `Sp); ("baseline", `Baseline) ]

let scheduler_arg =
  Arg.(
    value
    & opt scheduler_kind `Full
    & info [ "s"; "scheduler" ] ~docv:"KIND"
        ~doc:"Scheduler: full (autobraid), sp (no layout opt), baseline (GP)")

let initial_kind =
  Arg.enum
    [
      ("identity", Autobraid.Initial_layout.Identity);
      ("bisect", Autobraid.Initial_layout.Bisected);
      ("metis", Autobraid.Initial_layout.Partitioned);
      ("anneal", Autobraid.Initial_layout.Annealed);
    ]

let initial_arg =
  Arg.(
    value
    & opt initial_kind Autobraid.Initial_layout.Annealed
    & info [ "initial" ] ~docv:"METHOD"
        ~doc:"Initial placement: identity, metis, anneal")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run the peephole optimizer (inverse cancellation, rotation \
              merging) before scheduling")

let best_p_arg =
  Arg.(
    value & flag
    & info [ "best-p" ]
        ~doc:"Sweep p over 0.0-0.9 and keep the best (slower)")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:"Independently certify the schedule's trace after the run \
              (Qec_verify; docs/verify.md); a failed certificate exits 1")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Collect telemetry and print counter / per-phase self-time \
              summaries after the run")

let telemetry_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-out" ] ~docv:"FILE.jsonl"
        ~doc:"Stream telemetry records (spans, counters, gauges, \
              histograms) to FILE as JSON lines; see docs/observability.md")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE.json"
        ~doc:"Write a Chrome trace-event (Perfetto) trace to FILE — one \
              lane per worker domain; open it at ui.perfetto.dev (see \
              docs/observability.md)")

(* ---------------- per-backend options (--backend-opt) ---------------- *)

(* The declared specs a spec's backend_options decode against: the
   registry entry's, or the baseline codec when the spec runs the
   baseline scheduler (it is not in the registry). An unknown backend
   yields the empty schema; the engine reports the name error itself. *)
let option_specs_for (s : Qec_engine.Spec.t) =
  if s.Qec_engine.Spec.scheduler = Qec_engine.Spec.Baseline then
    Gp_baseline.options_spec
  else
    match Autobraid.Comm_backend.of_name s.Qec_engine.Spec.backend with
    | Some e -> e.Autobraid.Comm_backend.options
    | None -> []

let parse_backend_opts specs raw =
  List.map
    (fun arg ->
      match Autobraid.Comm_backend.Options.parse_kv specs arg with
      | Ok kv -> kv
      | Error msg ->
        Printf.eprintf "--backend-opt: %s\n" msg;
        exit 2)
    raw

let backend_opt_arg =
  Arg.(
    value & opt_all string []
    & info [ "backend-opt" ] ~docv:"KEY=VALUE"
        ~doc:
          "Backend-specific option (repeatable), checked against the \
           backend's declared schema — `autobraid backends` lists every \
           key. Supersedes the braid-only -p/-s spellings, which survive \
           as compatibility aliases.")

(* What a SIGINT/SIGTERM must flush before the process dies. Long
   commands (batch, fuzz, serve client runs) install the handlers; the
   hook is populated by with_telemetry while sinks are live, so an
   interrupted run still gets its --telemetry-out file closed and its
   --trace-out Perfetto trace written (the placement cache needs no
   flushing — it persists entries as they are inserted). The handler
   exits directly instead of raising: an exception from a signal handler
   would surface at an arbitrary safe point and be swallowed by the
   engine's per-job catch-all. *)
let signal_flush_hook : (unit -> unit) ref = ref (fun () -> ())

let install_interrupt_flush () =
  let handle signum =
    !signal_flush_hook ();
    (* [signum] is OCaml's portable (negative) signal number, not the OS
       one — map it back so the exit code is the conventional 128+N. *)
    let os = if signum = Sys.sigterm then 15 else 2 in
    Stdlib.exit (128 + os)
  in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handle)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

(* Install the requested sinks around [f], then print the --metrics
   summary after whatever [f] printed itself and write the --trace-out
   Perfetto file. *)
let with_telemetry ~metrics ~telemetry_out ~trace_out f =
  if (not metrics) && telemetry_out = None && trace_out = None then f ()
  else begin
    let collector =
      if metrics then Some (Qec_telemetry.Collector.create ()) else None
    in
    (* Perfetto export needs the whole record set, so --trace-out rides on
       its own collector and renders after the run. *)
    let trace_collector =
      Option.map (fun _ -> Qec_telemetry.Collector.create ()) trace_out
    in
    let sinks =
      List.filter_map
        (Option.map Qec_telemetry.Collector.sink)
        [ collector; trace_collector ]
      @
      match telemetry_out with
      | Some path -> begin
        match open_out path with
        | oc -> [ Qec_telemetry.Jsonl.channel_sink ~close:true oc ]
        | exception Sys_error msg ->
          Printf.eprintf "cannot open telemetry output: %s\n" msg;
          exit 2
      end
      | None -> []
    in
    let write_trace () =
      match (trace_out, trace_collector) with
      | Some path, Some c -> begin
        match Qec_obs.Perfetto.write path c with
        | () -> Ok ()
        | exception Sys_error msg -> Error msg
      end
      | _ -> Ok ()
    in
    signal_flush_hook :=
      (fun () ->
        (* uninstall = flush aggregates + close sinks (the --telemetry-out
           channel sink closes its file here) *)
        Qec_telemetry.Telemetry.uninstall ();
        ignore (write_trace ()));
    let result =
      Fun.protect
        ~finally:(fun () -> signal_flush_hook := fun () -> ())
        (fun () ->
          Qec_telemetry.Telemetry.with_sink
            (Qec_telemetry.Telemetry.tee sinks)
            f)
    in
    Option.iter
      (fun c ->
        print_newline ();
        Qec_telemetry.Collector.print_summary c)
      collector;
    (match write_trace () with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "cannot write trace: %s\n" msg;
      exit 2);
    result
  end

(* ---------------- compile ---------------- *)

let print_result timing (r : Autobraid.Scheduler.result) =
  let t = Qec_util.Tableprint.create
      ~headers:[ ("metric", Qec_util.Tableprint.Left); ("value", Qec_util.Tableprint.Right) ]
  in
  let add k v = Qec_util.Tableprint.add_row t [ k; v ] in
  add "circuit" r.name;
  add "logical qubits" (string_of_int r.num_qubits);
  add "lattice" (Printf.sprintf "%dx%d tiles" r.lattice_side r.lattice_side);
  add "gates (lowered)" (string_of_int r.num_gates);
  add "two-qubit gates" (string_of_int r.num_two_qubit);
  add "rounds" (string_of_int r.rounds);
  add "braid rounds" (string_of_int r.braid_rounds);
  add "swap layers" (string_of_int r.swap_layers);
  add "swaps inserted" (string_of_int r.swaps_inserted);
  add "total cycles" (string_of_int r.total_cycles);
  add "execution time"
    (Printf.sprintf "%s us"
       (Qec_util.Tableprint.si_cell (Autobraid.Scheduler.time_us timing r)));
  add "critical path"
    (Printf.sprintf "%s us"
       (Qec_util.Tableprint.si_cell
          (Autobraid.Scheduler.critical_path_us timing r)));
  add "vs critical path"
    (Printf.sprintf "%.2fx"
       (float_of_int r.total_cycles /. float_of_int (max 1 r.critical_path_cycles)));
  add "avg utilization" (Printf.sprintf "%.1f%%" (100. *. r.avg_utilization));
  add "peak utilization" (Printf.sprintf "%.1f%%" (100. *. r.peak_utilization));
  add "compile time" (Printf.sprintf "%.3f s" r.compile_time_s);
  let exposure = Autobraid.Reliability.exposure_of_result timing r in
  add "exposure"
    (Printf.sprintf "%.0f qubit-blocks"
       (Autobraid.Reliability.total_blocks exposure));
  add "failure prob."
    (Printf.sprintf "%.2e"
       (Autobraid.Reliability.failure_probability ~d:timing.Qec_surface.Timing.d
          exposure));
  Qec_util.Tableprint.print t

(* `compile` and `schedule` are thin wrappers over the same Spec ->
   Engine.run_spec path: their byte-identity on the braid backend is
   structural, not promised by keeping two argument lists in sync. *)

let engine_error_exit (e : Qec_engine.Engine.error) =
  if e.Qec_engine.Engine.kind = "circuit-not-found" then 2 else 1

(* compile-style diagnostics: the bare message on stderr (same text the
   old guarded path printed), exit 2 for unknown circuits, 1 otherwise. *)
let die_engine_text (e : Qec_engine.Engine.error) =
  prerr_endline e.Qec_engine.Engine.message;
  exit (engine_error_exit e)

(* schedule-style diagnostics: the same structured JSONL error record a
   batch would emit for this job, on stderr. *)
let die_engine_jsonl spec (e : Qec_engine.Engine.error) =
  let job =
    {
      Qec_engine.Engine.index = 0;
      spec;
      elapsed_s = 0.;
      cache = Qec_engine.Engine.Uncached;
      outcome = Error e;
    }
  in
  prerr_endline (Qec_report.Json.to_string (Qec_engine.Engine.job_to_json job));
  exit (engine_error_exit e)

let print_peephole (payload : Qec_engine.Engine.payload) =
  match payload.Qec_engine.Engine.peephole with
  | None -> ()
  | Some (stats, before, after) ->
    Printf.printf
      "peephole: cancelled %d pairs, merged %d rotations (%d -> %d gates)\n"
      stats.Qec_circuit.Optimize.cancelled_pairs
      stats.Qec_circuit.Optimize.merged_rotations before after

(* Render a payload's certificate (when one was requested) and return
   whether it failed — callers turn that into exit 1. *)
let print_certificate (payload : Qec_engine.Engine.payload) =
  match payload.Qec_engine.Engine.certificate with
  | None -> false
  | Some cert ->
    print_newline ();
    print_endline (Qec_verify.Certifier.to_summary cert);
    List.iter
      (fun inv ->
        List.iter
          (fun w ->
            print_endline ("  " ^ Qec_verify.Certifier.witness_to_string w))
          (Qec_verify.Certifier.witnesses_for cert inv))
      (Qec_verify.Certifier.failed cert);
    not (Qec_verify.Certifier.ok cert)

let compile_cmd =
  let run spec d seed p sched initial backend_opts best_p optimize certify
      metrics telemetry_out trace_out =
    let code =
      with_telemetry ~metrics ~telemetry_out ~trace_out @@ fun () ->
      let timing = Qec_surface.Timing.make ~d () in
      let s =
        {
          Qec_engine.Spec.default with
          circuit = spec;
          scheduler =
            (match sched with
            | `Full -> Qec_engine.Spec.Full
            | `Sp -> Qec_engine.Spec.Sp
            | `Baseline -> Qec_engine.Spec.Baseline);
          d;
          seed;
          threshold_p = p;
          initial;
          optimize;
          best_p = best_p && sched = `Full;
          outputs = { Qec_engine.Spec.default.outputs with certificate = certify };
        }
      in
      let s =
        {
          s with
          Qec_engine.Spec.backend_options =
            parse_backend_opts (option_specs_for s) backend_opts;
        }
      in
      match Qec_engine.Engine.run_spec s with
      | Error e -> die_engine_text e
      | Ok payload ->
        print_peephole payload;
        print_result timing payload.Qec_engine.Engine.result;
        if print_certificate payload then 1 else 0
    in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Schedule a circuit's braiding paths")
    Term.(
      const run $ circuit_arg $ distance_arg $ seed_arg $ threshold_arg
      $ scheduler_arg $ initial_arg $ backend_opt_arg $ best_p_arg
      $ optimize_arg $ certify_arg $ metrics_arg $ telemetry_out_arg
      $ trace_out_arg)

(* ---------------- schedule (pluggable backend) ---------------- *)

let print_backend_stats = function
  | [] -> ()
  | stats ->
    print_newline ();
    print_endline "backend stats:";
    List.iter
      (fun (k, v) ->
        if Float.is_integer v then Printf.printf "  %-20s %.0f\n" k v
        else Printf.printf "  %-20s %.2f\n" k v)
      stats

(* One column per backend, first column is the reference the speedup
   lines divide by (the braid baseline in compare mode). *)
let print_comparison timing
    (results : (string * Autobraid.Scheduler.result) list) =
  match results with
  | [] -> ()
  | (base_name, base) :: rest ->
    let t =
      Qec_util.Tableprint.create
        ~headers:
          (("metric", Qec_util.Tableprint.Left)
          :: List.map (fun (n, _) -> (n, Qec_util.Tableprint.Right)) results)
    in
    let add k f =
      Qec_util.Tableprint.add_row t (k :: List.map (fun (_, r) -> f r) results)
    in
    add "total cycles" (fun r ->
        string_of_int r.Autobraid.Scheduler.total_cycles);
    add "execution time (us)" (fun r ->
        Qec_util.Tableprint.si_cell (Autobraid.Scheduler.time_us timing r));
    add "rounds" (fun r -> string_of_int r.Autobraid.Scheduler.rounds);
    add "comm rounds" (fun r ->
        string_of_int r.Autobraid.Scheduler.braid_rounds);
    add "swap layers" (fun r ->
        string_of_int r.Autobraid.Scheduler.swap_layers);
    add "swaps inserted" (fun r ->
        string_of_int r.Autobraid.Scheduler.swaps_inserted);
    add "avg utilization" (fun r ->
        Printf.sprintf "%.1f%%" (100. *. r.Autobraid.Scheduler.avg_utilization));
    add "peak utilization" (fun r ->
        Printf.sprintf "%.1f%%"
          (100. *. r.Autobraid.Scheduler.peak_utilization));
    Qec_util.Tableprint.print t;
    print_newline ();
    List.iter
      (fun (n, (r : Autobraid.Scheduler.result)) ->
        Printf.printf "speedup (%s/%s cycles): %.2fx\n" base_name n
          (float_of_int base.Autobraid.Scheduler.total_cycles
          /. float_of_int (max 1 r.Autobraid.Scheduler.total_cycles)))
      rest

let schedule_cmd =
  let run spec backend d seed p initial backend_opts certify metrics
      telemetry_out trace_out =
    let code =
      with_telemetry ~metrics ~telemetry_out ~trace_out @@ fun () ->
      let timing = Qec_surface.Timing.make ~d () in
      if backend = "compare" && backend_opts <> [] then begin
        (* Each backend has its own schema; one key=value list cannot
           target three of them at once. *)
        prerr_endline "--backend-opt does not apply to --backend compare";
        exit 2
      end;
      let spec_for name =
        let s =
          {
            Qec_engine.Spec.default with
            circuit = spec;
            backend = name;
            d;
            seed;
            threshold_p = p;
            initial;
            outputs =
              { Qec_engine.Spec.default.outputs with certificate = certify };
          }
        in
        {
          s with
          Qec_engine.Spec.backend_options =
            parse_backend_opts (option_specs_for s) backend_opts;
        }
      in
      let run_one name =
        let s = spec_for name in
        match Qec_engine.Engine.run_spec s with
        | Error e -> die_engine_jsonl s e
        | Ok payload -> payload
      in
      match backend with
      | "compare" ->
        let payloads = List.map run_one [ "braid"; "surgery"; "lookahead" ] in
        print_comparison timing
          (List.map
             (fun (p : Qec_engine.Engine.payload) ->
               (p.Qec_engine.Engine.backend, p.Qec_engine.Engine.result))
             payloads);
        let failures = List.map print_certificate payloads in
        if List.exists Fun.id failures then 1 else 0
      | name ->
        let payload = run_one name in
        print_result timing payload.Qec_engine.Engine.result;
        print_backend_stats payload.Qec_engine.Engine.stats;
        if print_certificate payload then 1 else 0
    in
    if code <> 0 then exit code
  in
  let backend_arg =
    (* Valid names come from the Comm_backend registry, not a hand-rolled
       match; `compare` stays a schedule-level mode on top. *)
    let parse s =
      if s = "compare" || Autobraid.Comm_backend.of_name s <> None then Ok s
      else
        Error
          (`Msg
            (Printf.sprintf "unknown backend %S (expected %s or compare)" s
               (String.concat ", " (Autobraid.Comm_backend.names ()))))
    in
    let backend_conv = Arg.conv (parse, Format.pp_print_string) in
    Arg.(
      value & opt backend_conv "braid"
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            (Printf.sprintf
               "Communication backend (registered: %s), or compare (run \
                braid, surgery and lookahead, print a side-by-side table)"
               (String.concat ", "
                  (List.map
                     (fun (e : Autobraid.Comm_backend.entry) ->
                       Printf.sprintf "%s (%s)" e.Autobraid.Comm_backend.name
                         e.Autobraid.Comm_backend.description)
                     (Autobraid.Comm_backend.all ())))))
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Schedule a circuit through a pluggable communication backend")
    Term.(
      const run $ circuit_arg $ backend_arg $ distance_arg $ seed_arg
      $ threshold_arg $ initial_arg $ backend_opt_arg $ certify_arg
      $ metrics_arg $ telemetry_out_arg $ trace_out_arg)

(* ---------------- batch ---------------- *)

let batch_cmd =
  let run manifest jobs cache_dir out timings backend_opts certify metrics
      telemetry_out trace_out =
    (* A batch is the long-running command: Ctrl-C / SIGTERM mid-run must
       still flush the telemetry sinks (cache entries persist as they are
       inserted, so the cache needs nothing). *)
    install_interrupt_flush ();
    (* Returns the exit code out of the wrapper instead of exiting inline:
       [exit] does not unwind, and a failed job must not skip the
       --trace-out / --telemetry-out flush. *)
    let code =
      with_telemetry ~metrics ~telemetry_out ~trace_out @@ fun () ->
    let text =
      match
        let ic = open_in_bin manifest in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
      with
      | s -> s
      | exception Sys_error msg ->
        prerr_endline msg;
        exit 2
    in
    let specs =
      match Qec_engine.Spec.manifest_of_string text with
      | Ok specs -> specs
      | Error msg ->
        Printf.eprintf "%s: %s\n" manifest msg;
        exit 2
    in
    let specs =
      if certify then
        List.map
          (fun (s : Qec_engine.Spec.t) ->
            { s with outputs = { s.outputs with certificate = true } })
          specs
      else specs
    in
    let specs =
      (* Appended after each job's own options, so the command line wins;
         every job's backend must accept every given key. *)
      match backend_opts with
      | [] -> specs
      | raw ->
        List.map
          (fun (s : Qec_engine.Spec.t) ->
            {
              s with
              Qec_engine.Spec.backend_options =
                s.Qec_engine.Spec.backend_options
                @ parse_backend_opts (option_specs_for s) raw;
            })
          specs
    in
    let cache = Qec_engine.Placement_cache.create ?dir:cache_dir () in
    let t0 = Unix.gettimeofday () in
    let results = Qec_engine.Engine.run_batch ?jobs ~cache specs in
    let elapsed = Unix.gettimeofday () -. t0 in
    let jsonl = Qec_engine.Engine.jobs_to_jsonl ~timings results in
    (match out with
    | None -> print_string jsonl
    | Some path ->
      let oc = open_out path in
      output_string oc jsonl;
      close_out oc);
    let failed = Qec_engine.Engine.errors results in
    let uncertified =
      List.filter
        (fun (j : Qec_engine.Engine.job) ->
          match j.Qec_engine.Engine.outcome with
          | Ok { Qec_engine.Engine.certificate = Some c; _ } ->
            not (Qec_verify.Certifier.ok c)
          | _ -> false)
        results
    in
    let k = Qec_engine.Placement_cache.counters cache in
    Printf.eprintf
      "batch: %d jobs, %d ok, %d failed; placement cache %d+%d hits / %d \
       misses; %.2f s\n"
      (List.length results)
      (List.length results - List.length failed)
      (List.length failed)
      k.Qec_engine.Placement_cache.memory_hits
      k.Qec_engine.Placement_cache.disk_hits
      k.Qec_engine.Placement_cache.misses elapsed;
      if uncertified <> [] then
        Printf.eprintf "batch: %d job(s) failed certification\n"
          (List.length uncertified);
      if failed <> [] || uncertified <> [] then 1 else 0
    in
    if code <> 0 then exit code
  in
  let manifest_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MANIFEST"
          ~doc:
            "JSON manifest: an array of compile specs, or {\"version\": 1, \
             \"jobs\": [...]} — see docs/engine.md for the schema")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: available cores)")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist the content-addressed placement cache in DIR (created \
             if missing); warm runs skip the annealing cost")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE.jsonl"
          ~doc:"Write results as JSON lines to FILE (default stdout)")
  in
  let timings_arg =
    Arg.(
      value & flag
      & info [ "timings" ]
          ~doc:
            "Include per-job wall time and cache status in each record \
             (non-deterministic fields, off by default so output is \
             byte-stable)")
  in
  let batch_certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Force the certificate output on every job: each worker \
             independently certifies its own schedule (docs/verify.md); \
             any failed certificate makes the batch exit 1")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Compile a manifest of specs on a multicore worker pool with a \
          shared placement cache. Results stream to JSONL in manifest \
          order (byte-identical for any --jobs); per-job failures become \
          structured error records, and the exit code is 1 when any job \
          failed, 2 on an unusable manifest, 0 otherwise.")
    Term.(
      const run $ manifest_arg $ jobs_arg $ cache_dir_arg $ out_arg
      $ timings_arg $ backend_opt_arg $ batch_certify_arg $ metrics_arg
      $ telemetry_out_arg $ trace_out_arg)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let run target backend d seed repeat jobs json trace_out =
    (* TARGET is a batch manifest when it is a JSON file, else a single
       circuit spec built from the compile-style flags. *)
    let specs =
      if Sys.file_exists target && Filename.check_suffix target ".json" then begin
        let text =
          match
            let ic = open_in_bin target in
            let len = in_channel_length ic in
            let s = really_input_string ic len in
            close_in ic;
            s
          with
          | s -> s
          | exception Sys_error msg ->
            prerr_endline msg;
            exit 2
        in
        match Qec_engine.Spec.manifest_of_string text with
        | Ok specs -> specs
        | Error msg ->
          Printf.eprintf "%s: %s\n" target msg;
          exit 2
      end
      else
        [ { Qec_engine.Spec.default with circuit = target; backend; d; seed } ]
    in
    let report, collector = Qec_obs.Profile.run ?jobs ~repeat specs in
    if json then
      print_endline
        (Qec_report.Json.to_string ~indent:true (Qec_obs.Profile.to_json report))
    else Qec_obs.Profile.print report;
    (match trace_out with
    | None -> ()
    | Some path -> begin
      match Qec_obs.Perfetto.write path collector with
      | () -> if not json then Printf.printf "\nwrote %s\n" path
      | exception Sys_error msg ->
        Printf.eprintf "cannot write trace: %s\n" msg;
        exit 2
    end);
    if report.Qec_obs.Profile.jobs_failed > 0 then exit 1
  in
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"Circuit (benchmark name or .qasm/.real path) or a batch \
                manifest (.json)")
  in
  let backend_arg =
    Arg.(
      value & opt string "braid"
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:"Communication backend for a single-circuit TARGET")
  in
  let repeat_arg =
    Arg.(
      value & opt int 5
      & info [ "r"; "repeat" ] ~docv:"N"
          ~doc:"Measured runs; statistics are min/median/p95 across them")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: available cores)")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the autobraid-profile/v1 JSON report (stable schema \
                and key order) instead of tables")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a spec or batch manifest N times and report per-phase \
          wall/self time (min/median/p95 across runs), with optional \
          Perfetto trace export of the last run. Exit 1 when any job \
          failed, 2 on an unusable target, 0 otherwise.")
    Term.(
      const run $ target_arg $ backend_arg $ distance_arg $ seed_arg
      $ repeat_arg $ jobs_arg $ json_arg $ trace_out_arg)

(* ---------------- info ---------------- *)

let info_cmd =
  let run spec =
    guarded spec @@ fun () ->
    let c0 = load_circuit spec in
    let c = Qec_circuit.Decompose.to_scheduler_gates c0 in
    let dag = Qec_circuit.Dag.of_circuit c in
    let coupling = Qec_circuit.Coupling.of_circuit c in
    let n = Qec_circuit.Circuit.num_qubits c in
    let side = Qec_surface.Resources.lattice_side ~num_logical:n in
    let grid = Qec_lattice.Grid.create (max 1 side) in
    let placement =
      Autobraid.Initial_layout.place ~method_:Autobraid.Initial_layout.Partitioned
        c grid
    in
    let census = Autobraid.Initial_layout.oversize_census c placement in
    Printf.printf "circuit            %s\n" (Qec_circuit.Circuit.name c);
    Printf.printf "qubits             %d\n" n;
    Printf.printf "gates (raw)        %d\n" (Qec_circuit.Circuit.length c0);
    Printf.printf "gates (lowered)    %d\n" (Qec_circuit.Circuit.length c);
    Printf.printf "two-qubit gates    %d\n"
      (Qec_circuit.Circuit.two_qubit_count c);
    Printf.printf "dag depth          %d\n" (Qec_circuit.Dag.depth dag);
    Printf.printf "coupling density   %.3f\n"
      (Qec_circuit.Coupling.density coupling);
    Printf.printf "coupling max deg   %d\n"
      (Qec_circuit.Coupling.max_degree coupling);
    Printf.printf "degree-2 graph     %b\n"
      (Qec_circuit.Coupling.is_degree_two coupling);
    Printf.printf "oversize LLGs      %d (metis layout)\n" census;
    Printf.printf "CX parallelism     ";
    List.iter
      (fun (k, layers) -> Printf.printf "%dx%d " k layers)
      (Qec_circuit.Dag.two_qubit_layer_histogram dag);
    print_newline ()
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Static analysis of a circuit")
    Term.(const run $ circuit_arg)

(* ---------------- resources ---------------- *)

let resources_cmd =
  let run n target_pl =
    let d = Qec_surface.Error_model.distance_for_target ~target_pl () in
    List.iter
      (fun (k, v) -> Printf.printf "%-24s %s\n" k v)
      (Qec_surface.Resources.summary ~num_logical:n ~d);
    Printf.printf "%-24s %.3g\n" "target P_L" target_pl;
    Printf.printf "%-24s %.3g\n" "achieved P_L"
      (Qec_surface.Error_model.logical_error_rate ~d ())
  in
  let n_arg =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"QUBITS" ~doc:"Logical qubit count")
  in
  let pl_arg =
    Arg.(
      value & opt float 1e-12
      & info [ "pl" ] ~docv:"P" ~doc:"Target logical error rate")
  in
  Cmd.v
    (Cmd.info "resources" ~doc:"Surface-code resource estimates")
    Term.(const run $ n_arg $ pl_arg)

(* ---------------- emit ---------------- *)

let emit_cmd =
  let run spec out =
    guarded spec @@ fun () ->
    let c =
      Qec_circuit.Decompose.lower_mcx (load_circuit spec)
    in
    match out with
    | None -> print_string (Qec_qasm.Printer.to_string c)
    | Some path -> Qec_qasm.Printer.to_file path c
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout)")
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit a circuit as OpenQASM 2.0")
    Term.(const run $ circuit_arg $ out_arg)

(* ---------------- sweep ---------------- *)

let sweep_cmd =
  let run spec d metrics telemetry_out trace_out =
    guarded spec @@ fun () ->
    with_telemetry ~metrics ~telemetry_out ~trace_out @@ fun () ->
    let timing = Qec_surface.Timing.make ~d () in
    let c = load_circuit spec in
    let _, curve = Autobraid.Scheduler.run_best_p timing c in
    Printf.printf "# p  cycles  time_us  normalized\n";
    match curve with
    | [] -> ()
    | (_, first) :: _ ->
      let base = float_of_int first.Autobraid.Scheduler.total_cycles in
      List.iter
        (fun (p, (r : Autobraid.Scheduler.result)) ->
          Printf.printf "%.1f  %d  %.0f  %.3f\n" p r.total_cycles
            (Autobraid.Scheduler.time_us timing r)
            (float_of_int r.total_cycles /. base))
        curve
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"p-threshold sensitivity sweep (Fig. 18)")
    Term.(
      const run $ circuit_arg $ distance_arg $ metrics_arg $ telemetry_out_arg
      $ trace_out_arg)

(* ---------------- export ---------------- *)

let export_cmd =
  let run spec d fmt backend out =
    guarded spec @@ fun () ->
    let timing = Qec_surface.Timing.make ~d () in
    let c = load_circuit spec in
    let payload =
      match fmt with
      | `Json -> (
        match backend with
        | None ->
          let result, trace = Autobraid.Scheduler.run_traced timing c in
          Qec_report.Json.to_string ~indent:true
            (Qec_report.Json.Obj
               [
                 ("result", Qec_report.Export.result_to_json result);
                 ("trace", Qec_report.Export.trace_to_json ~max_rounds:50 trace);
                 ( "reliability",
                   Qec_report.Export.exposure_to_json ~d
                     (Autobraid.Reliability.exposure_of_result timing result) );
               ])
        | Some which ->
          (* Per-backend export: run under a collector so the payload
             carries the backend's own telemetry alongside its outcome. *)
          let collector = Qec_telemetry.Collector.create () in
          let outcome =
            Qec_telemetry.Telemetry.with_sink
              (Qec_telemetry.Collector.sink collector)
            @@ fun () ->
            let b =
              match Autobraid.Comm_backend.of_name which with
              | Some e ->
                e.Autobraid.Comm_backend.ctor
                  Autobraid.Comm_backend.default_config
                  (Autobraid.Comm_backend.Options.defaults
                     e.Autobraid.Comm_backend.options)
              | None -> assert false (* the conv validated the name *)
            in
            b.Autobraid.Comm_backend.run timing c
          in
          let fields =
            match
              Qec_report.Export.backend_outcome_to_json ~max_rounds:50 timing
                outcome
            with
            | Qec_report.Json.Obj fields -> fields
            | _ -> assert false
          in
          Qec_report.Json.to_string ~indent:true
            (Qec_report.Json.Obj
               (fields
               @ [ ("telemetry", Qec_report.Export.telemetry_to_json collector) ]
               )))
      | `Coupling_dot ->
        let lowered = Qec_circuit.Decompose.to_scheduler_gates c in
        Qec_report.Export.coupling_to_dot
          (Qec_circuit.Coupling.of_circuit lowered)
      | `Csv ->
        let _, curve = Autobraid.Scheduler.run_best_p timing c in
        Qec_report.Export.p_curve_to_csv curve
    in
    match out with
    | None -> print_string payload
    | Some path ->
      let oc = open_out path in
      output_string oc payload;
      close_out oc
  in
  let fmt_arg =
    Arg.(
      value
      & opt (enum [ ("json", `Json); ("dot", `Coupling_dot); ("csv", `Csv) ]) `Json
      & info [ "f"; "format" ] ~docv:"FMT"
          ~doc:"json (result+trace+reliability), dot (coupling graph), csv \
                (p-sweep)")
  in
  let backend_arg =
    let parse s =
      if Autobraid.Comm_backend.of_name s <> None then Ok s
      else
        Error
          (`Msg
            (Printf.sprintf "unknown backend %S (registered: %s)" s
               (String.concat ", " (Autobraid.Comm_backend.names ()))))
    in
    Arg.(
      value
      & opt (some (conv (parse, Format.pp_print_string))) None
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:"With -f json: export one communication backend's outcome \
                (backend name, result, backend_stats, trace, exposure, \
                telemetry) instead of the legacy result+trace payload")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout)")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export results, traces and graphs (json/dot/csv)")
    Term.(
      const run $ circuit_arg $ distance_arg $ fmt_arg $ backend_arg $ out_arg)

(* ---------------- backends ---------------- *)

let backends_cmd =
  let json_of_value = function
    | Autobraid.Comm_backend.Options.Bool b -> Qec_report.Json.Bool b
    | Autobraid.Comm_backend.Options.Int i -> Qec_report.Json.Int i
    | Autobraid.Comm_backend.Options.Float f -> Qec_report.Json.Float f
    | Autobraid.Comm_backend.Options.String s -> Qec_report.Json.String s
  in
  let run json =
    let entries = Autobraid.Comm_backend.all () in
    if json then
      print_endline
        (Qec_report.Json.to_string ~indent:true
           (Qec_report.Json.List
              (List.map
                 (fun (e : Autobraid.Comm_backend.entry) ->
                   Qec_report.Json.Obj
                     [
                       ("name", Qec_report.Json.String e.name);
                       ("description", Qec_report.Json.String e.description);
                       ( "options",
                         Qec_report.Json.List
                           (List.map
                              (fun (s : Autobraid.Comm_backend.Options.spec) ->
                                Qec_report.Json.Obj
                                  [
                                    ("key", Qec_report.Json.String s.key);
                                    ( "type",
                                      Qec_report.Json.String
                                        (Autobraid.Comm_backend.Options
                                         .kind_to_string s.kind) );
                                    ("default", json_of_value s.default);
                                    ("doc", Qec_report.Json.String s.doc);
                                  ])
                              e.options) );
                     ])
                 entries)))
    else
      List.iteri
        (fun i (e : Autobraid.Comm_backend.entry) ->
          if i > 0 then print_newline ();
          Printf.printf "%s: %s\n" e.name e.description;
          if e.options = [] then print_endline "  (no options)"
          else
            List.iter
              (fun (flag, doc) -> Printf.printf "  %-24s %s\n" flag doc)
              (Autobraid.Comm_backend.Options.to_flags e.options))
        entries
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Machine-readable listing: name, description and option \
                schema (key, type, default, doc) per backend")
  in
  Cmd.v
    (Cmd.info "backends"
       ~doc:
         "List registered communication backends and their --backend-opt \
          schemas")
    Term.(const run $ json_arg)

(* ---------------- trace ---------------- *)

let trace_cmd =
  let run spec d max_rounds svg_prefix =
    guarded spec @@ fun () ->
    let timing = Qec_surface.Timing.make ~d () in
    let c = load_circuit spec in
    let result, trace = Autobraid.Scheduler.run_traced timing c in
    (match Autobraid.Trace.validate trace with
    | Ok () -> print_endline "trace: VALID"
    | Error msg -> Printf.printf "trace: INVALID (%s)\n" msg);
    Printf.printf "%d rounds, %d cycles, %d swaps\n\n"
      result.Autobraid.Scheduler.rounds result.Autobraid.Scheduler.total_cycles
      result.Autobraid.Scheduler.swaps_inserted;
    let shown = min max_rounds (Autobraid.Trace.num_rounds trace) in
    for k = 0 to shown - 1 do
      print_endline (Autobraid.Trace.round_to_string trace k);
      print_newline ()
    done;
    if shown < Autobraid.Trace.num_rounds trace then
      Printf.printf "... (%d more rounds; raise --rounds to see them)\n"
        (Autobraid.Trace.num_rounds trace - shown);
    match svg_prefix with
    | None -> ()
    | Some prefix ->
      for k = 0 to shown - 1 do
        let file = Printf.sprintf "%s-round%03d.svg" prefix k in
        Qec_report.Svg.save_round file trace k;
        Printf.printf "wrote %s\n" file
      done
  in
  let svg_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"PREFIX"
          ~doc:"Also write each rendered round as PREFIX-roundNNN.svg")
  in
  let rounds_arg =
    Arg.(
      value & opt int 4
      & info [ "rounds" ] ~docv:"N" ~doc:"How many rounds to render")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Record, validate and render a schedule trace")
    Term.(const run $ circuit_arg $ distance_arg $ rounds_arg $ svg_arg)

(* ---------------- lint ---------------- *)

let lint_cmd =
  let run spec fmt deny schedule d p seed =
    guarded spec @@ fun () ->
    let deny_warning = deny = Some `Warning in
    (* QASM files get the full span-aware pipeline; .real files and
       benchmark names only exist as circuits, so only QL1xx applies. *)
    let diags, source =
      if Sys.file_exists spec && not (Filename.check_suffix spec ".real") then
        let diags, src = Qec_lint.Lint.lint_file spec in
        (diags, Some src)
      else (Qec_lint.Lint.lint_circuit ~file:spec (load_circuit spec), None)
    in
    let diags =
      diags @ Qec_lint.Schedule_lint.check_options ~file:spec ~threshold_p:p ~d ()
    in
    let diags =
      if schedule && Qec_lint.Lint.error_count diags = 0 then begin
        let timing = Qec_surface.Timing.make ~d () in
        let options =
          { Autobraid.Scheduler.default_options with threshold_p = p; seed }
        in
        let _, trace =
          Autobraid.Scheduler.run_traced ~options timing (load_circuit spec)
        in
        diags @ Qec_lint.Schedule_lint.check_trace ~file:spec trace
      end
      else diags
    in
    (match fmt with
    | `Text ->
      List.iter
        (fun d -> print_endline (Qec_lint.Diagnostic.render ?source d))
        diags;
      if diags <> [] then
        print_endline (Qec_lint.Lint.summary ~deny_warning diags)
    | `Jsonl ->
      List.iter (fun d -> print_endline (Qec_lint.Diagnostic.to_jsonl d)) diags
    | `Json ->
      print_endline
        (Qec_report.Json.to_string ~indent:true
           (Qec_report.Export.diagnostics_to_json diags)));
    exit (Qec_lint.Lint.exit_code ~deny_warning diags)
  in
  let fmt_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("jsonl", `Jsonl); ("json", `Json) ]) `Text
      & info [ "f"; "format" ] ~docv:"FMT"
          ~doc:"text (caret-annotated), jsonl (one JSON object per \
                diagnostic), json (one array)")
  in
  let deny_arg =
    Arg.(
      value
      & opt (some (enum [ ("warning", `Warning) ])) None
      & info [ "deny" ] ~docv:"SEVERITY"
          ~doc:"Treat warnings as errors for the exit code")
  in
  let schedule_arg =
    Arg.(
      value & flag
      & info [ "schedule" ]
          ~doc:"Also schedule the circuit and validate the recorded trace \
                (QL210); slower")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis with stable QLxxx diagnostics (docs/lint.md). \
             Exit 1 when any error (or, with --deny warning, any warning) \
             fires; 0 otherwise.")
    Term.(
      const run $ circuit_arg $ fmt_arg $ deny_arg $ schedule_arg
      $ distance_arg $ threshold_arg $ seed_arg)

(* ---------------- verify ---------------- *)

(* Exit-code contract mirrors lint: 0 when every schedule certifies clean,
   1 when any invariant fails (or a job errors out), 2 on unusable input
   (unknown circuit, unreadable or malformed manifest). Certification
   always replays a fresh run from the spec — the exported trace JSON has
   no deserializer, so the trace is regenerated, which the placement seed
   makes deterministic. *)
let verify_cmd =
  let run target backend d seed p initial json =
    let with_certificate (s : Qec_engine.Spec.t) =
      { s with outputs = { s.outputs with certificate = true } }
    in
    let specs =
      if Sys.file_exists target && Filename.check_suffix target ".json" then begin
        let text =
          match
            let ic = open_in_bin target in
            let len = in_channel_length ic in
            let s = really_input_string ic len in
            close_in ic;
            s
          with
          | s -> s
          | exception Sys_error msg ->
            prerr_endline msg;
            exit 2
        in
        match Qec_engine.Spec.manifest_of_string text with
        | Ok specs ->
          (* Baseline / best_p jobs never record a trace, so there is
             nothing independent to certify — skip them with a note
             rather than fail a manifest that batch itself accepts. *)
          let certifiable, untraced =
            List.partition
              (fun (s : Qec_engine.Spec.t) ->
                s.scheduler <> Qec_engine.Spec.Baseline && not s.best_p)
              specs
          in
          List.iter
            (fun (s : Qec_engine.Spec.t) ->
              Printf.eprintf "skipping %s: %s runs record no trace to certify\n"
                s.circuit
                (if s.best_p then "best_p" else "baseline"))
            untraced;
          if certifiable = [] then begin
            Printf.eprintf "%s: no certifiable job in manifest\n" target;
            exit 2
          end;
          List.map with_certificate certifiable
        | Error msg ->
          Printf.eprintf "%s: %s\n" target msg;
          exit 2
      end
      else
        [
          with_certificate
            {
              Qec_engine.Spec.default with
              circuit = target;
              backend;
              d;
              seed;
              threshold_p = p;
              initial;
            };
        ]
    in
    let certs =
      List.map
        (fun s ->
          match Qec_engine.Engine.run_spec s with
          | Error e -> die_engine_text e
          | Ok { Qec_engine.Engine.certificate = Some cert; _ } -> cert
          | Ok { Qec_engine.Engine.certificate = None; _ } ->
            (* unreachable: the spec demands a certificate and validation
               rejects untraced runs, but never die silently if it drifts *)
            prerr_endline "internal: run produced no certificate";
            exit 1)
        specs
    in
    if json then
      print_endline
        (Qec_report.Json.to_string ~indent:true
           (Qec_report.Json.List
              (List.map Qec_report.Export.certificate_to_json certs)))
    else
      List.iter
        (fun cert ->
          print_endline (Qec_verify.Certifier.to_summary cert);
          List.iter
            (fun inv ->
              List.iter
                (fun w ->
                  print_endline
                    ("  " ^ Qec_verify.Certifier.witness_to_string w))
                (Qec_verify.Certifier.witnesses_for cert inv))
            (Qec_verify.Certifier.failed cert))
        certs;
    exit (if List.for_all Qec_verify.Certifier.ok certs then 0 else 1)
  in
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "Circuit (benchmark name or .qasm/.real path) or a batch \
             manifest (.json); every resulting schedule is certified")
  in
  let backend_arg =
    Arg.(
      value & opt string "braid"
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:"Communication backend for a single-circuit TARGET")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the autobraid-cert/v1 certificates as one JSON array \
                instead of summaries")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Independently certify schedules: replay each spec, re-derive \
          every trace invariant from first principles (path validity and \
          disjointness, dependency order, exactly-once execution, swap and \
          split-pipelining legality, cycle accounting) and report an \
          autobraid-cert/v1 certificate (docs/verify.md). Exit 0 when all \
          certify clean, 1 on any failed invariant, 2 on unusable input.")
    Term.(
      const run $ target_arg $ backend_arg $ distance_arg $ seed_arg
      $ threshold_arg $ initial_arg $ json_arg)

(* ---------------- fuzz ---------------- *)

(* Exit-code contract (docs/testing.md): 0 all properties passed, 1 a
   property failed (counterexample printed as valid QASM), 2 usage error
   (unknown property, bad generator parameters, malformed regression
   file). *)
let fuzz_cmd =
  let module P = Qec_prop.Property in
  let module R = Qec_prop.Runner in
  let usage fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt in
  (* The body computes an exit code instead of calling [exit] inline:
     [exit] does not unwind the stack, so an early exit would skip
     with_telemetry's flush and leave --trace-out / --telemetry-out files
     unwritten. Usage errors still die immediately — they happen before
     any instrumented work. *)
  let run seed count props list_props no_minimize max_failures regress_dir
      replay max_qubits max_gates cx_density long_range_bias metrics
      telemetry_out trace_out =
    if list_props then begin
      List.iter
        (fun (p : P.t) -> Printf.printf "%-24s %s\n" p.name p.description)
        (P.all ());
      exit 0
    end;
    (* Fuzz campaigns run long; an interrupt must still close the sinks
       (and write --trace-out) instead of losing the whole record. *)
    install_interrupt_flush ();
    let code =
      with_telemetry ~metrics ~telemetry_out ~trace_out @@ fun () ->
      match replay with
      | Some path -> (
        if not (Sys.file_exists path) then usage "%s: no such file" path;
        match R.replay_file path with
        | Error msg -> usage "%s: %s" path msg
        | Ok (prop, P.Pass) ->
          Printf.printf "%s: %s passed\n" path prop;
          0
        | Ok (prop, P.Fail msg) ->
          Printf.printf "%s: %s FAILED: %s\n" path prop msg;
          1)
      | None ->
        if count < 1 then usage "--count must be >= 1 (got %d)" count;
        let properties =
          match props with
          | [] -> P.all ()
          | names ->
            List.map
              (fun name ->
                match P.find name with
                | Some p -> p
                | None ->
                  usage "unknown property %S; known: %s" name
                    (String.concat ", " (P.names ())))
              names
        in
        let params =
          {
            Qec_prop.Gen.default with
            max_qubits;
            max_gates;
            cx_density;
            long_range_bias;
          }
        in
        (match Qec_prop.Gen.validate params with
        | Ok () -> ()
        | Error msg -> usage "bad generator parameters: %s" msg);
        let report =
          R.run ~params ~properties ~minimize:(not no_minimize)
            ~max_failures ~seed ~count ()
        in
        List.iter
          (fun (f : R.failure) ->
            Printf.printf "FAIL %s (seed %d, case %d): %s\n" f.property f.seed
              f.case f.message;
            let unit_ =
              match f.counterexample with
              | R.Circuit _ -> "gates"
              | R.Source _ -> "bytes"
            in
            if f.shrunk_size < f.original_size then
              Printf.printf "  shrunk %d -> %d %s\n" f.original_size
                f.shrunk_size unit_;
            Printf.printf "  reproduce: autobraid fuzz --seed %d --count %d \
                           --prop %s\n"
              f.seed (f.case + 1) f.property;
            print_newline ();
            (* the counterexample itself, as replayable QASM / raw bytes *)
            print_string (R.counterexample_to_string f.counterexample);
            match regress_dir with
            | None -> ()
            | Some dir ->
              if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
              let path = R.failure_to_file ~dir f in
              Printf.printf "\nwrote %s\n" path)
          report.R.failures;
        if report.R.failures = [] then begin
          Printf.printf
            "fuzz: seed %d, %d cases, %d checks across %d properties: all \
             passed\n"
            report.R.seed report.R.cases report.R.checks
            (List.length report.R.properties);
          0
        end
        else 1
    in
    exit code
  in
  let count_arg =
    Arg.(
      value & opt int 200
      & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of generated cases")
  in
  let prop_arg =
    Arg.(
      value & opt_all string []
      & info [ "prop" ] ~docv:"NAME"
          ~doc:"Check only this property (repeatable; see --list)")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List registered properties")
  in
  let no_minimize_arg =
    Arg.(
      value & flag
      & info [ "no-minimize" ]
          ~doc:"Report the raw failing input without shrinking it")
  in
  let max_failures_arg =
    Arg.(
      value & opt int 1
      & info [ "max-failures" ] ~docv:"K"
          ~doc:"Stop after collecting K failures")
  in
  let regress_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "regress-dir" ] ~docv:"DIR"
          ~doc:"Also write each failure as a replayable regression file \
                in DIR (promote to fixtures/regressions/ to pin it in \
                dune runtest)")
  in
  let replay_arg =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay one regression file instead of fuzzing")
  in
  let max_qubits_arg =
    Arg.(
      value & opt int Qec_prop.Gen.default.max_qubits
      & info [ "max-qubits" ] ~docv:"N" ~doc:"Largest generated circuit width")
  in
  let max_gates_arg =
    Arg.(
      value & opt int Qec_prop.Gen.default.max_gates
      & info [ "max-gates" ] ~docv:"N" ~doc:"Largest generated gate count")
  in
  let cx_density_arg =
    Arg.(
      value & opt float Qec_prop.Gen.default.cx_density
      & info [ "cx-density" ] ~docv:"P"
          ~doc:"Probability a generated gate is two-qubit")
  in
  let long_range_bias_arg =
    Arg.(
      value & opt float Qec_prop.Gen.default.long_range_bias
      & info [ "long-range-bias" ] ~docv:"P"
          ~doc:"Probability a two-qubit gate is forced long-range")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Property-based fuzzing: generate random circuits and mutated \
             QASM, check cross-layer invariants (trace validity, \
             differential backend agreement, engine byte-identities, \
             round-trips, crash safety), shrink any counterexample and \
             print it as replayable QASM. Exit 0 clean, 1 on a property \
             violation, 2 on usage errors (docs/testing.md).")
    Term.(
      const run $ seed_arg $ count_arg $ prop_arg $ list_arg
      $ no_minimize_arg $ max_failures_arg $ regress_dir_arg $ replay_arg
      $ max_qubits_arg $ max_gates_arg $ cx_density_arg
      $ long_range_bias_arg $ metrics_arg $ telemetry_out_arg
      $ trace_out_arg)

(* ---------------- serve ---------------- *)

(* Exit-code contract (docs/serve.md): daemon mode exits 0 after a clean
   drain. Client mode exits 0 on success, 1 when the server answered with
   an error record (or a batch had failures), 2 on connection / protocol /
   usage trouble. *)
let serve_cmd =
  let module P = Qec_serve.Protocol in
  let module C = Qec_serve.Client in
  let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt in
  let print_json j = print_endline (Qec_report.Json.to_string j) in
  let run socket connect jobs max_pending timeout cache_dir trace_out ping
      stats shutdown manifest circuit d seed p backend initial certify =
    match (socket, connect) with
    | None, None | Some _, Some _ ->
      die "serve: pass exactly one of --socket PATH (daemon) or --connect \
           PATH (client)"
    | Some path, None ->
      (* daemon mode: foreground, logs on stderr, drains on SIGTERM/SIGINT
         or a shutdown request *)
      if ping || stats || shutdown || manifest <> None || circuit <> None then
        die "serve: client actions require --connect, not --socket";
      let config =
        {
          (Qec_serve.Server.default_config ~socket:path ()) with
          jobs = (match jobs with Some j -> max 1 j | None -> Qec_util.Parallel.default_jobs ());
          max_pending;
          timeout_s = timeout;
          cache_dir;
          trace_out;
          handle_signals = true;
          log = prerr_endline;
        }
      in
      (try Qec_serve.Server.run config
       with Unix.Unix_error (e, _, arg) ->
         die "serve: cannot listen on %s%s: %s" path
           (if arg = "" then "" else " (" ^ arg ^ ")")
           (Unix.error_message e))
    | None, Some path -> (
      let client =
        match C.connect path with Ok c -> c | Error msg -> die "serve: %s" msg
      in
      let finish code = C.close client; if code <> 0 then exit code in
      let expect what = function
        | Ok r -> r
        | Error msg -> die "serve: %s failed: %s" what msg
      in
      match (ping, stats, shutdown, manifest, circuit) with
      | true, false, false, None, None -> (
        match expect "ping" (C.ping client) with
        | P.Pong _ as r ->
          print_json
            (match r with
            | P.Pong { version; _ } ->
              Qec_report.Json.Obj
                [
                  ("type", Qec_report.Json.String "pong");
                  ("version", Qec_report.Json.String version);
                ]
            | _ -> assert false);
          finish 0
        | _ -> die "serve: unexpected response to ping")
      | false, true, false, None, None -> (
        match expect "stats" (C.stats client) with
        | P.Stats_resp { stats; _ } ->
          print_endline (Qec_report.Json.to_string ~indent:true stats);
          finish 0
        | _ -> die "serve: unexpected response to stats")
      | false, false, true, None, None -> (
        match expect "shutdown" (C.shutdown client) with
        | P.Shutdown_ack _ ->
          print_endline "shutdown acknowledged; server draining";
          finish 0
        | _ -> die "serve: unexpected response to shutdown")
      | false, false, false, Some file, None -> (
        let specs =
          match
            let ic = open_in_bin file in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            Qec_engine.Spec.manifest_of_string s
          with
          | Ok specs -> specs
          | Error msg -> die "%s: %s" file msg
          | exception Sys_error msg -> die "%s" msg
        in
        match expect "batch" (C.batch client specs) with
        | records, ok_n, failed_n ->
          (* job records print in manifest order, exactly as `autobraid
             batch` renders them, whatever order the pool finished in *)
          let jobs =
            List.filter_map
              (function P.Result { job; _ } -> Some job | _ -> None)
              records
          in
          let indexed =
            List.map
              (fun job ->
                match Qec_report.Json.member "index" job with
                | Some (Qec_report.Json.Int i) -> (i, job)
                | _ -> die "serve: result record without an index")
              jobs
          in
          List.iter
            (fun (_, job) -> print_endline (C.job_line job))
            (List.sort (fun (a, _) (b, _) -> compare a b) indexed);
          List.iter
            (function
              | P.Error_resp { kind; message; _ } ->
                Printf.eprintf "serve: %s: %s\n" kind message
              | _ -> ())
            records;
          Printf.eprintf "serve: %d ok, %d failed\n" ok_n failed_n;
          finish (if failed_n > 0 || List.length jobs <> List.length specs then 1 else 0))
      | false, false, false, None, Some name -> (
        let spec =
          {
            Qec_engine.Spec.default with
            circuit = name;
            backend;
            d;
            seed;
            threshold_p = p;
            initial;
            outputs =
              { Qec_engine.Spec.default.outputs with certificate = certify };
          }
        in
        match expect "compile" (C.compile client spec) with
        | P.Result { job; _ } ->
          print_endline (C.job_line job);
          let failed =
            match Qec_report.Json.member "error" job with
            | Some _ -> true
            | None -> false
          in
          finish (if failed then 1 else 0)
        | P.Error_resp { kind; message; _ } ->
          Printf.eprintf "serve: %s: %s\n" kind message;
          finish 1
        | _ -> die "serve: unexpected response to compile")
      | _ ->
        die "serve: pass exactly one of --ping, --stats, --shutdown, \
             --manifest FILE or a CIRCUIT")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Run as a daemon listening on this Unix-domain socket \
                (foreground; drains on SIGTERM/SIGINT or a shutdown \
                request)")
  in
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH"
          ~doc:"Act as a client of the daemon at this socket")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: available cores)")
  in
  let max_pending_arg =
    Arg.(
      value & opt int 128
      & info [ "max-pending" ] ~docv:"N"
          ~doc:"Admission-control bound: requests that would push the \
                queue past N are answered with an immediate `overloaded` \
                error record")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-request queue-wait deadline; a request that waited \
                longer is answered with a `timeout` error and never \
                starts executing")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Persist the shared placement cache in DIR (advisory \
                cross-process lock; safe to share with batch runs)")
  in
  let serve_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE.json"
          ~doc:"Write a Perfetto trace of the whole serving session when \
                the daemon drains")
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Client: liveness check")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Client: print the live stats snapshot (queue depth, \
                latency histograms, cache counters) as indented JSON")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Client: ask the daemon to drain and exit")
  in
  let serve_manifest_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:"Client: submit a batch manifest (same schema as `autobraid \
                batch`) and print the job records in manifest order — \
                byte-identical to a local batch run")
  in
  let serve_circuit_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"CIRCUIT"
          ~doc:"Client: compile one circuit (benchmark name or file path \
                as resolved by the server) and print its job record")
  in
  let serve_backend_arg =
    Arg.(
      value & opt string "braid"
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:"Client compile: communication backend name")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Compilation-as-a-service daemon over a Unix-domain socket \
          (autobraid-serve/v1: newline-delimited JSON with request-id \
          correlation), or a client for one (--connect). The daemon runs \
          the engine core on a shared worker pool with one placement \
          cache, bounded admission (--max-pending), per-request queue \
          deadlines (--timeout) and live stats; see docs/serve.md.")
    Term.(
      const run $ socket_arg $ connect_arg $ jobs_arg $ max_pending_arg
      $ timeout_arg $ cache_dir_arg $ serve_trace_arg $ ping_arg $ stats_arg
      $ shutdown_arg $ serve_manifest_arg $ serve_circuit_arg $ distance_arg
      $ seed_arg $ threshold_arg $ serve_backend_arg $ initial_arg
      $ certify_arg)

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    print_endline "benchmark families (suffix with a size, e.g. qft50):";
    List.iter
      (fun (e : Qec_benchmarks.Registry.entry) ->
        Printf.printf "  %-8s %s\n" (e.name ^ "<n>") e.description)
      Qec_benchmarks.Registry.families;
    print_endline "fixed instances:";
    List.iter
      (fun (name, _) -> Printf.printf "  %s\n" name)
      Qec_benchmarks.Registry.fixed
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in benchmarks") Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "autobraid" ~version:"1.0.0"
       ~doc:"Surface-code braiding-path scheduler (AutoBraid, MICRO'21)")
    [ compile_cmd; schedule_cmd; batch_cmd; serve_cmd; profile_cmd; info_cmd;
       lint_cmd; verify_cmd; fuzz_cmd; resources_cmd; emit_cmd; sweep_cmd;
       trace_cmd; export_cmd; backends_cmd; list_cmd ]

let () = exit (Cmd.eval main)
