(* Beyond the paper: what does the "steady supply of magic states at the
   data location" assumption (§4.1) hide, and what does scheduling speed
   buy in end-to-end reliability?

   This example schedules a T-heavy reversible block under (a) the ideal
   assumption, (b) explicit boundary distillation factories, and compares
   the resulting logical failure probabilities; it finishes by exporting
   the ideal run as JSON.

   Run with:  dune exec examples/factory_pressure.exe *)

module S = Autobraid.Scheduler
module M = Qec_magic.Factory_model
module R = Autobraid.Reliability

let () =
  let d = Qec_surface.Timing.default_d in
  let timing = Qec_surface.Timing.make ~d () in
  let circuit = Qec_benchmarks.Building_blocks.by_name "sqrt8_260" in
  Printf.printf "circuit: %s (%d qubits, %d gates, T-heavy)\n\n"
    (Qec_circuit.Circuit.name circuit)
    (Qec_circuit.Circuit.num_qubits circuit)
    (Qec_circuit.Circuit.length circuit);

  let ideal =
    S.run ~options:{ S.default_options with variant = S.Sp } timing circuit
  in
  Printf.printf "ideal supply (paper's assumption): %8.0f us\n"
    (S.time_us timing ideal);

  List.iter
    (fun k ->
      let options = { (M.default_options ()) with M.num_factories = k } in
      let r = M.run ~options timing circuit in
      Printf.printf "%d boundary factories:              %8.0f us (%.2fx, %d stalled rounds)\n"
        k
        (S.time_us timing r.M.scheduler)
        (float_of_int r.M.scheduler.S.total_cycles
        /. float_of_int ideal.S.total_cycles)
        r.M.stalled_rounds)
    [ 1; 2; 4; 8 ];

  (* Reliability: a slower schedule is a less reliable schedule. *)
  print_newline ();
  let slow = (M.run ~options:{ (M.default_options ()) with M.num_factories = 1 }
                timing circuit).M.scheduler
  in
  let p_fast = R.failure_probability ~d (R.exposure_of_result timing ideal) in
  let p_slow = R.failure_probability ~d (R.exposure_of_result timing slow) in
  Printf.printf "failure probability at d=%d: ideal %.3e vs 1-factory %.3e (%.1fx riskier)\n"
    d p_fast p_slow (p_slow /. p_fast);
  Printf.printf "distance needed for 1e-9 failure: ideal d=%d vs 1-factory d=%d\n"
    (R.distance_for_failure ~target:1e-9 (R.exposure_of_result timing ideal))
    (R.distance_for_failure ~target:1e-9 (R.exposure_of_result timing slow));

  (* Machine-readable export. *)
  print_newline ();
  print_endline "JSON export of the ideal run:";
  print_endline
    (Qec_report.Json.to_string ~indent:true
       (Qec_report.Export.result_to_json ideal))
