(* The paper's high-parallelism motivating example (Fig. 7): the Ising
   model circuit has n/2 simultaneous CX gates. With the snake embedding
   for its degree-2 coupling graph, every LLG has size <= 3, Theorem 1
   guarantees congestion-free rounds, and AutoBraid runs at exactly the
   critical path — which this example verifies.

   It also shows what goes wrong with a bad (random) placement: the LLG
   census degrades and so does the schedule.

   Run with:  dune exec examples/ising_chain.exe [-- n]  (default n = 36) *)

module S = Autobraid.Scheduler
module IL = Autobraid.Initial_layout

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 36
  in
  let circuit = Qec_benchmarks.Ising.circuit ~steps:4 n in
  let timing = Qec_surface.Timing.make ~d:Qec_surface.Timing.default_d () in
  let side = Qec_surface.Resources.lattice_side ~num_logical:n in
  let grid = Qec_lattice.Grid.create side in

  Printf.printf "Ising-%d (4 Trotter steps): %d gates on a %dx%d lattice\n\n"
    n
    (Qec_circuit.Circuit.length circuit)
    side side;

  let coupling = Qec_circuit.Coupling.of_circuit circuit in
  Printf.printf "coupling graph: max degree %d (degree-2 chain: %b)\n"
    (Qec_circuit.Coupling.max_degree coupling)
    (Qec_circuit.Coupling.is_degree_two coupling);

  (* LLG census under the snake embedding vs. a deliberately bad one. *)
  let snake = IL.place ~method_:IL.Partitioned circuit grid in
  let shuffled =
    Qec_lattice.Placement.random (Qec_util.Rng.create 99) grid ~num_qubits:n
  in
  Printf.printf "oversize LLGs, snake placement:  %d\n"
    (IL.oversize_census circuit snake);
  Printf.printf "oversize LLGs, random placement: %d\n\n"
    (IL.oversize_census circuit shuffled);

  (* Schedule with the good placement: must hit the critical path. *)
  let r = S.run timing circuit in
  Printf.printf "autobraid: %.0f us | critical path: %.0f us | ratio %.2fx\n"
    (S.time_us timing r)
    (S.critical_path_us timing r)
    (float_of_int r.S.total_cycles /. float_of_int r.S.critical_path_cycles);
  assert (r.S.total_cycles = r.S.critical_path_cycles);
  print_endline "theorem-1 optimality check passed (schedule = critical path)";

  (* And with identity placement (row-major), which breaks chain locality. *)
  let r_id =
    S.run
      ~options:{ S.default_options with initial = IL.Identity; variant = S.Sp }
      timing circuit
  in
  Printf.printf
    "\nwith naive row-major placement instead: %.0f us (%.2fx critical path)\n"
    (S.time_us timing r_id)
    (float_of_int r_id.S.total_cycles
    /. float_of_int r_id.S.critical_path_cycles)
