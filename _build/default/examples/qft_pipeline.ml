(* The paper's headline workload: large QFT circuits, where the greedy
   baseline congests and AutoBraid's stack-based path finder plus dynamic
   placement pays off (Table 2 rows QFT-200/400; up to 30x there).

   This example compiles a QFT end-to-end with all three schedulers and
   prints a small version of the Table 2 comparison.

   Run with:  dune exec examples/qft_pipeline.exe [-- n]  (default n = 64) *)

module S = Autobraid.Scheduler
module TP = Qec_util.Tableprint

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 64
  in
  let circuit = Qec_benchmarks.Qft.circuit n in
  let timing = Qec_surface.Timing.make ~d:Qec_surface.Timing.default_d () in

  Printf.printf "QFT-%d: %d gates, lattice %dx%d, d = %d\n\n" n
    (Qec_circuit.Circuit.length circuit)
    (Qec_surface.Resources.lattice_side ~num_logical:n)
    (Qec_surface.Resources.lattice_side ~num_logical:n)
    Qec_surface.Timing.default_d;

  (* Static communication analysis first (stage 1 of the framework). *)
  let dag = Qec_circuit.Dag.of_circuit circuit in
  let widths = Qec_circuit.Dag.two_qubit_layer_histogram dag in
  let max_width = List.fold_left (fun acc (k, _) -> max acc k) 0 widths in
  Printf.printf "max theoretical CX parallelism: %d concurrent gates\n\n"
    max_width;

  let baseline = Gp_baseline.run timing circuit in
  let sp =
    S.run ~options:{ S.default_options with variant = S.Sp } timing circuit
  in
  let full, _curve =
    S.run_best_p ~grid_points:[ 0.0; 0.2; 0.4 ] timing circuit
  in

  let t =
    TP.create
      ~headers:
        [
          ("scheduler", TP.Left);
          ("time (us)", TP.Right);
          ("vs CP", TP.Right);
          ("utilization", TP.Right);
          ("swaps", TP.Right);
        ]
  in
  let cp = float_of_int full.S.critical_path_cycles in
  let row name (r : S.result) =
    TP.add_row t
      [
        name;
        TP.si_cell (S.time_us timing r);
        Printf.sprintf "%.2fx" (float_of_int r.S.total_cycles /. cp);
        Printf.sprintf "%.0f%%" (100. *. r.S.avg_utilization);
        string_of_int r.S.swaps_inserted;
      ]
  in
  TP.add_row t
    [ "critical path"; TP.si_cell (S.critical_path_us timing full); "1.00x";
      "-"; "-" ];
  TP.add_separator t;
  row "GP w. initM (baseline)" baseline;
  row "autobraid-sp" sp;
  row "autobraid-full" full;
  TP.print t;

  Printf.printf "\nspeedup over baseline: %.2fx\n"
    (float_of_int baseline.S.total_cycles /. float_of_int full.S.total_cycles)
