(* The communication-bottleneck construction of Figs. 9 and 15: m CX pairs
   whose straight-line paths all cross, every qubit on the lattice
   boundary. No path finder can run more than 3 of them simultaneously —
   no matter how large the lattice — so a fixed-placement scheduler needs
   ~m/3 rounds. One parallel SWAP layer (3 CX cost) untangles the layout
   and lets everything run at once: the essence of dynamic placement.

   Run with:  dune exec examples/congestion_rescue.exe *)

module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Task = Autobraid.Task
module SF = Autobraid.Stack_finder
module LO = Autobraid.Layout_opt

(* Fig. 9(a) on a 6x6 lattice: four pairs crossing near the center. *)
let coords =
  [
    (0, 2); (5, 3) (* pair A0: left edge -> right edge, tilted down *);
    (2, 5); (3, 0) (* pair A1: bottom edge -> top edge, tilted *);
    (0, 3); (5, 2) (* pair A2: mirrors A0 *);
    (2, 0); (3, 5) (* pair A3: mirrors A1 *);
  ]

let () =
  let grid = Grid.create 6 in
  let cells =
    Array.of_list (List.map (fun (x, y) -> Grid.cell_id grid ~x ~y) coords)
  in
  let placement = Placement.create grid ~num_qubits:8 ~cells in
  let tasks =
    List.init 4 (fun i -> { Task.id = i; q1 = 2 * i; q2 = (2 * i) + 1 })
  in
  let router = Router.create grid in

  print_endline "four crossing CX pairs on a 6x6 lattice (Fig. 9a layout)";
  List.iteri
    (fun i ((x1, y1), (x2, y2)) ->
      Printf.printf "  pair %d: (%d,%d) <-> (%d,%d)\n" i x1 y1 x2 y2)
    [ ((0, 2), (5, 3)); ((2, 5), (3, 0)); ((0, 3), (5, 2)); ((2, 0), (3, 5)) ];

  (* Attempt 1: route as-is. The theorem says at most 3 can succeed. *)
  let occ = Occupancy.create grid in
  let attempt = SF.find router occ placement tasks in
  Printf.printf "\nstack-based path finder schedules %d/4 gates (ratio %.2f)\n"
    (List.length attempt.SF.routed)
    attempt.SF.ratio;
  assert (List.length attempt.SF.routed <= 3);

  (* Plan a SWAP layer over the whole front. *)
  let swaps = LO.plan LO.Greedy router placement ~pending:tasks ~phase:0 in
  Printf.printf "\nlayout optimizer plans %d swap(s):\n" (List.length swaps);
  List.iter
    (fun (a, b) ->
      let ax, ay = Placement.qubit_cell_xy placement a in
      let bx, by = Placement.qubit_cell_xy placement b in
      Printf.printf "  swap q%d(%d,%d) <-> q%d(%d,%d)\n" a ax ay b bx by)
    swaps;
  LO.apply placement swaps;

  (* Attempt 2: after one swap layer every pair routes simultaneously. *)
  let occ2 = Occupancy.create grid in
  let rescued = SF.find router occ2 placement tasks in
  Printf.printf "\nafter one swap layer: %d/4 gates scheduled\n"
    (List.length rescued.SF.routed);

  (* Cost comparison, per the paper's Fig. 15 argument. *)
  let d = Qec_surface.Timing.default_d in
  let timing = Qec_surface.Timing.make ~d () in
  let braid = Qec_surface.Timing.braid_cycles timing in
  let swap_layer = Qec_surface.Timing.swap_layer_cycles timing in
  let without = 2 * braid (* ceil(4/3) = 2 rounds *) in
  let with_swap = swap_layer + braid in
  Printf.printf
    "\nstatic placement: >= %d cycles; swap layer + one round: %d cycles\n"
    without with_swap;
  Printf.printf
    "(for m pairs the static schedule needs ~m/3 rounds; with swaps it \
     stays at %d cycles — the Fig. 15 argument)\n"
    with_swap
