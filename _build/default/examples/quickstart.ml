(* Quickstart: build a circuit with the library API, schedule its braiding
   paths, and read the report.

   Run with:  dune exec examples/quickstart.exe *)

module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let () =
  (* A 4-qubit GHZ-like circuit followed by a round of pairwise CZs. *)
  let circuit =
    C.create ~name:"quickstart" ~num_qubits:4
      G.[
          H 0;
          Cx (0, 1);
          Cx (1, 2);
          Cx (2, 3);
          Cz (0, 2);
          Cz (1, 3);
          T 0;
          T 3;
          Measure 0;
          Measure 1;
          Measure 2;
          Measure 3;
        ]
  in
  Format.printf "%a@." C.pp circuit;

  (* Pick a code distance from a target logical error rate. *)
  let d = Qec_surface.Error_model.distance_for_target ~target_pl:1e-10 () in
  let timing = Qec_surface.Timing.make ~d () in
  Printf.printf "code distance d = %d (P_L = %.3g)\n\n" d
    (Qec_surface.Error_model.logical_error_rate ~d ());

  (* Schedule with AutoBraid. *)
  let result = Autobraid.Scheduler.run timing circuit in
  Printf.printf "lattice            %dx%d tiles\n" result.lattice_side
    result.lattice_side;
  Printf.printf "rounds             %d (%d braid, %d swap)\n" result.rounds
    result.braid_rounds result.swap_layers;
  Printf.printf "total time         %.1f us\n"
    (Autobraid.Scheduler.time_us timing result);
  Printf.printf "critical path      %.1f us\n"
    (Autobraid.Scheduler.critical_path_us timing result);
  Printf.printf "avg utilization    %.1f%%\n"
    (100. *. result.avg_utilization);

  (* The same circuit can be exported as OpenQASM... *)
  print_newline ();
  print_string (Qec_qasm.Printer.to_string circuit);

  (* ...and parsed back. *)
  let reparsed =
    Qec_qasm.Frontend.of_string (Qec_qasm.Printer.to_string circuit)
  in
  assert (C.gates reparsed = C.gates circuit);
  print_endline "\nround-trip check passed"
