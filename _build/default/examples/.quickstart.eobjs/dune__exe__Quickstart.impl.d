examples/quickstart.ml: Autobraid Format Printf Qec_circuit Qec_qasm Qec_surface
