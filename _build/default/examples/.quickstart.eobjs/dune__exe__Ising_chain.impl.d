examples/ising_chain.ml: Array Autobraid Printf Qec_benchmarks Qec_circuit Qec_lattice Qec_surface Qec_util Sys
