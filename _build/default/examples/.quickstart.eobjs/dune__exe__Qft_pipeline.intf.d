examples/qft_pipeline.mli:
