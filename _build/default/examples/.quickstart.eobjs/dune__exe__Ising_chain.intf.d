examples/ising_chain.mli:
