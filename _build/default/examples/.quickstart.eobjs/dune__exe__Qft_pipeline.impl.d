examples/qft_pipeline.ml: Array Autobraid Gp_baseline List Printf Qec_benchmarks Qec_circuit Qec_surface Qec_util Sys
