examples/congestion_rescue.mli:
