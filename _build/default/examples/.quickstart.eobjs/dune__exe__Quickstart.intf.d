examples/quickstart.mli:
