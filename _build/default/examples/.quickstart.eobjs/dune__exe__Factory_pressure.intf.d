examples/factory_pressure.mli:
