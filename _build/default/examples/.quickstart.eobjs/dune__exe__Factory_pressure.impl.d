examples/factory_pressure.ml: Autobraid List Printf Qec_benchmarks Qec_circuit Qec_magic Qec_report Qec_surface
