examples/congestion_rescue.ml: Array Autobraid List Printf Qec_lattice Qec_surface
