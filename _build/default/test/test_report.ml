(* Tests for the reliability analysis and the JSON/DOT/CSV exporters. *)

module S = Autobraid.Scheduler
module R = Autobraid.Reliability
module Json = Qec_report.Json
module Export = Qec_report.Export
module B = Qec_benchmarks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let timing = Qec_surface.Timing.make ~d:33 ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Reliability                                                          *)

let test_exposure_positive () =
  let r = S.run timing (B.Qft.circuit 16) in
  let e = R.exposure_of_result timing r in
  check_bool "data > 0" true (e.R.data_blocks > 0.);
  check_bool "routing > 0" true (e.R.routing_blocks > 0.);
  check_bool "total = sum" true
    (abs_float (R.total_blocks e -. (e.R.data_blocks +. e.R.routing_blocks))
    < 1e-9)

let test_failure_probability_monotone_in_d () =
  let r = S.run timing (B.Qft.circuit 16) in
  let e = R.exposure_of_result timing r in
  let p33 = R.failure_probability ~d:33 e in
  let p43 = R.failure_probability ~d:43 e in
  check_bool "bigger d safer" true (p43 < p33);
  check_bool "probability range" true (p33 >= 0. && p33 <= 1.)

let test_faster_schedule_safer () =
  (* autobraid's shorter makespan must yield a lower failure probability
     than the baseline's at the same distance *)
  let c = B.Qft.circuit 36 in
  let auto = S.run timing c in
  let base = Gp_baseline.run timing c in
  let ratio = R.compare_schedules ~d:33 timing base auto in
  check_bool "baseline fails more often" true (ratio >= 1.

)

let test_distance_for_failure () =
  let r = S.run timing (B.Qft.circuit 16) in
  let e = R.exposure_of_result timing r in
  let d = R.distance_for_failure ~target:1e-9 e in
  check_bool "odd" true (d mod 2 = 1);
  check_bool "achieves" true (R.failure_probability ~d e <= 1e-9);
  check_bool "minimal" true
    (d = 3 || R.failure_probability ~d:(d - 2) e > 1e-9);
  check_bool "bad target" true
    (match R.distance_for_failure ~target:1.5 e with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)

let test_json_primitives () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "bool" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int" "42" (Json.to_string (Json.Int 42));
  Alcotest.(check string) "float int" "2.0" (Json.to_string (Json.Float 2.));
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float nan));
  Alcotest.(check string) "string" "\"hi\"" (Json.to_string (Json.String "hi"))

let test_json_escaping () =
  Alcotest.(check string)
    "escapes" "\"a\\\"b\\\\c\\nd\""
    (Json.to_string (Json.String "a\"b\\c\nd"))

let test_json_compound () =
  let doc = Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]) ] in
  Alcotest.(check string) "compact" "{\"xs\":[1,2]}" (Json.to_string doc);
  let pretty = Json.to_string ~indent:true doc in
  check_bool "indented has newlines" true (String.contains pretty '\n')

let test_json_member () =
  let doc = Json.Obj [ ("a", Json.Int 1) ] in
  check_bool "found" true (Json.member "a" doc = Some (Json.Int 1));
  check_bool "missing" true (Json.member "b" doc = None);
  check_bool "non-object" true (Json.member "a" (Json.Int 1) = None)

(* ------------------------------------------------------------------ *)
(* Export                                                               *)

let test_result_json_fields () =
  let r = S.run timing (B.Qft.circuit 9) in
  let doc = Export.result_to_json r in
  check_bool "cycles" true
    (Json.member "total_cycles" doc = Some (Json.Int r.S.total_cycles));
  check_bool "name" true
    (Json.member "name" doc = Some (Json.String "qft9"));
  (* labelled bundle *)
  let bundle = Export.results_to_json [ ("a", r); ("b", r) ] in
  check_bool "has a" true (Json.member "a" bundle <> None)

let test_trace_json () =
  let _, trace = S.run_traced timing (B.Qft.circuit 9) in
  let doc = Export.trace_to_json ~max_rounds:3 trace in
  (match Json.member "rounds" doc with
  | Some (Json.List rs) -> check_int "limited" 3 (List.length rs)
  | _ -> Alcotest.fail "rounds missing");
  check_bool "num_rounds full" true
    (Json.member "num_rounds" doc
    = Some (Json.Int (Autobraid.Trace.num_rounds trace)))

let test_exposure_json () =
  let r = S.run timing (B.Qft.circuit 9) in
  let e = R.exposure_of_result timing r in
  let doc = Export.exposure_to_json ~d:33 e in
  check_bool "probability present" true
    (Json.member "failure_probability" doc <> None)

let test_coupling_dot () =
  let c = Qec_circuit.Circuit.create ~num_qubits:3
      Qec_circuit.Gate.[ Cx (0, 1); Cx (0, 1); Cx (1, 2) ]
  in
  let dot = Export.coupling_to_dot (Qec_circuit.Coupling.of_circuit c) in
  check_bool "graph" true (contains dot "graph coupling");
  check_bool "edge with weight" true (contains dot "q0 -- q1 [label=\"2\"]");
  check_bool "second edge" true (contains dot "q1 -- q2")

let test_interference_dot () =
  let grid = Qec_lattice.Grid.create 6 in
  let p =
    Qec_lattice.Placement.create grid ~num_qubits:4
      ~cells:
        [| Qec_lattice.Grid.cell_id grid ~x:0 ~y:0;
           Qec_lattice.Grid.cell_id grid ~x:2 ~y:2;
           Qec_lattice.Grid.cell_id grid ~x:1 ~y:1;
           Qec_lattice.Grid.cell_id grid ~x:3 ~y:3 |]
  in
  let tasks =
    [ { Autobraid.Task.id = 0; q1 = 0; q2 = 1 };
      { Autobraid.Task.id = 1; q1 = 2; q2 = 3 } ]
  in
  let dot = Export.interference_to_dot p tasks in
  check_bool "nodes" true (contains dot "cx0" && contains dot "cx1");
  check_bool "edge (boxes overlap)" true (contains dot "cx0 -- cx1")

let test_p_curve_csv () =
  let _, curve =
    S.run_best_p ~grid_points:[ 0.0; 0.5 ] timing (B.Qft.circuit 9)
  in
  let csv = Export.p_curve_to_csv curve in
  let lines = String.split_on_char '\n' csv |> List.filter (( <> ) "") in
  check_int "header + 2 rows" 3 (List.length lines);
  check_bool "header" true (contains (List.hd lines) "p,cycles")


(* ------------------------------------------------------------------ *)
(* SVG                                                                  *)

let test_svg_braid_round () =
  let _, trace = S.run_traced timing (B.Qft.circuit 9) in
  let k =
    let rec go i = function
      | Autobraid.Trace.Braid { braids; _ } :: _ when braids <> [] -> i
      | _ :: rest -> go (i + 1) rest
      | [] -> 0
    in
    go 0 trace.Autobraid.Trace.rounds
  in
  let svg = Qec_report.Svg.round_svg trace k in
  check_bool "svg root" true (contains svg "<svg");
  check_bool "closed" true (contains svg "</svg>");
  check_bool "has tiles" true (contains svg "<rect");
  check_bool "has qubit labels" true (contains svg ">q0<");
  check_bool "has a path" true
    (contains svg "<polyline" || contains svg "r=\"5\"")

let test_svg_swap_round () =
  let options = { S.default_options with threshold_p = 0.9 } in
  let _, trace = S.run_traced ~options timing (B.Qft.circuit 25) in
  let swap_round =
    let rec go i = function
      | Autobraid.Trace.Swap_layer _ :: _ -> Some i
      | _ :: rest -> go (i + 1) rest
      | [] -> None
    in
    go 0 trace.Autobraid.Trace.rounds
  in
  match swap_round with
  | None -> () (* no swaps triggered: nothing to render *)
  | Some k ->
    let svg = Qec_report.Svg.round_svg trace k in
    check_bool "dashed swap connector" true (contains svg "stroke-dasharray")

let test_svg_out_of_range () =
  let _, trace = S.run_traced timing (B.Bv.circuit 6) in
  check_bool "raises" true
    (match Qec_report.Svg.round_svg trace 99999 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_svg_save () =
  let _, trace = S.run_traced timing (B.Qft.circuit 9) in
  let path = Filename.temp_file "autobraid" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Qec_report.Svg.save_round path trace 0;
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      check_bool "nonempty file" true (len > 100))

let () =
  Alcotest.run "report"
    [
      ( "reliability",
        [
          Alcotest.test_case "exposure" `Quick test_exposure_positive;
          Alcotest.test_case "monotone in d" `Quick test_failure_probability_monotone_in_d;
          Alcotest.test_case "faster is safer" `Quick test_faster_schedule_safer;
          Alcotest.test_case "distance for failure" `Quick test_distance_for_failure;
        ] );
      ( "json",
        [
          Alcotest.test_case "primitives" `Quick test_json_primitives;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "compound" `Quick test_json_compound;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "svg",
        [
          Alcotest.test_case "braid round" `Quick test_svg_braid_round;
          Alcotest.test_case "swap round" `Quick test_svg_swap_round;
          Alcotest.test_case "out of range" `Quick test_svg_out_of_range;
          Alcotest.test_case "save" `Quick test_svg_save;
        ] );
      ( "export",
        [
          Alcotest.test_case "result json" `Quick test_result_json_fields;
          Alcotest.test_case "trace json" `Quick test_trace_json;
          Alcotest.test_case "exposure json" `Quick test_exposure_json;
          Alcotest.test_case "coupling dot" `Quick test_coupling_dot;
          Alcotest.test_case "interference dot" `Quick test_interference_dot;
          Alcotest.test_case "p-curve csv" `Quick test_p_curve_csv;
        ] );
    ]
