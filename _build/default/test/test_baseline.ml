(* Tests for the GP-w-initM baseline and its relationship to AutoBraid. *)

module S = Autobraid.Scheduler
module GP = Gp_baseline
module T = Qec_surface.Timing
module C = Qec_circuit.Circuit
module B = Qec_benchmarks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let timing = T.make ~d:33 ()

let test_baseline_completes () =
  let r = GP.run timing (B.Qft.circuit 16) in
  check_bool "positive time" true (r.S.total_cycles > 0);
  check_bool "CP bound" true (r.S.critical_path_cycles <= r.S.total_cycles)

let test_baseline_never_swaps () =
  let r = GP.run timing (B.Qaoa.circuit 16) in
  check_int "no swap layers" 0 r.S.swap_layers;
  check_int "no swaps" 0 r.S.swaps_inserted

let test_baseline_serial_hits_cp () =
  let r = GP.run timing (B.Bv.circuit 20) in
  check_int "bv = CP" r.S.critical_path_cycles r.S.total_cycles

let test_baseline_cycle_ledger () =
  let r = GP.run timing (B.Qft.circuit 16) in
  let d = 33 in
  let local = r.S.rounds - r.S.braid_rounds in
  check_int "ledger" ((local * d) + (r.S.braid_rounds * 2 * d)) r.S.total_cycles

let test_baseline_deterministic () =
  let a = GP.run timing (B.Qaoa.circuit 16) in
  let b = GP.run timing (B.Qaoa.circuit 16) in
  check_int "same" a.S.total_cycles b.S.total_cycles

(* The paper's central comparison: autobraid-full never loses to the
   greedy baseline (given the best-p sweep the paper also performs). *)
let test_autobraid_beats_or_matches_baseline () =
  List.iter
    (fun c ->
      let base = GP.run timing c in
      let auto, _ = S.run_best_p ~grid_points:[ 0.0; 0.3 ] timing c in
      check_bool
        (C.name c ^ ": autobraid <= baseline")
        true
        (auto.S.total_cycles <= base.S.total_cycles))
    [
      B.Qft.circuit 16;
      B.Qft.circuit 36;
      B.Bv.circuit 16;
      B.Cc.circuit 16;
      B.Ising.circuit 16;
      B.Qaoa.circuit 16;
    ]

let test_speedup_grows_with_qft_size () =
  (* Table 2 shape: the QFT speedup over the baseline grows with size *)
  let ratio n =
    let base = GP.run timing (B.Qft.circuit n) in
    let auto = S.run timing (B.Qft.circuit n) in
    float_of_int base.S.total_cycles /. float_of_int auto.S.total_cycles
  in
  let small = ratio 16 and big = ratio 64 in
  check_bool
    (Printf.sprintf "speedup grows (%.2f -> %.2f)" small big)
    true (big >= small *. 0.95)

let test_identity_ablation_no_better () =
  (* initM (partitioned) seeding should not lose badly to identity *)
  let opts_id = { GP.default_options with initial = Autobraid.Initial_layout.Identity } in
  let with_init = GP.run timing (B.Qaoa.circuit 24) in
  let without = GP.run ~options:opts_id timing (B.Qaoa.circuit 24) in
  check_bool "initM helps or is close" true
    (float_of_int with_init.S.total_cycles
    <= 1.15 *. float_of_int without.S.total_cycles)

let () =
  Alcotest.run "baseline"
    [
      ( "gp baseline",
        [
          Alcotest.test_case "completes" `Quick test_baseline_completes;
          Alcotest.test_case "never swaps" `Quick test_baseline_never_swaps;
          Alcotest.test_case "serial = CP" `Quick test_baseline_serial_hits_cp;
          Alcotest.test_case "cycle ledger" `Quick test_baseline_cycle_ledger;
          Alcotest.test_case "deterministic" `Quick test_baseline_deterministic;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "autobraid wins or ties" `Slow test_autobraid_beats_or_matches_baseline;
          Alcotest.test_case "qft speedup grows" `Slow test_speedup_grows_with_qft_size;
          Alcotest.test_case "initM ablation" `Quick test_identity_ablation_no_better;
        ] );
    ]
