(* Tests for LLG decomposition (§3.3.1), including the Fig. 12 example. *)

module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement
module Task = Autobraid.Task
module Llg = Autobraid.Llg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Build a placement that puts the listed qubits at the given cells of an
   l-wide grid; qubit ids are indices into the list. *)
let placement_at l coords =
  let grid = Grid.create l in
  let cells =
    Array.of_list (List.map (fun (x, y) -> Grid.cell_id grid ~x ~y) coords)
  in
  Placement.create grid ~num_qubits:(Array.length cells) ~cells

let tasks n = List.init n (fun i -> { Task.id = i; q1 = 2 * i; q2 = (2 * i) + 1 })

let test_singleton () =
  let p = placement_at 8 [ (0, 0); (1, 1) ] in
  let groups = Llg.decompose p (tasks 1) in
  check_int "one group" 1 (List.length groups);
  check_int "size 1" 1 (Llg.size (List.hd groups))

let test_disjoint_groups () =
  (* two CX gates far apart form two LLGs *)
  let p = placement_at 8 [ (0, 0); (1, 1); (6, 6); (7, 7) ] in
  let groups = Llg.decompose p (tasks 2) in
  check_int "two groups" 2 (List.length groups)

let test_overlapping_boxes_merge () =
  (* boxes [(0,0)-(2,1)] and [(2,0)-(3,1)] share the cell column x=2:
     one LLG (the paper's bounding-box intersection) *)
  let p = placement_at 8 [ (0, 0); (2, 1); (2, 0); (3, 1) ] in
  let groups = Llg.decompose p (tasks 2) in
  check_int "merged" 1 (List.length groups);
  check_int "size 2" 2 (Llg.size (List.hd groups))

let test_touching_boxes_stay_separate () =
  (* boxes [(0,0)-(1,1)] and [(2,0)-(3,1)] only share the channel between
     cell columns 1 and 2 — no cell intersection, so two LLGs *)
  let p = placement_at 8 [ (0, 0); (1, 1); (2, 0); (3, 1) ] in
  check_int "separate" 2 (List.length (Llg.decompose p (tasks 2)))

let test_gap_keeps_separate () =
  let p = placement_at 8 [ (0, 0); (1, 1); (3, 0); (4, 1) ] in
  check_int "separate" 2 (List.length (Llg.decompose p (tasks 2)))

let test_transitive_merge () =
  (* A overlaps B, B overlaps C, A and C disjoint: all one LLG *)
  let p =
    placement_at 12 [ (0, 0); (3, 3); (2, 2); (5, 5); (4, 4); (7, 7) ]
  in
  let groups = Llg.decompose p (tasks 3) in
  check_int "one chain group" 1 (List.length groups);
  check_int "size 3" 3 (Llg.size (List.hd groups))

let test_fixpoint_merge_via_joint_box () =
  (* Merging happens only through the grown joint box: A=(0,0)-(2,2) and
     B=(2,2)-(4,4) intersect at cell (2,2) and merge to (0,0)-(4,4); that
     joint box then swallows C=(4,0)-(4,1), which intersected neither A nor
     B alone. All three end up in one LLG. *)
  let p =
    placement_at 8 [ (0, 0); (2, 2); (1, 2); (1, 4); (2, 4); (3, 4) ]
  in
  (* boxes: A=(0,0)-(2,2), B=(1,2)-(1,4), C=(2,4)-(3,4). A and B intersect
     at (1,2); C intersects neither alone, but meets join(A,B)=(0,0)-(2,4)
     at cell (2,4). *)
  let groups = Llg.decompose p (tasks 3) in
  check_int "one group via fixpoint" 1 (List.length groups)

let test_partition_property () =
  let p = placement_at 10 [ (0, 0); (2, 2); (1, 1); (3, 3); (8, 8); (9, 9) ] in
  let ts = tasks 3 in
  let groups = Llg.decompose p ts in
  let members = List.concat_map (fun g -> g.Llg.members) groups in
  check_int "partition" (List.length ts) (List.length members);
  check_int "no duplicates" (List.length ts)
    (List.length
       (List.sort_uniq compare (List.map (fun t -> t.Task.id) members)))

let test_fig12_nested () =
  (* Fig. 12 LLG1: C's box encloses B's, B's encloses A's, no overlap of
     boundaries: a strictly nested LLG of size 3 *)
  let p =
    placement_at 12
      [ (4, 4); (5, 5) (* A: inner *); (3, 3); (6, 6) (* B: middle *);
        (2, 2); (7, 7) (* C: outer *) ]
  in
  let groups = Llg.decompose p (tasks 3) in
  check_int "one LLG" 1 (List.length groups);
  let g = List.hd groups in
  check_int "size 3" 3 (Llg.size g);
  check_bool "strictly nested" true (Llg.is_strictly_nested p g);
  check_bool "guaranteed (thm 2)" true (Llg.is_guaranteed p g)

let test_not_nested () =
  (* overlapping but not nested: boundaries cross *)
  let p = placement_at 12 [ (0, 0); (5, 5); (3, 0); (8, 5) ] in
  let groups = Llg.decompose p (tasks 2) in
  check_int "one group" 1 (List.length groups);
  check_bool "not strictly nested" false
    (Llg.is_strictly_nested p (List.hd groups));
  (* but still guaranteed: size 2 <= 3 (thm 1) *)
  check_bool "guaranteed (thm 1)" true (Llg.is_guaranteed p (List.hd groups))

let test_count_oversize () =
  (* four mutually overlapping gates in one clump, plus a far singleton *)
  let p =
    placement_at 16
      [ (0, 0); (3, 3); (1, 1); (4, 4); (2, 2); (5, 5); (0, 3); (3, 0);
        (14, 14); (15, 15) ]
  in
  let ts = tasks 5 in
  check_int "one oversize" 1 (Llg.count_oversize p ts);
  let groups = Llg.decompose p ts in
  check_int "two groups" 2 (List.length groups)

let test_empty () =
  let p = placement_at 4 [ (0, 0) ] in
  check_int "no tasks" 0 (List.length (Llg.decompose p []));
  check_int "no oversize" 0 (Llg.count_oversize p [])

(* Property: decompose yields a partition whose groups have pairwise
   non-touching joint bounding boxes. *)
let random_tasks_gen =
  QCheck.Gen.(
    let* k = int_range 1 12 in
    let* coords =
      list_repeat (2 * k) (pair (int_range 0 9) (int_range 0 9))
    in
    return (k, coords))

let prop_groups_non_intersecting =
  QCheck.Test.make ~name:"LLG joint boxes pairwise non-intersecting" ~count:300
    (QCheck.make random_tasks_gen) (fun (k, coords) ->
      (* distinct cells required by Placement: dedupe; skip if collision *)
      let distinct = List.sort_uniq compare coords in
      QCheck.assume (List.length distinct = 2 * k);
      let p = placement_at 10 coords in
      let groups = Llg.decompose p (tasks k) in
      let rec pairwise = function
        | [] -> true
        | g :: rest ->
          List.for_all
            (fun h ->
              not (Qec_lattice.Bbox.intersects g.Llg.bbox h.Llg.bbox))
            rest
          && pairwise rest
      in
      pairwise groups)

let prop_partition =
  QCheck.Test.make ~name:"LLG decomposition partitions the tasks" ~count:300
    (QCheck.make random_tasks_gen) (fun (k, coords) ->
      let distinct = List.sort_uniq compare coords in
      QCheck.assume (List.length distinct = 2 * k);
      let p = placement_at 10 coords in
      let groups = Llg.decompose p (tasks k) in
      let ids =
        List.concat_map
          (fun g -> List.map (fun t -> t.Task.id) g.Llg.members)
          groups
      in
      List.sort compare ids = List.init k (fun i -> i))

let () =
  Alcotest.run "llg"
    [
      ( "decompose",
        [
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "disjoint" `Quick test_disjoint_groups;
          Alcotest.test_case "overlap merge" `Quick test_overlapping_boxes_merge;
          Alcotest.test_case "touching separate" `Quick test_touching_boxes_stay_separate;
          Alcotest.test_case "gap separates" `Quick test_gap_keeps_separate;
          Alcotest.test_case "transitive merge" `Quick test_transitive_merge;
          Alcotest.test_case "fixpoint" `Quick test_fixpoint_merge_via_joint_box;
          Alcotest.test_case "partition" `Quick test_partition_property;
          Alcotest.test_case "empty" `Quick test_empty;
          QCheck_alcotest.to_alcotest prop_groups_non_intersecting;
          QCheck_alcotest.to_alcotest prop_partition;
        ] );
      ( "nesting",
        [
          Alcotest.test_case "fig 12 nested" `Quick test_fig12_nested;
          Alcotest.test_case "not nested" `Quick test_not_nested;
          Alcotest.test_case "count oversize" `Quick test_count_oversize;
        ] );
    ]
