(* Unit tests for the Gate ADT. *)

module G = Qec_circuit.Gate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

let test_qubits () =
  check_ilist "h" [ 3 ] (G.qubits (G.H 3));
  check_ilist "cx" [ 1; 2 ] (G.qubits (G.Cx (1, 2)));
  check_ilist "ccx" [ 0; 1; 2 ] (G.qubits (G.Ccx (0, 1, 2)));
  check_ilist "mcx" [ 4; 5; 6; 7 ] (G.qubits (G.Mcx ([ 4; 5; 6 ], 7)));
  check_ilist "barrier" [ 1; 3 ] (G.qubits (G.Barrier [ 1; 3 ]));
  check_ilist "cphase" [ 9; 2 ] (G.qubits (G.Cphase (9, 2, 0.5)))

let test_arity () =
  check_int "single" 1 (G.arity (G.T 0));
  check_int "two" 2 (G.arity (G.Swap (0, 1)));
  check_int "three" 3 (G.arity (G.Ccx (0, 1, 2)))

let all_single =
  G.[ H 0; X 0; Y 0; Z 0; S 0; Sdg 0; T 0; Tdg 0; Rx (0, 1.); Ry (0, 1.);
      Rz (0, 1.); U3 (0, 1., 2., 3.); Measure 0 ]

let all_two = G.[ Cx (0, 1); Cz (0, 1); Cphase (0, 1, 0.5); Swap (0, 1) ]

let test_classification () =
  List.iter
    (fun g ->
      check_bool (G.name g ^ " single") true (G.is_single_qubit g);
      check_bool (G.name g ^ " not two") false (G.is_two_qubit g);
      check_bool (G.name g ^ " not wide") false (G.is_wide g))
    all_single;
  List.iter
    (fun g ->
      check_bool (G.name g ^ " two") true (G.is_two_qubit g);
      check_bool (G.name g ^ " not single") false (G.is_single_qubit g))
    all_two;
  List.iter
    (fun g -> check_bool (G.name g ^ " wide") true (G.is_wide g))
    G.[ Ccx (0, 1, 2); Mcx ([ 0; 1; 2 ], 3) ];
  check_bool "barrier neither" false
    (G.is_single_qubit (G.Barrier [ 0 ]) || G.is_two_qubit (G.Barrier [ 0 ]))

let test_two_qubit_operands () =
  Alcotest.(check (option (pair int int)))
    "cx" (Some (3, 7))
    (G.two_qubit_operands (G.Cx (3, 7)));
  Alcotest.(check (option (pair int int)))
    "h" None
    (G.two_qubit_operands (G.H 3))

let test_map_qubits () =
  let g = G.map_qubits (fun q -> q + 10) (G.Ccx (0, 1, 2)) in
  check_ilist "shifted" [ 10; 11; 12 ] (G.qubits g);
  let g = G.map_qubits (fun q -> q * 2) (G.Mcx ([ 1; 2 ], 3)) in
  check_ilist "mcx shifted" [ 2; 4; 6 ] (G.qubits g)

let test_names_and_pp () =
  Alcotest.(check string) "cx name" "cx" (G.name (G.Cx (0, 1)));
  Alcotest.(check string) "tdg name" "tdg" (G.name (G.Tdg 0));
  Alcotest.(check string) "pp cx" "cx q3, q7" (G.to_string (G.Cx (3, 7)));
  check_bool "pp rz has angle" true
    (String.length (G.to_string (G.Rz (2, 0.7854))) > 6)

let test_equal () =
  check_bool "equal" true (G.equal (G.Cx (0, 1)) (G.Cx (0, 1)));
  check_bool "different operands" false (G.equal (G.Cx (0, 1)) (G.Cx (1, 0)));
  check_bool "different gate" false (G.equal (G.Cx (0, 1)) (G.Cz (0, 1)))

let prop_map_identity =
  QCheck.Test.make ~name:"map_qubits id = id" ~count:100
    QCheck.(pair (int_bound 20) (int_bound 20))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let g = G.Cx (a, b) in
      G.equal g (G.map_qubits (fun q -> q) g))

let () =
  Alcotest.run "gate"
    [
      ( "gate",
        [
          Alcotest.test_case "qubits" `Quick test_qubits;
          Alcotest.test_case "arity" `Quick test_arity;
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "two_qubit_operands" `Quick test_two_qubit_operands;
          Alcotest.test_case "map_qubits" `Quick test_map_qubits;
          Alcotest.test_case "names/pp" `Quick test_names_and_pp;
          Alcotest.test_case "equal" `Quick test_equal;
          QCheck_alcotest.to_alcotest prop_map_identity;
        ] );
    ]
