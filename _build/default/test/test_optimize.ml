(* Tests for the peephole optimizer. *)

module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit
module O = Qec_circuit.Optimize

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let opt gates =
  let c = C.create ~num_qubits:6 gates in
  O.peephole c

let gates_of c = Array.to_list (C.gates c)

let test_cancel_simple_pairs () =
  let out, stats = opt G.[ H 0; H 0 ] in
  check_int "empty" 0 (C.length out);
  check_int "one pair" 1 stats.O.cancelled_pairs;
  let out, _ = opt G.[ X 1; X 1; Y 2; Y 2; Z 3; Z 3 ] in
  check_int "all gone" 0 (C.length out)

let test_cancel_adjoints () =
  let out, _ = opt G.[ S 0; Sdg 0; Tdg 1; T 1 ] in
  check_int "adjoints cancel" 0 (C.length out);
  let out, _ = opt G.[ Rz (0, 0.5); Rz (0, -0.5) ] in
  check_int "opposite rotations cancel" 0 (C.length out)

let test_cancel_two_qubit () =
  let out, _ = opt G.[ Cx (0, 1); Cx (0, 1) ] in
  check_int "cx pair" 0 (C.length out);
  (* reversed operands do NOT cancel *)
  let out, _ = opt G.[ Cx (0, 1); Cx (1, 0) ] in
  check_int "reversed kept" 2 (C.length out);
  let out, _ = opt G.[ Swap (2, 3); Swap (2, 3); Ccx (0, 1, 2); Ccx (0, 1, 2) ] in
  check_int "swap+ccx pairs" 0 (C.length out)

let test_intervening_gate_blocks () =
  (* an intervening gate on a shared wire blocks cancellation *)
  let out, _ = opt G.[ H 0; T 0; H 0 ] in
  check_int "blocked" 3 (C.length out);
  (* a bystander on an unrelated wire does not block *)
  let out, _ = opt G.[ H 0; T 5; H 0 ] in
  check_int "bystander ok" 1 (C.length out);
  check_bool "the bystander survives" true
    (List.exists (G.equal (G.T 5)) (gates_of out))

let test_partial_overlap_blocks () =
  (* CX(0,1) then CX(1,2): shared wire, different operand sets *)
  let out, _ = opt G.[ Cx (0, 1); Cx (1, 2); Cx (0, 1) ] in
  check_int "kept" 3 (C.length out)

let test_chain_collapse () =
  (* nested palindromes collapse inside-out *)
  let out, stats = opt G.[ Cx (0, 1); H 2; H 2; Cx (0, 1) ] in
  check_int "everything cancels" 0 (C.length out);
  check_int "two pairs" 2 stats.O.cancelled_pairs;
  let out, _ = opt G.[ H 0; H 0; H 0 ] in
  check_int "odd chain leaves one" 1 (C.length out)

let test_rotation_merge () =
  let out, stats = opt G.[ Rz (0, 0.25); Rz (0, 0.5) ] in
  check_int "merged to one" 1 (C.length out);
  check_int "merge counted" 1 stats.O.merged_rotations;
  (match C.gate out 0 with
  | G.Rz (0, a) -> Alcotest.(check (float 1e-12)) "sum" 0.75 a
  | _ -> Alcotest.fail "expected rz");
  let out, _ = opt G.[ Cphase (0, 1, 0.25); Cphase (0, 1, 0.25) ] in
  check_int "cphase merge" 1 (C.length out)

let test_merge_to_zero_drops () =
  let out, _ = opt G.[ Rx (0, 0.5); Rx (0, -0.25); Rx (0, -0.25) ] in
  check_int "fused to zero" 0 (C.length out)

let test_barrier_blocks () =
  let out, _ = opt G.[ H 0; Barrier [ 0 ]; H 0 ] in
  check_int "barrier blocks" 3 (C.length out)

let test_measure_not_cancelled () =
  let out, _ = opt G.[ Measure 0; Measure 0 ] in
  check_int "measures kept" 2 (C.length out)

let test_revlib_uncompute_shrinks () =
  (* a compute/uncompute ladder (mcx via ladder) has a cancellable core *)
  let gs = Qec_circuit.Decompose.mcx_gates ~ancillas:[ 4; 5 ] [ 0; 1; 2 ] 3 in
  (* applying it twice must collapse the palindrome interface *)
  let c = C.create ~num_qubits:6 (gs @ gs) in
  let out, stats = O.peephole c in
  check_bool "shrank" true (C.length out < C.length c);
  check_bool "cancelled some" true (stats.O.cancelled_pairs > 0)

let test_preserves_order_of_survivors () =
  let out, _ = opt G.[ H 0; Cx (0, 1); T 1; Tdg 1; Cx (0, 1) ] in
  (* T Tdg cancels, then the CXs cancel; H survives *)
  check_int "one survivor" 1 (C.length out);
  check_bool "h first" true (G.equal (C.gate out 0) (G.H 0))

(* Properties: idempotence, and never increasing gate count. *)
let gate_gen =
  QCheck.Gen.(
    let q = int_range 0 4 in
    let angle = map (fun i -> float_of_int (i - 4) /. 4.) (int_range 0 8) in
    frequency
      [
        (3, map (fun a -> G.H a) q);
        (2, map (fun a -> G.T a) q);
        (2, map (fun a -> G.Tdg a) q);
        (2, map2 (fun a x -> G.Rz (a, x)) q angle);
        (3, map2 (fun a b -> G.Cx (a, b)) q q);
      ])

let circuit_gen =
  QCheck.Gen.(
    let* gs = list_size (int_range 0 60) gate_gen in
    let gs =
      List.filter
        (fun g ->
          let qs = G.qubits g in
          List.length (List.sort_uniq compare qs) = List.length qs)
        gs
    in
    return (C.create ~num_qubits:5 gs))

let prop_never_grows =
  QCheck.Test.make ~name:"peephole never grows the circuit" ~count:300
    (QCheck.make circuit_gen) (fun c ->
      C.length (O.peephole_circuit c) <= C.length c)

let prop_idempotent =
  QCheck.Test.make ~name:"peephole is idempotent" ~count:300
    (QCheck.make circuit_gen) (fun c ->
      let once = O.peephole_circuit c in
      let twice = O.peephole_circuit once in
      C.gates once = C.gates twice)

let prop_schedulable =
  QCheck.Test.make ~name:"optimized circuits still schedule" ~count:50
    (QCheck.make circuit_gen) (fun c ->
      let timing = Qec_surface.Timing.make ~d:3 () in
      let out = O.peephole_circuit c in
      C.length out = 0
      ||
      let r = Autobraid.Scheduler.run timing out in
      r.Autobraid.Scheduler.total_cycles
      >= r.Autobraid.Scheduler.critical_path_cycles)

let () =
  Alcotest.run "optimize"
    [
      ( "cancellation",
        [
          Alcotest.test_case "simple pairs" `Quick test_cancel_simple_pairs;
          Alcotest.test_case "adjoints" `Quick test_cancel_adjoints;
          Alcotest.test_case "two-qubit" `Quick test_cancel_two_qubit;
          Alcotest.test_case "intervening blocks" `Quick test_intervening_gate_blocks;
          Alcotest.test_case "partial overlap" `Quick test_partial_overlap_blocks;
          Alcotest.test_case "chain collapse" `Quick test_chain_collapse;
          Alcotest.test_case "barrier blocks" `Quick test_barrier_blocks;
          Alcotest.test_case "measure kept" `Quick test_measure_not_cancelled;
          Alcotest.test_case "uncompute ladder" `Quick test_revlib_uncompute_shrinks;
          Alcotest.test_case "survivor order" `Quick test_preserves_order_of_survivors;
        ] );
      ( "merging",
        [
          Alcotest.test_case "rotations" `Quick test_rotation_merge;
          Alcotest.test_case "zero drops" `Quick test_merge_to_zero_drops;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_never_grows;
          QCheck_alcotest.to_alcotest prop_idempotent;
          QCheck_alcotest.to_alcotest prop_schedulable;
        ] );
    ]
